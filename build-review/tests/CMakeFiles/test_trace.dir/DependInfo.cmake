
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/test_trace.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/runner/CMakeFiles/qperc_runner.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/qperc_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/study/CMakeFiles/qperc_study.dir/DependInfo.cmake"
  "/root/repo/build-review/src/browser/CMakeFiles/qperc_browser.dir/DependInfo.cmake"
  "/root/repo/build-review/src/http/CMakeFiles/qperc_http.dir/DependInfo.cmake"
  "/root/repo/build-review/src/web/CMakeFiles/qperc_web.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tcp/CMakeFiles/qperc_tcp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/quic/CMakeFiles/qperc_quic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cc/CMakeFiles/qperc_cc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/qperc_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/qperc_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/qperc_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/qperc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/qperc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
