# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(check_docs "/root/repo/scripts/check_docs.sh")
set_tests_properties(check_docs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;59;add_test;/root/repo/CMakeLists.txt;0;")
add_test(lint_determinism "/root/repo/scripts/lint_determinism.py" "--self-test")
set_tests_properties(lint_determinism PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;65;add_test;/root/repo/CMakeLists.txt;0;")
add_test(campaign_e2e "/root/repo/scripts/campaign_e2e.sh" "/root/repo/build-review/tools/qperc")
set_tests_properties(campaign_e2e PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;77;add_test;/root/repo/CMakeLists.txt;0;")
add_test(bench_smoke "/root/repo/scripts/bench_baseline.sh" "--smoke" "--bench" "/root/repo/build-review/bench/bench_micro_perf")
set_tests_properties(bench_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("bench")
subdirs("examples")
subdirs("tools")
