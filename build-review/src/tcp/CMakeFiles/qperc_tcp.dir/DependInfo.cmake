
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/connection.cpp" "src/tcp/CMakeFiles/qperc_tcp.dir/connection.cpp.o" "gcc" "src/tcp/CMakeFiles/qperc_tcp.dir/connection.cpp.o.d"
  "/root/repo/src/tcp/receiver.cpp" "src/tcp/CMakeFiles/qperc_tcp.dir/receiver.cpp.o" "gcc" "src/tcp/CMakeFiles/qperc_tcp.dir/receiver.cpp.o.d"
  "/root/repo/src/tcp/sender.cpp" "src/tcp/CMakeFiles/qperc_tcp.dir/sender.cpp.o" "gcc" "src/tcp/CMakeFiles/qperc_tcp.dir/sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/cc/CMakeFiles/qperc_cc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/qperc_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/qperc_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/qperc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/qperc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
