
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/emulated_network.cpp" "src/net/CMakeFiles/qperc_net.dir/emulated_network.cpp.o" "gcc" "src/net/CMakeFiles/qperc_net.dir/emulated_network.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/qperc_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/qperc_net.dir/link.cpp.o.d"
  "/root/repo/src/net/packet_trace.cpp" "src/net/CMakeFiles/qperc_net.dir/packet_trace.cpp.o" "gcc" "src/net/CMakeFiles/qperc_net.dir/packet_trace.cpp.o.d"
  "/root/repo/src/net/profile.cpp" "src/net/CMakeFiles/qperc_net.dir/profile.cpp.o" "gcc" "src/net/CMakeFiles/qperc_net.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/qperc_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/qperc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/qperc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
