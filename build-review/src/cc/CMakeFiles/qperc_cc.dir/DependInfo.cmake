
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/bandwidth_sampler.cpp" "src/cc/CMakeFiles/qperc_cc.dir/bandwidth_sampler.cpp.o" "gcc" "src/cc/CMakeFiles/qperc_cc.dir/bandwidth_sampler.cpp.o.d"
  "/root/repo/src/cc/bbr.cpp" "src/cc/CMakeFiles/qperc_cc.dir/bbr.cpp.o" "gcc" "src/cc/CMakeFiles/qperc_cc.dir/bbr.cpp.o.d"
  "/root/repo/src/cc/bbr2.cpp" "src/cc/CMakeFiles/qperc_cc.dir/bbr2.cpp.o" "gcc" "src/cc/CMakeFiles/qperc_cc.dir/bbr2.cpp.o.d"
  "/root/repo/src/cc/cubic.cpp" "src/cc/CMakeFiles/qperc_cc.dir/cubic.cpp.o" "gcc" "src/cc/CMakeFiles/qperc_cc.dir/cubic.cpp.o.d"
  "/root/repo/src/cc/factory.cpp" "src/cc/CMakeFiles/qperc_cc.dir/factory.cpp.o" "gcc" "src/cc/CMakeFiles/qperc_cc.dir/factory.cpp.o.d"
  "/root/repo/src/cc/pacer.cpp" "src/cc/CMakeFiles/qperc_cc.dir/pacer.cpp.o" "gcc" "src/cc/CMakeFiles/qperc_cc.dir/pacer.cpp.o.d"
  "/root/repo/src/cc/reno.cpp" "src/cc/CMakeFiles/qperc_cc.dir/reno.cpp.o" "gcc" "src/cc/CMakeFiles/qperc_cc.dir/reno.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/qperc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
