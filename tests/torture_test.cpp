// Torture-harness tests: the small impairment grid must come back clean
// (liveness, zero CHECK violations, byte conservation), deterministically in
// the seed, and the degenerate zero-delay profile must not trip the RTT
// estimator's positivity invariant on either stack.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "runner/torture.hpp"
#include "tests/transport_test_util.hpp"
#include "util/check.hpp"

namespace qperc::runner {
namespace {

TEST(TortureGridParse, AcceptsKnownGridsRejectsOthers) {
  EXPECT_EQ(parse_torture_grid("small"), TortureGrid::kSmall);
  EXPECT_EQ(parse_torture_grid("full"), TortureGrid::kFull);
  EXPECT_THROW(static_cast<void>(parse_torture_grid("medium")), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_torture_grid("")), std::invalid_argument);
}

TEST(TortureScenarios, CoverEveryImpairmentFamily) {
  const auto scenarios = torture_scenarios(net::dsl_profile());
  ASSERT_EQ(scenarios.size(), 5u);
  bool reorder = false, duplicate = false, burst = false, outage = false, combined = false;
  for (const auto& scenario : scenarios) {
    const net::LinkImpairments& imp = scenario.profile.impairments;
    EXPECT_TRUE(imp.any()) << scenario.name;
    reorder |= imp.reordering_enabled() && !imp.duplication_enabled();
    duplicate |= imp.duplication_enabled() && !imp.reordering_enabled();
    burst |= imp.gilbert_elliott.enabled() && !imp.outages_enabled();
    outage |= imp.outages_enabled() && !imp.gilbert_elliott.enabled();
    combined |= imp.reordering_enabled() && imp.duplication_enabled() &&
                imp.gilbert_elliott.enabled() && imp.outages_enabled();
  }
  EXPECT_TRUE(reorder && duplicate && burst && outage && combined);
}

// The torture_smoke gate in-process: the same sweep `qperc torture --seed 1
// --grid small` runs, with the same pass criteria.
TEST(TortureSmoke, SmallGridRunsCleanAndDeterministically) {
  TortureOptions options;
  options.seed = 1;
  options.grid = TortureGrid::kSmall;
  std::ostringstream progress;
  const TortureReport first = run_torture(options, &progress);
  EXPECT_TRUE(first.ok()) << [&] {
    std::string all;
    for (const auto& failure : first.failures) all += failure + "\n";
    return all;
  }();
  EXPECT_EQ(first.check_violations, 0u);
  EXPECT_EQ(first.hung_trials, 0u);
  EXPECT_EQ(first.deadlocks, 0u);
  EXPECT_EQ(first.conservation_failures, 0u);
  EXPECT_EQ(first.exceptions, 0u);
  // 2 bases x 5 impairment scenarios + zero-delay, x 2 protocols x 4 sites,
  // plus the DSL contention pair (contended-8cubic, reorder-contended) and
  // the four LTE variable-rate/policing cells (lte-trace, wifi-trace,
  // policed, rate-cliff).
  EXPECT_EQ(first.trials, 136u);
  EXPECT_FALSE(progress.str().empty());

  const TortureReport second = run_torture(options);
  EXPECT_EQ(second.trials, first.trials);
  EXPECT_EQ(second.incomplete_pages, first.incomplete_pages);
}

// Regression (RttEstimator positivity): a zero-propagation, near-instant
// serialization profile acknowledges data in the sending instant. Before the
// ≥1-tick clamps in tcp/{sender,connection} and quic/{send_side,connection},
// an invariant build aborted here on `rtt > 0` and release builds silently
// discarded every handshake sample.
struct ViolationCount {
  static void handler(const char*, int, const char*, const std::string&) { ++count(); }
  static std::uint64_t& count() {
    static std::uint64_t n = 0;
    return n;
  }
};

TEST(TortureZeroDelay, TcpCompletesWithoutRttViolations) {
  ViolationCount::count() = 0;
  const auto saved = check::set_violation_handler(&ViolationCount::handler);
  {
    testutil::TcpHarness harness(zero_delay_profile(), tcp::TcpConfig{}, 100'000);
    EXPECT_TRUE(harness.run());
    EXPECT_EQ(harness.delivered, 100'000u);
    // Every sample reached the estimator: srtt is primed and positive.
    EXPECT_GT(harness.connection->server_sender().rtt().smoothed_rtt().count(), 0);
  }
  check::set_violation_handler(saved);
  EXPECT_EQ(ViolationCount::count(), 0u);
}

TEST(TortureZeroDelay, QuicCompletesWithoutRttViolations) {
  ViolationCount::count() = 0;
  const auto saved = check::set_violation_handler(&ViolationCount::handler);
  {
    testutil::QuicHarness harness(zero_delay_profile(), quic::QuicConfig{}, 100'000);
    EXPECT_TRUE(harness.run(2));
    EXPECT_EQ(harness.bytes_delivered, 200'000u);
  }
  check::set_violation_handler(saved);
  EXPECT_EQ(ViolationCount::count(), 0u);
}

}  // namespace
}  // namespace qperc::runner
