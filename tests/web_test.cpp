// Website model and study catalog tests.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "web/website.hpp"

namespace qperc::web {
namespace {

TEST(Catalog, HasThirtySixSites) {
  const auto catalog = study_catalog(7);
  EXPECT_EQ(catalog.size(), 36u);
  EXPECT_EQ(study_site_specs().size(), 36u);
}

TEST(Catalog, DeterministicForSeed) {
  const auto a = study_catalog(7);
  const auto b = study_catalog(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    ASSERT_EQ(a[i].objects.size(), b[i].objects.size());
    for (std::size_t j = 0; j < a[i].objects.size(); ++j) {
      EXPECT_EQ(a[i].objects[j].bytes, b[i].objects[j].bytes);
      EXPECT_EQ(a[i].objects[j].origin, b[i].objects[j].origin);
    }
  }
}

TEST(Catalog, DifferentSeedsGiveDifferentSites) {
  const auto a = study_catalog(7);
  const auto b = study_catalog(8);
  bool any_different = false;
  for (std::size_t j = 0; j < a[0].objects.size() && j < b[0].objects.size(); ++j) {
    any_different |= a[0].objects[j].bytes != b[0].objects[j].bytes;
  }
  EXPECT_TRUE(any_different);
}

TEST(Catalog, ContainsPaperNamedSites) {
  const auto catalog = study_catalog(7);
  std::set<std::string> names;
  for (const auto& site : catalog) names.insert(site.name);
  for (const char* required :
       {"wikipedia.org", "gov.uk", "etsy.com", "demorgen.be", "nytimes.com", "spotify.com",
        "apache.org", "google.com", "nature.com", "w3.org", "wordpress.com",
        "gravatar.com"}) {
    EXPECT_TRUE(names.contains(required)) << required;
  }
}

TEST(Catalog, LabDomainsAreInCatalog) {
  const auto catalog = study_catalog(7);
  std::set<std::string> names;
  for (const auto& site : catalog) names.insert(site.name);
  EXPECT_EQ(lab_study_domains().size(), 5u);
  for (const auto& domain : lab_study_domains()) EXPECT_TRUE(names.contains(domain));
}

TEST(Catalog, SpansDiversityAxes) {
  const auto catalog = study_catalog(7);
  std::uint64_t min_bytes = UINT64_MAX;
  std::uint64_t max_bytes = 0;
  std::size_t min_objects = SIZE_MAX;
  std::size_t max_objects = 0;
  std::uint32_t max_origins = 0;
  for (const auto& site : catalog) {
    min_bytes = std::min(min_bytes, site.total_bytes());
    max_bytes = std::max(max_bytes, site.total_bytes());
    min_objects = std::min(min_objects, site.object_count());
    max_objects = std::max(max_objects, site.object_count());
    max_origins = std::max(max_origins, site.contacted_origins());
  }
  EXPECT_LT(min_bytes, 300u * 1024);       // small sites exist
  EXPECT_GT(max_bytes, 3000u * 1024);      // large sites exist
  EXPECT_LT(min_objects, 20u);
  EXPECT_GT(max_objects, 120u);
  EXPECT_GT(max_origins, 15u);             // multi-server nature
}

TEST(Generator, DependencyGraphIsAcyclicAndValid) {
  for (const auto& site : study_catalog(3)) {
    for (const auto& object : site.objects) {
      if (object.parent >= 0) {
        // Parents always precede children => acyclic.
        EXPECT_LT(object.parent, static_cast<std::int32_t>(object.id)) << site.name;
      }
      EXPECT_GE(object.discovery_fraction, 0.0);
      EXPECT_LE(object.discovery_fraction, 1.0);
      EXPECT_GT(object.bytes, 0u);
      EXPECT_LT(object.origin, site.origin_count);
    }
  }
}

TEST(Generator, RenderWeightsSumToOne) {
  for (const auto& site : study_catalog(3)) {
    double total = 0.0;
    for (const auto& object : site.objects) total += object.render_weight;
    EXPECT_NEAR(total, 1.0, 0.02) << site.name;
  }
}

TEST(Generator, RootIsHtmlAndBlocking) {
  for (const auto& site : study_catalog(3)) {
    ASSERT_FALSE(site.objects.empty());
    const auto& root = site.objects.front();
    EXPECT_EQ(root.type, ObjectType::kHtml);
    EXPECT_EQ(root.parent, -1);
    EXPECT_TRUE(root.render_blocking);
    EXPECT_EQ(root.origin, 0u);
  }
}

TEST(Generator, TotalBytesNearSpec) {
  for (std::size_t i = 0; i < study_site_specs().size(); ++i) {
    const auto& spec = study_site_specs()[i];
    const auto site = generate_site(spec, Rng(42).fork(spec.name));
    const double actual_kb = static_cast<double>(site.total_bytes()) / 1024.0;
    const double spec_kb = static_cast<double>(spec.total_kilobytes);
    EXPECT_GT(actual_kb, spec_kb * 0.5) << spec.name;
    EXPECT_LT(actual_kb, spec_kb * 1.7) << spec.name;
    EXPECT_EQ(site.object_count(), spec.object_count);
  }
}

TEST(Generator, SpotifyShapeMatchesPaperProse) {
  // §4.4: spotify.com is small but contacts many hosts.
  const auto catalog = study_catalog(7);
  const auto spotify = std::find_if(catalog.begin(), catalog.end(),
                                    [](const Website& s) { return s.name == "spotify.com"; });
  ASSERT_NE(spotify, catalog.end());
  EXPECT_LT(spotify->total_bytes(), 900u * 1024);
  EXPECT_GT(spotify->contacted_origins(), 10u);
  // wordpress.com: few resources, small, < 10 contacted hosts.
  const auto wordpress = std::find_if(
      catalog.begin(), catalog.end(), [](const Website& s) { return s.name == "wordpress.com"; });
  ASSERT_NE(wordpress, catalog.end());
  EXPECT_LT(wordpress->object_count(), 30u);
  EXPECT_LE(wordpress->contacted_origins(), 10u);
}

TEST(ObjectType, Names) {
  EXPECT_EQ(to_string(ObjectType::kHtml), "html");
  EXPECT_EQ(to_string(ObjectType::kImage), "image");
  EXPECT_EQ(to_string(ObjectType::kFont), "font");
}

}  // namespace
}  // namespace qperc::web
