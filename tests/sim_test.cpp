// Unit tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qperc::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_in(milliseconds(30), [&] { order.push_back(3); });
  simulator.schedule_in(milliseconds(10), [&] { order.push_back(1); });
  simulator.schedule_in(milliseconds(20), [&] { order.push_back(2); });
  EXPECT_TRUE(simulator.run());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), SimTime(milliseconds(30)));
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_in(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator simulator;
  SimTime inner_fired{0};
  simulator.schedule_in(milliseconds(10), [&] {
    simulator.schedule_in(milliseconds(5), [&] { inner_fired = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(inner_fired, SimTime(milliseconds(15)));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.schedule_in(milliseconds(10), [&] { fired = true; });
  simulator.cancel(id);
  simulator.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator simulator;
  simulator.cancel(EventId{9999});
  EXPECT_TRUE(simulator.run());
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_in(milliseconds(10), [&] { ++fired; });
  simulator.schedule_in(milliseconds(30), [&] { ++fired; });
  simulator.run_until(SimTime(milliseconds(20)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), SimTime(milliseconds(20)));
  simulator.run_until(SimTime(milliseconds(40)));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  Simulator simulator;
  bool fired = false;
  simulator.schedule_in(milliseconds(20), [&] { fired = true; });
  simulator.run_until(SimTime(milliseconds(20)));
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventCapStopsRunawayLoops) {
  Simulator simulator;
  std::function<void()> loop = [&] { simulator.schedule_in(SimDuration::zero(), loop); };
  simulator.schedule_in(SimDuration::zero(), loop);
  EXPECT_FALSE(simulator.run(1000));
  EXPECT_GE(simulator.events_processed(), 1000u);
}

TEST(Simulator, RequestStopEndsRun) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_in(milliseconds(1), [&] {
    ++fired;
    simulator.request_stop();
  });
  simulator.schedule_in(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(simulator.run());
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, PastDeadlinesClampToNow) {
  Simulator simulator;
  simulator.schedule_in(milliseconds(10), [&] {
    bool fired = false;
    simulator.schedule_at(SimTime(milliseconds(5)), [&] { fired = true; });
    // The past-dated event must still run, at the current time.
  });
  EXPECT_TRUE(simulator.run());
  EXPECT_EQ(simulator.now(), SimTime(milliseconds(10)));
}

TEST(Timer, FiresOnceAtDeadline) {
  Simulator simulator;
  int fired = 0;
  Timer timer(simulator, [&] { ++fired; });
  timer.set_in(milliseconds(10));
  EXPECT_TRUE(timer.is_armed());
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.is_armed());
}

TEST(Timer, ReArmReplacesDeadline) {
  Simulator simulator;
  std::vector<SimTime> fire_times;
  Timer timer(simulator, [&] { fire_times.push_back(simulator.now()); });
  timer.set_in(milliseconds(10));
  timer.set_in(milliseconds(25));
  simulator.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], SimTime(milliseconds(25)));
}

TEST(Timer, CancelDisarms) {
  Simulator simulator;
  int fired = 0;
  Timer timer(simulator, [&] { ++fired; });
  timer.set_in(milliseconds(10));
  timer.cancel();
  EXPECT_FALSE(timer.is_armed());
  simulator.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, SlotsAreReusedAcrossEvents) {
  Simulator simulator;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    simulator.schedule_in(milliseconds(1), [&] { ++fired; });
    simulator.run();
  }
  EXPECT_EQ(fired, 1000);
  // One pending event at a time -> the slab never needs a second slot.
  EXPECT_EQ(simulator.slab_slots(), 1u);
}

TEST(Simulator, CancelOfStaleIdAfterSlotReuseIsNoop) {
  Simulator simulator;
  bool first_fired = false;
  bool second_fired = false;
  const EventId first = simulator.schedule_in(milliseconds(1), [&] { first_fired = true; });
  simulator.cancel(first);
  // The freed slot is reused; the stale id must not be able to kill it.
  simulator.schedule_in(milliseconds(1), [&] { second_fired = true; });
  simulator.cancel(first);
  simulator.run();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, RescheduleMovesEventEarlierAndLater) {
  Simulator simulator;
  std::vector<int> order;
  const EventId later = simulator.schedule_in(milliseconds(50), [&] { order.push_back(1); });
  simulator.schedule_in(milliseconds(20), [&] { order.push_back(2); });
  ASSERT_TRUE(simulator.reschedule(later, SimTime(milliseconds(10))));  // earlier
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));

  order.clear();
  const EventId sooner = simulator.schedule_in(milliseconds(5), [&] { order.push_back(1); });
  simulator.schedule_in(milliseconds(20), [&] { order.push_back(2); });
  ASSERT_TRUE(simulator.reschedule(sooner, simulator.now() + milliseconds(30)));  // later
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Simulator, RescheduleTakesFreshFifoRank) {
  // Re-arming must order like cancel+schedule: among equal timestamps the
  // re-armed event runs after events scheduled since its original arm.
  Simulator simulator;
  std::vector<int> order;
  const EventId rearmed = simulator.schedule_in(milliseconds(10), [&] { order.push_back(1); });
  simulator.schedule_in(milliseconds(10), [&] { order.push_back(2); });
  ASSERT_TRUE(simulator.reschedule(rearmed, SimTime(milliseconds(10))));
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Simulator, RescheduleOfFiredOrCancelledEventFails) {
  Simulator simulator;
  int fired = 0;
  const EventId done = simulator.schedule_in(milliseconds(1), [&] { ++fired; });
  simulator.run();
  EXPECT_FALSE(simulator.reschedule(done, SimTime(milliseconds(5))));
  const EventId cancelled = simulator.schedule_in(milliseconds(1), [&] { ++fired; });
  simulator.cancel(cancelled);
  EXPECT_FALSE(simulator.reschedule(cancelled, SimTime(milliseconds(5))));
  simulator.run();
  EXPECT_EQ(fired, 1);
}

TEST(Timer, RepeatedReArmKeepsQueueAndPendingBounded) {
  // Regression: the pre-slab scheduler left one stale heap entry plus one
  // cancelled-set entry per re-arm until popped, so RTO/delayed-ACK churn in
  // long lossy trials grew both without bound. In-place reschedule must keep
  // the queue depth O(1).
  Simulator simulator;
  std::uint64_t fired = 0;
  Timer timer(simulator, [&fired] { ++fired; });
  std::size_t max_queue_depth = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 100; ++i) timer.set_in(milliseconds(10));
    max_queue_depth = std::max(max_queue_depth, simulator.queue_depth());
    EXPECT_EQ(simulator.pending_events(), 1u);
    simulator.run_until(simulator.now() + milliseconds(1));
  }
  EXPECT_LE(max_queue_depth, 2u);
  EXPECT_EQ(simulator.slab_slots(), 1u);
  timer.cancel();
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(Timer, ReArmEarlierFiresAtEarlierDeadline) {
  Simulator simulator;
  std::vector<SimTime> fire_times;
  Timer timer(simulator, [&] { fire_times.push_back(simulator.now()); });
  timer.set_in(milliseconds(50));
  timer.set_in(milliseconds(10));
  simulator.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], SimTime(milliseconds(10)));
}

/// A naive but obviously-correct scheduler: linear scan for the earliest
/// (time, seq) live event. The slab implementation must produce the exact
/// same firing order for any op sequence.
class ReferenceScheduler {
 public:
  int schedule(SimTime t, int tag) {
    events_.push_back(Ev{std::max(t, now_), next_seq_++, tag, true});
    return static_cast<int>(events_.size()) - 1;
  }
  void cancel(int index) { events_[static_cast<std::size_t>(index)].live = false; }
  void reschedule(int index, SimTime t) {
    Ev& ev = events_[static_cast<std::size_t>(index)];
    ev.t = std::max(t, now_);
    ev.seq = next_seq_++;  // cancel+schedule semantics: fresh FIFO rank
  }
  template <class Fire>
  void run(Fire&& fire) {
    for (;;) {
      Ev* next = nullptr;
      for (Ev& ev : events_) {
        if (!ev.live) continue;
        if (next == nullptr || ev.t < next->t || (ev.t == next->t && ev.seq < next->seq)) {
          next = &ev;
        }
      }
      if (next == nullptr) return;
      next->live = false;
      now_ = next->t;
      fire(next->tag, now_);  // may call schedule()
    }
  }

 private:
  struct Ev {
    SimTime t;
    std::uint64_t seq;
    int tag;
    bool live;
  };
  std::vector<Ev> events_;
  std::uint64_t next_seq_ = 0;
  SimTime now_{0};
};

TEST(Simulator, RandomizedStressMatchesReferenceScheduler) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    // Generate one op script: schedules, cancels of live events, re-arms of
    // live events to earlier/later deadlines.
    struct Op {
      enum { kSchedule, kCancel, kReschedule } kind;
      int target = 0;        // index into the script's schedule list
      SimTime time{0};
      int tag = 0;
    };
    Rng rng(seed);
    std::vector<Op> script;
    int scheduled = 0;
    for (int i = 0; i < 800; ++i) {
      const std::uint64_t roll = rng.next_u64() % 10;
      Op op;
      if (scheduled == 0 || roll < 5) {
        op.kind = Op::kSchedule;
        op.time = milliseconds(rng.next_u64() % 500);
        op.tag = scheduled++;
      } else if (roll < 7) {
        op.kind = Op::kCancel;
        op.target = static_cast<int>(rng.next_u64() % static_cast<std::uint64_t>(scheduled));
      } else {
        op.kind = Op::kReschedule;
        op.target = static_cast<int>(rng.next_u64() % static_cast<std::uint64_t>(scheduled));
        op.time = milliseconds(rng.next_u64() % 500);
      }
      script.push_back(op);
    }

    // Fired callbacks with tag divisible by 5 schedule one child each; the
    // child logic must be identical on both sides.
    std::vector<std::pair<int, SimTime>> real_log;
    std::vector<std::pair<int, SimTime>> ref_log;

    Simulator simulator;
    std::vector<EventId> real_ids;
    std::function<void(int)> real_fire = [&](int tag) {
      real_log.emplace_back(tag, simulator.now());
      if (tag % 5 == 0 && tag < 10'000) {
        const int child = tag + 10'000;
        simulator.schedule_in(milliseconds(tag % 7 + 1), [&real_fire, child] { real_fire(child); });
      }
    };
    for (const Op& op : script) {
      switch (op.kind) {
        case Op::kSchedule: {
          const int tag = op.tag;
          real_ids.push_back(simulator.schedule_at(op.time, [&real_fire, tag] { real_fire(tag); }));
          break;
        }
        case Op::kCancel:
          simulator.cancel(real_ids[static_cast<std::size_t>(op.target)]);
          break;
        case Op::kReschedule:
          // May legitimately fail if the target was already cancelled;
          // mirror by only rescheduling live reference events below.
          simulator.reschedule(real_ids[static_cast<std::size_t>(op.target)], op.time);
          break;
      }
    }
    EXPECT_TRUE(simulator.run());

    ReferenceScheduler reference;
    std::vector<int> ref_ids;
    std::vector<bool> ref_live;
    for (const Op& op : script) {
      switch (op.kind) {
        case Op::kSchedule:
          ref_ids.push_back(reference.schedule(op.time, op.tag));
          ref_live.push_back(true);
          break;
        case Op::kCancel:
          reference.cancel(ref_ids[static_cast<std::size_t>(op.target)]);
          ref_live[static_cast<std::size_t>(op.target)] = false;
          break;
        case Op::kReschedule:
          if (ref_live[static_cast<std::size_t>(op.target)]) {
            reference.reschedule(ref_ids[static_cast<std::size_t>(op.target)], op.time);
          }
          break;
      }
    }
    reference.run([&](int tag, SimTime at) {
      ref_log.emplace_back(tag, at);
      if (tag % 5 == 0 && tag < 10'000) {
        reference.schedule(at + milliseconds(tag % 7 + 1), tag + 10'000);
      }
    });

    ASSERT_EQ(real_log.size(), ref_log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < real_log.size(); ++i) {
      EXPECT_EQ(real_log[i], ref_log[i]) << "seed " << seed << " position " << i;
    }
    EXPECT_EQ(simulator.pending_events(), 0u);
  }
}

TEST(Timer, CanReArmInsideCallback) {
  Simulator simulator;
  int fired = 0;
  Timer* handle = nullptr;
  Timer timer(simulator, [&] {
    if (++fired < 3) handle->set_in(milliseconds(10));
  });
  handle = &timer;
  timer.set_in(milliseconds(10));
  simulator.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(simulator.now(), SimTime(milliseconds(30)));
}

}  // namespace
}  // namespace qperc::sim
