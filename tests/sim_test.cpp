// Unit tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace qperc::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_in(milliseconds(30), [&] { order.push_back(3); });
  simulator.schedule_in(milliseconds(10), [&] { order.push_back(1); });
  simulator.schedule_in(milliseconds(20), [&] { order.push_back(2); });
  EXPECT_TRUE(simulator.run());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), SimTime(milliseconds(30)));
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_in(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator simulator;
  SimTime inner_fired{0};
  simulator.schedule_in(milliseconds(10), [&] {
    simulator.schedule_in(milliseconds(5), [&] { inner_fired = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(inner_fired, SimTime(milliseconds(15)));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id = simulator.schedule_in(milliseconds(10), [&] { fired = true; });
  simulator.cancel(id);
  simulator.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator simulator;
  simulator.cancel(EventId{9999});
  EXPECT_TRUE(simulator.run());
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_in(milliseconds(10), [&] { ++fired; });
  simulator.schedule_in(milliseconds(30), [&] { ++fired; });
  simulator.run_until(SimTime(milliseconds(20)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), SimTime(milliseconds(20)));
  simulator.run_until(SimTime(milliseconds(40)));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  Simulator simulator;
  bool fired = false;
  simulator.schedule_in(milliseconds(20), [&] { fired = true; });
  simulator.run_until(SimTime(milliseconds(20)));
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventCapStopsRunawayLoops) {
  Simulator simulator;
  std::function<void()> loop = [&] { simulator.schedule_in(SimDuration::zero(), loop); };
  simulator.schedule_in(SimDuration::zero(), loop);
  EXPECT_FALSE(simulator.run(1000));
  EXPECT_GE(simulator.events_processed(), 1000u);
}

TEST(Simulator, RequestStopEndsRun) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_in(milliseconds(1), [&] {
    ++fired;
    simulator.request_stop();
  });
  simulator.schedule_in(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(simulator.run());
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, PastDeadlinesClampToNow) {
  Simulator simulator;
  simulator.schedule_in(milliseconds(10), [&] {
    bool fired = false;
    simulator.schedule_at(SimTime(milliseconds(5)), [&] { fired = true; });
    // The past-dated event must still run, at the current time.
  });
  EXPECT_TRUE(simulator.run());
  EXPECT_EQ(simulator.now(), SimTime(milliseconds(10)));
}

TEST(Timer, FiresOnceAtDeadline) {
  Simulator simulator;
  int fired = 0;
  Timer timer(simulator, [&] { ++fired; });
  timer.set_in(milliseconds(10));
  EXPECT_TRUE(timer.is_armed());
  simulator.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.is_armed());
}

TEST(Timer, ReArmReplacesDeadline) {
  Simulator simulator;
  std::vector<SimTime> fire_times;
  Timer timer(simulator, [&] { fire_times.push_back(simulator.now()); });
  timer.set_in(milliseconds(10));
  timer.set_in(milliseconds(25));
  simulator.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], SimTime(milliseconds(25)));
}

TEST(Timer, CancelDisarms) {
  Simulator simulator;
  int fired = 0;
  Timer timer(simulator, [&] { ++fired; });
  timer.set_in(milliseconds(10));
  timer.cancel();
  EXPECT_FALSE(timer.is_armed());
  simulator.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanReArmInsideCallback) {
  Simulator simulator;
  int fired = 0;
  Timer* handle = nullptr;
  Timer timer(simulator, [&] {
    if (++fired < 3) handle->set_in(milliseconds(10));
  });
  handle = &timer;
  timer.set_in(milliseconds(10));
  simulator.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(simulator.now(), SimTime(milliseconds(30)));
}

}  // namespace
}  // namespace qperc::sim
