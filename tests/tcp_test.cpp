// TCP stack tests: handshake cost, reliability under loss, Table-1 knobs.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "net/impairments.hpp"
#include "tcp/sender.hpp"
#include "tests/transport_test_util.hpp"

namespace qperc::tcp {
namespace {

using testutil::TcpHarness;

TcpConfig stock_config() { return TcpConfig{}; }

TcpConfig tuned_config() {
  TcpConfig config;
  config.initial_window_segments = 32;
  config.pacing = true;
  config.tuned_buffers = true;
  config.slow_start_after_idle = false;
  return config;
}

TEST(TcpHandshake, TakesTwoRttsBeforeData) {
  TcpHarness harness(net::dsl_profile(), stock_config(), 10'000);
  ASSERT_TRUE(harness.run());
  // 2 round trips of 24 ms each (plus serialization of small packets).
  EXPECT_GE(harness.established_at, SimTime(milliseconds(48)));
  EXPECT_LE(harness.established_at, SimTime(milliseconds(60)));
}

TEST(TcpHandshake, SurvivesSynLoss) {
  // MSS has 6% random loss; across seeds some handshakes lose packets and
  // must recover via the 1-second handshake timer.
  int recovered_with_retx = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    TcpHarness harness(net::mss_profile(), stock_config(), 5'000, seed);
    ASSERT_TRUE(harness.run()) << seed;
    recovered_with_retx +=
        harness.connection->stats().handshake_retransmissions > 0 ? 1 : 0;
  }
  EXPECT_GT(recovered_with_retx, 0);
}

TEST(TcpTransfer, DeliversExactByteCountLossless) {
  TcpHarness harness(net::dsl_profile(), stock_config(), 250'000);
  ASSERT_TRUE(harness.run());
  EXPECT_EQ(harness.delivered, 250'000u);
}

TEST(TcpTransfer, DeliversUnderHeavyLoss) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TcpHarness harness(net::mss_profile(), stock_config(), 200'000, seed);
    EXPECT_TRUE(harness.run()) << "seed " << seed;
    EXPECT_EQ(harness.delivered, 200'000u) << "seed " << seed;
    EXPECT_GT(harness.connection->stats().retransmissions, 0u) << "seed " << seed;
  }
}

TEST(TcpTransfer, RequestPathDeliversToo) {
  TcpHarness harness(net::lte_profile(), stock_config(), 1'000);
  harness.connection->client_write(5'000);
  ASSERT_TRUE(harness.run());
  // The response may finish before the request stream drains; keep running.
  const SimTime deadline = harness.simulator.now() + seconds(30);
  while (harness.request_delivered < 5'000 && harness.simulator.now() < deadline) {
    harness.simulator.run_until(harness.simulator.now() + milliseconds(50));
  }
  EXPECT_EQ(harness.request_delivered, 5'000u);
}

TEST(TcpTransfer, ThroughputApproachesLinkRateWhenTuned) {
  // 2 MB over DSL downlink (25 Mbps): ideal ~0.64 s + handshake.
  TcpHarness harness(net::dsl_profile(), tuned_config(), 2'000'000);
  ASSERT_TRUE(harness.run());
  const double seconds_taken = to_seconds(harness.simulator.now());
  const double goodput_mbps = 2'000'000 * 8.0 / seconds_taken / 1e6;
  EXPECT_GT(goodput_mbps, 15.0);  // at least 60% of the link
}

TEST(TcpTuning, StockReceiveWindowLimitsHighBdpTransfer) {
  // MSS: 1.89 Mbps x 760 ms BDP ~ 180 kB, but the stock window starts at
  // 64 kB — the tuned stack must finish a window-bound transfer faster.
  TcpHarness stock(net::mss_profile(), stock_config(), 600'000, 3);
  ASSERT_TRUE(stock.run(seconds(300)));
  TcpHarness tuned(net::mss_profile(), tuned_config(), 600'000, 3);
  ASSERT_TRUE(tuned.run(seconds(300)));
  EXPECT_LT(tuned.simulator.now(), stock.simulator.now());
}

TEST(TcpTuning, LargerInitialWindowSpeedsShortTransfers) {
  TcpConfig iw10 = stock_config();
  TcpConfig iw32 = stock_config();
  iw32.initial_window_segments = 32;
  // 40 kB needs ~28 segments: IW32 does it in one flight, IW10 needs three.
  TcpHarness slow(net::lte_profile(), iw10, 40'000);
  ASSERT_TRUE(slow.run());
  TcpHarness fast(net::lte_profile(), iw32, 40'000);
  ASSERT_TRUE(fast.run());
  EXPECT_LT(fast.finished_at, slow.finished_at);
  // At least one round trip (74 ms) of advantage on LTE.
  EXPECT_GT(slow.finished_at - fast.finished_at, milliseconds(60));
}

TEST(TcpTuning, PacingReducesInitialFlightQueueDrops) {
  // A single IW32 flight (45 kB) into DSL's 12 ms downlink queue (37.5 kB):
  // the unpaced burst overflows the queue, the paced flight lets it drain.
  TcpConfig burst = stock_config();
  burst.initial_window_segments = 32;
  burst.pacing = false;
  TcpConfig paced = burst;
  paced.pacing = true;
  TcpHarness a(net::dsl_profile(), burst, 45'000, 1);
  ASSERT_TRUE(a.run());
  TcpHarness b(net::dsl_profile(), paced, 45'000, 1);
  ASSERT_TRUE(b.run());
  EXPECT_GT(a.network->downlink_stats().drops_queue_full, 0u);
  EXPECT_LT(b.network->downlink_stats().drops_queue_full,
            a.network->downlink_stats().drops_queue_full);
}

TEST(TcpSackLimit, ReceiverAdvertisesAtMostThreeBlocks) {
  EXPECT_EQ(kMaxSackBlocks, 3u);
  sim::Simulator simulator;
  TcpConfig config;
  int acks = 0;
  TcpSegment last_ack;
  TcpReceiver receiver(simulator, config, 1'000'000, [&] { ++acks; },
                       [](std::uint64_t) {});
  // Five separated holes: 10 ranges would exist, only 3 may be advertised.
  for (std::uint64_t i = 0; i < 5; ++i) {
    receiver.on_data(10'000 * (i + 1), 1'000);
  }
  receiver.fill_ack(last_ack);
  EXPECT_EQ(last_ack.sacks().size(), 3u);
  EXPECT_EQ(last_ack.cumulative_ack, 0u);
  // Most recently received range first (RFC 2018).
  EXPECT_EQ(last_ack.sack_blocks[0].start, 50'000u);
}

TEST(TcpReceiver, ReassemblesOutOfOrderData) {
  sim::Simulator simulator;
  TcpConfig config;
  std::uint64_t delivered = 0;
  TcpReceiver receiver(simulator, config, 1'000'000, [] {},
                       [&](std::uint64_t t) { delivered = t; });
  receiver.on_data(1'000, 1'000);  // hole at [0, 1000)
  EXPECT_EQ(delivered, 0u);
  receiver.on_data(0, 1'000);  // fill the hole
  EXPECT_EQ(delivered, 2'000u);
}

TEST(TcpReceiver, DuplicateDataDoesNotRegress) {
  sim::Simulator simulator;
  TcpConfig config;
  std::uint64_t delivered = 0;
  TcpReceiver receiver(simulator, config, 1'000'000, [] {},
                       [&](std::uint64_t t) { delivered = t; });
  receiver.on_data(0, 2'000);
  receiver.on_data(0, 1'000);  // spurious retransmission
  EXPECT_EQ(delivered, 2'000u);
}

TEST(TcpReceiver, AutotuneGrowsWindow) {
  sim::Simulator simulator;
  TcpConfig config;  // stock: autotuning from 64 kB
  TcpReceiver receiver(simulator, config, config.autotune_initial_rwnd_bytes, [] {},
                       [](std::uint64_t) {});
  EXPECT_EQ(receiver.rwnd_limit(), 64u * 1024);
  std::uint64_t seq = 0;
  for (int i = 0; i < 50; ++i) {
    receiver.on_data(seq, 1460 * 2);
    seq += 1460 * 2;
  }
  EXPECT_GT(receiver.rwnd_limit(), 64u * 1024);
}

TEST(TcpReceiver, TunedWindowDoesNotAutotune) {
  sim::Simulator simulator;
  TcpConfig config;
  config.tuned_buffers = true;
  TcpReceiver receiver(simulator, config, 500'000, [] {}, [](std::uint64_t) {});
  std::uint64_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    receiver.on_data(seq, 1460 * 2);
    seq += 1460 * 2;
  }
  EXPECT_EQ(receiver.rwnd_limit(), 500'000u);
}

TEST(TcpStats, RetransmissionsCountedUnderLoss) {
  TcpHarness harness(net::da2gc_profile(), tuned_config(), 150'000, 5);
  ASSERT_TRUE(harness.run(seconds(300)));
  const auto stats = harness.connection->stats();
  EXPECT_GT(stats.retransmissions, 0u);
  EXPECT_GT(stats.data_packets_sent, 150'000u / 1460);
  // The final ACKs can be lost on the 3.3%-loss uplink after the application
  // already has all data, so the sender's delivery counter may trail by a
  // few segments.
  EXPECT_LE(stats.bytes_delivered, 150'000u);
  EXPECT_GE(stats.bytes_delivered, 150'000u - 5 * 1460u);
}

TEST(TcpHandshake, TfoTakesOneRtt) {
  TcpConfig config = stock_config();
  config.handshake_rtts = 1;
  TcpHarness harness(net::lte_profile(), config, 10'000);
  ASSERT_TRUE(harness.run());
  // One 74 ms round trip (plus small-packet serialization).
  EXPECT_GE(harness.established_at, SimTime(milliseconds(74)));
  EXPECT_LE(harness.established_at, SimTime(milliseconds(95)));
}

TEST(TcpHandshake, ZeroRttEstablishesImmediately) {
  TcpConfig config = stock_config();
  config.handshake_rtts = 0;
  TcpHarness harness(net::lte_profile(), config, 10'000);
  ASSERT_TRUE(harness.run());
  EXPECT_EQ(harness.established_at, SimTime{0});
  EXPECT_EQ(harness.delivered, 10'000u);
}

TEST(TcpHandshake, FewerRttsFinishFasterInOrder) {
  std::array<SimTime, 3> finished{};
  for (std::uint32_t rtts = 0; rtts <= 2; ++rtts) {
    TcpConfig config = stock_config();
    config.handshake_rtts = rtts;
    TcpHarness harness(net::lte_profile(), config, 30'000, 4);
    EXPECT_TRUE(harness.run()) << rtts;
    finished[rtts] = harness.finished_at;
  }
  EXPECT_LT(finished[0], finished[1]);
  EXPECT_LT(finished[1], finished[2]);
}

TEST(TcpHandshake, ZeroRttSurvivesLoss) {
  TcpConfig config = stock_config();
  config.handshake_rtts = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TcpHarness harness(net::mss_profile(), config, 20'000, seed);
    EXPECT_TRUE(harness.run(seconds(240))) << seed;
    EXPECT_EQ(harness.delivered, 20'000u) << seed;
  }
}

TEST(TcpIdleRestart, StockCollapsesWindowAfterIdle) {
  // Two bursts separated by a long idle period: with slow-start-after-idle
  // the second burst must take longer than back-to-back continuation.
  const auto run_with = [&](bool restart_after_idle) {
    TcpConfig config = tuned_config();
    config.slow_start_after_idle = restart_after_idle;
    TcpHarness harness(net::lte_profile(), config, 300'000, 9);
    harness.run(seconds(60));
    // Second object after 2 s of idle.
    const SimTime idle_end = harness.simulator.now() + seconds(2);
    harness.simulator.run_until(idle_end);
    harness.response_bytes += 300'000;
    harness.push();
    while (harness.delivered < harness.response_bytes &&
           harness.simulator.now() < idle_end + seconds(60)) {
      harness.simulator.run_until(harness.simulator.now() + milliseconds(50));
    }
    return harness.simulator.now() - idle_end;
  };
  const SimDuration with_restart = run_with(true);
  const SimDuration without_restart = run_with(false);
  EXPECT_LT(without_restart, with_restart);
}

// --- Impairment-layer regressions (bugs flushed out by `qperc torture`) ---

// Regression: on_ack_received used to take the receive window from *every*
// ACK. Under reordering, a stale ACK (older cumulative ack, smaller window)
// arriving after a newer one rolled peer_rwnd_ back; with nothing in flight
// and no zero-window probe, the sender never transmitted again — a permanent
// deadlock the torture harness reported as "empty event queue, page
// unfinished". Windows must only come from segments at/beyond SND.UNA.
TEST(TcpImpairment, StaleZeroWindowAckFromReorderingCannotStallSender) {
  sim::Simulator simulator;
  std::vector<TcpSegment> sent;
  TcpSender sender(simulator, TcpConfig{}, /*send_buffer_bytes=*/1 << 20,
                   [&](TcpSegment segment) { sent.push_back(segment); });
  sender.on_established(/*initial_peer_rwnd=*/2920, milliseconds(20));
  sender.write(2920);
  // A short window: long enough for the (unpaced) transmissions, well short
  // of the ~2x srtt tail-loss probe.
  simulator.run_until(simulator.now() + milliseconds(1));
  ASSERT_EQ(sent.size(), 2u);  // two MSS-sized segments fill the window

  TcpSegment fresh;  // acknowledges everything, re-opens a wide window
  fresh.has_ack = true;
  fresh.cumulative_ack = 2920;
  fresh.receive_window_bytes = 64 * 1024;
  sender.on_ack_received(fresh);
  ASSERT_TRUE(sender.all_acked());

  TcpSegment stale;  // the reordered older ACK, advertising the old window
  stale.has_ack = true;
  stale.cumulative_ack = 1460;
  stale.receive_window_bytes = 0;
  sender.on_ack_received(stale);

  // New application data must still go out: the stale zero window is ignored.
  sender.write(1460);
  simulator.run_until(simulator.now() + milliseconds(1));
  EXPECT_EQ(sent.size(), 3u);
}

TEST(TcpImpairment, DuplicateStormDeliversBytesExactlyOnce) {
  net::NetworkProfile profile = net::dsl_profile();
  profile.impairments.duplicate_rate = 0.4;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TcpHarness harness(profile, stock_config(), 150'000, seed);
    ASSERT_TRUE(harness.run()) << "seed " << seed;
    // Byte-exact: duplicated segments must never double-count.
    EXPECT_EQ(harness.delivered, 150'000u) << "seed " << seed;
    EXPECT_GT(harness.network->downlink_stats().duplicates, 0u) << "seed " << seed;
  }
}

// The paper's SACK-capacity mechanism (§4.3): TCP ACKs carry at most
// kMaxSackBlocks (3) SACK blocks. Heavy reordering opens more holes than
// that can describe; the sender must still retire every in-flight segment
// (at worst by spurious retransmission), never wedging on an undescribable
// scoreboard.
TEST(TcpImpairment, ReorderingBeyondSackCapacityRetiresEverySegment) {
  net::NetworkProfile profile = net::dsl_profile();
  profile.impairments.reorder_rate = 0.4;
  profile.impairments.reorder_delay_min = milliseconds(2);
  profile.impairments.reorder_delay_max = milliseconds(60);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TcpHarness harness(profile, stock_config(), 400'000, seed);
    ASSERT_TRUE(harness.run(seconds(240))) << "seed " << seed;
    EXPECT_EQ(harness.delivered, 400'000u) << "seed " << seed;
    EXPECT_GT(harness.network->downlink_stats().reordered, 0u) << "seed " << seed;
  }
}

TEST(TcpImpairment, SurvivesGilbertElliottBurstsAndFlaps) {
  net::NetworkProfile profile = net::lte_profile();
  profile.impairments.gilbert_elliott = net::GilbertElliott{
      .enter_bad = 0.02, .exit_bad = 0.3, .loss_good = 0.0, .loss_bad = 0.5};
  profile.impairments.outage_start = SimTime{milliseconds(500)};
  profile.impairments.outage_duration = milliseconds(200);
  profile.impairments.outage_interval = seconds(2);
  TcpHarness harness(profile, stock_config(), 120'000, 3);
  ASSERT_TRUE(harness.run(seconds(240)));
  EXPECT_EQ(harness.delivered, 120'000u);
  EXPECT_GT(harness.connection->stats().retransmissions, 0u);
}

// A delay spike on the ACK path — every ACK ~800 ms late for 600 ms of sim
// time, nothing actually dropped — makes the RTO fire even though the data
// all arrived. F-RTO-style detection must recognize the late cumulative ACK
// of never-retransmitted segments as proof the timeout was spurious: undo
// the collapse and the backoff instead of re-sending the window.
TEST(TcpImpairment, AckDelaySpikeIsDetectedAsSpuriousRto) {
  TcpHarness harness(net::dsl_profile(), tuned_config(), 6'000'000, 5);
  net::LinkImpairments spike;
  spike.reorder_rate = 1.0;
  spike.reorder_delay_min = milliseconds(800);
  spike.reorder_delay_max = milliseconds(801);
  harness.simulator.schedule_at(SimTime{seconds(1)}, [&harness, spike] {
    harness.network->uplink().set_impairments(spike);
  });
  harness.simulator.schedule_at(SimTime{milliseconds(1600)}, [&harness] {
    harness.network->uplink().set_impairments(net::LinkImpairments{});
  });
  ASSERT_TRUE(harness.run(seconds(120)));
  EXPECT_EQ(harness.delivered, 6'000'000u);
  const net::TransportStats stats = harness.connection->stats();
  EXPECT_GE(stats.timeouts, 1u);
  EXPECT_GE(stats.spurious_timeouts, 1u);
}

}  // namespace
}  // namespace qperc::tcp
