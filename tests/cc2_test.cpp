// Tests for the extension congestion controllers (BBRv2, NewReno) and
// cross-flow fairness properties of the whole CC family.
#include <gtest/gtest.h>

#include "cc/bbr2.hpp"
#include "cc/factory.hpp"
#include "cc/reno.hpp"
#include "net/emulated_network.hpp"
#include "net/profile.hpp"
#include "tcp/connection.hpp"
#include "tests/transport_test_util.hpp"

namespace qperc::cc {
namespace {

constexpr std::uint64_t kMss = 1460;

AckSample make_ack(std::uint64_t bytes, SimDuration rtt, bool round_ended = false,
                   DataRate rate = DataRate(), std::uint64_t in_flight = 0) {
  AckSample sample;
  sample.bytes_acked = bytes;
  sample.rtt = rtt;
  sample.smoothed_rtt = rtt;
  sample.delivery_rate = rate;
  sample.bytes_in_flight = in_flight;
  sample.round_trip_ended = round_ended;
  return sample;
}

TEST(Bbr2, StartsInStartupWithHighGain) {
  Bbr2 bbr2(Bbr2Config{.initial_window_segments = 32});
  EXPECT_TRUE(bbr2.in_slow_start());
  EXPECT_EQ(bbr2.mode(), Bbr2::Mode::kStartup);
  EXPECT_EQ(bbr2.congestion_window(), 32 * kMss);
  EXPECT_EQ(bbr2.name(), "bbr2");
}

TEST(Bbr2, ExitsStartupOnBandwidthPlateau) {
  Bbr2 bbr2(Bbr2Config{});
  SimTime now{0};
  const auto bw = DataRate::megabits_per_second(10.0);
  for (int round = 0; round < 8; ++round) {
    now += milliseconds(50);
    bbr2.on_ack(now, make_ack(10 * kMss, milliseconds(50), true, bw, 20 * kMss));
  }
  EXPECT_NE(bbr2.mode(), Bbr2::Mode::kStartup);
}

TEST(Bbr2, ExcessiveLossDuringStartupCapsInflight) {
  Bbr2 bbr2(Bbr2Config{});
  SimTime now{0};
  const auto bw = DataRate::megabits_per_second(5.0);
  EXPECT_EQ(bbr2.inflight_hi(), UINT64_MAX);
  // One round with ~10% loss while still in startup (probing).
  for (int i = 0; i < 9; ++i) bbr2.on_congestion_event(now, 30 * kMss);
  now += milliseconds(50);
  bbr2.on_ack(now, make_ack(80 * kMss, milliseconds(50), true, bw, 30 * kMss));
  EXPECT_LT(bbr2.inflight_hi(), UINT64_MAX);
  EXPECT_NE(bbr2.mode(), Bbr2::Mode::kStartup);  // loss ends startup in v2
}

TEST(Bbr2, SteadyRandomLossDoesNotCollapseCruise) {
  // Once cruising, sub-threshold random loss must not shrink the ceiling.
  Bbr2 bbr2(Bbr2Config{});
  SimTime now{0};
  const auto bw = DataRate::megabits_per_second(5.0);
  for (int round = 0; round < 10; ++round) {
    now += milliseconds(50);
    bbr2.on_ack(now, make_ack(10 * kMss, milliseconds(50), true, bw, 5 * kMss));
  }
  const auto mode = bbr2.mode();
  ASSERT_TRUE(mode == Bbr2::Mode::kProbeBwCruise || mode == Bbr2::Mode::kProbeBwDown ||
              mode == Bbr2::Mode::kProbeBwRefill || mode == Bbr2::Mode::kProbeBwUp);
  const auto ceiling_before = bbr2.inflight_hi();
  // 1% loss (below the 2% threshold) over several cruise rounds.
  for (int round = 0; round < 5; ++round) {
    bbr2.on_congestion_event(now, 10 * kMss);  // one MSS lost
    now += milliseconds(50);
    bbr2.on_ack(now, make_ack(100 * kMss, milliseconds(50), true, bw, 10 * kMss));
  }
  EXPECT_EQ(bbr2.inflight_hi(), ceiling_before);
}

TEST(Bbr2, TimeoutShrinksCeilingAndWindow) {
  Bbr2 bbr2(Bbr2Config{.initial_window_segments = 32});
  bbr2.on_retransmission_timeout();
  EXPECT_EQ(bbr2.congestion_window(), 4 * kMss);
  EXPECT_LT(bbr2.inflight_hi(), UINT64_MAX);
}

TEST(Reno, SlowStartThenLinearGrowth) {
  Reno reno(RenoConfig{.initial_window_segments = 10});
  const std::uint64_t initial = reno.congestion_window();
  reno.on_ack(SimTime{0}, make_ack(initial, milliseconds(50)));
  EXPECT_EQ(reno.congestion_window(), 2 * initial);  // slow start doubles

  reno.on_congestion_event(SimTime{0}, 0);  // leave slow start
  const std::uint64_t after_loss = reno.congestion_window();
  EXPECT_EQ(after_loss, initial);  // halved

  // One full window of ACKs grows the window by exactly one MSS.
  reno.on_ack(SimTime{0}, make_ack(after_loss, milliseconds(50)));
  EXPECT_EQ(reno.congestion_window(), after_loss + kMss);
}

TEST(Reno, TimeoutCollapsesToMinimum) {
  Reno reno(RenoConfig{.initial_window_segments = 50});
  reno.on_retransmission_timeout();
  EXPECT_EQ(reno.congestion_window(), 2 * kMss);
  EXPECT_EQ(reno.ssthresh(), 25 * kMss);
}

TEST(Reno, IdleRestartResetsToInitialWindow) {
  Reno reno(RenoConfig{.initial_window_segments = 10});
  reno.on_ack(SimTime{0}, make_ack(20 * kMss, milliseconds(50)));
  reno.on_restart_after_idle();
  EXPECT_EQ(reno.congestion_window(), 10 * kMss);
}

TEST(Factory, BuildsExtensionControllers) {
  EXPECT_EQ(make_congestion_controller(CcKind::kBbr2, 32, kMss)->name(), "bbr2");
  EXPECT_EQ(make_congestion_controller(CcKind::kReno, 10, kMss)->name(), "reno");
  EXPECT_EQ(to_string(CcKind::kBbr2), "BBRv2");
  EXPECT_EQ(to_string(CcKind::kReno), "NewReno");
}

/// Two long flows with the same controller sharing one bottleneck should
/// split it roughly fairly (within 3:1 after convergence).
class FairnessTest : public ::testing::TestWithParam<CcKind> {};

TEST_P(FairnessTest, TwoFlowsShareTheBottleneck) {
  sim::Simulator simulator;
  net::NetworkProfile profile = net::lte_profile();
  net::EmulatedNetwork network(simulator, profile, Rng(9));

  tcp::TcpConfig config;
  config.congestion_control = GetParam();
  config.tuned_buffers = true;
  config.initial_window_segments = 10;
  config.pacing = true;

  struct Flow {
    std::unique_ptr<tcp::TcpConnection> connection;
    std::uint64_t delivered = 0;
    std::uint64_t written = 0;
  };
  Flow flows[2];
  constexpr std::uint64_t kForever = 50'000'000;
  for (auto& flow : flows) {
    auto* f = &flow;
    flow.connection = std::make_unique<tcp::TcpConnection>(
        simulator, network, net::ServerId{0}, config,
        tcp::TcpConnection::Callbacks{
            .on_established = [f] { f->written += f->connection->server_write(kForever); },
            .on_request_bytes = {},
            .on_response_bytes = [f](std::uint64_t t) { f->delivered = t; },
        });
    flow.connection->set_server_on_writable(
        [f] { f->written += f->connection->server_write(kForever - f->written); });
    flow.connection->connect();
  }

  // Let both flows converge, then measure goodput over a window.
  simulator.run_until(SimTime(seconds(10)));
  const std::uint64_t mark0 = flows[0].delivered;
  const std::uint64_t mark1 = flows[1].delivered;
  simulator.run_until(SimTime(seconds(30)));
  const double rate0 = static_cast<double>(flows[0].delivered - mark0);
  const double rate1 = static_cast<double>(flows[1].delivered - mark1);
  ASSERT_GT(rate0, 0.0);
  ASSERT_GT(rate1, 0.0);
  const double ratio = rate0 > rate1 ? rate0 / rate1 : rate1 / rate0;
  EXPECT_LT(ratio, 3.0) << "rates " << rate0 << " vs " << rate1;

  // Combined goodput should use most of the 10.5 Mbps downlink.
  const double total_mbps = (rate0 + rate1) * 8.0 / 20.0 / 1e6;
  EXPECT_GT(total_mbps, 10.5 * 0.6);
}

INSTANTIATE_TEST_SUITE_P(AllControllers, FairnessTest,
                         ::testing::Values(CcKind::kReno, CcKind::kCubic, CcKind::kBbr,
                                           CcKind::kBbr2),
                         [](const ::testing::TestParamInfo<CcKind>& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace qperc::cc
