// Determinism and memory contracts of the population-scale streaming study
// engine: byte-identical exports across job counts, shard layouts (merged in
// any order), block sizes, and checkpoint/resume cycles; O(1) memory in the
// participant count.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/video.hpp"
#include "population/checkpoint.hpp"
#include "population/population_study.hpp"
// Own binary: this TU holds the counting operator new/delete shim (one TU
// per binary), so the O(1)-memory claim is measured, not asserted.
#include "util/alloc_interpose.hpp"

namespace qperc::population {
namespace {

constexpr std::uint64_t kSeed = 7;
constexpr std::uint32_t kRuns = 2;  // cheap stimuli; identity only needs consistency

/// One shared library across all tests: stimulus production (the expensive
/// part) happens once; every run then streams against the warm cache.
core::VideoLibrary& shared_library() {
  static core::VideoLibrary library(kSeed, kRuns);
  return library;
}

StudySpec small_spec(study::StudyKind kind, std::uint64_t participants) {
  StudySpec spec;
  spec.kind = kind;
  spec.group = study::Group::kMicroworker;
  spec.participants = participants;
  spec.seed = kSeed;
  spec.sites = 5;  // lab domains
  spec.video_runs = kRuns;
  return spec;
}

std::string report_bytes(const StudySpec& spec, const Accumulator& acc) {
  std::ostringstream os;
  write_report(os, spec, acc);
  return os.str();
}

Report run(const StudySpec& spec, RunOptions options) {
  return run_streaming_study(shared_library(), spec, options);
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(PopulationStudy, RatingExportIsByteIdenticalAcrossJobCounts) {
  const StudySpec spec = small_spec(study::StudyKind::kRating, 1500);
  RunOptions one;
  one.jobs = 1;
  one.block_size = 128;
  RunOptions four;
  four.jobs = 4;
  four.block_size = 128;
  const auto a = run(spec, one);
  const auto b = run(spec, four);
  EXPECT_TRUE(a.complete());
  EXPECT_TRUE(b.complete());
  EXPECT_EQ(report_bytes(spec, a.accumulator), report_bytes(spec, b.accumulator));
}

TEST(PopulationStudy, AbExportIsByteIdenticalAcrossJobCounts) {
  const StudySpec spec = small_spec(study::StudyKind::kAb, 900);
  RunOptions one;
  one.jobs = 1;
  one.block_size = 64;
  RunOptions three;
  three.jobs = 3;
  three.block_size = 64;
  const auto a = run(spec, one);
  const auto b = run(spec, three);
  EXPECT_EQ(report_bytes(spec, a.accumulator), report_bytes(spec, b.accumulator));
}

TEST(PopulationStudy, ShardSplitsMergeToTheUnshardedBytesInAnyOrder) {
  const StudySpec spec = small_spec(study::StudyKind::kRating, 2000);
  RunOptions whole;
  whole.jobs = 2;
  whole.block_size = 128;
  const auto reference = run(spec, whole);
  const std::string expected = report_bytes(spec, reference.accumulator);

  // Three shards, each with a DIFFERENT block size than the reference run —
  // participant identity, not work partitioning, determines every draw.
  std::vector<Accumulator> shards;
  for (unsigned i = 0; i < 3; ++i) {
    RunOptions options;
    options.jobs = 2;
    options.shard_index = i;
    options.shard_count = 3;
    options.block_size = 64;
    const auto report = run(spec, options);
    EXPECT_TRUE(report.complete());
    shards.push_back(report.accumulator);
  }
  for (const auto& order : {std::vector<std::size_t>{0, 1, 2}, {2, 0, 1}, {1, 2, 0}}) {
    Accumulator merged = make_accumulator(spec.kind);
    for (const std::size_t i : order) merged.merge(shards[i]);
    EXPECT_EQ(report_bytes(spec, merged), expected);
  }
}

TEST(PopulationStudy, FunnelAndVoteTotalsAreConsistent) {
  const StudySpec spec = small_spec(study::StudyKind::kRating, 1200);
  RunOptions options;
  options.jobs = 2;
  options.block_size = 100;
  const auto report = run(spec, options);
  const Accumulator& acc = report.accumulator;
  EXPECT_EQ(acc.participants, spec.participants);
  std::uint64_t removed = 0;
  for (const std::uint64_t count : acc.removed_at) removed += count;
  EXPECT_EQ(acc.survivors + removed, acc.participants);
  // Every survivor rates the full 11+11+5 context blocks (pools are larger
  // than the per-context budget), with one seconds sample per vote.
  EXPECT_EQ(acc.votes, acc.survivors * (11 + 11 + 5));
  EXPECT_EQ(acc.seconds.count(), acc.votes);
  std::uint64_t cell_votes = 0;
  for (const auto& cell : acc.rating_cells) cell_votes += cell.votes.count();
  EXPECT_EQ(cell_votes, acc.votes);
  // Votes live on the paper's 10..70 scale.
  for (const auto& cell : acc.rating_cells) {
    if (cell.votes.count() == 0) continue;
    EXPECT_GE(cell.votes.mean(), 10.0);
    EXPECT_LE(cell.votes.mean(), 70.0);
  }
}

TEST(PopulationStudy, ResumedRunMatchesUninterruptedBytes) {
  const StudySpec spec = small_spec(study::StudyKind::kRating, 1600);
  const std::string checkpoint = temp_path("qperc_pop_resume.qps");
  std::remove(checkpoint.c_str());

  RunOptions uninterrupted;
  uninterrupted.jobs = 2;
  uninterrupted.block_size = 64;
  const auto reference = run(spec, uninterrupted);

  // First leg: stop deterministically after 10 of 25 blocks.
  RunOptions first;
  first.jobs = 2;
  first.block_size = 64;
  first.checkpoint_path = checkpoint;
  first.checkpoint_every_blocks = 4;
  first.max_blocks = 10;
  const auto partial = run(spec, first);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.blocks_done, 10u);

  // Second leg resumes from the durable file and finishes.
  RunOptions second;
  second.jobs = 3;  // a different job count must not matter
  second.block_size = 64;
  second.checkpoint_path = checkpoint;
  second.resume = true;
  const auto resumed = run(spec, second);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.resumed_blocks, 10u);
  EXPECT_EQ(report_bytes(spec, resumed.accumulator),
            report_bytes(spec, reference.accumulator));
  std::remove(checkpoint.c_str());
}

TEST(PopulationStudy, CheckpointRoundTripsAndRejectsCorruption) {
  const StudySpec spec = small_spec(study::StudyKind::kAb, 500);
  RunOptions options;
  options.jobs = 1;
  options.block_size = 50;
  const auto report = run(spec, options);

  const std::string path = temp_path("qperc_pop_store.qps");
  const StudyStore store(path, spec.fingerprint(), 0, 1, options.block_size);
  store.save(report.accumulator, report.blocks_done);

  Accumulator loaded = make_accumulator(spec.kind);
  std::uint64_t blocks_done = 0;
  ASSERT_TRUE(store.load(loaded, blocks_done));
  EXPECT_EQ(blocks_done, report.blocks_done);
  EXPECT_EQ(report_bytes(spec, loaded), report_bytes(spec, report.accumulator));

  // A different study identity refuses to resume this file.
  StudySpec other = spec;
  other.seed = kSeed + 1;
  const StudyStore mismatched(path, other.fingerprint(), 0, 1, options.block_size);
  Accumulator scratch = make_accumulator(spec.kind);
  EXPECT_FALSE(mismatched.load(scratch, blocks_done));
  // A different shard geometry refuses too.
  const StudyStore other_geometry(path, spec.fingerprint(), 0, 2, options.block_size);
  EXPECT_FALSE(other_geometry.load(scratch, blocks_done));

  // Flipping one payload byte breaks the checksum.
  std::string contents;
  {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  }
  const auto digit = contents.find_first_of("0123456789", contents.find('\n'));
  ASSERT_NE(digit, std::string::npos);
  contents[digit] = contents[digit] == '9' ? '8' : '9';
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }
  EXPECT_FALSE(store.load(scratch, blocks_done));
  EXPECT_FALSE(read_shard(path, make_accumulator(spec.kind)).has_value());
  std::remove(path.c_str());
}

TEST(PopulationStudy, MemoryIsConstantInTheParticipantCount) {
  // Warm everything once (library cache, static pools, allocator pools).
  RunOptions warmup;
  warmup.jobs = 1;
  run(small_spec(study::StudyKind::kRating, 256), warmup);

  const auto measure = [&](std::uint64_t participants) {
    RunOptions options;
    options.jobs = 1;  // inline: no per-round thread stacks in the measurement
    options.block_size = 256;
    const std::uint64_t bytes_before = heap_bytes_allocated();
    const std::uint64_t allocs_before = heap_allocations();
    const auto report = run(small_spec(study::StudyKind::kRating, participants), options);
    EXPECT_TRUE(report.complete());
    return std::pair{heap_bytes_allocated() - bytes_before,
                     heap_allocations() - allocs_before};
  };

  const auto [small_bytes, small_allocs] = measure(1024);
  const auto [large_bytes, large_allocs] = measure(4096);

  // 4x the participants must not cost 4x the memory: the per-participant
  // marginal allocation stays under a few bytes (scratch buffers and
  // accumulators are reused; only per-round bookkeeping remains).
  const double marginal_bytes =
      large_bytes > small_bytes
          ? static_cast<double>(large_bytes - small_bytes) / (4096.0 - 1024.0)
          : 0.0;
  EXPECT_LT(marginal_bytes, 64.0)
      << "small run: " << small_bytes << " B, large run: " << large_bytes << " B";
  const double marginal_allocs =
      large_allocs > small_allocs
          ? static_cast<double>(large_allocs - small_allocs) / (4096.0 - 1024.0)
          : 0.0;
  EXPECT_LT(marginal_allocs, 1.0)
      << "small run: " << small_allocs << " allocs, large run: " << large_allocs;
}

TEST(PopulationStudy, SpecAndOptionsValidateInput) {
  StudySpec spec = small_spec(study::StudyKind::kRating, 0);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.participants = 10;
  spec.videos_work = spec.videos_free_time = spec.videos_plane = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  RunOptions options;
  options.shard_index = 2;
  options.shard_count = 2;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.shard_index = 0;
  options.block_size = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(PopulationStudy, FingerprintSeparatesSpecs) {
  const StudySpec a = small_spec(study::StudyKind::kRating, 1000);
  StudySpec b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.participants = 1001;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  StudySpec c = a;
  c.kind = study::StudyKind::kAb;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  StudySpec d = a;
  d.group = study::Group::kInternet;
  EXPECT_NE(a.fingerprint(), d.fingerprint());
}

}  // namespace
}  // namespace qperc::population
