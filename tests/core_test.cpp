// Core tests: Table-1 protocol configs, trial determinism, video selection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/protocol.hpp"
#include "core/video.hpp"
#include "net/profile.hpp"
#include "web/website.hpp"

namespace qperc::core {
namespace {

TEST(Protocols, Table1Rows) {
  const auto& protocols = paper_protocols();
  ASSERT_EQ(protocols.size(), 5u);

  const auto& tcp = protocols[0];
  EXPECT_EQ(tcp.name, "TCP");
  EXPECT_EQ(tcp.transport, Transport::kTcp);
  EXPECT_EQ(tcp.initial_window_segments, 10u);
  EXPECT_FALSE(tcp.pacing);
  EXPECT_FALSE(tcp.tuned_buffers);
  EXPECT_TRUE(tcp.slow_start_after_idle);
  EXPECT_EQ(tcp.congestion_control, cc::CcKind::kCubic);

  const auto& tcp_plus = protocols[1];
  EXPECT_EQ(tcp_plus.name, "TCP+");
  EXPECT_EQ(tcp_plus.initial_window_segments, 32u);
  EXPECT_TRUE(tcp_plus.pacing);
  EXPECT_TRUE(tcp_plus.tuned_buffers);
  EXPECT_FALSE(tcp_plus.slow_start_after_idle);

  EXPECT_EQ(protocols[2].name, "TCP+BBR");
  EXPECT_EQ(protocols[2].congestion_control, cc::CcKind::kBbr);

  const auto& quic = protocols[3];
  EXPECT_EQ(quic.name, "QUIC");
  EXPECT_EQ(quic.transport, Transport::kQuic);
  EXPECT_EQ(quic.initial_window_segments, 32u);
  EXPECT_TRUE(quic.pacing);
  EXPECT_EQ(quic.congestion_control, cc::CcKind::kCubic);

  EXPECT_EQ(protocols[4].name, "QUIC+BBR");
  EXPECT_EQ(protocols[4].congestion_control, cc::CcKind::kBbr);
}

TEST(Protocols, LookupByName) {
  EXPECT_EQ(protocol_by_name("QUIC+BBR").congestion_control, cc::CcKind::kBbr);
  EXPECT_THROW(static_cast<void>(protocol_by_name("SCTP")), std::invalid_argument);
}

TEST(Protocols, ConfigConversion) {
  const auto& tcp_plus = protocol_by_name("TCP+");
  const auto tcp_config = tcp_plus.tcp_config();
  EXPECT_EQ(tcp_config.initial_window_segments, 32u);
  EXPECT_TRUE(tcp_config.pacing);
  EXPECT_TRUE(tcp_config.tuned_buffers);
  EXPECT_FALSE(tcp_config.slow_start_after_idle);
  EXPECT_EQ(tcp_config.handshake_rtts, 2u);

  const auto& quic = protocol_by_name("QUIC");
  const auto quic_config = quic.quic_config();
  EXPECT_EQ(quic_config.initial_window_segments, 32u);
  EXPECT_FALSE(quic_config.zero_rtt);
}

TEST(Video, TypicalTrialIsClosestToMeanPlt) {
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[6];
  const auto video = produce_video(site, protocol_by_name("QUIC"), net::lte_profile(),
                                   /*runs=*/9, /*base_seed=*/123);
  EXPECT_EQ(video.runs, 9u);
  // The selected trial's PLT must lie within the spread around the mean —
  // verify it is close to the per-condition mean PLT.
  EXPECT_TRUE(video.metrics.finished);
  EXPECT_LT(std::fabs(video.metrics.plt_ms() - video.mean_metrics.plt_ms()),
            video.mean_metrics.plt_ms() * 0.5);
  EXPECT_FALSE(video.vc_curve.empty());
}

TEST(Video, DeterministicForSameInputs) {
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[0];
  const auto a =
      produce_video(site, protocol_by_name("TCP"), net::dsl_profile(), 5, 99);
  const auto b =
      produce_video(site, protocol_by_name("TCP"), net::dsl_profile(), 5, 99);
  EXPECT_DOUBLE_EQ(a.metrics.si_ms(), b.metrics.si_ms());
  EXPECT_DOUBLE_EQ(a.mean_metrics.plt_ms(), b.mean_metrics.plt_ms());
}

TEST(VideoLibrary, CachesAndIsConsistent) {
  VideoLibrary library(7, 3);
  EXPECT_EQ(library.catalog().size(), 36u);
  const auto& first = library.get("gov.uk", "QUIC", net::NetworkKind::kDsl);
  const auto& second = library.get("gov.uk", "QUIC", net::NetworkKind::kDsl);
  EXPECT_EQ(&first, &second);  // cached object, not recomputed
  EXPECT_EQ(first.site, "gov.uk");
  EXPECT_EQ(first.protocol, "QUIC");
}

TEST(VideoLibrary, PrecomputeMatchesLazyCompute) {
  VideoLibrary lazy(7, 3);
  VideoLibrary eager(7, 3);
  eager.precompute({"gov.uk"}, {"TCP", "QUIC"}, {net::NetworkKind::kLte});
  EXPECT_DOUBLE_EQ(lazy.get("gov.uk", "TCP", net::NetworkKind::kLte).metrics.si_ms(),
                   eager.get("gov.uk", "TCP", net::NetworkKind::kLte).metrics.si_ms());
  EXPECT_DOUBLE_EQ(lazy.get("gov.uk", "QUIC", net::NetworkKind::kLte).metrics.si_ms(),
                   eager.get("gov.uk", "QUIC", net::NetworkKind::kLte).metrics.si_ms());
}

TEST(VideoLibrary, UnknownSiteThrows) {
  VideoLibrary library(7, 2);
  EXPECT_THROW(static_cast<void>(library.site_by_name("not-a-site.test")), std::invalid_argument);
}

TEST(VideoLibrary, CacheRoundTrips) {
  const std::string path = "/tmp/qperc_test_cache_roundtrip.cache";
  VideoLibrary writer(7, 2);
  const auto& original = writer.get("gov.uk", "QUIC", net::NetworkKind::kDsl);
  writer.save_cache(path);

  VideoLibrary reader(7, 2);
  ASSERT_TRUE(reader.load_cache(path));
  EXPECT_EQ(reader.cached_conditions(), 1u);
  const auto& loaded = reader.get("gov.uk", "QUIC", net::NetworkKind::kDsl);
  EXPECT_EQ(loaded.site, original.site);
  EXPECT_EQ(loaded.protocol, original.protocol);
  EXPECT_EQ(loaded.runs, original.runs);
  EXPECT_DOUBLE_EQ(loaded.metrics.si_ms(), original.metrics.si_ms());
  EXPECT_DOUBLE_EQ(loaded.mean_metrics.plt_ms(), original.mean_metrics.plt_ms());
  EXPECT_DOUBLE_EQ(loaded.mean_retransmissions, original.mean_retransmissions);
  ASSERT_EQ(loaded.vc_curve.size(), original.vc_curve.size());
  for (std::size_t i = 0; i < loaded.vc_curve.size(); ++i) {
    EXPECT_EQ(loaded.vc_curve[i].time, original.vc_curve[i].time);
    EXPECT_DOUBLE_EQ(loaded.vc_curve[i].completeness, original.vc_curve[i].completeness);
  }
  std::remove(path.c_str());
}

TEST(VideoLibrary, CacheRejectsMismatchedParameters) {
  const std::string path = "/tmp/qperc_test_cache_mismatch.cache";
  VideoLibrary writer(7, 2);
  (void)writer.get("gov.uk", "TCP", net::NetworkKind::kDsl);
  writer.save_cache(path);

  VideoLibrary other_runs(7, 3);
  EXPECT_FALSE(other_runs.load_cache(path));
  VideoLibrary other_seed(8, 2);
  EXPECT_FALSE(other_seed.load_cache(path));
  VideoLibrary missing(7, 2);
  EXPECT_FALSE(missing.load_cache("/tmp/does_not_exist.qperc"));
  std::remove(path.c_str());
}

TEST(VideoLibrary, CorruptOrTruncatedCacheLeavesLibraryUntouched) {
  const std::string path = "/tmp/qperc_test_cache_corrupt.cache";
  VideoLibrary writer(7, 2);
  (void)writer.get("gov.uk", "QUIC", net::NetworkKind::kDsl);
  (void)writer.get("gov.uk", "TCP", net::NetworkKind::kLte);
  writer.save_cache(path);

  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    good = buffer.str();
  }
  ASSERT_FALSE(good.empty());

  // Truncate mid-record: load_cache must fail WITHOUT leaving the partial
  // prefix in the cache (the old implementation kept whatever parsed).
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << good.substr(0, good.size() / 2);
  }
  VideoLibrary truncated_reader(7, 2);
  (void)truncated_reader.get("wikipedia.org", "QUIC", net::NetworkKind::kDsl);
  EXPECT_FALSE(truncated_reader.load_cache(path));
  EXPECT_EQ(truncated_reader.cached_conditions(), 1u);  // only the precomputed one

  // Corrupt a numeric field in the first record (the v1 format has no
  // checksum, so only in-band parse failures are detectable).
  std::string corrupt = good;
  const auto payload = corrupt.find('\n') + 1;
  const auto digit = corrupt.find_first_of("0123456789", payload);
  ASSERT_NE(digit, std::string::npos);
  corrupt[digit] = 'x';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  VideoLibrary corrupt_reader(7, 2);
  EXPECT_FALSE(corrupt_reader.load_cache(path));
  EXPECT_EQ(corrupt_reader.cached_conditions(), 0u);
  std::remove(path.c_str());
}

TEST(VideoLibrary, SaveCacheIsAtomic) {
  const std::string path = "/tmp/qperc_test_cache_atomic.cache";
  VideoLibrary writer(7, 2);
  (void)writer.get("gov.uk", "QUIC", net::NetworkKind::kDsl);
  writer.save_cache(path);
  // The temp file used for the atomic rename never survives.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  VideoLibrary reader(7, 2);
  EXPECT_TRUE(reader.load_cache(path));
  std::remove(path.c_str());
}

TEST(VideoLibrary, PrecomputeReportsFailureAfterCachingTheRest) {
  VideoLibrary library(7, 2);
  // The old thread loop called std::terminate on a throwing condition;
  // now the good conditions are cached and the failure surfaces as an
  // exception after the batch completes.
  EXPECT_THROW(library.precompute({"gov.uk", "not-a-site.test"}, {"QUIC"},
                                  {net::NetworkKind::kDsl}),
               std::invalid_argument);
  EXPECT_EQ(library.cached_conditions(), 1u);
  EXPECT_EQ(library.get("gov.uk", "QUIC", net::NetworkKind::kDsl).site, "gov.uk");
}

TEST(Video, ConditionBaseSeedIsStableAndDistinct) {
  const auto seed = condition_base_seed(7, "gov.uk", "QUIC", net::NetworkKind::kDsl);
  EXPECT_EQ(seed, condition_base_seed(7, "gov.uk", "QUIC", net::NetworkKind::kDsl));
  EXPECT_NE(seed, condition_base_seed(8, "gov.uk", "QUIC", net::NetworkKind::kDsl));
  EXPECT_NE(seed, condition_base_seed(7, "gov.uk", "TCP", net::NetworkKind::kDsl));
  EXPECT_NE(seed, condition_base_seed(7, "gov.uk", "QUIC", net::NetworkKind::kLte));
}

TEST(TrialSpec, RejectsMissingSiteOrProtocol) {
  const auto catalog = web::study_catalog(7);
  TrialSpec no_site;
  no_site.protocol = &protocol_by_name("TCP");
  no_site.profile = net::dsl_profile();
  EXPECT_THROW(static_cast<void>(run_trial(no_site)), std::invalid_argument);

  TrialSpec no_protocol;
  no_protocol.site = &catalog[0];
  no_protocol.profile = net::dsl_profile();
  EXPECT_THROW(static_cast<void>(run_trial(no_protocol)), std::invalid_argument);
}

TEST(TrialSpec, MaxEventsCapsTheTrial) {
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[0];
  const auto full =
      run_trial(TrialSpec(site, protocol_by_name("QUIC"), net::lte_profile(), 42));
  ASSERT_TRUE(full.metrics.finished);
  // A budget far below the ~hundreds of thousands of events a page load
  // needs must stop the trial early (and not hang or throw).
  const auto capped = run_trial(TrialSpec(site, protocol_by_name("QUIC"), net::lte_profile(), 42)
                                    .with_max_events(500));
  EXPECT_FALSE(capped.metrics.finished);
}

TEST(TrialSpec, ExplicitlyDisabledContentionMatchesDefault) {
  // TrialSpec is the single construction path now that the deprecated
  // run_trial shims are gone; an explicit flows=0 contention config must be
  // indistinguishable from the default spec (zero extra RNG draws).
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[2];
  const auto& protocol = protocol_by_name("TCP+");
  const auto profile = net::lte_profile();
  const auto by_default = run_trial(TrialSpec(site, protocol, profile, 77));
  net::ContentionConfig disabled;
  disabled.flows = 0;
  disabled.mix = net::CrossMix::kMixed;  // ignored while flows == 0
  const auto explicit_off =
      run_trial(TrialSpec(site, protocol, profile, 77).with_contention(disabled));
  EXPECT_EQ(by_default.metrics.speed_index, explicit_off.metrics.speed_index);
  EXPECT_EQ(by_default.metrics.page_load_time, explicit_off.metrics.page_load_time);
  EXPECT_EQ(by_default.transport.retransmissions, explicit_off.transport.retransmissions);
  EXPECT_EQ(by_default.connections_opened, explicit_off.connections_opened);
}

TEST(Http1Baseline, LoadsAndIsSlowerThanQuic) {
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[1];  // gov.uk
  const auto h1 = run_trial(TrialSpec(site, http1_baseline_protocol(), net::lte_profile(), 5));
  const auto quic = run_trial(TrialSpec(site, protocol_by_name("QUIC"), net::lte_profile(), 5));
  ASSERT_TRUE(h1.metrics.finished);
  ASSERT_TRUE(quic.metrics.finished);
  EXPECT_GT(h1.metrics.si_ms(), quic.metrics.si_ms());
  EXPECT_EQ(protocol_by_name("TCP-H1").transport, Transport::kTcpH1);
}

}  // namespace
}  // namespace qperc::core
