// Catalog serialization tests: round-trips and malformed-input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "web/catalog_io.hpp"

namespace qperc::web {
namespace {

TEST(CatalogIo, RoundTripsTheStudyCatalog) {
  const auto original = study_catalog(7);
  std::stringstream buffer;
  write_catalog(buffer, original);
  const auto loaded = read_catalog(buffer);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t s = 0; s < original.size(); ++s) {
    EXPECT_EQ(loaded[s].name, original[s].name);
    EXPECT_EQ(loaded[s].origin_count, original[s].origin_count);
    ASSERT_EQ(loaded[s].objects.size(), original[s].objects.size());
    for (std::size_t i = 0; i < original[s].objects.size(); ++i) {
      const auto& a = original[s].objects[i];
      const auto& b = loaded[s].objects[i];
      EXPECT_EQ(b.id, a.id);
      EXPECT_EQ(b.type, a.type);
      EXPECT_EQ(b.origin, a.origin);
      EXPECT_EQ(b.bytes, a.bytes);
      EXPECT_EQ(b.parent, a.parent);
      EXPECT_DOUBLE_EQ(b.discovery_fraction, a.discovery_fraction);
      EXPECT_EQ(std::chrono::duration_cast<microseconds>(b.parse_delay),
                std::chrono::duration_cast<microseconds>(a.parse_delay));
      EXPECT_EQ(b.render_blocking, a.render_blocking);
      EXPECT_EQ(b.deferred, a.deferred);
      EXPECT_DOUBLE_EQ(b.render_weight, a.render_weight);
      EXPECT_EQ(b.priority, a.priority);
    }
  }
}

TEST(CatalogIo, ParsesHandWrittenCatalog) {
  std::stringstream buffer(
      "# my tiny catalog\n"
      "site example.test 2\n"
      "obj 0 html 0 20000 -1 0 0 1 0 0.5 0\n"
      "obj 1 image 1 50000 0 0.5 1000 0 0 0.5 3\n");
  const auto catalog = read_catalog(buffer);
  ASSERT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog[0].name, "example.test");
  ASSERT_EQ(catalog[0].objects.size(), 2u);
  EXPECT_EQ(catalog[0].objects[1].type, ObjectType::kImage);
  EXPECT_EQ(catalog[0].objects[1].parse_delay, microseconds(1000));
}

TEST(CatalogIo, RejectsMalformedInput) {
  const auto expect_throw = [](const std::string& text) {
    std::stringstream buffer(text);
    EXPECT_THROW(static_cast<void>(read_catalog(buffer)), std::runtime_error) << text;
  };
  expect_throw("obj 0 html 0 100 -1 0 0 1 0 0.5 0\n");             // obj before site
  expect_throw("site a 1\nobj 1 html 0 100 -1 0 0 1 0 0.5 0\n");   // non-dense id
  expect_throw("site a 1\nobj 0 html 0 100 5 0 0 1 0 0.5 0\n");    // forward parent
  expect_throw("site a 1\nobj 0 html 3 100 -1 0 0 1 0 0.5 0\n");   // origin range
  expect_throw("site a 1\nobj 0 html 0 0 -1 0 0 1 0 0.5 0\n");     // zero bytes
  expect_throw("site a 1\nobj 0 blob 0 100 -1 0 0 1 0 0.5 0\n");   // bad type
  expect_throw("site a 0\nobj 0 html 0 100 -1 0 0 1 0 0.5 0\n");   // zero origins
  expect_throw("site a 1\n");                                      // empty site
  expect_throw("frob x y\n");                                      // unknown keyword
}

TEST(CatalogIo, ObjectTypeTokensRoundTrip) {
  for (const auto type : {ObjectType::kHtml, ObjectType::kCss, ObjectType::kScript,
                          ObjectType::kImage, ObjectType::kFont, ObjectType::kOther}) {
    EXPECT_EQ(object_type_from_token(object_type_token(type)), type);
  }
  EXPECT_THROW(static_cast<void>(object_type_from_token("blob")), std::runtime_error);
}

}  // namespace
}  // namespace qperc::web
