// Cross-module integration tests reproducing the paper's causal mechanisms.
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "core/video.hpp"
#include "net/profile.hpp"
#include "stats/stats.hpp"
#include "study/rater.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

/// Mean SI over a few seeds for one condition.
double mean_si_ms(const web::Website& site, const std::string& protocol,
                  const net::NetworkProfile& profile, int runs = 7) {
  double sum = 0.0;
  for (int seed = 1; seed <= runs; ++seed) {
    const auto result = core::run_trial(core::TrialSpec(site, core::protocol_by_name(protocol), profile, static_cast<std::uint64_t>(seed) * 1000 + 7));
    sum += result.metrics.si_ms();
  }
  return sum / runs;
}

double mean_retx(const web::Website& site, const std::string& protocol,
                 const net::NetworkProfile& profile, int runs = 7) {
  double sum = 0.0;
  for (int seed = 1; seed <= runs; ++seed) {
    const auto result = core::run_trial(core::TrialSpec(site, core::protocol_by_name(protocol), profile, static_cast<std::uint64_t>(seed) * 1000 + 7));
    sum += static_cast<double>(result.transport.retransmissions);
  }
  return sum / runs;
}

const web::Website& site_named(const std::vector<web::Website>& catalog,
                               std::string_view name) {
  for (const auto& site : catalog) {
    if (site.name == name) return site;
  }
  throw std::runtime_error("missing site");
}

TEST(Integration, QuicBeatsStockTcpOnEveryNetwork) {
  const auto catalog = web::study_catalog(7);
  const auto& site = site_named(catalog, "gov.uk");
  for (const auto& profile : net::all_profiles()) {
    EXPECT_LT(mean_si_ms(site, "QUIC", profile), mean_si_ms(site, "TCP", profile))
        << profile.name;
  }
}

TEST(Integration, TunedTcpBeatsStockTcpOnCleanNetworks) {
  const auto catalog = web::study_catalog(7);
  const auto& site = site_named(catalog, "wikipedia.org");
  EXPECT_LT(mean_si_ms(site, "TCP+", net::dsl_profile()),
            mean_si_ms(site, "TCP", net::dsl_profile()));
  EXPECT_LT(mean_si_ms(site, "TCP+", net::lte_profile()),
            mean_si_ms(site, "TCP", net::lte_profile()));
}

TEST(Integration, QuicBeatsTunedTcpThanksToHandshake) {
  // Even against TCP+, QUIC keeps its 1-RTT advantage (§4.3).
  const auto catalog = web::study_catalog(7);
  const auto& site = site_named(catalog, "gov.uk");
  EXPECT_LT(mean_si_ms(site, "QUIC", net::lte_profile()),
            mean_si_ms(site, "TCP+", net::lte_profile()));
}

TEST(Integration, Da2gcTcpPlusRetransmitsMoreThanStock) {
  // §4.3: on DA2GC, TCP+ shows ~1.5x (up to 4.8x) the retransmissions of
  // stock TCP — the IW32 burst overwhelms the slow lossy link.
  const auto catalog = web::study_catalog(7);
  const auto& site = site_named(catalog, "gov.uk");
  const double stock = mean_retx(site, "TCP", net::da2gc_profile());
  const double tuned = mean_retx(site, "TCP+", net::da2gc_profile());
  EXPECT_GT(tuned, stock * 1.2);
}

TEST(Integration, MultiOriginSitesAmplifyQuicAdvantage) {
  // Each origin costs one handshake, so QUIC's 1-RTT saving multiplies with
  // the number of contacted servers (the spotify.com effect, §4.4).
  const auto catalog = web::study_catalog(7);
  const auto& many_origins = site_named(catalog, "spotify.com");
  const auto& single_origin = site_named(catalog, "archive.org");
  const auto& lte = net::lte_profile();
  const double gain_many =
      mean_si_ms(many_origins, "TCP+", lte) - mean_si_ms(many_origins, "QUIC", lte);
  const double gain_single =
      mean_si_ms(single_origin, "TCP+", lte) - mean_si_ms(single_origin, "QUIC", lte);
  EXPECT_GT(gain_many, gain_single);
}

TEST(Integration, PerceivedRatingsTrackNetworkQuality) {
  // End-to-end: videos produced by the testbed rate best on DSL, worst on
  // the in-flight networks.
  core::VideoLibrary library(7, 3);
  const auto rating_for = [&](net::NetworkKind network, study::Context context) {
    const auto& video = library.get("gov.uk", "QUIC", network);
    return study::ideal_rating(video.metrics, context);
  };
  const double dsl = rating_for(net::NetworkKind::kDsl, study::Context::kWork);
  const double lte = rating_for(net::NetworkKind::kLte, study::Context::kWork);
  const double mss = rating_for(net::NetworkKind::kMss, study::Context::kPlane);
  EXPECT_GT(dsl, lte);
  EXPECT_GT(lte, mss);
  EXPECT_GT(dsl, 50.0);  // good territory
  EXPECT_LT(mss, 48.0);  // clearly below the fast networks (small site => mild)
}

TEST(Integration, HandshakeAdvantageVisibleInFvc) {
  // On LTE (74 ms RTT), QUIC's FVC should lead TCP+'s by roughly one RTT
  // per dependency level (at least ~60 ms for the root document chain).
  const auto catalog = web::study_catalog(7);
  const auto& site = site_named(catalog, "archive.org");
  double tcp_fvc = 0.0;
  double quic_fvc = 0.0;
  for (int seed = 1; seed <= 7; ++seed) {
    tcp_fvc += core::run_trial(core::TrialSpec(site, core::protocol_by_name("TCP+"), net::lte_profile(), static_cast<std::uint64_t>(seed)))
                   .metrics.fvc_ms();
    quic_fvc += core::run_trial(core::TrialSpec(site, core::protocol_by_name("QUIC"), net::lte_profile(), static_cast<std::uint64_t>(seed)))
                    .metrics.fvc_ms();
  }
  EXPECT_GT(tcp_fvc - quic_fvc, 7 * 50.0);
}

TEST(Integration, ZeroRttAblationFasterStill) {
  core::ProtocolConfig zero_rtt = core::protocol_by_name("QUIC");
  zero_rtt.name = "QUIC-0RTT";
  zero_rtt.zero_rtt = true;
  const auto catalog = web::study_catalog(7);
  const auto& site = site_named(catalog, "archive.org");
  double one_rtt_si = 0.0;
  double zero_rtt_si = 0.0;
  for (int seed = 1; seed <= 5; ++seed) {
    one_rtt_si += core::run_trial(core::TrialSpec(site, core::protocol_by_name("QUIC"), net::lte_profile(), static_cast<std::uint64_t>(seed)))
                      .metrics.si_ms();
    zero_rtt_si += core::run_trial(core::TrialSpec(site, zero_rtt, net::lte_profile(), static_cast<std::uint64_t>(seed)))
                       .metrics.si_ms();
  }
  EXPECT_LT(zero_rtt_si, one_rtt_si);
}

}  // namespace
}  // namespace qperc
