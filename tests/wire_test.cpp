// Wire-level tests via PacketTrace: what actually crosses the emulated links
// (pacing spacing, handshake packet counts, burst shapes).
#include <gtest/gtest.h>

#include <sstream>

#include "net/packet_trace.hpp"
#include "tests/transport_test_util.hpp"

namespace qperc::net {
namespace {

TEST(PacketTrace, RecordsEnqueueAndDelivery) {
  sim::Simulator simulator;
  EmulatedNetwork network(simulator, dsl_profile(), Rng(1));
  PacketTrace trace(simulator, network);
  const FlowId flow = network.allocate_flow_id();
  network.register_server_flow(flow, [](Packet) {});
  Packet packet;
  packet.flow = flow;
  packet.wire_bytes = 500;
  network.client_send(packet);
  simulator.run();
  EXPECT_EQ(trace.count(Direction::kUplink, LinkEvent::kEnqueued), 1u);
  EXPECT_EQ(trace.count(Direction::kUplink, LinkEvent::kDelivered), 1u);
  EXPECT_EQ(trace.count(Direction::kDownlink, LinkEvent::kDelivered), 0u);
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_EQ(trace.records()[0].wire_bytes, 500u);
}

TEST(PacketTrace, CsvRendering) {
  sim::Simulator simulator;
  EmulatedNetwork network(simulator, dsl_profile(), Rng(1));
  PacketTrace trace(simulator, network);
  const FlowId flow = network.allocate_flow_id();
  network.register_server_flow(flow, [](Packet) {});
  Packet packet;
  packet.flow = flow;
  packet.wire_bytes = 100;
  network.client_send(packet);
  simulator.run();
  std::ostringstream os;
  trace.print_csv(os);
  EXPECT_NE(os.str().find("time_ms,direction,event,flow,wire_bytes"), std::string::npos);
  EXPECT_NE(os.str().find("up,enqueued"), std::string::npos);
}

TEST(PacketTrace, QueueDropsAreVisible) {
  sim::Simulator simulator;
  NetworkProfile tiny = dsl_profile();
  tiny.downlink = DataRate::kilobits_per_second(100);
  EmulatedNetwork network(simulator, tiny, Rng(1));
  PacketTrace trace(simulator, network);
  const FlowId flow = network.allocate_flow_id();
  network.register_client_flow(flow, [](Packet) {});
  for (int i = 0; i < 50; ++i) {
    Packet packet;
    packet.flow = flow;
    packet.wire_bytes = kMtuBytes;
    network.server_send(packet);
  }
  simulator.run();
  EXPECT_GT(trace.count(Direction::kDownlink, LinkEvent::kDroppedQueueFull), 0u);
}

/// The paced IW32 first flight must be spread over the wire instead of
/// arriving back to back at line rate (Table 1's pacing column, verified on
/// actual packet timestamps).
TEST(WireBehaviour, PacingSpreadsTheFirstFlight) {
  const auto flight_gaps = [](bool pacing) {
    testutil::TcpHarness harness(net::lte_profile(),
                                 [&] {
                                   tcp::TcpConfig config;
                                   config.initial_window_segments = 32;
                                   config.pacing = pacing;
                                   config.tuned_buffers = true;
                                   return config;
                                 }(),
                                 400'000, 3);
    PacketTrace trace(harness.simulator, *harness.network);
    harness.run(seconds(2));
    // Enqueue timestamps show the *sender's* emission pattern (delivery
    // timestamps would be line-rate spaced whenever the queue is backlogged).
    std::vector<SimTime> arrivals;
    for (const auto& record : trace.records()) {
      if (record.direction == Direction::kDownlink &&
          record.event == LinkEvent::kEnqueued) {
        arrivals.push_back(record.time);
      }
    }
    // Gap across the tail of the first data flight (past the TLS flight and
    // the pacer's 10-segment initial quantum, i.e. fully paced region).
    if (arrivals.size() < 29) return SimDuration::zero();
    return arrivals[28] - arrivals[15];
  };
  const SimDuration unpaced = flight_gaps(false);
  const SimDuration paced = flight_gaps(true);
  // The unpaced sender dumps the whole flight into the queue at one instant.
  EXPECT_LT(unpaced, milliseconds(1));
  // The paced sender spreads those ten packets over several milliseconds.
  EXPECT_GT(paced, milliseconds(4));
}

/// QUIC's handshake puts fewer round trips but *bigger* packets on the wire
/// (padded CHLO/REJ) than TCP's SYN exchange.
TEST(WireBehaviour, QuicHandshakeUsesPaddedPackets) {
  sim::Simulator simulator;
  EmulatedNetwork network(simulator, dsl_profile(), Rng(2));
  PacketTrace trace(simulator, network);
  quic::QuicConnection connection(simulator, network, ServerId{0}, quic::QuicConfig{},
                                  {});
  connection.connect();
  simulator.run_until(SimTime(milliseconds(100)));
  ASSERT_FALSE(trace.records().empty());
  // First uplink packet is the padded inchoate CHLO.
  EXPECT_EQ(trace.records().front().direction, Direction::kUplink);
  EXPECT_GE(trace.records().front().wire_bytes, 1300u);
}

TEST(WireBehaviour, TcpHandshakeStartsWithSmallSyn) {
  sim::Simulator simulator;
  EmulatedNetwork network(simulator, dsl_profile(), Rng(2));
  PacketTrace trace(simulator, network);
  tcp::TcpConnection connection(simulator, network, ServerId{0}, tcp::TcpConfig{}, {});
  connection.connect();
  simulator.run_until(SimTime(milliseconds(100)));
  ASSERT_FALSE(trace.records().empty());
  EXPECT_LT(trace.records().front().wire_bytes, 100u);
}

/// ACK traffic flows upstream: a pure download still generates a steady
/// uplink packet stream (roughly one ACK per two data packets).
TEST(WireBehaviour, DelayedAcksHalveTheAckRate) {
  testutil::TcpHarness harness(net::dsl_profile(), tcp::TcpConfig{}, 500'000, 4);
  PacketTrace trace(harness.simulator, *harness.network);
  ASSERT_TRUE(harness.run());
  const auto down = trace.count(Direction::kDownlink, LinkEvent::kDelivered);
  const auto up = trace.count(Direction::kUplink, LinkEvent::kDelivered);
  ASSERT_GT(down, 300u);
  // ACKs should be notably fewer than data packets but not vanishing.
  EXPECT_LT(up, down);
  EXPECT_GT(up, down / 5);
}

}  // namespace
}  // namespace qperc::net
