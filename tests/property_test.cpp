// Parameterized property sweeps: invariants that must hold for every
// (protocol, network) combination and across loss seeds.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/profile.hpp"
#include "tests/transport_test_util.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

using ProtocolNetwork = std::tuple<std::string, net::NetworkKind>;

class TrialPropertyTest : public ::testing::TestWithParam<ProtocolNetwork> {};

TEST_P(TrialPropertyTest, PageLoadInvariants) {
  const auto& [protocol_name, network] = GetParam();
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[9];  // w3.org: small, completes quickly everywhere
  const auto& protocol = core::protocol_by_name(protocol_name);
  const auto& profile = net::profile_for(network);

  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const auto result = core::run_trial(core::TrialSpec(site, protocol, profile, seed));
    ASSERT_TRUE(result.metrics.finished) << protocol_name << " seed " << seed;

    // Metric ordering: FVC <= VC85 <= LVC <= PLT and SI within [FVC, LVC].
    EXPECT_LE(result.metrics.fvc_ms(), result.metrics.vc85_ms() + 1e-9);
    EXPECT_LE(result.metrics.vc85_ms(), result.metrics.lvc_ms() + 1e-9);
    EXPECT_LE(result.metrics.lvc_ms(), result.metrics.plt_ms() + 1e-9);
    EXPECT_GE(result.metrics.si_ms(), result.metrics.fvc_ms() - 1e-9);
    EXPECT_LE(result.metrics.si_ms(), result.metrics.lvc_ms() + 1e-9);

    // Physical floor: nothing can complete faster than handshake + one
    // request/response round trip at the speed of light in the emulation.
    const double min_rtt_ms = to_millis(profile.min_rtt);
    const double floor_rtts = protocol.transport == core::Transport::kQuic ? 2.0 : 3.0;
    EXPECT_GE(result.metrics.plt_ms(), floor_rtts * min_rtt_ms * 0.95);

    // The VC curve ends at 1 and every object completed.
    ASSERT_FALSE(result.vc_curve.empty());
    EXPECT_NEAR(result.vc_curve.back().completeness, 1.0, 1e-9);
    for (const auto time : result.object_complete_at) EXPECT_NE(time, kNoTime);

    // Transport accounting sanity.
    EXPECT_GT(result.transport.data_packets_sent, 0u);
    EXPECT_GE(result.transport.bytes_sent, site.total_bytes());
    EXPECT_LE(result.transport.retransmissions, result.transport.data_packets_sent);
    if (profile.loss_rate == 0.0 && protocol_name == "TCP") {
      // Queue drops can still cause retransmissions, but timeouts should be
      // rare on clean networks.
      EXPECT_LE(result.transport.timeouts, 3u);
    }
  }
}

std::vector<ProtocolNetwork> all_combinations() {
  std::vector<ProtocolNetwork> combos;
  for (const auto& protocol : core::paper_protocols()) {
    for (const auto& profile : net::all_profiles()) {
      combos.emplace_back(protocol.name, profile.kind);
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(AllProtocolsAllNetworks, TrialPropertyTest,
                         ::testing::ValuesIn(all_combinations()),
                         [](const ::testing::TestParamInfo<ProtocolNetwork>& info) {
                           std::string name = std::get<0>(info.param) + "_" +
                                              std::string(net::to_string(std::get<1>(info.param)));
                           for (auto& c : name) {
                             if (c == '+') c = 'p';
                           }
                           return name;
                         });

class TcpLossSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TcpLossSweepTest, ReliableDeliveryAcrossLossRates) {
  // Property: TCP delivers exactly the written bytes for any loss rate.
  const double loss = GetParam() / 100.0;
  net::NetworkProfile profile = net::lte_profile();
  profile.loss_rate = loss;
  tcp::TcpConfig config;
  config.tuned_buffers = true;
  config.initial_window_segments = 32;
  config.pacing = true;
  for (std::uint64_t seed : {1u, 2u}) {
    testutil::TcpHarness harness(profile, config, 120'000, seed);
    ASSERT_TRUE(harness.run(seconds(600))) << "loss " << loss << " seed " << seed;
    EXPECT_EQ(harness.delivered, 120'000u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossGrid, TcpLossSweepTest, ::testing::Values(0, 1, 3, 6, 10, 15));

class QuicLossSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(QuicLossSweepTest, ReliableDeliveryAcrossLossRates) {
  const double loss = GetParam() / 100.0;
  net::NetworkProfile profile = net::lte_profile();
  profile.loss_rate = loss;
  for (std::uint64_t seed : {1u, 2u}) {
    testutil::QuicHarness harness(profile, quic::QuicConfig{}, 120'000, seed);
    ASSERT_TRUE(harness.run(3, seconds(600))) << "loss " << loss << " seed " << seed;
    EXPECT_EQ(harness.bytes_delivered, 3u * 120'000u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossGrid, QuicLossSweepTest, ::testing::Values(0, 1, 3, 6, 10, 15));

class IwSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(IwSweepTest, ShortTransferTimeDecreasesWithIwOnCleanNetwork) {
  // Property: on a clean network, a larger IW never makes a short transfer
  // slower (it saves slow-start round trips).
  const auto iw = static_cast<std::uint32_t>(GetParam());
  tcp::TcpConfig small;
  small.initial_window_segments = 10;
  tcp::TcpConfig large;
  large.initial_window_segments = iw;
  testutil::TcpHarness a(net::lte_profile(), small, 60'000, 4);
  ASSERT_TRUE(a.run());
  testutil::TcpHarness b(net::lte_profile(), large, 60'000, 4);
  ASSERT_TRUE(b.run());
  EXPECT_LE(b.simulator.now(), a.simulator.now());
}

INSTANTIATE_TEST_SUITE_P(IwGrid, IwSweepTest, ::testing::Values(10, 16, 32, 64));

}  // namespace
}  // namespace qperc
