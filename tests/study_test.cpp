// Study-layer tests: rater psychometrics, conformance filter, study drivers.
#include <gtest/gtest.h>

#include "core/video.hpp"
#include "stats/stats.hpp"
#include "study/ab_study.hpp"
#include "study/conformance.hpp"
#include "study/participant.hpp"
#include "study/rater.hpp"
#include "study/rating_study.hpp"

namespace qperc::study {
namespace {

browser::PageMetrics metrics_with_si(double si_ms) {
  browser::PageMetrics metrics;
  metrics.speed_index = from_seconds(si_ms / 1000.0);
  metrics.first_visual_change = from_seconds(si_ms / 1000.0 * 0.6);
  metrics.visual_complete_85 = from_seconds(si_ms / 1000.0 * 1.2);
  metrics.last_visual_change = from_seconds(si_ms / 1000.0 * 1.5);
  metrics.page_load_time = from_seconds(si_ms / 1000.0 * 2.0);
  metrics.finished = true;
  return metrics;
}

core::Video video_with_si(double si_ms) {
  core::Video video;
  video.metrics = metrics_with_si(si_ms);
  return video;
}

Participant attentive_participant() {
  Participant participant;
  participant.rating_bias = 0.0;
  participant.vote_noise_sd = 1.0;
  participant.observation_noise = 0.01;
  participant.jnd = 0.08;
  participant.cheater = false;
  return participant;
}

TEST(Rater, PerceivedDurationIncreasesWithSi) {
  EXPECT_LT(perceived_duration_seconds(metrics_with_si(500)),
            perceived_duration_seconds(metrics_with_si(5000)));
}

TEST(Rater, IdealRatingMonotoneDecreasingInSi) {
  double previous = 1e9;
  for (const double si : {300.0, 1000.0, 3000.0, 10'000.0, 40'000.0}) {
    const double rating = ideal_rating(metrics_with_si(si), Context::kWork);
    EXPECT_LT(rating, previous) << si;
    previous = rating;
  }
}

TEST(Rater, FastLoadsRateGoodSlowLoadsRateBad) {
  // DSL-like: excellent/good territory.
  EXPECT_GT(ideal_rating(metrics_with_si(1200), Context::kFreeTime), 50.0);
  // In-flight network: poor/bad.
  EXPECT_LT(ideal_rating(metrics_with_si(20'000), Context::kPlane), 40.0);
  // Scale bounds respected.
  EXPECT_LE(ideal_rating(metrics_with_si(1), Context::kWork), 70.0);
  EXPECT_GE(ideal_rating(metrics_with_si(10'000'000), Context::kWork), 10.0);
}

TEST(Rater, PlaneContextIsMoreLenient) {
  EXPECT_GT(ideal_rating(metrics_with_si(8000), Context::kPlane),
            ideal_rating(metrics_with_si(8000), Context::kWork));
}

TEST(Rater, RateVideoAddsBiasAndClamps) {
  Rng rng(1);
  Participant participant = attentive_participant();
  participant.rating_bias = 200.0;  // absurd bias must clamp at 70
  EXPECT_DOUBLE_EQ(rate_video(video_with_si(1000), Context::kWork, participant, rng), 70.0);
}

TEST(Rater, AbVotePrefersClearlyFasterVideo) {
  Rng rng(2);
  const Participant participant = attentive_participant();
  int first_votes = 0;
  for (int i = 0; i < 100; ++i) {
    const auto vote =
        ab_vote(video_with_si(1000), video_with_si(2000), participant, rng);
    first_votes += vote.choice == AbChoice::kFirst;
  }
  EXPECT_GT(first_votes, 95);
}

TEST(Rater, AbVoteMostlyNoDifferenceWhenIdentical) {
  Rng rng(2);
  const Participant participant = attentive_participant();
  int no_diff = 0;
  for (int i = 0; i < 100; ++i) {
    const auto vote =
        ab_vote(video_with_si(1500), video_with_si(1500), participant, rng);
    no_diff += vote.choice == AbChoice::kNoDifference;
  }
  EXPECT_GT(no_diff, 90);
}

TEST(Rater, AbVoteSymmetry) {
  Rng rng(3);
  const Participant participant = attentive_participant();
  int second_votes = 0;
  for (int i = 0; i < 100; ++i) {
    const auto vote =
        ab_vote(video_with_si(2000), video_with_si(1000), participant, rng);
    second_votes += vote.choice == AbChoice::kSecond;
  }
  EXPECT_GT(second_votes, 95);
}

TEST(Rater, ConfidenceHigherForLargerDifferences) {
  Rng rng(4);
  const Participant participant = attentive_participant();
  double confidence_small = 0.0;
  double confidence_large = 0.0;
  for (int i = 0; i < 200; ++i) {
    confidence_small +=
        ab_vote(video_with_si(1500), video_with_si(1600), participant, rng).confidence;
    confidence_large +=
        ab_vote(video_with_si(1000), video_with_si(3000), participant, rng).confidence;
  }
  EXPECT_GT(confidence_large, confidence_small);
}

TEST(Rater, MoreReplaysWhenDifferenceIsSubtle) {
  Rng rng(5);
  const Participant participant = attentive_participant();
  double replays_subtle = 0.0;
  double replays_obvious = 0.0;
  for (int i = 0; i < 300; ++i) {
    replays_subtle += ab_vote(video_with_si(1500), video_with_si(1550), participant, rng).replays;
    replays_obvious += ab_vote(video_with_si(1000), video_with_si(4000), participant, rng).replays;
  }
  EXPECT_GT(replays_subtle, replays_obvious * 2);
}

TEST(Participants, GroupParamsOrdered) {
  EXPECT_LT(params_for(Group::kLab).vote_noise_sd,
            params_for(Group::kMicroworker).vote_noise_sd);
  EXPECT_LT(params_for(Group::kMicroworker).vote_noise_sd,
            params_for(Group::kInternet).vote_noise_sd);
  EXPECT_DOUBLE_EQ(params_for(Group::kLab).cheater_fraction, 0.0);
  EXPECT_GT(params_for(Group::kInternet).cheater_fraction,
            params_for(Group::kMicroworker).cheater_fraction);
}

TEST(Participants, SamplingRespectsGroup) {
  Rng rng(6);
  int lab_cheaters = 0;
  int internet_cheaters = 0;
  for (int i = 0; i < 500; ++i) {
    lab_cheaters += sample_participant(Group::kLab, rng).cheater;
    internet_cheaters += sample_participant(Group::kInternet, rng).cheater;
  }
  EXPECT_EQ(lab_cheaters, 0);
  EXPECT_GT(internet_cheaters, 40);
}

TEST(Conformance, RuleNamesAndDescriptions) {
  EXPECT_EQ(rule_name(0), "R1");
  EXPECT_EQ(rule_name(6), "R7");
  EXPECT_EQ(rule_description(2), "focus loss > 10 s");
}

TEST(Conformance, LabIsNeverFiltered) {
  const auto funnel = simulate_funnel(Group::kLab, StudyKind::kAb, 35, Rng(7));
  EXPECT_EQ(funnel.initial, 35u);
  EXPECT_EQ(funnel.final_count(), 35u);
}

TEST(Conformance, MicroworkerFunnelMatchesTable3Shape) {
  // Table 3 (A/B): 487 -> 233; (rating): 1563 -> 614. Allow sampling slack.
  const auto ab = simulate_funnel(Group::kMicroworker, StudyKind::kAb, 487, Rng(8));
  EXPECT_NEAR(static_cast<double>(ab.final_count()), 233.0, 40.0);
  // Survivor counts must be non-increasing.
  std::size_t previous = ab.initial;
  for (const auto count : ab.after_rule) {
    EXPECT_LE(count, previous);
    previous = count;
  }
  const auto rating =
      simulate_funnel(Group::kMicroworker, StudyKind::kRating, 1563, Rng(9));
  EXPECT_NEAR(static_cast<double>(rating.final_count()), 614.0, 80.0);
}

TEST(Conformance, R3AndR4RemoveTheMostCrowdResults) {
  // §4.1: "Focus loss (R3) and voting before the FVC (R4) filtered the most."
  const auto funnel =
      simulate_funnel(Group::kMicroworker, StudyKind::kRating, 3000, Rng(10));
  std::array<std::size_t, kRuleCount> removed{};
  std::size_t previous = funnel.initial;
  for (std::size_t rule = 0; rule < kRuleCount; ++rule) {
    removed[rule] = previous - funnel.after_rule[rule];
    previous = funnel.after_rule[rule];
  }
  const auto max_removed = *std::max_element(removed.begin(), removed.end());
  EXPECT_TRUE(removed[2] == max_removed || removed[3] == max_removed);
}

TEST(Conformance, PaperCohortSizes) {
  EXPECT_EQ(paper_initial_cohort(Group::kLab, StudyKind::kAb), 35u);
  EXPECT_EQ(paper_initial_cohort(Group::kMicroworker, StudyKind::kAb), 487u);
  EXPECT_EQ(paper_initial_cohort(Group::kMicroworker, StudyKind::kRating), 1563u);
  EXPECT_EQ(paper_initial_cohort(Group::kInternet, StudyKind::kRating), 209u);
}

TEST(AbPairs, MatchFigure4) {
  const auto& pairs = ab_pairs();
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0], (std::pair<std::string, std::string>{"TCP+", "TCP"}));
  EXPECT_EQ(pairs[1], (std::pair<std::string, std::string>{"QUIC", "TCP"}));
  EXPECT_EQ(pairs[2], (std::pair<std::string, std::string>{"QUIC", "TCP+"}));
  EXPECT_EQ(pairs[3], (std::pair<std::string, std::string>{"QUIC+BBR", "TCP+BBR"}));
}

TEST(AbAggregate, SharesSumToOne) {
  AbAggregate aggregate;
  aggregate.prefer_first = 10;
  aggregate.no_difference = 30;
  aggregate.prefer_second = 10;
  EXPECT_DOUBLE_EQ(
      aggregate.share_first() + aggregate.share_no_difference() + aggregate.share_second(),
      1.0);
  EXPECT_DOUBLE_EQ(AbAggregate{}.share_first(), 0.0);
}

// Small end-to-end study runs over a reduced library (lab domains, few runs)
// keep the suite fast while exercising the full pipeline.
core::VideoLibrary& small_library() {
  static core::VideoLibrary library(7, 5);
  return library;
}

TEST(AbStudyDriver, RunsAndAggregates) {
  AbStudyConfig config;
  config.group = Group::kLab;
  config.initial_participants = 20;
  config.videos_per_participant = 28;
  config.lab_domains_only = true;
  config.seed = 11;
  const auto result = run_ab_study(small_library(), config);
  EXPECT_EQ(result.funnel.final_count(), 20u);
  std::uint64_t total_votes = 0;
  for (const auto& [key, cell] : result.cells) total_votes += cell.total();
  EXPECT_EQ(total_votes, 20u * 28u);
  EXPECT_GT(result.avg_seconds_per_video, 5.0);
}

TEST(AbStudyDriver, SlowNetworksGetMoreDecidedVotes) {
  AbStudyConfig config;
  config.group = Group::kLab;
  config.initial_participants = 60;
  config.videos_per_participant = 28;
  config.lab_domains_only = true;
  config.seed = 12;
  const auto result = run_ab_study(small_library(), config);
  // Aggregate decided share on DSL vs MSS over all pairs.
  double decided_dsl = 0.0;
  double decided_mss = 0.0;
  double n_dsl = 0.0;
  double n_mss = 0.0;
  for (const auto& [key, cell] : result.cells) {
    if (key.second == net::NetworkKind::kDsl) {
      decided_dsl += static_cast<double>(cell.prefer_first + cell.prefer_second);
      n_dsl += static_cast<double>(cell.total());
    }
    if (key.second == net::NetworkKind::kMss) {
      decided_mss += static_cast<double>(cell.prefer_first + cell.prefer_second);
      n_mss += static_cast<double>(cell.total());
    }
  }
  ASSERT_GT(n_dsl, 0.0);
  ASSERT_GT(n_mss, 0.0);
  EXPECT_GT(decided_mss / n_mss, decided_dsl / n_dsl);
}

TEST(RatingStudyDriver, RunsAndCollectsVotes) {
  RatingStudyConfig config;
  config.group = Group::kLab;
  config.initial_participants = 15;
  config.lab_domains_only = true;
  config.seed = 13;
  const auto result = run_rating_study(small_library(), config);
  EXPECT_EQ(result.funnel.final_count(), 15u);
  std::size_t total = 0;
  for (const auto& [key, votes] : result.votes_by_cell) {
    total += votes.size();
    for (const double vote : votes) {
      EXPECT_GE(vote, 10.0);
      EXPECT_LE(vote, 70.0);
    }
  }
  EXPECT_EQ(total, 15u * (11 + 11 + 5));
}

TEST(RatingStudyDriver, PlaneConditionsRatePoor) {
  RatingStudyConfig config;
  config.group = Group::kLab;
  config.initial_participants = 25;
  config.lab_domains_only = true;
  config.seed = 14;
  const auto result = run_rating_study(small_library(), config);
  std::vector<double> plane_votes;
  std::vector<double> fast_votes;
  for (const auto& [key, votes] : result.votes_by_cell) {
    auto& sink = std::get<2>(key) == Context::kPlane ? plane_votes : fast_votes;
    sink.insert(sink.end(), votes.begin(), votes.end());
  }
  ASSERT_FALSE(plane_votes.empty());
  ASSERT_FALSE(fast_votes.empty());
  EXPECT_LT(stats::mean(plane_votes), stats::mean(fast_votes) - 10.0);
}

TEST(RatingStudyDriver, VotesCorrelateNegativelyWithSpeedIndex) {
  // Figure-6 property at lab scale: per-site mean votes vs the SI of the
  // video shown must correlate negatively.
  RatingStudyConfig config;
  config.group = Group::kMicroworker;
  config.initial_participants = 150;
  config.lab_domains_only = true;
  config.seed = 15;
  auto& library = small_library();
  const auto result = run_rating_study(library, config);

  std::vector<double> si_values;
  std::vector<double> vote_means;
  for (const auto& [key, votes] : result.votes_by_site) {
    const auto& [site, protocol, network, context] = key;
    if (votes.size() < 5) continue;
    si_values.push_back(library.get(site, protocol, network).metrics.si_ms());
    vote_means.push_back(stats::mean(votes));
  }
  ASSERT_GT(si_values.size(), 20u);
  EXPECT_LT(stats::pearson(si_values, vote_means), -0.6);
}

TEST(AbStudyDriver, ConfidenceTracksNetworkDifficulty) {
  // Confidence should be higher where differences are easy to spot (slow
  // networks) than on DSL.
  AbStudyConfig config;
  config.group = Group::kLab;
  config.initial_participants = 40;
  config.videos_per_participant = 28;
  config.lab_domains_only = true;
  config.seed = 16;
  const auto result = run_ab_study(small_library(), config);
  double dsl_confidence = 0.0;
  double mss_confidence = 0.0;
  double dsl_n = 0.0;
  double mss_n = 0.0;
  for (const auto& [key, cell] : result.cells) {
    if (key.second == net::NetworkKind::kDsl) {
      dsl_confidence += cell.confidence_sum;
      dsl_n += static_cast<double>(cell.total());
    }
    if (key.second == net::NetworkKind::kMss) {
      mss_confidence += cell.confidence_sum;
      mss_n += static_cast<double>(cell.total());
    }
  }
  ASSERT_GT(dsl_n, 0.0);
  ASSERT_GT(mss_n, 0.0);
  EXPECT_GT(mss_confidence / mss_n, dsl_confidence / dsl_n);
}

TEST(NetworksForContext, MatchStudyDesign) {
  EXPECT_EQ(networks_for_context(Context::kWork),
            (std::vector<net::NetworkKind>{net::NetworkKind::kDsl, net::NetworkKind::kLte}));
  EXPECT_EQ(networks_for_context(Context::kPlane),
            (std::vector<net::NetworkKind>{net::NetworkKind::kDa2gc, net::NetworkKind::kMss}));
}

TEST(Conformance, FunnelDrawsAreIdentityDerivedNotOrderDependent) {
  // Regression for the streaming rebuild: each participant's traits and
  // violation draws come from rng.fork(i + 1) — a pure function of the
  // funnel seed and the participant's index — never from how many draws
  // earlier participants consumed. Recomputing the removal tallies by
  // visiting the indices in REVERSE order must reproduce simulate_funnel's
  // counts exactly.
  const Rng base(8);
  const auto funnel = simulate_funnel(Group::kMicroworker, StudyKind::kRating, 400, base);
  std::array<std::size_t, kRuleCount> expected_removed{};
  std::size_t previous = funnel.initial;
  for (std::size_t rule = 0; rule < kRuleCount; ++rule) {
    expected_removed[rule] = previous - funnel.after_rule[rule];
    previous = funnel.after_rule[rule];
  }

  std::array<std::size_t, kRuleCount> reversed_removed{};
  for (std::size_t i = 400; i-- > 0;) {
    Rng participant_rng = base.fork(i + 1);
    const Participant participant =
        sample_participant(Group::kMicroworker, participant_rng);
    if (const auto rule =
            sample_violation(StudyKind::kRating, participant, participant_rng)) {
      ++reversed_removed[*rule];
    }
  }
  EXPECT_EQ(reversed_removed, expected_removed);
}

}  // namespace
}  // namespace qperc::study
