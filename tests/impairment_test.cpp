// Unit tests for the link impairment layer (net/impairments.hpp): profile
// validation, Gilbert–Elliott bursts, outage windows, reordering jitter,
// duplication, and the bit-exactness contract for impairment-free profiles.
// Also covers the time-varying-capacity layer (net/rate_schedule.hpp): step
// schedules, synthetic LTE/Wi-Fi traces, their composition with the other
// impairments, byte conservation against the schedule's capacity integral,
// the token-bucket policer, and BBR's long-term-bandwidth response to it.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "net/impairments.hpp"
#include "net/link.hpp"
#include "net/profile.hpp"
#include "net/rate_schedule.hpp"
#include "sim/simulator.hpp"
#include "tcp/config.hpp"
#include "transport_test_util.hpp"
#include "util/rng.hpp"

namespace qperc::net {
namespace {

Packet make_packet(std::uint32_t bytes, std::uint64_t flow = 1) {
  Packet packet;
  packet.flow = FlowId{flow};
  packet.dest_server = ServerId{0};
  packet.wire_bytes = bytes;
  return packet;
}

/// Sends `count` numbered packets through a link with the given impairments
/// and returns (flow id, delivery time) pairs in delivery order.
struct ImpairedRun {
  std::vector<std::uint64_t> order;
  std::vector<SimTime> times;
  LinkStats stats;
};

ImpairedRun run_impaired(const LinkImpairments& impairments, int count,
                         double loss_rate = 0.0, std::uint64_t seed = 1) {
  sim::Simulator simulator;
  ImpairedRun run;
  Link link(simulator, DataRate::megabits_per_second(8.0), milliseconds(5), loss_rate,
            /*queue_capacity_bytes=*/10'000'000, Rng(seed), [&](Packet p) {
              run.order.push_back(static_cast<std::uint64_t>(p.flow));
              run.times.push_back(simulator.now());
            });
  link.set_impairments(impairments);
  for (int i = 0; i < count; ++i) link.send(make_packet(1000, 100 + i));
  simulator.run();
  run.stats = link.stats();
  return run;
}

// ---------------------------------------------------------------- validation

TEST(ImpairmentValidation, DefaultConfigurationIsValidAndOff) {
  const LinkImpairments impairments;
  EXPECT_FALSE(impairments.any());
  EXPECT_NO_THROW(impairments.validate());
}

TEST(ImpairmentValidation, RejectsOutOfRangeProbabilities) {
  for (double bad : {-0.1, 1.5}) {
    LinkImpairments imp;
    imp.reorder_rate = bad;
    EXPECT_THROW(imp.validate(), std::invalid_argument) << bad;
    imp = LinkImpairments{};
    imp.duplicate_rate = bad;
    EXPECT_THROW(imp.validate(), std::invalid_argument) << bad;
    imp = LinkImpairments{};
    imp.gilbert_elliott.enter_bad = bad;
    EXPECT_THROW(imp.validate(), std::invalid_argument) << bad;
    imp = LinkImpairments{};
    imp.gilbert_elliott.enter_bad = 0.1;
    imp.gilbert_elliott.exit_bad = 0.5;
    imp.gilbert_elliott.loss_bad = bad;
    EXPECT_THROW(imp.validate(), std::invalid_argument) << bad;
  }
}

TEST(ImpairmentValidation, RejectsInvertedOrMissingJitterWindow) {
  LinkImpairments imp;
  imp.reorder_rate = 0.2;
  // Enabled reordering with a zero-width window is a configuration error.
  EXPECT_THROW(imp.validate(), std::invalid_argument);
  imp.reorder_delay_min = milliseconds(10);
  imp.reorder_delay_max = milliseconds(5);
  EXPECT_THROW(imp.validate(), std::invalid_argument);
  imp.reorder_delay_max = milliseconds(20);
  EXPECT_NO_THROW(imp.validate());
}

TEST(ImpairmentValidation, RejectsInescapableBadState) {
  LinkImpairments imp;
  imp.gilbert_elliott.enter_bad = 0.1;
  imp.gilbert_elliott.exit_bad = 0.0;
  EXPECT_THROW(imp.validate(), std::invalid_argument);
}

TEST(ImpairmentValidation, RejectsFlapIntervalShorterThanOutage) {
  LinkImpairments imp;
  imp.outage_start = SimTime{seconds(1)};
  imp.outage_duration = milliseconds(500);
  imp.outage_interval = milliseconds(400);
  EXPECT_THROW(imp.validate(), std::invalid_argument);
  imp.outage_interval = milliseconds(600);
  EXPECT_NO_THROW(imp.validate());
}

TEST(ProfileValidation, AcceptsAllBuiltinProfiles) {
  for (const auto& profile : all_profiles()) EXPECT_NO_THROW(profile.validate());
}

TEST(ProfileValidation, RejectsZeroBandwidth) {
  NetworkProfile profile = dsl_profile();
  profile.uplink = DataRate::bits_per_second(0);
  EXPECT_THROW(profile.validate(), std::invalid_argument);
  profile = dsl_profile();
  profile.downlink = DataRate::bits_per_second(0);
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

TEST(ProfileValidation, RejectsOutOfRangeLoss) {
  NetworkProfile profile = dsl_profile();
  profile.loss_rate = -0.01;
  EXPECT_THROW(profile.validate(), std::invalid_argument);
  profile.loss_rate = 1.01;
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

TEST(ProfileValidation, RejectsNegativeRttAndZeroQueue) {
  NetworkProfile profile = dsl_profile();
  profile.min_rtt = -milliseconds(1);
  EXPECT_THROW(profile.validate(), std::invalid_argument);
  profile = dsl_profile();
  profile.queue_delay = SimDuration::zero();
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

TEST(ProfileValidation, MessageNamesTheProfileAndField) {
  NetworkProfile profile = dsl_profile();
  profile.loss_rate = -1.0;
  try {
    profile.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(profile.name), std::string::npos) << what;
    EXPECT_NE(what.find("loss_rate"), std::string::npos) << what;
  }
}

TEST(ProfileValidation, RejectsInvalidImpairments) {
  NetworkProfile profile = dsl_profile();
  profile.impairments.duplicate_rate = 2.0;
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------- behavior

TEST(Impairments, DisabledImpairmentsAreBitExactWithBaseline) {
  // Same seed, same lossy link, one with an explicitly installed (but fully
  // disabled) impairment config: the RNG streams — and therefore every
  // delivery time — must match exactly.
  sim::Simulator baseline_sim;
  std::vector<SimTime> baseline;
  Link baseline_link(baseline_sim, DataRate::megabits_per_second(4.0), milliseconds(7),
                     0.2, 1'000'000, Rng(42),
                     [&](Packet) { baseline.push_back(baseline_sim.now()); });
  for (int i = 0; i < 200; ++i) baseline_link.send(make_packet(1200));
  baseline_sim.run();

  sim::Simulator impaired_sim;
  std::vector<SimTime> impaired;
  Link impaired_link(impaired_sim, DataRate::megabits_per_second(4.0), milliseconds(7),
                     0.2, 1'000'000, Rng(42),
                     [&](Packet) { impaired.push_back(impaired_sim.now()); });
  impaired_link.set_impairments(LinkImpairments{});
  for (int i = 0; i < 200; ++i) impaired_link.send(make_packet(1200));
  impaired_sim.run();

  EXPECT_EQ(baseline, impaired);
  EXPECT_EQ(baseline_link.stats().drops_random_loss, impaired_link.stats().drops_random_loss);
}

TEST(Impairments, ReorderingDeliversOutOfOrderButComplete) {
  LinkImpairments imp;
  imp.reorder_rate = 0.5;
  imp.reorder_delay_min = milliseconds(2);
  imp.reorder_delay_max = milliseconds(30);
  const ImpairedRun run = run_impaired(imp, 100);
  ASSERT_EQ(run.order.size(), 100u);  // nothing lost, nothing duplicated
  EXPECT_GT(run.stats.reordered, 0u);
  // At least one packet overtook a lower-numbered one.
  bool out_of_order = false;
  for (std::size_t i = 1; i < run.order.size(); ++i) {
    if (run.order[i] < run.order[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(Impairments, DuplicationDeliversEveryPacketExactlyTwice) {
  LinkImpairments imp;
  imp.duplicate_rate = 1.0;
  const ImpairedRun run = run_impaired(imp, 50);
  EXPECT_EQ(run.order.size(), 100u);
  EXPECT_EQ(run.stats.duplicates, 50u);
  EXPECT_EQ(run.stats.packets_delivered, 100u);
  // With no jitter window the copy trails its original immediately.
  for (std::size_t i = 0; i < run.order.size(); i += 2) {
    EXPECT_EQ(run.order[i], run.order[i + 1]);
  }
}

TEST(Impairments, GilbertElliottProducesCorrelatedBursts) {
  LinkImpairments imp;
  imp.gilbert_elliott =
      GilbertElliott{.enter_bad = 0.05, .exit_bad = 0.2, .loss_good = 0.0, .loss_bad = 1.0};
  const ImpairedRun run = run_impaired(imp, 2000);
  EXPECT_GT(run.stats.drops_burst_loss, 0u);
  EXPECT_EQ(run.stats.drops_random_loss, 0u);
  EXPECT_EQ(run.order.size() + run.stats.drops_burst_loss, 2000u);
  // loss_bad = 1 means every loss sits inside a bad-state burst; with
  // enter=0.05/exit=0.2 the expected bad-state fraction is 20%, so losses
  // must be a substantial minority — and bursty, not isolated: at least one
  // run of consecutive flow-id gaps longer than 1.
  EXPECT_GT(run.stats.drops_burst_loss, 100u);
  EXPECT_LT(run.stats.drops_burst_loss, 1000u);
  bool burst_of_two = false;
  for (std::size_t i = 1; i < run.order.size(); ++i) {
    if (run.order[i] >= run.order[i - 1] + 3) burst_of_two = true;  // >= 2 lost in a row
  }
  EXPECT_TRUE(burst_of_two);
}

TEST(Impairments, OneShotOutageDropsOnlyInsideWindow) {
  LinkImpairments imp;
  imp.outage_start = SimTime{milliseconds(20)};
  imp.outage_duration = milliseconds(10);

  sim::Simulator simulator;
  std::vector<SimTime> deliveries;
  Link link(simulator, DataRate::megabits_per_second(80.0), SimDuration::zero(), 0.0,
            10'000'000, Rng(1), [&](Packet) { deliveries.push_back(simulator.now()); });
  link.set_impairments(imp);
  // One 1000-byte packet every millisecond for 50 ms; serialization is
  // 0.1 ms, so each packet clears the loss stage just after its send time.
  for (int i = 0; i < 50; ++i) {
    simulator.schedule_at(SimTime{milliseconds(i)}, [&link] { link.send(make_packet(1000)); });
  }
  simulator.run();
  EXPECT_EQ(link.stats().drops_outage, 10u);  // sends at 20..29 ms
  EXPECT_EQ(deliveries.size(), 40u);
}

TEST(Impairments, PeriodicFlapsRepeatTheOutage) {
  LinkImpairments imp;
  imp.outage_start = SimTime{milliseconds(10)};
  imp.outage_duration = milliseconds(5);
  imp.outage_interval = milliseconds(20);  // down at [10,15), [30,35), [50,55) ...
  EXPECT_FALSE(imp.in_outage(SimTime{milliseconds(9)}));
  EXPECT_TRUE(imp.in_outage(SimTime{milliseconds(10)}));
  EXPECT_TRUE(imp.in_outage(SimTime{milliseconds(14)}));
  EXPECT_FALSE(imp.in_outage(SimTime{milliseconds(15)}));
  EXPECT_TRUE(imp.in_outage(SimTime{milliseconds(31)}));
  EXPECT_FALSE(imp.in_outage(SimTime{milliseconds(45)}));
  EXPECT_TRUE(imp.in_outage(SimTime{milliseconds(52)}));
}

TEST(Impairments, ImpairedRunsAreDeterministicInTheSeed) {
  LinkImpairments imp;
  imp.reorder_rate = 0.3;
  imp.reorder_delay_min = milliseconds(1);
  imp.reorder_delay_max = milliseconds(25);
  imp.duplicate_rate = 0.2;
  imp.gilbert_elliott =
      GilbertElliott{.enter_bad = 0.02, .exit_bad = 0.3, .loss_good = 0.0, .loss_bad = 0.6};
  const ImpairedRun a = run_impaired(imp, 500, 0.01, 7);
  const ImpairedRun b = run_impaired(imp, 500, 0.01, 7);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.times, b.times);
  const ImpairedRun c = run_impaired(imp, 500, 0.01, 8);
  EXPECT_NE(a.times, c.times);  // a different seed must actually change draws
}

// ---------------------------------------------------------------- schedules

TEST(RateScheduleValidation, RejectsMalformedStepLists) {
  EXPECT_THROW(RateSchedule::steps(nullptr, 0).validate(), std::invalid_argument);

  // First step must define the rate from t=0.
  RateStep late[] = {{milliseconds(5), DataRate::megabits_per_second(1.0)}};
  EXPECT_THROW(RateSchedule::steps(late, 1).validate(), std::invalid_argument);

  RateStep zero_rate[] = {{SimDuration::zero(), DataRate{}}};
  EXPECT_THROW(RateSchedule::steps(zero_rate, 1).validate(), std::invalid_argument);

  RateStep unordered[] = {{SimDuration::zero(), DataRate::megabits_per_second(8.0)},
                          {milliseconds(10), DataRate::megabits_per_second(1.0)},
                          {milliseconds(10), DataRate::megabits_per_second(2.0)}};
  EXPECT_THROW(RateSchedule::steps(unordered, 3).validate(), std::invalid_argument);

  RateStep good[] = {{SimDuration::zero(), DataRate::megabits_per_second(8.0)},
                     {milliseconds(10), DataRate::megabits_per_second(1.0)}};
  EXPECT_NO_THROW(RateSchedule::steps(good, 2).validate());
  EXPECT_THROW(RateSchedule::lte_trace(DataRate{}, 1).validate(), std::invalid_argument);
}

TEST(RateSchedule, TraceGeneratorsAreDeterministicSeededAndFloored) {
  const DataRate base = DataRate::megabits_per_second(10.0);
  for (auto make : {&RateSchedule::lte_trace, &RateSchedule::wifi_trace}) {
    const RateSchedule a = make(base, 7);
    const RateSchedule b = make(base, 7);
    const RateSchedule c = make(base, 8);
    bool seed_changes_something = false;
    bool rate_varies = false;
    const DataRate first = a.rate_at(SimTime{0});
    for (int ms = 0; ms < 5000; ms += 25) {
      const SimTime t{milliseconds(ms)};
      EXPECT_EQ(a.rate_at(t).bps(), b.rate_at(t).bps());  // pure function of seed
      EXPECT_GE(a.rate_at(t).bps(), RateSchedule::kMinRateBps);
      if (a.rate_at(t).bps() != c.rate_at(t).bps()) seed_changes_something = true;
      if (a.rate_at(t).bps() != first.bps()) rate_varies = true;
    }
    EXPECT_TRUE(seed_changes_something);
    EXPECT_TRUE(rate_varies);
  }
}

/// Delivery times of `count` kilobyte packets offered at t=0 to a lossless
/// zero-propagation link running `schedule`, with an optional observer
/// attach/detach window to force the event-driven serialization path.
std::vector<SimTime> scheduled_deliveries(const RateSchedule& schedule, int count,
                                          SimTime attach_at = kNoTime,
                                          SimTime detach_at = kNoTime) {
  sim::Simulator simulator;
  std::vector<SimTime> times;
  Link link(simulator, DataRate::bytes_per_second(1'000'000), SimDuration::zero(), 0.0,
            10'000'000, Rng(1), [&](Packet) { times.push_back(simulator.now()); });
  link.set_schedule(schedule);
  if (attach_at != kNoTime) {
    simulator.schedule_at(attach_at,
                          [&link] { link.set_observer([](LinkEvent, const Packet&) {}); });
  }
  if (detach_at != kNoTime) {
    simulator.schedule_at(detach_at, [&link] { link.set_observer({}); });
  }
  for (int i = 0; i < count; ++i) link.send(make_packet(1000, 100 + i));
  simulator.run();
  return times;
}

TEST(Schedules, StepScheduleRetimesTheBacklogAtTheBreakpoint) {
  // 1 MB/s until t=5 ms, then 100 kB/s: the first five 1000-byte packets
  // serialize in 1 ms each, the rest in 10 ms each — the rate step lands
  // exactly between packets, so every completion time is exact.
  RateStep steps[] = {{SimDuration::zero(), DataRate::bytes_per_second(1'000'000)},
                      {milliseconds(5), DataRate::bytes_per_second(100'000)}};
  const auto times = scheduled_deliveries(RateSchedule::steps(steps, 2), 8);
  ASSERT_EQ(times.size(), 8u);
  const SimTime expected[] = {SimTime{milliseconds(1)},  SimTime{milliseconds(2)},
                              SimTime{milliseconds(3)},  SimTime{milliseconds(4)},
                              SimTime{milliseconds(5)},  SimTime{milliseconds(15)},
                              SimTime{milliseconds(25)}, SimTime{milliseconds(35)}};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(static_cast<double>(times[i].count()),
                static_cast<double>(expected[i].count()), 100.0)
        << i;
  }
}

TEST(Schedules, MidPacketStepIntegratesByteAccurately) {
  // The step lands at t=4.5 ms, halfway through the fifth packet: 500 bytes
  // serialized at 1 MB/s, the remaining 500 at 100 kB/s (5 ms more). A
  // whole-packet approximation would finish it at 5 ms or 10 ms instead.
  RateStep steps[] = {{SimDuration::zero(), DataRate::bytes_per_second(1'000'000)},
                      {microseconds(4500), DataRate::bytes_per_second(100'000)}};
  const auto times = scheduled_deliveries(RateSchedule::steps(steps, 2), 6);
  ASSERT_EQ(times.size(), 6u);
  EXPECT_NEAR(static_cast<double>(times[4].count()),
              static_cast<double>(SimTime{microseconds(9500)}.count()), 100.0);
  EXPECT_NEAR(static_cast<double>(times[5].count()),
              static_cast<double>(SimTime{microseconds(19500)}.count()), 100.0);
}

TEST(Schedules, ObserverAttachDetachKeepsDeliveryTimes) {
  // The regression this PR fixes: with a schedule installed, an observer
  // attaching mid-backlog switches serialization from the arithmetic fast
  // path to the event-driven path. Both must re-derive busy_until_ through
  // the same piecewise integration, so delivery times cannot move.
  RateStep steps[] = {{SimDuration::zero(), DataRate::bytes_per_second(1'000'000)},
                      {microseconds(3500), DataRate::bytes_per_second(125'000)},
                      {milliseconds(40), DataRate::bytes_per_second(500'000)}};
  const RateSchedule schedule = RateSchedule::steps(steps, 3);
  const auto baseline = scheduled_deliveries(schedule, 12);
  const auto observed_all = scheduled_deliveries(schedule, 12, SimTime{0});
  const auto observed_window =
      scheduled_deliveries(schedule, 12, SimTime{milliseconds(2)}, SimTime{milliseconds(30)});
  EXPECT_EQ(baseline, observed_all);
  EXPECT_EQ(baseline, observed_window);
}

TEST(Schedules, ScheduleLeavesTheLossRngStreamUntouched) {
  // Enabling a schedule changes *when* packets clear the serializer but must
  // not consume or reorder loss-RNG draws: the same packets live and die.
  auto run = [](const RateSchedule& schedule) {
    sim::Simulator simulator;
    std::vector<std::uint64_t> delivered;
    Link link(simulator, DataRate::megabits_per_second(8.0), milliseconds(5), 0.25,
              10'000'000, Rng(42), [&](Packet p) {
                delivered.push_back(static_cast<std::uint64_t>(p.flow));
              });
    link.set_schedule(schedule);
    for (int i = 0; i < 300; ++i) link.send(make_packet(1000, 100 + i));
    simulator.run();
    std::sort(delivered.begin(), delivered.end());
    return std::pair{delivered, link.stats().drops_random_loss};
  };
  const auto [plain_survivors, plain_drops] = run(RateSchedule{});
  const auto [traced_survivors, traced_drops] =
      run(RateSchedule::lte_trace(DataRate::megabits_per_second(8.0), 9));
  EXPECT_EQ(plain_survivors, traced_survivors);
  EXPECT_EQ(plain_drops, traced_drops);
}

TEST(Schedules, ComposeWithGilbertElliottReorderingAndOutages) {
  LinkImpairments imp;
  imp.reorder_rate = 0.2;
  imp.reorder_delay_min = milliseconds(1);
  imp.reorder_delay_max = milliseconds(20);
  imp.duplicate_rate = 0.05;
  imp.gilbert_elliott =
      GilbertElliott{.enter_bad = 0.02, .exit_bad = 0.25, .loss_good = 0.0, .loss_bad = 0.8};
  imp.outage_start = SimTime{milliseconds(200)};
  imp.outage_duration = milliseconds(50);
  imp.outage_interval = milliseconds(400);

  auto run = [&imp](std::uint64_t seed) {
    sim::Simulator simulator;
    std::vector<SimTime> times;
    Link link(simulator, DataRate::megabits_per_second(4.0), milliseconds(10), 0.01,
              10'000'000, Rng(seed), [&](Packet) { times.push_back(simulator.now()); });
    link.set_impairments(imp);
    link.set_schedule(RateSchedule::lte_trace(DataRate::megabits_per_second(4.0), 5));
    for (int i = 0; i < 400; ++i) {
      simulator.schedule_at(SimTime{milliseconds(2 * i)},
                            [&link, i] { link.send(make_packet(1200, 100 + i)); });
    }
    simulator.run();
    return std::pair{times, link.stats()};
  };

  const auto [times, stats] = run(3);
  // Every impairment fired at least once on top of the varying rate ...
  EXPECT_GT(stats.drops_burst_loss, 0u);
  EXPECT_GT(stats.drops_outage, 0u);
  EXPECT_GT(stats.reordered, 0u);
  // ... and the per-packet accounting identity still closes exactly.
  EXPECT_EQ(stats.packets_delivered + stats.drops_random_loss + stats.drops_burst_loss +
                stats.drops_outage + stats.drops_queue_full + stats.drops_policer,
            stats.packets_offered + stats.duplicates);
  EXPECT_EQ(times, run(3).first);  // deterministic in the seed
  EXPECT_NE(times, run(4).first);
}

TEST(Schedules, ByteConservationHoldsForStepsAndTraces) {
  // Property: cumulative wire bytes delivered by any instant never exceed
  // the schedule's capacity integral to that instant (zero propagation, no
  // loss, no duplication — every serialized byte is delivered).
  RateStep cliff[] = {{SimDuration::zero(), DataRate::megabits_per_second(8.0)},
                      {seconds(1), DataRate::bytes_per_second(100'000)},
                      {seconds(3), DataRate::megabits_per_second(8.0)}};
  const RateSchedule schedules[] = {
      RateSchedule::steps(cliff, 3),
      RateSchedule::lte_trace(DataRate::megabits_per_second(8.0), 3),
      RateSchedule::wifi_trace(DataRate::megabits_per_second(8.0), 4),
  };
  for (const RateSchedule& schedule : schedules) {
    sim::Simulator simulator;
    double cumulative = 0.0;
    Link link(simulator, DataRate::megabits_per_second(8.0), SimDuration::zero(), 0.0,
              50'000'000, Rng(1), [&](Packet p) {
                cumulative += static_cast<double>(p.wire_bytes);
                // One-MTU slack absorbs the double-rounding of the piecewise
                // integration; anything larger means capacity was invented.
                EXPECT_LE(cumulative, schedule.bytes_through(simulator.now()) + 1500.0)
                    << to_string(schedule.kind());
              });
    link.set_schedule(schedule);
    for (int i = 0; i < 2000; ++i) link.send(make_packet(1500, 100 + i));
    simulator.run();
    EXPECT_EQ(link.stats().bytes_delivered, 2000u * 1500u);  // nothing vanished
  }
}

// ---------------------------------------------------------------- policing

TEST(Policer, DropsExcessTrafficAndConservesBytes) {
  LinkImpairments imp;
  imp.policer_rate = DataRate::bytes_per_second(100'000);
  imp.policer_burst_bytes = 4000;

  sim::Simulator simulator;
  std::uint64_t delivered_bytes = 0;
  SimTime last_delivery{0};
  Link link(simulator, DataRate::bytes_per_second(1'000'000), SimDuration::zero(), 0.0,
            10'000'000, Rng(1), [&](Packet p) {
              delivered_bytes += p.wire_bytes;
              last_delivery = simulator.now();
            });
  link.set_impairments(imp);
  for (int i = 0; i < 50; ++i) link.send(make_packet(1000, 100 + i));
  simulator.run();

  const LinkStats& stats = link.stats();
  EXPECT_GT(stats.drops_policer, 0u);
  EXPECT_EQ(stats.packets_delivered + stats.drops_policer, 50u);
  // Token-bucket conservation: burst allowance plus rate * elapsed bounds
  // everything the policer let through.
  const double budget = 4000.0 + 100'000.0 * to_seconds(last_delivery) + 1.0;
  EXPECT_LE(static_cast<double>(delivered_bytes), budget);
  // The policer draws no randomness, so reruns are bit-identical by
  // construction; spot-check stats stability across a second run.
  sim::Simulator again;
  Link link2(again, DataRate::bytes_per_second(1'000'000), SimDuration::zero(), 0.0,
             10'000'000, Rng(1), [](Packet) {});
  link2.set_impairments(imp);
  for (int i = 0; i < 50; ++i) link2.send(make_packet(1000, 100 + i));
  again.run();
  EXPECT_EQ(link2.stats().drops_policer, stats.drops_policer);
}

/// One BBR bulk transfer through a DSL line policed to 1 Mbit/s with a
/// 2 kB bucket (~1.3 packets): goodput and retransmission count.
struct PolicedRun {
  double goodput_bps = 0.0;
  std::uint64_t retransmissions = 0;
};

PolicedRun policed_bbr_run(bool lt_bw) {
  NetworkProfile profile = dsl_profile();
  profile.impairments.policer_rate = DataRate::megabits_per_second(1.0);
  profile.impairments.policer_burst_bytes = 2'000;
  tcp::TcpConfig config;
  config.congestion_control = cc::CcKind::kBbr;
  config.bbr_lt_bw = lt_bw;
  config.pacing = true;
  config.tuned_buffers = true;
  config.initial_window_segments = 32;
  testutil::TcpHarness harness(profile, config, 6'250'000, 11);
  harness.run(seconds(70));
  const SimTime end =
      harness.finished_at != kNoTime ? harness.finished_at : harness.simulator.now();
  const double elapsed = to_seconds(end - harness.established_at);
  return {static_cast<double>(harness.delivered) * 8.0 / elapsed,
          harness.connection->stats().retransmissions};
}

TEST(Policer, LtBwBbrSustainsPolicedRateWhereStockWastesTheLink) {
  // The pathology lt_bw exists for (tcp-bbrplus, Linux tcp_bbr.c): a policer
  // drops without queueing, so BBR's startup fills the bandwidth filter with
  // the pre-policer line rate and the model keeps pacing far above the
  // policed budget, drowning the token bucket in drops. The long-term
  // estimator detects the consistent loss-bounded delivery rate and paces at
  // it instead. Note on the metric: with RACK/SACK recovery (hardened by
  // this repo's spurious-RTO and handshake fixes) every token the policer
  // grants carries a useful byte eventually, so stock's *goodput* stays
  // token-bound rather than collapsing -- the collapse shows up as the
  // upstream path drowning in retransmissions (the multi-x retransmit waste
  // measured behind production policers). The acceptance contrast is
  // therefore asserted as: lt_bw sustains >= 80% of the policed rate while
  // cutting stock BBR's retransmit waste by more than half.
  const double policed = 1e6;
  const PolicedRun with_lt = policed_bbr_run(true);
  const PolicedRun stock = policed_bbr_run(false);
  EXPECT_GE(with_lt.goodput_bps, 0.8 * policed);
  EXPECT_GE(stock.retransmissions, 2 * with_lt.retransmissions);
}

TEST(Policer, TightBucketTcpHandshakeStillEstablishes) {
  // Regression: the TLS server flight (3 packets, ~4.4 kB) is larger than a
  // 3 kB policer bucket, so no retry could ever deliver the whole flight at
  // once. Before selective flight retransmission (the ClientHello's
  // flight_have_mask), the client reset its reassembly mask on every retry
  // and the server always resent all three pieces -- the head packets
  // consumed the tokens the tail needed, and the handshake livelocked.
  NetworkProfile profile = dsl_profile();
  profile.impairments.policer_rate = DataRate::kilobits_per_second(500);
  profile.impairments.policer_burst_bytes = 3'000;
  tcp::TcpConfig config;
  config.congestion_control = cc::CcKind::kBbr;
  testutil::TcpHarness harness(profile, config, 30'000, 3);
  EXPECT_TRUE(harness.run(seconds(30)));
  EXPECT_NE(harness.established_at, kNoTime);
  EXPECT_LE(harness.established_at, SimTime{seconds(5)});
}

TEST(Policer, TightBucketQuicHandshakeStillEstablishes) {
  // Same livelock on the QUIC side: the two-packet REJ flight (2 x 1392 B)
  // exceeds a 2 kB bucket, so the server must honor the retried CHLO's
  // have-mask and resend only the missing piece.
  NetworkProfile profile = dsl_profile();
  profile.impairments.policer_rate = DataRate::kilobits_per_second(500);
  profile.impairments.policer_burst_bytes = 2'000;
  quic::QuicConfig config;
  config.zero_rtt = false;
  testutil::QuicHarness harness(profile, config, 20'000, 3);
  EXPECT_TRUE(harness.run(1, seconds(30)));
  EXPECT_NE(harness.established_at, kNoTime);
  EXPECT_LE(harness.established_at, SimTime{seconds(5)});
}

}  // namespace
}  // namespace qperc::net
