// Unit tests for the link impairment layer (net/impairments.hpp): profile
// validation, Gilbert–Elliott bursts, outage windows, reordering jitter,
// duplication, and the bit-exactness contract for impairment-free profiles.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/impairments.hpp"
#include "net/link.hpp"
#include "net/profile.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qperc::net {
namespace {

Packet make_packet(std::uint32_t bytes, std::uint64_t flow = 1) {
  Packet packet;
  packet.flow = FlowId{flow};
  packet.dest_server = ServerId{0};
  packet.wire_bytes = bytes;
  return packet;
}

/// Sends `count` numbered packets through a link with the given impairments
/// and returns (flow id, delivery time) pairs in delivery order.
struct ImpairedRun {
  std::vector<std::uint64_t> order;
  std::vector<SimTime> times;
  LinkStats stats;
};

ImpairedRun run_impaired(const LinkImpairments& impairments, int count,
                         double loss_rate = 0.0, std::uint64_t seed = 1) {
  sim::Simulator simulator;
  ImpairedRun run;
  Link link(simulator, DataRate::megabits_per_second(8.0), milliseconds(5), loss_rate,
            /*queue_capacity_bytes=*/10'000'000, Rng(seed), [&](Packet p) {
              run.order.push_back(static_cast<std::uint64_t>(p.flow));
              run.times.push_back(simulator.now());
            });
  link.set_impairments(impairments);
  for (int i = 0; i < count; ++i) link.send(make_packet(1000, 100 + i));
  simulator.run();
  run.stats = link.stats();
  return run;
}

// ---------------------------------------------------------------- validation

TEST(ImpairmentValidation, DefaultConfigurationIsValidAndOff) {
  const LinkImpairments impairments;
  EXPECT_FALSE(impairments.any());
  EXPECT_NO_THROW(impairments.validate());
}

TEST(ImpairmentValidation, RejectsOutOfRangeProbabilities) {
  for (double bad : {-0.1, 1.5}) {
    LinkImpairments imp;
    imp.reorder_rate = bad;
    EXPECT_THROW(imp.validate(), std::invalid_argument) << bad;
    imp = LinkImpairments{};
    imp.duplicate_rate = bad;
    EXPECT_THROW(imp.validate(), std::invalid_argument) << bad;
    imp = LinkImpairments{};
    imp.gilbert_elliott.enter_bad = bad;
    EXPECT_THROW(imp.validate(), std::invalid_argument) << bad;
    imp = LinkImpairments{};
    imp.gilbert_elliott.enter_bad = 0.1;
    imp.gilbert_elliott.exit_bad = 0.5;
    imp.gilbert_elliott.loss_bad = bad;
    EXPECT_THROW(imp.validate(), std::invalid_argument) << bad;
  }
}

TEST(ImpairmentValidation, RejectsInvertedOrMissingJitterWindow) {
  LinkImpairments imp;
  imp.reorder_rate = 0.2;
  // Enabled reordering with a zero-width window is a configuration error.
  EXPECT_THROW(imp.validate(), std::invalid_argument);
  imp.reorder_delay_min = milliseconds(10);
  imp.reorder_delay_max = milliseconds(5);
  EXPECT_THROW(imp.validate(), std::invalid_argument);
  imp.reorder_delay_max = milliseconds(20);
  EXPECT_NO_THROW(imp.validate());
}

TEST(ImpairmentValidation, RejectsInescapableBadState) {
  LinkImpairments imp;
  imp.gilbert_elliott.enter_bad = 0.1;
  imp.gilbert_elliott.exit_bad = 0.0;
  EXPECT_THROW(imp.validate(), std::invalid_argument);
}

TEST(ImpairmentValidation, RejectsFlapIntervalShorterThanOutage) {
  LinkImpairments imp;
  imp.outage_start = SimTime{seconds(1)};
  imp.outage_duration = milliseconds(500);
  imp.outage_interval = milliseconds(400);
  EXPECT_THROW(imp.validate(), std::invalid_argument);
  imp.outage_interval = milliseconds(600);
  EXPECT_NO_THROW(imp.validate());
}

TEST(ProfileValidation, AcceptsAllBuiltinProfiles) {
  for (const auto& profile : all_profiles()) EXPECT_NO_THROW(profile.validate());
}

TEST(ProfileValidation, RejectsZeroBandwidth) {
  NetworkProfile profile = dsl_profile();
  profile.uplink = DataRate::bits_per_second(0);
  EXPECT_THROW(profile.validate(), std::invalid_argument);
  profile = dsl_profile();
  profile.downlink = DataRate::bits_per_second(0);
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

TEST(ProfileValidation, RejectsOutOfRangeLoss) {
  NetworkProfile profile = dsl_profile();
  profile.loss_rate = -0.01;
  EXPECT_THROW(profile.validate(), std::invalid_argument);
  profile.loss_rate = 1.01;
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

TEST(ProfileValidation, RejectsNegativeRttAndZeroQueue) {
  NetworkProfile profile = dsl_profile();
  profile.min_rtt = -milliseconds(1);
  EXPECT_THROW(profile.validate(), std::invalid_argument);
  profile = dsl_profile();
  profile.queue_delay = SimDuration::zero();
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

TEST(ProfileValidation, MessageNamesTheProfileAndField) {
  NetworkProfile profile = dsl_profile();
  profile.loss_rate = -1.0;
  try {
    profile.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(profile.name), std::string::npos) << what;
    EXPECT_NE(what.find("loss_rate"), std::string::npos) << what;
  }
}

TEST(ProfileValidation, RejectsInvalidImpairments) {
  NetworkProfile profile = dsl_profile();
  profile.impairments.duplicate_rate = 2.0;
  EXPECT_THROW(profile.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------- behavior

TEST(Impairments, DisabledImpairmentsAreBitExactWithBaseline) {
  // Same seed, same lossy link, one with an explicitly installed (but fully
  // disabled) impairment config: the RNG streams — and therefore every
  // delivery time — must match exactly.
  sim::Simulator baseline_sim;
  std::vector<SimTime> baseline;
  Link baseline_link(baseline_sim, DataRate::megabits_per_second(4.0), milliseconds(7),
                     0.2, 1'000'000, Rng(42),
                     [&](Packet) { baseline.push_back(baseline_sim.now()); });
  for (int i = 0; i < 200; ++i) baseline_link.send(make_packet(1200));
  baseline_sim.run();

  sim::Simulator impaired_sim;
  std::vector<SimTime> impaired;
  Link impaired_link(impaired_sim, DataRate::megabits_per_second(4.0), milliseconds(7),
                     0.2, 1'000'000, Rng(42),
                     [&](Packet) { impaired.push_back(impaired_sim.now()); });
  impaired_link.set_impairments(LinkImpairments{});
  for (int i = 0; i < 200; ++i) impaired_link.send(make_packet(1200));
  impaired_sim.run();

  EXPECT_EQ(baseline, impaired);
  EXPECT_EQ(baseline_link.stats().drops_random_loss, impaired_link.stats().drops_random_loss);
}

TEST(Impairments, ReorderingDeliversOutOfOrderButComplete) {
  LinkImpairments imp;
  imp.reorder_rate = 0.5;
  imp.reorder_delay_min = milliseconds(2);
  imp.reorder_delay_max = milliseconds(30);
  const ImpairedRun run = run_impaired(imp, 100);
  ASSERT_EQ(run.order.size(), 100u);  // nothing lost, nothing duplicated
  EXPECT_GT(run.stats.reordered, 0u);
  // At least one packet overtook a lower-numbered one.
  bool out_of_order = false;
  for (std::size_t i = 1; i < run.order.size(); ++i) {
    if (run.order[i] < run.order[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(Impairments, DuplicationDeliversEveryPacketExactlyTwice) {
  LinkImpairments imp;
  imp.duplicate_rate = 1.0;
  const ImpairedRun run = run_impaired(imp, 50);
  EXPECT_EQ(run.order.size(), 100u);
  EXPECT_EQ(run.stats.duplicates, 50u);
  EXPECT_EQ(run.stats.packets_delivered, 100u);
  // With no jitter window the copy trails its original immediately.
  for (std::size_t i = 0; i < run.order.size(); i += 2) {
    EXPECT_EQ(run.order[i], run.order[i + 1]);
  }
}

TEST(Impairments, GilbertElliottProducesCorrelatedBursts) {
  LinkImpairments imp;
  imp.gilbert_elliott =
      GilbertElliott{.enter_bad = 0.05, .exit_bad = 0.2, .loss_good = 0.0, .loss_bad = 1.0};
  const ImpairedRun run = run_impaired(imp, 2000);
  EXPECT_GT(run.stats.drops_burst_loss, 0u);
  EXPECT_EQ(run.stats.drops_random_loss, 0u);
  EXPECT_EQ(run.order.size() + run.stats.drops_burst_loss, 2000u);
  // loss_bad = 1 means every loss sits inside a bad-state burst; with
  // enter=0.05/exit=0.2 the expected bad-state fraction is 20%, so losses
  // must be a substantial minority — and bursty, not isolated: at least one
  // run of consecutive flow-id gaps longer than 1.
  EXPECT_GT(run.stats.drops_burst_loss, 100u);
  EXPECT_LT(run.stats.drops_burst_loss, 1000u);
  bool burst_of_two = false;
  for (std::size_t i = 1; i < run.order.size(); ++i) {
    if (run.order[i] >= run.order[i - 1] + 3) burst_of_two = true;  // >= 2 lost in a row
  }
  EXPECT_TRUE(burst_of_two);
}

TEST(Impairments, OneShotOutageDropsOnlyInsideWindow) {
  LinkImpairments imp;
  imp.outage_start = SimTime{milliseconds(20)};
  imp.outage_duration = milliseconds(10);

  sim::Simulator simulator;
  std::vector<SimTime> deliveries;
  Link link(simulator, DataRate::megabits_per_second(80.0), SimDuration::zero(), 0.0,
            10'000'000, Rng(1), [&](Packet) { deliveries.push_back(simulator.now()); });
  link.set_impairments(imp);
  // One 1000-byte packet every millisecond for 50 ms; serialization is
  // 0.1 ms, so each packet clears the loss stage just after its send time.
  for (int i = 0; i < 50; ++i) {
    simulator.schedule_at(SimTime{milliseconds(i)}, [&link] { link.send(make_packet(1000)); });
  }
  simulator.run();
  EXPECT_EQ(link.stats().drops_outage, 10u);  // sends at 20..29 ms
  EXPECT_EQ(deliveries.size(), 40u);
}

TEST(Impairments, PeriodicFlapsRepeatTheOutage) {
  LinkImpairments imp;
  imp.outage_start = SimTime{milliseconds(10)};
  imp.outage_duration = milliseconds(5);
  imp.outage_interval = milliseconds(20);  // down at [10,15), [30,35), [50,55) ...
  EXPECT_FALSE(imp.in_outage(SimTime{milliseconds(9)}));
  EXPECT_TRUE(imp.in_outage(SimTime{milliseconds(10)}));
  EXPECT_TRUE(imp.in_outage(SimTime{milliseconds(14)}));
  EXPECT_FALSE(imp.in_outage(SimTime{milliseconds(15)}));
  EXPECT_TRUE(imp.in_outage(SimTime{milliseconds(31)}));
  EXPECT_FALSE(imp.in_outage(SimTime{milliseconds(45)}));
  EXPECT_TRUE(imp.in_outage(SimTime{milliseconds(52)}));
}

TEST(Impairments, ImpairedRunsAreDeterministicInTheSeed) {
  LinkImpairments imp;
  imp.reorder_rate = 0.3;
  imp.reorder_delay_min = milliseconds(1);
  imp.reorder_delay_max = milliseconds(25);
  imp.duplicate_rate = 0.2;
  imp.gilbert_elliott =
      GilbertElliott{.enter_bad = 0.02, .exit_bad = 0.3, .loss_good = 0.0, .loss_bad = 0.6};
  const ImpairedRun a = run_impaired(imp, 500, 0.01, 7);
  const ImpairedRun b = run_impaired(imp, 500, 0.01, 7);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.times, b.times);
  const ImpairedRun c = run_impaired(imp, 500, 0.01, 8);
  EXPECT_NE(a.times, c.times);  // a different seed must actually change draws
}

}  // namespace
}  // namespace qperc::net
