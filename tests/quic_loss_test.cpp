// White-box tests of the QUIC sender's loss detection and probe timers.
#include <gtest/gtest.h>

#include <vector>

#include "quic/send_side.hpp"
#include "sim/simulator.hpp"

namespace qperc::quic {
namespace {

/// Harness around a bare QuicSendSide capturing emitted packets.
struct SenderHarness {
  sim::Simulator simulator;
  std::vector<QuicPacket> sent;
  QuicSendSide sender;

  explicit SenderHarness(QuicConfig config = QuicConfig{})
      : sender(simulator, config, [this](QuicPacket packet) {
          sent.push_back(std::move(packet));
        }) {}

  /// Delivers an ACK covering the given packet-number ranges.
  void ack(std::initializer_list<std::pair<std::uint64_t, std::uint64_t>> ranges) {
    QuicPacket ack_packet;
    ack_packet.has_ack = true;
    for (const auto& range : ranges) {
      ack_packet.ack_ranges.emplace_back(simulator.arena(), range.first, range.second);
    }
    sender.on_ack_frame(ack_packet);
  }

  /// Counts total stream bytes across sent packets [from, to).
  std::size_t packets_sent() const { return sent.size(); }
};

TEST(QuicSendSide, SendsAfterEstablishment) {
  SenderHarness harness;
  harness.sender.write_stream(5, 10'000, true, 1);
  harness.simulator.run_until(SimTime(milliseconds(10)));
  EXPECT_EQ(harness.packets_sent(), 0u);  // not established yet
  harness.sender.on_established(milliseconds(50));
  harness.simulator.run_until(SimTime(milliseconds(20)));
  EXPECT_GT(harness.packets_sent(), 0u);
}

TEST(QuicSendSide, PacketThresholdLossTriggersRetransmission) {
  SenderHarness harness;
  harness.sender.on_established(milliseconds(50));
  harness.sender.write_stream(5, 20'000, true, 1);
  harness.simulator.run_until(SimTime(milliseconds(100)));
  const std::size_t initial = harness.packets_sent();
  ASSERT_GE(initial, 5u);

  // ACK packets 4..N, skipping 1..3: pn 1..3 are >=3 behind the largest.
  const std::uint64_t largest = harness.sent[initial - 1].packet_number;
  harness.ack({{4, largest}});
  harness.simulator.run_until(harness.simulator.now() + milliseconds(50));
  EXPECT_GT(harness.packets_sent(), initial);  // lost frames re-sent
  EXPECT_GT(harness.sender.stats().retransmissions, 0u);
  EXPECT_EQ(harness.sender.stats().congestion_events, 1u);
}

TEST(QuicSendSide, ReorderingBelowThresholdIsNotLoss) {
  SenderHarness harness;
  harness.sender.on_established(milliseconds(50));
  harness.sender.write_stream(5, 8'000, true, 1);
  harness.simulator.run_until(SimTime(milliseconds(100)));
  const std::size_t initial = harness.packets_sent();
  ASSERT_GE(initial, 3u);
  // ACK only the second packet: gap of one — below the packet threshold,
  // and the time threshold has not elapsed yet.
  harness.ack({{2, 2}});
  EXPECT_EQ(harness.sender.stats().retransmissions, 0u);
}

TEST(QuicSendSide, ProbeTimeoutFiresWithoutAcks) {
  SenderHarness harness;
  harness.sender.on_established(milliseconds(50));
  harness.sender.write_stream(5, 3'000, true, 1);
  harness.simulator.run_until(SimTime(milliseconds(80)));
  const std::size_t initial = harness.packets_sent();
  ASSERT_GT(initial, 0u);
  // No ACK ever arrives: the PTO must fire and probe.
  harness.simulator.run_until(SimTime(seconds(2)));
  EXPECT_GT(harness.sender.stats().tail_probes, 0u);
  EXPECT_GT(harness.packets_sent(), initial);
}

TEST(QuicSendSide, PtoBacksOffExponentially) {
  SenderHarness harness;
  harness.sender.on_established(milliseconds(50));
  harness.sender.write_stream(5, 1'000, true, 1);
  harness.simulator.run_until(SimTime(seconds(10)));
  // Repeated unanswered probes escalate into timeout statistics.
  EXPECT_GE(harness.sender.stats().tail_probes, 3u);
  EXPECT_GE(harness.sender.stats().timeouts, 1u);
  // With exponential backoff, probe count grows logarithmically: far fewer
  // than the linear-timer worst case.
  EXPECT_LE(harness.sender.stats().tail_probes, 12u);
}

TEST(QuicSendSide, LateAckForPtoMarkedPacketsIsSpurious) {
  SenderHarness harness;
  harness.sender.on_established(milliseconds(50));
  harness.sender.write_stream(5, 20'000, true, 1);
  harness.simulator.run_until(SimTime(milliseconds(100)));
  const std::size_t initial = harness.packets_sent();
  ASSERT_GE(initial, 5u);
  // No ACKs arrive: the probe timeout escalates and starts declaring the
  // oldest packets of the flight lost.
  harness.simulator.run_until(SimTime(seconds(3)));
  ASSERT_GE(harness.sender.stats().timeouts, 1u);
  EXPECT_EQ(harness.sender.stats().spurious_timeouts, 0u);
  // The original flight's ACK finally lands (it was delayed, never dropped):
  // that proves the timeouts spurious — the backoff resets and the undo is
  // counted, instead of the timeout storm re-sending a flight the peer
  // already has.
  const std::uint64_t largest = harness.sent[initial - 1].packet_number;
  harness.ack({{1, largest}});
  EXPECT_GE(harness.sender.stats().spurious_timeouts, 1u);
}

TEST(QuicSendSide, AckOfRetransmittedDataIsNotSpurious) {
  SenderHarness harness;
  harness.sender.on_established(milliseconds(50));
  harness.sender.write_stream(5, 20'000, true, 1);
  harness.simulator.run_until(SimTime(milliseconds(100)));
  const std::size_t initial = harness.packets_sent();
  harness.simulator.run_until(SimTime(seconds(3)));
  ASSERT_GT(harness.packets_sent(), initial);  // PTO probes went out
  // ACK only packets sent *after* the timeouts (the retransmissions): the
  // originals really were lost, so no spurious undo may fire.
  const std::uint64_t first_retx = harness.sent[initial].packet_number;
  const std::uint64_t largest = harness.sent.back().packet_number;
  harness.ack({{first_retx, largest}});
  EXPECT_EQ(harness.sender.stats().spurious_timeouts, 0u);
}

TEST(QuicSendSide, OneCongestionEventPerLossEpisode) {
  SenderHarness harness;
  harness.sender.on_established(milliseconds(50));
  harness.sender.write_stream(5, 60'000, true, 1);
  harness.simulator.run_until(SimTime(milliseconds(200)));
  const std::size_t initial = harness.packets_sent();
  ASSERT_GE(initial, 10u);
  const std::uint64_t largest = harness.sent[initial - 1].packet_number;
  // Two separate ACKs each revealing losses from the same flight.
  harness.ack({{6, 8}});
  harness.ack({{10, largest}});
  EXPECT_EQ(harness.sender.stats().congestion_events, 1u);
}

TEST(QuicSendSide, StreamPriorityOrdersFrames) {
  SenderHarness harness;
  harness.sender.on_established(milliseconds(50));
  // Low-priority stream written first, high-priority second.
  harness.sender.write_stream(5, 50'000, true, /*priority=*/3);
  harness.sender.write_stream(7, 50'000, true, /*priority=*/0);
  harness.simulator.run_until(SimTime(milliseconds(15)));
  ASSERT_GE(harness.packets_sent(), 15u);
  // The pacer's 10-packet initial burst leaves during the first
  // write_stream call (stream 5 only); once stream 7 exists, its higher
  // priority must dominate the paced packets.
  std::uint64_t stream7_bytes = 0;
  std::uint64_t stream5_bytes = 0;
  for (std::size_t i = 10; i < harness.packets_sent(); ++i) {
    for (const auto& frame : harness.sent[i].frames) {
      (frame.stream_id == 7 ? stream7_bytes : stream5_bytes) += frame.length;
    }
  }
  EXPECT_GT(stream7_bytes, stream5_bytes);
}

TEST(QuicSendSide, ControlPacketsConsumePacketNumbers) {
  SenderHarness harness;
  const auto first = harness.sender.make_control_packet();
  const auto second = harness.sender.make_control_packet();
  EXPECT_EQ(second.packet_number, first.packet_number + 1);
  EXPECT_FALSE(first.ack_eliciting);
}

TEST(QuicSendSide, WindowUpdatesUnblockStreams) {
  QuicConfig config;
  config.stream_flow_window_bytes = 4'000;
  config.connection_flow_window_bytes = 1'000'000;
  SenderHarness harness(config);
  harness.sender.on_established(milliseconds(50));
  harness.sender.write_stream(5, 20'000, true, 1);
  harness.simulator.run_until(SimTime(milliseconds(50)));
  std::uint64_t sent_bytes = 0;
  for (const auto& packet : harness.sent) {
    for (const auto& frame : packet.frames) sent_bytes += frame.length;
  }
  EXPECT_LE(sent_bytes, 4'000u);  // blocked at the stream window

  QuicPacket update;
  update.window_updates.push_back(harness.simulator.arena(), WindowUpdate{5, 20'000});
  harness.sender.on_window_updates(update);
  harness.simulator.run_until(harness.simulator.now() + milliseconds(50));
  sent_bytes = 0;
  for (const auto& packet : harness.sent) {
    for (const auto& frame : packet.frames) sent_bytes += frame.length;
  }
  EXPECT_GT(sent_bytes, 4'000u);
}

}  // namespace
}  // namespace qperc::quic
