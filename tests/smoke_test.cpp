// End-to-end smoke tests: a full page load through every protocol on every
// network completes and produces sane metrics.
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/profile.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

TEST(Smoke, EveryProtocolLoadsASmallSiteOnDsl) {
  const auto catalog = web::study_catalog(7);
  const web::Website& site = catalog[6];  // apache.org: small
  for (const auto& protocol : core::paper_protocols()) {
    const auto result = core::run_trial(core::TrialSpec(site, protocol, net::dsl_profile(), 42));
    EXPECT_TRUE(result.metrics.finished) << protocol.name;
    EXPECT_GT(result.metrics.plt_ms(), 0.0) << protocol.name;
    EXPECT_LT(result.metrics.plt_ms(), 30'000.0) << protocol.name;
    EXPECT_LE(result.metrics.fvc_ms(), result.metrics.plt_ms()) << protocol.name;
  }
}

TEST(Smoke, EveryNetworkCompletesWithQuic) {
  const auto catalog = web::study_catalog(7);
  const web::Website& site = catalog[6];
  const auto& quic = core::protocol_by_name("QUIC");
  for (const auto& profile : net::all_profiles()) {
    const auto result = core::run_trial(core::TrialSpec(site, quic, profile, 43));
    EXPECT_TRUE(result.metrics.finished) << profile.name;
    EXPECT_GT(result.metrics.plt_ms(), to_millis(profile.min_rtt)) << profile.name;
  }
}

}  // namespace
}  // namespace qperc
