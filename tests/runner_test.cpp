// Runner tests: executor fault capture, grid sharding, durable result
// store (corruption, truncation, atomicity), campaign determinism across
// job counts, resume-from-checkpoint, and fault injection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/video.hpp"
#include "net/profile.hpp"
#include "runner/campaign.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/executor.hpp"
#include "runner/result_store.hpp"
#include "trace/counters.hpp"
#include "web/website.hpp"

namespace qperc::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- Executor ---------------------------------------------------------------

TEST(Executor, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  Executor executor({.jobs = 4});
  const auto failures =
      executor.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_TRUE(failures.empty());
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(Executor, CapturesThrowingTasksAndCompletesTheRest) {
  std::vector<std::atomic<int>> hits(16);
  Executor executor({.jobs = 3});
  const auto failures = executor.run(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
    if (i % 5 == 0) throw std::runtime_error("task " + std::to_string(i) + " boom");
  });
  ASSERT_EQ(failures.size(), 4u);  // indices 0, 5, 10, 15
  // Sorted by index, with the exception preserved.
  EXPECT_EQ(failures[0].index, 0u);
  EXPECT_EQ(failures[1].index, 5u);
  EXPECT_EQ(failures[2].index, 10u);
  EXPECT_EQ(failures[3].index, 15u);
  EXPECT_NE(failures[0].message.find("task 0 boom"), std::string::npos);
  EXPECT_TRUE(failures[0].error);
  EXPECT_THROW(std::rethrow_exception(failures[0].error), std::runtime_error);
  // Non-throwing tasks all completed despite the failures.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    if (i % 5 != 0) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
  }
}

TEST(Executor, RetriesUpToMaxAttempts) {
  std::vector<std::atomic<int>> attempts(4);
  Executor executor({.jobs = 2, .max_attempts = 3});
  const auto failures = executor.run(attempts.size(), [&](std::size_t i) {
    const int attempt = attempts[i].fetch_add(1) + 1;
    if (i == 1) throw std::runtime_error("always fails");  // exhausts retries
    if (i == 2 && attempt < 3) throw std::runtime_error("flaky");  // succeeds 3rd try
  });
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].index, 1u);
  EXPECT_EQ(failures[0].attempts, 3u);
  EXPECT_EQ(attempts[1].load(), 3);  // retried to the bound
  EXPECT_EQ(attempts[2].load(), 3);  // flaky task recovered
  EXPECT_EQ(attempts[0].load(), 1);
  EXPECT_EQ(attempts[3].load(), 1);
}

TEST(Executor, DescribeExceptionHandlesNonStdThrows) {
  std::exception_ptr error;
  try {
    throw 42;
  } catch (...) {
    error = std::current_exception();
  }
  EXPECT_EQ(describe_exception(error), "unknown exception");
  EXPECT_EQ(describe_exception(std::exception_ptr{}), "no exception");
}

// --- CampaignSpec -----------------------------------------------------------

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.sites = {"wikipedia.org", "gov.uk"};
  spec.protocols = {"QUIC", "TCP"};
  spec.networks = {net::NetworkKind::kDsl, net::NetworkKind::kLte};
  spec.runs = 2;
  spec.seed = 7;
  return spec;
}

TEST(CampaignSpec, ValidateRejectsDegenerateGrids) {
  EXPECT_NO_THROW(tiny_spec().validate());
  auto no_sites = tiny_spec();
  no_sites.sites.clear();
  EXPECT_THROW(no_sites.validate(), std::invalid_argument);
  auto no_runs = tiny_spec();
  no_runs.runs = 0;
  EXPECT_THROW(no_runs.validate(), std::invalid_argument);
  auto bad_shard = tiny_spec();
  bad_shard.shard_index = 2;
  bad_shard.shard_count = 2;
  EXPECT_THROW(bad_shard.validate(), std::invalid_argument);
  auto zero_shards = tiny_spec();
  zero_shards.shard_count = 0;
  EXPECT_THROW(zero_shards.validate(), std::invalid_argument);
}

TEST(CampaignSpec, ShardsPartitionTheGrid) {
  const auto spec = tiny_spec();
  const auto full = spec.tasks();
  ASSERT_EQ(full.size(), spec.grid_size());

  std::set<std::size_t> seen;
  for (unsigned shard = 0; shard < 3; ++shard) {
    auto sharded = spec;
    sharded.shard_index = shard;
    sharded.shard_count = 3;
    for (const auto& task : sharded.tasks()) {
      EXPECT_EQ(task.grid_index % 3, shard);
      // Shard tasks are verbatim grid tasks (identity-derived seed intact).
      const auto& reference = full[task.grid_index];
      EXPECT_EQ(task.site, reference.site);
      EXPECT_EQ(task.protocol, reference.protocol);
      EXPECT_EQ(task.base_seed, reference.base_seed);
      EXPECT_TRUE(seen.insert(task.grid_index).second) << "duplicate grid cell";
    }
  }
  EXPECT_EQ(seen.size(), full.size());  // disjoint union covers everything
}

TEST(CampaignSpec, TaskSeedsDeriveFromIdentityOnly) {
  const auto tasks = tiny_spec().tasks();
  std::set<std::uint64_t> seeds;
  for (const auto& task : tasks) {
    EXPECT_EQ(task.base_seed,
              core::condition_base_seed(7, task.site, task.protocol, task.network));
    seeds.insert(task.base_seed);
  }
  EXPECT_EQ(seeds.size(), tasks.size());  // distinct per condition
}

// --- ResultStore ------------------------------------------------------------

core::Video make_video(const std::string& site, const std::string& protocol,
                       net::NetworkKind network) {
  const auto catalog = web::study_catalog(7);
  for (const auto& candidate : catalog) {
    if (candidate.name == site) {
      return core::produce_video(candidate, core::protocol_by_name(protocol),
                                 net::profile_for(network), /*runs=*/2,
                                 core::condition_base_seed(7, site, protocol, network));
    }
  }
  throw std::invalid_argument("site not in catalog: " + site);
}

TEST(ResultStore, RoundTripsThroughDisk) {
  const std::string path = temp_path("qperc_store_roundtrip.qcr");
  std::remove(path.c_str());
  {
    ResultStore writer(path, 7, 2);
    writer.put(make_video("gov.uk", "QUIC", net::NetworkKind::kDsl));
    writer.put(make_video("wikipedia.org", "TCP", net::NetworkKind::kLte));
    writer.checkpoint();
  }
  ResultStore reader(path, 7, 2);
  ASSERT_TRUE(reader.load());
  EXPECT_EQ(reader.size(), 2u);
  EXPECT_TRUE(reader.contains("gov.uk", "QUIC", net::NetworkKind::kDsl));
  EXPECT_TRUE(reader.contains("wikipedia.org", "TCP", net::NetworkKind::kLte));
  EXPECT_FALSE(reader.contains("gov.uk", "TCP", net::NetworkKind::kDsl));

  const auto original = make_video("gov.uk", "QUIC", net::NetworkKind::kDsl);
  reader.for_each([&](const core::Video& video) {
    if (video.site != "gov.uk") return;
    EXPECT_EQ(video.runs, original.runs);
    EXPECT_DOUBLE_EQ(video.metrics.si_ms(), original.metrics.si_ms());
    EXPECT_DOUBLE_EQ(video.mean_metrics.plt_ms(), original.mean_metrics.plt_ms());
    ASSERT_EQ(video.vc_curve.size(), original.vc_curve.size());
  });
  std::remove(path.c_str());
}

TEST(ResultStore, RejectsMismatchedSeedOrRuns) {
  const std::string path = temp_path("qperc_store_mismatch.qcr");
  std::remove(path.c_str());
  {
    ResultStore writer(path, 7, 2);
    writer.put(make_video("gov.uk", "QUIC", net::NetworkKind::kDsl));
    writer.checkpoint();
  }
  ResultStore wrong_seed(path, 8, 2);
  EXPECT_FALSE(wrong_seed.load());
  EXPECT_EQ(wrong_seed.size(), 0u);
  ResultStore wrong_runs(path, 7, 3);
  EXPECT_FALSE(wrong_runs.load());
  ResultStore missing(temp_path("qperc_store_missing.qcr"), 7, 2);
  EXPECT_FALSE(missing.load());
  std::remove(path.c_str());
}

TEST(ResultStore, DetectsCorruptionAndTruncation) {
  const std::string path = temp_path("qperc_store_corrupt.qcr");
  std::remove(path.c_str());
  {
    ResultStore writer(path, 7, 2);
    writer.put(make_video("gov.uk", "QUIC", net::NetworkKind::kDsl));
    writer.put(make_video("gov.uk", "TCP", net::NetworkKind::kLte));
    writer.checkpoint();
  }
  const std::string good = slurp(path);
  ASSERT_FALSE(good.empty());

  // Flip one byte in the middle of the record block: checksum must fail.
  std::string corrupt = good;
  const std::size_t mid = corrupt.size() / 2;
  corrupt[mid] = corrupt[mid] == 'x' ? 'y' : 'x';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  ResultStore corrupted(path, 7, 2);
  EXPECT_FALSE(corrupted.load());
  EXPECT_EQ(corrupted.size(), 0u);  // never partially populated

  // Drop the tail (checksum line and part of a record): truncation must fail.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << good.substr(0, good.size() * 2 / 3);
  }
  ResultStore truncated(path, 7, 2);
  EXPECT_FALSE(truncated.load());
  EXPECT_EQ(truncated.size(), 0u);
  std::remove(path.c_str());
}

TEST(ResultStore, AutoCheckpointsEveryNputsAtomically) {
  const std::string path = temp_path("qperc_store_autockpt.qcr");
  std::remove(path.c_str());
  ResultStore store(path, 7, 2, /*checkpoint_every=*/1);
  store.put(make_video("gov.uk", "QUIC", net::NetworkKind::kDsl));
  // checkpoint_every=1: the file exists without an explicit checkpoint().
  ResultStore reader(path, 7, 2);
  EXPECT_TRUE(reader.load());
  EXPECT_EQ(reader.size(), 1u);
  // The atomic write never leaves its temp file behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

// --- Campaign ---------------------------------------------------------------

TEST(Campaign, StoreBytesAreIdenticalAcrossJobCounts) {
  const std::string path1 = temp_path("qperc_campaign_jobs1.qcr");
  const std::string path4 = temp_path("qperc_campaign_jobs4.qcr");
  std::remove(path1.c_str());
  std::remove(path4.c_str());
  const auto spec = tiny_spec();

  ResultStore serial(path1, spec.seed, spec.runs);
  CampaignOptions one_job;
  one_job.jobs = 1;
  const auto serial_report = run_campaign(spec, serial, one_job);
  EXPECT_EQ(serial_report.executed, spec.grid_size());
  EXPECT_TRUE(serial_report.failures.empty());

  ResultStore parallel(path4, spec.seed, spec.runs);
  CampaignOptions four_jobs;
  four_jobs.jobs = 4;
  const auto parallel_report = run_campaign(spec, parallel, four_jobs);
  EXPECT_TRUE(parallel_report.failures.empty());

  const std::string serial_bytes = slurp(path1);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, slurp(path4));  // bit-identical, not just equivalent
  // Counters aggregate the same totals regardless of completion order.
  EXPECT_EQ(serial_report.counters.packets_sent, parallel_report.counters.packets_sent);
  EXPECT_EQ(serial_report.counters.retransmissions,
            parallel_report.counters.retransmissions);
  std::remove(path1.c_str());
  std::remove(path4.c_str());
}

TEST(Campaign, ResumeSkipsCheckpointedConditions) {
  const std::string interrupted_path = temp_path("qperc_campaign_resume.qcr");
  const std::string oneshot_path = temp_path("qperc_campaign_oneshot.qcr");
  std::remove(interrupted_path.c_str());
  std::remove(oneshot_path.c_str());
  const auto spec = tiny_spec();

  // "Interrupt" deterministically after 3 of 8 tasks, then resume.
  ResultStore store(interrupted_path, spec.seed, spec.runs, /*checkpoint_every=*/1);
  CampaignOptions first_leg;
  first_leg.jobs = 2;
  first_leg.max_tasks = 3;
  const auto partial = run_campaign(spec, store, first_leg);
  EXPECT_EQ(partial.executed, 3u);
  EXPECT_EQ(store.size(), 3u);

  ResultStore resumed(interrupted_path, spec.seed, spec.runs);
  ASSERT_TRUE(resumed.load());
  CampaignOptions second_leg;
  second_leg.jobs = 2;
  const auto rest = run_campaign(spec, resumed, second_leg);
  EXPECT_EQ(rest.skipped, 3u);
  EXPECT_EQ(rest.executed, spec.grid_size() - 3u);
  EXPECT_TRUE(rest.failures.empty());

  ResultStore oneshot(oneshot_path, spec.seed, spec.runs);
  CampaignOptions one_go;
  one_go.jobs = 1;
  static_cast<void>(run_campaign(spec, oneshot, one_go));
  EXPECT_EQ(slurp(interrupted_path), slurp(oneshot_path));  // resume leaves no trace
  std::remove(interrupted_path.c_str());
  std::remove(oneshot_path.c_str());
}

TEST(Campaign, RecordsFailuresAndCompletesTheRest) {
  const std::string path = temp_path("qperc_campaign_faults.qcr");
  std::remove(path.c_str());
  auto spec = tiny_spec();
  spec.sites = {"wikipedia.org", "no-such-site.test"};  // second site cannot resolve

  ResultStore store(path, spec.seed, spec.runs);
  CampaignOptions options;
  options.jobs = 2;
  options.max_attempts = 2;
  const auto report = run_campaign(spec, store, options);

  ASSERT_EQ(report.failures.size(), 4u);  // 2 protocols x 2 networks
  for (const auto& failure : report.failures) {
    EXPECT_EQ(failure.task.site, "no-such-site.test");
    EXPECT_EQ(failure.attempts, 2u);  // bounded retry was exercised
    EXPECT_NE(failure.message.find("no-such-site.test"), std::string::npos);
    EXPECT_TRUE(failure.error);
  }
  // The healthy half of the grid completed and was persisted.
  EXPECT_EQ(store.size(), 4u);
  EXPECT_TRUE(store.contains("wikipedia.org", "QUIC", net::NetworkKind::kDsl));
  EXPECT_TRUE(store.contains("wikipedia.org", "TCP", net::NetworkKind::kLte));
  std::remove(path.c_str());
}

TEST(Campaign, RejectsStoreWithMismatchedParameters) {
  const auto spec = tiny_spec();
  ResultStore wrong(temp_path("qperc_campaign_wrong.qcr"), spec.seed + 1, spec.runs);
  EXPECT_THROW(static_cast<void>(run_campaign(spec, wrong)), std::invalid_argument);
}

TEST(Campaign, AdoptResultsPopulatesLibrary) {
  const std::string path = temp_path("qperc_campaign_adopt.qcr");
  std::remove(path.c_str());
  const auto spec = tiny_spec();
  ResultStore store(path, spec.seed, spec.runs);
  CampaignOptions serial_options;
  serial_options.jobs = 1;
  static_cast<void>(run_campaign(spec, store, serial_options));

  core::VideoLibrary library(spec.seed, spec.runs);
  EXPECT_EQ(adopt_results(store, library), spec.grid_size());
  EXPECT_EQ(library.cached_conditions(), spec.grid_size());
  // Adopted results are exactly what the library would compute itself.
  core::VideoLibrary fresh(spec.seed, spec.runs);
  EXPECT_DOUBLE_EQ(
      library.get("gov.uk", "QUIC", net::NetworkKind::kDsl).metrics.si_ms(),
      fresh.get("gov.uk", "QUIC", net::NetworkKind::kDsl).metrics.si_ms());

  core::VideoLibrary mismatched(spec.seed + 1, spec.runs);
  EXPECT_THROW(static_cast<void>(adopt_results(store, mismatched)),
               std::invalid_argument);
  std::remove(path.c_str());
}

// --- TrialCounters::merge ---------------------------------------------------

TEST(Counters, MergeIsOrderIndependent) {
  trace::TrialCounters a;
  a.packets_sent = 10;
  a.retransmissions = 2;
  a.max_cwnd_bytes = 5000;
  a.first_handshake_duration = SimDuration{300};
  trace::TrialCounters b;
  b.packets_sent = 7;
  b.max_cwnd_bytes = 9000;
  b.first_handshake_duration = SimDuration{200};
  trace::TrialCounters c;
  c.packets_sent = 1;
  c.timeouts = 4;  // first_handshake_duration stays 0 (no handshake seen)

  trace::TrialCounters forward;
  forward.merge(a);
  forward.merge(b);
  forward.merge(c);
  trace::TrialCounters backward;
  backward.merge(c);
  backward.merge(b);
  backward.merge(a);

  EXPECT_EQ(forward.packets_sent, 18u);
  EXPECT_EQ(forward.retransmissions, 2u);
  EXPECT_EQ(forward.timeouts, 4u);
  EXPECT_EQ(forward.max_cwnd_bytes, 9000u);
  EXPECT_EQ(forward.first_handshake_duration.count(), 200);  // min non-zero
  EXPECT_EQ(backward.packets_sent, forward.packets_sent);
  EXPECT_EQ(backward.max_cwnd_bytes, forward.max_cwnd_bytes);
  EXPECT_EQ(backward.first_handshake_duration.count(),
            forward.first_handshake_duration.count());
}

}  // namespace
}  // namespace qperc::runner
