// Unit tests for util: RNG determinism/distributions, units, table printer,
// SmallFunction callbacks, ring buffer.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "util/function.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace qperc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(99);
  Rng child1 = parent.fork(std::uint64_t{7});
  parent.next_u64();  // consuming the parent must not change forks
  // fork() is const and keyed on state; same state+tag gives the same child,
  // so re-fork from a copy made before consumption.
  Rng parent2(99);
  Rng child2 = parent2.fork(std::uint64_t{7});
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, ForksWithDifferentTagsDecorrelated) {
  Rng parent(5);
  Rng a = parent.fork(std::uint64_t{1});
  Rng b = parent.fork(std::uint64_t{2});
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, StringForkMatchesHashFork) {
  Rng parent(5);
  Rng a = parent.fork("uplink-loss");
  Rng b = parent.fork(fnv1a("uplink-loss"));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(42);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(42);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(42);
  for (const double lambda : {0.3, 2.0, 15.0, 80.0}) {
    double sum = 0.0;
    constexpr int kN = 5000;
    for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / kN, lambda, std::max(0.1, lambda * 0.08)) << lambda;
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(42);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.15);
}

TEST(Units, TransmissionTime) {
  const auto rate = DataRate::megabits_per_second(8.0);  // 1 MB/s
  EXPECT_EQ(rate.transmission_time(1'000'000), seconds(1));
  EXPECT_EQ(rate.transmission_time(500'000), milliseconds(500));
}

TEST(Units, BytesIn) {
  const auto rate = DataRate::megabits_per_second(8.0);
  EXPECT_EQ(rate.bytes_in(seconds(2)), 2'000'000u);
}

TEST(Units, BdpBytes) {
  // 25 Mbps x 24 ms = 75 kB (the DSL BDP from Table 2).
  EXPECT_EQ(bdp_bytes(DataRate::megabits_per_second(25.0), milliseconds(24)), 75'000u);
}

TEST(Units, FromBytesAndDuration) {
  const auto rate = DataRate::from_bytes_and_duration(1'000'000, seconds(1));
  EXPECT_EQ(rate.bps(), 8'000'000u);
  EXPECT_EQ(DataRate::from_bytes_and_duration(100, SimDuration::zero()).bps(), 0u);
}

TEST(Units, ZeroRateHasInfiniteTransmissionTime) {
  EXPECT_EQ(DataRate().transmission_time(1), SimDuration::max());
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(seconds(2)), 2000.0);
  EXPECT_EQ(from_seconds(0.001), milliseconds(1));
}

TEST(Table, AlignsColumnsAndRendersCsv) {
  TextTable table({"a", "bbbb"});
  table.add_row({"1", "2"});
  table.add_rule();
  table.add_row({"333", "4"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,bbbb\n1,2\n333,4\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
  EXPECT_EQ(fmt_ms(24.0), "24 ms");
}

TEST(SmallFunction, InvokesInlineCallable) {
  int hits = 0;
  SmallFunction<void()> fn([&hits] { ++hits; });
  ASSERT_TRUE(fn);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, EmptyAndNullptrStates) {
  SmallFunction<void()> fn;
  EXPECT_FALSE(fn);
  EXPECT_TRUE(fn == nullptr);
  fn = [] {};
  EXPECT_TRUE(fn);
  EXPECT_TRUE(fn != nullptr);
  fn = nullptr;
  EXPECT_FALSE(fn);
}

TEST(SmallFunction, MoveTransfersOwnership) {
  int hits = 0;
  SmallFunction<void()> a([&hits] { ++hits; });
  SmallFunction<void()> b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty by contract
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFunction, SupportsMoveOnlyCaptures) {
  auto owned = std::make_unique<int>(41);
  SmallFunction<int()> fn([owned = std::move(owned)] { return *owned + 1; });
  EXPECT_EQ(fn(), 42);
}

TEST(SmallFunction, LargeCapturesFallBackToHeap) {
  std::array<std::uint64_t, 32> big{};  // 256 bytes, well past the inline buffer
  big[0] = 7;
  big[31] = 35;
  SmallFunction<std::uint64_t()> fn([big] { return big[0] + big[31]; });
  EXPECT_EQ(fn(), 42u);
  SmallFunction<std::uint64_t()> moved(std::move(fn));
  EXPECT_EQ(moved(), 42u);
}

TEST(SmallFunction, PassesArgumentsAndReturnsValues) {
  SmallFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(20, 22), 42);
}

TEST(RingBuffer, FifoOrderAcrossGrowth) {
  RingBuffer<int> buffer;
  for (int i = 0; i < 100; ++i) buffer.push_back(i);
  EXPECT_EQ(buffer.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(buffer.pop_front(), i);
  EXPECT_TRUE(buffer.empty());
}

TEST(RingBuffer, WrapsAroundWithoutReordering) {
  RingBuffer<int> buffer;
  int next_in = 0;
  int next_out = 0;
  // Interleave pushes and pops so head/tail wrap the slab repeatedly.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 7; ++i) buffer.push_back(next_in++);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(buffer.pop_front(), next_out++);
  }
  while (!buffer.empty()) EXPECT_EQ(buffer.pop_front(), next_out++);
  EXPECT_EQ(next_in, next_out);
}

TEST(RingBuffer, ClearEmptiesAndStaysUsable) {
  RingBuffer<std::unique_ptr<int>> buffer;
  buffer.push_back(std::make_unique<int>(1));
  buffer.push_back(std::make_unique<int>(2));
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  buffer.push_back(std::make_unique<int>(3));
  EXPECT_EQ(*buffer.front(), 3);
  EXPECT_EQ(*buffer.pop_front(), 3);
}

}  // namespace
}  // namespace qperc
