// Unit tests for link emulation and the Table-2 network profiles.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/emulated_network.hpp"
#include "net/link.hpp"
#include "net/profile.hpp"
#include "sim/simulator.hpp"

namespace qperc::net {
namespace {

Packet make_packet(std::uint32_t bytes, std::uint64_t flow = 1) {
  Packet packet;
  packet.flow = FlowId{flow};
  packet.dest_server = ServerId{0};
  packet.wire_bytes = bytes;
  return packet;
}

TEST(Link, SerializationPlusPropagationDelay) {
  sim::Simulator simulator;
  std::vector<SimTime> deliveries;
  Link link(simulator, DataRate::megabits_per_second(8.0), milliseconds(10), 0.0,
            1'000'000, Rng(1), [&](Packet) { deliveries.push_back(simulator.now()); });
  link.send(make_packet(1000));  // 1 ms serialization at 1 MB/s
  simulator.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], SimTime(milliseconds(11)));
}

TEST(Link, BackToBackPacketsSerializeSequentially) {
  sim::Simulator simulator;
  std::vector<SimTime> deliveries;
  Link link(simulator, DataRate::megabits_per_second(8.0), milliseconds(0), 0.0, 1'000'000,
            Rng(1), [&](Packet) { deliveries.push_back(simulator.now()); });
  link.send(make_packet(1000));
  link.send(make_packet(1000));
  link.send(make_packet(1000));
  simulator.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], SimTime(milliseconds(1)));
  EXPECT_EQ(deliveries[1], SimTime(milliseconds(2)));
  EXPECT_EQ(deliveries[2], SimTime(milliseconds(3)));
}

TEST(Link, AchievedThroughputMatchesConfiguredRate) {
  sim::Simulator simulator;
  std::uint64_t delivered_bytes = 0;
  Link link(simulator, DataRate::megabits_per_second(10.0), milliseconds(5), 0.0,
            50'000, Rng(1), [&](Packet p) { delivered_bytes += p.wire_bytes; });
  // Keep the link saturated for one second.
  std::function<void()> refill = [&] {
    while (link.queued_bytes() + 1500 <= 50'000 && simulator.now() < SimTime(seconds(1))) {
      link.send(make_packet(1500));
    }
    if (simulator.now() < SimTime(seconds(1))) {
      simulator.schedule_in(milliseconds(1), refill);
    }
  };
  refill();
  simulator.run_until(SimTime(seconds(1)) + milliseconds(10));
  const double achieved_mbps = static_cast<double>(delivered_bytes) * 8.0 / 1e6;
  EXPECT_NEAR(achieved_mbps, 10.0, 0.3);
}

TEST(Link, DroptailQueueDropsWhenFull) {
  sim::Simulator simulator;
  int delivered = 0;
  Link link(simulator, DataRate::megabits_per_second(1.0), milliseconds(0), 0.0,
            3000,  // room for two 1500-byte packets
            Rng(1), [&](Packet) { ++delivered; });
  for (int i = 0; i < 10; ++i) link.send(make_packet(1500));
  simulator.run();
  EXPECT_EQ(link.stats().drops_queue_full, 8u);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.stats().packets_offered, 10u);
}

TEST(Link, RandomLossRateIsRespected) {
  sim::Simulator simulator;
  int delivered = 0;
  Link link(simulator, DataRate::megabits_per_second(100.0), milliseconds(0), 0.06,
            10'000'000, Rng(7), [&](Packet) { ++delivered; });
  constexpr int kN = 10'000;
  for (int i = 0; i < kN; ++i) link.send(make_packet(100));
  simulator.run();
  const double loss = static_cast<double>(link.stats().drops_random_loss) / kN;
  EXPECT_NEAR(loss, 0.06, 0.01);
  EXPECT_EQ(delivered + static_cast<int>(link.stats().drops_random_loss), kN);
}

TEST(Link, LosslessLinkDeliversEverything) {
  sim::Simulator simulator;
  int delivered = 0;
  Link link(simulator, DataRate::megabits_per_second(100.0), milliseconds(1), 0.0,
            10'000'000, Rng(7), [&](Packet) { ++delivered; });
  for (int i = 0; i < 1000; ++i) link.send(make_packet(100));
  simulator.run();
  EXPECT_EQ(delivered, 1000);
}

TEST(Profiles, Table2Values) {
  const auto& profiles = all_profiles();
  ASSERT_EQ(profiles.size(), 4u);

  const auto& dsl = profiles[0];
  EXPECT_EQ(dsl.name, "DSL");
  EXPECT_EQ(dsl.uplink.bps(), 5'000'000u);
  EXPECT_EQ(dsl.downlink.bps(), 25'000'000u);
  EXPECT_EQ(dsl.min_rtt, milliseconds(24));
  EXPECT_DOUBLE_EQ(dsl.loss_rate, 0.0);
  EXPECT_EQ(dsl.queue_delay, milliseconds(12));

  const auto& lte = profiles[1];
  EXPECT_EQ(lte.uplink.bps(), 2'800'000u);
  EXPECT_EQ(lte.downlink.bps(), 10'500'000u);
  EXPECT_EQ(lte.min_rtt, milliseconds(74));
  EXPECT_EQ(lte.queue_delay, milliseconds(200));

  const auto& da2gc = profiles[2];
  EXPECT_EQ(da2gc.uplink.bps(), 468'000u);
  EXPECT_EQ(da2gc.downlink.bps(), 468'000u);
  EXPECT_EQ(da2gc.min_rtt, milliseconds(262));
  EXPECT_DOUBLE_EQ(da2gc.loss_rate, 0.033);

  const auto& mss = profiles[3];
  EXPECT_EQ(mss.uplink.bps(), 1'890'000u);
  EXPECT_EQ(mss.min_rtt, milliseconds(760));
  EXPECT_DOUBLE_EQ(mss.loss_rate, 0.06);
}

TEST(Profiles, QueueSizing) {
  const auto dsl = dsl_profile();
  // 25 Mbps x 12 ms = 37.5 kB.
  EXPECT_EQ(dsl.downlink_queue_bytes(), 37'500u);
  // Uplinks have a 32 kB bufferbloat floor (5 Mbps x 12 ms would be 7.5 kB).
  EXPECT_EQ(dsl.uplink_queue_bytes(), 32u * 1024);
  // MSS: 1.89 Mbps x 200 ms = 47.25 kB exceeds the floor.
  EXPECT_EQ(mss_profile().uplink_queue_bytes(), 47'250u);
  // Tiny downlinks get a 2-MTU floor.
  NetworkProfile tiny = dsl;
  tiny.downlink = DataRate::kilobits_per_second(10);
  EXPECT_EQ(tiny.downlink_queue_bytes(), 2u * kMtuBytes);
}

TEST(Profiles, BdpBytes) {
  EXPECT_EQ(dsl_profile().downlink_bdp_bytes(), 75'000u);
  EXPECT_EQ(profile_for(NetworkKind::kMss).downlink_bdp_bytes(),
            DataRate::megabits_per_second(1.89).bytes_in(milliseconds(760)));
}

TEST(EmulatedNetwork, RoutesUplinkAndDownlinkByFlow) {
  sim::Simulator simulator;
  EmulatedNetwork network(simulator, dsl_profile(), Rng(3));
  int server_received = 0;
  int client_received = 0;
  const FlowId flow = network.allocate_flow_id();
  network.register_server_flow(flow, [&](Packet) { ++server_received; });
  network.register_client_flow(flow, [&](Packet) { ++client_received; });

  Packet up = make_packet(500, static_cast<std::uint64_t>(flow));
  network.client_send(up);
  Packet down = make_packet(500, static_cast<std::uint64_t>(flow));
  network.server_send(down);
  simulator.run();
  EXPECT_EQ(server_received, 1);
  EXPECT_EQ(client_received, 1);
}

TEST(EmulatedNetwork, UnknownFlowIsDropped) {
  sim::Simulator simulator;
  EmulatedNetwork network(simulator, dsl_profile(), Rng(3));
  network.client_send(make_packet(500, 999));
  simulator.run();  // must not crash
  EXPECT_EQ(network.uplink_stats().packets_delivered, 1u);
}

TEST(EmulatedNetwork, RoundTripTakesMinRtt) {
  sim::Simulator simulator;
  EmulatedNetwork network(simulator, dsl_profile(), Rng(3));
  const FlowId flow = network.allocate_flow_id();
  SimTime reply_at{0};
  network.register_server_flow(flow, [&](Packet packet) { network.server_send(packet); });
  network.register_client_flow(flow, [&](Packet) { reply_at = simulator.now(); });
  network.client_send(make_packet(100, static_cast<std::uint64_t>(flow)));
  simulator.run();
  // One small packet each way: ~min RTT plus two serializations.
  EXPECT_GE(reply_at, SimTime(milliseconds(24)));
  EXPECT_LT(reply_at, SimTime(milliseconds(26)));
}

}  // namespace
}  // namespace qperc::net
