// Shared helpers for transport-level tests: wire a connection through an
// emulated network and push a response of a given size with backpressure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/emulated_network.hpp"
#include "net/profile.hpp"
#include "quic/connection.hpp"
#include "sim/simulator.hpp"
#include "tcp/connection.hpp"
#include "util/rng.hpp"

namespace qperc::testutil {

/// A client/server TCP harness: on establishment the server pushes
/// `response_bytes` subject to send-buffer backpressure.
struct TcpHarness {
  sim::Simulator simulator;
  std::unique_ptr<net::EmulatedNetwork> network;
  std::unique_ptr<tcp::TcpConnection> connection;
  std::uint64_t response_bytes = 0;
  std::uint64_t written = 0;
  std::uint64_t delivered = 0;
  std::uint64_t request_delivered = 0;
  SimTime established_at{kNoTime};
  SimTime finished_at{kNoTime};  // exact completion time of the response

  TcpHarness(const net::NetworkProfile& profile, const tcp::TcpConfig& config,
             std::uint64_t response, std::uint64_t seed = 1)
      : response_bytes(response) {
    network = std::make_unique<net::EmulatedNetwork>(simulator, profile, Rng(seed));
    connection = std::make_unique<tcp::TcpConnection>(
        simulator, *network, net::ServerId{0}, config,
        tcp::TcpConnection::Callbacks{
            .on_established =
                [this] {
                  established_at = simulator.now();
                  push();
                },
            .on_request_bytes = [this](std::uint64_t t) { request_delivered = t; },
            .on_response_bytes =
                [this](std::uint64_t t) {
                  delivered = t;
                  if (delivered >= response_bytes && finished_at == kNoTime) {
                    finished_at = simulator.now();
                  }
                },
        });
    connection->set_server_on_writable([this] { push(); });
  }

  void push() {
    while (written < response_bytes) {
      const std::uint64_t accepted = connection->server_write(response_bytes - written);
      if (accepted == 0) break;
      written += accepted;
    }
  }

  /// Runs until everything is delivered or the deadline passes; returns
  /// whether delivery completed.
  bool run(SimDuration deadline = seconds(120)) {
    connection->connect();
    const SimTime end = simulator.now() + deadline;
    while (delivered < response_bytes && simulator.now() < end) {
      simulator.run_until(std::min(end, simulator.now() + milliseconds(100)));
    }
    return delivered >= response_bytes;
  }
};

/// QUIC harness: the server answers each request stream with a fixed-size
/// response on the same stream.
struct QuicHarness {
  sim::Simulator simulator;
  std::unique_ptr<net::EmulatedNetwork> network;
  std::unique_ptr<quic::QuicConnection> connection;
  std::uint64_t response_bytes = 0;
  std::uint64_t streams_completed = 0;
  std::uint64_t bytes_delivered = 0;
  SimTime established_at{kNoTime};

  QuicHarness(const net::NetworkProfile& profile, const quic::QuicConfig& config,
              std::uint64_t response, std::uint64_t seed = 1)
      : response_bytes(response) {
    network = std::make_unique<net::EmulatedNetwork>(simulator, profile, Rng(seed));
    connection = std::make_unique<quic::QuicConnection>(
        simulator, *network, net::ServerId{0}, config,
        quic::QuicConnection::Callbacks{
            .on_established = [this] { established_at = simulator.now(); },
            .on_request_stream =
                [this](std::uint64_t stream, std::uint64_t /*bytes*/, bool fin) {
                  if (fin) {
                    connection->server_write_stream(stream, response_bytes, true, 1);
                  }
                },
            .on_response_stream =
                [this](std::uint64_t /*stream*/, std::uint64_t bytes, bool fin) {
                  latest_stream_bytes = bytes;
                  if (fin) {
                    ++streams_completed;
                    bytes_delivered += bytes;
                  }
                },
        });
  }

  std::uint64_t latest_stream_bytes = 0;

  /// Opens `streams` request streams and runs until all responses complete.
  bool run(std::uint32_t streams, SimDuration deadline = seconds(120)) {
    connection->connect();
    for (std::uint32_t i = 0; i < streams; ++i) {
      connection->client_write_stream(5 + 2 * i, 300, true, 1);
    }
    const SimTime end = simulator.now() + deadline;
    while (streams_completed < streams && simulator.now() < end) {
      simulator.run_until(std::min(end, simulator.now() + milliseconds(100)));
    }
    return streams_completed >= streams;
  }
};

}  // namespace qperc::testutil
