// Browser tests: metric computation and the page-load engine.
#include <gtest/gtest.h>

#include "browser/metrics.hpp"
#include "browser/page_loader.hpp"
#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "http/session.hpp"
#include "net/profile.hpp"
#include "web/website.hpp"

namespace qperc::browser {
namespace {

TEST(Metrics, StepCurveKnownSpeedIndex) {
  // VC jumps to 0.5 at 1 s and to 1.0 at 3 s.
  const std::vector<VcSample> curve = {{SimTime(seconds(1)), 0.5},
                                       {SimTime(seconds(3)), 1.0}};
  const auto metrics = compute_metrics(curve, seconds(4), true);
  EXPECT_DOUBLE_EQ(metrics.fvc_ms(), 1000.0);
  EXPECT_DOUBLE_EQ(metrics.lvc_ms(), 3000.0);
  EXPECT_DOUBLE_EQ(metrics.plt_ms(), 4000.0);
  EXPECT_DOUBLE_EQ(metrics.vc85_ms(), 3000.0);
  // SI = 1 s (VC=0) + 2 s * 0.5 = 2 s.
  EXPECT_DOUBLE_EQ(metrics.si_ms(), 2000.0);
}

TEST(Metrics, SingleJumpCurve) {
  const std::vector<VcSample> curve = {{SimTime(seconds(2)), 1.0}};
  const auto metrics = compute_metrics(curve, seconds(2), true);
  EXPECT_DOUBLE_EQ(metrics.si_ms(), 2000.0);
  EXPECT_DOUBLE_EQ(metrics.fvc_ms(), 2000.0);
  EXPECT_DOUBLE_EQ(metrics.vc85_ms(), 2000.0);
}

TEST(Metrics, EmptyCurveFallsBackToPlt) {
  const auto metrics = compute_metrics({}, seconds(5), false);
  EXPECT_DOUBLE_EQ(metrics.si_ms(), 5000.0);
  EXPECT_FALSE(metrics.finished);
}

TEST(Metrics, Vc85FindsFirstCrossing) {
  const std::vector<VcSample> curve = {{SimTime(seconds(1)), 0.4},
                                       {SimTime(seconds(2)), 0.86},
                                       {SimTime(seconds(3)), 1.0}};
  const auto metrics = compute_metrics(curve, seconds(3), true);
  EXPECT_DOUBLE_EQ(metrics.vc85_ms(), 2000.0);
}

TEST(Metrics, NamesAndIndexAccessors) {
  PageMetrics metrics;
  metrics.first_visual_change = milliseconds(10);
  metrics.speed_index = milliseconds(20);
  metrics.visual_complete_85 = milliseconds(30);
  metrics.last_visual_change = milliseconds(40);
  metrics.page_load_time = milliseconds(50);
  EXPECT_STREQ(metric_name(0), "FVC");
  EXPECT_STREQ(metric_name(1), "SI");
  EXPECT_STREQ(metric_name(4), "PLT");
  EXPECT_DOUBLE_EQ(metrics.metric_ms(0), 10.0);
  EXPECT_DOUBLE_EQ(metrics.metric_ms(1), 20.0);
  EXPECT_DOUBLE_EQ(metrics.metric_ms(2), 30.0);
  EXPECT_DOUBLE_EQ(metrics.metric_ms(3), 40.0);
  EXPECT_DOUBLE_EQ(metrics.metric_ms(4), 50.0);
}

web::Website tiny_site() {
  web::Website site;
  site.name = "tiny.test";
  site.origin_count = 2;
  web::WebObject html;
  html.id = 0;
  html.type = web::ObjectType::kHtml;
  html.bytes = 20'000;
  html.parent = -1;
  html.render_blocking = true;
  html.render_weight = 0.4;
  site.objects.push_back(html);
  web::WebObject css;
  css.id = 1;
  css.type = web::ObjectType::kCss;
  css.bytes = 10'000;
  css.parent = 0;
  css.discovery_fraction = 0.2;
  css.render_blocking = true;
  css.render_weight = 0.2;
  css.priority = 0;
  site.objects.push_back(css);
  web::WebObject image;
  image.id = 2;
  image.type = web::ObjectType::kImage;
  image.origin = 1;
  image.bytes = 50'000;
  image.parent = 0;
  image.discovery_fraction = 0.8;
  image.render_weight = 0.4;
  image.priority = 3;
  site.objects.push_back(image);
  return site;
}

TEST(PageLoader, LoadsTinySiteAndOrdersMetrics) {
  const auto site = tiny_site();
  const auto& protocol = core::protocol_by_name("QUIC");
  const auto result = core::run_trial(core::TrialSpec(site, protocol, net::dsl_profile(), 5));
  ASSERT_TRUE(result.metrics.finished);
  EXPECT_GT(result.metrics.fvc_ms(), 0.0);
  EXPECT_LE(result.metrics.fvc_ms(), result.metrics.vc85_ms());
  EXPECT_LE(result.metrics.vc85_ms(), result.metrics.lvc_ms());
  EXPECT_LE(result.metrics.lvc_ms(), result.metrics.plt_ms() + 1e-9);
  // Two origins contacted.
  EXPECT_EQ(result.connections_opened, 2u);
}

TEST(PageLoader, VcCurveIsMonotoneAndEndsAtOne) {
  const auto site = tiny_site();
  const auto& protocol = core::protocol_by_name("TCP");
  const auto result = core::run_trial(core::TrialSpec(site, protocol, net::lte_profile(), 5));
  ASSERT_TRUE(result.metrics.finished);
  ASSERT_FALSE(result.vc_curve.empty());
  for (std::size_t i = 1; i < result.vc_curve.size(); ++i) {
    EXPECT_GE(result.vc_curve[i].completeness, result.vc_curve[i - 1].completeness);
    EXPECT_GE(result.vc_curve[i].time, result.vc_curve[i - 1].time);
  }
  EXPECT_NEAR(result.vc_curve.back().completeness, 1.0, 1e-9);
}

TEST(PageLoader, DependentObjectStartsAfterParentProgress) {
  // The image (discovered at 80% of HTML) cannot complete before the HTML.
  const auto site = tiny_site();
  const auto& protocol = core::protocol_by_name("TCP");
  const auto result = core::run_trial(core::TrialSpec(site, protocol, net::lte_profile(), 6));
  ASSERT_TRUE(result.metrics.finished);
  EXPECT_GT(result.object_complete_at[2], result.object_complete_at[0] / 2);
}

TEST(PageLoader, FirstPaintGatedOnBlockingCss) {
  // FVC must not precede the blocking CSS completion.
  const auto site = tiny_site();
  const auto& protocol = core::protocol_by_name("TCP+");
  const auto result = core::run_trial(core::TrialSpec(site, protocol, net::dsl_profile(), 9));
  ASSERT_TRUE(result.metrics.finished);
  const SimTime css_done = result.object_complete_at[1];
  EXPECT_GE(SimDuration{result.metrics.first_visual_change}, SimDuration{css_done});
}

TEST(PageLoader, MoreOriginsMeansMoreConnections) {
  const auto catalog = web::study_catalog(7);
  const auto& small = *std::find_if(catalog.begin(), catalog.end(),
                                    [](const auto& s) { return s.name == "archive.org"; });
  const auto& many = *std::find_if(catalog.begin(), catalog.end(),
                                   [](const auto& s) { return s.name == "spotify.com"; });
  const auto& protocol = core::protocol_by_name("QUIC");
  const auto r_small = core::run_trial(core::TrialSpec(small, protocol, net::dsl_profile(), 3));
  const auto r_many = core::run_trial(core::TrialSpec(many, protocol, net::dsl_profile(), 3));
  EXPECT_EQ(r_small.connections_opened, small.contacted_origins());
  EXPECT_EQ(r_many.connections_opened, many.contacted_origins());
  EXPECT_GT(r_many.connections_opened, r_small.connections_opened);
}

TEST(RenderModel, DeferredTailExtendsPltButNotSi) {
  // Two copies of a site, one with an extra invisible deferred beacon that
  // fires late: PLT must grow, SI must stay (nearly) unchanged.
  auto site = tiny_site();
  auto with_tail = site;
  web::WebObject beacon;
  beacon.id = 3;
  beacon.type = web::ObjectType::kOther;
  beacon.origin = 0;
  beacon.bytes = 2'000;
  beacon.parent = 0;
  beacon.discovery_fraction = 1.0;
  beacon.parse_delay = seconds(2);
  beacon.deferred = true;
  beacon.render_weight = 0.0;
  with_tail.objects.push_back(beacon);

  const auto& protocol = core::protocol_by_name("TCP+");
  const auto base = core::run_trial(core::TrialSpec(site, protocol, net::dsl_profile(), 21));
  const auto tailed = core::run_trial(core::TrialSpec(with_tail, protocol, net::dsl_profile(), 21));
  ASSERT_TRUE(base.metrics.finished);
  ASSERT_TRUE(tailed.metrics.finished);
  EXPECT_GT(tailed.metrics.plt_ms(), base.metrics.plt_ms() + 1'500.0);
  EXPECT_NEAR(tailed.metrics.si_ms(), base.metrics.si_ms(),
              base.metrics.si_ms() * 0.25);
}

TEST(RenderModel, StudyCatalogDecouplesPltFromLvc) {
  // Across the generated catalog, deferred tails make PLT exceed LVC for a
  // solid share of sites (the Figure-6 mechanism).
  const auto catalog = web::study_catalog(7);
  const auto& protocol = core::protocol_by_name("QUIC");
  int plt_beyond_lvc = 0;
  int tested = 0;
  for (std::size_t i = 0; i < catalog.size(); i += 4) {  // sample every 4th site
    const auto result = core::run_trial(core::TrialSpec(catalog[i], protocol, net::dsl_profile(), 5));
    if (!result.metrics.finished) continue;
    ++tested;
    if (result.metrics.plt_ms() > result.metrics.lvc_ms() * 1.10) ++plt_beyond_lvc;
  }
  ASSERT_GE(tested, 7);
  EXPECT_GE(plt_beyond_lvc, tested / 3);
}

TEST(PageLoader, ConnectionPoolCapsConcurrentHandshakes) {
  // A many-origin site must still contact every origin despite the pool cap.
  const auto catalog = web::study_catalog(7);
  const auto& many = *std::find_if(catalog.begin(), catalog.end(),
                                   [](const auto& s) { return s.name == "cnn.com"; });
  const auto& protocol = core::protocol_by_name("QUIC");
  const auto result = core::run_trial(core::TrialSpec(many, protocol, net::dsl_profile(), 8));
  ASSERT_TRUE(result.metrics.finished);
  EXPECT_EQ(result.connections_opened, many.contacted_origins());
}

TEST(PageLoader, DeterministicForSameSeed) {
  const auto catalog = web::study_catalog(7);
  const auto& protocol = core::protocol_by_name("QUIC+BBR");
  const auto a = core::run_trial(core::TrialSpec(catalog[6], protocol, net::mss_profile(), 77));
  const auto b = core::run_trial(core::TrialSpec(catalog[6], protocol, net::mss_profile(), 77));
  EXPECT_DOUBLE_EQ(a.metrics.plt_ms(), b.metrics.plt_ms());
  EXPECT_DOUBLE_EQ(a.metrics.si_ms(), b.metrics.si_ms());
  EXPECT_EQ(a.transport.retransmissions, b.transport.retransmissions);
}

TEST(PageLoader, DifferentSeedsDifferOnLossyNetworks) {
  const auto catalog = web::study_catalog(7);
  const auto& protocol = core::protocol_by_name("QUIC");
  const auto a = core::run_trial(core::TrialSpec(catalog[6], protocol, net::mss_profile(), 1));
  const auto b = core::run_trial(core::TrialSpec(catalog[6], protocol, net::mss_profile(), 2));
  EXPECT_NE(a.metrics.plt_ms(), b.metrics.plt_ms());
}

}  // namespace
}  // namespace qperc::browser
