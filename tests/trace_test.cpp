// Trace-layer tests: event model, causal ordering of a traced trial,
// counter/stats equality, null-sink bit-exactness, the 1-RTT handshake
// advantage read from trace events, JSONL export, and link-event counts.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/link.hpp"
#include "net/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/counters.hpp"
#include "trace/jsonl_sink.hpp"
#include "trace/memory_sink.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

const web::Website& site_by_name(const std::string& name) {
  static const auto catalog = web::study_catalog(7);
  for (const auto& site : catalog) {
    if (site.name == name) return site;
  }
  throw std::runtime_error("site not in catalog: " + name);
}

TEST(TraceModel, EveryEventTypeHasCategoryAndName) {
  using trace::EventType;
  for (std::uint8_t raw = 0; raw <= static_cast<std::uint8_t>(EventType::kLinkDelivered);
       ++raw) {
    const auto type = static_cast<EventType>(raw);
    EXPECT_FALSE(trace::to_string(type).empty());
    EXPECT_FALSE(trace::to_string(trace::category_of(type)).empty());
  }
  EXPECT_EQ(trace::category_of(EventType::kPacketLost), trace::Category::kRecovery);
  EXPECT_EQ(trace::category_of(EventType::kHandshakeCompleted),
            trace::Category::kTransport);
  EXPECT_EQ(trace::category_of(EventType::kResponseComplete), trace::Category::kHttp);
  EXPECT_EQ(trace::category_of(EventType::kPageFinished), trace::Category::kBrowser);
  EXPECT_EQ(trace::category_of(EventType::kLinkDelivered), trace::Category::kNet);
}

TEST(TracedTrial, QuicEventsAreCausallyOrdered) {
  trace::MemorySink sink;
  const auto result = core::run_trial(core::TrialSpec(site_by_name("apache.org"), core::protocol_by_name("QUIC"), net::mss_profile(), /*seed=*/3).with_trace(&sink));
  ASSERT_TRUE(result.metrics.finished);
  ASSERT_FALSE(sink.events().empty());

  // Emission order is causal order: timestamps never go backwards.
  SimTime last{0};
  for (const auto& event : sink.events()) {
    EXPECT_GE(event.time, last);
    last = event.time;
  }

  // Every flow's handshake starts before it completes.
  const auto started = sink.of_type(trace::EventType::kHandshakeStarted);
  const auto completed = sink.of_type(trace::EventType::kHandshakeCompleted);
  ASSERT_FALSE(started.empty());
  ASSERT_EQ(started.size(), completed.size());
  for (const auto& done : completed) {
    bool found = false;
    for (const auto& start : started) {
      if (start.flow == done.flow) {
        EXPECT_LE(start.time, done.time);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "handshake_completed without handshake_started, flow "
                       << done.flow;
  }

  // QUIC only retransmits frames that a loss declaration requeued, so the
  // first loss event precedes the first retransmission.
  const auto* first_lost = sink.first(trace::EventType::kPacketLost);
  const auto* first_retx = sink.first(trace::EventType::kPacketRetransmitted);
  ASSERT_NE(first_lost, nullptr);  // MSS loses 6% of packets
  ASSERT_NE(first_retx, nullptr);
  EXPECT_LE(first_lost->time, first_retx->time);

  // The lossy in-flight profile exercises every layer's events.
  EXPECT_GT(sink.count(trace::EventType::kHandshakePacketSent), 0u);
  EXPECT_GT(sink.count(trace::EventType::kPacketSent), 0u);
  EXPECT_GT(sink.count(trace::EventType::kPacketReceived), 0u);
  EXPECT_GT(sink.count(trace::EventType::kAckSent), 0u);
  EXPECT_GT(sink.count(trace::EventType::kRequestSubmitted), 0u);
  EXPECT_GT(sink.count(trace::EventType::kResponseComplete), 0u);
  EXPECT_GT(sink.count(trace::EventType::kObjectComplete), 0u);
  EXPECT_GT(sink.count(trace::EventType::kLinkDelivered), 0u);
  EXPECT_GT(sink.count(trace::EventType::kLinkDroppedRandomLoss), 0u);
  EXPECT_EQ(sink.count(trace::EventType::kPageFinished), 1u);
  EXPECT_EQ(sink.of_type(trace::EventType::kPageFinished).front().value, 1u);
}

void expect_counters_match(const net::TransportStats& stats,
                           const trace::TrialCounters& counters) {
  EXPECT_EQ(counters.packets_sent, stats.data_packets_sent);
  EXPECT_EQ(counters.retransmissions, stats.retransmissions);
  EXPECT_EQ(counters.timeouts, stats.timeouts);
  EXPECT_EQ(counters.tail_probes, stats.tail_probes);
  EXPECT_EQ(counters.congestion_events, stats.congestion_events);
  EXPECT_EQ(counters.handshake_packets, stats.handshake_packets);
  EXPECT_EQ(counters.handshake_retransmissions, stats.handshake_retransmissions);
  EXPECT_EQ(counters.acks_sent, stats.acks_sent);
}

TEST(TracedTrial, CountersEqualTransportStats) {
  for (const char* protocol : {"TCP", "QUIC"}) {
    trace::MemorySink sink;
    const auto result =
        core::run_trial(core::TrialSpec(site_by_name("apache.org"), core::protocol_by_name(protocol), net::mss_profile(), /*seed=*/11).with_trace(&sink));
    const auto counters = trace::compute_counters(sink.events());
    SCOPED_TRACE(protocol);
    expect_counters_match(result.transport, counters);
    EXPECT_GT(counters.retransmissions, 0u);  // MSS forces recovery activity
    EXPECT_GT(counters.cwnd_samples, 0u);
    EXPECT_GT(counters.max_cwnd_bytes, 0u);
    EXPECT_GE(counters.max_bytes_in_flight, 0u);
    EXPECT_EQ(counters.objects_completed,
              site_by_name("apache.org").objects.size() * (result.metrics.finished ? 1 : 0));
    EXPECT_EQ(counters.connections_opened, result.connections_opened);
  }
}

TEST(TracedTrial, NullSinkIsBitExact) {
  const auto& site = site_by_name("apache.org");
  const auto& protocol = core::protocol_by_name("QUIC");
  const auto& profile = net::da2gc_profile();

  const auto untraced = core::run_trial(core::TrialSpec(site, protocol, profile, /*seed=*/5));
  trace::MemorySink sink;
  const auto traced = core::run_trial(core::TrialSpec(site, protocol, profile, /*seed=*/5).with_trace(&sink));
  const auto untraced_again = core::run_trial(core::TrialSpec(site, protocol, profile, /*seed=*/5).with_trace(nullptr));

  EXPECT_FALSE(sink.events().empty());
  for (const auto* other : {&traced, &untraced_again}) {
    EXPECT_EQ(untraced.metrics.first_visual_change, other->metrics.first_visual_change);
    EXPECT_EQ(untraced.metrics.last_visual_change, other->metrics.last_visual_change);
    EXPECT_EQ(untraced.metrics.page_load_time, other->metrics.page_load_time);
    EXPECT_EQ(untraced.metrics.visual_complete_85, other->metrics.visual_complete_85);
    EXPECT_EQ(untraced.metrics.speed_index, other->metrics.speed_index);
    EXPECT_EQ(untraced.metrics.finished, other->metrics.finished);
    EXPECT_EQ(untraced.connections_opened, other->connections_opened);
    EXPECT_EQ(untraced.object_complete_at, other->object_complete_at);
    ASSERT_EQ(untraced.vc_curve.size(), other->vc_curve.size());
    for (std::size_t i = 0; i < untraced.vc_curve.size(); ++i) {
      EXPECT_EQ(untraced.vc_curve[i].time, other->vc_curve[i].time);
      EXPECT_EQ(untraced.vc_curve[i].completeness, other->vc_curve[i].completeness);
    }
    EXPECT_EQ(untraced.transport.data_packets_sent, other->transport.data_packets_sent);
    EXPECT_EQ(untraced.transport.retransmissions, other->transport.retransmissions);
    EXPECT_EQ(untraced.transport.bytes_delivered, other->transport.bytes_delivered);
    EXPECT_EQ(untraced.transport.acks_sent, other->transport.acks_sent);
  }
}

TEST(TracedTrial, QuicHandshakeSavesOneRtt) {
  // §4.3 / Figure 1: on a fresh connection gQUIC completes its handshake in
  // one round trip (inchoate CHLO -> REJ) where TCP+TLS needs two
  // (SYN -> SYN/ACK, then CH -> server flight). Read both durations from the
  // trace and check them against the DSL profile's 24 ms minimum RTT.
  const auto profile = net::dsl_profile();
  const double rtt_ns = static_cast<double>(profile.min_rtt.count());

  const auto first_handshake_ns = [&](const char* protocol) {
    trace::MemorySink sink;
    (void)core::run_trial(core::TrialSpec(site_by_name("apache.org"), core::protocol_by_name(protocol), profile, /*seed=*/7).with_trace(&sink));
    const auto* done = sink.first(trace::EventType::kHandshakeCompleted);
    EXPECT_NE(done, nullptr);
    return done == nullptr ? 0.0 : static_cast<double>(done->value);
  };

  const double quic_ns = first_handshake_ns("QUIC");
  const double tcp_ns = first_handshake_ns("TCP");
  // One round trip plus serialization slack for QUIC; two-plus for TCP (the
  // ~4.3 KB TLS server flight adds serialization time on a 25 Mbps link).
  EXPECT_GE(quic_ns, 1.0 * rtt_ns);
  EXPECT_LE(quic_ns, 1.5 * rtt_ns);
  EXPECT_GE(tcp_ns, 2.0 * rtt_ns);
  EXPECT_LE(tcp_ns, 2.7 * rtt_ns);
  // The advantage itself: about one RTT.
  EXPECT_GE(tcp_ns - quic_ns, 0.5 * rtt_ns);
  EXPECT_LE(tcp_ns - quic_ns, 1.7 * rtt_ns);
}

TEST(JsonlSink, EmitsOneValidObjectPerEvent) {
  std::ostringstream out;
  trace::JsonlSink sink(out);
  (void)core::run_trial(core::TrialSpec(site_by_name("apache.org"), core::protocol_by_name("QUIC"), net::dsl_profile(), /*seed=*/7).with_trace(&sink));
  ASSERT_GT(sink.events_written(), 0u);

  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"time_ns\":"), std::string::npos);
    EXPECT_NE(line.find("\"category\":\""), std::string::npos);
    EXPECT_NE(line.find("\"event\":\""), std::string::npos);
    EXPECT_NE(line.find("\"endpoint\":\""), std::string::npos);
  }
  EXPECT_EQ(count, sink.events_written());
}

TEST(LinkTrace, EventsMatchLinkStats) {
  sim::Simulator simulator;
  trace::MemorySink sink;
  simulator.set_trace(&sink);

  std::uint64_t delivered = 0;
  net::Link link(simulator, DataRate::megabits_per_second(10), milliseconds(5),
                 /*loss_rate=*/0.3, /*queue_capacity_bytes=*/4 * 1500, Rng(1),
                 [&delivered](net::Packet) { ++delivered; });
  link.set_trace_direction(1);

  for (int i = 0; i < 200; ++i) {
    net::Packet packet;
    packet.flow = net::FlowId{1};
    packet.wire_bytes = 1500;
    link.send(std::move(packet));
  }
  simulator.run();

  const auto& stats = link.stats();
  EXPECT_EQ(sink.count(trace::EventType::kLinkDelivered), stats.packets_delivered);
  EXPECT_EQ(sink.count(trace::EventType::kLinkDroppedQueueFull), stats.drops_queue_full);
  EXPECT_EQ(sink.count(trace::EventType::kLinkDroppedRandomLoss), stats.drops_random_loss);
  EXPECT_GT(stats.drops_queue_full + stats.drops_random_loss, 0u);
  EXPECT_EQ(delivered, stats.packets_delivered);
  for (const auto& event : sink.events()) {
    EXPECT_EQ(event.value, 1u);  // the direction tag set above
    EXPECT_EQ(event.category(), trace::Category::kNet);
  }
}

TEST(TraceCounters, StreamBlockedTimeAccumulates) {
  trace::TrialCounters counters;
  trace::Event blocked;
  blocked.type = trace::EventType::kStreamBlocked;
  counters.observe(blocked);
  trace::Event unblocked;
  unblocked.type = trace::EventType::kStreamUnblocked;
  unblocked.value = 5'000'000;  // 5 ms stall
  counters.observe(unblocked);
  counters.observe(unblocked);
  EXPECT_EQ(counters.stream_blocked_time, SimDuration{10'000'000});
}

}  // namespace
}  // namespace qperc
