// Unit tests for the statistics toolkit against known reference values.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/stats.hpp"
#include "util/rng.hpp"

namespace qperc::stats {
namespace {

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(sample_variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_variance({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(mean(one), 3.0);
  EXPECT_DOUBLE_EQ(sample_variance(one), 0.0);
}

TEST(Descriptive, MedianAndQuantiles) {
  const std::vector<double> odd = {5, 1, 3};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_DOUBLE_EQ(quantile(even, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(even, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(even, 0.25), 1.75);
}

TEST(Descriptive, SkewnessAndKurtosisOfSymmetricData) {
  const std::vector<double> xs = {-2, -1, 0, 1, 2};
  EXPECT_NEAR(skewness(xs), 0.0, 1e-12);
  // Uniform-ish discrete data is platykurtic (negative excess kurtosis).
  EXPECT_LT(excess_kurtosis(xs), 0.0);
}

TEST(SpecialFunctions, IncompleteBetaKnownValues) {
  // I_x(1,1) = x.
  EXPECT_NEAR(regularized_incomplete_beta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2,2) = x^2 (3 - 2x).
  EXPECT_NEAR(regularized_incomplete_beta(2, 2, 0.4), 0.4 * 0.4 * (3 - 0.8), 1e-10);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2, 3, 1.0), 1.0);
}

TEST(Distributions, StudentTCdf) {
  // Symmetry and known quantiles: t_{0.975, 10} = 2.228.
  EXPECT_NEAR(student_t_cdf(0.0, 10), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(2.228, 10), 0.975, 1e-3);
  EXPECT_NEAR(student_t_cdf(-2.228, 10), 0.025, 1e-3);
}

TEST(Distributions, StudentTCritical) {
  EXPECT_NEAR(student_t_two_sided_critical(0.95, 10), 2.228, 5e-3);
  EXPECT_NEAR(student_t_two_sided_critical(0.99, 30), 2.750, 5e-3);
  // Large df approaches the normal z-values.
  EXPECT_NEAR(student_t_two_sided_critical(0.95, 100000), 1.960, 5e-3);
  EXPECT_NEAR(student_t_two_sided_critical(0.99, 100000), 2.576, 5e-3);
}

TEST(Distributions, FCdf) {
  // F(1, d1, d2) medians: for d1=d2, F=1 is near the median.
  EXPECT_NEAR(f_cdf(1.0, 10, 10), 0.5, 0.02);
  // Known value: P(F_{2,10} <= 4.103) ~ 0.95.
  EXPECT_NEAR(f_cdf(4.103, 2, 10), 0.95, 2e-3);
  EXPECT_DOUBLE_EQ(f_cdf(0.0, 3, 7), 0.0);
}

TEST(Inference, ConfidenceIntervalKnown) {
  // n=9, sd=3 => sem=1, t_{0.975,8}=2.306.
  std::vector<double> xs;
  // Construct data with mean 10 and sample sd 3: {7,13} x4 + {10}.
  for (int i = 0; i < 4; ++i) {
    xs.push_back(10 - 3);
    xs.push_back(10 + 3);
  }
  xs.push_back(10.0);
  const auto ci = mean_confidence_interval(xs, 0.95);
  EXPECT_NEAR(ci.center, 10.0, 1e-12);
  const double sem = sample_stddev(xs) / 3.0;
  EXPECT_NEAR(ci.half_width, 2.306 * sem, 0.01);
}

TEST(Inference, ConfidenceIntervalOverlap) {
  const ConfidenceInterval a{10.0, 2.0};
  const ConfidenceInterval b{13.0, 1.5};
  const ConfidenceInterval c{15.0, 1.0};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
}

TEST(Inference, AnovaDetectsDifferentMeans) {
  const std::vector<std::vector<double>> groups = {
      {10, 11, 9, 10, 10.5, 9.5}, {14, 15, 13, 14, 14.5, 13.5}, {10, 10.5, 9.5, 10, 11, 9}};
  const auto result = one_way_anova(groups);
  EXPECT_GT(result.f_statistic, 10.0);
  EXPECT_LT(result.p_value, 0.01);
  EXPECT_TRUE(result.significant_at(0.01));
}

TEST(Inference, AnovaAcceptsEqualMeans) {
  Rng rng(7);
  std::vector<std::vector<double>> groups(3);
  for (auto& group : groups) {
    for (int i = 0; i < 40; ++i) group.push_back(rng.normal(50.0, 5.0));
  }
  const auto result = one_way_anova(groups);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(Inference, AnovaDegenerateCases) {
  EXPECT_DOUBLE_EQ(one_way_anova({}).p_value, 1.0);
  const std::vector<std::vector<double>> single = {{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(one_way_anova(single).p_value, 1.0);
}

TEST(Correlation, PearsonPerfectAndNone) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
}

TEST(Correlation, PearsonKnownValue) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 3, 2, 5, 4};
  EXPECT_NEAR(pearson(x, y), 0.8, 1e-12);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // monotone but nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Normality, GaussianLooksNormal) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(0.0, 1.0));
  EXPECT_TRUE(jarque_bera(xs).looks_normal());
}

TEST(Normality, HeavyContaminationRejected) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.bernoulli(0.2) ? rng.uniform(-30.0, 30.0) : rng.normal(0.0, 1.0));
  }
  EXPECT_FALSE(jarque_bera(xs).looks_normal());
}

}  // namespace
}  // namespace qperc::stats
