// Unit tests for congestion control: Cubic, BBRv1, pacing, rate sampling.
#include <gtest/gtest.h>

#include <algorithm>

#include "cc/bandwidth_sampler.hpp"
#include "cc/bbr.hpp"
#include "cc/cubic.hpp"
#include "cc/factory.hpp"
#include "cc/pacer.hpp"
#include "cc/rtt_estimator.hpp"
#include "cc/windowed_filter.hpp"
#include "util/arena.hpp"

namespace qperc::cc {
namespace {

constexpr std::uint64_t kMss = 1460;

AckSample make_ack(std::uint64_t bytes, SimDuration rtt, bool round_ended = false,
                   DataRate rate = DataRate(), std::uint64_t in_flight = 0) {
  AckSample sample;
  sample.bytes_acked = bytes;
  sample.rtt = rtt;
  sample.smoothed_rtt = rtt;
  sample.delivery_rate = rate;
  sample.bytes_in_flight = in_flight;
  sample.round_trip_ended = round_ended;
  return sample;
}

TEST(Cubic, InitialWindowMatchesConfig) {
  Cubic iw10(CubicConfig{.initial_window_segments = 10});
  EXPECT_EQ(iw10.congestion_window(), 10 * kMss);
  Cubic iw32(CubicConfig{.initial_window_segments = 32});
  EXPECT_EQ(iw32.congestion_window(), 32 * kMss);
}

TEST(Cubic, SlowStartDoublesPerRoundTrip) {
  Cubic cubic(CubicConfig{.initial_window_segments = 10, .enable_hystart = false});
  const std::uint64_t before = cubic.congestion_window();
  // Ack a full window's worth of data.
  SimTime now{milliseconds(100)};
  cubic.on_ack(now, make_ack(before, milliseconds(50)));
  EXPECT_EQ(cubic.congestion_window(), 2 * before);
  EXPECT_TRUE(cubic.in_slow_start());
}

TEST(Cubic, LossReducesWindowByBeta) {
  Cubic cubic(CubicConfig{.initial_window_segments = 100, .enable_hystart = false});
  const std::uint64_t before = cubic.congestion_window();
  cubic.on_congestion_event(SimTime{seconds(1)}, before);
  EXPECT_NEAR(static_cast<double>(cubic.congestion_window()),
              static_cast<double>(before) * 0.7, static_cast<double>(kMss));
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(Cubic, WindowRegrowsAfterLossTowardsWmax) {
  Cubic cubic(CubicConfig{.initial_window_segments = 100, .enable_hystart = false});
  const std::uint64_t w_max = cubic.congestion_window();
  cubic.on_congestion_event(SimTime{seconds(1)}, w_max);
  const std::uint64_t reduced = cubic.congestion_window();
  // Feed ACKs over simulated time; cubic should grow back towards w_max.
  SimTime now{seconds(1)};
  for (int i = 0; i < 400; ++i) {
    now += milliseconds(20);
    cubic.on_ack(now, make_ack(cubic.congestion_window() / 4, milliseconds(20)));
  }
  EXPECT_GT(cubic.congestion_window(), reduced);
  EXPECT_GE(cubic.congestion_window(), w_max * 9 / 10);
}

TEST(Cubic, RtoCollapsesToMinWindow) {
  Cubic cubic(CubicConfig{.initial_window_segments = 50});
  cubic.on_retransmission_timeout();
  EXPECT_EQ(cubic.congestion_window(), 2 * kMss);
}

TEST(Cubic, IdleRestartResetsToInitialWindow) {
  CubicConfig config{.initial_window_segments = 10, .enable_hystart = false};
  Cubic cubic(config);
  SimTime now{milliseconds(0)};
  for (int i = 0; i < 5; ++i) {
    now += milliseconds(50);
    cubic.on_ack(now, make_ack(cubic.congestion_window(), milliseconds(50)));
  }
  EXPECT_GT(cubic.congestion_window(), 10 * kMss);
  cubic.on_restart_after_idle();
  EXPECT_EQ(cubic.congestion_window(), 10 * kMss);
}

TEST(Cubic, HystartExitsSlowStartOnDelayIncrease) {
  Cubic cubic(CubicConfig{.initial_window_segments = 32, .enable_hystart = true});
  SimTime now{milliseconds(0)};
  // Round 1: baseline RTT 100 ms, plenty of samples.
  for (int i = 0; i < 9; ++i) {
    now += milliseconds(1);
    cubic.on_ack(now, make_ack(kMss, milliseconds(100), i == 8));
  }
  ASSERT_TRUE(cubic.in_slow_start());
  // Round 2: RTT grows 40% — queue building, exit before loss.
  for (int i = 0; i < 9; ++i) {
    now += milliseconds(1);
    cubic.on_ack(now, make_ack(kMss, milliseconds(140), i == 8));
  }
  // Round 3 begins: the exit decision is taken at the round boundary.
  EXPECT_FALSE(cubic.in_slow_start());
}

TEST(Cubic, PacingRateUsesGains) {
  Cubic cubic(CubicConfig{.initial_window_segments = 10});
  const auto rate_ss = cubic.pacing_rate(milliseconds(100));
  // Slow start: 2x cwnd/srtt = 2 * 14600B / 0.1s = 292 kB/s.
  EXPECT_NEAR(rate_ss.bytes_per_second_d(), 292'000.0, 2000.0);
}

TEST(Bbr, StartupUsesHighGain) {
  Bbr bbr(BbrConfig{.initial_window_segments = 32});
  EXPECT_TRUE(bbr.in_slow_start());
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);
  const auto rate = bbr.pacing_rate(milliseconds(100));
  const double expected = 32.0 * 1460 / 0.1 * 2.885;
  EXPECT_NEAR(rate.bytes_per_second_d(), expected, expected * 0.02);
}

TEST(Bbr, ExitsStartupWhenBandwidthPlateaus) {
  Bbr bbr(BbrConfig{});
  SimTime now{milliseconds(0)};
  const auto bw = DataRate::megabits_per_second(10.0);
  // Several rounds at the same measured bandwidth: full pipe detected.
  for (int round = 0; round < 6; ++round) {
    now += milliseconds(50);
    bbr.on_ack(now, make_ack(10 * kMss, milliseconds(50), true, bw, 20 * kMss));
  }
  EXPECT_NE(bbr.mode(), Bbr::Mode::kStartup);
}

TEST(Bbr, DrainThenProbeBandwidth) {
  Bbr bbr(BbrConfig{});
  SimTime now{milliseconds(0)};
  const auto bw = DataRate::megabits_per_second(10.0);
  for (int round = 0; round < 6; ++round) {
    now += milliseconds(50);
    bbr.on_ack(now, make_ack(10 * kMss, milliseconds(50), true, bw, 40 * kMss));
  }
  // Low in-flight lets DRAIN complete.
  now += milliseconds(50);
  bbr.on_ack(now, make_ack(10 * kMss, milliseconds(50), true, bw, kMss));
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
  // cwnd tracks 2x BDP: 10 Mbps x 50 ms = 62.5 kB BDP.
  const double bdp = 10e6 / 8.0 * 0.05;
  EXPECT_NEAR(static_cast<double>(bbr.congestion_window()), 2.0 * bdp, bdp * 0.5);
}

TEST(Bbr, BandwidthEstimateTracksDeliveryRate) {
  Bbr bbr(BbrConfig{});
  SimTime now{milliseconds(0)};
  const auto bw = DataRate::megabits_per_second(7.0);
  for (int round = 0; round < 4; ++round) {
    now += milliseconds(40);
    bbr.on_ack(now, make_ack(5 * kMss, milliseconds(40), true, bw, 10 * kMss));
  }
  EXPECT_EQ(bbr.bandwidth_estimate().bps(), bw.bps());
  EXPECT_EQ(bbr.min_rtt_estimate(), milliseconds(40));
}

TEST(Bbr, AppLimitedSamplesDoNotInflateEstimate) {
  Bbr bbr(BbrConfig{});
  SimTime now{milliseconds(0)};
  const auto bw = DataRate::megabits_per_second(5.0);
  for (int round = 0; round < 4; ++round) {
    now += milliseconds(40);
    bbr.on_ack(now, make_ack(5 * kMss, milliseconds(40), true, bw, 10 * kMss));
  }
  AckSample limited = make_ack(kMss, milliseconds(40), true,
                               DataRate::megabits_per_second(2.0), kMss);
  limited.is_app_limited = true;
  now += milliseconds(40);
  bbr.on_ack(now, limited);
  // The lower app-limited sample must not *replace* the real estimate
  // within the window.
  EXPECT_EQ(bbr.bandwidth_estimate().bps(), bw.bps());
}

TEST(Bbr, LossDoesNotCollapseTheModel) {
  Bbr bbr(BbrConfig{});
  SimTime now{milliseconds(0)};
  const auto bw = DataRate::megabits_per_second(10.0);
  for (int round = 0; round < 6; ++round) {
    now += milliseconds(50);
    bbr.on_ack(now, make_ack(10 * kMss, milliseconds(50), true, bw, 30 * kMss));
  }
  const auto estimate_before = bbr.bandwidth_estimate();
  bbr.on_congestion_event(now, 20 * kMss);
  EXPECT_EQ(bbr.bandwidth_estimate().bps(), estimate_before.bps());
  // Window bounded to in-flight during recovery, not to a beta fraction.
  EXPECT_GE(bbr.congestion_window(), 20 * kMss);
}

TEST(Pacer, DisabledPacerNeverDelays) {
  Pacer pacer(PacerConfig{.enabled = false});
  pacer.set_rate(SimTime{0}, DataRate::kilobits_per_second(1));
  EXPECT_EQ(pacer.next_send_time(SimTime{seconds(1)}, 100000), SimTime{seconds(1)});
}

TEST(Pacer, InitialQuantumAllowsBurstOfTen) {
  Pacer pacer(PacerConfig{.enabled = true,
                          .initial_quantum_segments = 10,
                          .refill_quantum_segments = 2,
                          .segment_bytes = 1000});
  pacer.set_rate(SimTime{0}, DataRate::bytes_per_second(100'000));
  SimTime now{0};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(pacer.next_send_time(now, 1000), now) << i;
    pacer.on_packet_sent(now, 1000);
  }
  // The 11th packet must wait for token refill.
  EXPECT_GT(pacer.next_send_time(now, 1000), now);
}

TEST(Pacer, SteadyStatePacesAtRate) {
  Pacer pacer(PacerConfig{.enabled = true,
                          .initial_quantum_segments = 1,
                          .refill_quantum_segments = 2,
                          .segment_bytes = 1000});
  pacer.set_rate(SimTime{0}, DataRate::bytes_per_second(1'000'000));  // 1 ms per kB
  SimTime now{0};
  pacer.on_packet_sent(now, 1000);
  pacer.on_packet_sent(now, 1000);  // deficit now
  const SimTime release = pacer.next_send_time(now, 1000);
  EXPECT_GT(release, now);
  EXPECT_LE(release, now + milliseconds(3));
}

TEST(Pacer, IdleRestartRegrantsBurst) {
  Pacer pacer(PacerConfig{.enabled = true,
                          .initial_quantum_segments = 10,
                          .refill_quantum_segments = 2,
                          .segment_bytes = 1000});
  pacer.set_rate(SimTime{0}, DataRate::bytes_per_second(10'000));
  SimTime now{0};
  for (int i = 0; i < 10; ++i) pacer.on_packet_sent(now, 1000);
  EXPECT_GT(pacer.next_send_time(now, 1000), now);
  pacer.on_restart_from_idle(now + seconds(5));
  EXPECT_EQ(pacer.next_send_time(now + seconds(5), 1000), now + seconds(5));
}

TEST(Pacer, RateChangeSettlesCreditAtTheOldRate) {
  // Regression: set_rate used to be a plain setter, so credit for the whole
  // gap since the last send was retroactively re-priced at the *new* rate —
  // a rate upswing after a stall granted an instant burst the old rate never
  // earned. The credit banked across a rate change must be what the old rate
  // accrued.
  Pacer pacer(PacerConfig{.enabled = true,
                          .initial_quantum_segments = 10,
                          .refill_quantum_segments = 2,
                          .segment_bytes = 1000});
  pacer.set_rate(SimTime{0}, DataRate::bytes_per_second(1000));
  SimTime now{0};
  for (int i = 0; i < 10; ++i) pacer.on_packet_sent(now, 1000);  // drain the burst
  now += seconds(1);  // old rate earns exactly 1000 bytes of credit
  pacer.set_rate(now, DataRate::bytes_per_second(1'000'000));
  // A 2000-byte send has a 1000-byte deficit, repaid at the *new* rate in
  // exactly 1 ms. The buggy setter would have answered "now" (the re-priced
  // gap earns the full 2000-byte cap instantly).
  EXPECT_EQ(pacer.next_send_time(now, 2000), now + milliseconds(1));
}

// ------------------------------------------------- long-term bw (policing)

/// One lossy policed round: ~30% of bytes lost, constant delivery rate.
AckSample policed_round(std::uint64_t acked, std::uint64_t lost, DataRate rate,
                        std::uint64_t in_flight) {
  AckSample sample = make_ack(acked, milliseconds(100), true, rate, in_flight);
  sample.bytes_lost = lost;
  return sample;
}

TEST(Bbr, LtBwEngagesOnConsistentLossyIntervals) {
  Bbr bbr(BbrConfig{});
  const DataRate policed = DataRate::bytes_per_second(100'000);  // 800 kbit/s
  SimTime now{seconds(1)};
  // Every 100 ms round delivers 10 kB and loses 3 kB (30% >= the ~20%
  // lt threshold). Two consecutive sampling intervals then measure the same
  // 100 kB/s delivery rate, which flips the policer detector.
  for (int round = 0; round < 8; ++round) {
    ASSERT_FALSE(bbr.lt_bw_in_use()) << round;
    now += milliseconds(100);
    bbr.on_ack(now, policed_round(10'000, 3'000, policed, 20 * kMss));
  }
  EXPECT_TRUE(bbr.lt_bw_in_use());
  // The estimate converged to the policed rate (well within 10%).
  EXPECT_NEAR(static_cast<double>(bbr.lt_bw().bps()), 800'000.0, 80'000.0);
  EXPECT_EQ(bbr.bandwidth_estimate().bps(), bbr.lt_bw().bps());
}

TEST(Bbr, LtBwExpiresAfterMaxRoundsAndReprobes) {
  Bbr bbr(BbrConfig{});
  const DataRate policed = DataRate::bytes_per_second(100'000);
  SimTime now{seconds(1)};
  for (int round = 0; round < 8; ++round) {
    now += milliseconds(100);
    bbr.on_ack(now, policed_round(10'000, 3'000, policed, 20 * kMss));
  }
  ASSERT_TRUE(bbr.lt_bw_in_use());
  // Pacing at the policed rate stops the loss; low in-flight lets the mode
  // machine settle into PROBE_BW, where the 48-round trust window runs out
  // and BBR goes back to probing for fresh capacity.
  for (int round = 0; round < 60 && bbr.lt_bw_in_use(); ++round) {
    now += milliseconds(100);
    bbr.on_ack(now, policed_round(10'000, 0, policed, 2 * kMss));
  }
  EXPECT_FALSE(bbr.lt_bw_in_use());
}

TEST(Bbr, LtBwIgnoresAppLimitedStretches) {
  // A policer's bucket refills while the sender is app-limited, so sampling
  // intervals must restart at every app-limited ACK; a sender that is
  // app-limited every few rounds never accumulates a full interval.
  Bbr bbr(BbrConfig{});
  const DataRate rate = DataRate::bytes_per_second(100'000);
  SimTime now{seconds(1)};
  for (int round = 0; round < 24; ++round) {
    now += milliseconds(100);
    AckSample sample = policed_round(10'000, 3'000, rate, 20 * kMss);
    sample.is_app_limited = round % 3 == 2;
    bbr.on_ack(now, sample);
  }
  EXPECT_FALSE(bbr.lt_bw_in_use());
}

// ------------------------------------------------------- spurious-RTO undo

TEST(Bbr, SpuriousRtoRestoresCollapsedWindow) {
  Bbr bbr(BbrConfig{});
  SimTime now{milliseconds(0)};
  const auto bw = DataRate::megabits_per_second(10.0);
  for (int round = 0; round < 6; ++round) {
    now += milliseconds(50);
    bbr.on_ack(now, make_ack(10 * kMss, milliseconds(50), true, bw, 30 * kMss));
  }
  const std::uint64_t before = bbr.congestion_window();
  bbr.on_retransmission_timeout();
  EXPECT_LT(bbr.congestion_window(), before);
  bbr.on_spurious_retransmission_timeout();
  EXPECT_GE(bbr.congestion_window(), before);
}

TEST(Cubic, SpuriousRtoRestoresCollapsedWindow) {
  Cubic cubic(CubicConfig{});
  SimTime now{milliseconds(0)};
  // Grow out of the initial window first so the undo is observable.
  for (int round = 0; round < 4; ++round) {
    now += milliseconds(40);
    cubic.on_ack(now, make_ack(10 * kMss, milliseconds(40), true));
  }
  const std::uint64_t before = cubic.congestion_window();
  cubic.on_retransmission_timeout();
  EXPECT_LT(cubic.congestion_window(), before);
  cubic.on_spurious_retransmission_timeout();
  EXPECT_GE(cubic.congestion_window(), before);
}

TEST(Cubic, SpuriousRtoUndoIsIdempotentAndConservative) {
  Cubic cubic(CubicConfig{});
  // Undo without a preceding RTO must not inflate anything.
  const std::uint64_t initial = cubic.congestion_window();
  cubic.on_spurious_retransmission_timeout();
  EXPECT_EQ(cubic.congestion_window(), initial);
}

TEST(BandwidthSampler, MeasuresDeliveryRate) {
  Arena arena;
  BandwidthSampler sampler(arena);
  SimTime t0{0};
  // Two packets sent back to back, acked 100 ms apart.
  sampler.on_packet_sent(1, 10'000, t0, 0);
  sampler.on_packet_sent(2, 10'000, t0 + milliseconds(1), 10'000);
  const auto s1 = sampler.on_packet_acked(1, t0 + milliseconds(100));
  ASSERT_TRUE(s1.has_value());
  // 10 kB delivered over 100 ms = 100 kB/s.
  EXPECT_NEAR(s1->delivery_rate.bytes_per_second_d(), 100'000.0, 2000.0);
  const auto s2 = sampler.on_packet_acked(2, t0 + milliseconds(200));
  ASSERT_TRUE(s2.has_value());
  EXPECT_NEAR(s2->delivery_rate.bytes_per_second_d(), 100'000.0, 2000.0);
}

TEST(BandwidthSampler, AppLimitedMarksSubsequentSends) {
  Arena arena;
  BandwidthSampler sampler(arena);
  SimTime t0{0};
  sampler.on_packet_sent(1, 1000, t0, 0);
  sampler.on_app_limited();
  sampler.on_packet_sent(2, 1000, t0 + milliseconds(1), 1000);
  sampler.on_packet_acked(1, t0 + milliseconds(50));
  const auto s2 = sampler.on_packet_acked(2, t0 + milliseconds(60));
  ASSERT_TRUE(s2.has_value());
  EXPECT_TRUE(s2->is_app_limited);
}

TEST(BandwidthSampler, UnknownOrLostPacketsYieldNoSample) {
  Arena arena;
  BandwidthSampler sampler(arena);
  EXPECT_FALSE(sampler.on_packet_acked(42, SimTime{seconds(1)}).has_value());
  sampler.on_packet_sent(1, 1000, SimTime{0}, 0);
  sampler.on_packet_lost(1);
  EXPECT_FALSE(sampler.on_packet_acked(1, SimTime{seconds(1)}).has_value());
}

TEST(WindowedFilter, TracksMaxOverWindow) {
  WindowedFilter<int, std::uint64_t, Greater<int>> filter(10);
  filter.update(5, 0);
  filter.update(8, 2);
  filter.update(3, 4);
  EXPECT_EQ(filter.best(), 8);
  // The 8 expires at tick 13; the 3 remains.
  filter.advance(14);
  EXPECT_EQ(filter.best(), 3);
}

TEST(WindowedFilter, KeepsLastSampleForever) {
  WindowedFilter<int, std::uint64_t, Less<int>> filter(5);
  filter.update(7, 0);
  filter.advance(1000);
  EXPECT_EQ(filter.best(), 7);
}

TEST(RttEstimator, FollowsRfc6298) {
  RttEstimator estimator;
  EXPECT_EQ(estimator.rto(), RttEstimator::kInitialRto);
  estimator.on_rtt_sample(milliseconds(100));
  EXPECT_EQ(estimator.smoothed_rtt(), milliseconds(100));
  EXPECT_EQ(estimator.rtt_var(), milliseconds(50));
  estimator.on_rtt_sample(milliseconds(100));
  EXPECT_EQ(estimator.smoothed_rtt(), milliseconds(100));
  EXPECT_LT(estimator.rtt_var(), milliseconds(50));
  EXPECT_GE(estimator.rto(), RttEstimator::kMinRto);
}

TEST(RttEstimator, MinRttTracksMinimum) {
  RttEstimator estimator;
  estimator.on_rtt_sample(milliseconds(80));
  estimator.on_rtt_sample(milliseconds(40));
  estimator.on_rtt_sample(milliseconds(120));
  EXPECT_EQ(estimator.min_rtt(), milliseconds(40));
  EXPECT_EQ(estimator.latest_rtt(), milliseconds(120));
}

TEST(Factory, BuildsRequestedController) {
  const auto cubic = make_congestion_controller(CcKind::kCubic, 10, kMss);
  EXPECT_EQ(cubic->name(), "cubic");
  EXPECT_EQ(cubic->congestion_window(), 10 * kMss);
  const auto bbr = make_congestion_controller(CcKind::kBbr, 32, kMss);
  EXPECT_EQ(bbr->name(), "bbr");
  EXPECT_EQ(bbr->congestion_window(), 32 * kMss);
  EXPECT_EQ(to_string(CcKind::kCubic), "Cubic");
  EXPECT_EQ(to_string(CcKind::kBbr), "BBRv1");
}

}  // namespace
}  // namespace qperc::cc
