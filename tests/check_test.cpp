// QPERC_CHECK / QPERC_DCHECK semantics: formatting, handler dispatch, and
// that the seeded invariants actually trip when protocol state is corrupted
// through the public API. The release no-op half lives in
// tests/check_release_test.cpp (a TU with QPERC_FORCE_DISABLE_INVARIANTS).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "quic/send_side.hpp"
#include "sim/simulator.hpp"
#include "tcp/sender.hpp"
#include "util/check.hpp"
#include "util/time.hpp"

namespace qperc {
namespace {

// The handler is a plain function pointer, so the observations go through
// file-level state; ScopedHandler resets it and restores the previous
// handler on scope exit.
int g_violations = 0;
std::vector<std::string> g_messages;

void counting_handler(const char* /*file*/, int /*line*/, const char* /*expr*/,
                      const std::string& message) {
  ++g_violations;
  g_messages.push_back(message);
}

class ScopedHandler {
 public:
  ScopedHandler() : previous_(check::set_violation_handler(counting_handler)) {
    g_violations = 0;
    g_messages.clear();
  }
  ~ScopedHandler() { check::set_violation_handler(previous_); }
  ScopedHandler(const ScopedHandler&) = delete;
  ScopedHandler& operator=(const ScopedHandler&) = delete;

 private:
  check::ViolationHandler previous_;
};

TEST(Check, PassingChecksAreSilent) {
  ScopedHandler scope;
  QPERC_CHECK(1 + 1 == 2);
  QPERC_CHECK_EQ(4, 4);
  QPERC_CHECK_LT(1, 2) << "never formatted";
  EXPECT_EQ(g_violations, 0);
}

TEST(Check, FailureReportsAndExecutionContinues) {
  ScopedHandler scope;
  bool reached = false;
  QPERC_CHECK(2 + 2 == 5) << "arithmetic drifted";
  reached = true;  // the counting handler returns, unlike the abort default
  EXPECT_TRUE(reached);
  ASSERT_EQ(g_violations, 1);
  EXPECT_NE(g_messages[0].find("QPERC_CHECK(2 + 2 == 5)"), std::string::npos);
  EXPECT_NE(g_messages[0].find("check_test.cpp"), std::string::npos);
  EXPECT_NE(g_messages[0].find("arithmetic drifted"), std::string::npos);
}

TEST(Check, ComparisonFailurePrintsBothOperands) {
  ScopedHandler scope;
  const int lhs = 7;
  QPERC_CHECK_EQ(lhs, 9);
  ASSERT_EQ(g_violations, 1);
  EXPECT_NE(g_messages[0].find("7 vs 9"), std::string::npos);
}

TEST(Check, DurationOperandsPrintTickCounts) {
  ScopedHandler scope;
  QPERC_CHECK_LE(milliseconds(2), milliseconds(1));
  ASSERT_EQ(g_violations, 1);
  EXPECT_NE(g_messages[0].find("2000000ns"), std::string::npos);
}

TEST(Check, SuccessfulCheckEvaluatesOperandsOnce) {
  ScopedHandler scope;
  int evaluations = 0;
  QPERC_CHECK_GE(++evaluations, 1);
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(g_violations, 0);
}

// A forged cumulative ACK beyond SND.NXT must trip the always-on sender
// invariant: the peer acknowledging bytes that were never sent means every
// downstream delivery/cwnd statistic is garbage.
TEST(CheckInvariants, TcpSenderRejectsAckBeyondSndNxt) {
  ScopedHandler scope;
  sim::Simulator simulator;
  tcp::TcpConfig config;
  tcp::TcpSender sender(simulator, config, 1'000'000, [](tcp::TcpSegment) {});
  sender.on_established(/*initial_peer_rwnd=*/1'000'000, milliseconds(40));
  sender.write(10'000);
  simulator.run_until(SimTime{milliseconds(5)});  // let the initial window go out
  EXPECT_EQ(g_violations, 0);

  tcp::TcpSegment forged;
  forged.has_ack = true;
  forged.cumulative_ack = 1'000'000;  // way past anything ever written
  forged.receive_window_bytes = 1'000'000;
  sender.on_ack_received(forged);
  ASSERT_GE(g_violations, 1);
  EXPECT_NE(g_messages[0].find("beyond SND.NXT"), std::string::npos);
}

// Same on the QUIC side: an ACK range naming a packet number that was never
// allocated means the packet-number space is corrupt.
TEST(CheckInvariants, QuicSendSideRejectsAckOfUnsentPacket) {
  ScopedHandler scope;
  sim::Simulator simulator;
  quic::QuicConfig config;
  quic::QuicSendSide send_side(simulator, config, [](quic::QuicPacket) {});
  send_side.on_established(milliseconds(40));
  EXPECT_EQ(g_violations, 0);

  quic::QuicPacket forged;
  forged.has_ack = true;
  forged.ack_ranges.emplace_back(simulator.arena(), 5u, 9u);  // nothing was ever sent
  send_side.on_ack_frame(forged);
  ASSERT_GE(g_violations, 1);
  EXPECT_NE(g_messages[0].find("never sent"), std::string::npos);
}

}  // namespace
}  // namespace qperc
