// Release-build semantics of QPERC_DCHECK, independent of how this test
// binary itself was configured: QPERC_FORCE_DISABLE_INVARIANTS gives this TU
// the exact no-op expansion a release build (without
// -DQPERC_ENABLE_INVARIANTS=ON) compiles everywhere. The contract under
// test: the condition is never evaluated — side effects must not run — so
// hot-path DCHECKs cost nothing and cannot perturb golden timings.
#define QPERC_FORCE_DISABLE_INVARIANTS 1
#include "util/check.hpp"

#include <gtest/gtest.h>

namespace qperc {
namespace {

static_assert(QPERC_INVARIANTS_ENABLED == 0,
              "QPERC_FORCE_DISABLE_INVARIANTS must force the no-op expansion");

TEST(CheckRelease, DcheckDoesNotEvaluateItsCondition) {
  int evaluations = 0;
  QPERC_DCHECK(++evaluations > 0);
  QPERC_DCHECK(++evaluations > 0) << "streamed message is also dead";
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckRelease, DcheckComparisonsDoNotEvaluateOperands) {
  int lhs_evals = 0;
  int rhs_evals = 0;
  QPERC_DCHECK_EQ(++lhs_evals, ++rhs_evals);
  QPERC_DCHECK_LT(++lhs_evals, 10);
  QPERC_DCHECK_GE(10, ++rhs_evals);
  EXPECT_EQ(lhs_evals, 0);
  EXPECT_EQ(rhs_evals, 0);
}

TEST(CheckRelease, DcheckNeverFiresEvenWhenFalse) {
  bool fired = false;
  const auto previous = check::set_violation_handler(
      +[](const char*, int, const char*, const std::string&) {});
  QPERC_DCHECK(false) << "must not reach the handler";
  QPERC_DCHECK_EQ(1, 2);
  check::set_violation_handler(previous);
  EXPECT_FALSE(fired);

  // QPERC_CHECK stays active in every build type, including this forced-
  // release TU — only the DCHECK tier compiles out.
  QPERC_CHECK(true);
}

}  // namespace
}  // namespace qperc
