// Steady-state allocation budget of the page-load hot path, measured with
// the counting operator new/delete shim (util/alloc_interpose.hpp — this
// test binary's one and only TU, as the shim requires).
//
// A reused TrialContext must run trials with a bounded, small number of heap
// allocations: the event slab, the trial arena, and the flat containers keep
// their storage across Simulator::reset(), so the only per-trial heap traffic
// left is the per-origin session objects and the result copy-out. The budget
// below (kMaxAllocationsPerTrial) is the ratcheted contract documented in
// docs/PERFORMANCE.md and recorded in BENCH_micro.json; raising it needs a
// PERFORMANCE.md update, not just a bigger constant.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "core/trial_context.hpp"
#include "net/contention.hpp"
#include "net/profile.hpp"
#include "util/alloc_interpose.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

/// Hard ceiling on heap allocations per steady-state trial, both stacks.
/// BENCH_micro.json currently records 18 for the QUIC reference condition;
/// the gap to 50 is headroom for legitimate feature work, not noise.
constexpr std::uint64_t kMaxAllocationsPerTrial = 50;

/// Trials measured after warm-up. Small enough for a debug-build ctest,
/// large enough that a per-trial leak of even one allocation is visible.
constexpr int kMeasuredTrials = 50;
constexpr int kWarmupTrials = 3;

const web::Website& site_by_name(const std::vector<web::Website>& catalog,
                                 const std::string& name) {
  for (const auto& site : catalog) {
    if (site.name == name) return site;
  }
  throw std::runtime_error("site not in catalog: " + name);
}

std::uint64_t steady_state_allocs_per_trial(const std::string& protocol_name,
                                            const net::ContentionConfig& contention = {}) {
  const auto catalog = web::study_catalog(7);
  const web::Website& site = site_by_name(catalog, "apache.org");
  const auto& protocol = core::protocol_by_name(protocol_name);
  const net::NetworkProfile profile = net::dsl_profile();

  core::TrialContext context;
  std::uint64_t seed = 1;
  // Warm-up grows arena blocks and container capacities to their high-water
  // marks; the timed region below is the steady state users and benches see.
  for (int i = 0; i < kWarmupTrials; ++i) {
    const auto result = context.run(
        core::TrialSpec(site, protocol, profile, seed++).with_contention(contention));
    EXPECT_TRUE(result.metrics.finished);
  }

  const std::uint64_t before = heap_allocations();
  for (int i = 0; i < kMeasuredTrials; ++i) {
    const auto result = context.run(
        core::TrialSpec(site, protocol, profile, seed++).with_contention(contention));
    EXPECT_TRUE(result.metrics.finished);
  }
  return (heap_allocations() - before) / kMeasuredTrials;
}

TEST(AllocBudget, QuicSteadyStateTrialStaysInBudget) {
  const std::uint64_t allocs = steady_state_allocs_per_trial("QUIC");
  EXPECT_LE(allocs, kMaxAllocationsPerTrial)
      << "QUIC steady-state trial allocates more than the documented budget; "
         "see docs/PERFORMANCE.md before raising kMaxAllocationsPerTrial";
}

TEST(AllocBudget, TcpSteadyStateTrialStaysInBudget) {
  const std::uint64_t allocs = steady_state_allocs_per_trial("TCP");
  EXPECT_LE(allocs, kMaxAllocationsPerTrial)
      << "TCP steady-state trial allocates more than the documented budget; "
         "see docs/PERFORMANCE.md before raising kMaxAllocationsPerTrial";
}

/// The multi-flow path keeps the same discipline: endpoints, access links,
/// and the cross-traffic sources live in the per-trial arena, so the only
/// extra steady-state heap traffic is the one session object per cross flow
/// (heap for the same reason the page's per-origin sessions are). The budget
/// therefore scales linearly in the flow count on top of the single-flow
/// ceiling; see docs/PERFORMANCE.md before loosening either constant.
constexpr std::uint32_t kBudgetFlows = 16;
constexpr std::uint64_t kMaxAllocationsPerFlow = 6;

TEST(AllocBudget, MultiFlowSteadyStateTrialStaysInBudget) {
  net::ContentionConfig contention;
  contention.flows = kBudgetFlows;
  contention.mix = net::CrossMix::kMixed;  // covers both cross-session stacks
  const std::uint64_t allocs = steady_state_allocs_per_trial("QUIC", contention);
  EXPECT_LE(allocs, kMaxAllocationsPerTrial + kBudgetFlows * kMaxAllocationsPerFlow)
      << "contended steady-state trial allocates more than the documented "
         "budget; see docs/PERFORMANCE.md before raising the constants";
}

/// The counting shim itself: a heap allocation visibly moves the counter.
TEST(AllocBudget, InterposerCountsAllocations) {
  const std::uint64_t before = heap_allocations();
  auto* p = new std::uint64_t(42);
  EXPECT_GT(heap_allocations(), before);
  delete p;
}

}  // namespace
}  // namespace qperc
