// A hidden std::string temporary: no `new` appears in the source, but
// constructing the string from a C pointer allocates. Depending on how far
// the compiler inlines the constructor, the banned reference is either a
// direct operator new (fully inlined _M_create, as g++ -O2 does here) or one
// of the out-of-line libstdc++ string entry points the analyzer bans by name
// (_M_construct/_M_create live in libstdc++.so, where the operator new they
// call is invisible to relocation scanning). Both spellings are findings.
//
// analyze-root: ^hot_label\(
// analyze-expect: alloc operator new
#include <cstddef>
#include <string>

namespace {
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }
}  // namespace

std::size_t hot_label(const char* name);

std::size_t hot_label(const char* name) {
  std::string copy(name);  // allocates unless `name` is short — still banned
  escape(copy.data());
  return copy.size();
}
