// Allowlist suppression: the same vector growth as fixture_hot_alloc, but a
// reviewed, reasoned entry excuses the banned references at exactly this
// site (the function whose body holds the relocation — here hot_record
// itself, since -O2 inlines the growth path into it). The expectations
// assert both that the result is clean and that the suppression actually
// fired — and the site regex is deliberately exact, so the entry could never
// excuse an allocation appearing in any other function.
//
// analyze-root: ^hot_record\(
// analyze-allow: alloc ^hot_record\( # fixture: budgeted warm-up growth of the sample table
// analyze-expect-suppressed: alloc
// analyze-expect-clean
#include <vector>

namespace {
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }
}  // namespace

void hot_record(long sample);

void hot_record(long sample) {
  std::vector<long> samples;
  samples.push_back(sample);
  escape(samples.data());
}
