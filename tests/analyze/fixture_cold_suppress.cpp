// The negative fixture: an allocation behind QPERC_COLD_PATH must NOT be a
// finding. The attribute places grow_table in .text.unlikely.*, which the
// analyzer treats as a traversal barrier — the walk stops at the call edge
// and the allocation inside is never visited. The expectations assert both
// halves: a clean result AND that the barrier was actually exercised (so a
// regression that silently stops walking altogether cannot pass).
//
// analyze-root: ^hot_lookup\(
// analyze-expect-clean
// analyze-expect-cold-barrier
#include <vector>

#include "util/check.hpp"

namespace {
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

std::vector<int>& table() {
  static std::vector<int> instance;
  return instance;
}

QPERC_COLD_PATH void grow_table(int value) {
  table().push_back(value);  // heap growth, excused by the cold annotation
  escape(table().data());
}
}  // namespace

int hot_lookup(int value);

int hot_lookup(int value) {
  std::vector<int>& t = table();
  if (t.empty()) grow_table(value);
  escape(t.data());
  return t.empty() ? 0 : t.front();
}
