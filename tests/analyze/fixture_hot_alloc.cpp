// A deliberately-allocating hot function: the canonical regression the
// analyzer exists to catch (a std::vector push on a per-event path). The
// growth goes through std::vector<int>::_M_realloc_insert — fully inlined
// here at -O2, leaving a direct relocation to operator new — and the
// analyzer must surface the chain from the root to the allocation.
//
// analyze-root: ^hot_push\(
// analyze-expect: alloc operator new
#include <vector>

namespace {
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }
}  // namespace

void hot_push(int value);

void hot_push(int value) {
  std::vector<int> samples;
  samples.push_back(value);
  escape(samples.data());
}
