// A function-pointer edge through the repo's own SmallFunction: the hot root
// stores a lambda in a SmallFunction and hands it to an opaque consumer, so
// the lambda body is reachable only through SmallFunction's static ops table
// (kInlineOps<F>). The analyzer must follow the data relocation from the
// root into the table, out to the invoke thunk, and into the allocation the
// lambda performs.
//
// analyze-root: ^hot_enqueue\(
// analyze-expect: alloc SmallFunction
#include <vector>

#include "util/function.hpp"

namespace {
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }
}  // namespace

__attribute__((noinline)) void consume(qperc::SmallFunction<void()>& fn) {
  fn();
  escape(&fn);
}

void hot_enqueue(int value);

void hot_enqueue(int value) {
  qperc::SmallFunction<void()> callback = [value]() {
    std::vector<int> queue;
    queue.push_back(value);
    escape(queue.data());
  };
  consume(callback);
}
