// The C1/C2 constructor-alias hazard: GCC emits the complete-object (C1) and
// base-object (C2) constructors as two symbols at one address; the call site
// relocates against C1 while objdump attributes the section's instructions —
// and so every outgoing edge — to C2. Without same-address alias unification
// the walk dead-ends at the edgeless C1 node and anything a constructor does
// (allocate, register callbacks) escapes analysis entirely. This fixture
// fails closed on that regression: the allocation happens inside the
// out-of-line constructor body, reachable only through the alias.
//
// analyze-root: ^hot_build\(
// analyze-expect: alloc Widget::Widget

#include <cstddef>
#include <vector>

struct Widget {
  __attribute__((noinline)) explicit Widget(int n);
  std::vector<int> samples;
};

__attribute__((noinline)) Widget::Widget(int n) {
  samples.reserve(static_cast<std::size_t>(n));
}

void hot_build(int n) {
  Widget w(n);
  asm volatile("" : : "g"(&w) : "memory");
}
