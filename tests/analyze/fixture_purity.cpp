// Purity rules, one hot function per sink class: wall-clock reads, getenv,
// locale, iostream formatting, and throwing. Each root reaches exactly one
// banned entry point; together they prove every non-alloc rule fires.
//
// analyze-root: ^hot_clock\(
// analyze-root: ^hot_env\(
// analyze-root: ^hot_locale\(
// analyze-root: ^hot_print\(
// analyze-root: ^hot_throw\(
// analyze-expect: wall-clock steady_clock
// analyze-expect: getenv getenv
// analyze-expect: locale setlocale
// analyze-expect: iostream printf
// analyze-expect: throw __throw_out_of_range
#include <chrono>
#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <vector>

long hot_clock();
int hot_env();
const char* hot_locale();
void hot_print(int value);
int hot_throw(std::vector<int>& samples);

long hot_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int hot_env() {
  const char* jobs = std::getenv("QPERC_JOBS");
  return jobs != nullptr ? jobs[0] : 0;
}

const char* hot_locale() {
  return std::setlocale(LC_NUMERIC, nullptr);
}

void hot_print(int value) {
  std::printf("%d\n", value);
}

int hot_throw(std::vector<int>& samples) {
  // A literal `throw` statement is inferred cold by GCC and split into a
  // .text.unlikely clone — which the analyzer rightly treats as a barrier
  // (the compiler proved the path unlikely). The rule therefore targets the
  // throwing entry points compilers leave in hot text: libstdc++'s
  // std::__throw_* helpers behind every checked accessor.
  return samples.at(3);
}
