// Stack-budget fixture: a three-deep noinline call chain whose frames each
// hold a 2 KiB buffer, so the summed worst-case depth from the root must be
// at least 6 KiB; the expectation leaves headroom for spill slots and asserts
// a conservative 4 KiB floor. Proves the .su records are found, matched to
// demangled symbols, and summed along the deepest call chain.
//
// analyze-root: ^hot_outer\(
// analyze-expect-clean
// analyze-expect-stack-min: 4096

namespace {
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

__attribute__((noinline)) int inner(int value) {
  char buffer[2048];
  buffer[0] = static_cast<char>(value);
  escape(buffer);
  return buffer[0] + buffer[sizeof(buffer) - 1];
}

__attribute__((noinline)) int middle(int value) {
  char buffer[2048];
  buffer[0] = static_cast<char>(value);
  escape(buffer);
  return inner(buffer[0]);
}
}  // namespace

int hot_outer(int value);

int hot_outer(int value) {
  char buffer[2048];
  buffer[0] = static_cast<char>(value);
  escape(buffer);
  return middle(buffer[0]);
}
