// A virtual-call edge: the hot root constructs a Derived (placement new, so
// the construction itself does not allocate) and calls through the base
// pointer. No direct relocation ties the root to Derived::work — the link is
// the vtable: constructing the object plants a reference to _ZTV*Derived*,
// and the analyzer expands that data symbol into edges to every slot, which
// is where the allocation hides.
//
// analyze-root: ^hot_dispatch\(
// analyze-expect: alloc Derived::work
#include <new>
#include <vector>

namespace {
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }
}  // namespace

struct Base {
  virtual int work(int value) = 0;
};

struct Derived : Base {
  int work(int value) override {
    std::vector<int> scratch;
    scratch.push_back(value);
    escape(scratch.data());
    return static_cast<int>(scratch.size());
  }
};

int hot_dispatch(int value);

int hot_dispatch(int value) {
  alignas(Derived) unsigned char storage[sizeof(Derived)];
  Base* obj = ::new (storage) Derived();
  escape(obj);
  return obj->work(value);
}
