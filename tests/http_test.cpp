// HTTP layer tests: multiplexing, priorities, interleaving, completeness.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "http/session.hpp"
#include "net/emulated_network.hpp"
#include "net/profile.hpp"
#include "quic/config.hpp"
#include "sim/simulator.hpp"
#include "tcp/config.hpp"
#include "util/rng.hpp"

namespace qperc::http {
namespace {

struct Fixture {
  sim::Simulator simulator;
  net::EmulatedNetwork network;
  std::unique_ptr<Session> session;

  explicit Fixture(bool quic, const net::NetworkProfile& profile = net::dsl_profile(),
                   std::uint64_t seed = 1)
      : network(simulator, profile, Rng(seed)) {
    if (quic) {
      session = make_quic_session(simulator, network, net::ServerId{0}, quic::QuicConfig{});
    } else {
      tcp::TcpConfig config;
      config.tuned_buffers = true;
      config.initial_window_segments = 32;
      config.pacing = true;
      session = make_h2_session(simulator, network, net::ServerId{0}, config);
    }
    session->start();
  }

  Request make_request(std::uint32_t id, std::uint64_t body, std::uint8_t priority = 2) {
    Request request;
    request.object_id = id;
    request.response_body_bytes = body;
    request.priority = priority;
    return request;
  }
};

struct Tracker {
  std::map<std::uint32_t, std::uint64_t> progress;
  std::map<std::uint32_t, SimTime> completed;

  Session::ProgressFn hook(sim::Simulator& simulator) {
    return [this, &simulator](std::uint32_t id, std::uint64_t bytes, bool complete) {
      progress[id] = bytes;
      if (complete && !completed.contains(id)) completed[id] = simulator.now();
    };
  }
};

class HttpBothTest : public ::testing::TestWithParam<bool> {};

TEST_P(HttpBothTest, SingleRequestCompletesWithExactBytes) {
  Fixture fixture(GetParam());
  Tracker tracker;
  fixture.session->submit(fixture.make_request(1, 50'000),
                          tracker.hook(fixture.simulator));
  fixture.simulator.run_until(SimTime(seconds(30)));
  ASSERT_TRUE(tracker.completed.contains(1));
  EXPECT_EQ(tracker.progress[1], 50'000u);
}

TEST_P(HttpBothTest, ManyParallelRequestsAllComplete) {
  Fixture fixture(GetParam());
  Tracker tracker;
  for (std::uint32_t i = 0; i < 12; ++i) {
    fixture.session->submit(fixture.make_request(i, 20'000 + i * 1000),
                            tracker.hook(fixture.simulator));
  }
  fixture.simulator.run_until(SimTime(seconds(60)));
  ASSERT_EQ(tracker.completed.size(), 12u);
  for (std::uint32_t i = 0; i < 12; ++i) EXPECT_EQ(tracker.progress[i], 20'000u + i * 1000);
}

TEST_P(HttpBothTest, SubmitBeforeEstablishmentIsBuffered) {
  Fixture fixture(GetParam());
  Tracker tracker;
  EXPECT_FALSE(fixture.session->established());
  fixture.session->submit(fixture.make_request(1, 5'000), tracker.hook(fixture.simulator));
  fixture.simulator.run_until(SimTime(seconds(10)));
  EXPECT_TRUE(fixture.session->established());
  EXPECT_TRUE(tracker.completed.contains(1));
}

TEST_P(HttpBothTest, HighPriorityResponseFinishesFirst) {
  // Submit a large low-priority response first, then a small high-priority
  // one; the scheduler must not starve the high-priority stream.
  Fixture fixture(GetParam());
  Tracker tracker;
  fixture.session->submit(fixture.make_request(1, 400'000, /*priority=*/3),
                          tracker.hook(fixture.simulator));
  fixture.session->submit(fixture.make_request(2, 30'000, /*priority=*/0),
                          tracker.hook(fixture.simulator));
  fixture.simulator.run_until(SimTime(seconds(60)));
  ASSERT_TRUE(tracker.completed.contains(1));
  ASSERT_TRUE(tracker.completed.contains(2));
  EXPECT_LT(tracker.completed[2], tracker.completed[1]);
}

TEST_P(HttpBothTest, ProgressIsMonotonic) {
  Fixture fixture(GetParam());
  std::vector<std::uint64_t> updates;
  Request request = fixture.make_request(1, 100'000);
  fixture.session->submit(request, [&](std::uint32_t, std::uint64_t bytes, bool) {
    updates.push_back(bytes);
  });
  fixture.simulator.run_until(SimTime(seconds(30)));
  ASSERT_FALSE(updates.empty());
  for (std::size_t i = 1; i < updates.size(); ++i) EXPECT_GE(updates[i], updates[i - 1]);
  EXPECT_EQ(updates.back(), 100'000u);
}

TEST_P(HttpBothTest, CompletesOnLossyNetwork) {
  Fixture fixture(GetParam(), net::da2gc_profile(), 7);
  Tracker tracker;
  for (std::uint32_t i = 0; i < 4; ++i) {
    fixture.session->submit(fixture.make_request(i, 15'000),
                            tracker.hook(fixture.simulator));
  }
  fixture.simulator.run_until(SimTime(seconds(180)));
  EXPECT_EQ(tracker.completed.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(H2AndQuic, HttpBothTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Quic" : "H2overTcp";
                         });

TEST(H2Session, ResponsesInterleaveOnTheSharedStream) {
  // Two equal-priority large responses requested together: with 16 KiB frame
  // interleaving both make progress before either completes.
  Fixture fixture(/*quic=*/false);
  Tracker tracker;
  fixture.session->submit(fixture.make_request(1, 300'000, 2),
                          tracker.hook(fixture.simulator));
  fixture.session->submit(fixture.make_request(2, 300'000, 2),
                          tracker.hook(fixture.simulator));
  bool both_progressed_before_any_complete = false;
  for (int i = 0; i < 600 && tracker.completed.empty(); ++i) {
    fixture.simulator.run_until(fixture.simulator.now() + milliseconds(10));
    if (tracker.completed.empty() && tracker.progress[1] > 0 && tracker.progress[2] > 0) {
      both_progressed_before_any_complete = true;
    }
  }
  EXPECT_TRUE(both_progressed_before_any_complete);
}

TEST(H1Session, SingleRequestCompletes) {
  sim::Simulator simulator;
  net::EmulatedNetwork network(simulator, net::dsl_profile(), Rng(1));
  auto session = make_h1_session(simulator, network, net::ServerId{0}, tcp::TcpConfig{});
  session->start();
  Tracker tracker;
  Request request;
  request.object_id = 1;
  request.response_body_bytes = 40'000;
  session->submit(request, tracker.hook(simulator));
  simulator.run_until(SimTime(seconds(30)));
  ASSERT_TRUE(tracker.completed.contains(1));
  EXPECT_EQ(tracker.progress[1], 40'000u);
}

TEST(H1Session, SequentialExchangesReuseTheConnection) {
  // Two small requests submitted back to back on one lane must both finish,
  // the second strictly after the first (no pipelining).
  sim::Simulator simulator;
  net::EmulatedNetwork network(simulator, net::dsl_profile(), Rng(2));
  auto session = make_h1_session(simulator, network, net::ServerId{0}, tcp::TcpConfig{});
  session->start();
  Tracker tracker;
  for (std::uint32_t id = 1; id <= 8; ++id) {
    Request request;
    request.object_id = id;
    request.response_body_bytes = 10'000;
    session->submit(request, tracker.hook(simulator));
  }
  simulator.run_until(SimTime(seconds(30)));
  ASSERT_EQ(tracker.completed.size(), 8u);
  // Eight requests over at most six lanes: at least two exchanges were
  // sequential, so completions cannot be simultaneous for all.
  std::set<SimTime> distinct;
  for (const auto& [id, when] : tracker.completed) distinct.insert(when);
  EXPECT_GT(distinct.size(), 1u);
}

TEST(H1Session, ManyRequestsRespectTheSixConnectionCap) {
  sim::Simulator simulator;
  net::EmulatedNetwork network(simulator, net::lte_profile(), Rng(3));
  auto session = make_h1_session(simulator, network, net::ServerId{0}, tcp::TcpConfig{});
  session->start();
  Tracker tracker;
  for (std::uint32_t id = 0; id < 20; ++id) {
    Request request;
    request.object_id = id;
    request.response_body_bytes = 15'000;
    session->submit(request, tracker.hook(simulator));
  }
  simulator.run_until(SimTime(seconds(60)));
  EXPECT_EQ(tracker.completed.size(), 20u);
  // Six lanes x (2-RTT handshake + exchanges): the 20 exchanges cannot all
  // overlap; handshakes alone bound the earliest completion.
  const auto earliest =
      std::min_element(tracker.completed.begin(), tracker.completed.end(),
                       [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_GE(earliest->second, SimTime(milliseconds(2 * 74)));
}

TEST(H1Session, CompletesOnLossyNetwork) {
  sim::Simulator simulator;
  net::EmulatedNetwork network(simulator, net::da2gc_profile(), Rng(4));
  auto session = make_h1_session(simulator, network, net::ServerId{0}, tcp::TcpConfig{});
  session->start();
  Tracker tracker;
  for (std::uint32_t id = 0; id < 4; ++id) {
    Request request;
    request.object_id = id;
    request.response_body_bytes = 12'000;
    session->submit(request, tracker.hook(simulator));
  }
  simulator.run_until(SimTime(seconds(180)));
  EXPECT_EQ(tracker.completed.size(), 4u);
}

TEST(QuicSession, LossOnOneStreamDoesNotBlockOthersLong) {
  // Qualitative HOL check: across lossy-seed runs, the spread between first
  // and last completion under QUIC stays bounded while all streams finish.
  Fixture fixture(/*quic=*/true, net::da2gc_profile(), 11);
  Tracker tracker;
  for (std::uint32_t i = 0; i < 6; ++i) {
    fixture.session->submit(fixture.make_request(i, 20'000),
                            tracker.hook(fixture.simulator));
  }
  fixture.simulator.run_until(SimTime(seconds(180)));
  ASSERT_EQ(tracker.completed.size(), 6u);
}

}  // namespace
}  // namespace qperc::http
