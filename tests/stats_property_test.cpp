// Parameterized property sweeps over the statistics toolkit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "stats/stats.hpp"
#include "stats/streaming.hpp"
#include "util/rng.hpp"

namespace qperc::stats {
namespace {

// ---- Student-t critical values against standard tables --------------------

using TCriticalCase = std::tuple<double /*level*/, double /*df*/, double /*expected*/>;

class TCriticalTest : public ::testing::TestWithParam<TCriticalCase> {};

TEST_P(TCriticalTest, MatchesReferenceTables) {
  const auto& [level, df, expected] = GetParam();
  EXPECT_NEAR(student_t_two_sided_critical(level, df), expected, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    ReferenceTable, TCriticalTest,
    ::testing::Values(TCriticalCase{0.90, 5, 2.015}, TCriticalCase{0.90, 20, 1.725},
                      TCriticalCase{0.95, 5, 2.571}, TCriticalCase{0.95, 20, 2.086},
                      TCriticalCase{0.99, 5, 4.032}, TCriticalCase{0.99, 20, 2.845},
                      TCriticalCase{0.99, 120, 2.617}));

// ---- CI coverage: the 99% interval should contain the true mean ~99% ------

class CoverageTest : public ::testing::TestWithParam<int /*sample size*/> {};

TEST_P(CoverageTest, ConfidenceIntervalCoversTrueMean) {
  const int n = GetParam();
  Rng rng(31 + static_cast<std::uint64_t>(n));
  constexpr double kTrueMean = 42.0;
  int covered = 0;
  constexpr int kTrials = 600;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> sample;
    sample.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) sample.push_back(rng.normal(kTrueMean, 7.0));
    const auto ci = mean_confidence_interval(sample, 0.95);
    covered += ci.lower() <= kTrueMean && kTrueMean <= ci.upper();
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_NEAR(coverage, 0.95, 0.03) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, CoverageTest, ::testing::Values(5, 12, 40, 150));

// ---- ANOVA power/size sweep ------------------------------------------------

class AnovaSizeTest : public ::testing::TestWithParam<int /*groups*/> {};

TEST_P(AnovaSizeTest, FalsePositiveRateNearAlpha) {
  const int k = GetParam();
  Rng rng(77 + static_cast<std::uint64_t>(k));
  int rejections = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<std::vector<double>> groups(static_cast<std::size_t>(k));
    for (auto& group : groups) {
      for (int i = 0; i < 25; ++i) group.push_back(rng.normal(10.0, 2.0));
    }
    rejections += one_way_anova(groups).significant_at(0.05);
  }
  const double rate = static_cast<double>(rejections) / kTrials;
  EXPECT_NEAR(rate, 0.05, 0.035) << k << " groups";
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, AnovaSizeTest, ::testing::Values(2, 3, 5, 8));

TEST(AnovaPower, DetectsSmallShiftWithEnoughData) {
  Rng rng(5);
  std::vector<std::vector<double>> groups(2);
  for (int i = 0; i < 400; ++i) {
    groups[0].push_back(rng.normal(10.0, 2.0));
    groups[1].push_back(rng.normal(11.0, 2.0));  // 0.5 sd shift
  }
  EXPECT_TRUE(one_way_anova(groups).significant_at(0.01));
}

// ---- Pearson under noise ----------------------------------------------------

class PearsonNoiseTest : public ::testing::TestWithParam<double /*noise sd*/> {};

TEST_P(PearsonNoiseTest, AttenuatesWithNoise) {
  const double noise = GetParam();
  Rng rng(11);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 3000; ++i) {
    const double value = rng.normal(0.0, 1.0);
    x.push_back(value);
    y.push_back(value + rng.normal(0.0, noise));
  }
  const double expected = 1.0 / std::sqrt(1.0 + noise * noise);
  EXPECT_NEAR(pearson(x, y), expected, 0.05) << "noise " << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, PearsonNoiseTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0));

// ---- Quantiles are order statistics ----------------------------------------

TEST(QuantileProperty, MonotoneInQ) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.lognormal(0.0, 1.0));
  double previous = -1e300;
  for (double q = 0.0; q <= 1.0001; q += 0.05) {
    const double value = quantile(xs, q);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(QuantileProperty, BoundsAreMinAndMax) {
  const std::vector<double> xs = {5.0, -2.0, 8.0, 1.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), -2.0);  // clamped
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 8.0);    // clamped
}


// ---- Streaming accumulators vs the batch toolkit ---------------------------
//
// Satellite contract for the population engine: Welford/Chan must agree with
// the batch formulas to floating-point tolerance under any merge grouping,
// and ExactMoments must agree bit-for-bit with itself under ANY merge order
// (its integer state is what makes sharded studies byte-identical).

std::vector<double> random_sample(Rng& rng, std::size_t n, double mean, double sd) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.normal(mean, sd));
  return xs;
}

class StreamingAgreementTest : public ::testing::TestWithParam<std::uint64_t /*seed*/> {};

TEST_P(StreamingAgreementTest, WelfordMatchesBatchMoments) {
  Rng rng(GetParam());
  const auto xs = random_sample(rng, 1000 + GetParam() * 37 % 500, 40.0, 9.0);
  Welford w;
  for (const double x : xs) w.push(x);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_NEAR(w.mean(), mean(xs), 1e-9 * std::fabs(mean(xs)) + 1e-12);
  EXPECT_NEAR(w.sample_variance(), sample_variance(xs),
              1e-9 * sample_variance(xs) + 1e-12);
  const auto batch_ci = mean_confidence_interval(xs, 0.99);
  const auto stream_ci = mean_confidence_interval(w, 0.99);
  EXPECT_NEAR(stream_ci.center, batch_ci.center, 1e-9);
  EXPECT_NEAR(stream_ci.half_width, batch_ci.half_width, 1e-9);
}

TEST_P(StreamingAgreementTest, WelfordMergeIsOrderIndependentToTolerance) {
  Rng rng(GetParam() * 977 + 5);
  const auto xs = random_sample(rng, 700, -3.0, 2.5);
  // Chunk, then merge in several groupings/orders; all must agree with the
  // single-stream result to rounding tolerance (the documented contract).
  const std::size_t chunk_sizes[] = {1, 7, 64, 211};
  Welford sequential;
  for (const double x : xs) sequential.push(x);
  for (const std::size_t chunk : chunk_sizes) {
    std::vector<Welford> parts;
    for (std::size_t begin = 0; begin < xs.size(); begin += chunk) {
      Welford part;
      for (std::size_t i = begin; i < std::min(xs.size(), begin + chunk); ++i) {
        part.push(xs[i]);
      }
      parts.push_back(part);
    }
    Welford forward;
    for (const auto& part : parts) forward.merge(part);
    Welford backward;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) backward.merge(*it);
    for (const Welford* merged : {&forward, &backward}) {
      EXPECT_EQ(merged->count(), sequential.count());
      EXPECT_NEAR(merged->mean(), sequential.mean(), 1e-10);
      EXPECT_NEAR(merged->sample_variance(), sequential.sample_variance(),
                  1e-9 * sequential.sample_variance() + 1e-12);
    }
  }
}

TEST_P(StreamingAgreementTest, ExactMomentsMergeIsBitExactInAnyOrder) {
  Rng rng(GetParam() * 31 + 11);
  const auto xs = random_sample(rng, 600, 40.0, 12.0);  // vote-scale data
  ExactMoments sequential;
  for (const double x : xs) sequential.push(x);
  for (const std::size_t chunk : {3UL, 50UL, 199UL}) {
    std::vector<ExactMoments> parts;
    for (std::size_t begin = 0; begin < xs.size(); begin += chunk) {
      ExactMoments part;
      for (std::size_t i = begin; i < std::min(xs.size(), begin + chunk); ++i) {
        part.push(xs[i]);
      }
      parts.push_back(part);
    }
    // Forward, reverse, and odd-even interleaved merge orders: the integer
    // state must be IDENTICAL, not merely close.
    std::vector<std::vector<std::size_t>> orders;
    std::vector<std::size_t> forward(parts.size());
    std::iota(forward.begin(), forward.end(), std::size_t{0});
    orders.push_back(forward);
    orders.emplace_back(forward.rbegin(), forward.rend());
    std::vector<std::size_t> interleaved;
    for (std::size_t i = 0; i < parts.size(); i += 2) interleaved.push_back(i);
    for (std::size_t i = 1; i < parts.size(); i += 2) interleaved.push_back(i);
    orders.push_back(interleaved);
    for (const auto& order : orders) {
      ExactMoments merged;
      for (const std::size_t i : order) merged.merge(parts[i]);
      EXPECT_EQ(merged.count(), sequential.count());
      EXPECT_EQ(merged.sum_q(), sequential.sum_q());
      EXPECT_EQ(merged.sumsq_hi(), sequential.sumsq_hi());
      EXPECT_EQ(merged.sumsq_lo(), sequential.sumsq_lo());
      // Identical integer state implies identical derived doubles.
      EXPECT_EQ(merged.mean(), sequential.mean());
      EXPECT_EQ(merged.sample_variance(), sequential.sample_variance());
    }
  }
}

TEST_P(StreamingAgreementTest, ExactMomentsMatchesBatchWithinQuantization) {
  Rng rng(GetParam() * 131 + 7);
  const auto xs = random_sample(rng, 900, 37.0, 11.0);
  ExactMoments m;
  for (const double x : xs) m.push(x);
  // Per-observation quantization error is <= 2^-21; means and variances of
  // vote-scale data inherit it far below reporting precision.
  EXPECT_NEAR(m.mean(), mean(xs), 1e-5);
  EXPECT_NEAR(m.sample_variance(), sample_variance(xs), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingAgreementTest,
                         ::testing::Values(1, 2, 3, 17, 4242));

// ---- Streaming inference helpers -------------------------------------------

TEST(StreamingInference, WelchDetectsAShiftAndAcceptsANullShift) {
  Rng rng(99);
  Welford a;
  Welford b;
  Welford c;
  for (int i = 0; i < 4000; ++i) {
    a.push(rng.normal(50.0, 10.0));
    b.push(rng.normal(51.5, 10.0));
    c.push(rng.normal(50.0, 10.0));
  }
  const auto shifted = welch_t_test(a, b);
  EXPECT_LT(shifted.p_value, 1e-6);
  EXPECT_NEAR(shifted.difference, -1.5, 0.7);
  EXPECT_TRUE(shifted.significant_at(0.01));
  const auto null = welch_t_test(a, c);
  EXPECT_GT(null.p_value, 0.01);
}

TEST(StreamingInference, NormalQuantileInvertsTheNormalCdf) {
  for (double p = 0.001; p < 0.9995; p += 0.0007) {
    const double x = normal_quantile(p);
    const double cdf = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(cdf, p, 1e-8) << "p=" << p;
  }
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
}

TEST(StreamingInference, MinDetectableEffectShrinksAsRootN) {
  const double var = 144.0;
  const double mde35 = min_detectable_effect(var, 35, var, 35, 0.05, 0.8);
  const double mde3500 = min_detectable_effect(var, 3500, var, 3500, 0.05, 0.8);
  EXPECT_GT(mde35, 0.0);
  // 100x the sample => 10x smaller detectable effect.
  EXPECT_NEAR(mde35 / mde3500, 10.0, 1e-6);
  // Reference value: (1.96 + 0.8416) * sqrt(2 * 144 / 35) ~= 8.036.
  EXPECT_NEAR(mde35, 8.036, 0.01);
}

TEST(StreamingInference, TwoProportionZAndWilsonBehave)
{
  const auto detect = two_proportion_z_test(600, 1000, 400, 1000);
  EXPECT_NEAR(detect.difference, 0.2, 1e-12);
  EXPECT_LT(detect.p_value, 1e-6);
  const auto null = two_proportion_z_test(500, 1000, 505, 1000);
  EXPECT_GT(null.p_value, 0.5);
  const auto wilson = wilson_interval(30, 100, 0.95);
  EXPECT_GT(wilson.center, 0.0);
  EXPECT_LT(wilson.upper(), 1.0);
  EXPECT_GE(wilson.lower(), 0.0);
  // The interval covers the observed share.
  EXPECT_LE(wilson.lower(), 0.30);
  EXPECT_GE(wilson.upper(), 0.30);
}

}  // namespace
}  // namespace qperc::stats
