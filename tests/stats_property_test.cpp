// Parameterized property sweeps over the statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "stats/stats.hpp"
#include "util/rng.hpp"

namespace qperc::stats {
namespace {

// ---- Student-t critical values against standard tables --------------------

using TCriticalCase = std::tuple<double /*level*/, double /*df*/, double /*expected*/>;

class TCriticalTest : public ::testing::TestWithParam<TCriticalCase> {};

TEST_P(TCriticalTest, MatchesReferenceTables) {
  const auto& [level, df, expected] = GetParam();
  EXPECT_NEAR(student_t_two_sided_critical(level, df), expected, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    ReferenceTable, TCriticalTest,
    ::testing::Values(TCriticalCase{0.90, 5, 2.015}, TCriticalCase{0.90, 20, 1.725},
                      TCriticalCase{0.95, 5, 2.571}, TCriticalCase{0.95, 20, 2.086},
                      TCriticalCase{0.99, 5, 4.032}, TCriticalCase{0.99, 20, 2.845},
                      TCriticalCase{0.99, 120, 2.617}));

// ---- CI coverage: the 99% interval should contain the true mean ~99% ------

class CoverageTest : public ::testing::TestWithParam<int /*sample size*/> {};

TEST_P(CoverageTest, ConfidenceIntervalCoversTrueMean) {
  const int n = GetParam();
  Rng rng(31 + static_cast<std::uint64_t>(n));
  constexpr double kTrueMean = 42.0;
  int covered = 0;
  constexpr int kTrials = 600;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> sample;
    sample.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) sample.push_back(rng.normal(kTrueMean, 7.0));
    const auto ci = mean_confidence_interval(sample, 0.95);
    covered += ci.lower() <= kTrueMean && kTrueMean <= ci.upper();
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_NEAR(coverage, 0.95, 0.03) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, CoverageTest, ::testing::Values(5, 12, 40, 150));

// ---- ANOVA power/size sweep ------------------------------------------------

class AnovaSizeTest : public ::testing::TestWithParam<int /*groups*/> {};

TEST_P(AnovaSizeTest, FalsePositiveRateNearAlpha) {
  const int k = GetParam();
  Rng rng(77 + static_cast<std::uint64_t>(k));
  int rejections = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<std::vector<double>> groups(static_cast<std::size_t>(k));
    for (auto& group : groups) {
      for (int i = 0; i < 25; ++i) group.push_back(rng.normal(10.0, 2.0));
    }
    rejections += one_way_anova(groups).significant_at(0.05);
  }
  const double rate = static_cast<double>(rejections) / kTrials;
  EXPECT_NEAR(rate, 0.05, 0.035) << k << " groups";
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, AnovaSizeTest, ::testing::Values(2, 3, 5, 8));

TEST(AnovaPower, DetectsSmallShiftWithEnoughData) {
  Rng rng(5);
  std::vector<std::vector<double>> groups(2);
  for (int i = 0; i < 400; ++i) {
    groups[0].push_back(rng.normal(10.0, 2.0));
    groups[1].push_back(rng.normal(11.0, 2.0));  // 0.5 sd shift
  }
  EXPECT_TRUE(one_way_anova(groups).significant_at(0.01));
}

// ---- Pearson under noise ----------------------------------------------------

class PearsonNoiseTest : public ::testing::TestWithParam<double /*noise sd*/> {};

TEST_P(PearsonNoiseTest, AttenuatesWithNoise) {
  const double noise = GetParam();
  Rng rng(11);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 3000; ++i) {
    const double value = rng.normal(0.0, 1.0);
    x.push_back(value);
    y.push_back(value + rng.normal(0.0, noise));
  }
  const double expected = 1.0 / std::sqrt(1.0 + noise * noise);
  EXPECT_NEAR(pearson(x, y), expected, 0.05) << "noise " << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, PearsonNoiseTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0));

// ---- Quantiles are order statistics ----------------------------------------

TEST(QuantileProperty, MonotoneInQ) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.lognormal(0.0, 1.0));
  double previous = -1e300;
  for (double q = 0.0; q <= 1.0001; q += 0.05) {
    const double value = quantile(xs, q);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(QuantileProperty, BoundsAreMinAndMax) {
  const std::vector<double> xs = {5.0, -2.0, 8.0, 1.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), -2.0);  // clamped
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 8.0);    // clamped
}

}  // namespace
}  // namespace qperc::stats
