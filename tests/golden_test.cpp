// Bit-exactness golden test for the scheduler rebuild.
//
// One full page-load trial per Table 1 protocol on two seed-fixed sites
// (one small, one large/lossy), with every visual metric recorded as an
// exact nanosecond count and the trace counters that summarize transport
// behaviour. The expected values were captured from the pre-slab
// scheduler; the zero-allocation event store must reproduce them bit for
// bit — same FIFO tie-breaks, same RNG draw order, same packet schedule.
//
// If a deliberate behaviour change invalidates these rows, re-capture them
// with the snippet in EXPERIMENTS.md ("Benchmarking qperc") and say so in
// the commit message; an unexplained diff here is a determinism bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/profile.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"
#include "web/website.hpp"

namespace {

using namespace qperc;

/// Folds every trace event into TrialCounters, nothing else.
class CountersSink final : public trace::TraceSink {
 public:
  void on_event(const trace::Event& event) override { counters_.observe(event); }
  [[nodiscard]] const trace::TrialCounters& counters() const { return counters_; }

 private:
  trace::TrialCounters counters_;
};

struct GoldenRow {
  const char* site;
  const char* protocol;
  // PageMetrics, exact nanosecond counts.
  std::int64_t fvc_ns;
  std::int64_t si_ns;
  std::int64_t vc85_ns;
  std::int64_t lvc_ns;
  std::int64_t plt_ns;
  // TrialCounters.
  std::uint64_t packets_sent;
  std::uint64_t retransmissions;
  std::uint64_t timeouts;
  std::uint64_t acks_sent;
  std::uint64_t max_cwnd_bytes;
  std::uint64_t queue_drops;
  std::uint64_t random_loss_drops;
  std::uint64_t handshakes_completed;
  std::uint64_t connections_opened;
};

// Captured on the LTE profile, catalog seed 7, trial seed 12345.
//
// Re-captured after the variable-rate-link PR's deliberate transport fixes:
// the pacer no longer retroactively accrues credit at a new rate (shifts
// every BBR row a little), spurious RTO/PTO detection undoes needless
// cwnd collapses on the lossy site (fewer timeouts and retransmissions on
// the Cubic rows), and BBRv1 now carries Linux's long-term (policer)
// bandwidth sampler, whose known false-positive on bursty queue-drop loss
// slows TCP+BBR on nytimes — faithful to tcp_bbr v1, and the cost the
// policed cells buy their >= 80%-of-policed-rate goodput with.
constexpr GoldenRow kGolden[] = {
    {"apache.org", "TCP", 647300561, 663078063, 653075796, 1354227624, 1354227624, 167, 0, 0, 77,
     105629, 0, 0, 3, 3},
    {"apache.org", "TCP+", 568486088, 586947742, 573441514, 1354184958, 1354184958, 167, 0, 0, 76,
     137749, 0, 0, 3, 3},
    {"apache.org", "TCP+BBR", 601156617, 618839382, 609446815, 1371059280, 1371059280, 165, 0, 0,
     75, 96533, 0, 0, 3, 3},
    {"apache.org", "QUIC", 392869146, 424490515, 439909347, 1286233534, 1286233534, 177, 0, 0, 87,
     135180, 0, 0, 3, 3},
    {"apache.org", "QUIC+BBR", 429186304, 459388800, 480432351, 1293224081, 1293224081, 177, 0, 0,
     87, 96088, 0, 0, 3, 3},
    {"nytimes.com", "TCP", 2964583528, 3086667951, 3053478719, 4296365025, 4296365025, 3673, 255,
     3, 2091, 328156, 234, 0, 29, 29},
    {"nytimes.com", "TCP+", 2921365239, 3025390858, 2921365239, 4420944486, 4420944486, 3963, 568,
     8, 2415, 496481, 578, 0, 29, 29},
    {"nytimes.com", "TCP+BBR", 5952531146, 5953344052, 5952531146, 6038957328, 6038957328, 3825,
     418, 9, 2331, 307051, 417, 0, 29, 29},
    {"nytimes.com", "QUIC", 2846597462, 3027862230, 3289862382, 5289519703, 5289519703, 4539, 836,
     0, 1850, 422890, 848, 0, 29, 29},
    {"nytimes.com", "QUIC+BBR", 1637119933, 1965359884, 2234268644, 4525116505, 4525116505, 4526,
     803, 2, 1883, 441349, 805, 0, 29, 29},
};

TEST(Golden, TrialsAreBitExactPerTable1Protocol) {
  const auto catalog = web::study_catalog(7);
  const net::NetworkProfile profile = net::lte_profile();
  for (const GoldenRow& row : kGolden) {
    const web::Website* site = nullptr;
    for (const auto& candidate : catalog) {
      if (candidate.name == row.site) site = &candidate;
    }
    ASSERT_NE(site, nullptr) << row.site;
    const auto& protocol = core::protocol_by_name(row.protocol);

    CountersSink sink;
    const auto result = core::run_trial(
        core::TrialSpec(*site, protocol, profile, /*seed=*/12345).with_trace(&sink));
    const std::string label = std::string(row.site) + " / " + row.protocol;

    EXPECT_TRUE(result.metrics.finished) << label;
    EXPECT_EQ(result.metrics.first_visual_change.count(), row.fvc_ns) << label;
    EXPECT_EQ(result.metrics.speed_index.count(), row.si_ns) << label;
    EXPECT_EQ(result.metrics.visual_complete_85.count(), row.vc85_ns) << label;
    EXPECT_EQ(result.metrics.last_visual_change.count(), row.lvc_ns) << label;
    EXPECT_EQ(result.metrics.page_load_time.count(), row.plt_ns) << label;

    const trace::TrialCounters& counters = sink.counters();
    EXPECT_EQ(counters.packets_sent, row.packets_sent) << label;
    EXPECT_EQ(counters.retransmissions, row.retransmissions) << label;
    EXPECT_EQ(counters.timeouts, row.timeouts) << label;
    EXPECT_EQ(counters.acks_sent, row.acks_sent) << label;
    EXPECT_EQ(counters.max_cwnd_bytes, row.max_cwnd_bytes) << label;
    EXPECT_EQ(counters.queue_drops, row.queue_drops) << label;
    EXPECT_EQ(counters.random_loss_drops, row.random_loss_drops) << label;
    EXPECT_EQ(counters.handshakes_completed, row.handshakes_completed) << label;
    EXPECT_EQ(counters.connections_opened, row.connections_opened) << label;
  }
}

TEST(Golden, RerunIsIdenticalToItself) {
  // Sanity guard for the golden rows above: two runs in one process (warm
  // statics, different heap state) must agree with each other exactly.
  const auto catalog = web::study_catalog(7);
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == std::string("apache.org")) site = &candidate;
  }
  ASSERT_NE(site, nullptr);
  const auto& protocol = core::protocol_by_name("QUIC");
  const net::NetworkProfile profile = net::lte_profile();
  const auto a = core::run_trial(core::TrialSpec(*site, protocol, profile, 999));
  const auto b = core::run_trial(core::TrialSpec(*site, protocol, profile, 999));
  EXPECT_EQ(a.metrics.speed_index, b.metrics.speed_index);
  EXPECT_EQ(a.metrics.page_load_time, b.metrics.page_load_time);
  EXPECT_EQ(a.transport.retransmissions, b.transport.retransmissions);
  EXPECT_EQ(a.connections_opened, b.connections_opened);
}

}  // namespace
