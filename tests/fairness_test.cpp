// The fairness grid's contracts:
//
//   * determinism — cell results are byte-identical across --jobs, across
//     shard splits merged in any order, and across kill/resume cycles,
//   * Jain's index — the batch helper and the streaming accumulator agree,
//     and both honor the index's defining properties,
//   * compatibility — a flows=0 cell reproduces the legacy single-connection
//     topology draw for draw,
//   * robustness — the reordering+contention torture cell stays live and
//     deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "core/trial_context.hpp"
#include "net/contention.hpp"
#include "net/profile.hpp"
#include "runner/fairness.hpp"
#include "runner/torture.hpp"
#include "stats/stats.hpp"
#include "stats/streaming.hpp"
#include "util/rng.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

// --- Jain's fairness index ---------------------------------------------------

TEST(JainIndex, EqualSharesAreMaximallyFair) {
  const std::vector<double> xs(7, 3.25);
  EXPECT_DOUBLE_EQ(stats::jain_fairness_index(xs), 1.0);
}

TEST(JainIndex, SingleFlowAndDegenerateInputsAreFair) {
  EXPECT_DOUBLE_EQ(stats::jain_fairness_index(std::vector<double>{42.0}), 1.0);
  EXPECT_DOUBLE_EQ(stats::jain_fairness_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(stats::jain_fairness_index(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(JainIndex, OneHogAmongNFlowsScoresOneOverN) {
  const std::vector<double> xs{10.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(stats::jain_fairness_index(xs), 1.0 / 5.0);
}

TEST(JainIndex, ScaleInvariantAndBounded) {
  Rng rng(11);
  std::vector<double> xs;
  std::vector<double> scaled;
  for (int i = 0; i < 64; ++i) {
    const double x = rng.exponential(3.0);
    xs.push_back(x);
    scaled.push_back(x * 1e6);
  }
  const double index = stats::jain_fairness_index(xs);
  EXPECT_GE(index, 1.0 / 64.0);
  EXPECT_LE(index, 1.0);
  EXPECT_NEAR(stats::jain_fairness_index(scaled), index, 1e-12);
}

TEST(JainIndex, NegativeInputsClampToZero) {
  EXPECT_DOUBLE_EQ(stats::jain_fairness_index(std::vector<double>{5.0, -5.0}),
                   stats::jain_fairness_index(std::vector<double>{5.0, 0.0}));
}

TEST(JainAccumulator, MatchesBatchComputation) {
  Rng rng(23);
  std::vector<double> xs;
  stats::JainAccumulator acc;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.exponential(1.5);
    xs.push_back(x);
    acc.push(x);
  }
  EXPECT_EQ(acc.count(), 200u);
  EXPECT_NEAR(acc.index(), stats::jain_fairness_index(xs), 1e-12);
}

TEST(JainAccumulator, MergeIsOrderIndependentAndMatchesBatch) {
  Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 90; ++i) xs.push_back(rng.exponential(2.0));

  stats::JainAccumulator whole;
  stats::JainAccumulator a;
  stats::JainAccumulator b;
  stats::JainAccumulator c;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.push(xs[i]);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).push(xs[i]);
  }
  stats::JainAccumulator abc = a;
  abc.merge(b);
  abc.merge(c);
  stats::JainAccumulator cba = c;
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(abc.count(), whole.count());
  EXPECT_EQ(cba.count(), whole.count());
  EXPECT_NEAR(abc.index(), whole.index(), 1e-12);
  EXPECT_NEAR(cba.index(), whole.index(), 1e-12);
  EXPECT_NEAR(whole.index(), stats::jain_fairness_index(xs), 1e-12);
}

TEST(JainAccumulator, DegenerateStatesAreFair) {
  stats::JainAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.index(), 1.0);
  acc.push(0.0);
  acc.push(-1.0);  // clamped to 0, same as the batch helper
  EXPECT_DOUBLE_EQ(acc.index(), 1.0);
}

// --- record / store round-trips ---------------------------------------------

runner::FairnessCell sample_cell() {
  runner::FairnessCell cell;
  cell.grid_index = 17;
  cell.site = "apache.org";
  cell.protocol = "QUIC";
  cell.network = net::NetworkKind::kLte;
  cell.flows = 3;
  cell.mix = net::CrossMix::kMixed;
  cell.stagger = milliseconds(250);
  cell.runs = 5;
  cell.pages_finished = 4;
  cell.mean_fvc_ms = 123.0625;
  cell.mean_lvc_ms = 1234.5;
  cell.mean_plt_ms = 2345.675;
  cell.mean_vc85_ms = 999.25;
  cell.mean_si_ms = 456.125;
  cell.mean_page_retransmissions = 17.2;
  cell.jain_index = 0.87365819241;
  cell.mean_queue_peak_frac = 0.998;
  cell.mean_queue_drops = 1283.6;
  cell.flow_goodput_bps = {1.5e6, 2.25e6, 0.4e6};
  return cell;
}

std::string record_line(const runner::FairnessCell& cell) {
  std::ostringstream os;
  runner::write_fairness_record(os, cell);
  return os.str();
}

TEST(FairnessRecord, RoundTripsByteExactly) {
  const runner::FairnessCell cell = sample_cell();
  const std::string line = record_line(cell);

  std::istringstream is(line);
  runner::FairnessCell parsed;
  ASSERT_TRUE(runner::read_fairness_record(is, parsed));
  EXPECT_EQ(record_line(parsed), line);
  EXPECT_EQ(parsed.site, cell.site);
  EXPECT_EQ(parsed.flows, cell.flows);
  EXPECT_EQ(parsed.mix, cell.mix);
  EXPECT_EQ(parsed.stagger, cell.stagger);
  ASSERT_EQ(parsed.flow_goodput_bps.size(), cell.flow_goodput_bps.size());
  EXPECT_EQ(parsed.flow_goodput_bps[2], cell.flow_goodput_bps[2]);
}

TEST(FairnessRecord, RejectsMalformedLines) {
  runner::FairnessCell cell;
  std::istringstream truncated("cell 1 apache.org QUIC 0 2");
  EXPECT_FALSE(runner::read_fairness_record(truncated, cell));
  std::istringstream bad_mix(
      "cell 1 apache.org QUIC 0 2 warp 0 1 1 1 1 1 1 1 1 1 1 1 0");
  EXPECT_FALSE(runner::read_fairness_record(bad_mix, cell));
}

TEST(FairnessStore, LoadRejectsMismatchedFingerprint) {
  const std::string path = testing::TempDir() + "fairness_fp.qfr";
  runner::FairnessStore writer(path, 7, 5, 1111);
  writer.put(sample_cell());
  writer.checkpoint();

  runner::FairnessStore same(path, 7, 5, 1111);
  EXPECT_TRUE(same.load());
  EXPECT_EQ(same.size(), 1u);

  runner::FairnessStore other(path, 7, 5, 2222);
  EXPECT_FALSE(other.load());
  EXPECT_EQ(other.size(), 0u);
  EXPECT_FALSE(other.absorb(path));
}

// --- grid determinism --------------------------------------------------------

runner::FairnessSpec small_spec() {
  runner::FairnessSpec spec;
  spec.sites = {"apache.org", "wikipedia.org"};
  spec.protocols = {"QUIC"};
  spec.networks = {net::NetworkKind::kDsl};
  spec.flow_counts = {0, 2};
  spec.mixes = {net::CrossMix::kCubic};
  spec.staggers = {SimDuration{0}};
  spec.runs = 2;
  spec.seed = 7;
  return spec;
}

/// Canonical bytes of a store's cells: key-sorted records, exactly what an
/// export writes. Equality here is the byte-identical contract.
std::string store_bytes(const runner::FairnessStore& store) {
  std::ostringstream os;
  store.for_each(
      [&os](const runner::FairnessCell& cell) { runner::write_fairness_record(os, cell); });
  return os.str();
}

runner::FairnessStore make_store(const runner::FairnessSpec& spec, const std::string& tag) {
  return runner::FairnessStore(testing::TempDir() + "fairness_" + tag + ".qfr", spec.seed,
                               spec.runs, spec.fingerprint());
}

TEST(FairnessGrid, ByteIdenticalAcrossJobCounts) {
  const runner::FairnessSpec spec = small_spec();

  runner::FairnessStore serial = make_store(spec, "jobs1");
  runner::FairnessOptions one;
  one.jobs = 1;
  const auto report_serial = runner::run_fairness(spec, serial, one);
  EXPECT_TRUE(report_serial.failures.empty());
  EXPECT_EQ(report_serial.executed, spec.grid_size());

  runner::FairnessStore parallel = make_store(spec, "jobs4");
  runner::FairnessOptions four;
  four.jobs = 4;
  const auto report_parallel = runner::run_fairness(spec, parallel, four);
  EXPECT_TRUE(report_parallel.failures.empty());

  const std::string bytes = store_bytes(serial);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, store_bytes(parallel));
}

TEST(FairnessGrid, ShardSplitMergesToTheUnshardedResult) {
  const runner::FairnessSpec spec = small_spec();
  runner::FairnessStore whole = make_store(spec, "whole");
  runner::FairnessOptions two;
  two.jobs = 2;
  ASSERT_TRUE(runner::run_fairness(spec, whole, two).failures.empty());

  runner::FairnessSpec shard0 = spec;
  shard0.shard_index = 0;
  shard0.shard_count = 2;
  runner::FairnessSpec shard1 = spec;
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  runner::FairnessStore store0 = make_store(spec, "shard0");
  runner::FairnessStore store1 = make_store(spec, "shard1");
  ASSERT_TRUE(runner::run_fairness(shard0, store0, two).failures.empty());
  ASSERT_TRUE(runner::run_fairness(shard1, store1, two).failures.empty());
  EXPECT_EQ(store0.size() + store1.size(), spec.grid_size());

  // Merge in both orders; either way the bytes match the unsharded run.
  runner::FairnessStore merged01 = make_store(spec, "merged01");
  ASSERT_TRUE(merged01.absorb(store0.path()));
  ASSERT_TRUE(merged01.absorb(store1.path()));
  runner::FairnessStore merged10 = make_store(spec, "merged10");
  ASSERT_TRUE(merged10.absorb(store1.path()));
  ASSERT_TRUE(merged10.absorb(store0.path()));

  EXPECT_EQ(store_bytes(merged01), store_bytes(whole));
  EXPECT_EQ(store_bytes(merged10), store_bytes(whole));
}

TEST(FairnessGrid, InterruptAndResumeMatchesOneShot) {
  const runner::FairnessSpec spec = small_spec();
  runner::FairnessStore oneshot = make_store(spec, "oneshot");
  runner::FairnessOptions serial;
  serial.jobs = 1;
  ASSERT_TRUE(runner::run_fairness(spec, oneshot, serial).failures.empty());

  // "Interrupt" after two cells (deterministic via max_tasks), then resume
  // from the checkpoint the first run wrote.
  runner::FairnessStore resumed = make_store(spec, "resumed");
  runner::FairnessOptions partial;
  partial.jobs = 1;
  partial.max_tasks = 2;
  const auto first = runner::run_fairness(spec, resumed, partial);
  EXPECT_EQ(first.executed, 2u);

  runner::FairnessStore reopened = make_store(spec, "resumed");
  ASSERT_TRUE(reopened.load());
  EXPECT_EQ(reopened.size(), 2u);
  const auto second = runner::run_fairness(spec, reopened, serial);
  EXPECT_EQ(second.skipped, 2u);
  EXPECT_TRUE(second.failures.empty());

  EXPECT_EQ(store_bytes(reopened), store_bytes(oneshot));
}

// --- single-flow compatibility ----------------------------------------------

TEST(FairnessCell, FlowsZeroReproducesTheLegacyTopology) {
  runner::FairnessSpec spec = small_spec();
  spec.sites = {"apache.org"};
  spec.flow_counts = {0};
  const auto tasks = spec.tasks();
  ASSERT_EQ(tasks.size(), 1u);
  const runner::FairnessCell cell = runner::run_fairness_cell(tasks[0], spec);
  EXPECT_DOUBLE_EQ(cell.jain_index, 1.0);
  EXPECT_TRUE(cell.flow_goodput_bps.empty());

  // Replay the cell by hand through the plain single-connection entry point
  // (the same seed schedule run_fairness_cell uses) and demand the exact
  // accumulation, not just closeness.
  const auto catalog = web::study_catalog(spec.seed);
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == "apache.org") site = &candidate;
  }
  ASSERT_NE(site, nullptr);
  const auto& protocol = core::protocol_by_name("QUIC");
  const net::NetworkProfile profile = net::dsl_profile();

  Rng run_rng(tasks[0].base_seed);
  double plt_sum = 0.0;
  double si_sum = 0.0;
  std::uint32_t finished = 0;
  for (std::uint32_t r = 0; r < spec.runs; ++r) {
    const auto result =
        core::run_trial(core::TrialSpec(*site, protocol, profile, run_rng.next_u64()));
    plt_sum += result.metrics.plt_ms();
    si_sum += result.metrics.si_ms();
    if (result.metrics.finished) ++finished;
  }
  EXPECT_EQ(cell.pages_finished, finished);
  EXPECT_EQ(cell.mean_plt_ms, plt_sum / spec.runs);
  EXPECT_EQ(cell.mean_si_ms, si_sum / spec.runs);
}

// --- contention + impairments (torture-cell regression) ----------------------

TEST(ContentionTorture, ReorderContendedCellIsLiveAndDeterministic) {
  const auto scenarios = runner::contention_scenarios(net::dsl_profile());
  const runner::TortureScenario* scenario = nullptr;
  for (const auto& candidate : scenarios) {
    if (candidate.name == "reorder-contended") scenario = &candidate;
  }
  ASSERT_NE(scenario, nullptr);
  ASSERT_GT(scenario->profile.impairments.reorder_rate, 0.0);
  ASSERT_TRUE(scenario->contention.enabled());

  const auto catalog = web::study_catalog(7);
  const auto& protocol = core::protocol_by_name("QUIC");

  const auto run_once = [&]() {
    core::TrialContext context;
    core::ContentionOutcome outcome;
    const auto result = context.run(
        core::TrialSpec(catalog.front(), protocol, scenario->profile, 99)
            .with_contention(scenario->contention),
        &outcome);
    return std::pair(result, outcome);
  };
  const auto [result_a, outcome_a] = run_once();
  const auto [result_b, outcome_b] = run_once();

  // Liveness: the contended, reordered load still completes.
  EXPECT_TRUE(result_a.metrics.finished);
  // Determinism: identical metrics and identical per-flow byte counts.
  EXPECT_EQ(result_a.metrics.plt_ms(), result_b.metrics.plt_ms());
  EXPECT_EQ(result_a.metrics.si_ms(), result_b.metrics.si_ms());
  EXPECT_EQ(result_a.transport.retransmissions, result_b.transport.retransmissions);
  ASSERT_EQ(outcome_a.flows.size(), outcome_b.flows.size());
  ASSERT_EQ(outcome_a.flows.size(), scenario->contention.flows);
  for (std::size_t i = 0; i < outcome_a.flows.size(); ++i) {
    EXPECT_EQ(outcome_a.flows[i].bytes_delivered, outcome_b.flows[i].bytes_delivered);
  }
  EXPECT_EQ(outcome_a.peak_queue_bytes, outcome_b.peak_queue_bytes);
  EXPECT_EQ(outcome_a.queue_drops, outcome_b.queue_drops);
  // The crowd actually moved data through the shared bottleneck.
  std::uint64_t delivered = 0;
  for (const auto& flow : outcome_a.flows) delivered += flow.bytes_delivered;
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace qperc
