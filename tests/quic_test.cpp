// QUIC stack tests: 1-RTT handshake, stream independence, ACK ranges,
// reliability under loss, flow control.
#include <gtest/gtest.h>

#include "net/impairments.hpp"
#include "tests/transport_test_util.hpp"

namespace qperc::quic {
namespace {

using testutil::QuicHarness;

QuicConfig default_config() { return QuicConfig{}; }

TEST(QuicHandshake, TakesOneRttBeforeData) {
  QuicHarness harness(net::dsl_profile(), default_config(), 10'000);
  ASSERT_TRUE(harness.run(1));
  // One 24 ms round trip (plus serialization of the padded CHLO/REJ).
  EXPECT_GE(harness.established_at, SimTime(milliseconds(24)));
  EXPECT_LE(harness.established_at, SimTime(milliseconds(36)));
}

TEST(QuicHandshake, ZeroRttEstablishesImmediately) {
  QuicConfig config = default_config();
  config.zero_rtt = true;
  QuicHarness harness(net::dsl_profile(), config, 10'000);
  ASSERT_TRUE(harness.run(1));
  EXPECT_EQ(harness.established_at, SimTime{0});
}

TEST(QuicHandshake, OneRttFasterThanTcpOnCleanNetwork) {
  QuicHarness quic(net::lte_profile(), default_config(), 20'000);
  ASSERT_TRUE(quic.run(1));
  testutil::TcpHarness tcp(net::lte_profile(), tcp::TcpConfig{}, 20'000);
  ASSERT_TRUE(tcp.run());
  // LTE min RTT 74 ms: QUIC saves about one round trip.
  const SimDuration saved = tcp.established_at - quic.established_at;
  EXPECT_GT(saved, milliseconds(60));
  EXPECT_LT(saved, milliseconds(110));
}

TEST(QuicHandshake, SurvivesChloLoss) {
  int recovered = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    QuicHarness harness(net::mss_profile(), default_config(), 5'000, seed);
    ASSERT_TRUE(harness.run(1)) << seed;
    recovered += harness.connection->stats().handshake_retransmissions > 0 ? 1 : 0;
  }
  EXPECT_GT(recovered, 0);
}

TEST(QuicTransfer, DeliversExactBytesLossless) {
  QuicHarness harness(net::dsl_profile(), default_config(), 250'000);
  ASSERT_TRUE(harness.run(1));
  EXPECT_EQ(harness.bytes_delivered, 250'000u);
}

TEST(QuicTransfer, DeliversUnderHeavyLoss) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    QuicHarness harness(net::mss_profile(), default_config(), 200'000, seed);
    EXPECT_TRUE(harness.run(1)) << "seed " << seed;
    EXPECT_EQ(harness.bytes_delivered, 200'000u) << "seed " << seed;
  }
}

TEST(QuicTransfer, MultipleStreamsAllComplete) {
  QuicHarness harness(net::lte_profile(), default_config(), 30'000);
  ASSERT_TRUE(harness.run(8));
  EXPECT_EQ(harness.bytes_delivered, 8u * 30'000);
}

TEST(QuicTransfer, ThroughputApproachesLinkRate) {
  QuicHarness harness(net::dsl_profile(), default_config(), 2'000'000);
  ASSERT_TRUE(harness.run(1));
  const double goodput_mbps =
      2'000'000 * 8.0 / to_seconds(harness.simulator.now()) / 1e6;
  EXPECT_GT(goodput_mbps, 15.0);
}

TEST(QuicStreams, ProgressIndependentlyUnderLoss) {
  // With many parallel streams on a lossy link, some streams must complete
  // while others are still blocked on retransmissions — the defining
  // difference from TCP's single byte stream. We verify that stream
  // completions are spread over time rather than all arriving at the end.
  QuicHarness harness(net::da2gc_profile(), default_config(), 25'000, 3);
  harness.connection->connect();
  std::vector<SimTime> completions;
  // Re-wire the completion hook to record times.
  // (QuicHarness counts completions; we approximate spread via run loop.)
  for (std::uint32_t i = 0; i < 6; ++i) {
    harness.connection->client_write_stream(5 + 2 * i, 300, true, 1);
  }
  std::uint64_t last_count = 0;
  std::vector<SimTime> first_last;
  const SimTime end = harness.simulator.now() + seconds(300);
  while (harness.streams_completed < 6 && harness.simulator.now() < end) {
    harness.simulator.run_until(harness.simulator.now() + milliseconds(20));
    if (harness.streams_completed != last_count) {
      last_count = harness.streams_completed;
      first_last.push_back(harness.simulator.now());
    }
  }
  ASSERT_EQ(harness.streams_completed, 6u);
  // First stream completion well before the last.
  EXPECT_GT(first_last.back() - first_last.front(), milliseconds(100));
}

TEST(QuicAckRanges, CanExceedTcpSackLimit) {
  sim::Simulator simulator;
  QuicConfig config;
  int ack_requests = 0;
  QuicReceiveSide receiver(simulator, config, [&] { ++ack_requests; },
                           [](std::uint64_t, std::uint64_t, bool) {});
  // Receive every other packet number: 20 disjoint ranges.
  QuicPacket packet;
  packet.ack_eliciting = true;
  for (std::uint64_t pn = 2; pn <= 40; pn += 2) {
    packet.packet_number = pn;
    receiver.on_packet(packet);
  }
  QuicPacket ack;
  receiver.fill_ack(ack);
  EXPECT_TRUE(ack.has_ack);
  EXPECT_EQ(ack.ack_ranges.size(), 20u);
  EXPECT_GT(ack.ack_ranges.size(), tcp::kMaxSackBlocks);
  // Newest first.
  EXPECT_EQ(ack.ack_ranges.front().first, 40u);
}

TEST(QuicAckRanges, CapsAtConfiguredMaximum) {
  sim::Simulator simulator;
  QuicConfig config;
  config.max_ack_ranges = 8;
  QuicReceiveSide receiver(simulator, config, [] {},
                           [](std::uint64_t, std::uint64_t, bool) {});
  QuicPacket packet;
  packet.ack_eliciting = true;
  for (std::uint64_t pn = 2; pn <= 60; pn += 2) {
    packet.packet_number = pn;
    receiver.on_packet(packet);
  }
  QuicPacket ack;
  receiver.fill_ack(ack);
  EXPECT_EQ(ack.ack_ranges.size(), 8u);
}

TEST(QuicReceiveSide, ReassemblesStreamsIndependently) {
  sim::Simulator simulator;
  QuicConfig config;
  struct Progress {
    std::uint64_t bytes = 0;
    bool fin = false;
  };
  std::map<std::uint64_t, Progress> progress;
  QuicReceiveSide receiver(simulator, config, [] {},
                           [&](std::uint64_t stream, std::uint64_t bytes, bool fin) {
                             progress[stream] = {bytes, fin};
                           });
  QuicPacket p1;
  p1.packet_number = 1;
  p1.ack_eliciting = true;
  p1.frames.push_back(simulator.arena(), StreamFrame{5, 0, 1000, false});
  p1.frames.push_back(simulator.arena(), StreamFrame{7, 500, 500, true});  // stream 7 has a hole
  receiver.on_packet(p1);
  EXPECT_EQ(progress[5].bytes, 1000u);
  EXPECT_EQ(progress.count(7), 0u);  // no contiguous progress yet

  QuicPacket p2;
  p2.packet_number = 2;
  p2.ack_eliciting = true;
  p2.frames.push_back(simulator.arena(), StreamFrame{7, 0, 500, false});  // fill stream 7's hole
  receiver.on_packet(p2);
  EXPECT_EQ(progress[7].bytes, 1000u);
  EXPECT_TRUE(progress[7].fin);
  EXPECT_FALSE(progress[5].fin);
}

TEST(QuicReceiveSide, DuplicatePacketsIgnored) {
  sim::Simulator simulator;
  QuicConfig config;
  std::uint64_t delivered = 0;
  QuicReceiveSide receiver(simulator, config, [] {},
                           [&](std::uint64_t, std::uint64_t bytes, bool) {
                             delivered = bytes;
                           });
  QuicPacket packet;
  packet.packet_number = 1;
  packet.ack_eliciting = true;
  packet.frames.push_back(simulator.arena(), StreamFrame{5, 0, 1000, false});
  receiver.on_packet(packet);
  receiver.on_packet(packet);  // duplicate
  EXPECT_EQ(delivered, 1000u);
  EXPECT_EQ(receiver.stream_delivered(5), 1000u);
}

TEST(QuicFlowControl, WindowUpdatesFlowBack) {
  // Transfer larger than the stream flow-control window: completion proves
  // MAX_STREAM_DATA credit kept flowing.
  QuicConfig config = default_config();
  config.stream_flow_window_bytes = 64 * 1024;
  config.connection_flow_window_bytes = 96 * 1024;
  QuicHarness harness(net::dsl_profile(), config, 500'000);
  ASSERT_TRUE(harness.run(1));
  EXPECT_EQ(harness.bytes_delivered, 500'000u);
}

TEST(QuicStats, RetransmissionsUnderLoss) {
  QuicHarness harness(net::da2gc_profile(), default_config(), 150'000, 5);
  ASSERT_TRUE(harness.run(1, seconds(300)));
  EXPECT_GT(harness.connection->stats().retransmissions, 0u);
}

// --- Impairment-layer regressions (bugs flushed out by `qperc torture`) ---

TEST(QuicImpairment, DuplicateStormDeliversStreamBytesExactlyOnce) {
  net::NetworkProfile profile = net::dsl_profile();
  profile.impairments.duplicate_rate = 0.4;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    QuicHarness harness(profile, default_config(), 120'000, seed);
    ASSERT_TRUE(harness.run(2)) << "seed " << seed;
    // Byte-exact on both streams: the receive side's duplicate tracking
    // (receive_side.cpp) must discard every link-level copy.
    EXPECT_EQ(harness.bytes_delivered, 240'000u) << "seed " << seed;
    EXPECT_GT(harness.network->downlink_stats().duplicates, 0u) << "seed " << seed;
  }
}

// The paper's ACK-range-capacity mechanism (§4.3): with max_ack_ranges
// pinned far below the holes heavy reordering opens, ACK frames can never
// describe the full receive state. The send side must still retire every
// in-flight packet — the capped ACK must not strand packets in flight.
TEST(QuicImpairment, ReorderingBeyondAckRangeCapRetiresAllPackets) {
  QuicConfig config = default_config();
  config.max_ack_ranges = 2;
  net::NetworkProfile profile = net::dsl_profile();
  profile.impairments.reorder_rate = 0.4;
  profile.impairments.reorder_delay_min = milliseconds(2);
  profile.impairments.reorder_delay_max = milliseconds(60);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    QuicHarness harness(profile, config, 400'000, seed);
    ASSERT_TRUE(harness.run(1, seconds(240))) << "seed " << seed;
    EXPECT_EQ(harness.bytes_delivered, 400'000u) << "seed " << seed;
    EXPECT_GT(harness.network->downlink_stats().reordered, 0u) << "seed " << seed;
  }
}

TEST(QuicImpairment, SurvivesGilbertElliottBurstsAndFlaps) {
  net::NetworkProfile profile = net::lte_profile();
  profile.impairments.gilbert_elliott = net::GilbertElliott{
      .enter_bad = 0.02, .exit_bad = 0.3, .loss_good = 0.0, .loss_bad = 0.5};
  profile.impairments.outage_start = SimTime{milliseconds(500)};
  profile.impairments.outage_duration = milliseconds(200);
  profile.impairments.outage_interval = seconds(2);
  QuicHarness harness(profile, default_config(), 120'000, 3);
  ASSERT_TRUE(harness.run(1, seconds(240)));
  EXPECT_EQ(harness.bytes_delivered, 120'000u);
  EXPECT_GT(harness.connection->stats().retransmissions, 0u);
}

}  // namespace
}  // namespace qperc::quic
