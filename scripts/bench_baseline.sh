#!/usr/bin/env bash
# Runs bench_micro_perf in JSON mode and compares the emitted metrics
# against the checked-in baseline (BENCH_micro.json at the repo root).
#
#   scripts/bench_baseline.sh [--bench PATH] [--smoke] [--update] [--tolerance PCT]
#
#   (default)    run full iterations, diff against BENCH_micro.json:
#                timing metrics must be within --tolerance percent (default
#                200 — machines vary; regressions we care about are 2x+),
#                invariant metrics (steady-state allocations, re-arm queue
#                depth) must match exactly.
#   --smoke      run at 1 iteration and only validate the JSON schema
#                (qperc-bench-micro-v6 with every expected metric present
#                and finite). Registered as the `bench_smoke` ctest.
#   --ratchet    run full iterations but compare only the machine-independent
#                invariants (steady-state scheduler allocations exactly;
#                allocations_per_trial and rearm_queue_depth_max as ratchets:
#                current <= baseline). Timings are ignored, so this is safe
#                for CI boxes of any speed — scripts/ci_gate.sh runs it.
#                The baseline must also carry the analyzer's ratcheted
#                hot-path stack budget (analyzer.hot_path_stack_bytes, new in
#                schema v5); the value itself is enforced by
#                scripts/analyze_hotpath.py --ratchet against fresh objects.
#   --update     run full iterations and rewrite the bench-owned parts of
#                BENCH_micro.json, preserving the analyzer section (owned by
#                scripts/analyze_hotpath.py --write-baseline).
#   --bench PATH path to the bench_micro_perf binary
#                (default: build/bench/bench_micro_perf).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 2

bench="build/bench/bench_micro_perf"
mode="compare"
tolerance=200
while [ $# -gt 0 ]; do
  case "$1" in
    --bench) bench="$2"; shift 2 ;;
    --smoke) mode="smoke"; shift ;;
    --ratchet) mode="ratchet"; shift ;;
    --update) mode="update"; shift ;;
    --tolerance) tolerance="$2"; shift 2 ;;
    *) echo "bench_baseline: unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [ ! -x "$bench" ]; then
  echo "bench_baseline: benchmark binary not found: $bench (build first)" >&2
  exit 2
fi

out="$(mktemp /tmp/qperc_bench_micro.XXXXXX.json)"
trap 'rm -f "$out"' EXIT

if [ "$mode" = "smoke" ]; then
  "$bench" --qperc_json "$out" --qperc_iters 1 > /dev/null || exit 1
else
  "$bench" --qperc_json "$out" > /dev/null || exit 1
fi

if [ "$mode" = "update" ]; then
  # Merge, don't copy: the analyzer section (hot-path stack budget) is owned
  # by scripts/analyze_hotpath.py --write-baseline and must survive a bench
  # re-baseline.
  python3 - "$out" <<'PY' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    current = json.load(f)
try:
    with open("BENCH_micro.json") as f:
        previous = json.load(f)
except (OSError, ValueError):
    previous = {}
if "analyzer" in previous:
    current["analyzer"] = previous["analyzer"]
with open("BENCH_micro.json", "w") as f:
    json.dump(current, f, indent=2)
    f.write("\n")
PY
  echo "bench_baseline: wrote BENCH_micro.json (bench metrics; analyzer section preserved)"
  exit 0
fi

baseline="BENCH_micro.json"
if [ "$mode" != "smoke" ] && [ ! -f "$baseline" ]; then
  echo "bench_baseline: missing $baseline (run with --update to create it)" >&2
  exit 1
fi

MODE="$mode" TOLERANCE="$tolerance" BASELINE="$baseline" python3 - "$out" <<'PY'
import json, math, os, sys

METRICS = [
    "ns_per_schedule",
    "ns_per_rearm",
    "scheduler_events_per_sec",
    "scheduler_allocs_steady_state",
    "rearm_queue_depth_max",
    "ns_per_page_load_trial",
    "ns_per_scheduled_trial",
    "ns_per_multiflow_trial",
    "trials_per_sec",
    "allocations_per_trial",
    "trace_events_per_trial",
    "participants_per_sec",
    "bytes_per_participant",
]
# Hard invariants — allocation counts and queue-depth bounds, not
# machine-dependent timings: compared exactly regardless of --tolerance.
# allocations_per_trial is a ratchet: lower than baseline is fine (re-run
# with --update to bank the improvement), higher fails.
EXACT = ["scheduler_allocs_steady_state", "rearm_queue_depth_max",
         "allocations_per_trial", "bytes_per_participant"]
# Ratcheted upper bounds (current <= baseline passes) vs strict equality.
# bytes_per_participant guards the population engine's O(1)-memory contract:
# heap traffic per streamed participant may shrink but never grow.
RATCHET = {"rearm_queue_depth_max", "allocations_per_trial",
           "bytes_per_participant"}

def load(path, expect_analyzer=False):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema == "qperc-bench-micro-v4" and expect_analyzer:
        sys.exit("bench_baseline: BENCH_micro.json is schema v4, which predates the "
                 "hot-path analyzer. Upgrade the baseline: re-run "
                 "scripts/bench_baseline.sh --update with a current bench binary, then "
                 "scripts/analyze_hotpath.py --build-dir <release-build> --write-baseline "
                 "to bank analyzer.hot_path_stack_bytes.")
    if schema == "qperc-bench-micro-v5":
        sys.exit("bench_baseline: BENCH_micro.json is schema v5, which predates the "
                 "ns_per_scheduled_trial metric (variable-rate links). Upgrade the "
                 "baseline: re-run scripts/bench_baseline.sh --update with a current "
                 "bench binary (the analyzer section is preserved automatically).")
    if schema != "qperc-bench-micro-v6":
        sys.exit(f"bench_baseline: bad schema in {path}: {schema!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        sys.exit(f"bench_baseline: {path} has no metrics object")
    for key in METRICS:
        value = metrics.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            sys.exit(f"bench_baseline: {path} metric {key} missing or not finite: {value!r}")
    if expect_analyzer:
        stack = doc.get("analyzer", {}).get("hot_path_stack_bytes")
        if not isinstance(stack, int) or stack <= 0:
            sys.exit("bench_baseline: BENCH_micro.json (schema v5) is missing "
                     "analyzer.hot_path_stack_bytes — run scripts/analyze_hotpath.py "
                     "--build-dir <release-build> --write-baseline to bank the hot-path "
                     "stack budget.")
        print(f"bench_baseline: ok   {'hot_path_stack_bytes':32s} baseline={stack:<14g} "
              "(enforced by scripts/analyze_hotpath.py --ratchet)")
    return metrics

current = load(sys.argv[1])
if os.environ["MODE"] == "smoke":
    print("bench_baseline: smoke OK (schema qperc-bench-micro-v6, "
          f"{len(METRICS)} metrics present)")
    sys.exit(0)

baseline = load(os.environ["BASELINE"], expect_analyzer=True)
tolerance = float(os.environ["TOLERANCE"])
ratchet_only = os.environ["MODE"] == "ratchet"
failed = False
for key in METRICS:
    base, cur = baseline[key], current[key]
    if key in EXACT:
        ok = cur <= base if key in RATCHET else cur == base
        verdict = "ratchet" if key in RATCHET else "exact"
    elif ratchet_only:
        continue  # timings are machine-dependent; the gate skips them
    else:
        delta = abs(cur - base) / base * 100.0 if base else 0.0
        ok = delta <= tolerance
        verdict = f"{delta:+.1f}% vs ±{tolerance:.0f}%"
    status = "ok" if ok else "FAIL"
    print(f"bench_baseline: {status:4s} {key:32s} baseline={base:<14g} current={cur:<14g} ({verdict})")
    failed |= not ok

sys.exit(1 if failed else 0)
PY
status=$?
if [ "$status" -eq 0 ] && [ "$mode" != "smoke" ]; then
  echo "bench_baseline: OK ($mode)"
fi
exit "$status"
