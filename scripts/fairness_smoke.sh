#!/usr/bin/env bash
# End-to-end exercise of `qperc fairness`, the shared-bottleneck contention
# grid: job count must not change the exported bytes, a deterministic
# interrupt (--max-cells) followed by --resume must land on the one-shot
# bytes, shard halves merged by --report must land on the unsharded bytes,
# and the CLI must reject malformed invocations.
#
#   usage: fairness_smoke.sh /path/to/qperc
set -euo pipefail

QPERC=${1:?usage: fairness_smoke.sh /path/to/qperc}
WORKDIR=$(mktemp -d /tmp/qperc_fairness_smoke.XXXXXX)
trap 'rm -rf "$WORKDIR"' EXIT

# A tiny grid (2 sites x {0,2} flows x {cubic,mixed} = 8 cells, 2 runs each)
# that still covers the contended and the flows=0 baseline paths.
SPEC=(--sites wikipedia.org,apache.org --protocols QUIC --networks DSL
      --flows 0,2 --mix cubic,mixed --runs 2 --seed 7)

echo "== reference: uninterrupted --jobs 1 run"
"$QPERC" fairness "${SPEC[@]}" --jobs 1 \
  --out "$WORKDIR/ref" --export "$WORKDIR/ref.txt" --quiet > /dev/null
test -s "$WORKDIR/ref.txt"

echo "== parallel run must export byte-identical results"
"$QPERC" fairness "${SPEC[@]}" --jobs 4 \
  --out "$WORKDIR/par" --export "$WORKDIR/par.txt" --quiet > /dev/null
cmp "$WORKDIR/ref.txt" "$WORKDIR/par.txt"

echo "== interrupt after 3 of 8 cells, then --resume the rest"
"$QPERC" fairness "${SPEC[@]}" --jobs 1 --checkpoint-every 1 --max-cells 3 \
  --out "$WORKDIR/resume" --quiet > /dev/null
"$QPERC" fairness "${SPEC[@]}" --jobs 2 --resume \
  --out "$WORKDIR/resume" --export "$WORKDIR/resume.txt" --quiet \
  > /dev/null 2> "$WORKDIR/resume.log"
grep -q "resuming — 3 cells" "$WORKDIR/resume.log"
cmp "$WORKDIR/ref.txt" "$WORKDIR/resume.txt"

echo "== shard halves merge to the reference bytes"
"$QPERC" fairness "${SPEC[@]}" --shard 1/2 --jobs 2 \
  --out "$WORKDIR/shards" --quiet > /dev/null
"$QPERC" fairness "${SPEC[@]}" --shard 0/2 --jobs 1 \
  --out "$WORKDIR/shards" --quiet > /dev/null
"$QPERC" fairness "${SPEC[@]}" --report --out "$WORKDIR/shards" \
  --export "$WORKDIR/shards.txt" --quiet > /dev/null
cmp "$WORKDIR/ref.txt" "$WORKDIR/shards.txt"

echo "== variable-rate (lte-trace) policed cell is byte-identical across --jobs"
SCHED=(--sites wikipedia.org --protocols QUIC --networks LTE
       --flows 2 --mix cubic --runs 2 --seed 7
       --link-trace lte --link-trace-seed 3 --policer-rate-mbps 4 --policer-burst-kb 32)
"$QPERC" fairness "${SCHED[@]}" --jobs 1 \
  --out "$WORKDIR/sched1" --export "$WORKDIR/sched1.txt" --quiet > /dev/null
test -s "$WORKDIR/sched1.txt"
"$QPERC" fairness "${SCHED[@]}" --jobs 4 \
  --out "$WORKDIR/sched4" --export "$WORKDIR/sched4.txt" --quiet > /dev/null
cmp "$WORKDIR/sched1.txt" "$WORKDIR/sched4.txt"

echo "== report refuses an incomplete shard set"
"$QPERC" fairness "${SPEC[@]}" --shard 0/3 --jobs 1 \
  --out "$WORKDIR/partial" --quiet > /dev/null
if "$QPERC" fairness "${SPEC[@]}" --report --out "$WORKDIR/partial" \
    > /dev/null 2>&1; then
  echo "FAIL: report accepted a missing shard" >&2; exit 1
fi

echo "== malformed invocations are rejected"
if "$QPERC" fairness --definitely-not-a-flag 2>/dev/null; then
  echo "FAIL: unknown flag was accepted" >&2; exit 1
fi
if "$QPERC" fairness --flows banana 2>/dev/null; then
  echo "FAIL: non-numeric --flows was accepted" >&2; exit 1
fi
if "$QPERC" fairness --mix warp 2>/dev/null; then
  echo "FAIL: unknown --mix was accepted" >&2; exit 1
fi
if "$QPERC" fairness --shard nonsense 2>/dev/null; then
  echo "FAIL: malformed --shard was accepted" >&2; exit 1
fi
if "$QPERC" fairness --runs 0 2>/dev/null; then
  echo "FAIL: zero --runs was accepted" >&2; exit 1
fi

echo "fairness_smoke: OK"
