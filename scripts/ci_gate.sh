#!/usr/bin/env bash
# The full correctness gate, chaining every static and dynamic check in
# dependency order:
#
#   1. determinism lint   scripts/lint_determinism.py --self-test
#   2. hot-path analyzer  scripts/analyze_hotpath.py: fixture self-test, then
#                         the full-tree call-graph scan (alloc-freedom,
#                         purity, stack-budget ratchet) on the shared Release
#                         build's objects
#   3. clang-tidy         scripts/run_clang_tidy.sh (skips if not installed)
#   4. sanitizer matrix   scripts/sanitize_matrix.sh (ASan+UBSan, TSan,
#                         release-with-invariants)
#   5. torture smoke      `qperc torture --seed 1 --grid small` on a Release
#                         build (impairment sweep: liveness + invariants +
#                         byte conservation)
#   6. bench smoke        scripts/bench_baseline.sh --smoke on a -Werror
#                         release build
#   7. study e2e          scripts/study_e2e.sh on the same build: streaming
#                         studies must export byte-identical results across
#                         job counts, checkpoint/kill/resume cycles, and
#                         shard splits merged in any order
#   8. fairness smoke     scripts/fairness_smoke.sh on the same build: the
#                         contention grid must export byte-identical results
#                         across job counts, interrupt/resume, and shard
#                         merges
#   9. alloc ratchet      scripts/bench_baseline.sh --ratchet on the same
#                         build: allocations/trial and the other machine-
#                         independent invariants must not regress past
#                         BENCH_micro.json (timings are ignored)
#
#   scripts/ci_gate.sh [--jobs N] [--skip STAGE[,STAGE...]]
#
# Stages run in order; the first failure stops the gate. Registered as the
# opt-in `ci_gate` ctest via -DQPERC_ENABLE_CI_GATE=ON (see EXPERIMENTS.md);
# opt-in because the matrix rebuilds the tree several times over.
#
# Stages 2 and 6-9 share one Release build (build-gate-release) instead of
# rebuilding four times. The reuse is guarded by a freshness check: a stage
# only trusts the existing binaries if nothing under the source tree is newer
# than they are, otherwise it reconfigures and rebuilds. (The gate used to
# key reuse on the binary merely existing, which silently ran stale binaries
# against new sources when stages were re-run or skipped around.)
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 2

jobs="$(nproc 2>/dev/null || echo 1)"
skip=""
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs) jobs="$2"; shift 2 ;;
    --skip) skip="$2"; shift 2 ;;
    *) echo "ci_gate: unknown argument: $1" >&2; exit 2 ;;
  esac
done

skipped() { case ",$skip," in *",$1,"*) return 0 ;; *) return 1 ;; esac; }

stage() {
  name="$1"
  shift
  if skipped "$name"; then
    echo "ci_gate: ---- $name: SKIP (requested) ----"
    return 0
  fi
  echo "ci_gate: ---- $name ----"
  if ! "$@"; then
    echo "ci_gate: $name FAILED" >&2
    exit 1
  fi
}

# True when $1 exists and no file under the source tree is newer than it.
release_binary_fresh() {
  [ -x "$1" ] || return 1
  [ -z "$(find src tests bench tools examples scripts CMakeLists.txt \
            -type f -newer "$1" -print -quit 2>/dev/null)" ]
}

# Builds (or freshens) the one Release tree the analyzer/bench/study/fairness/
# ratchet stages share. Cheap when already up to date: two stat sweeps.
ensure_release_build() {
  build_dir="build-gate-release"
  if release_binary_fresh "$build_dir/tools/qperc" &&
     release_binary_fresh "$build_dir/bench/bench_micro_perf"; then
    return 0
  fi
  # Gate builds keep -Werror at its default ON: a warning-clean tree is part
  # of the contract (use -DQPERC_WERROR=OFF locally as the escape hatch).
  echo "ci_gate: (re)building $build_dir"
  cmake -S . -B "$build_dir" -DCMAKE_BUILD_TYPE=Release -DQPERC_WERROR=ON > /dev/null || return 1
  cmake --build "$build_dir" -j "$jobs" > /dev/null || return 1
}

stage lint scripts/lint_determinism.py --self-test

analyze_stage() {
  # Hot-path purity analyzer: first the checked-in fixtures (every rule must
  # fire; QPERC_COLD_PATH and allowlist suppression must hold), then the
  # full-tree scan over the Release objects, including the worst-case
  # hot-path stack ratchet against BENCH_micro.json (schema v5).
  scripts/analyze_hotpath.py --self-test || return 1
  ensure_release_build || return 1
  scripts/analyze_hotpath.py --build-dir build-gate-release --ratchet || return 1
}
stage analyze analyze_stage

stage tidy scripts/run_clang_tidy.sh --jobs "$jobs"
stage sanitize scripts/sanitize_matrix.sh --jobs "$jobs"

torture_stage() {
  # Impairment torture sweep on a Release build: the small grid must finish
  # with zero CHECK violations, zero hung trials, and exact byte conservation.
  build_dir="build-gate-torture"
  cmake -S . -B "$build_dir" -DCMAKE_BUILD_TYPE=Release -DQPERC_WERROR=ON > /dev/null || return 1
  cmake --build "$build_dir" -j "$jobs" --target qperc > /dev/null || return 1
  "$build_dir/tools/qperc" torture --seed 1 --grid small || return 1
  rm -rf "$build_dir"
}
stage torture torture_stage

bench_stage() {
  ensure_release_build || return 1
  scripts/bench_baseline.sh --smoke --bench build-gate-release/bench/bench_micro_perf || return 1
}
stage bench bench_stage

study_stage() {
  # Streaming-study end-to-end on the shared release build: byte-identical
  # exports across job counts, checkpoint/kill/resume, and shard merges.
  ensure_release_build || return 1
  scripts/study_e2e.sh build-gate-release/tools/qperc || return 1
}
stage study study_stage

fairness_stage() {
  # Contention-grid end-to-end on the shared release build: byte-identical
  # exports across job counts, interrupt/resume, and shard merges.
  ensure_release_build || return 1
  scripts/fairness_smoke.sh build-gate-release/tools/qperc || return 1
}
stage fairness fairness_stage

ratchet_stage() {
  # Allocation ratchet: the machine-independent invariants in BENCH_micro.json
  # (allocations/trial, steady-state scheduler allocs, re-arm queue depth)
  # must not regress. A new allocation on the trial hot path fails here even
  # on a CI box whose timings are useless.
  ensure_release_build || return 1
  scripts/bench_baseline.sh --ratchet --bench build-gate-release/bench/bench_micro_perf || return 1
  rm -rf build-gate-release
}
stage ratchet ratchet_stage

echo "ci_gate: OK"
