#!/usr/bin/env python3
"""Hot-path purity analyzer: a binary-level proof that nothing reachable from
the trial hot path allocates, reads clocks or the environment, formats
through iostream/locale, or throws — on every code path, before anything
runs.

The bench ratchet (scripts/bench_baseline.sh --ratchet) enforces the
allocation budget *dynamically*: it catches a regression only after the
benchmark executes, and only on the paths the benchmark happens to exercise.
This analyzer closes the gap statically. It reads the compiled object files
(built with `-ffunction-sections -fstack-usage`, which the top-level
CMakeLists enables for GCC/Clang), reconstructs the whole-program call graph
from relocation records — no fragile C++ parsing; symbols are demangled with
c++filt only for reporting and rule matching — and walks reachability from
the declared hot-path roots:

    qperc::core::TrialContext::run            (the per-trial entry point)
    qperc::sim::Simulator::run / run_until    (the event loop)
    (anonymous namespace)::simulate_one       (population-study inner loop)
    (anonymous namespace)::run_cell           (fairness-grid inner loop)

Call-graph construction (see ARCHITECTURE.md "Static analysis"):
  * direct edges: every relocation out of a `.text.*` section, attributed to
    the containing function by symbol-table offset ranges; the disassembly
    stream classifies each site as a call (call/jmp mnemonics) or an
    address-taken reference,
  * virtual calls: constructing an object plants a relocation to the class
    vtable (`_ZTV*`); the analyzer expands that data reference to edges into
    every function the vtable slots reference,
  * function pointers / SmallFunction: storing a callable captures its invoke
    thunk either as a direct code address or through a static ops table
    (`SmallFunction::kInlineOps<F>`); both surface as relocations and expand
    the same way (data references close transitively over data symbols).
  Known blind spots, by design: callables constructed *outside* the hot
  region but invoked inside it (e.g. trace sinks attached by the CLI), and
  anything behind a shared-library boundary other than the recognized sink
  entry points.

Rules enforced on every reachable function:
  alloc        operator new/delete, malloc/realloc/free family, and the
               out-of-line libstdc++ std::string allocation entry points
  wall-clock   clock_gettime/gettimeofday/time and std::chrono::*_clock::now
  getenv       getenv/secure_getenv/std::getenv and setenv/putenv
  locale       std::locale/use_facet/num_put/... and setlocale family
  iostream     std::basic_ostream & friends, stringstreams, printf/stdio,
               and raw read/write/open/close
  throw        __cxa_throw/__cxa_allocate_exception and std::__throw_*

Suppression, in two deliberately different shapes:
  * QPERC_COLD_PATH (src/util/check.hpp) marks a function as off the hot
    path; it compiles to `cold,noinline`, which places the function in a
    `.text.unlikely.*` section — the binary-level marker this analyzer treats
    as a traversal barrier. Annotate genuinely-cold setup/validation/
    reporting functions at the source.
  * scripts/hotpath_allowlist.txt carries reviewed site-level exemptions for
    the budgeted allocations (per-origin sessions, warm-capacity container
    growth, result copy-out). Every entry names the rule, a demangled-symbol
    regex for the function whose body references the banned symbol, and a
    mandatory reason. Traversal continues past an allowlisted site; only the
    one banned reference is excused.

The worst-case hot-path stack budget is summed from the compiler's `.su`
stack-usage records over the hot call graph: the deepest synchronous call
chain from a root, plus the deepest chain of any indirectly-invoked callback
(one level of indirection; nested indirection is bounded by the same callback
term and noted as a blind spot). The result is ratcheted in BENCH_micro.json
(schema v5, `analyzer.hot_path_stack_bytes`) by ci_gate's analyze stage.

Usage:
    scripts/analyze_hotpath.py --build-dir build             # full-tree scan
    scripts/analyze_hotpath.py --build-dir build --ratchet   # + stack ratchet
    scripts/analyze_hotpath.py --build-dir build --write-baseline
    scripts/analyze_hotpath.py --self-test                   # fixture proofs
    scripts/analyze_hotpath.py --list-rules

Exit status: 0 clean, 1 findings or ratchet regression, 2 usage/self-test/
infrastructure failure (missing objects, unmatched root pattern, malformed
allowlist).
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))

# ---------------------------------------------------------------------------
# Rule tables. C-level sinks match raw symbol names exactly; C++ sinks match
# the demangled name. A symbol matching any rule is a "banned sink": reaching
# it from a hot function is a finding unless the referencing site is
# allowlisted or the walk was already cut by a QPERC_COLD_PATH barrier.

C_SINKS = {
    "alloc": {
        "malloc", "calloc", "realloc", "reallocarray", "free", "cfree",
        "aligned_alloc", "posix_memalign", "memalign", "valloc", "pvalloc",
        "strdup", "strndup", "asprintf", "vasprintf",
    },
    "wall-clock": {
        "clock_gettime", "gettimeofday", "time", "clock", "times",
        "timespec_get", "ftime", "nanosleep", "usleep", "sleep",
    },
    "getenv": {"getenv", "secure_getenv", "__secure_getenv", "setenv", "unsetenv", "putenv"},
    "locale": {"setlocale", "uselocale", "newlocale", "duplocale", "freelocale",
               "localeconv", "nl_langinfo"},
    "iostream": {
        "printf", "fprintf", "vfprintf", "dprintf", "sprintf", "vsprintf",
        "snprintf", "vsnprintf", "puts", "fputs", "fputc", "putc", "putchar",
        "fwrite", "fread", "fflush", "fopen", "fclose", "fgets", "fscanf",
        "perror", "write", "read", "open", "close", "lseek",
    },
    # Exception ORIGINATION only: __cxa_rethrow (and _Unwind_Resume) merely
    # propagate an exception that is already in flight — they appear in the
    # cleanup paths of perfectly pure template machinery and would make the
    # rule fire on code that never throws first.
    "throw": {"__cxa_throw", "__cxa_allocate_exception",
              "__cxa_bad_cast", "__cxa_bad_typeid"},
}

CXX_SINKS = [
    ("alloc", r"^operator new"),
    ("alloc", r"^operator delete"),
    # Out-of-line libstdc++ string entry points: the operator new they call
    # lives inside libstdc++.so and is invisible to relocation scanning, so
    # the entry points themselves are the sinks. _M_dispose (the free side)
    # counts too: a hot path touching it owned an allocation moments before.
    ("alloc", r"^std::__cxx11::basic_string<.*>::(?:_M_create|_M_construct|_M_mutate"
              r"|_M_replace|_M_append|_M_assign|_M_dispose|append|assign|insert"
              r"|push_back|reserve|resize|operator\+?=)"),
    ("alloc", r"^std::__cxx11::to_string"),
    ("wall-clock", r"^std::chrono::_V2::(?:system|steady)_clock::now"),
    ("getenv", r"^std::getenv"),
    ("locale", r"^std::(?:locale|use_facet|has_facet|__try_use_facet|ctype"
               r"|num_put|num_get|numpunct|moneypunct|money_put|money_get)"),
    ("iostream", r"^std::basic_[io]stream|^std::basic_ios<|^std::ios_base"
                 r"|^std::basic_(?:string|file|stream)buf|^std::basic_[io]?f?stream"
                 r"|^std::basic_[io]?stringstream|^std::__ostream_insert"
                 r"|^std::endl|^std::flush|^std::operator<<|^std::operator>>"
                 r"|^std::cout$|^std::cerr$|^std::clog$|^std::cin$"),
    ("throw", r"^std::__throw_"),
]
CXX_SINKS = [(rule, re.compile(pattern)) for rule, pattern in CXX_SINKS]

ALL_RULES = ("alloc", "wall-clock", "getenv", "locale", "iostream", "throw")

RULE_HELP = {
    "alloc": "operator new/delete, malloc family, libstdc++ string growth",
    "wall-clock": "clock_gettime/gettimeofday/time, std::chrono::*_clock::now",
    "getenv": "getenv/secure_getenv/std::getenv, setenv/putenv",
    "locale": "std::locale/facets, setlocale family",
    "iostream": "ostream/stringstream formatting, printf/stdio, raw read/write",
    "throw": "__cxa_throw/__cxa_allocate_exception, std::__throw_*",
}

DEFAULT_ROOTS = [
    ("trial-context", r"^qperc::core::TrialContext::run\("),
    ("simulator-run", r"^qperc::sim::Simulator::(?:run|run_until)\("),
    ("study-participant", r"\(anonymous namespace\)::simulate_one\("),
    ("fairness-cell", r"\(anonymous namespace\)::run_cell\("),
]

# Sections whose symbols are traversal barriers: GCC places
# __attribute__((cold)) functions (QPERC_COLD_PATH) and its own
# expect-guided out-of-line failure paths in .text.unlikely; .text.startup /
# .text.exit hold static (de)initializers, which never run inside a trial.
COLD_SECTION_PREFIXES = (".text.unlikely", ".text.startup", ".text.exit")

# Data sections worth expanding into function edges (vtables, ops tables,
# jump tables). EH/debug metadata reference code too but only describe it.
DATA_SECTION_PREFIXES = (".data", ".rodata", ".bss")

RELOC_TARGET_RE = re.compile(r"^(?P<sym>[^+\-]+)(?:(?P<sign>[+\-])0x(?P<add>[0-9a-f]+))?$")
PC_RELATIVE_TYPES = ("PC32", "PLT32", "GOTPCREL", "GOTPCRELX", "REX_GOTPCRELX", "PC64")


def run_cmd(args):
    proc = subprocess.run(args, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        raise RuntimeError(f"{' '.join(args)} failed: {proc.stderr.strip()}")
    return proc.stdout


class Analysis:
    """Parsed object facts plus the derived call graph for one set of .o files."""

    def __init__(self):
        # uid -> dict(section=..., size=..., obj=..., local=bool, func=bool, value=int)
        self.symbols = {}
        # (obj_idx, section) -> sorted [(value, size, uid)] of defined symbols
        self.section_syms = {}
        # uid -> set of (target_uid_or_name, kind); kind in {"call", "ref"}
        self.edges = {}
        # data uid -> set of raw (target, addend, pc_relative, obj_idx) tuples
        self.data_relocs = {}
        self.objects = []
        self.su_bytes = {}        # su_key -> max bytes
        self.su_dynamic = set()   # su_key with unbounded-dynamic qualifier
        self.demangled = {}       # raw symbol -> demangled
        self.aliases = {}         # alias uid -> canonical same-address uid

    def resolve(self, uid):
        """Canonicalizes same-address symbol aliases (C1/C2 constructors)."""
        return self.aliases.get(uid, uid)

    # -- symbol identity ----------------------------------------------------

    def uid(self, sym, obj_idx, local):
        # Local (anonymous-namespace / static) symbols share mangled names
        # across TUs but are distinct functions; namespace them per object.
        return f"{sym}@{obj_idx}" if local else sym

    def raw_name(self, uid):
        return uid.rsplit("@", 1)[0] if "@" in uid else uid

    def dname(self, uid):
        raw = self.raw_name(uid)
        return self.demangled.get(raw, raw)


def parse_symbol_table(analysis, obj_idx, path):
    """objdump -t: defined symbols with section, value, size."""
    out = run_cmd(["objdump", "-t", path])
    sym_re = re.compile(r"^([0-9a-f]+)\s+(.{7})\s+(\S+)\t([0-9a-f]+)\s+(?:\.hidden\s+)?(\S+)$")
    for line in out.splitlines():
        m = sym_re.match(line)
        if not m:
            continue
        value, flags, section, size, name = m.groups()
        if section in ("*UND*", "*ABS*", "*COM*"):
            continue
        is_func = "F" in flags
        is_obj = "O" in flags
        if not is_func and not is_obj:
            # Section symbols and debug labels carry no identity we need.
            continue
        local = flags.startswith("l")
        uid = analysis.uid(name, obj_idx, local)
        entry = {
            "section": section,
            "value": int(value, 16),
            "size": int(size, 16),
            "obj": obj_idx,
            "local": local,
            "func": is_func,
        }
        # Comdat/weak symbols recur across objects with identical bodies;
        # first definition wins and edge sets merge below.
        if uid not in analysis.symbols:
            analysis.symbols[uid] = entry
        analysis.section_syms.setdefault((obj_idx, section), []).append(
            (entry["value"], entry["size"], uid))
    for key in analysis.section_syms:
        analysis.section_syms[key].sort()


def symbol_at(analysis, obj_idx, section, offset):
    """Resolves (section, offset) to the defined symbol covering offset."""
    entries = analysis.section_syms.get((obj_idx, section))
    if not entries:
        return None
    best = None
    for value, size, uid in entries:
        if value <= offset and (offset < value + size or size == 0):
            best = uid
        elif value > offset:
            break
    return best


def parse_reloc_target(analysis, obj_idx, value, rtype):
    """Returns (uid-or-raw-symbol, None) or (None, None) for ignorable targets."""
    m = RELOC_TARGET_RE.match(value)
    if not m:
        return None
    sym = m.group("sym")
    addend = int(m.group("add") or "0", 16)
    if m.group("sign") == "-":
        addend = -addend
    if any(rtype.endswith(t) for t in PC_RELATIVE_TYPES):
        addend += 4  # call/lea displacement targets (sym + addend + 4)
    if sym.startswith(".L"):
        return None  # local literal/jump-table label without symbol identity
    if sym.startswith("."):
        # Section-relative target: resolve to the covering defined symbol.
        resolved = symbol_at(analysis, obj_idx, sym, addend)
        if resolved is not None:
            return resolved
        # A data section with no covering symbol: treat the section itself as
        # a data node so its relocations still expand (jump tables).
        if sym.startswith(DATA_SECTION_PREFIXES):
            return f"{sym}@sect@{obj_idx}"
        return None
    # Direct symbol target: prefer this object's local definition, else the
    # global name (defined elsewhere or extern).
    local_uid = f"{sym}@{obj_idx}"
    if local_uid in analysis.symbols:
        return local_uid
    return sym


def parse_text_edges(analysis, obj_idx, path):
    """objdump -dr --no-show-raw-insn: call/ref edges out of text sections."""
    out = run_cmd(["objdump", "-dr", "--no-show-raw-insn", path])
    section = None
    last_mnemonic = ""
    last_offset = 0
    insn_re = re.compile(r"^\s+([0-9a-f]+):\t\s*(\S+)")
    reloc_re = re.compile(r"^\s+([0-9a-f]+):\s+(R_\S+)\t(.+)$")
    for line in out.splitlines():
        if line.startswith("Disassembly of section "):
            section = line[len("Disassembly of section "):].rstrip(":")
            continue
        if section is None or not section.startswith(".text"):
            continue
        rm = reloc_re.match(line)
        if rm:
            _, rtype, value = rm.groups()
            src = symbol_at(analysis, obj_idx, section, last_offset)
            if src is None:
                continue
            target = parse_reloc_target(analysis, obj_idx, value.strip(), rtype)
            if target is None or target == src:
                continue
            kind = "call" if last_mnemonic.startswith(("call", "jmp")) else "ref"
            analysis.edges.setdefault(src, set()).add((target, kind))
            continue
        im = insn_re.match(line)
        if im and not line.rstrip().endswith(">:"):
            last_offset = int(im.group(1), 16)
            last_mnemonic = im.group(2)


def parse_data_relocs(analysis, obj_idx, path):
    """objdump -r: relocation records of data sections (vtables, ops tables)."""
    out = run_cmd(["objdump", "-r", path])
    section = None
    header_re = re.compile(r"^RELOCATION RECORDS FOR \[(.+)\]:$")
    reloc_re = re.compile(r"^([0-9a-f]+)\s+(\S+)\s+(.+)$")
    for line in out.splitlines():
        hm = header_re.match(line)
        if hm:
            name = hm.group(1)
            section = name if name.startswith(DATA_SECTION_PREFIXES) else None
            continue
        if section is None:
            continue
        rm = reloc_re.match(line)
        if not rm:
            continue
        offset, rtype, value = rm.groups()
        offset = int(offset, 16)
        target = parse_reloc_target(analysis, obj_idx, value.strip(), rtype)
        if target is None:
            continue
        holder = symbol_at(analysis, obj_idx, section, offset)
        if holder is None:
            holder = f"{section}@sect@{obj_idx}"
        analysis.data_relocs.setdefault(holder, set()).add(target)


SU_LINE_RE = re.compile(r"^(?P<loc>[^\t]*:\d+:\d+:)(?P<sig>[^\t]+)\t(?P<bytes>\d+)\t(?P<qual>.+)$")


def su_key(signature):
    """Normalizes a function signature to `Qualified::name` (no return type,
    no parameters) so GCC's .su spellings and c++filt's agree. Overloads
    collapse to one key; the max stack among them is used (conservative)."""
    # GCC spells anonymous namespaces `{anonymous}` in .su records; c++filt
    # says `(anonymous namespace)`. Canonicalize before matching.
    sig = signature.strip().replace("{anonymous}", "(anonymous namespace)")
    end = sig.rfind(")")
    if end != -1:
        # Find the matching '(' of the final parameter list.
        depth = 0
        open_idx = -1
        for i in range(end, -1, -1):
            c = sig[i]
            if c == ")":
                depth += 1
            elif c == "(":
                depth -= 1
                if depth == 0:
                    open_idx = i
                    break
        if open_idx > 0:
            prefix = sig[:open_idx].rstrip()
            # `operator()` keeps its own parens: strip one more group.
            if prefix.endswith("operator"):
                prefix = sig[:open_idx].rstrip()
            sig = prefix
    # Last whitespace-separated token, where whitespace inside <>/() nesting
    # does not split (template args, lambda signatures).
    depth = 0
    start = 0
    for i in range(len(sig) - 1, -1, -1):
        c = sig[i]
        if c in ">)":
            depth += 1
        elif c in "<(":
            depth -= 1
        elif c == " " and depth <= 0:
            start = i + 1
            break
    return sig[start:].lstrip("*&")


def parse_su_file(analysis, su_path):
    try:
        with open(su_path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError:
        return
    for line in text.splitlines():
        m = SU_LINE_RE.match(line)
        if not m:
            continue
        key = su_key(m.group("sig"))
        size = int(m.group("bytes"))
        analysis.su_bytes[key] = max(analysis.su_bytes.get(key, 0), size)
        if "dynamic" in m.group("qual") and "bounded" not in m.group("qual"):
            analysis.su_dynamic.add(key)


def demangle_all(analysis):
    names = sorted({analysis.raw_name(uid) for uid in analysis.symbols} |
                   {analysis.raw_name(t) for targets in analysis.edges.values()
                    for t, _ in targets if "@sect@" not in t} |
                   {analysis.raw_name(t) for targets in analysis.data_relocs.values()
                    for t in targets if "@sect@" not in t})
    if not names:
        return
    cxxfilt = shutil.which("c++filt")
    if cxxfilt is None:
        analysis.demangled = {n: n for n in names}
        return
    proc = subprocess.run([cxxfilt], input="\n".join(names) + "\n",
                          stdout=subprocess.PIPE, text=True, check=True)
    demangled = proc.stdout.splitlines()
    analysis.demangled = dict(zip(names, demangled))


def unify_aliases(analysis):
    """Maps same-address function symbols onto one canonical node.

    GCC emits complete- and base-object constructors (C1/C2 — likewise D1/D2
    destructors) as two global symbols at the same address in the same
    section. objdump attributes the section's instructions, and therefore
    every outgoing edge we parse, to only one of them, while callers
    elsewhere in the tree may relocate against the other. Without
    unification the walk reaches the edgeless alias and silently dead-ends —
    everything a constructor registers (callback tables, timers) would
    escape analysis. Canonical is whatever symbol_at() picks, i.e. the same
    symbol edge attribution used."""
    for (obj_idx, section), entries in analysis.section_syms.items():
        funcs_by_value = {}
        for value, _size, uid in entries:
            entry = analysis.symbols.get(uid)
            if entry is None or not entry["func"] or entry["obj"] != obj_idx:
                continue
            funcs_by_value.setdefault(value, []).append(uid)
        for value, uids in funcs_by_value.items():
            if len(uids) < 2:
                continue
            canonical = symbol_at(analysis, obj_idx, section, value)
            for uid in uids:
                if canonical is not None and uid != canonical:
                    analysis.aliases[uid] = canonical


def prune_atexit_destructor_refs(analysis):
    """Drops destructor *ref* edges out of functions that call __cxa_atexit.

    The guard-init path of a function-local static takes the address of the
    object's destructor purely to register it for process exit; that
    destructor never runs on the hot path. GCC schedules the address load
    tens of instructions away from the __cxa_atexit call, so this keys on
    the pair (function calls atexit, function refs a destructor) rather
    than instruction adjacency. Genuine destruction is a call edge — or an
    inlined body — and is untouched; a destructor stored into a live
    callback table would be exotic enough to deserve the manual review this
    forgoes."""
    atexit_calls = {("__cxa_atexit", "call"), ("atexit", "call")}
    for edges in analysis.edges.values():
        if not (edges & atexit_calls):
            continue
        drop = {e for e in edges
                if e[1] == "ref" and "::~" in analysis.dname(e[0])}
        edges -= drop


def load_objects(paths):
    analysis = Analysis()
    for obj_idx, path in enumerate(sorted(paths)):
        analysis.objects.append(path)
        parse_symbol_table(analysis, obj_idx, path)
    unify_aliases(analysis)
    # Two passes: symbol ranges for every object must exist before edge
    # attribution (relocations can reference other objects' globals).
    for obj_idx, path in enumerate(analysis.objects):
        parse_text_edges(analysis, obj_idx, path)
        parse_data_relocs(analysis, obj_idx, path)
        su_path = re.sub(r"\.(?:o|obj)$", ".su", path)
        if su_path != path:
            parse_su_file(analysis, su_path)
    demangle_all(analysis)
    prune_atexit_destructor_refs(analysis)
    return analysis


# ---------------------------------------------------------------------------
# Allowlist: reviewed site-level exemptions with mandatory reasons.

class AllowEntry:
    def __init__(self, rules, pattern, reason, line_no):
        self.rules = rules          # set of rule names, or {"*"}
        self.pattern = re.compile(pattern)
        self.pattern_text = pattern
        self.reason = reason
        self.line_no = line_no
        self.hits = 0

    def covers(self, rule, demangled_site):
        if "*" not in self.rules and rule not in self.rules:
            return False
        return bool(self.pattern.search(demangled_site))


def load_allowlist(path_or_lines, label="allowlist"):
    if isinstance(path_or_lines, str):
        with open(path_or_lines, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        label = path_or_lines
    else:
        lines = path_or_lines
    entries = []
    for idx, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "#" not in line:
            raise ValueError(f"{label}:{idx}: allowlist entry has no '# reason' "
                             f"(every exemption must say why): {line}")
        body, reason = line.split("#", 1)
        reason = reason.strip()
        if not reason:
            raise ValueError(f"{label}:{idx}: allowlist entry has an empty reason")
        parts = body.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"{label}:{idx}: expected '<rule(s)> <site-regex>  # reason'")
        rules = {r.strip() for r in parts[0].split(",")}
        unknown = rules - set(ALL_RULES) - {"*"}
        if unknown:
            raise ValueError(f"{label}:{idx}: unknown rule(s) {sorted(unknown)} "
                             f"(valid: {', '.join(ALL_RULES)}, or *)")
        try:
            entries.append(AllowEntry(rules, parts[1].strip(), reason, idx))
        except re.error as e:
            raise ValueError(f"{label}:{idx}: bad regex: {e}") from e
    return entries


# ---------------------------------------------------------------------------
# The walk.

class Finding:
    def __init__(self, rule, chain, sink):
        self.rule = rule
        self.chain = chain  # list of uids, root first, site last
        self.sink = sink    # raw banned symbol name

    def render(self, analysis):
        pretty = [analysis.dname(uid) for uid in self.chain]
        pretty.append(analysis.demangled.get(self.sink, self.sink))
        head = f"[{self.rule}] {pretty[-2]} reaches {pretty[-1]}"
        arrows = "\n".join(f"    {'-> ' if i else '   '}{name}"
                           for i, name in enumerate(pretty))
        return head + "\n" + arrows


def banned_rule(analysis, uid):
    raw = analysis.raw_name(uid)
    if "@sect@" in raw:
        return None
    for rule, names in C_SINKS.items():
        if raw in names:
            return rule
    demangled = analysis.demangled.get(raw, raw)
    for rule, pattern in CXX_SINKS:
        if pattern.search(demangled):
            return rule
    return None


def is_cold(analysis, uid):
    entry = analysis.symbols.get(uid)
    if entry is None:
        return False
    return entry["section"].startswith(COLD_SECTION_PREFIXES)


def expand_data_node(analysis, uid, out, seen, depth=0):
    """Transitively collects function symbols referenced by a data node
    (vtable -> methods, ops table -> invoke thunks, RTTI chains -> nothing)."""
    if uid in seen or depth > 4:
        return
    seen.add(uid)
    for target in analysis.data_relocs.get(uid, ()):
        entry = analysis.symbols.get(target)
        if entry is not None and entry["func"]:
            out.add(target)
        elif entry is not None:
            expand_data_node(analysis, target, out, seen, depth + 1)
        elif banned_rule(analysis, target):
            out.add(target)  # extern banned data (std::cout) still counts


class WalkResult:
    def __init__(self):
        self.findings = []
        self.hot = set()            # reachable, traversed functions
        self.via_ref = set()        # hot functions first reached indirectly
        self.call_edges = {}        # uid -> set(uid), hot call edges
        self.cold_barriers = set()  # cold functions that cut the walk
        self.suppressed = []        # (entry, rule, site_uid, sink)
        self.parents = {}


def walk(analysis, roots, allowlist):
    result = WalkResult()
    queue = list(roots)
    for r in roots:
        result.parents[r] = None
        result.hot.add(r)

    def chain_of(uid):
        chain = []
        cur = uid
        while cur is not None:
            chain.append(cur)
            cur = result.parents.get(cur)
        return list(reversed(chain))

    seen_findings = set()
    while queue:
        src = queue.pop(0)
        targets = set(analysis.edges.get(src, ()))
        # Expand data references into (potential) function targets.
        expanded = set()
        for target, kind in sorted(targets):
            entry = analysis.symbols.get(target)
            if entry is not None and not entry["func"]:
                fns = set()
                expand_data_node(analysis, target, fns, set())
                for fn in fns:
                    expanded.add((fn, "ref"))
            elif entry is None and "@sect@" in target:
                fns = set()
                expand_data_node(analysis, target, fns, set())
                for fn in fns:
                    expanded.add((fn, "ref"))
            else:
                expanded.add((target, kind))
        for target, kind in sorted(expanded):
            # Same-address aliases (C1/C2 constructors): follow the node
            # that actually carries the section's edges.
            target = analysis.resolve(target)
            if is_cold(analysis, target):
                result.cold_barriers.add(target)
                continue
            rule = banned_rule(analysis, target)
            if rule is not None:
                site_name = analysis.dname(src)
                hit = next((e for e in allowlist if e.covers(rule, site_name)), None)
                if hit is not None:
                    hit.hits += 1
                    result.suppressed.append((hit, rule, src, analysis.raw_name(target)))
                    continue
                key = (rule, src, analysis.raw_name(target))
                if key not in seen_findings:
                    seen_findings.add(key)
                    result.findings.append(
                        Finding(rule, chain_of(src), analysis.raw_name(target)))
                continue
            entry = analysis.symbols.get(target)
            if entry is None or not entry["func"]:
                continue  # extern, non-banned: no body to analyze
            if kind == "call" and src in result.hot:
                result.call_edges.setdefault(src, set()).add(target)
            if target not in result.hot:
                result.hot.add(target)
                result.parents[target] = src
                if kind == "ref":
                    result.via_ref.add(target)
                queue.append(target)
    return result


# ---------------------------------------------------------------------------
# Stack budget.

class StackReport:
    def __init__(self):
        self.root_depth = 0
        self.root_chain = []
        self.callback_depth = 0
        self.callback_chain = []
        self.total = 0
        self.matched = 0
        self.unmatched = 0
        self.cycles = []
        self.dynamic = []


def stack_budget(analysis, walk_result, roots):
    report = StackReport()
    frame = {}
    for uid in sorted(walk_result.hot):
        key = su_key(analysis.dname(uid))
        if key in analysis.su_bytes:
            frame[uid] = analysis.su_bytes[key]
            report.matched += 1
            if key in analysis.su_dynamic:
                report.dynamic.append(uid)
        else:
            frame[uid] = 0
            report.unmatched += 1

    memo = {}
    on_stack = set()

    def depth(uid):
        if uid in memo:
            return memo[uid]
        if uid in on_stack:
            report.cycles.append(uid)
            return (0, ())
        on_stack.add(uid)
        best = (0, ())
        for nxt in sorted(walk_result.call_edges.get(uid, ())):
            d, chain = depth(nxt)
            if d > best[0]:
                best = (d, chain)
        on_stack.discard(uid)
        memo[uid] = (frame[uid] + best[0], (uid,) + best[1])
        return memo[uid]

    for root in sorted(roots):
        d, chain = depth(root)
        if d > report.root_depth:
            report.root_depth, report.root_chain = d, list(chain)
    for uid in sorted(walk_result.via_ref):
        d, chain = depth(uid)
        if d > report.callback_depth:
            report.callback_depth, report.callback_chain = d, list(chain)
    report.total = report.root_depth + report.callback_depth
    return report


# ---------------------------------------------------------------------------
# Full-tree scan plumbing.

def find_tree_objects(build_dir):
    objects = []
    src_root = os.path.join(build_dir, "src")
    for dirpath, _dirnames, filenames in os.walk(src_root):
        if "CMakeFiles" not in dirpath:
            continue
        for name in sorted(filenames):
            if name.endswith(".o"):
                objects.append(os.path.join(dirpath, name))
    return sorted(objects)


def resolve_roots(analysis, root_patterns):
    roots = []
    problems = []
    for name, pattern in root_patterns:
        regex = re.compile(pattern)
        matched = [analysis.resolve(uid) for uid in sorted(analysis.symbols)
                   if analysis.symbols[uid]["func"] and regex.search(analysis.dname(uid))
                   and not is_cold(analysis, uid)]
        if not matched:
            problems.append(f"root pattern '{name}' ({pattern}) matched no defined function "
                            f"— was the hot-path entry point renamed?")
        roots.extend(matched)
    return sorted(set(roots)), problems


def scan_tree(args):
    build_dir = os.path.abspath(args.build_dir)
    objects = find_tree_objects(build_dir)
    if not objects:
        print(f"analyze_hotpath: no objects under {build_dir}/src — build first "
              f"(cmake --build {args.build_dir})", file=sys.stderr)
        return 2
    analysis = load_objects(objects)
    if not analysis.su_bytes:
        print("analyze_hotpath: no .su stack-usage records next to the objects — "
              "reconfigure so -fstack-usage is active (a stale build dir predating "
              "the analyzer flags must be re-created)", file=sys.stderr)
        return 2

    try:
        allowlist = load_allowlist(args.allowlist)
    except (OSError, ValueError) as e:
        print(f"analyze_hotpath: {e}", file=sys.stderr)
        return 2

    root_patterns = list(DEFAULT_ROOTS)
    for extra in args.root:
        root_patterns.append((f"cli:{extra}", extra))
    roots, problems = resolve_roots(analysis, root_patterns)
    if problems:
        for p in problems:
            print(f"analyze_hotpath: {p}", file=sys.stderr)
        return 2

    result = walk(analysis, roots, allowlist)
    stack = stack_budget(analysis, result, roots)

    print(f"analyze_hotpath: {len(objects)} objects, {len(analysis.symbols)} symbols, "
          f"{len(roots)} hot-path roots, {len(result.hot)} reachable hot functions, "
          f"{len(result.cold_barriers)} cold barriers")
    if args.verbose:
        for uid in sorted(roots, key=analysis.dname):
            print(f"  root: {analysis.dname(uid)}")
        for entry, rule, site, sink in result.suppressed:
            print(f"  allow[{rule}] {analysis.dname(site)} -> "
                  f"{analysis.demangled.get(sink, sink)} ({entry.reason})")

    used = {}
    for entry, _rule, _site, _sink in result.suppressed:
        used[entry.line_no] = used.get(entry.line_no, 0) + 1
    print(f"analyze_hotpath: {len(result.suppressed)} banned references excused by "
          f"{len(used)} allowlist entries")
    for entry in allowlist:
        if entry.hits == 0:
            print(f"analyze_hotpath: WARNING unused allowlist entry "
                  f"(line {entry.line_no}): {entry.pattern_text}")

    print(f"analyze_hotpath: stack: root chain {stack.root_depth} B + callback chain "
          f"{stack.callback_depth} B = {stack.total} B "
          f"({stack.matched} frames matched, {stack.unmatched} without .su records)")
    if args.verbose:
        for title, chain in (("root", stack.root_chain), ("callback", stack.callback_chain)):
            print(f"  deepest {title} chain:")
            for uid in chain:
                key = su_key(analysis.dname(uid))
                print(f"    {analysis.su_bytes.get(key, 0):6d} B  {analysis.dname(uid)}")
    for uid in stack.dynamic:
        print(f"analyze_hotpath: WARNING unbounded dynamic stack use in {analysis.dname(uid)}")
    if stack.cycles:
        uniq = sorted({analysis.dname(uid) for uid in stack.cycles})
        print(f"analyze_hotpath: WARNING {len(uniq)} recursion cycle(s) in the hot call "
              f"graph; each counted once in the budget: {', '.join(uniq[:4])}"
              + (" ..." if len(uniq) > 4 else ""))

    status = 0
    if result.findings:
        print(f"analyze_hotpath: {len(result.findings)} finding(s):")
        for finding in result.findings[:args.max_findings]:
            print(finding.render(analysis))
        if len(result.findings) > args.max_findings:
            print(f"analyze_hotpath: ... {len(result.findings) - args.max_findings} more "
                  f"(raise --max-findings)")
        status = 1

    baseline_path = os.path.join(REPO_ROOT, "BENCH_micro.json")
    if args.write_baseline:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        # The bench metrics own the schema version; only stamp one on a
        # freshly created file (schema v5 introduced the analyzer section).
        doc.setdefault("schema", "qperc-bench-micro-v5")
        doc.setdefault("analyzer", {})["hot_path_stack_bytes"] = stack.total
        with open(baseline_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"analyze_hotpath: wrote analyzer.hot_path_stack_bytes={stack.total} "
              f"to BENCH_micro.json")
    elif args.ratchet:
        try:
            with open(baseline_path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            budget = doc["analyzer"]["hot_path_stack_bytes"]
        except (OSError, KeyError, json.JSONDecodeError):
            print("analyze_hotpath: BENCH_micro.json has no analyzer.hot_path_stack_bytes "
                  "(schema v5) — run scripts/analyze_hotpath.py --build-dir <release-build> "
                  "--write-baseline to establish the stack budget", file=sys.stderr)
            return 2
        verdict = "ok" if stack.total <= budget else "FAIL"
        print(f"analyze_hotpath: {verdict:4s} hot_path_stack_bytes baseline={budget} "
              f"current={stack.total} (ratchet)")
        if stack.total > budget:
            print("analyze_hotpath: the worst-case hot-path stack grew; shrink the new "
                  "frames or re-bank deliberately with --write-baseline", file=sys.stderr)
            status = max(status, 1)

    print("analyze_hotpath: " + ("FAILED" if status else "OK"))
    return status


# ---------------------------------------------------------------------------
# Self-test over the checked-in fixture tree (tests/analyze). Each fixture is
# a standalone TU compiled with the same flags as the real build and pushed
# through the full pipeline; expectations are declared inline:
#
#   // analyze-root: <demangled regex>            (at least one per fixture)
#   // analyze-expect: <rule> <chain substring>
#   // analyze-expect-clean
#   // analyze-expect-cold-barrier
#   // analyze-allow: <rule> <site-regex> # <reason>
#   // analyze-expect-suppressed: <rule>
#   // analyze-expect-stack-min: <bytes>

def compile_fixture(path, tmpdir):
    compiler = shutil.which("g++") or shutil.which("c++") or shutil.which("clang++")
    if compiler is None:
        raise RuntimeError("no C++ compiler on PATH for fixture compilation")
    obj = os.path.join(tmpdir, os.path.basename(path) + ".o")
    cmd = [compiler, "-std=c++20", "-O2", "-c", "-ffunction-sections", "-fstack-usage",
           "-I", os.path.join(REPO_ROOT, "src"), "-o", obj, path]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        raise RuntimeError(f"fixture {os.path.basename(path)} failed to compile:\n{proc.stderr}")
    return obj


def run_fixture(path, tmpdir):
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    roots = re.findall(r"//\s*analyze-root:\s*(.+)$", text, re.M)
    expects = re.findall(r"//\s*analyze-expect:\s*(\S+)\s+(.+)$", text, re.M)
    expect_clean = bool(re.search(r"//\s*analyze-expect-clean", text))
    expect_barrier = bool(re.search(r"//\s*analyze-expect-cold-barrier", text))
    allows = re.findall(r"//\s*analyze-allow:\s*(.+)$", text, re.M)
    expect_suppressed = re.findall(r"//\s*analyze-expect-suppressed:\s*(\S+)", text)
    stack_min = re.search(r"//\s*analyze-expect-stack-min:\s*(\d+)", text)
    if not roots:
        return [f"{os.path.basename(path)}: fixture declares no analyze-root"]

    failures = []
    obj = compile_fixture(path, tmpdir)
    analysis = load_objects([obj])
    allowlist = load_allowlist(allows, label=os.path.basename(path))
    resolved, problems = resolve_roots(analysis, [(f"fixture:{r}", r) for r in roots])
    if problems:
        return [f"{os.path.basename(path)}: {p}" for p in problems]
    result = walk(analysis, resolved, allowlist)
    stack = stack_budget(analysis, result, resolved)

    rendered = [f.render(analysis) for f in result.findings]
    for rule, substring in expects:
        hit = any(f.rule == rule and substring in text_r
                  for f, text_r in zip(result.findings, rendered))
        if not hit:
            failures.append(f"{os.path.basename(path)}: expected a [{rule}] finding whose "
                            f"chain mentions '{substring}'; got:\n" +
                            ("\n".join(rendered) or "  (no findings)"))
    if expect_clean and result.findings:
        failures.append(f"{os.path.basename(path)}: expected a clean result; got:\n" +
                        "\n".join(rendered))
    if expect_barrier and not result.cold_barriers:
        failures.append(f"{os.path.basename(path)}: expected the walk to stop at a "
                        f"QPERC_COLD_PATH barrier, but none was hit")
    for rule in expect_suppressed:
        if not any(r == rule for _e, r, _s, _k in result.suppressed):
            failures.append(f"{os.path.basename(path)}: expected an allowlist suppression "
                            f"for rule {rule}")
    if stack_min:
        want = int(stack_min.group(1))
        if stack.total < want:
            failures.append(f"{os.path.basename(path)}: expected stack budget >= {want} B, "
                            f"computed {stack.total} B")
    return failures


def run_self_test(fixture_dir):
    fixtures = sorted(
        os.path.join(fixture_dir, f) for f in os.listdir(fixture_dir)
        if f.startswith("fixture_") and f.endswith(".cpp"))
    if not fixtures:
        print(f"analyze_hotpath: no fixtures under {fixture_dir}", file=sys.stderr)
        return False
    failures = []
    with tempfile.TemporaryDirectory(prefix="qperc-analyze-selftest-") as tmp:
        for path in fixtures:
            try:
                failures.extend(run_fixture(path, tmp))
            except (RuntimeError, ValueError) as e:
                failures.append(str(e))
    # Allowlist hygiene is part of the proof: entries without reasons must be
    # rejected, unknown rules must be rejected.
    try:
        load_allowlist(["alloc ^foo$"], label="selftest")
        failures.append("allowlist entry without a reason was accepted")
    except ValueError:
        pass
    try:
        load_allowlist(["not-a-rule ^foo$ # why"], label="selftest")
        failures.append("allowlist entry with an unknown rule was accepted")
    except ValueError:
        pass
    for line in failures:
        print(f"analyze_hotpath: self-test FAILED: {line}", file=sys.stderr)
    if not failures:
        print(f"analyze_hotpath: self-test OK ({len(fixtures)} fixtures: every rule "
              f"fires, cold-path and allowlist suppression hold)")
    return not failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", help="build directory whose src objects to scan")
    parser.add_argument("--allowlist",
                        default=os.path.join(REPO_ROOT, "scripts", "hotpath_allowlist.txt"),
                        help="reviewed exemption file (default scripts/hotpath_allowlist.txt)")
    parser.add_argument("--root", action="append", default=[],
                        help="additional hot-path root (demangled-name regex)")
    parser.add_argument("--ratchet", action="store_true",
                        help="compare the stack budget against BENCH_micro.json (schema v5)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="bank the computed stack budget into BENCH_micro.json")
    parser.add_argument("--self-test", action="store_true",
                        help="compile the tests/analyze fixtures and prove every rule "
                             "fires and every suppression works")
    parser.add_argument("--fixture-dir", default=os.path.join(REPO_ROOT, "tests", "analyze"),
                        help="fixture directory for --self-test")
    parser.add_argument("--max-findings", type=int, default=25,
                        help="cap on printed findings (default 25)")
    parser.add_argument("--verbose", action="store_true",
                        help="print roots, suppressions, and the deepest stack chains")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule:12s} {RULE_HELP[rule]}")
        return 0

    if args.self_test:
        if not run_self_test(args.fixture_dir):
            return 2
        if args.build_dir is None:
            return 0

    if args.build_dir is None:
        parser.error("--build-dir is required unless --self-test/--list-rules")
    return scan_tree(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
