#!/usr/bin/env python3
"""Determinism lint for the qperc simulator core.

Every qperc result (Table 1 orderings, golden bit-exactness, campaign
ResultStore checksums) depends on the simulator being perfectly
deterministic: same seed, same bytes, on every run and every machine. This
linter statically bans the ways nondeterminism usually sneaks into C++
simulation code. It scans src/ (headers and sources) and fails on:

  random-device             std::random_device (hardware entropy)
  libc-rand                 rand()/srand()/random()/drand48() (global hidden
                            state, implementation-defined sequences)
  wall-clock                std::chrono::{system,steady,high_resolution}_clock,
                            time()/clock()/gettimeofday()/clock_gettime() —
                            wall time must never reach simulation state
  unordered-container       std::unordered_{map,set,multimap,multiset}:
                            iteration order is hash-seed- and
                            libstdc++-version-dependent, and quietly reaches
                            the event schedule (use std::map / sorted vectors)
  pointer-keyed-container   std::map/std::set keyed by a pointer: ASLR makes
                            the iteration order differ between runs
  getenv                    getenv()/std::getenv(): environment reads are
                            host-dependent and must never feed simulation
                            state; pass configuration explicitly
  uninitialized-pod-member  a scalar (int/bool/float/pointer/SimTime) member
                            of a struct/class in protocol-state directories
                            (sim/net/tcp/quic/cc/browser/core/stats/
                            population) with no initializer: reads of
                            indeterminate values are UB and run-to-run
                            nondeterministic

Legitimate uses are annotated inline and must give a reason:

    std::chrono::steady_clock::now();  // qperc-lint: allow(wall-clock) ETA display only
    // qperc-lint: allow(unordered-container) order never escapes: commutative sum
    std::unordered_map<K, V> cache_;

(the annotation covers its own line or the line directly below it). A
file-wide waiver is spelled `// qperc-lint: allow-file(<rule>) <reason>`.

Usage:
    scripts/lint_determinism.py                # scan src/
    scripts/lint_determinism.py --self-test    # prove each rule fires, then scan
    scripts/lint_determinism.py --list-rules
    scripts/lint_determinism.py FILE...        # scan specific files

Exit status: 0 clean, 1 findings, 2 usage/self-test failure.
"""

import argparse
import os
import re
import sys
import tempfile

# Directories (under --root) whose structs hold protocol/simulation state;
# the uninitialized-POD rule applies only here.
STATE_DIRS = ("src/sim", "src/net", "src/tcp", "src/quic", "src/cc", "src/browser",
              "src/core", "src/stats", "src/population")

SCALAR_TYPE = (
    r"(?:std::)?(?:u?int(?:8|16|32|64)?_t|size_t|ptrdiff_t|bool|char|short|int|"
    r"long(?:\s+long)?|unsigned(?:\s+(?:int|long|char|short))?|float|double|"
    r"SimTime|SimDuration)"
)

# rule id -> (regex on comment/string-stripped code, human explanation)
PATTERN_RULES = {
    "random-device": (
        re.compile(r"std::random_device"),
        "hardware entropy source; derive all randomness from qperc::Rng seeds",
    ),
    "libc-rand": (
        re.compile(r"(?<![\w.:>])(?:s?rand|random|[ejlmn]rand48|drand48)\s*\("),
        "libc RNG with hidden global state; use qperc::Rng",
    ),
    "wall-clock": (
        re.compile(
            r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
            r"|(?<![\w.:>])(?:time|clock|gettimeofday|clock_gettime)\s*\("
        ),
        "wall-clock time; simulation code must use sim::Simulator::now()",
    ),
    "unordered-container": (
        re.compile(r"std::unordered_(?:multi)?(?:map|set)"),
        "hash-order iteration is nondeterministic; use std::map/std::set or sorted vectors",
    ),
    "pointer-keyed-container": (
        re.compile(r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+(?:<[^<>]*>)?\s*\*"),
        "pointer keys order by address (ASLR-dependent); key by a stable id",
    ),
    "getenv": (
        re.compile(r"(?:\bstd::)?\bgetenv\s*\(|\bsecure_getenv\s*\("),
        "environment reads are host-dependent and must never reach simulation "
        "state; plumb configuration through explicit parameters/flags",
    ),
}

STRUCTURAL_RULES = {
    "uninitialized-pod-member": (
        "scalar struct/class member without an initializer in protocol-state code "
        "(indeterminate reads are UB and nondeterministic); add `= ...` or `{}`",
    ),
}

ALL_RULES = {**{k: v[1] for k, v in PATTERN_RULES.items()},
             **{k: v[0] for k, v in STRUCTURAL_RULES.items()}}

ALLOW_RE = re.compile(r"qperc-lint:\s*allow\(([\w-]+)\)\s*(\S.*)?$")
ALLOW_FILE_RE = re.compile(r"qperc-lint:\s*allow-file\(([\w-]+)\)\s*(\S.*)?$")

MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:" + SCALAR_TYPE + r")(?:\s+|\s*\*\s*)"
    r"(\w+)(?:\s*\[[^\]]*\])?\s*;\s*$"
)
POINTER_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?[\w:]+(?:<[^;{}]*>)?\s*\*\s*(\w+)\s*;\s*$"
)
RECORD_INTRO_RE = re.compile(r"\b(?:struct|class|union)\s+\w+[^;{]*$|\b(?:struct|class|union)\s*$")


class Finding:
    def __init__(self, path, line, rule, text):
        self.path, self.line, self.rule, self.text = path, line, rule, text

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.text.strip()}"


def strip_comments_and_strings(text):
    """Blanks comments, string and char literals, preserving line structure.

    Keeps the matched spans' lengths (newlines intact) so line numbers and
    column positions survive for reporting.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            out.append(c)  # digit separator (10'000) or suffix, not a char literal
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    j += 1
                    break
                j += 1
            body = "".join(ch if ch == "\n" else " " for ch in text[i + 1 : j - 1])
            out.append(quote + body + (quote if j <= n else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_allows(raw_lines):
    """Returns ({line_no: {rules}}, {file_wide_rules}); 1-based line numbers.

    An inline allow covers its own line and the next line (so annotations can
    sit above long declarations). Annotations without a reason are themselves
    findings — the waiver must say why.
    """
    inline, file_wide, bad = {}, set(), []
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_FILE_RE.search(line)
        if m:
            if not m.group(2):
                bad.append((idx, "allow-file(%s) annotation is missing a reason" % m.group(1)))
            file_wide.add(m.group(1))
            continue
        m = ALLOW_RE.search(line)
        if m:
            if not m.group(2):
                bad.append((idx, "allow(%s) annotation is missing a reason" % m.group(1)))
            inline.setdefault(idx, set()).add(m.group(1))
            inline.setdefault(idx + 1, set()).add(m.group(1))
    return inline, file_wide, bad


def record_context_lines(stripped):
    """Heuristically marks which lines sit directly inside a struct/class body.

    Tracks a stack of brace contexts; a `{` opens a *record* context when the
    preceding declaration text introduces a struct/class/union and is not a
    function definition (no trailing `)`), otherwise a code/initializer
    context. Member declarations are only flagged in record contexts whose
    innermost frame is a record (not inside member function bodies).
    """
    in_record = set()
    stack = []  # True = record body, False = any other brace scope
    decl_start = 0
    line_no = 1
    for i, ch in enumerate(stripped):
        if stack and stack[-1]:
            in_record.add(line_no)
        if ch == "\n":
            line_no += 1
        elif ch == "{":
            # Classify by the last statement fragment before the brace:
            # `struct X {` opens a record; `int f() {` or `= {` does not, and
            # `enum class X {` is an enum, not a record of members.
            intro = stripped[decl_start:i]
            frag = re.split(r"[;{}]", intro)[-1].strip()
            is_record = bool(re.search(r"\b(struct|class|union)\b", frag)) and not frag.endswith(")")
            if re.search(r"\benum\b", frag):
                is_record = False
            stack.append(is_record)
            decl_start = i + 1
        elif ch == "}":
            if stack:
                stack.pop()
            decl_start = i + 1
        elif ch == ";":
            decl_start = i + 1
    return in_record


def lint_file(path, rel=None, state_scope=None):
    """Lints one file; returns a list of Findings. `rel` is the reported path."""
    rel = rel or path
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as e:
        return [Finding(rel, 0, "io-error", str(e))]

    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()
    inline_allows, file_allows, bad_annotations = collect_allows(raw_lines)

    findings = [Finding(rel, ln, "bad-annotation", msg) for ln, msg in bad_annotations]

    def allowed(rule, line_no):
        return rule in file_allows or rule in inline_allows.get(line_no, set())

    for rule, (regex, _why) in PATTERN_RULES.items():
        for idx, line in enumerate(stripped_lines, start=1):
            if regex.search(line) and not allowed(rule, idx):
                findings.append(Finding(rel, idx, rule, raw_lines[idx - 1]))

    in_state_scope = state_scope if state_scope is not None else any(
        rel.replace(os.sep, "/").startswith(d + "/") for d in STATE_DIRS)
    if in_state_scope:
        record_lines = record_context_lines(stripped)
        rule = "uninitialized-pod-member"
        for idx, line in enumerate(stripped_lines, start=1):
            if idx not in record_lines:
                continue
            if "static" in line or "constexpr" in line or "using " in line:
                continue
            if MEMBER_DECL_RE.match(line) or POINTER_MEMBER_RE.match(line):
                if not allowed(rule, idx):
                    findings.append(Finding(rel, idx, rule, raw_lines[idx - 1]))
    return findings


def iter_source_files(root):
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                full = os.path.join(dirpath, name)
                yield full, os.path.relpath(full, root)


# ---------------------------------------------------------------------------
# Self-test: one minimal violating snippet per rule, plus allowlist checks.
# Written to a temp dir and linted exactly like real sources; the ctest runs
# with --self-test so a regression that silences a rule fails loudly.

SELF_TEST_SNIPPETS = {
    "random-device": "#include <random>\nstd::random_device rd;\n",
    "libc-rand": "int f() { return rand(); }\n",
    "wall-clock": "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n",
    "unordered-container": "#include <unordered_map>\nstd::unordered_map<int, int> m;\n",
    "pointer-keyed-container": "#include <map>\nstruct S;\nstd::map<S*, int> by_ptr;\n",
    "getenv": "#include <cstdlib>\nconst char* jobs = std::getenv(\"QPERC_JOBS\");\n",
    "uninitialized-pod-member": "struct State {\n  int cwnd;\n};\n",
}

SELF_TEST_CLEAN = """\
#include <map>
struct State {
  int cwnd = 0;
  double gain{1.0};
  std::map<int, int> ordered;
};
"""

SELF_TEST_ALLOWED = """\
#include <unordered_map>
// qperc-lint: allow(unordered-container) self-test: order never escapes
std::unordered_map<int, int> cache;
"""


def run_self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="qperc-lint-selftest-") as tmp:
        for rule, snippet in SELF_TEST_SNIPPETS.items():
            path = os.path.join(tmp, rule.replace("-", "_") + ".hpp")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(snippet)
            got = lint_file(path, rel="src/sim/" + os.path.basename(path), state_scope=True)
            if not any(f.rule == rule for f in got):
                failures.append(f"rule {rule} did not fire on its violation snippet")
            unexpected = [f for f in got if f.rule != rule]
            if unexpected:
                failures.append(f"rule {rule} snippet raised extra findings: "
                                + "; ".join(map(str, unexpected)))

        clean = os.path.join(tmp, "clean.hpp")
        with open(clean, "w", encoding="utf-8") as fh:
            fh.write(SELF_TEST_CLEAN)
        got = lint_file(clean, rel="src/sim/clean.hpp", state_scope=True)
        if got:
            failures.append("clean snippet raised findings: " + "; ".join(map(str, got)))

        allowed = os.path.join(tmp, "allowed.hpp")
        with open(allowed, "w", encoding="utf-8") as fh:
            fh.write(SELF_TEST_ALLOWED)
        got = lint_file(allowed, rel="src/sim/allowed.hpp", state_scope=True)
        if got:
            failures.append("allow() annotation did not suppress: " + "; ".join(map(str, got)))

        noreason = os.path.join(tmp, "noreason.hpp")
        with open(noreason, "w", encoding="utf-8") as fh:
            fh.write("// qperc-lint: allow(wall-clock)\nint x = 0;\n")
        got = lint_file(noreason, rel="src/sim/noreason.hpp", state_scope=True)
        if not any(f.rule == "bad-annotation" for f in got):
            failures.append("reason-less allow() annotation was not reported")

    for line in failures:
        print(f"lint_determinism: self-test FAILED: {line}", file=sys.stderr)
    return not failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="specific files to lint (default: <root>/src)")
    parser.add_argument("--root", default=os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir),
                        help="repository root (default: the script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a synthetic violation before scanning")
    parser.add_argument("--list-rules", action="store_true", help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(ALL_RULES):
            print(f"{rule:26s} {ALL_RULES[rule]}")
        return 0

    if args.self_test and not run_self_test():
        return 2

    root = os.path.abspath(args.root)
    findings = []
    if args.files:
        for path in args.files:
            findings.extend(lint_file(path, rel=os.path.relpath(os.path.abspath(path), root)))
        scanned = len(args.files)
    else:
        scanned = 0
        for full, rel in iter_source_files(root):
            findings.extend(lint_file(full, rel=rel))
            scanned += 1

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_determinism: FAILED ({len(findings)} finding(s) in {scanned} file(s))")
        return 1
    suffix = " (self-test passed)" if args.self_test else ""
    print(f"lint_determinism: OK ({scanned} file(s) clean{suffix})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
