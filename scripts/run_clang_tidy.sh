#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over every
# translation unit under src/.
#
#   scripts/run_clang_tidy.sh [--build-dir DIR] [--jobs N]
#
# The container that runs the test suite ships gcc only; when no clang-tidy
# binary is available the script prints a SKIP marker and exits 0 so the CI
# gate (scripts/ci_gate.sh) records the stage as skipped rather than failed.
# Point CLANG_TIDY at a specific binary to override discovery.
#
# A compile database is required; the script configures a dedicated build
# tree with CMAKE_EXPORT_COMPILE_COMMANDS=ON if the chosen directory has
# none. Exit codes: 0 clean or skipped, 1 findings, 2 usage/setup error.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 2

build_dir="build-tidy"
jobs="$(nproc 2>/dev/null || echo 1)"
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) build_dir="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "run_clang_tidy: unknown argument: $1" >&2; exit 2 ;;
  esac
done

tidy="${CLANG_TIDY:-}"
if [ -z "$tidy" ]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
fi
if [ -z "$tidy" ]; then
  echo "run_clang_tidy: SKIP (no clang-tidy binary on PATH; set CLANG_TIDY to override)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  cmake -S . -B "$build_dir" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || exit 2
fi

mapfile -t sources < <(find src -name '*.cpp' | sort)
if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no sources found under src/" >&2
  exit 2
fi

echo "run_clang_tidy: $tidy over ${#sources[@]} file(s), jobs=$jobs"
if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$tidy" -p "$build_dir" -j "$jobs" -quiet \
    "${sources[@]}" || exit 1
else
  status=0
  for source in "${sources[@]}"; do
    "$tidy" -p "$build_dir" --quiet "$source" || status=1
  done
  [ "$status" -eq 0 ] || exit 1
fi
echo "run_clang_tidy: OK"
