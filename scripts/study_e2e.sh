#!/usr/bin/env bash
# End-to-end exercise of `qperc study run` / `qperc study report`, the
# population-scale streaming pipeline: job count must not change the exported
# bytes, interrupt-then-resume must land on the uninterrupted bytes, shard
# splits merged by `study report` must land on the unsharded bytes, and the
# CLI must reject malformed invocations.
#
#   usage: study_e2e.sh /path/to/qperc
set -euo pipefail

QPERC=${1:?usage: study_e2e.sh /path/to/qperc}
WORKDIR=$(mktemp -d /tmp/qperc_study_e2e.XXXXXX)
trap 'rm -rf "$WORKDIR"' EXIT

# A tiny grid: 2 sites x 2 runs keeps stimulus production to a few dozen
# trials; 2000 participants over 64-participant blocks still crosses many
# block/round boundaries.
SPEC=(--kind rating --group uworker --participants 2000 --seed 7 --sites 2 --runs 2)

echo "== reference: uninterrupted --jobs 1 run"
"$QPERC" study run "${SPEC[@]}" --jobs 1 --block-size 64 \
  --out "$WORKDIR/ref" --export "$WORKDIR/ref.txt" --quiet > /dev/null

echo "== parallel run must export byte-identical results"
"$QPERC" study run "${SPEC[@]}" --jobs 4 --block-size 64 \
  --out "$WORKDIR/par" --export "$WORKDIR/par.txt" --quiet > /dev/null
cmp "$WORKDIR/ref.txt" "$WORKDIR/par.txt"

echo "== interrupt after 10 of 32 blocks, then --resume the rest"
"$QPERC" study run "${SPEC[@]}" --jobs 2 --block-size 64 --checkpoint-every 2 \
  --max-blocks 10 --out "$WORKDIR/resume" --quiet 2>&1 | grep -q "continue with --resume"
"$QPERC" study run "${SPEC[@]}" --jobs 2 --block-size 64 --resume \
  --out "$WORKDIR/resume" --export "$WORKDIR/resume.txt" --quiet > /dev/null
cmp "$WORKDIR/ref.txt" "$WORKDIR/resume.txt"

echo "== shard halves merge to the reference bytes"
"$QPERC" study run "${SPEC[@]}" --shard 1/2 --jobs 2 --block-size 64 \
  --out "$WORKDIR/shards" --quiet > /dev/null
"$QPERC" study run "${SPEC[@]}" --shard 0/2 --jobs 1 --block-size 64 \
  --out "$WORKDIR/shards" --quiet > /dev/null
"$QPERC" study report "${SPEC[@]}" --out "$WORKDIR/shards" \
  --export "$WORKDIR/shards.txt" > /dev/null
cmp "$WORKDIR/ref.txt" "$WORKDIR/shards.txt"

echo "== report refuses an incomplete shard set"
"$QPERC" study run "${SPEC[@]}" --shard 0/3 --jobs 1 --block-size 64 \
  --out "$WORKDIR/partial" --quiet > /dev/null
if "$QPERC" study report "${SPEC[@]}" --out "$WORKDIR/partial" > /dev/null 2>&1; then
  echo "FAIL: report accepted a missing shard" >&2; exit 1
fi

echo "== link-condition overlay: tagged outputs, byte-identical across --jobs"
# A smaller grid: the LTE trace + policer makes each stimulus trial slower.
COND=(--kind rating --group uworker --participants 512 --seed 7 --sites 1 --runs 2 \
  --link-trace lte --link-trace-seed 3 --policer-rate-mbps 4 --policer-burst-kb 32)
"$QPERC" study run "${COND[@]}" --jobs 1 --block-size 64 \
  --out "$WORKDIR/cond" --export "$WORKDIR/cond1.txt" --quiet > /dev/null
"$QPERC" study run "${COND[@]}" --jobs 4 --block-size 64 \
  --out "$WORKDIR/cond" --export "$WORKDIR/cond4.txt" --quiet > /dev/null
cmp "$WORKDIR/cond1.txt" "$WORKDIR/cond4.txt"
# The overlay is part of the file identity: conditioned outputs must not
# collide with (or silently reuse) the unconditioned files of the same spec.
ls "$WORKDIR/cond" | grep -q "_lte3_pol4000000b32768" || {
  echo "FAIL: conditioned outputs missing the link-conditions tag" >&2; exit 1
}

echo "== malformed invocations are rejected"
if "$QPERC" study run --definitely-not-a-flag 2>/dev/null; then
  echo "FAIL: unknown flag was accepted" >&2; exit 1
fi
if "$QPERC" study run --participants banana 2>/dev/null; then
  echo "FAIL: non-numeric --participants was accepted" >&2; exit 1
fi
if "$QPERC" study run --shard nonsense 2>/dev/null; then
  echo "FAIL: malformed --shard was accepted" >&2; exit 1
fi
if "$QPERC" study run --participants 0 2>/dev/null; then
  echo "FAIL: zero --participants was accepted" >&2; exit 1
fi

echo "study_e2e: OK"
