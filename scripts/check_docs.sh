#!/usr/bin/env bash
# Lints the top-level docs against the tree: every inline-code reference to a
# file, CLI flag, or QPERC_* environment variable in README.md /
# ARCHITECTURE.md / EXPERIMENTS.md / docs/PERFORMANCE.md must point at
# something that exists.
# Registered as the `check_docs` ctest; run it directly from anywhere:
#
#   scripts/check_docs.sh
#
# Checked token classes (inline backticks only; fenced code blocks are prose
# illustrations and are skipped):
#   * path-like tokens (contain '/' or end in .md/.hpp/.cpp/.sh/.cmake)
#     must exist relative to the repo root,
#   * `--flag` tokens must appear in tools/, bench/, examples/ or scripts/
#     sources (ctest/google-benchmark flags are whitelisted),
#   * `QPERC_*` variables must be read somewhere under src/ bench/ tools/.
# Tokens with spaces, '|', '::', wildcards, URLs, and generated artifacts
# (build/, out/, *.jsonl, .qperc*) are skipped.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 2

docs="README.md ARCHITECTURE.md EXPERIMENTS.md docs/PERFORMANCE.md"
fail=0

# Prints the inline-backtick tokens of $1 that sit outside ``` fences.
inline_tokens() {
  awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$1" |
    grep -o '`[^`]\{1,\}`' | tr -d '`' | sort -u
}

flag_whitelisted() {
  case "$1" in
    --test-dir | --output-on-failure | --benchmark_filter | --benchmark_min_time | \
        --benchmark_repetitions) return 0 ;;
  esac
  return 1
}

for doc in $docs; do
  if [ ! -f "$doc" ]; then
    echo "check_docs: missing doc: $doc"
    fail=1
    continue
  fi

  while IFS= read -r token; do
    case "$token" in
      '' | *' '* | *'|'* | *'::'* | *'*'* | http*://* | build/* | out/* | .qperc* | *.jsonl)
        continue ;;
    esac

    case "$token" in
      --*)
        flag="${token%%=*}"
        flag_whitelisted "$flag" && continue
        if ! grep -rqF -- "$flag" tools bench examples scripts 2>/dev/null; then
          echo "check_docs: $doc references unknown flag: $token"
          fail=1
        fi
        ;;
      QPERC_*)
        var="${token%%=*}"
        if ! grep -rqF -- "$var" src bench tools 2>/dev/null; then
          echo "check_docs: $doc references unknown env var: $token"
          fail=1
        fi
        ;;
      */* | *.md | *.hpp | *.cpp | *.sh | *.cmake)
        if [ ! -e "$token" ]; then
          echo "check_docs: $doc references missing path: $token"
          fail=1
        fi
        ;;
    esac
  done <<EOF
$(inline_tokens "$doc")
EOF
done

# Required sections: docs that other docs/scripts point readers at must not
# silently disappear in a refactor.
require_section() {
  if ! grep -qE "^##? $2\$" "$1" 2>/dev/null; then
    echo "check_docs: $1 missing required section: '$2'"
    fail=1
  fi
}
require_section ARCHITECTURE.md "Simulator internals"
require_section ARCHITECTURE.md "Determinism contract"
require_section ARCHITECTURE.md "Correctness tooling"
require_section ARCHITECTURE.md 'Population-scale streaming studies \(`src/population`\)'
require_section ARCHITECTURE.md "Shared-bottleneck contention & fairness"
require_section ARCHITECTURE.md "Static analysis: the hot-path purity analyzer"
require_section ARCHITECTURE.md "The link layer: serialization, schedules, and policing"
require_section EXPERIMENTS.md "Benchmarking qperc"
require_section EXPERIMENTS.md "Measuring throughput"
require_section EXPERIMENTS.md "Running the grid as a campaign"
require_section EXPERIMENTS.md "Population-scale studies"
require_section EXPERIMENTS.md "Contention & fairness"
require_section EXPERIMENTS.md "Impairment & torture testing"
require_section EXPERIMENTS.md "Variable-rate links & policing"
# (the argument is an ERE fragment, so the parens are escaped)
require_section EXPERIMENTS.md 'The CI gate \(`scripts/ci_gate.sh`\)'
require_section docs/PERFORMANCE.md "Memory model"
require_section docs/PERFORMANCE.md "Hot-path allocation rules"
require_section docs/PERFORMANCE.md 'The bench baseline \(`BENCH_micro.json`\)'
require_section docs/PERFORMANCE.md "Measuring throughput"

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK ($docs)"
