#!/usr/bin/env bash
# Builds and runs the test suite under the sanitizer/invariant matrix:
#
#   asan_ubsan   AddressSanitizer + UndefinedBehaviorSanitizer (Debug)
#   tsan         ThreadSanitizer (Debug) — campaign executor, store, and
#                population streaming tests only: TSan serializes everything
#                else for no extra coverage
#   invariants   RelWithDebInfo with -DQPERC_ENABLE_INVARIANTS=ON, proving
#                every QPERC_DCHECK holds in an otherwise-release binary
#
#   scripts/sanitize_matrix.sh [--legs LIST] [--jobs N] [--keep]
#
#   --legs LIST  comma-separated subset (default: asan_ubsan,tsan,invariants)
#   --jobs N     parallel build/test jobs (default: nproc)
#   --keep       keep the build-sanitize-* trees (default: remove on success)
#
# Each leg builds into its own build-sanitize-<leg> tree so reruns are
# incremental. Exit 0 when every requested leg passes; first failing leg
# stops the matrix with exit 1.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 2

legs="asan_ubsan,tsan,invariants"
jobs="$(nproc 2>/dev/null || echo 1)"
keep=0
while [ $# -gt 0 ]; do
  case "$1" in
    --legs) legs="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    --keep) keep=1; shift ;;
    *) echo "sanitize_matrix: unknown argument: $1" >&2; exit 2 ;;
  esac
done

run_leg() {
  leg="$1"
  build_dir="build-sanitize-$leg"
  case "$leg" in
    asan_ubsan)
      flags="-DCMAKE_BUILD_TYPE=Debug -DQPERC_ENABLE_ASAN=ON"
      # halt_on_error so UBSan findings fail the leg instead of scrolling by.
      env_prefix="UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 ASAN_OPTIONS=detect_leaks=1"
      test_filter=""
      ;;
    tsan)
      flags="-DCMAKE_BUILD_TYPE=Debug -DQPERC_ENABLE_TSAN=ON"
      env_prefix="TSAN_OPTIONS=halt_on_error=1"
      # The simulator core is single-threaded by design; only the campaign
      # executor, result store, and population streaming engine cross threads.
      test_filter="-R '[Ee]xecutor|[Cc]ampaign|[Rr]esult[Ss]tore|[Pp]opulation|study_smoke'"
      ;;
    invariants)
      flags="-DCMAKE_BUILD_TYPE=RelWithDebInfo -DQPERC_ENABLE_INVARIANTS=ON"
      env_prefix=""
      test_filter=""
      ;;
    *)
      echo "sanitize_matrix: unknown leg: $leg" >&2
      return 2
      ;;
  esac

  echo "sanitize_matrix: [$leg] configure + build ($build_dir)"
  # shellcheck disable=SC2086
  cmake -S . -B "$build_dir" $flags > /dev/null || return 1
  cmake --build "$build_dir" -j "$jobs" > /dev/null || return 1

  echo "sanitize_matrix: [$leg] ctest -j $jobs"
  # shellcheck disable=SC2086
  if ! (cd "$build_dir" && eval env $env_prefix ctest -j "$jobs" --output-on-failure $test_filter); then
    echo "sanitize_matrix: [$leg] FAILED" >&2
    return 1
  fi
  echo "sanitize_matrix: [$leg] OK"
  if [ "$keep" -eq 0 ]; then rm -rf "$build_dir"; fi
}

IFS=',' read -r -a requested <<< "$legs"
for leg in "${requested[@]}"; do
  run_leg "$leg" || exit 1
done
echo "sanitize_matrix: all legs OK ($legs)"
