#!/usr/bin/env bash
# End-to-end exercise of `qperc campaign`: interrupt-then-resume must land on
# byte-identical results, `--jobs` must not affect the store, and the CLI must
# reject malformed invocations.
#
#   usage: campaign_e2e.sh /path/to/qperc
set -euo pipefail

QPERC=${1:?usage: campaign_e2e.sh /path/to/qperc}
WORKDIR=$(mktemp -d /tmp/qperc_campaign_e2e.XXXXXX)
trap 'rm -rf "$WORKDIR"' EXIT

# The whole test runs a 2-site x 1-protocol x 2-network grid at 2 runs each.
GRID=(--sites 2 --runs 2 --seed 7 --protocols QUIC --networks DSL,LTE)
STORE=campaign_seed7_runs2.qcr

echo "== reference: uninterrupted --jobs 1 run"
"$QPERC" campaign run "${GRID[@]}" --jobs 1 --out "$WORKDIR/ref" --quiet

echo "== parallel run must be bit-identical to the serial reference"
"$QPERC" campaign run "${GRID[@]}" --jobs 4 --out "$WORKDIR/par" --quiet
cmp "$WORKDIR/ref/$STORE" "$WORKDIR/par/$STORE"

echo "== interrupt after 2 of 4 conditions, then --resume the rest"
"$QPERC" campaign run "${GRID[@]}" --jobs 2 --checkpoint-every 1 --max-tasks 2 \
  --out "$WORKDIR/resume" --quiet
"$QPERC" campaign status "${GRID[@]}" --out "$WORKDIR/resume" \
  | grep -q "completed: 2 / 4 conditions"
"$QPERC" campaign run "${GRID[@]}" --jobs 2 --resume --out "$WORKDIR/resume" --quiet
cmp "$WORKDIR/ref/$STORE" "$WORKDIR/resume/$STORE"

echo "== status and export see the completed grid"
"$QPERC" campaign status "${GRID[@]}" --out "$WORKDIR/resume" \
  | grep -q "completed: 4 / 4 conditions"
"$QPERC" campaign export "${GRID[@]}" --out "$WORKDIR/ref" > "$WORKDIR/ref.csv"
"$QPERC" campaign export "${GRID[@]}" --out "$WORKDIR/resume" > "$WORKDIR/resume.csv"
cmp "$WORKDIR/ref.csv" "$WORKDIR/resume.csv"
# Header + one row per grid cell.
test "$(wc -l < "$WORKDIR/ref.csv")" -eq 5

echo "== sharded runs merge to the same grid"
"$QPERC" campaign run "${GRID[@]}" --shard 0/2 --jobs 1 --out "$WORKDIR/shards" --quiet
"$QPERC" campaign run "${GRID[@]}" --shard 1/2 --jobs 1 --out "$WORKDIR/shards" --quiet
"$QPERC" campaign export "${GRID[@]}" --out "$WORKDIR/shards" > "$WORKDIR/shards.csv"
cmp "$WORKDIR/ref.csv" "$WORKDIR/shards.csv"

echo "== malformed invocations are rejected"
if "$QPERC" campaign run --definitely-not-a-flag 2>/dev/null; then
  echo "FAIL: unknown flag was accepted" >&2; exit 1
fi
if "$QPERC" campaign run --jobs banana 2>/dev/null; then
  echo "FAIL: non-numeric --jobs was accepted" >&2; exit 1
fi
if "$QPERC" campaign run --shard nonsense 2>/dev/null; then
  echo "FAIL: malformed --shard was accepted" >&2; exit 1
fi

echo "campaign_e2e: OK"
