// Table 1 — the protocol configurations, plus a behavioural self-check that
// each configuration actually exhibits its parameterization on the wire:
// measured handshake round trips, measured first-flight size, and whether
// the first flight is paced or a line-rate burst.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "cc/factory.hpp"
#include "core/protocol.hpp"
#include "net/emulated_network.hpp"
#include "net/profile.hpp"
#include "quic/connection.hpp"
#include "sim/simulator.hpp"
#include "tcp/connection.hpp"
#include "util/rng.hpp"

namespace qperc {
namespace {

struct WireProbe {
  double handshake_rtts = 0.0;
  std::uint64_t first_flight_packets = 0;
  SimDuration first_flight_spread{0};
};

/// Measures handshake cost and the shape of the first data flight by
/// sniffing packets on a clean high-RTT network (LTE, no loss).
WireProbe probe(const core::ProtocolConfig& protocol) {
  sim::Simulator simulator;
  net::NetworkProfile profile = net::lte_profile();
  net::EmulatedNetwork network(simulator, profile, Rng(1));
  WireProbe result;

  SimTime established{0};
  std::vector<SimTime> data_arrivals;

  if (protocol.transport == core::Transport::kTcp) {
    auto config = protocol.tcp_config();
    tcp::TcpConnection connection(
        simulator, network, net::ServerId{0}, config,
        {.on_established = [&] { established = simulator.now(); },
         .on_request_bytes = {},
         .on_response_bytes = {}});
    bool wrote = false;
    std::uint64_t written = 0;
    const std::uint64_t response = 2'000'000;
    std::function<void()> feed = [&] {
      if (!wrote && connection.established()) wrote = true;
      if (wrote && written < response) {
        written += connection.server_write(response - written);
      }
    };
    connection.set_server_on_writable(feed);
    connection.connect();
    simulator.schedule_in(milliseconds(1), [&] {});
    // Sniff downlink deliveries by polling link counters per millisecond.
    std::uint64_t seen = 0;
    std::function<void()> sniff = [&] {
      feed();
      const auto delivered = network.downlink_stats().packets_delivered;
      while (seen < delivered) {
        data_arrivals.push_back(simulator.now());
        ++seen;
      }
      if (simulator.now() < SimTime(seconds(3))) simulator.schedule_in(milliseconds(1), sniff);
    };
    sniff();
    simulator.run_until(SimTime(seconds(3)));
  } else {
    auto config = protocol.quic_config();
    quic::QuicConnection connection(
        simulator, network, net::ServerId{0}, config,
        {.on_established = [&] { established = simulator.now(); },
         .on_request_stream =
             [&](std::uint64_t stream, std::uint64_t, bool fin) {
               if (fin) connection.server_write_stream(stream, 2'000'000, true, 1);
             },
         .on_response_stream = {}});
    connection.connect();
    connection.client_write_stream(5, 300, true, 1);
    std::uint64_t seen = 0;
    std::function<void()> sniff = [&] {
      const auto delivered = network.downlink_stats().packets_delivered;
      while (seen < delivered) {
        data_arrivals.push_back(simulator.now());
        ++seen;
      }
      if (simulator.now() < SimTime(seconds(3))) simulator.schedule_in(milliseconds(1), sniff);
    };
    sniff();
    simulator.run_until(SimTime(seconds(3)));
  }

  result.handshake_rtts = to_seconds(established) / to_seconds(profile.min_rtt);
  // First flight: packets arriving within one RTT of the first data packet
  // after establishment.
  SimTime first_data{kNoTime};
  for (const auto t : data_arrivals) {
    if (t > established + milliseconds(5)) {
      first_data = t;
      break;
    }
  }
  if (first_data != kNoTime) {
    SimTime last_in_flight = first_data;
    for (const auto t : data_arrivals) {
      if (t >= first_data && t < first_data + profile.min_rtt) {
        ++result.first_flight_packets;
        last_in_flight = t;
      }
    }
    result.first_flight_spread = last_in_flight - first_data;
  }
  return result;
}

}  // namespace
}  // namespace qperc

int main() {
  using namespace qperc;
  bench::banner("Table 1: protocol configurations",
                "Paper: five stacks (TCP, TCP+, TCP+BBR, QUIC, QUIC+BBR), §3.");

  TextTable config_table(
      {"Protocol", "Transport", "CC", "IW", "Pacing", "Buffers", "SS-after-idle", "RTTs"});
  for (const auto& protocol : core::paper_protocols()) {
    config_table.add_row(
        {protocol.name,
         protocol.transport == core::Transport::kTcp ? "TCP+TLS+H2" : "gQUIC",
         std::string(cc::to_string(protocol.congestion_control)),
         std::to_string(protocol.initial_window_segments),
         protocol.pacing ? "on" : "off", protocol.tuned_buffers ? "2xBDP" : "autotune",
         protocol.slow_start_after_idle ? "yes" : "no",
         protocol.transport == core::Transport::kTcp ? "2" : "1"});
  }
  std::cout << "Configured (Table 1):\n";
  config_table.print(std::cout);

  std::cout << "\nBehavioural self-check on clean LTE (74 ms RTT):\n";
  TextTable probe_table({"Protocol", "Handshake (RTTs, measured)",
                         "First-flight packets (<= 1 RTT)", "Flight spread"});
  for (const auto& protocol : core::paper_protocols()) {
    const auto measured = probe(protocol);
    probe_table.add_row({protocol.name, fmt_fixed(measured.handshake_rtts, 2),
                         std::to_string(measured.first_flight_packets),
                         fmt_ms(to_millis(measured.first_flight_spread), 1)});
  }
  probe_table.print(std::cout);
  std::cout << "\nExpected shape: QUIC establishes in ~1 RTT vs ~2 for TCP; IW32 stacks\n"
               "land ~3x the packets of IW10 in the first flight; paced stacks spread\n"
               "the flight over a large fraction of the RTT while stock TCP bursts.\n";
  return 0;
}
