// Figure 6 — Pearson correlation between the technical metrics (FVC, SI,
// VC85, LVC, PLT) and the users' mean per-website ratings, per protocol and
// network. For DSL/LTE the free-time votes are used, as in the paper.
#include <cmath>
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "browser/metrics.hpp"
#include "stats/stats.hpp"
#include "study/rating_study.hpp"

int main() {
  using namespace qperc;
  using study::Context;
  bench::banner("Figure 6: Pearson correlation of technical metrics vs user ratings",
                "Paper: SI correlates best (stronger on slow networks), PLT worst;\n"
                "all coefficients negative (§4.4).");

  bench::CachedLibrary cached;
  cached.precompute_all();
  auto& library = cached.get();

  study::RatingStudyConfig config;
  config.group = study::Group::kMicroworker;
  config.seed = bench::master_seed();
  const auto result = study::run_rating_study(library, config);

  // Mean vote per (site, protocol, network): free-time context for DSL/LTE.
  std::map<std::tuple<std::string, std::string, net::NetworkKind>, std::vector<double>>
      votes;
  for (const auto& [key, site_votes] : result.votes_by_site) {
    const auto& [site, protocol, network, context] = key;
    const bool fast =
        network == net::NetworkKind::kDsl || network == net::NetworkKind::kLte;
    if (fast && context != Context::kFreeTime) continue;
    auto& sink = votes[{site, protocol, network}];
    sink.insert(sink.end(), site_votes.begin(), site_votes.end());
  }

  // r[protocol][metric][network]
  std::map<std::string, std::array<std::array<double, 4>, browser::kMetricCount>> heatmap;
  const auto networks = bench::all_network_kinds();

  for (const auto& protocol : bench::all_protocol_names()) {
    for (std::size_t n = 0; n < networks.size(); ++n) {
      std::array<std::vector<double>, browser::kMetricCount> metric_values;
      std::vector<double> mean_votes;
      for (const auto& site : bench::bench_sites(library)) {
        const auto it = votes.find({site, protocol, networks[n]});
        if (it == votes.end() || it->second.size() < 3) continue;
        mean_votes.push_back(stats::mean(it->second));
        // Correlate against the metrics of the video actually shown (the
        // typical recording), as the paper derives them from the stimuli.
        const auto& video = library.get(site, protocol, networks[n]);
        for (std::size_t m = 0; m < browser::kMetricCount; ++m) {
          metric_values[m].push_back(video.metrics.metric_ms(m));
        }
      }
      for (std::size_t m = 0; m < browser::kMetricCount; ++m) {
        heatmap[protocol][m][n] = stats::pearson(metric_values[m], mean_votes);
      }
    }
  }

  int si_best = 0;
  int plt_worst = 0;
  int columns = 0;
  int negative = 0;
  int total_cells = 0;

  for (const auto& protocol : bench::all_protocol_names()) {
    std::cout << "== " << protocol << " ==\n";
    TextTable table({"Metric", "DSL", "LTE", "DA2GC", "MSS"});
    // Mark the strongest (most negative) coefficient per network column.
    std::array<std::size_t, 4> best_metric{};
    for (std::size_t n = 0; n < 4; ++n) {
      double best = 1e9;
      for (std::size_t m = 0; m < browser::kMetricCount; ++m) {
        if (heatmap[protocol][m][n] < best) {
          best = heatmap[protocol][m][n];
          best_metric[n] = m;
        }
      }
      ++columns;
      if (best_metric[n] == 1) ++si_best;  // index 1 == SI
      double worst = -1e9;
      std::size_t worst_metric = 0;
      for (std::size_t m = 0; m < browser::kMetricCount; ++m) {
        if (heatmap[protocol][m][n] > worst) {
          worst = heatmap[protocol][m][n];
          worst_metric = m;
        }
      }
      if (worst_metric == 4) ++plt_worst;  // index 4 == PLT
    }
    for (std::size_t m = 0; m < browser::kMetricCount; ++m) {
      std::vector<std::string> row = {browser::metric_name(m)};
      for (std::size_t n = 0; n < 4; ++n) {
        const double r = heatmap[protocol][m][n];
        ++total_cells;
        if (r < 0.0) ++negative;
        std::string cell = fmt_fixed(r, 2);
        if (best_metric[n] == m) cell += " *";
        row.push_back(cell);
      }
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "   (* = strongest correlation in that network column)\n\n";
  }

  std::cout << "Summary: SI is the strongest metric in " << si_best << "/" << columns
            << " protocol-network columns; PLT is the weakest in " << plt_worst << "/"
            << columns << "; " << negative << "/" << total_cells
            << " coefficients are negative.\n";

  // SI correlation strength by network (paper: goes up on slower networks).
  TextTable trend({"Network", "mean r(SI) across protocols"});
  for (std::size_t n = 0; n < 4; ++n) {
    double sum = 0.0;
    for (const auto& protocol : bench::all_protocol_names()) {
      sum += heatmap[protocol][1][n];
    }
    trend.add_row({std::string(net::to_string(networks[n])), fmt_fixed(sum / 5.0, 2)});
  }
  std::cout << "\n";
  trend.print(std::cout);
  std::cout << "\nShape check: r(SI) strengthens (more negative) from DSL to the\n"
               "in-flight networks, echoing the paper's heatmap.\n";

  // The paper chose Pearson over Spearman because it probes the *linearity*
  // of a metric against the votes; report both for SI so the choice is
  // visible in the output.
  TextTable spearman_table({"Network", "Pearson r(SI, QUIC)", "Spearman rho(SI, QUIC)"});
  for (std::size_t n = 0; n < networks.size(); ++n) {
    std::vector<double> si_values;
    std::vector<double> vote_values;
    for (const auto& site : bench::bench_sites(library)) {
      const auto it = votes.find({site, "QUIC", networks[n]});
      if (it == votes.end() || it->second.size() < 3) continue;
      vote_values.push_back(stats::mean(it->second));
      si_values.push_back(library.get(site, "QUIC", networks[n]).metrics.si_ms());
    }
    spearman_table.add_row({std::string(net::to_string(networks[n])),
                            fmt_fixed(stats::pearson(si_values, vote_values), 2),
                            fmt_fixed(stats::spearman(si_values, vote_values), 2)});
  }
  std::cout << "\n";
  spearman_table.print(std::cout);
  return 0;
}
