// Figure 4 — A/B study vote shares for each protocol pair on each network,
// with the average replay count: do users notice the protocol switch?
#include <iostream>

#include "bench/common.hpp"
#include "study/ab_study.hpp"

int main() {
  using namespace qperc;
  bench::banner("Figure 4: A/B study vote shares per protocol pair and network",
                "Paper: mostly 'no difference' on DSL; decided votes grow as networks\n"
                "slow; QUIC perceived faster than TCP and TCP+; on DA2GC stock TCP\n"
                "beats TCP+ (IW32 early losses) and the flip reverts on MSS (§4.3).");

  bench::CachedLibrary cached;
  cached.precompute_all();
  auto& library = cached.get();

  study::AbStudyConfig config;
  config.group = study::Group::kMicroworker;
  config.videos_per_participant = 26;
  config.seed = bench::master_seed();
  const auto result = study::run_ab_study(library, config);

  std::cout << "uWorker cohort: " << result.funnel.initial << " -> "
            << result.funnel.final_count() << " after filtering; "
            << fmt_fixed(result.avg_seconds_per_video, 1)
            << " s per video (paper: 14.5 s).\n\n";

  const auto& pairs = study::ab_pairs();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    std::cout << pairs[p].first << " vs. " << pairs[p].second << "\n";
    TextTable table({"Network", "prefer " + pairs[p].first, "No Diff.",
                     "prefer " + pairs[p].second, "votes", "avg replay count",
                     "avg confidence"});
    for (const auto network : bench::all_network_kinds()) {
      const auto it = result.cells.find({p, network});
      if (it == result.cells.end()) continue;
      const auto& cell = it->second;
      table.add_row({std::string(net::to_string(network)),
                     fmt_percent(cell.share_first()),
                     fmt_percent(cell.share_no_difference()),
                     fmt_percent(cell.share_second()), std::to_string(cell.total()),
                     fmt_fixed(cell.avg_replays(), 2),
                     fmt_fixed(cell.total() ? cell.confidence_sum /
                                                  static_cast<double>(cell.total())
                                            : 0.0,
                               2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Takeaway checks printed as booleans so regressions are visible at a
  // glance in CI logs.
  const auto cell = [&](std::size_t p, net::NetworkKind network) {
    return result.cells.at({p, network});
  };
  // "In the DSL setting, for all but the QUIC vs. TCP comparison, most
  // participants do not see a difference" — no-difference is the modal
  // answer for the other three pairs.
  const auto nodiff_modal = [&](std::size_t p) {
    const auto& c = cell(p, net::NetworkKind::kDsl);
    return c.share_no_difference() >= c.share_first() &&
           c.share_no_difference() >= c.share_second();
  };
  const bool dsl_mostly_undecided =
      nodiff_modal(0) && nodiff_modal(2) && nodiff_modal(3);
  const bool quic_beats_tcp_when_decided =
      cell(1, net::NetworkKind::kLte).share_first() >
      cell(1, net::NetworkKind::kLte).share_second();
  const bool quic_beats_tuned_tcp =
      cell(2, net::NetworkKind::kLte).share_first() >
      cell(2, net::NetworkKind::kLte).share_second();
  const bool da2gc_stock_beats_tuned =
      cell(0, net::NetworkKind::kDa2gc).share_second() >
      cell(0, net::NetworkKind::kDa2gc).share_first();
  const bool mss_flip_reverts = cell(0, net::NetworkKind::kMss).share_first() >
                                cell(0, net::NetworkKind::kMss).share_second();
  const bool replays_highest_on_dsl =
      cell(1, net::NetworkKind::kDsl).avg_replays() >
      cell(1, net::NetworkKind::kMss).avg_replays();

  TextTable takeaways({"Takeaway (paper §4.3)", "holds"});
  takeaways.add_row({"DSL: 'no difference' modal for all pairs but QUIC vs TCP",
                     dsl_mostly_undecided ? "yes" : "NO"});
  takeaways.add_row({"QUIC perceived faster than TCP (LTE)",
                     quic_beats_tcp_when_decided ? "yes" : "NO"});
  takeaways.add_row({"QUIC perceived faster than tuned TCP+ (LTE)",
                     quic_beats_tuned_tcp ? "yes" : "NO"});
  takeaways.add_row({"DA2GC: stock TCP preferred over TCP+ (IW32 early loss)",
                     da2gc_stock_beats_tuned ? "yes" : "NO"});
  takeaways.add_row({"MSS: TCP vs TCP+ preference reverts", mss_flip_reverts ? "yes" : "NO"});
  takeaways.add_row({"Replay count highest on fast networks",
                     replays_highest_on_dsl ? "yes" : "NO"});
  takeaways.print(std::cout);
  return 0;
}
