// Figure 3 — rating-study agreement between the three subject groups over
// the lab-tested conditions, ordered by the lab cohort's mean vote. Lab and
// Microworker votes get means with 99% confidence intervals; the Internet
// group's votes are not normally distributed, so its median is shown —
// exactly the treatment in the paper.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "stats/stats.hpp"
#include "study/rating_study.hpp"

namespace qperc {
namespace {

std::string condition_label(const study::RatingSiteKey& key) {
  return std::get<0>(key) + "/" + std::get<1>(key) + "/" +
         std::string(net::to_string(std::get<2>(key))) + "/" +
         std::string(study::to_string(std::get<3>(key)));
}

}  // namespace
}  // namespace qperc

int main() {
  using namespace qperc;
  bench::banner("Figure 3: rating-study agreement across subject groups",
                "Paper: uWorker means fall within the lab's 99% CIs; the Internet\n"
                "group deviates, is not normally distributed, and gets excluded (§4.2).");

  bench::CachedLibrary cached;
  // The lab study uses only its five domains; precompute those conditions.
  cached.precompute(web::lab_study_domains(), bench::all_protocol_names(),
                    bench::all_network_kinds());
  auto& library = cached.get();

  const auto run_group = [&](study::Group group) {
    study::RatingStudyConfig config;
    config.group = group;
    config.lab_domains_only = true;
    if (group == study::Group::kInternet) {
      config.videos_work = 6;
      config.videos_free_time = 6;
      config.videos_plane = 3;
    }
    config.seed = bench::master_seed();
    return study::run_rating_study(library, config);
  };

  const auto lab = run_group(study::Group::kLab);
  const auto uworker = run_group(study::Group::kMicroworker);
  const auto internet = run_group(study::Group::kInternet);

  // Conditions = lab-rated (site, protocol, network, context) keys.
  struct Row {
    std::string label;
    double lab_mean;
    double lab_ci;
    double uw_mean;
    double uw_ci;
    double inet_median;
    std::size_t lab_n, uw_n, inet_n;
    bool uw_within_lab_ci;
  };
  std::vector<Row> rows;
  for (const auto& [key, lab_votes] : lab.votes_by_site) {
    if (lab_votes.size() < 3) continue;
    const auto lab_ci = stats::mean_confidence_interval(lab_votes, 0.99);
    Row row;
    row.label = condition_label(key);
    row.lab_mean = lab_ci.center;
    row.lab_ci = lab_ci.half_width;
    row.lab_n = lab_votes.size();
    const auto uw_it = uworker.votes_by_site.find(key);
    if (uw_it == uworker.votes_by_site.end() || uw_it->second.size() < 3) continue;
    const auto uw_ci = stats::mean_confidence_interval(uw_it->second, 0.99);
    row.uw_mean = uw_ci.center;
    row.uw_ci = uw_ci.half_width;
    row.uw_n = uw_it->second.size();
    const auto inet_it = internet.votes_by_site.find(key);
    row.inet_n = inet_it == internet.votes_by_site.end() ? 0 : inet_it->second.size();
    row.inet_median =
        inet_it == internet.votes_by_site.end() ? 0.0 : stats::median(inet_it->second);
    row.uw_within_lab_ci =
        stats::ConfidenceInterval{row.lab_mean, row.lab_ci}.overlaps(
            stats::ConfidenceInterval{row.uw_mean, row.uw_ci});
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.lab_mean < b.lab_mean; });

  TextTable table({"Condition (site/protocol/network/context)", "Lab mean±CI99",
                   "uWorker mean±CI99", "Internet median", "n(lab/uW/inet)", "uW in CI"});
  for (const auto& row : rows) {
    table.add_row({row.label,
                   fmt_fixed(row.lab_mean, 1) + " ± " + fmt_fixed(row.lab_ci, 1),
                   fmt_fixed(row.uw_mean, 1) + " ± " + fmt_fixed(row.uw_ci, 1),
                   fmt_fixed(row.inet_median, 1),
                   std::to_string(row.lab_n) + "/" + std::to_string(row.uw_n) + "/" +
                       std::to_string(row.inet_n),
                   row.uw_within_lab_ci ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::size_t agree = 0;
  for (const auto& row : rows) agree += row.uw_within_lab_ci;
  std::cout << "\nConditions: " << rows.size() << "; uWorker within lab CI99 on "
            << fmt_percent(rows.empty() ? 0.0
                                        : static_cast<double>(agree) /
                                              static_cast<double>(rows.size()))
            << " of them.\n";

  // Normality per group: Jarque–Bera over condition-centered residuals,
  // subsampled to a common size so the comparison has equal power (the
  // paper treats lab and uWorker votes as normal and reports the Internet
  // group's median because its distribution cannot be estimated).
  const auto pooled_residuals = [&](const study::RatingStudyResult& result) {
    std::vector<double> centered;
    for (const auto& [key, votes] : result.votes_by_site) {
      if (votes.size() < 5) continue;
      const double m = stats::mean(votes);
      for (const double vote : votes) centered.push_back(vote - m);
    }
    constexpr std::size_t kSample = 800;
    if (centered.size() <= kSample) return centered;
    std::vector<double> sampled;
    const double stride = static_cast<double>(centered.size()) / kSample;
    for (std::size_t i = 0; i < kSample; ++i) {
      sampled.push_back(centered[static_cast<std::size_t>(i * stride)]);
    }
    return sampled;
  };
  TextTable group_table({"Group", "votes", "JB p (n=800 residuals)", "looks normal",
                         "avg s/video (paper: 21.4/17.7/19.2)"});
  const auto add_group = [&](const char* name, const study::RatingStudyResult& result) {
    std::size_t n = 0;
    for (const auto& [key, votes] : result.votes_by_site) n += votes.size();
    const auto residuals = pooled_residuals(result);
    const auto jb = stats::jarque_bera(residuals);
    group_table.add_row({name, std::to_string(n), fmt_fixed(jb.p_value, 4),
                         jb.looks_normal() ? "yes" : "no",
                         fmt_fixed(result.avg_seconds_per_video, 1)});
  };
  add_group("Lab", lab);
  add_group("uWorker", uworker);
  add_group("Internet", internet);
  std::cout << "\n";
  group_table.print(std::cout);
  std::cout << "\nShape check: lab and uWorker votes look normal for most conditions,\n"
               "while the Internet group (straight-lining volunteers) fails far more\n"
               "often — so it is reported as a median and excluded, as in the paper.\n";
  return 0;
}
