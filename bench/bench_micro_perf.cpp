// Microbenchmarks (google-benchmark): raw performance of the simulation
// substrate — event scheduling, congestion-controller updates, RNG, link
// emulation, metric computation, and a full page-load trial per stack.
#include <benchmark/benchmark.h>

#include "browser/metrics.hpp"
#include "cc/bbr.hpp"
#include "cc/cubic.hpp"
#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/link.hpp"
#include "net/profile.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t counter = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.schedule_in(microseconds(i), [&counter] { ++counter; });
    }
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_CubicOnAck(benchmark::State& state) {
  cc::Cubic cubic(cc::CubicConfig{.initial_window_segments = 32});
  cc::AckSample sample;
  sample.bytes_acked = 1460;
  sample.rtt = milliseconds(50);
  sample.smoothed_rtt = milliseconds(50);
  SimTime now{0};
  for (auto _ : state) {
    now += microseconds(100);
    cubic.on_ack(now, sample);
    benchmark::DoNotOptimize(cubic.congestion_window());
  }
}
BENCHMARK(BM_CubicOnAck);

void BM_BbrOnAck(benchmark::State& state) {
  cc::Bbr bbr(cc::BbrConfig{});
  cc::AckSample sample;
  sample.bytes_acked = 1460;
  sample.rtt = milliseconds(50);
  sample.smoothed_rtt = milliseconds(50);
  sample.delivery_rate = DataRate::megabits_per_second(10.0);
  sample.bytes_in_flight = 64'000;
  SimTime now{0};
  std::uint64_t i = 0;
  for (auto _ : state) {
    now += microseconds(100);
    sample.round_trip_ended = (++i % 50) == 0;
    bbr.on_ack(now, sample);
    benchmark::DoNotOptimize(bbr.congestion_window());
  }
}
BENCHMARK(BM_BbrOnAck);

void BM_LinkSaturated(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t delivered = 0;
    net::Link link(simulator, DataRate::megabits_per_second(100.0), milliseconds(1), 0.0,
                   1'000'000, Rng(1), [&](net::Packet) { ++delivered; });
    for (int i = 0; i < 500; ++i) {
      net::Packet packet;
      packet.wire_bytes = 1500;
      link.send(packet);
    }
    simulator.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_LinkSaturated);

void BM_PearsonCorrelation(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> x(1000);
  std::vector<double> y(1000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal(0, 1);
    y[i] = x[i] * 0.5 + rng.normal(0, 1);
  }
  for (auto _ : state) benchmark::DoNotOptimize(stats::pearson(x, y));
}
BENCHMARK(BM_PearsonCorrelation);

void BM_PageLoadTrial(benchmark::State& state) {
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[static_cast<std::size_t>(state.range(0))];
  const auto& protocol =
      core::paper_protocols()[static_cast<std::size_t>(state.range(1))];
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto result = core::run_trial(site, protocol, net::dsl_profile(), seed++);
    benchmark::DoNotOptimize(result.metrics.plt_ms());
  }
  state.SetLabel(site.name + " / " + protocol.name);
}
// Site 6 = apache.org (small); site 4 = nytimes.com (large). Protocols 0=TCP, 3=QUIC.
BENCHMARK(BM_PageLoadTrial)->Args({6, 0})->Args({6, 3})->Args({4, 0})->Args({4, 3})
    ->Unit(benchmark::kMillisecond);

/// Same trial with a counting sink attached: the cost of actually tracing.
/// Compare against BM_PageLoadTrial to verify the null-sink default stays
/// zero-cost (one pointer test per hook).
void BM_PageLoadTrialTraced(benchmark::State& state) {
  struct CountingSink final : trace::TraceSink {
    std::uint64_t events = 0;
    void on_event(const trace::Event&) override { ++events; }
  };
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[static_cast<std::size_t>(state.range(0))];
  const auto& protocol =
      core::paper_protocols()[static_cast<std::size_t>(state.range(1))];
  std::uint64_t seed = 1;
  for (auto _ : state) {
    CountingSink sink;
    const auto result = core::run_trial(site, protocol, net::dsl_profile(), seed++, &sink);
    benchmark::DoNotOptimize(result.metrics.plt_ms());
    benchmark::DoNotOptimize(sink.events);
  }
  state.SetLabel(site.name + " / " + protocol.name + " (traced)");
}
BENCHMARK(BM_PageLoadTrialTraced)->Args({6, 0})->Args({6, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qperc

BENCHMARK_MAIN();
