// Microbenchmarks (google-benchmark): raw performance of the simulation
// substrate — event scheduling, timer re-arm, congestion-controller updates,
// RNG, link emulation, metric computation, and a full page-load trial per
// stack.
//
// Two modes:
//   * default: the usual google-benchmark CLI (--benchmark_filter=...),
//   * --qperc_json PATH [--qperc_iters N]: runs the fixed scheduler/timer/
//     page-load measurement suite and writes the machine-readable
//     BENCH_micro.json perf baseline (schema qperc-bench-micro-v6) that
//     scripts/bench_baseline.sh diffs against the checked-in numbers.
//     N scales the iteration counts (default 100; 1 = smoke test).
//
// The binary interposes global operator new/delete with a counting shim
// (util/alloc_interpose.hpp) so allocations per trial / per scheduled event
// are part of the baseline: the slab event store's and trial arena's "zero
// allocation steady state" claims are measured, not asserted.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "browser/metrics.hpp"
#include "cc/bbr.hpp"
#include "cc/cubic.hpp"
#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "core/trial_context.hpp"
#include "core/video.hpp"
#include "net/contention.hpp"
#include "net/link.hpp"
#include "net/profile.hpp"
#include "population/population_study.hpp"
#include "sim/simulator.hpp"
#include "stats/stats.hpp"
#include "trace/trace.hpp"
#include "util/alloc_interpose.hpp"
#include "util/rng.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t counter = 0;
    for (int i = 0; i < 1000; ++i) {
      simulator.schedule_in(microseconds(i), [&counter] { ++counter; });
    }
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

/// The RTO/TLP/delayed-ACK pattern: one timer re-armed over and over. The
/// slab scheduler reschedules the existing slot in place, so this must be a
/// small constant cost with zero allocations and bounded queue depth.
void BM_TimerReArm(benchmark::State& state) {
  sim::Simulator simulator;
  std::uint64_t fired = 0;
  sim::Timer timer(simulator, [&fired] { ++fired; });
  int i = 0;
  for (auto _ : state) {
    timer.set_in(milliseconds(10));
    if ((++i & 63) == 0) simulator.run_until(simulator.now() + milliseconds(1));
    benchmark::DoNotOptimize(timer.deadline());
  }
  timer.cancel();
  simulator.run();
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_TimerReArm);

void BM_SimulatorCancel(benchmark::State& state) {
  sim::Simulator simulator;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    const sim::EventId id = simulator.schedule_in(seconds(1), [&counter] { ++counter; });
    simulator.cancel(id);
  }
  simulator.run();
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_SimulatorCancel);

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_CubicOnAck(benchmark::State& state) {
  cc::Cubic cubic(cc::CubicConfig{.initial_window_segments = 32});
  cc::AckSample sample;
  sample.bytes_acked = 1460;
  sample.rtt = milliseconds(50);
  sample.smoothed_rtt = milliseconds(50);
  SimTime now{0};
  for (auto _ : state) {
    now += microseconds(100);
    cubic.on_ack(now, sample);
    benchmark::DoNotOptimize(cubic.congestion_window());
  }
}
BENCHMARK(BM_CubicOnAck);

void BM_BbrOnAck(benchmark::State& state) {
  cc::Bbr bbr(cc::BbrConfig{});
  cc::AckSample sample;
  sample.bytes_acked = 1460;
  sample.rtt = milliseconds(50);
  sample.smoothed_rtt = milliseconds(50);
  sample.delivery_rate = DataRate::megabits_per_second(10.0);
  sample.bytes_in_flight = 64'000;
  SimTime now{0};
  std::uint64_t i = 0;
  for (auto _ : state) {
    now += microseconds(100);
    sample.round_trip_ended = (++i % 50) == 0;
    bbr.on_ack(now, sample);
    benchmark::DoNotOptimize(bbr.congestion_window());
  }
}
BENCHMARK(BM_BbrOnAck);

void BM_LinkSaturated(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t delivered = 0;
    net::Link link(simulator, DataRate::megabits_per_second(100.0), milliseconds(1), 0.0,
                   1'000'000, Rng(1), [&](net::Packet) { ++delivered; });
    for (int i = 0; i < 500; ++i) {
      net::Packet packet;
      packet.wire_bytes = 1500;
      link.send(packet);
    }
    simulator.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_LinkSaturated);

void BM_PearsonCorrelation(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> x(1000);
  std::vector<double> y(1000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal(0, 1);
    y[i] = x[i] * 0.5 + rng.normal(0, 1);
  }
  for (auto _ : state) benchmark::DoNotOptimize(stats::pearson(x, y));
}
BENCHMARK(BM_PearsonCorrelation);

void BM_PageLoadTrial(benchmark::State& state) {
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[static_cast<std::size_t>(state.range(0))];
  const auto& protocol =
      core::paper_protocols()[static_cast<std::size_t>(state.range(1))];
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto result =
        core::run_trial(core::TrialSpec(site, protocol, net::dsl_profile(), seed++));
    benchmark::DoNotOptimize(result.metrics.plt_ms());
  }
  state.SetLabel(site.name + " / " + protocol.name);
}
// Site 6 = apache.org (small); site 4 = nytimes.com (large). Protocols 0=TCP, 3=QUIC.
BENCHMARK(BM_PageLoadTrial)->Args({6, 0})->Args({6, 3})->Args({4, 0})->Args({4, 3})
    ->Unit(benchmark::kMillisecond);

/// Same trial with a counting sink attached: the cost of actually tracing.
/// Compare against BM_PageLoadTrial to verify the null-sink default stays
/// zero-cost (one pointer test per hook).
void BM_PageLoadTrialTraced(benchmark::State& state) {
  struct CountingSink final : trace::TraceSink {
    std::uint64_t events = 0;
    void on_event(const trace::Event&) override { ++events; }
  };
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[static_cast<std::size_t>(state.range(0))];
  const auto& protocol =
      core::paper_protocols()[static_cast<std::size_t>(state.range(1))];
  std::uint64_t seed = 1;
  for (auto _ : state) {
    CountingSink sink;
    const auto result = core::run_trial(
        core::TrialSpec(site, protocol, net::dsl_profile(), seed++).with_trace(&sink));
    benchmark::DoNotOptimize(result.metrics.plt_ms());
    benchmark::DoNotOptimize(sink.events);
  }
  state.SetLabel(site.name + " / " + protocol.name + " (traced)");
}
BENCHMARK(BM_PageLoadTrialTraced)->Args({6, 0})->Args({6, 3})
    ->Unit(benchmark::kMillisecond);

/// Same trial through a heavily impaired link (reordering + duplication +
/// Gilbert–Elliott bursts). Compare against BM_PageLoadTrial for the cost of
/// the impairment stage — and note the impairment-free path stays on the
/// exact pre-impairment RNG/branch sequence (goldens are bit-exact).
void BM_PageLoadTrialImpaired(benchmark::State& state) {
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[static_cast<std::size_t>(state.range(0))];
  const auto& protocol =
      core::paper_protocols()[static_cast<std::size_t>(state.range(1))];
  net::NetworkProfile profile = net::dsl_profile();
  profile.impairments.reorder_rate = 0.2;
  profile.impairments.reorder_delay_min = milliseconds(1);
  profile.impairments.reorder_delay_max = milliseconds(30);
  profile.impairments.duplicate_rate = 0.1;
  profile.impairments.gilbert_elliott = net::GilbertElliott{
      .enter_bad = 0.02, .exit_bad = 0.3, .loss_good = 0.0, .loss_bad = 0.4};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto result = core::run_trial(core::TrialSpec(site, protocol, profile, seed++));
    benchmark::DoNotOptimize(result.metrics.plt_ms());
  }
  state.SetLabel(site.name + " / " + protocol.name + " (impaired)");
}
BENCHMARK(BM_PageLoadTrialImpaired)->Args({6, 0})->Args({6, 3})
    ->Unit(benchmark::kMillisecond);

/// Same trial over an LTE-trace downlink schedule: every serialization end
/// is a piecewise integral across rate epochs instead of one division.
/// Compare against BM_PageLoadTrial for the cost of variable-rate links; the
/// schedule-free path stays on the single-division fast path (bit-exact
/// goldens).
void BM_PageLoadTrialScheduled(benchmark::State& state) {
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[static_cast<std::size_t>(state.range(0))];
  const auto& protocol =
      core::paper_protocols()[static_cast<std::size_t>(state.range(1))];
  net::NetworkProfile profile = net::dsl_profile();
  profile.downlink_schedule = net::RateSchedule::lte_trace(profile.downlink, 11);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto result = core::run_trial(core::TrialSpec(site, protocol, profile, seed++));
    benchmark::DoNotOptimize(result.metrics.plt_ms());
  }
  state.SetLabel(site.name + " / " + protocol.name + " (lte schedule)");
}
BENCHMARK(BM_PageLoadTrialScheduled)->Args({6, 0})->Args({6, 3})
    ->Unit(benchmark::kMillisecond);

/// The page load sharing its bottleneck with a 16-flow cubic crowd: the
/// multi-endpoint network, the cross-traffic sources, and a droptail queue
/// under sustained pressure. Compare against BM_PageLoadTrial for the cost
/// of contention; the contention-free path is unaffected (bit-exact goldens).
void BM_MultiFlowTrial(benchmark::State& state) {
  const auto catalog = web::study_catalog(7);
  const auto& site = catalog[static_cast<std::size_t>(state.range(0))];
  const auto& protocol =
      core::paper_protocols()[static_cast<std::size_t>(state.range(1))];
  net::ContentionConfig contention;
  contention.flows = static_cast<std::uint32_t>(state.range(2));
  contention.mix = net::CrossMix::kCubic;
  core::TrialContext context;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto result = context.run(
        core::TrialSpec(site, protocol, net::dsl_profile(), seed++)
            .with_contention(contention));
    benchmark::DoNotOptimize(result.metrics.plt_ms());
  }
  state.SetLabel(site.name + " / " + protocol.name + " / " +
                 std::to_string(contention.flows) + " flows");
}
BENCHMARK(BM_MultiFlowTrial)->Args({6, 3, 4})->Args({6, 3, 16})
    ->Unit(benchmark::kMillisecond);

/// Shared warm stimulus cache for the population-study benchmark: the
/// per-condition trial cost is paid once and amortised, so the measurement
/// isolates the streaming engine itself (trait sampling, funnel, rater,
/// accumulator folds).
core::VideoLibrary& population_library() {
  static core::VideoLibrary library(7, 2);
  return library;
}

population::StudySpec population_spec(std::uint64_t participants) {
  population::StudySpec spec;
  spec.kind = qperc::study::StudyKind::kRating;
  spec.group = qperc::study::Group::kMicroworker;
  spec.participants = participants;
  spec.seed = 7;
  spec.sites = 5;
  spec.video_runs = 2;
  return spec;
}

/// End-to-end streaming study throughput per worker thread. range(0) is the
/// participant count; single job so the number is a per-core rate.
void BM_PopulationStudy(benchmark::State& state) {
  auto& library = population_library();
  const auto spec = population_spec(static_cast<std::uint64_t>(state.range(0)));
  population::RunOptions options;
  options.jobs = 1;
  for (auto _ : state) {
    const auto report = population::run_streaming_study(library, spec, options);
    benchmark::DoNotOptimize(report.accumulator.votes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("participants/iter=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PopulationStudy)->Arg(1 << 12)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --qperc_json mode: the fixed measurement suite behind BENCH_micro.json.

struct MicroResults {
  double ns_per_schedule = 0;
  double ns_per_rearm = 0;
  double scheduler_events_per_sec = 0;
  std::uint64_t scheduler_allocs_steady_state = 0;
  std::uint64_t rearm_queue_depth_max = 0;
  double ns_per_page_load_trial = 0;
  double ns_per_scheduled_trial = 0;
  double ns_per_multiflow_trial = 0;
  double trials_per_sec = 0;
  std::uint64_t allocations_per_trial = 0;
  std::uint64_t events_per_trial = 0;
  double participants_per_sec = 0;
  double bytes_per_participant = 0;
};

/// Cost of schedule_in alone (drain excluded), plus steady-state allocation
/// count over the whole timed region — must be 0 for the slab store.
void measure_scheduler(MicroResults& out, int scale) {
  constexpr int kBatch = 10'000;
  const int rounds = 20 * scale;
  sim::Simulator simulator;
  std::uint64_t counter = 0;
  // Warm-up round grows the slab and queue to their high-water marks.
  for (int i = 0; i < kBatch; ++i)
    simulator.schedule_in(microseconds(i), [&counter] { ++counter; });
  simulator.run();
  const std::uint64_t allocs_before = qperc::heap_allocations();
  double schedule_ns = 0;
  double total_ns = 0;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < kBatch; ++i)
      simulator.schedule_in(microseconds(i), [&counter] { ++counter; });
    const auto t1 = Clock::now();
    simulator.run();
    const auto t2 = Clock::now();
    schedule_ns += elapsed_ns(t0, t1);
    total_ns += elapsed_ns(t0, t2);
  }
  const double events = static_cast<double>(kBatch) * rounds;
  out.ns_per_schedule = schedule_ns / events;
  out.scheduler_events_per_sec = events / (total_ns * 1e-9);
  out.scheduler_allocs_steady_state =
      qperc::heap_allocations() - allocs_before;
}

void measure_rearm(MicroResults& out, int scale) {
  constexpr int kBatch = 10'000;
  const int rounds = 20 * scale;
  sim::Simulator simulator;
  std::uint64_t fired = 0;
  sim::Timer timer(simulator, [&fired] { ++fired; });
  timer.set_in(milliseconds(10));
  simulator.run_until(simulator.now() + milliseconds(1));
  double rearm_ns = 0;
  std::uint64_t max_depth = 0;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = Clock::now();
    for (int i = 0; i < kBatch; ++i) timer.set_in(milliseconds(10));
    const auto t1 = Clock::now();
    rearm_ns += elapsed_ns(t0, t1);
    max_depth = std::max<std::uint64_t>(max_depth, simulator.queue_depth());
    simulator.run_until(simulator.now() + milliseconds(1));
  }
  out.ns_per_rearm = rearm_ns / (static_cast<double>(kBatch) * rounds);
  out.rearm_queue_depth_max = max_depth;
}

/// Steady-state trial throughput through a reused TrialContext: warm-up
/// trials grow the arena and container capacities to their high-water marks,
/// then a timed batch measures ns/trial, trials/sec, and allocations/trial.
void measure_trial(MicroResults& out, int scale) {
  const auto catalog = web::study_catalog(7);
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == "apache.org") site = &candidate;
  }
  const auto& protocol = core::protocol_by_name("QUIC");
  const net::NetworkProfile profile = net::dsl_profile();
  core::TrialContext context;
  // Warm-up: first trial allocates arena blocks, later trials settle any
  // capacity growth driven by seed-dependent schedules.
  std::uint64_t seed = 1;
  for (int i = 0; i < 3; ++i) {
    benchmark::DoNotOptimize(
        context.run(core::TrialSpec(*site, protocol, profile, seed++)));
  }
  const int rounds = 100 * scale;
  const std::uint64_t allocs_before = qperc::heap_allocations();
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    const auto result =
        context.run(core::TrialSpec(*site, protocol, profile, seed++));
    benchmark::DoNotOptimize(result.metrics.plt_ms());
  }
  const auto t1 = Clock::now();
  const double total_ns = elapsed_ns(t0, t1);
  out.ns_per_page_load_trial = total_ns / rounds;
  out.trials_per_sec = rounds / (total_ns * 1e-9);
  out.allocations_per_trial =
      (qperc::heap_allocations() - allocs_before) /
      static_cast<std::uint64_t>(rounds);
}

/// Steady-state trial cost over an LTE-trace downlink schedule through the
/// same reused TrialContext: the piecewise serialize_end integration and the
/// epoch-boundary rate changes priced against the clean page load above.
void measure_scheduled_trial(MicroResults& out, int scale) {
  const auto catalog = web::study_catalog(7);
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == "apache.org") site = &candidate;
  }
  const auto& protocol = core::protocol_by_name("QUIC");
  net::NetworkProfile profile = net::dsl_profile();
  profile.downlink_schedule = net::RateSchedule::lte_trace(profile.downlink, 11);
  core::TrialContext context;
  std::uint64_t seed = 1;
  for (int i = 0; i < 3; ++i) {
    benchmark::DoNotOptimize(
        context.run(core::TrialSpec(*site, protocol, profile, seed++)));
  }
  const int rounds = 50 * scale;
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    const auto result =
        context.run(core::TrialSpec(*site, protocol, profile, seed++));
    benchmark::DoNotOptimize(result.metrics.plt_ms());
  }
  const auto t1 = Clock::now();
  out.ns_per_scheduled_trial = elapsed_ns(t0, t1) / rounds;
}

/// Steady-state cost of the contended 16-flow cubic cell through the same
/// reused TrialContext. Contended trials simulate a bottleneck under
/// sustained queue pressure, so each one is orders of magnitude more work
/// than the clean page load above — fewer rounds keep the suite fast.
void measure_multiflow_trial(MicroResults& out, int scale) {
  const auto catalog = web::study_catalog(7);
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == "apache.org") site = &candidate;
  }
  const auto& protocol = core::protocol_by_name("QUIC");
  const net::NetworkProfile profile = net::dsl_profile();
  net::ContentionConfig contention;
  contention.flows = 16;
  contention.mix = net::CrossMix::kCubic;
  core::TrialContext context;
  std::uint64_t seed = 1;
  for (int i = 0; i < 3; ++i) {
    benchmark::DoNotOptimize(
        context.run(core::TrialSpec(*site, protocol, profile, seed++)
                        .with_contention(contention)));
  }
  const int rounds = 5 * scale;
  const auto t0 = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    const auto result =
        context.run(core::TrialSpec(*site, protocol, profile, seed++)
                        .with_contention(contention));
    benchmark::DoNotOptimize(result.metrics.plt_ms());
  }
  const auto t1 = Clock::now();
  out.ns_per_multiflow_trial = elapsed_ns(t0, t1) / rounds;
}

/// Single-core streaming-study rate and marginal heap traffic. A warm-up run
/// settles the stimulus cache and every reusable buffer; the timed run then
/// measures participants/sec and heap bytes per participant — the population
/// engine's O(1)-memory claim as a ratcheted number (near zero: only
/// per-round bookkeeping remains on the heap).
void measure_population(MicroResults& out, int scale) {
  auto& library = population_library();
  population::RunOptions options;
  options.jobs = 1;
  const std::uint64_t participants =
      1000ULL * static_cast<std::uint64_t>(scale < 20 ? scale : 20);
  (void)population::run_streaming_study(library, population_spec(participants), options);
  const std::uint64_t bytes_before = qperc::heap_bytes_allocated();
  const auto t0 = Clock::now();
  const auto report =
      population::run_streaming_study(library, population_spec(participants), options);
  const auto t1 = Clock::now();
  benchmark::DoNotOptimize(report.accumulator.votes);
  const double total_ns = elapsed_ns(t0, t1);
  out.participants_per_sec = static_cast<double>(participants) / (total_ns * 1e-9);
  out.bytes_per_participant =
      static_cast<double>(qperc::heap_bytes_allocated() - bytes_before) /
      static_cast<double>(participants);
}

/// Events fired by the fixed (apache.org, QUIC, DSL, seed 1) trial — a cheap
/// canary: if scheduling behaviour drifts, this number moves and the
/// baseline diff flags it even when timings are noisy.
std::uint64_t probe_events_per_trial() {
  const auto catalog = web::study_catalog(7);
  const web::Website* site = nullptr;
  for (const auto& candidate : catalog) {
    if (candidate.name == "apache.org") site = &candidate;
  }
  struct CountingSink final : trace::TraceSink {
    std::uint64_t events = 0;
    void on_event(const trace::Event&) override { ++events; }
  } sink;
  const auto result = core::run_trial(
      core::TrialSpec(*site, core::protocol_by_name("QUIC"), net::dsl_profile(), 1)
          .with_trace(&sink));
  benchmark::DoNotOptimize(result.metrics.plt_ms());
  return sink.events;
}

int run_json_mode(const std::string& path, int scale) {
  MicroResults results;
  measure_scheduler(results, scale);
  measure_rearm(results, scale);
  measure_trial(results, scale);
  measure_scheduled_trial(results, scale);
  measure_multiflow_trial(results, scale);
  measure_population(results, scale);
  results.events_per_trial = probe_events_per_trial();

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "bench_micro_perf: cannot write '" << path << "'\n";
    return 2;
  }
  out.precision(3);
  out << std::fixed;
  out << "{\n"
      << "  \"schema\": \"qperc-bench-micro-v6\",\n"
      << "  \"iters_scale\": " << scale << ",\n"
      << "  \"metrics\": {\n"
      << "    \"ns_per_schedule\": " << results.ns_per_schedule << ",\n"
      << "    \"ns_per_rearm\": " << results.ns_per_rearm << ",\n"
      << "    \"scheduler_events_per_sec\": " << results.scheduler_events_per_sec << ",\n"
      << "    \"scheduler_allocs_steady_state\": " << results.scheduler_allocs_steady_state
      << ",\n"
      << "    \"rearm_queue_depth_max\": " << results.rearm_queue_depth_max << ",\n"
      << "    \"ns_per_page_load_trial\": " << results.ns_per_page_load_trial << ",\n"
      << "    \"ns_per_scheduled_trial\": " << results.ns_per_scheduled_trial << ",\n"
      << "    \"ns_per_multiflow_trial\": " << results.ns_per_multiflow_trial << ",\n"
      << "    \"trials_per_sec\": " << results.trials_per_sec << ",\n"
      << "    \"allocations_per_trial\": " << results.allocations_per_trial << ",\n"
      << "    \"trace_events_per_trial\": " << results.events_per_trial << ",\n"
      << "    \"participants_per_sec\": " << results.participants_per_sec << ",\n"
      << "    \"bytes_per_participant\": " << results.bytes_per_participant << "\n"
      << "  }\n"
      << "}\n";
  out.flush();
  std::cerr << "bench_micro_perf: wrote " << path
            << " (ns/schedule " << results.ns_per_schedule << ", ns/re-arm "
            << results.ns_per_rearm << ", trials/sec " << results.trials_per_sec
            << ", allocs/trial " << results.allocations_per_trial
            << ", steady-state scheduler allocs " << results.scheduler_allocs_steady_state
            << ", participants/sec " << results.participants_per_sec
            << ", B/participant " << results.bytes_per_participant << ")\n";
  return 0;
}

}  // namespace
}  // namespace qperc

int main(int argc, char** argv) {
  std::string json_path;
  int scale = 100;
  // Strip --qperc_* flags before handing argv to google-benchmark.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--qperc_json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--qperc_json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--qperc_json="));
    } else if (arg == "--qperc_iters" && i + 1 < argc) {
      scale = std::atoi(argv[++i]);
    } else if (arg.rfind("--qperc_iters=", 0) == 0) {
      scale = std::atoi(arg.c_str() + std::strlen("--qperc_iters="));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!json_path.empty()) {
    return qperc::run_json_mode(json_path, scale < 1 ? 1 : scale);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
