// Table 3 — participation and the sequential conformance-filter funnel
// (rules R1..R7) for all three groups and both studies, with the paper's
// observed counts printed alongside the simulation.
#include <iostream>

#include "bench/common.hpp"
#include "study/conformance.hpp"
#include "util/rng.hpp"

namespace qperc {
namespace {

/// Paper's Table 3 rows (survivors after each rule; lab is unfiltered).
struct PaperRow {
  study::Group group;
  study::StudyKind kind;
  std::array<std::size_t, study::kRuleCount> after;
};

const std::vector<PaperRow>& paper_rows() {
  static const std::vector<PaperRow> rows = {
      {study::Group::kMicroworker, study::StudyKind::kAb,
       {471, 441, 355, 268, 268, 239, 233}},
      {study::Group::kMicroworker, study::StudyKind::kRating,
       {1494, 1321, 1034, 733, 723, 661, 614}},
      {study::Group::kInternet, study::StudyKind::kAb,
       {217, 210, 196, 171, 170, 159, 155}},
      {study::Group::kInternet, study::StudyKind::kRating,
       {204, 194, 172, 152, 151, 140, 138}},
  };
  return rows;
}

}  // namespace
}  // namespace qperc

int main() {
  using namespace qperc;
  using study::Group;
  using study::StudyKind;
  bench::banner("Table 3: participation after each conformance filter rule",
                "Paper: R1 not played, R2 stalled, R3 focus loss, R4 vote before FVC,\n"
                "R5 too slow, R6 control video, R7 control question (§4.1).");

  Rng rng(bench::master_seed());

  TextTable table({"Group", "Study", "-", "R1", "R2", "R3", "R4", "R5", "R6", "R7"});
  const auto add_rows = [&](Group group, StudyKind kind, const char* study_name) {
    const std::size_t initial = study::paper_initial_cohort(group, kind);
    const auto funnel = study::simulate_funnel(group, kind, initial,
                                               rng.fork(std::string(to_string(group)) +
                                                        study_name));
    std::vector<std::string> simulated = {std::string(to_string(group)),
                                          std::string(study_name) + " (sim)",
                                          std::to_string(funnel.initial)};
    for (const auto count : funnel.after_rule) simulated.push_back(std::to_string(count));
    table.add_row(simulated);

    // Paper reference row, when the paper filtered this cohort.
    for (const auto& row : paper_rows()) {
      if (row.group == group && row.kind == kind) {
        std::vector<std::string> paper = {"", std::string(study_name) + " (paper)",
                                          std::to_string(initial)};
        for (const auto count : row.after) paper.push_back(std::to_string(count));
        table.add_row(paper);
      }
    }
    if (group == Group::kLab) {
      table.add_row({"", std::string(study_name) + " (paper)", std::to_string(initial),
                     "-", "-", "-", "-", "-", "-", std::to_string(initial)});
    }
  };

  add_rows(Group::kLab, StudyKind::kAb, "A/B");
  add_rows(Group::kLab, StudyKind::kRating, "Rating");
  table.add_rule();
  add_rows(Group::kMicroworker, StudyKind::kAb, "A/B");
  add_rows(Group::kMicroworker, StudyKind::kRating, "Rating");
  table.add_rule();
  add_rows(Group::kInternet, StudyKind::kAb, "A/B");
  add_rows(Group::kInternet, StudyKind::kRating, "Rating");

  table.print(std::cout);
  std::cout << "\nRule legend:\n";
  for (std::size_t rule = 0; rule < study::kRuleCount; ++rule) {
    std::cout << "  " << study::rule_name(rule) << ": " << study::rule_description(rule)
              << "\n";
  }
  std::cout << "\nShape check: the supervised lab cohort loses nobody; R3 (focus loss)\n"
               "and R4 (vote before FVC) remove the most crowdsourced results (§4.1).\n";
  return 0;
}
