// §4.3 retransmission analysis — mean retransmissions per page load for every
// protocol and network, with the TCP+/TCP ratio the paper calls out on DA2GC
// ("on avg. x1.5 but up to x4.8").
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace qperc;
  bench::banner("Ablation: retransmissions per page load (paper §4.3)",
                "Paper: on DA2GC, TCP+ retransmits ~1.5x (up to 4.8x) more than stock\n"
                "TCP because the IW32 burst overwhelms the slow lossy link, while QUIC\n"
                "(same IW) copes better thanks to its ACK ranges and streams.");

  bench::CachedLibrary cached;
  cached.precompute_all();
  auto& library = cached.get();
  const auto sites = bench::bench_sites(library);

  TextTable table({"Network", "TCP", "TCP+", "TCP+BBR", "QUIC", "QUIC+BBR",
                   "TCP+/TCP ratio", "max site ratio"});
  for (const auto network : bench::all_network_kinds()) {
    std::array<double, 5> means{};
    double ratio_max = 0.0;
    const auto protocols = bench::all_protocol_names();
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      double sum = 0.0;
      for (const auto& site : sites) {
        sum += library.get(site, protocols[p], network).mean_retransmissions;
      }
      means[p] = sum / static_cast<double>(sites.size());
    }
    for (const auto& site : sites) {
      const double stock = library.get(site, "TCP", network).mean_retransmissions;
      const double tuned = library.get(site, "TCP+", network).mean_retransmissions;
      if (stock > 1.0) ratio_max = std::max(ratio_max, tuned / stock);
    }
    table.add_row({std::string(net::to_string(network)), fmt_fixed(means[0], 1),
                   fmt_fixed(means[1], 1), fmt_fixed(means[2], 1), fmt_fixed(means[3], 1),
                   fmt_fixed(means[4], 1),
                   means[0] > 0.5 ? fmt_fixed(means[1] / means[0], 2) : "-",
                   fmt_fixed(ratio_max, 2)});
  }
  table.print(std::cout);
  std::cout << "\nNote: QUIC counts retransmitted packets (frames re-sent in new packet\n"
               "numbers); TCP counts retransmitted segments.\n";
  return 0;
}
