// Extension studies beyond the paper's snapshot:
//  A. BBRv2 — "BBRv2 was not yet available at the time of testing" (§3,
//     fn. 2). How would the Table-1 "+BBR" rows change with v2's
//     loss-aware model on the lossy in-flight networks?
//  B. Repeat visits — the paper studies fresh-cache 1-RTT QUIC vs 2-RTT
//     TCP and argues 0-RTT is hard to deploy (§3). This bench quantifies
//     the repeat-visit world: QUIC 0-RTT vs TCP with TFO + TLS early-data.
//  C. NewReno — the pre-Cubic baseline, for perspective on how much the
//     congestion controller itself moves the visual metrics.
#include <iostream>

#include "bench/common.hpp"
#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/profile.hpp"
#include "study/rater.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

double mean_si(const web::Website& site, const core::ProtocolConfig& protocol,
               const net::NetworkProfile& profile, std::uint32_t runs) {
  double sum = 0.0;
  for (std::uint32_t seed = 1; seed <= runs; ++seed) {
    sum += core::run_trial(core::TrialSpec(site, protocol, profile, seed * 40'503 + 11))
               .metrics.si_ms();
  }
  return sum / runs;
}

double mean_retx(const web::Website& site, const core::ProtocolConfig& protocol,
                 const net::NetworkProfile& profile, std::uint32_t runs) {
  double sum = 0.0;
  for (std::uint32_t seed = 1; seed <= runs; ++seed) {
    sum += static_cast<double>(
        core::run_trial(core::TrialSpec(site, protocol, profile, seed * 40'503 + 11))
            .transport.retransmissions);
  }
  return sum / runs;
}

}  // namespace
}  // namespace qperc

int main() {
  using namespace qperc;
  bench::banner("Extension studies: BBRv2, repeat visits (0-RTT), NewReno",
                "Beyond the paper's 2019 snapshot; see DESIGN.md §8.");
  const auto catalog = web::study_catalog(bench::master_seed());
  const std::uint32_t runs = std::max<std::uint32_t>(bench::runs_per_condition() / 3, 5);
  const web::Website* gov = nullptr;
  for (const auto& site : catalog) {
    if (site.name == "gov.uk") gov = &site;
  }

  // A. BBRv1 vs BBRv2 on every network (QUIC transport, gov.uk).
  std::cout << "A) BBRv1 vs BBRv2 (QUIC transport, " << gov->name << ", mean SI ms / retx):\n";
  TextTable bbr_table({"Network", "Cubic SI", "BBRv1 SI", "BBRv2 SI", "BBRv1 retx",
                       "BBRv2 retx"});
  core::ProtocolConfig quic_cubic = core::protocol_by_name("QUIC");
  core::ProtocolConfig quic_bbr1 = core::protocol_by_name("QUIC+BBR");
  core::ProtocolConfig quic_bbr2 = quic_bbr1;
  quic_bbr2.name = "QUIC+BBRv2";
  quic_bbr2.congestion_control = cc::CcKind::kBbr2;
  for (const auto& profile : net::all_profiles()) {
    bbr_table.add_row({profile.name,
                       fmt_fixed(mean_si(*gov, quic_cubic, profile, runs), 0),
                       fmt_fixed(mean_si(*gov, quic_bbr1, profile, runs), 0),
                       fmt_fixed(mean_si(*gov, quic_bbr2, profile, runs), 0),
                       fmt_fixed(mean_retx(*gov, quic_bbr1, profile, runs), 1),
                       fmt_fixed(mean_retx(*gov, quic_bbr2, profile, runs), 1)});
  }
  bbr_table.print(std::cout);
  std::cout << "Reading: v2's loss-aware inflight ceiling reins in v1's overshoot on\n"
               "the 3.3%/6% loss links (fewer retransmissions at comparable SI).\n\n";

  // B. Repeat visits: 0-RTT on both stacks.
  std::cout << "B) First vs repeat visit (" << gov->name << ", mean SI ms):\n";
  TextTable visit_table({"Network", "TCP+ (2-RTT)", "TCP+ TFO (1-RTT)",
                         "TCP+ 0-RTT", "QUIC (1-RTT)", "QUIC 0-RTT"});
  core::ProtocolConfig tcp2 = core::protocol_by_name("TCP+");
  core::ProtocolConfig tcp1 = tcp2;
  tcp1.name = "TCP+TFO";
  tcp1.tcp_handshake_rtts = 1;
  core::ProtocolConfig tcp0 = tcp2;
  tcp0.name = "TCP+0RTT";
  tcp0.zero_rtt = true;
  core::ProtocolConfig quic1 = core::protocol_by_name("QUIC");
  core::ProtocolConfig quic0 = quic1;
  quic0.name = "QUIC-0RTT";
  quic0.zero_rtt = true;
  for (const auto& profile : {net::dsl_profile(), net::lte_profile()}) {
    visit_table.add_row({profile.name, fmt_fixed(mean_si(*gov, tcp2, profile, runs), 0),
                         fmt_fixed(mean_si(*gov, tcp1, profile, runs), 0),
                         fmt_fixed(mean_si(*gov, tcp0, profile, runs), 0),
                         fmt_fixed(mean_si(*gov, quic1, profile, runs), 0),
                         fmt_fixed(mean_si(*gov, quic0, profile, runs), 0)});
  }
  visit_table.print(std::cout);
  std::cout << "Reading: with cached crypto state both stacks reach 0-RTT and the\n"
               "handshake gap closes — §3's point that today's deployment reality\n"
               "(no idempotency signaling) is what preserves QUIC's edge.\n\n";

  // C. NewReno baseline.
  std::cout << "C) Congestion-controller sweep (TCP+ transport, " << gov->name
            << ", mean SI ms):\n";
  TextTable cc_table({"Network", "NewReno", "Cubic", "BBRv1", "BBRv2"});
  for (const auto& profile : net::all_profiles()) {
    std::vector<std::string> row = {profile.name};
    for (const auto kind : {cc::CcKind::kReno, cc::CcKind::kCubic, cc::CcKind::kBbr,
                            cc::CcKind::kBbr2}) {
      core::ProtocolConfig protocol = core::protocol_by_name("TCP+");
      protocol.congestion_control = kind;
      row.push_back(fmt_fixed(mean_si(*gov, protocol, profile, runs), 0));
    }
    cc_table.add_row(row);
  }
  cc_table.print(std::cout);
  return 0;
}
