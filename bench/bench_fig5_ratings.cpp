// Figure 5 — rating-study mean votes (99% CIs) per protocol in the three
// usage contexts, plus the §4.4 significance analysis: ANOVA across
// protocols per setting, and the per-website differences at the 90% level.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "stats/stats.hpp"
#include "study/rating_study.hpp"

namespace qperc {
namespace {

std::string scale_word(double vote) {
  static const char* words[] = {"extremely bad", "bad",       "poor", "fair",
                                "good",          "excellent", "ideal"};
  const int index = std::clamp(static_cast<int>((vote - 5.0) / 10.0), 0, 6);
  return words[index];
}

}  // namespace
}  // namespace qperc

int main() {
  using namespace qperc;
  using study::Context;
  bench::banner("Figure 5: rating-study votes per protocol and setting (uWorker)",
                "Paper: within a network the protocols are statistically\n"
                "indistinguishable at 99%; at 90% a QUIC(+BBR) tendency appears in\n"
                "the slow settings; the plane context rates poor (§4.4).");

  bench::CachedLibrary cached;
  cached.precompute_all();
  auto& library = cached.get();

  study::RatingStudyConfig config;
  config.group = study::Group::kMicroworker;
  config.seed = bench::master_seed();
  const auto result = study::run_rating_study(library, config);

  std::cout << "uWorker cohort: " << result.funnel.initial << " -> "
            << result.funnel.final_count() << " after filtering; "
            << fmt_fixed(result.avg_seconds_per_video, 1)
            << " s per video (paper: 17.7 s).\n\n";

  const std::vector<std::pair<Context, std::vector<net::NetworkKind>>> blocks = {
      {Context::kWork, {net::NetworkKind::kDsl, net::NetworkKind::kLte}},
      {Context::kFreeTime, {net::NetworkKind::kDsl, net::NetworkKind::kLte}},
      {Context::kPlane, {net::NetworkKind::kDa2gc, net::NetworkKind::kMss}},
  };

  for (const auto& [context, networks] : blocks) {
    std::cout << "== " << study::to_string(context) << " ==\n";
    TextTable table({"Network", "Protocol", "mean vote ± CI99", "scale", "n"});
    for (const auto network : networks) {
      for (const auto& protocol : bench::all_protocol_names()) {
        const auto it = result.votes_by_cell.find({protocol, network, context});
        if (it == result.votes_by_cell.end()) continue;
        const auto ci = stats::mean_confidence_interval(it->second, 0.99);
        table.add_row({std::string(net::to_string(network)), protocol,
                       fmt_fixed(ci.center, 1) + " ± " + fmt_fixed(ci.half_width, 1),
                       scale_word(ci.center), std::to_string(it->second.size())});
      }
      table.add_rule();
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // §4.4: ANOVA across the five protocols within each (network, context).
  std::cout << "Protocol effect per setting (one-way ANOVA across protocols):\n";
  TextTable anova_table({"Setting", "F", "p-value", "sig at 99%", "sig at 90%",
                         "best-rated protocol"});
  for (const auto& [context, networks] : blocks) {
    for (const auto network : networks) {
      std::vector<std::vector<double>> groups;
      std::string best_protocol;
      double best_mean = -1.0;
      for (const auto& protocol : bench::all_protocol_names()) {
        const auto it = result.votes_by_cell.find({protocol, network, context});
        if (it == result.votes_by_cell.end()) continue;
        groups.push_back(it->second);
        const double m = stats::mean(it->second);
        if (m > best_mean) {
          best_mean = m;
          best_protocol = protocol;
        }
      }
      const auto anova = stats::one_way_anova(groups);
      anova_table.add_row(
          {std::string(net::to_string(network)) + " / " +
               std::string(study::to_string(context)),
           fmt_fixed(anova.f_statistic, 2), fmt_fixed(anova.p_value, 4),
           anova.significant_at(0.01) ? "YES" : "no",
           anova.significant_at(0.10) ? "YES" : "no", best_protocol});
    }
  }
  anova_table.print(std::cout);

  // Per-website significance at 90%: which sites show protocol differences?
  std::cout << "\nWebsites with significant protocol differences (ANOVA, alpha=0.10):\n";
  TextTable site_table({"Network", "Website", "p-value", "best", "worst", "delta"});
  std::map<std::string, int> best_counter;
  for (const auto network : bench::all_network_kinds()) {
    // Collect per-site votes per protocol, merging the contexts the paper
    // merges (free time for DSL/LTE; plane only has one context).
    std::map<std::string, std::map<std::string, std::vector<double>>> per_site;
    for (const auto& [key, votes] : result.votes_by_site) {
      const auto& [site, protocol, net_kind, context] = key;
      if (net_kind != network) continue;
      const bool fast = network == net::NetworkKind::kDsl || network == net::NetworkKind::kLte;
      if (fast && context != Context::kFreeTime) continue;
      auto& sink = per_site[site][protocol];
      sink.insert(sink.end(), votes.begin(), votes.end());
    }
    for (const auto& [site, by_protocol] : per_site) {
      std::vector<std::vector<double>> groups;
      std::string best;
      std::string worst;
      double best_mean = -1.0;
      double worst_mean = 1e9;
      for (const auto& [protocol, votes] : by_protocol) {
        if (votes.size() < 4) continue;
        groups.push_back(votes);
        const double m = stats::mean(votes);
        if (m > best_mean) {
          best_mean = m;
          best = protocol;
        }
        if (m < worst_mean) {
          worst_mean = m;
          worst = protocol;
        }
      }
      if (groups.size() < 2) continue;
      const auto anova = stats::one_way_anova(groups);
      if (anova.significant_at(0.10)) {
        site_table.add_row({std::string(net::to_string(network)), site,
                            fmt_fixed(anova.p_value, 4), best, worst,
                            fmt_fixed(best_mean - worst_mean, 1) + " pts"});
        ++best_counter[best];
      }
    }
    site_table.add_rule();
  }
  site_table.print(std::cout);
  std::cout << "\nTally of 'best' protocols among significant sites:";
  for (const auto& [protocol, count] : best_counter) {
    std::cout << "  " << protocol << "=" << count;
  }
  std::cout << "\n\nShape check: few sites are significant; where they are, QUIC\n"
               "variants dominate the 'best' tally (the paper's §4.4 reading).\n";
  return 0;
}
