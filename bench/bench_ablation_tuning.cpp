// Ablations for the design knobs Table 1 varies (and §3 discusses):
//   1. initial congestion window sweep (10/16/32/64), with and without pacing
//   2. handshake round trips: TCP+TLS (2-RTT) vs gQUIC (1-RTT) vs 0-RTT
//   3. QUIC's ACK-range budget: 3 ranges (TCP's SACK limit) vs 256
//   4. transport head-of-line blocking: H2-over-TCP vs QUIC streams under loss
#include <iostream>

#include "bench/common.hpp"
#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/profile.hpp"
#include "web/website.hpp"

namespace qperc {
namespace {

double mean_si(const web::Website& site, const core::ProtocolConfig& protocol,
               const net::NetworkProfile& profile, std::uint32_t runs) {
  double sum = 0.0;
  for (std::uint32_t seed = 1; seed <= runs; ++seed) {
    sum += core::run_trial(core::TrialSpec(site, protocol, profile, seed * 7919)).metrics.si_ms();
  }
  return sum / runs;
}

}  // namespace
}  // namespace qperc

int main() {
  using namespace qperc;
  bench::banner("Ablations: IW / pacing / handshake RTTs / ACK ranges / HOL blocking",
                "Design-choice experiments behind Table 1's parameterization.");
  const auto catalog = web::study_catalog(bench::master_seed());
  const std::uint32_t runs = std::max<std::uint32_t>(bench::runs_per_condition() / 3, 5);
  const web::Website* gov = nullptr;
  const web::Website* big = nullptr;
  for (const auto& site : catalog) {
    if (site.name == "gov.uk") gov = &site;
    if (site.name == "github.com") big = &site;
  }

  // 1. IW x pacing sweep.
  std::cout << "1) Initial-window sweep, TCP Cubic, mean SI in ms (" << gov->name << ", "
            << runs << " runs):\n";
  TextTable iw_table({"IW", "DSL unpaced", "DSL paced", "DA2GC unpaced", "DA2GC paced"});
  for (const std::uint32_t iw : {10u, 16u, 32u, 64u}) {
    core::ProtocolConfig protocol = core::protocol_by_name("TCP+");
    protocol.initial_window_segments = iw;
    protocol.pacing = false;
    const double dsl_unpaced = mean_si(*gov, protocol, net::dsl_profile(), runs);
    const double da2gc_unpaced = mean_si(*gov, protocol, net::da2gc_profile(), runs);
    protocol.pacing = true;
    const double dsl_paced = mean_si(*gov, protocol, net::dsl_profile(), runs);
    const double da2gc_paced = mean_si(*gov, protocol, net::da2gc_profile(), runs);
    iw_table.add_row({std::to_string(iw), fmt_fixed(dsl_unpaced, 0),
                      fmt_fixed(dsl_paced, 0), fmt_fixed(da2gc_unpaced, 0),
                      fmt_fixed(da2gc_paced, 0)});
  }
  iw_table.print(std::cout);
  std::cout << "Expected: larger IW helps on DSL; on DA2GC the IW32/64 burst backfires\n"
               "(the §4.3 early-loss effect); pacing softens the damage.\n\n";

  // 2. Handshake round trips.
  std::cout << "2) Handshake cost (gov.uk, LTE, mean SI in ms):\n";
  TextTable hs_table({"Stack", "RTTs to request", "mean SI"});
  core::ProtocolConfig tcp_plus = core::protocol_by_name("TCP+");
  core::ProtocolConfig quic = core::protocol_by_name("QUIC");
  core::ProtocolConfig quic0 = quic;
  quic0.name = "QUIC 0-RTT";
  quic0.zero_rtt = true;
  hs_table.add_row({"TCP+TLS+H2 (TCP+)", "2",
                    fmt_fixed(mean_si(*gov, tcp_plus, net::lte_profile(), runs), 0)});
  hs_table.add_row({"gQUIC (fresh cache)", "1",
                    fmt_fixed(mean_si(*gov, quic, net::lte_profile(), runs), 0)});
  hs_table.add_row({"gQUIC (cached config)", "0",
                    fmt_fixed(mean_si(*gov, quic0, net::lte_profile(), runs), 0)});
  hs_table.print(std::cout);
  std::cout << "Expected: each saved round trip shaves roughly one 74 ms RTT per\n"
               "contacted origin off the visual metrics (§3: the 1-RTT advantage is\n"
               "the primary factor in non-lossy environments).\n\n";

  // 3. ACK-range budget.
  std::cout << "3) QUIC ACK-range budget on the lossy networks (mean SI in ms, "
            << big->name << "):\n";
  TextTable ack_table({"max ACK ranges", "DA2GC", "MSS"});
  for (const std::uint32_t ranges : {3u, 8u, 256u}) {
    core::ProtocolConfig protocol = core::protocol_by_name("QUIC");
    protocol.quic_max_ack_ranges = ranges;
    ack_table.add_row({std::to_string(ranges),
                       fmt_fixed(mean_si(*big, protocol, net::da2gc_profile(), runs), 0),
                       fmt_fixed(mean_si(*big, protocol, net::mss_profile(), runs), 0)});
  }
  ack_table.print(std::cout);
  std::cout << "Reading: the per-ACK range budget alone moves SI only slightly here —\n"
               "QUIC acks frequently, so successive ACKs cover the hole map even with\n"
               "3 ranges. The HOL experiment below shows the larger share of §4.3's\n"
               "'QUIC copes better' effect comes from independent streams.\n\n";

  // 4. Transport head-of-line blocking.
  std::cout << "4) HOL blocking: H2-over-TCP vs QUIC streams (single-origin site,\n"
               "   DA2GC, mean SI / VC85 in ms, same IW/pacing/CC):\n";
  const web::Website* single_origin = nullptr;
  for (const auto& site : catalog) {
    if (site.name == "archive.org") single_origin = &site;
  }
  TextTable hol_table({"Stack", "mean SI", "mean VC85"});
  const auto mean_vc85 = [&](const core::ProtocolConfig& protocol) {
    double sum = 0.0;
    for (std::uint32_t seed = 1; seed <= runs; ++seed) {
      sum += core::run_trial(core::TrialSpec(*single_origin, protocol, net::da2gc_profile(),
                                             seed * 104729))
                 .metrics.vc85_ms();
    }
    return sum / runs;
  };
  hol_table.add_row(
      {"TCP+ (one byte stream)",
       fmt_fixed(mean_si(*single_origin, tcp_plus, net::da2gc_profile(), runs), 0),
       fmt_fixed(mean_vc85(tcp_plus), 0)});
  hol_table.add_row(
      {"QUIC (independent streams)",
       fmt_fixed(mean_si(*single_origin, quic, net::da2gc_profile(), runs), 0),
       fmt_fixed(mean_vc85(quic), 0)});
  hol_table.print(std::cout);
  std::cout << "Expected: with one origin the handshake advantage is a single RTT, so\n"
               "most of QUIC's remaining edge comes from loss-isolated streams letting\n"
               "objects render independently.\n\n";

  // 5. The related-work baseline: HTTP/1.1 (6 connections, no multiplexing)
  //    — what most prior studies compared QUIC against (§2).
  std::cout << "5) HTTP version baseline (mean SI in ms, " << gov->name << "):\n";
  TextTable http_table({"Stack", "DSL", "LTE"});
  const auto h1 = core::http1_baseline_protocol();
  const auto& h2 = core::protocol_by_name("TCP");
  http_table.add_row({"TCP+TLS+HTTP/1.1 (6 conns)",
                      fmt_fixed(mean_si(*gov, h1, net::dsl_profile(), runs), 0),
                      fmt_fixed(mean_si(*gov, h1, net::lte_profile(), runs), 0)});
  http_table.add_row({"TCP+TLS+HTTP/2 (stock TCP)",
                      fmt_fixed(mean_si(*gov, h2, net::dsl_profile(), runs), 0),
                      fmt_fixed(mean_si(*gov, h2, net::lte_profile(), runs), 0)});
  http_table.add_row({"gQUIC",
                      fmt_fixed(mean_si(*gov, quic, net::dsl_profile(), runs), 0),
                      fmt_fixed(mean_si(*gov, quic, net::lte_profile(), runs), 0)});
  http_table.print(std::cout);
  std::cout << "Reading: against the HTTP/1.1 baseline the QUIC gap is largest — the\n"
               "comparison the paper criticizes as not being at eye level (§1).\n";
  return 0;
}
