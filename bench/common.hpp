// Shared plumbing for the reproduction benches.
//
// Every bench honours three environment variables so the full-fidelity
// reproduction (31 runs, 36 sites, paper cohort sizes) can be dialed down
// for quick checks:
//   QPERC_RUNS    trials per condition      (default 31, the paper's floor)
//   QPERC_SITES   websites used             (default 36, all)
//   QPERC_SEED    master seed               (default 7)
//   QPERC_JOBS    campaign worker threads   (default 0 = all hardware threads)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/video.hpp"
#include "net/profile.hpp"
#include "runner/campaign.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/result_store.hpp"
#include "study/participant.hpp"
#include "util/table.hpp"

namespace qperc::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

inline std::uint64_t master_seed() { return env_u64("QPERC_SEED", 7); }
inline std::uint32_t runs_per_condition() {
  return static_cast<std::uint32_t>(env_u64("QPERC_RUNS", 31));
}
inline std::size_t site_budget() {
  return static_cast<std::size_t>(env_u64("QPERC_SITES", 36));
}
inline unsigned campaign_jobs() {
  return static_cast<unsigned>(env_u64("QPERC_JOBS", 0));  // 0 = all hardware threads
}

/// The site names used by a bench, truncated to the QPERC_SITES budget
/// (paper-named sites come first in the catalog and are kept).
inline std::vector<std::string> bench_sites(const core::VideoLibrary& library) {
  std::vector<std::string> names;
  for (const auto& site : library.catalog()) {
    if (names.size() >= site_budget()) break;
    names.push_back(site.name);
  }
  return names;
}

inline std::vector<std::string> all_protocol_names() {
  std::vector<std::string> names;
  for (const auto& protocol : core::paper_protocols()) names.push_back(protocol.name);
  return names;
}

inline std::vector<net::NetworkKind> all_network_kinds() {
  std::vector<net::NetworkKind> kinds;
  for (const auto& profile : net::all_profiles()) kinds.push_back(profile.kind);
  return kinds;
}

inline void banner(const std::string& title, const std::string& paper_reference) {
  std::cout << "============================================================\n"
            << title << "\n"
            << paper_reference << "\n"
            << "seed=" << master_seed() << " runs/condition=" << runs_per_condition()
            << " sites=" << site_budget() << "\n"
            << "============================================================\n\n";
}

inline std::string context_label(study::Context context) {
  return std::string(study::to_string(context));
}

inline std::string cache_path() {
  const char* override_path = std::getenv("QPERC_CACHE");
  if (override_path != nullptr && *override_path != '\0') return override_path;
  return ".qperc_videos_seed" + std::to_string(master_seed()) + "_runs" +
         std::to_string(runs_per_condition()) + ".cache";
}

/// A video library backed by the campaign runner's durable ResultStore;
/// `precompute_all` runs everything the study benches need as a resumable
/// campaign, so the grid is simulated at most once per (seed, runs) pair
/// across the whole bench suite — and an interrupted bench resumes from the
/// store's last checkpoint instead of restarting.
class CachedLibrary {
 public:
  CachedLibrary()
      : library_(master_seed(), runs_per_condition()),
        store_(cache_path(), master_seed(), runs_per_condition()) {
    loaded_ = store_.load();
    runner::adopt_results(store_, library_);
  }

  core::VideoLibrary& get() { return library_; }

  void precompute(const std::vector<std::string>& sites,
                  const std::vector<std::string>& protocols,
                  const std::vector<net::NetworkKind>& networks) {
    runner::CampaignSpec spec;
    spec.sites = sites;
    spec.protocols = protocols;
    spec.networks = networks;
    spec.runs = runs_per_condition();
    spec.seed = master_seed();
    runner::CampaignOptions options;
    options.jobs = campaign_jobs();
    const auto report = runner::run_campaign(spec, store_, options);
    for (const auto& failure : report.failures) {
      std::cerr << "precompute failed: " << failure.task.site << "/"
                << failure.task.protocol << ": " << failure.message << "\n";
    }
    runner::adopt_results(store_, library_);
  }

  void precompute_all() {
    precompute(bench_sites(library_), all_protocol_names(), all_network_kinds());
  }

  [[nodiscard]] bool loaded_from_disk() const { return loaded_; }

 private:
  core::VideoLibrary library_;
  runner::ResultStore store_;
  bool loaded_ = false;
};

}  // namespace qperc::bench
