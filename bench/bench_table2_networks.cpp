// Table 2 — the emulated network configurations, validated: for each profile
// we measure achieved bottleneck rate, base RTT, random loss, and the
// queueing delay ceiling, and print them next to the configured values.
#include <functional>
#include <iostream>

#include "bench/common.hpp"
#include "net/emulated_network.hpp"
#include "net/link.hpp"
#include "net/profile.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qperc {
namespace {

struct Measured {
  double downlink_mbps = 0.0;
  double uplink_mbps = 0.0;
  double min_rtt_ms = 0.0;
  double loss = 0.0;
  double max_queue_ms = 0.0;
};

Measured measure(const net::NetworkProfile& profile) {
  Measured out;

  // Saturation test per direction: offer more than the link can carry for
  // two (virtual) seconds and count delivered bytes.
  const auto saturate = [&](DataRate rate, std::uint64_t queue_bytes) {
    sim::Simulator simulator;
    std::uint64_t delivered = 0;
    net::Link link(simulator, rate, profile.min_rtt / 2, 0.0, queue_bytes, Rng(3),
                   [&](net::Packet p) { delivered += p.wire_bytes; });
    std::function<void()> refill = [&] {
      while (link.queued_bytes() + net::kMtuBytes <= queue_bytes) {
        net::Packet packet;
        packet.wire_bytes = net::kMtuBytes;
        link.send(packet);
      }
      if (simulator.now() < SimTime(seconds(3))) simulator.schedule_in(milliseconds(2), refill);
    };
    refill();
    // Exclude the queue-fill warm-up: measure the steady second 1s..3s.
    simulator.run_until(SimTime(seconds(1)));
    const std::uint64_t at_warmup = delivered;
    simulator.run_until(SimTime(seconds(3)));
    return static_cast<double>(delivered - at_warmup) * 8.0 / 2.0 / 1e6;
  };
  out.downlink_mbps = saturate(profile.downlink, profile.downlink_queue_bytes());
  out.uplink_mbps = saturate(profile.uplink, profile.uplink_queue_bytes());

  // RTT probe: one small packet each way through an idle network.
  {
    sim::Simulator simulator;
    net::EmulatedNetwork network(simulator, profile, Rng(4));
    const net::FlowId flow = network.allocate_flow_id();
    SimTime reply{kNoTime};
    network.register_server_flow(flow, [&](net::Packet p) { network.server_send(p); });
    network.register_client_flow(flow, [&](net::Packet) { reply = simulator.now(); });
    // Loss may eat the probe; retry until it lands.
    std::function<void()> send_probe = [&] {
      if (reply != kNoTime) return;
      net::Packet probe_packet;
      probe_packet.flow = flow;
      probe_packet.wire_bytes = 64;
      const SimTime sent = simulator.now();
      network.client_send(probe_packet);
      simulator.schedule_in(seconds(5), send_probe);
      (void)sent;
    };
    send_probe();
    simulator.run_until(SimTime(seconds(30)));
    out.min_rtt_ms = to_millis(reply);
    // Subtract the serialization share of the 64-byte probe (negligible).
  }

  // Loss measurement: spaced packets (no queue drops), big sample.
  {
    sim::Simulator simulator;
    net::EmulatedNetwork network(simulator, profile, Rng(5));
    const net::FlowId flow = network.allocate_flow_id();
    std::uint64_t received = 0;
    network.register_server_flow(flow, [&](net::Packet) { ++received; });
    constexpr std::uint64_t kProbes = 30'000;
    for (std::uint64_t i = 0; i < kProbes; ++i) {
      simulator.schedule_at(SimTime(milliseconds(i)), [&, flow] {
        net::Packet packet;
        packet.flow = flow;
        packet.wire_bytes = 40;
        network.client_send(packet);
      });
    }
    simulator.run(std::uint64_t{500'000'000});
    out.loss = 1.0 - static_cast<double>(received) / static_cast<double>(kProbes);
  }

  // Queue ceiling: capacity / rate (per the Mahimahi ms-sized droptail).
  out.max_queue_ms = to_millis(
      profile.downlink.transmission_time(profile.downlink_queue_bytes()));
  return out;
}

}  // namespace
}  // namespace qperc

int main() {
  using namespace qperc;
  bench::banner("Table 2: network configurations",
                "Paper: DSL / LTE / DA2GC / MSS access networks, §3.");

  TextTable table({"Network", "Up (cfg)", "Up (meas)", "Down (cfg)", "Down (meas)",
                   "minRTT (cfg)", "minRTT (meas)", "Loss (cfg)", "Loss (meas)",
                   "Queue (cfg)", "Queue (meas)"});
  for (const auto& profile : net::all_profiles()) {
    const auto measured = measure(profile);
    table.add_row({profile.name, fmt_fixed(profile.uplink.megabits(), 3) + " Mbps",
                   fmt_fixed(measured.uplink_mbps, 3) + " Mbps",
                   fmt_fixed(profile.downlink.megabits(), 3) + " Mbps",
                   fmt_fixed(measured.downlink_mbps, 3) + " Mbps",
                   fmt_ms(to_millis(profile.min_rtt)), fmt_ms(measured.min_rtt_ms, 1),
                   fmt_percent(profile.loss_rate), fmt_percent(measured.loss),
                   fmt_ms(to_millis(profile.queue_delay)),
                   fmt_ms(measured.max_queue_ms, 1)});
  }
  table.print(std::cout);
  std::cout << "\nNote: the measured one-way loss applies per direction; queue ceiling is\n"
               "the downlink droptail capacity expressed in milliseconds at line rate.\n";
  return 0;
}
