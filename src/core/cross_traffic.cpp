#include "core/cross_traffic.hpp"

#include <utility>

#include "core/protocol.hpp"
#include "util/arena.hpp"

namespace qperc::core {

namespace {

/// Cross-traffic origins live far above the page's origin ids so per-origin
/// accounting never aliases a real server.
constexpr std::uint32_t kCrossOriginBase = 0x40000000;

/// "Continuous" transfers are one burst too large to ever finish: the classic
/// backlogged elephant (1 TiB outlasts any trial by orders of magnitude).
constexpr std::uint64_t kContinuousBytes = std::uint64_t{1} << 40;

[[nodiscard]] const ProtocolConfig& cross_protocol(net::CrossMix mix, std::uint32_t index) {
  static const ProtocolConfig cubic = [] {
    ProtocolConfig p;
    p.name = "cross-cubic";
    p.transport = Transport::kTcp;
    p.congestion_control = cc::CcKind::kCubic;
    return p;
  }();
  static const ProtocolConfig reno = [] {
    ProtocolConfig p;
    p.name = "cross-reno";
    p.transport = Transport::kTcp;
    p.congestion_control = cc::CcKind::kReno;
    return p;
  }();
  static const ProtocolConfig bbr = [] {
    ProtocolConfig p;
    p.name = "cross-bbr";
    p.transport = Transport::kTcp;
    p.congestion_control = cc::CcKind::kBbr;
    p.pacing = true;
    return p;
  }();
  static const ProtocolConfig quic = [] {
    ProtocolConfig p;
    p.name = "cross-quic";
    p.transport = Transport::kQuic;
    p.congestion_control = cc::CcKind::kCubic;
    return p;
  }();
  switch (mix) {
    case net::CrossMix::kCubic: return cubic;
    case net::CrossMix::kReno: return reno;
    case net::CrossMix::kBbr: return bbr;
    case net::CrossMix::kQuic: return quic;
    case net::CrossMix::kMixed: return index % 2 == 0 ? cubic : quic;
  }
  return cubic;  // unreachable with valid input
}

[[nodiscard]] std::string_view cross_label(net::CrossMix mix, std::uint32_t index) {
  if (mix == net::CrossMix::kMixed) return index % 2 == 0 ? "cubic" : "quic";
  return net::to_string(mix);
}

}  // namespace

CrossTrafficSource::CrossTrafficSource(sim::Simulator& simulator,
                                       net::EmulatedNetwork& network,
                                       const net::ContentionConfig& config,
                                       std::uint32_t index, Rng rng)
    : simulator_(simulator),
      config_(config),
      index_(index),
      label_(cross_label(config.mix, index)),
      rng_(std::move(rng)) {
  const ProtocolConfig& protocol = cross_protocol(config.mix, index);
  const net::ServerId origin{kCrossOriginBase + index};
  if (protocol.transport == Transport::kQuic) {
    session_ = http::make_quic_session(simulator, network, origin, protocol.quic_config());
  } else {
    session_ = http::make_h2_session(simulator, network, origin, protocol.tcp_config());
  }
  burst_bytes_ = config.burst_bytes == 0 ? kContinuousBytes : config.burst_bytes;
}

void CrossTrafficSource::start(SimTime at) {
  started_ = true;
  started_at_ = at;
  simulator_.schedule_at(at, [this] { begin(); });
}

double CrossTrafficSource::goodput_bps(SimTime now) const noexcept {
  if (!started_ || now <= started_at_) return 0.0;
  const double seconds = to_seconds(now - started_at_);
  return static_cast<double>(bytes_delivered()) * 8.0 / seconds;
}

void CrossTrafficSource::begin() {
  session_->start();
  submit_burst();
}

void CrossTrafficSource::submit_burst() {
  http::Request request;
  request.object_id = bursts_started_++;
  request.response_body_bytes = burst_bytes_;
  session_->submit(request, [this](std::uint32_t /*object_id*/, std::uint64_t body_bytes,
                                   bool complete) { on_progress(body_bytes, complete); });
}

void CrossTrafficSource::on_progress(std::uint64_t body_bytes, bool complete) {
  current_burst_delivered_ = body_bytes;
  if (!complete) return;
  completed_bytes_ += body_bytes;
  current_burst_delivered_ = 0;
  // Seeded off period: exponential idle gap with the configured mean, drawn
  // from this flow's private fork (order-independent across flows).
  SimDuration gap{0};
  if (config_.off_time > SimDuration::zero()) {
    gap = from_seconds(rng_.exponential(to_seconds(config_.off_time)));
  }
  if (gap <= SimDuration::zero()) {
    submit_burst();
  } else {
    simulator_.schedule_in(gap, [this] { submit_burst(); });
  }
}

CrossTraffic::CrossTraffic(sim::Simulator& simulator, net::EmulatedNetwork& network,
                           const net::ContentionConfig& config, Rng rng) {
  count_ = config.flows;
  if (count_ == 0) return;
  Arena& arena = simulator.arena();
  sources_ = arena.allocate_array<CrossTrafficSource*>(count_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    const auto endpoint = network.add_endpoint();
    network.set_flow_endpoint(endpoint);
    auto* storage = static_cast<CrossTrafficSource*>(
        arena.allocate(sizeof(CrossTrafficSource), alignof(CrossTrafficSource)));
    ::new (storage) CrossTrafficSource(simulator, network, config, i, rng.fork(i));
    sources_[i] = storage;
  }
  network.set_flow_endpoint(net::EmulatedNetwork::kDirectEndpoint);
  for (std::uint32_t i = 0; i < count_; ++i) {
    sources_[i]->start(SimTime{config.start_stagger * i});
  }
}

CrossTraffic::~CrossTraffic() {
  for (std::uint32_t i = 0; i < count_; ++i) sources_[i]->~CrossTrafficSource();
}

}  // namespace qperc::core
