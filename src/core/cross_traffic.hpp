// Seeded on-off bulk-transfer cross-traffic: the load generator that turns a
// single-user trial into a shared-bottleneck contention experiment without
// dragging in a second browser stack.
//
// Each CrossTrafficSource is one long-lived HTTP session (H2-over-TCP with
// the configured congestion controller, or gQUIC) behind its own access-link
// endpoint, repeatedly fetching fixed-size bursts with seeded exponential
// idle gaps — the on-off shape of the fairness literature's dumbbell
// experiments. CrossTraffic owns N of them, arena-placed so the per-trial
// allocation budget holds, and reports per-flow goodput for Jain's index.
#pragma once

#include <cstdint>
#include <string_view>

#include "http/session.hpp"
#include "net/contention.hpp"
#include "net/emulated_network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qperc::core {

/// One bulk-transfer flow: session lifecycle, on-off burst schedule, and the
/// delivered-byte counters the fairness report reads.
class CrossTrafficSource {
 public:
  /// Binds a session to the network's *current* flow endpoint (the caller
  /// brackets construction with EmulatedNetwork::set_flow_endpoint).
  CrossTrafficSource(sim::Simulator& simulator, net::EmulatedNetwork& network,
                     const net::ContentionConfig& config, std::uint32_t index, Rng rng);
  CrossTrafficSource(const CrossTrafficSource&) = delete;
  CrossTrafficSource& operator=(const CrossTrafficSource&) = delete;

  /// Schedules the handshake + first burst at `at`.
  void start(SimTime at);

  [[nodiscard]] std::string_view protocol_label() const noexcept { return label_; }
  [[nodiscard]] std::uint64_t bytes_delivered() const noexcept {
    return completed_bytes_ + current_burst_delivered_;
  }
  [[nodiscard]] SimTime started_at() const noexcept { return started_at_; }
  /// Delivered bytes / elapsed time since start(), in bits per second;
  /// 0 before the flow starts.
  [[nodiscard]] double goodput_bps(SimTime now) const noexcept;
  [[nodiscard]] net::TransportStats transport_stats() const { return session_->stats(); }

 private:
  void begin();
  void submit_burst();
  void on_progress(std::uint64_t body_bytes, bool complete);

  sim::Simulator& simulator_;
  net::ContentionConfig config_;
  std::uint32_t index_ = 0;
  std::string_view label_;
  std::unique_ptr<http::Session> session_;
  Rng rng_;  // idle-gap draws only; forked per flow, so order-independent
  std::uint32_t bursts_started_ = 0;
  std::uint64_t burst_bytes_ = 0;  // resolved: config burst or the continuous elephant
  std::uint64_t completed_bytes_ = 0;
  std::uint64_t current_burst_delivered_ = 0;
  SimTime started_at_{0};
  bool started_ = false;
};

/// The full cross-traffic population of one trial: creates one access-link
/// endpoint plus one source per configured flow (arena-placed; destructors
/// run here because Arena::reset never does) and schedules the staggered
/// starts. Construct *before* the page load begins so its start events sort
/// ahead of the browser's at t=0.
class CrossTraffic {
 public:
  CrossTraffic(sim::Simulator& simulator, net::EmulatedNetwork& network,
               const net::ContentionConfig& config, Rng rng);
  ~CrossTraffic();
  CrossTraffic(const CrossTraffic&) = delete;
  CrossTraffic& operator=(const CrossTraffic&) = delete;

  [[nodiscard]] std::uint32_t flow_count() const noexcept { return count_; }
  [[nodiscard]] const CrossTrafficSource& source(std::uint32_t i) const {
    return *sources_[i];
  }

 private:
  CrossTrafficSource** sources_ = nullptr;  // arena array of arena-placed sources
  std::uint32_t count_ = 0;
};

}  // namespace qperc::core
