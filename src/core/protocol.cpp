#include "core/protocol.hpp"

#include <stdexcept>

namespace qperc::core {

tcp::TcpConfig ProtocolConfig::tcp_config() const {
  tcp::TcpConfig config;
  config.initial_window_segments = initial_window_segments;
  config.congestion_control = congestion_control;
  config.pacing = pacing;
  config.tuned_buffers = tuned_buffers;
  config.slow_start_after_idle = slow_start_after_idle;
  config.handshake_rtts =
      tcp_handshake_rtts >= 0 ? static_cast<std::uint32_t>(tcp_handshake_rtts)
                              : (zero_rtt ? 0 : 2);
  return config;
}

quic::QuicConfig ProtocolConfig::quic_config() const {
  quic::QuicConfig config;
  config.initial_window_segments = initial_window_segments;
  config.congestion_control = congestion_control;
  config.pacing = pacing;
  config.zero_rtt = zero_rtt;
  if (quic_max_ack_ranges > 0) config.max_ack_ranges = quic_max_ack_ranges;
  return config;
}

const std::vector<ProtocolConfig>& paper_protocols() {
  static const std::vector<ProtocolConfig> protocols = {
      {.name = "TCP",
       .transport = Transport::kTcp,
       .congestion_control = cc::CcKind::kCubic,
       .initial_window_segments = 10,
       .pacing = false,
       .tuned_buffers = false,
       .slow_start_after_idle = true},
      {.name = "TCP+",
       .transport = Transport::kTcp,
       .congestion_control = cc::CcKind::kCubic,
       .initial_window_segments = 32,
       .pacing = true,
       .tuned_buffers = true,
       .slow_start_after_idle = false},
      {.name = "TCP+BBR",
       .transport = Transport::kTcp,
       .congestion_control = cc::CcKind::kBbr,
       .initial_window_segments = 32,
       .pacing = true,
       .tuned_buffers = true,
       .slow_start_after_idle = false},
      {.name = "QUIC",
       .transport = Transport::kQuic,
       .congestion_control = cc::CcKind::kCubic,
       .initial_window_segments = 32,
       .pacing = true,
       .tuned_buffers = true,
       .slow_start_after_idle = false},
      {.name = "QUIC+BBR",
       .transport = Transport::kQuic,
       .congestion_control = cc::CcKind::kBbr,
       .initial_window_segments = 32,
       .pacing = true,
       .tuned_buffers = true,
       .slow_start_after_idle = false},
  };
  return protocols;
}

const ProtocolConfig& http1_baseline_protocol() {
  static const ProtocolConfig protocol = {
      .name = "TCP-H1",
      .transport = Transport::kTcpH1,
      .congestion_control = cc::CcKind::kCubic,
      .initial_window_segments = 10,
      .pacing = false,
      .tuned_buffers = false,
      .slow_start_after_idle = true};
  return protocol;
}

const ProtocolConfig& protocol_by_name(std::string_view name) {
  for (const auto& protocol : paper_protocols()) {
    if (protocol.name == name) return protocol;
  }
  if (http1_baseline_protocol().name == name) return http1_baseline_protocol();
  throw std::invalid_argument("unknown protocol: " + std::string(name));
}

}  // namespace qperc::core
