// One testbed trial: a full website visit with a fresh browser over a fresh
// emulated network — the unit §3 repeats >=31 times per condition.
#pragma once

#include <cstdint>

#include "browser/page_loader.hpp"
#include "core/protocol.hpp"
#include "net/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "web/website.hpp"

namespace qperc::core {

/// Everything that defines one trial. A TrialSpec is the single entry point
/// into the simulator; it replaced a growing set of run_trial overloads so
/// new knobs (trace sinks, event budgets, ...) extend this struct instead of
/// multiplying signatures.
///
/// `site` and `protocol` are borrowed (the catalog and the protocol table
/// outlive every trial); `profile` is stored by value because the profile
/// factories return temporaries. Results are deterministic in
/// (site, protocol, profile, seed) — trace and max_events never alter
/// scheduling or RNG draws.
struct TrialSpec {
  const web::Website* site = nullptr;
  const ProtocolConfig* protocol = nullptr;
  net::NetworkProfile profile{};
  std::uint64_t seed = 0;
  /// Optional trace sink attached to the simulator for the trial's lifetime;
  /// nullptr (the default) keeps every instrumentation hook a pointer test.
  trace::TraceSink* trace = nullptr;
  /// Hard cap on simulator events for this trial (a runaway guard the
  /// campaign runner can tighten); the page load stops when it is exhausted.
  std::uint64_t max_events = sim::Simulator::kDefaultEventCap;

  TrialSpec() = default;
  TrialSpec(const web::Website& site_ref, const ProtocolConfig& protocol_ref,
            net::NetworkProfile profile_value, std::uint64_t trial_seed)
      : site(&site_ref),
        protocol(&protocol_ref),
        profile(std::move(profile_value)),
        seed(trial_seed) {}

  /// Fluent option setters, so call sites read as one expression:
  ///   run_trial(TrialSpec(site, protocol, profile, seed).with_trace(&sink))
  TrialSpec&& with_trace(trace::TraceSink* sink) && {
    trace = sink;
    return std::move(*this);
  }
  TrialSpec&& with_max_events(std::uint64_t cap) && {
    max_events = cap;
    return std::move(*this);
  }
};

/// Runs a single page load as described by `spec`.
/// Throws std::invalid_argument if `spec.site` or `spec.protocol` is null.
[[nodiscard]] browser::PageLoadResult run_trial(const TrialSpec& spec);

/// Deprecated shims for the pre-TrialSpec overload set; thin forwards kept
/// for one release.
[[deprecated("use run_trial(const TrialSpec&)")]] [[nodiscard]] browser::PageLoadResult
run_trial(const web::Website& site, const ProtocolConfig& protocol,
          const net::NetworkProfile& profile, std::uint64_t seed);

[[deprecated("use run_trial(const TrialSpec&) with .with_trace()")]] [[nodiscard]] browser::
    PageLoadResult
    run_trial(const web::Website& site, const ProtocolConfig& protocol,
              const net::NetworkProfile& profile, std::uint64_t seed,
              trace::TraceSink* trace);

}  // namespace qperc::core
