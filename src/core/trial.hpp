// One testbed trial: a full website visit with a fresh browser over a fresh
// emulated network — the unit §3 repeats >=31 times per condition.
#pragma once

#include <cstdint>

#include "browser/page_loader.hpp"
#include "core/protocol.hpp"
#include "net/profile.hpp"
#include "trace/trace.hpp"
#include "web/website.hpp"

namespace qperc::core {

/// Runs a single page load. Deterministic in (site, protocol, profile, seed).
[[nodiscard]] browser::PageLoadResult run_trial(const web::Website& site,
                                                const ProtocolConfig& protocol,
                                                const net::NetworkProfile& profile,
                                                std::uint64_t seed);

/// Same trial with a trace sink attached to the simulator for its whole
/// lifetime (nullptr behaves exactly like the overload above). Tracing never
/// alters scheduling or RNG draws, so results are bit-identical either way.
[[nodiscard]] browser::PageLoadResult run_trial(const web::Website& site,
                                                const ProtocolConfig& protocol,
                                                const net::NetworkProfile& profile,
                                                std::uint64_t seed,
                                                trace::TraceSink* trace);

}  // namespace qperc::core
