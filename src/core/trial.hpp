// One testbed trial: a full website visit with a fresh browser over a fresh
// emulated network — the unit §3 repeats >=31 times per condition. With a
// contention config, the same unit runs against N seeded cross-traffic flows
// sharing the bottleneck (the fairness experiments).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "browser/page_loader.hpp"
#include "core/protocol.hpp"
#include "net/contention.hpp"
#include "net/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "web/website.hpp"

namespace qperc::core {

/// Everything that defines one trial. A TrialSpec is the single entry point
/// into the simulator — single- and multi-flow alike; new knobs (trace
/// sinks, event budgets, contention, ...) extend this struct instead of
/// multiplying signatures.
///
/// `site` and `protocol` are borrowed (the catalog and the protocol table
/// outlive every trial); `profile` is stored by value because the profile
/// factories return temporaries. Results are deterministic in
/// (site, protocol, profile, contention, seed) — trace and max_events never
/// alter scheduling or RNG draws, and a default (disabled) contention config
/// performs zero extra draws, so single-flow goldens are bit-exact.
struct TrialSpec {
  const web::Website* site = nullptr;
  const ProtocolConfig* protocol = nullptr;
  net::NetworkProfile profile{};
  std::uint64_t seed = 0;
  /// Shared-bottleneck cross traffic; default (flows == 0) is the paper's
  /// private-link topology.
  net::ContentionConfig contention{};
  /// Optional trace sink attached to the simulator for the trial's lifetime;
  /// nullptr (the default) keeps every instrumentation hook a pointer test.
  trace::TraceSink* trace = nullptr;
  /// Hard cap on simulator events for this trial (a runaway guard the
  /// campaign runner can tighten); the page load stops when it is exhausted.
  std::uint64_t max_events = sim::Simulator::kDefaultEventCap;

  TrialSpec() = default;
  TrialSpec(const web::Website& site_ref, const ProtocolConfig& protocol_ref,
            net::NetworkProfile profile_value, std::uint64_t trial_seed)
      : site(&site_ref),
        protocol(&protocol_ref),
        profile(std::move(profile_value)),
        seed(trial_seed) {}

  /// Fluent option setters, so call sites read as one expression:
  ///   run_trial(TrialSpec(site, protocol, profile, seed).with_trace(&sink))
  TrialSpec&& with_trace(trace::TraceSink* sink) && {
    trace = sink;
    return std::move(*this);
  }
  TrialSpec&& with_max_events(std::uint64_t cap) && {
    max_events = cap;
    return std::move(*this);
  }
  TrialSpec&& with_contention(net::ContentionConfig config) && {
    contention = config;
    return std::move(*this);
  }
};

/// What the cross-traffic side of a contended trial observed; filled by
/// TrialContext::run when the spec enables contention. Plain heap containers:
/// this is a per-trial result copy-out, not hot-path state.
struct ContentionOutcome {
  struct Flow {
    /// Congestion-control label of the flow ("cubic", "reno", "bbr", "quic").
    std::string_view protocol;
    std::uint64_t bytes_delivered = 0;
    /// Delivered bits / elapsed time from the flow's start to the end of the
    /// page load (the measurement window every flow shares).
    double goodput_bps = 0.0;
    std::uint64_t retransmissions = 0;
  };
  std::vector<Flow> flows;
  /// Peak occupancy and capacity of the shared bottleneck downlink queue.
  std::uint64_t peak_queue_bytes = 0;
  std::uint64_t queue_capacity_bytes = 0;
  /// Droptail drops across both bottleneck directions.
  std::uint64_t queue_drops = 0;
  /// Page-load duration = the measurement window's right edge.
  SimDuration measured{0};
};

/// Runs a single page load as described by `spec`.
/// Throws std::invalid_argument if `spec.site` or `spec.protocol` is null.
[[nodiscard]] browser::PageLoadResult run_trial(const TrialSpec& spec);

}  // namespace qperc::core
