// Reusable trial executor: one Simulator (and its arena) recycled across
// many page-load trials.
//
// A fresh Simulator per trial is correct but wasteful: the event slab, the
// priority queue's backing store, and the arena's block chain are all
// rebuilt from nothing, so every trial pays the same cold-start heap
// traffic. A TrialContext runs trials back to back against one Simulator,
// calling Simulator::reset() between them — capacity (vectors) and memory
// (arena blocks) survive, so a steady-state trial performs only a handful
// of heap allocations (the per-origin session objects and the result
// copy-out; see docs/PERFORMANCE.md for the budget and the rules).
//
// reset() is bit-exact with a fresh simulator: cleared containers regrow
// through the identical push_back sequence, slot 0 is acquired first either
// way, and the arena hands out addresses that no surviving object can see.
// The campaign golden checksums and the trial goldens hold with or without
// context reuse.
#pragma once

#include "browser/page_loader.hpp"
#include "core/trial.hpp"
#include "sim/simulator.hpp"

namespace qperc::core {

class TrialContext {
 public:
  TrialContext() = default;
  TrialContext(const TrialContext&) = delete;
  TrialContext& operator=(const TrialContext&) = delete;

  /// Runs one trial (same contract as the free run_trial). The previous
  /// trial's simulator state is discarded; its arena blocks and container
  /// capacity are reused. Throws std::invalid_argument on a null site or
  /// protocol.
  [[nodiscard]] browser::PageLoadResult run(const TrialSpec& spec) {
    return run(spec, nullptr);
  }
  /// Same, additionally filling `contention` (when non-null and the spec
  /// enables contention) with per-flow goodputs and bottleneck-queue facts.
  [[nodiscard]] browser::PageLoadResult run(const TrialSpec& spec,
                                            ContentionOutcome* contention);

  /// The context's simulator — observable between runs (events processed,
  /// arena footprint) and usable by benches that want finer control.
  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  /// Steady-state arena footprint: bytes owned by the trial arena's blocks.
  [[nodiscard]] std::size_t arena_bytes_reserved() const noexcept {
    return simulator_.arena().bytes_reserved();
  }

 private:
  sim::Simulator simulator_;
};

}  // namespace qperc::core
