// "Producing Videos" (§3): visit each site >=31 times per condition, derive
// the technical metrics, and select the recording closest to the mean PLT as
// the "typical" stimulus shown to study participants.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "browser/metrics.hpp"
#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "net/profile.hpp"
#include "net/transport_stats.hpp"
#include "web/website.hpp"

namespace qperc::core {

/// The stimulus for one (site, protocol, network) condition.
struct Video {
  std::string site;
  std::string protocol;
  net::NetworkKind network = net::NetworkKind::kDsl;
  /// Metrics of the selected typical trial (what participants see).
  browser::PageMetrics metrics;
  std::vector<browser::VcSample> vc_curve;
  /// Per-condition means across all recorded trials.
  browser::PageMetrics mean_metrics;
  double mean_retransmissions = 0.0;
  std::uint32_t runs = 0;
};

/// The per-condition trial seed: a pure function of the master seed and the
/// condition's identity — never of thread, shard, or completion order. Every
/// execution path (VideoLibrary::get, precompute, the campaign runner) uses
/// this one derivation, which is what makes their results bit-identical.
[[nodiscard]] std::uint64_t condition_base_seed(std::uint64_t catalog_seed,
                                                std::string_view site,
                                                std::string_view protocol,
                                                net::NetworkKind network);

/// Records `runs` trials and picks the typical one (closest-to-mean PLT).
/// An optional trace sink observes every trial's event stream (aggregate
/// counters, debugging); tracing never alters scheduling or RNG draws, so
/// the returned Video is bit-identical with or without it.
[[nodiscard]] Video produce_video(const web::Website& site, const ProtocolConfig& protocol,
                                  const net::NetworkProfile& profile, std::uint32_t runs,
                                  std::uint64_t base_seed,
                                  trace::TraceSink* trace = nullptr);

/// Serializes one Video as a single whitespace-separated line (no trailing
/// newline) — the record format shared by the VideoLibrary cache and the
/// campaign runner's ResultStore.
void write_video_record(std::ostream& os, const Video& video);
/// Parses one Video written by write_video_record. Returns false (contents
/// of `video` unspecified) when the stream ends early or a field is invalid.
[[nodiscard]] bool read_video_record(std::istream& is, Video& video);

/// Lazily computes and caches videos for the whole study grid; the cache is
/// what both user studies draw their stimuli from.
class VideoLibrary {
 public:
  /// `runs` trials per condition (the paper records at least 31). An
  /// optional LinkConditions overlay decorates every condition's profile
  /// (variable-rate downlink trace, token-bucket policer); it is part of
  /// the cache identity, so caches never mix conditions.
  VideoLibrary(std::uint64_t catalog_seed, std::uint32_t runs,
               net::LinkConditions conditions = {});

  [[nodiscard]] const std::vector<web::Website>& catalog() const { return catalog_; }
  [[nodiscard]] std::uint64_t catalog_seed() const noexcept { return catalog_seed_; }
  [[nodiscard]] std::uint32_t runs() const noexcept { return runs_; }
  [[nodiscard]] const net::LinkConditions& conditions() const noexcept {
    return conditions_;
  }

  /// Fetches (computing on first use) the video for a condition.
  const Video& get(const std::string& site_name, const std::string& protocol_name,
                   net::NetworkKind network);

  /// Adopts an externally produced video (e.g. from a runner::ResultStore).
  /// Returns false and keeps the existing entry when the condition is
  /// already cached.
  bool insert(Video video);

  /// Precomputes a set of conditions in parallel (runner::Executor, one
  /// worker per hardware thread). Results are identical to sequential
  /// get() calls. If a condition fails, the remaining conditions still
  /// complete and are cached; the first failure is then rethrown.
  void precompute(const std::vector<std::string>& sites,
                  const std::vector<std::string>& protocols,
                  const std::vector<net::NetworkKind>& networks);

  [[nodiscard]] const web::Website& site_by_name(const std::string& name) const;

  /// Loads previously saved videos; returns false (and leaves the cache
  /// untouched — a truncated or corrupt file never contributes partial
  /// entries) when the file is missing, malformed, or was produced with a
  /// different (seed, runs) pair.
  bool load_cache(const std::string& path);
  /// Persists every cached video for reuse by later runs. The write is
  /// atomic (temp file + rename), so an interrupted run cannot leave a
  /// corrupt cache behind.
  void save_cache(const std::string& path) const;
  [[nodiscard]] std::size_t cached_conditions() const { return cache_.size(); }

 private:
  using Key = std::tuple<std::string, std::string, int>;

  std::uint64_t catalog_seed_ = 0;
  std::uint32_t runs_ = 0;
  net::LinkConditions conditions_{};
  std::vector<web::Website> catalog_;
  std::map<Key, Video> cache_;
};

}  // namespace qperc::core
