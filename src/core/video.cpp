#include "core/video.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace qperc::core {

Video produce_video(const web::Website& site, const ProtocolConfig& protocol,
                    const net::NetworkProfile& profile, std::uint32_t runs,
                    std::uint64_t base_seed) {
  Video video;
  video.site = site.name;
  video.protocol = protocol.name;
  video.network = profile.kind;
  video.runs = runs;

  const Rng seeder(base_seed);
  std::vector<browser::PageLoadResult> results;
  results.reserve(runs);
  for (std::uint32_t run = 0; run < runs; ++run) {
    Rng run_rng = seeder.fork(run + 1);
    results.push_back(run_trial(site, protocol, profile, run_rng.next_u64()));
  }

  // Per-condition means of every metric.
  double sums[browser::kMetricCount] = {};
  double retx_sum = 0.0;
  for (const auto& result : results) {
    for (std::size_t m = 0; m < browser::kMetricCount; ++m) {
      sums[m] += result.metrics.metric_ms(m);
    }
    retx_sum += static_cast<double>(result.transport.retransmissions);
  }
  const auto n = static_cast<double>(results.size());
  video.mean_metrics.first_visual_change = from_seconds(sums[0] / n / 1000.0);
  video.mean_metrics.speed_index = from_seconds(sums[1] / n / 1000.0);
  video.mean_metrics.visual_complete_85 = from_seconds(sums[2] / n / 1000.0);
  video.mean_metrics.last_visual_change = from_seconds(sums[3] / n / 1000.0);
  video.mean_metrics.page_load_time = from_seconds(sums[4] / n / 1000.0);
  video.mean_metrics.finished = true;
  video.mean_retransmissions = retx_sum / n;

  // Typical recording: the trial whose PLT is closest to the mean PLT
  // (inspired by [27], §3).
  const double mean_plt = sums[4] / n;
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double distance = std::fabs(results[i].metrics.plt_ms() - mean_plt);
    if (distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  video.metrics = results[best].metrics;
  video.vc_curve = std::move(results[best].vc_curve);
  return video;
}

VideoLibrary::VideoLibrary(std::uint64_t catalog_seed, std::uint32_t runs)
    : catalog_seed_(catalog_seed), runs_(runs), catalog_(web::study_catalog(catalog_seed)) {}

const web::Website& VideoLibrary::site_by_name(const std::string& name) const {
  for (const auto& site : catalog_) {
    if (site.name == name) return site;
  }
  throw std::invalid_argument("unknown site: " + name);
}

const Video& VideoLibrary::get(const std::string& site_name,
                               const std::string& protocol_name,
                               net::NetworkKind network) {
  const Key key{site_name, protocol_name, static_cast<int>(network)};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  const web::Website& site = site_by_name(site_name);
  const ProtocolConfig& protocol = protocol_by_name(protocol_name);
  const net::NetworkProfile& profile = net::profile_for(network);
  const Rng seeder(catalog_seed_);
  const std::uint64_t base_seed =
      seeder.fork(site_name)
          .fork(protocol_name)
          .fork(static_cast<std::uint64_t>(network))
          .next_u64();
  return cache_.emplace(key, produce_video(site, protocol, profile, runs_, base_seed))
      .first->second;
}

void VideoLibrary::precompute(const std::vector<std::string>& sites,
                              const std::vector<std::string>& protocols,
                              const std::vector<net::NetworkKind>& networks) {
  struct Task {
    std::string site;
    std::string protocol;
    net::NetworkKind network;
  };
  std::vector<Task> tasks;
  for (const auto& site : sites) {
    for (const auto& protocol : protocols) {
      for (const auto network : networks) {
        const Key key{site, protocol, static_cast<int>(network)};
        if (!cache_.contains(key)) tasks.push_back(Task{site, protocol, network});
      }
    }
  }
  if (tasks.empty()) return;

  const unsigned workers =
      std::max(1u, std::min<unsigned>(std::thread::hardware_concurrency(),
                                      static_cast<unsigned>(tasks.size())));
  std::vector<Video> videos(tasks.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t index = next.fetch_add(1);
        if (index >= tasks.size()) return;
        const Task& task = tasks[index];
        const web::Website& site = site_by_name(task.site);
        const ProtocolConfig& protocol = protocol_by_name(task.protocol);
        const net::NetworkProfile& profile = net::profile_for(task.network);
        const Rng seeder(catalog_seed_);
        const std::uint64_t base_seed =
            seeder.fork(task.site)
                .fork(task.protocol)
                .fork(static_cast<std::uint64_t>(task.network))
                .next_u64();
        videos[index] = produce_video(site, protocol, profile, runs_, base_seed);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Key key{tasks[i].site, tasks[i].protocol, static_cast<int>(tasks[i].network)};
    cache_.emplace(key, std::move(videos[i]));
  }
}

namespace {

void write_metrics(std::ostream& os, const browser::PageMetrics& metrics) {
  os << metrics.first_visual_change.count() << ' ' << metrics.speed_index.count() << ' '
     << metrics.visual_complete_85.count() << ' ' << metrics.last_visual_change.count()
     << ' ' << metrics.page_load_time.count();
}

browser::PageMetrics read_metrics(std::istream& is) {
  browser::PageMetrics metrics;
  std::int64_t fvc = 0;
  std::int64_t si = 0;
  std::int64_t vc85 = 0;
  std::int64_t lvc = 0;
  std::int64_t plt = 0;
  is >> fvc >> si >> vc85 >> lvc >> plt;
  metrics.first_visual_change = SimDuration{fvc};
  metrics.speed_index = SimDuration{si};
  metrics.visual_complete_85 = SimDuration{vc85};
  metrics.last_visual_change = SimDuration{lvc};
  metrics.page_load_time = SimDuration{plt};
  metrics.finished = true;
  return metrics;
}

}  // namespace

bool VideoLibrary::load_cache(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic;
  std::uint64_t seed = 0;
  std::uint32_t runs = 0;
  std::size_t count = 0;
  in >> magic >> seed >> runs >> count;
  if (magic != "qperc-video-cache-v1" || seed != catalog_seed_ || runs != runs_) {
    return false;
  }
  for (std::size_t i = 0; i < count; ++i) {
    Video video;
    int network = 0;
    std::size_t curve_points = 0;
    in >> video.site >> video.protocol >> network >> video.runs >>
        video.mean_retransmissions;
    video.network = static_cast<net::NetworkKind>(network);
    video.metrics = read_metrics(in);
    video.mean_metrics = read_metrics(in);
    in >> curve_points;
    video.vc_curve.resize(curve_points);
    for (auto& sample : video.vc_curve) {
      std::int64_t time = 0;
      in >> time >> sample.completeness;
      sample.time = SimTime{time};
    }
    if (!in) return false;
    const Key key{video.site, video.protocol, network};
    cache_.insert_or_assign(key, std::move(video));
  }
  return true;
}

void VideoLibrary::save_cache(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return;
  out << "qperc-video-cache-v1 " << catalog_seed_ << ' ' << runs_ << ' ' << cache_.size()
      << '\n';
  out.precision(17);
  for (const auto& [key, video] : cache_) {
    out << video.site << ' ' << video.protocol << ' ' << static_cast<int>(video.network)
        << ' ' << video.runs << ' ' << video.mean_retransmissions << ' ';
    write_metrics(out, video.metrics);
    out << ' ';
    write_metrics(out, video.mean_metrics);
    out << ' ' << video.vc_curve.size();
    for (const auto& sample : video.vc_curve) {
      out << ' ' << sample.time.count() << ' ' << sample.completeness;
    }
    out << '\n';
  }
}

}  // namespace qperc::core
