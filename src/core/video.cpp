#include "core/video.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "runner/executor.hpp"
#include "util/rng.hpp"

namespace qperc::core {

std::uint64_t condition_base_seed(std::uint64_t catalog_seed, std::string_view site,
                                  std::string_view protocol, net::NetworkKind network) {
  const Rng seeder(catalog_seed);
  return seeder.fork(site)
      .fork(protocol)
      .fork(static_cast<std::uint64_t>(network))
      .next_u64();
}

Video produce_video(const web::Website& site, const ProtocolConfig& protocol,
                    const net::NetworkProfile& profile, std::uint32_t runs,
                    std::uint64_t base_seed, trace::TraceSink* trace) {
  Video video;
  video.site = site.name;
  video.protocol = protocol.name;
  video.network = profile.kind;
  video.runs = runs;

  const Rng seeder(base_seed);
  std::vector<browser::PageLoadResult> results;
  results.reserve(runs);
  for (std::uint32_t run = 0; run < runs; ++run) {
    Rng run_rng = seeder.fork(run + 1);
    results.push_back(
        run_trial(TrialSpec(site, protocol, profile, run_rng.next_u64()).with_trace(trace)));
  }

  // Per-condition means of every metric.
  double sums[browser::kMetricCount] = {};
  double retx_sum = 0.0;
  for (const auto& result : results) {
    for (std::size_t m = 0; m < browser::kMetricCount; ++m) {
      sums[m] += result.metrics.metric_ms(m);
    }
    retx_sum += static_cast<double>(result.transport.retransmissions);
  }
  const auto n = static_cast<double>(results.size());
  video.mean_metrics.first_visual_change = from_seconds(sums[0] / n / 1000.0);
  video.mean_metrics.speed_index = from_seconds(sums[1] / n / 1000.0);
  video.mean_metrics.visual_complete_85 = from_seconds(sums[2] / n / 1000.0);
  video.mean_metrics.last_visual_change = from_seconds(sums[3] / n / 1000.0);
  video.mean_metrics.page_load_time = from_seconds(sums[4] / n / 1000.0);
  video.mean_metrics.finished = true;
  video.mean_retransmissions = retx_sum / n;

  // Typical recording: the trial whose PLT is closest to the mean PLT
  // (inspired by [27], §3).
  const double mean_plt = sums[4] / n;
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double distance = std::fabs(results[i].metrics.plt_ms() - mean_plt);
    if (distance < best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  video.metrics = results[best].metrics;
  video.vc_curve = std::move(results[best].vc_curve);
  return video;
}

VideoLibrary::VideoLibrary(std::uint64_t catalog_seed, std::uint32_t runs,
                           net::LinkConditions conditions)
    : catalog_seed_(catalog_seed),
      runs_(runs),
      conditions_(conditions),
      catalog_(web::study_catalog(catalog_seed)) {}

const web::Website& VideoLibrary::site_by_name(const std::string& name) const {
  for (const auto& site : catalog_) {
    if (site.name == name) return site;
  }
  throw std::invalid_argument("unknown site: " + name);
}

const Video& VideoLibrary::get(const std::string& site_name,
                               const std::string& protocol_name,
                               net::NetworkKind network) {
  const Key key{site_name, protocol_name, static_cast<int>(network)};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  const web::Website& site = site_by_name(site_name);
  const ProtocolConfig& protocol = protocol_by_name(protocol_name);
  net::NetworkProfile profile = net::profile_for(network);
  conditions_.apply(profile);
  const std::uint64_t base_seed =
      condition_base_seed(catalog_seed_, site_name, protocol_name, network);
  return cache_.emplace(key, produce_video(site, protocol, profile, runs_, base_seed))
      .first->second;
}

bool VideoLibrary::insert(Video video) {
  const Key key{video.site, video.protocol, static_cast<int>(video.network)};
  return cache_.emplace(key, std::move(video)).second;
}

void VideoLibrary::precompute(const std::vector<std::string>& sites,
                              const std::vector<std::string>& protocols,
                              const std::vector<net::NetworkKind>& networks) {
  struct Task {
    std::string site;
    std::string protocol;
    net::NetworkKind network;
  };
  std::vector<Task> tasks;
  for (const auto& site : sites) {
    for (const auto& protocol : protocols) {
      for (const auto network : networks) {
        const Key key{site, protocol, static_cast<int>(network)};
        if (!cache_.contains(key)) tasks.push_back(Task{site, protocol, network});
      }
    }
  }
  if (tasks.empty()) return;

  // Each task writes into its own index-keyed slot, so the cache contents
  // are independent of the worker count; seeds come from the condition
  // identity alone.
  std::vector<Video> videos(tasks.size());
  const runner::Executor executor;
  const auto failures = executor.run(tasks.size(), [&](std::size_t index) {
    const Task& task = tasks[index];
    const web::Website& site = site_by_name(task.site);
    const ProtocolConfig& protocol = protocol_by_name(task.protocol);
    net::NetworkProfile profile = net::profile_for(task.network);
    conditions_.apply(profile);
    const std::uint64_t base_seed =
        condition_base_seed(catalog_seed_, task.site, task.protocol, task.network);
    videos[index] = produce_video(site, protocol, profile, runs_, base_seed);
  });

  // Cache every completed condition before surfacing any failure, so a bad
  // condition does not discard the finished work of the others.
  std::size_t next_failure = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (next_failure < failures.size() && failures[next_failure].index == i) {
      ++next_failure;
      continue;
    }
    const Key key{tasks[i].site, tasks[i].protocol, static_cast<int>(tasks[i].network)};
    cache_.emplace(key, std::move(videos[i]));
  }
  if (!failures.empty()) std::rethrow_exception(failures.front().error);
}

namespace {

// v2 added the LinkConditions token to the header (variable-rate links).
constexpr const char* kCacheMagic = "qperc-video-cache-v2";
/// Sanity cap when parsing: no recorded VC curve comes close to this many
/// samples, so a larger count only ever means a corrupt file.
constexpr std::size_t kMaxCurvePoints = 1'000'000;

void write_metrics(std::ostream& os, const browser::PageMetrics& metrics) {
  os << metrics.first_visual_change.count() << ' ' << metrics.speed_index.count() << ' '
     << metrics.visual_complete_85.count() << ' ' << metrics.last_visual_change.count()
     << ' ' << metrics.page_load_time.count();
}

browser::PageMetrics read_metrics(std::istream& is) {
  browser::PageMetrics metrics;
  std::int64_t fvc = 0;
  std::int64_t si = 0;
  std::int64_t vc85 = 0;
  std::int64_t lvc = 0;
  std::int64_t plt = 0;
  is >> fvc >> si >> vc85 >> lvc >> plt;
  metrics.first_visual_change = SimDuration{fvc};
  metrics.speed_index = SimDuration{si};
  metrics.visual_complete_85 = SimDuration{vc85};
  metrics.last_visual_change = SimDuration{lvc};
  metrics.page_load_time = SimDuration{plt};
  metrics.finished = true;
  return metrics;
}

}  // namespace

void write_video_record(std::ostream& os, const Video& video) {
  os.precision(17);
  os << video.site << ' ' << video.protocol << ' ' << static_cast<int>(video.network)
     << ' ' << video.runs << ' ' << video.mean_retransmissions << ' ';
  write_metrics(os, video.metrics);
  os << ' ';
  write_metrics(os, video.mean_metrics);
  os << ' ' << video.vc_curve.size();
  for (const auto& sample : video.vc_curve) {
    os << ' ' << sample.time.count() << ' ' << sample.completeness;
  }
}

bool read_video_record(std::istream& is, Video& video) {
  int network = 0;
  std::size_t curve_points = 0;
  is >> video.site >> video.protocol >> network >> video.runs >>
      video.mean_retransmissions;
  if (!is || network < 0 || network > static_cast<int>(net::NetworkKind::kMss)) {
    return false;
  }
  video.network = static_cast<net::NetworkKind>(network);
  video.metrics = read_metrics(is);
  video.mean_metrics = read_metrics(is);
  is >> curve_points;
  if (!is || curve_points > kMaxCurvePoints) return false;
  video.vc_curve.resize(curve_points);
  for (auto& sample : video.vc_curve) {
    std::int64_t time = 0;
    is >> time >> sample.completeness;
    sample.time = SimTime{time};
  }
  return static_cast<bool>(is);
}

bool VideoLibrary::load_cache(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic;
  std::uint64_t seed = 0;
  std::uint32_t runs = 0;
  std::string trace_kind;
  std::uint64_t trace_seed = 0;
  std::uint64_t policer_bps = 0;
  std::uint64_t policer_burst = 0;
  std::size_t count = 0;
  in >> magic >> seed >> runs >> trace_kind >> trace_seed >> policer_bps >>
      policer_burst >> count;
  const std::string cached_conditions = trace_kind + ' ' + std::to_string(trace_seed) +
                                        ' ' + std::to_string(policer_bps) + ' ' +
                                        std::to_string(policer_burst);
  if (!in || magic != kCacheMagic || seed != catalog_seed_ || runs != runs_ ||
      cached_conditions != conditions_.token()) {
    return false;
  }
  // Parse into a staging map first: a truncated or corrupt file must not
  // leave partially-loaded entries in the live cache, which precompute
  // would then treat as valid and never recompute.
  std::map<Key, Video> staged;
  for (std::size_t i = 0; i < count; ++i) {
    Video video;
    if (!read_video_record(in, video)) return false;
    const Key key{video.site, video.protocol, static_cast<int>(video.network)};
    staged.insert_or_assign(key, std::move(video));
  }
  for (auto& [key, video] : staged) cache_.insert_or_assign(key, std::move(video));
  return true;
}

void VideoLibrary::save_cache(const std::string& path) const {
  // Write to a sibling temp file and rename into place: an interrupted run
  // can never leave a half-written cache that poisons later runs.
  const std::string temp_path = path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::trunc);
    if (!out) return;
    out << kCacheMagic << ' ' << catalog_seed_ << ' ' << runs_ << ' '
        << conditions_.token() << ' ' << cache_.size() << '\n';
    for (const auto& [key, video] : cache_) {
      write_video_record(out, video);
      out << '\n';
    }
    out.flush();
    if (!out) {
      std::remove(temp_path.c_str());
      return;
    }
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) std::remove(temp_path.c_str());
}

}  // namespace qperc::core
