#include "core/trial_context.hpp"

#include <optional>
#include <utility>

#include "core/cross_traffic.hpp"
#include "http/session.hpp"
#include "net/emulated_network.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace qperc::core {

browser::PageLoadResult TrialContext::run(const TrialSpec& spec,
                                          ContentionOutcome* contention) {
  // Cold throw helpers rather than inline `throw`: run() is a hot-path root
  // for scripts/analyze_hotpath.py, and an inline throw would plant
  // __cxa_throw plus a std::string build directly in this function's text.
  if (spec.site == nullptr) check::throw_invalid_argument("TrialSpec: site is null");
  if (spec.protocol == nullptr) check::throw_invalid_argument("TrialSpec: protocol is null");
  spec.profile.validate();
  spec.contention.validate();

  // Discard the previous trial (arena blocks and container capacity are
  // kept) before any of this trial's state is built.
  simulator_.reset();
  simulator_.set_trace(spec.trace);
  Rng rng(spec.seed);
  net::EmulatedNetwork network(simulator_, spec.profile, rng.fork("network"),
                               spec.contention);

  // Cross traffic is created before the page load so its flow ids, endpoints,
  // and t=0 start events all precede the browser's — and not at all when
  // contention is disabled, keeping the single-flow path draw-for-draw
  // identical to the paper topology.
  std::optional<CrossTraffic> cross;
  if (spec.contention.enabled()) {
    cross.emplace(simulator_, network, spec.contention, rng.fork("contention"));
  }

  // The configs are hoisted so the factory lambdas can capture them by
  // reference: three pointers fit SmallFunction's inline buffer, so building
  // the factory costs no allocation. Both locals outlive load_page below.
  const ProtocolConfig& protocol = *spec.protocol;
  const tcp::TcpConfig tcp_config =
      protocol.transport != Transport::kQuic ? protocol.tcp_config() : tcp::TcpConfig{};
  const quic::QuicConfig quic_config =
      protocol.transport == Transport::kQuic ? protocol.quic_config() : quic::QuicConfig{};
  browser::PageLoader::SessionFactory factory;
  switch (protocol.transport) {
    case Transport::kTcp:
      factory = [this, &network, &tcp_config](net::ServerId origin) {
        return http::make_h2_session(simulator_, network, origin, tcp_config);
      };
      break;
    case Transport::kQuic:
      factory = [this, &network, &quic_config](net::ServerId origin) {
        return http::make_quic_session(simulator_, network, origin, quic_config);
      };
      break;
    case Transport::kTcpH1:
      factory = [this, &network, &tcp_config](net::ServerId origin) {
        return http::make_h1_session(simulator_, network, origin, tcp_config);
      };
      break;
  }
  browser::PageLoadResult result = browser::load_page(
      simulator_, *spec.site, std::move(factory), rng.fork("browser"),
      browser::kDefaultLoadTimeCap, spec.max_events);

  if (contention != nullptr && cross.has_value()) {
    const SimTime end = simulator_.now();
    contention->flows.clear();
    contention->flows.reserve(cross->flow_count());
    for (std::uint32_t i = 0; i < cross->flow_count(); ++i) {
      const CrossTrafficSource& source = cross->source(i);
      ContentionOutcome::Flow flow;
      flow.protocol = source.protocol_label();
      flow.bytes_delivered = source.bytes_delivered();
      flow.goodput_bps = source.goodput_bps(end);
      flow.retransmissions = source.transport_stats().retransmissions;
      contention->flows.push_back(flow);
    }
    contention->peak_queue_bytes = network.downlink_stats().max_queue_bytes;
    contention->queue_capacity_bytes = network.downlink().queue_capacity_bytes();
    contention->queue_drops = network.downlink_stats().drops_queue_full +
                              network.uplink_stats().drops_queue_full;
    contention->measured = end - SimTime{0};
  }
  return result;
}

}  // namespace qperc::core
