#include "core/trial_context.hpp"

#include <stdexcept>
#include <utility>

#include "http/session.hpp"
#include "net/emulated_network.hpp"
#include "util/rng.hpp"

namespace qperc::core {

browser::PageLoadResult TrialContext::run(const TrialSpec& spec) {
  if (spec.site == nullptr) throw std::invalid_argument("TrialSpec: site is null");
  if (spec.protocol == nullptr) throw std::invalid_argument("TrialSpec: protocol is null");
  spec.profile.validate();

  // Discard the previous trial (arena blocks and container capacity are
  // kept) before any of this trial's state is built.
  simulator_.reset();
  simulator_.set_trace(spec.trace);
  Rng rng(spec.seed);
  net::EmulatedNetwork network(simulator_, spec.profile, rng.fork("network"));

  const ProtocolConfig& protocol = *spec.protocol;
  browser::PageLoader::SessionFactory factory;
  switch (protocol.transport) {
    case Transport::kTcp: {
      const tcp::TcpConfig config = protocol.tcp_config();
      factory = [this, &network, config](net::ServerId origin) {
        return http::make_h2_session(simulator_, network, origin, config);
      };
      break;
    }
    case Transport::kQuic: {
      const quic::QuicConfig config = protocol.quic_config();
      factory = [this, &network, config](net::ServerId origin) {
        return http::make_quic_session(simulator_, network, origin, config);
      };
      break;
    }
    case Transport::kTcpH1: {
      const tcp::TcpConfig config = protocol.tcp_config();
      factory = [this, &network, config](net::ServerId origin) {
        return http::make_h1_session(simulator_, network, origin, config);
      };
      break;
    }
  }
  return browser::load_page(simulator_, *spec.site, std::move(factory),
                            rng.fork("browser"), browser::kDefaultLoadTimeCap,
                            spec.max_events);
}

}  // namespace qperc::core
