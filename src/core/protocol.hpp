// The five protocol configurations of Table 1.
#pragma once

#include <string>
#include <vector>

#include "cc/factory.hpp"
#include "quic/config.hpp"
#include "tcp/config.hpp"

namespace qperc::core {

enum class Transport {
  kTcp,    // TCP+TLS+HTTP/2 (Table 1's TCP rows)
  kQuic,   // gQUIC (Table 1's QUIC rows)
  kTcpH1,  // TCP+TLS+HTTP/1.1 — the related-work baseline (§2), ablations only
};

struct ProtocolConfig {
  std::string name;
  Transport transport = Transport::kTcp;
  cc::CcKind congestion_control = cc::CcKind::kCubic;
  std::uint32_t initial_window_segments = 10;
  bool pacing = false;
  bool tuned_buffers = false;
  bool slow_start_after_idle = true;
  /// Ablation only: 0-RTT (QUIC cached config / TCP TFO+early-data).
  bool zero_rtt = false;
  /// Ablation only: cap on QUIC ACK ranges (0 = gQUIC default of 256).
  std::uint32_t quic_max_ack_ranges = 0;
  /// Ablation only: explicit TCP handshake round trips before the request
  /// (-1 = derive from zero_rtt: 0 or 2). 1 models TFO with a cached cookie.
  int tcp_handshake_rtts = -1;

  [[nodiscard]] tcp::TcpConfig tcp_config() const;
  [[nodiscard]] quic::QuicConfig quic_config() const;
};

/// Table 1, in the paper's order: TCP, TCP+, TCP+BBR, QUIC, QUIC+BBR.
[[nodiscard]] const std::vector<ProtocolConfig>& paper_protocols();
[[nodiscard]] const ProtocolConfig& protocol_by_name(std::string_view name);

/// Stock TCP+TLS+HTTP/1.1 — what most prior QUIC studies compared against.
[[nodiscard]] const ProtocolConfig& http1_baseline_protocol();

}  // namespace qperc::core
