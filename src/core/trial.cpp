#include "core/trial.hpp"

#include "core/trial_context.hpp"

namespace qperc::core {

browser::PageLoadResult run_trial(const TrialSpec& spec) {
  // One-shot context: identical behavior to context reuse (reset() on a
  // fresh simulator is a no-op), so there is exactly one trial code path.
  TrialContext context;
  return context.run(spec);
}

// The shims forward through the TrialSpec entry point; suppress their own
// deprecation inside this translation unit.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

browser::PageLoadResult run_trial(const web::Website& site, const ProtocolConfig& protocol,
                                  const net::NetworkProfile& profile, std::uint64_t seed) {
  return run_trial(TrialSpec(site, protocol, profile, seed));
}

browser::PageLoadResult run_trial(const web::Website& site, const ProtocolConfig& protocol,
                                  const net::NetworkProfile& profile, std::uint64_t seed,
                                  trace::TraceSink* trace) {
  return run_trial(TrialSpec(site, protocol, profile, seed).with_trace(trace));
}

#pragma GCC diagnostic pop

}  // namespace qperc::core
