#include "core/trial.hpp"

#include "http/session.hpp"
#include "net/emulated_network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qperc::core {

browser::PageLoadResult run_trial(const web::Website& site, const ProtocolConfig& protocol,
                                  const net::NetworkProfile& profile, std::uint64_t seed) {
  return run_trial(site, protocol, profile, seed, nullptr);
}

browser::PageLoadResult run_trial(const web::Website& site, const ProtocolConfig& protocol,
                                  const net::NetworkProfile& profile, std::uint64_t seed,
                                  trace::TraceSink* trace) {
  sim::Simulator simulator;
  simulator.set_trace(trace);
  Rng rng(seed);
  net::EmulatedNetwork network(simulator, profile, rng.fork("network"));

  browser::PageLoader::SessionFactory factory;
  switch (protocol.transport) {
    case Transport::kTcp: {
      const tcp::TcpConfig config = protocol.tcp_config();
      factory = [&simulator, &network, config](net::ServerId origin) {
        return http::make_h2_session(simulator, network, origin, config);
      };
      break;
    }
    case Transport::kQuic: {
      const quic::QuicConfig config = protocol.quic_config();
      factory = [&simulator, &network, config](net::ServerId origin) {
        return http::make_quic_session(simulator, network, origin, config);
      };
      break;
    }
    case Transport::kTcpH1: {
      const tcp::TcpConfig config = protocol.tcp_config();
      factory = [&simulator, &network, config](net::ServerId origin) {
        return http::make_h1_session(simulator, network, origin, config);
      };
      break;
    }
  }
  return browser::load_page(simulator, site, std::move(factory), rng.fork("browser"));
}

}  // namespace qperc::core
