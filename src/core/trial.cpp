#include "core/trial.hpp"

#include <stdexcept>

#include "http/session.hpp"
#include "net/emulated_network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qperc::core {

browser::PageLoadResult run_trial(const TrialSpec& spec) {
  if (spec.site == nullptr) throw std::invalid_argument("TrialSpec: site is null");
  if (spec.protocol == nullptr) throw std::invalid_argument("TrialSpec: protocol is null");
  spec.profile.validate();

  sim::Simulator simulator;
  simulator.set_trace(spec.trace);
  Rng rng(spec.seed);
  net::EmulatedNetwork network(simulator, spec.profile, rng.fork("network"));

  const ProtocolConfig& protocol = *spec.protocol;
  browser::PageLoader::SessionFactory factory;
  switch (protocol.transport) {
    case Transport::kTcp: {
      const tcp::TcpConfig config = protocol.tcp_config();
      factory = [&simulator, &network, config](net::ServerId origin) {
        return http::make_h2_session(simulator, network, origin, config);
      };
      break;
    }
    case Transport::kQuic: {
      const quic::QuicConfig config = protocol.quic_config();
      factory = [&simulator, &network, config](net::ServerId origin) {
        return http::make_quic_session(simulator, network, origin, config);
      };
      break;
    }
    case Transport::kTcpH1: {
      const tcp::TcpConfig config = protocol.tcp_config();
      factory = [&simulator, &network, config](net::ServerId origin) {
        return http::make_h1_session(simulator, network, origin, config);
      };
      break;
    }
  }
  return browser::load_page(simulator, *spec.site, std::move(factory),
                            rng.fork("browser"), browser::kDefaultLoadTimeCap,
                            spec.max_events);
}

// The shims forward through the TrialSpec entry point; suppress their own
// deprecation inside this translation unit.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

browser::PageLoadResult run_trial(const web::Website& site, const ProtocolConfig& protocol,
                                  const net::NetworkProfile& profile, std::uint64_t seed) {
  return run_trial(TrialSpec(site, protocol, profile, seed));
}

browser::PageLoadResult run_trial(const web::Website& site, const ProtocolConfig& protocol,
                                  const net::NetworkProfile& profile, std::uint64_t seed,
                                  trace::TraceSink* trace) {
  return run_trial(TrialSpec(site, protocol, profile, seed).with_trace(trace));
}

#pragma GCC diagnostic pop

}  // namespace qperc::core
