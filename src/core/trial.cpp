#include "core/trial.hpp"

#include "core/trial_context.hpp"

namespace qperc::core {

browser::PageLoadResult run_trial(const TrialSpec& spec) {
  // One-shot context: identical behavior to context reuse (reset() on a
  // fresh simulator is a no-op), so there is exactly one trial code path.
  TrialContext context;
  return context.run(spec);
}

}  // namespace qperc::core
