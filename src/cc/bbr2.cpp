#include "cc/bbr2.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace qperc::cc {

Bbr2::Bbr2(Bbr2Config config)
    : config_(config),
      max_bw_(config.bw_window_rounds),
      pacing_gain_(config.startup_gain),
      cwnd_gain_(config.startup_gain),
      cwnd_bytes_(config.initial_window_segments * config.mss) {}

std::uint64_t Bbr2::bdp(double gain) const {
  if (max_bw_.empty() || min_rtt_ == SimDuration::max()) {
    return config_.initial_window_segments * config_.mss;
  }
  const double bdp_bytes = max_bw_.best().bytes_per_second_d() * to_seconds(min_rtt_);
  return static_cast<std::uint64_t>(bdp_bytes * gain);
}

void Bbr2::on_packet_sent(SimTime /*now*/, std::uint64_t /*bytes_in_flight*/,
                          std::uint64_t /*packet_bytes*/) {}

void Bbr2::track_loss_round(SimTime now, const AckSample& sample) {
  round_delivered_bytes_ += sample.bytes_acked;
  if (!sample.round_trip_ended) return;

  // End of a round: apply the loss-threshold rule, then reset the counters.
  // Per the draft, loss caps the ceiling only while we are *probing* (the
  // loss is then evidence that the probe exceeded the path); reacting to
  // every lossy round would let random loss (DA2GC's 3.3%) starve the flow.
  const bool probing = mode_ == Mode::kStartup || mode_ == Mode::kProbeBwUp ||
                       mode_ == Mode::kProbeBwRefill;
  const std::uint64_t total = round_delivered_bytes_ + round_lost_bytes_;
  if (probing && total > 0 &&
      static_cast<double>(round_lost_bytes_) >
          config_.loss_threshold * static_cast<double>(total)) {
    const std::uint64_t measured = bdp(1.0);
    const std::uint64_t ceiling = std::min(inflight_hi_, std::max(measured, cwnd_bytes_));
    inflight_hi_ = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(ceiling) * config_.beta),
        config_.min_window_segments * config_.mss);
    if (mode_ == Mode::kStartup) {
      pipe_filled_ = true;  // v2 ends startup on excessive loss
    } else {
      enter_probe_down(now);
    }
  }
  round_delivered_bytes_ = 0;
  round_lost_bytes_ = 0;
}

void Bbr2::on_ack(SimTime now, const AckSample& sample) {
  if (sample.round_trip_ended) ++round_count_;

  if (sample.rtt > SimDuration::zero() &&
      (sample.rtt <= min_rtt_ || now - min_rtt_timestamp_ > config_.min_rtt_window)) {
    min_rtt_ = sample.rtt;
    min_rtt_timestamp_ = now;
  }
  if (!sample.delivery_rate.is_zero() &&
      (!sample.is_app_limited || sample.delivery_rate > max_bw_.best())) {
    max_bw_.update(sample.delivery_rate, round_count_);
  } else {
    max_bw_.advance(round_count_);
  }

  track_loss_round(now, sample);
  if (sample.round_trip_ended && !pipe_filled_) check_full_pipe();

  switch (mode_) {
    case Mode::kStartup:
      if (pipe_filled_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = config_.drain_gain;
        cwnd_gain_ = config_.cwnd_gain;
      }
      break;
    case Mode::kDrain:
      if (sample.bytes_in_flight <= bdp(1.0)) enter_probe_down(now);
      break;
    case Mode::kProbeBwDown:
    case Mode::kProbeBwCruise:
    case Mode::kProbeBwRefill:
    case Mode::kProbeBwUp:
      update_probe_cycle(now, sample.bytes_in_flight);
      break;
    case Mode::kProbeRtt:
      break;
  }

  maybe_probe_rtt(now, sample.bytes_in_flight);

  // Window: gain x BDP, never above the loss-informed ceiling (minus
  // headroom while cruising), grown at most by delivered bytes.
  std::uint64_t target = bdp(cwnd_gain_);
  if (mode_ == Mode::kProbeRtt) {
    target = config_.min_window_segments * config_.mss;
    cwnd_bytes_ = target;
  } else {
    std::uint64_t ceiling = inflight_hi_;
    if (mode_ == Mode::kProbeBwCruise && inflight_hi_ != UINT64_MAX) {
      ceiling = static_cast<std::uint64_t>(static_cast<double>(inflight_hi_) *
                                           (1.0 - config_.headroom));
    }
    target = std::min(target, ceiling);
    if (cwnd_bytes_ < target) {
      cwnd_bytes_ = std::min(target, cwnd_bytes_ + sample.bytes_acked);
    } else {
      cwnd_bytes_ = target;
    }
  }
  cwnd_bytes_ = std::clamp(cwnd_bytes_, config_.min_window_segments * config_.mss,
                           config_.max_window_segments * config_.mss);
}

void Bbr2::check_full_pipe() {
  if (max_bw_.empty()) return;
  const DataRate bw = max_bw_.best();
  if (bw.bps() >= full_bw_.bps() * 5 / 4) {
    full_bw_ = bw;
    full_bw_rounds_ = 0;
    return;
  }
  if (++full_bw_rounds_ >= 3) pipe_filled_ = true;
}

void Bbr2::enter_probe_down(SimTime now) {
  mode_ = Mode::kProbeBwDown;
  pacing_gain_ = 0.9;
  cwnd_gain_ = config_.cwnd_gain;
  probe_phase_start_ = now;
  next_probe_at_ = now + config_.probe_bw_interval;
}

void Bbr2::update_probe_cycle(SimTime now, std::uint64_t bytes_in_flight) {
  const SimDuration rtt = min_rtt_ == SimDuration::max() ? milliseconds(100) : min_rtt_;
  switch (mode_) {
    case Mode::kProbeBwDown:
      // Hold back until in-flight dropped to the (headroomed) target.
      if (bytes_in_flight <= bdp(1.0) || now - probe_phase_start_ > 2 * rtt) {
        mode_ = Mode::kProbeBwCruise;
        pacing_gain_ = 1.0;
        probe_phase_start_ = now;
      }
      break;
    case Mode::kProbeBwCruise:
      if (now >= next_probe_at_) {
        mode_ = Mode::kProbeBwRefill;
        pacing_gain_ = 1.0;
        // Refill: temporarily lift the ceiling by one round of delivery.
        probe_phase_start_ = now;
      }
      break;
    case Mode::kProbeBwRefill:
      if (now - probe_phase_start_ >= rtt) {
        mode_ = Mode::kProbeBwUp;
        pacing_gain_ = 1.25;
        probe_phase_start_ = now;
        // Probing up may raise the ceiling if the path carries it.
        if (inflight_hi_ != UINT64_MAX) {
          inflight_hi_ = std::max(inflight_hi_, bdp(1.25));
        }
      }
      break;
    case Mode::kProbeBwUp:
      if (now - probe_phase_start_ >= rtt &&
          (bytes_in_flight >= bdp(1.25) || now - probe_phase_start_ > 4 * rtt)) {
        enter_probe_down(now);
      }
      break;
    default:
      break;
  }
}

void Bbr2::maybe_probe_rtt(SimTime now, std::uint64_t bytes_in_flight) {
  const bool stale =
      min_rtt_ != SimDuration::max() && now - min_rtt_timestamp_ > config_.min_rtt_window;
  if (mode_ != Mode::kProbeRtt && stale && pipe_filled_) {
    mode_ = Mode::kProbeRtt;
    prior_cwnd_bytes_ = cwnd_bytes_;
    pacing_gain_ = 1.0;
    probe_rtt_done_at_ = kNoTime;
    probe_rtt_inflight_reached_ = false;
    return;
  }
  if (mode_ == Mode::kProbeRtt) {
    if (probe_rtt_done_at_ == kNoTime &&
        bytes_in_flight <= config_.min_window_segments * config_.mss) {
      probe_rtt_done_at_ = now + config_.probe_rtt_duration;
      probe_rtt_inflight_reached_ = true;
      min_rtt_timestamp_ = now;
    }
    if (probe_rtt_inflight_reached_ && now >= probe_rtt_done_at_) {
      min_rtt_timestamp_ = now;
      cwnd_bytes_ = std::max(prior_cwnd_bytes_, config_.min_window_segments * config_.mss);
      enter_probe_down(now);
    }
  }
}

void Bbr2::on_congestion_event(SimTime /*now*/, std::uint64_t /*bytes_in_flight*/) {
  // Loss feeds the per-round accounting; one "event" approximates one MSS.
  round_lost_bytes_ += config_.mss;
}

void Bbr2::on_retransmission_timeout() {
  inflight_hi_ = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(static_cast<double>(std::min(inflight_hi_, cwnd_bytes_)) *
                                 config_.beta),
      config_.min_window_segments * config_.mss);
  cwnd_bytes_ = config_.min_window_segments * config_.mss;
}

void Bbr2::on_restart_after_idle() {}

std::uint64_t Bbr2::congestion_window() const {
  QPERC_DCHECK_GE(cwnd_bytes_, config_.mss) << "cwnd collapsed below one MSS";
  return cwnd_bytes_;
}

DataRate Bbr2::pacing_rate(SimDuration smoothed_rtt) const {
  if (max_bw_.empty() || min_rtt_ == SimDuration::max()) {
    const SimDuration rtt = smoothed_rtt > SimDuration::zero() ? smoothed_rtt : milliseconds(100);
    const double initial_bytes =
        static_cast<double>(config_.initial_window_segments * config_.mss);
    return DataRate::bytes_per_second(initial_bytes / to_seconds(rtt) * pacing_gain_);
  }
  return max_bw_.best().scaled(pacing_gain_);
}

}  // namespace qperc::cc
