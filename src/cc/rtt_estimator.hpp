// RFC 6298 smoothed RTT / RTO estimation, shared by TCP and QUIC.
#pragma once

#include <algorithm>

#include "util/time.hpp"

#include "util/check.hpp"

namespace qperc::cc {

class RttEstimator {
 public:
  /// Linux's TCP_RTO_MIN; gQUIC clamps comparably.
  static constexpr SimDuration kMinRto = milliseconds(200);
  static constexpr SimDuration kMaxRto = seconds(60);
  static constexpr SimDuration kInitialRto = seconds(1);

  void on_rtt_sample(SimDuration rtt) {
    QPERC_DCHECK_GT(rtt.count(), 0) << "RTT samples must be strictly positive";
    latest_ = rtt;
    min_rtt_ = has_sample_ ? std::min(min_rtt_, rtt) : rtt;
    if (!has_sample_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      has_sample_ = true;
      return;
    }
    const SimDuration err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }

  [[nodiscard]] bool has_sample() const noexcept { return has_sample_; }
  [[nodiscard]] SimDuration smoothed_rtt() const noexcept { return srtt_; }
  [[nodiscard]] SimDuration latest_rtt() const noexcept { return latest_; }
  [[nodiscard]] SimDuration min_rtt() const noexcept { return min_rtt_; }
  [[nodiscard]] SimDuration rtt_var() const noexcept { return rttvar_; }

  /// Base retransmission timeout (before exponential backoff).
  [[nodiscard]] SimDuration rto() const {
    if (!has_sample_) return kInitialRto;
    return std::clamp<SimDuration>(srtt_ + std::max<SimDuration>(4 * rttvar_, milliseconds(1)),
                                   kMinRto, kMaxRto);
  }

 private:
  bool has_sample_ = false;
  SimDuration srtt_{0};
  SimDuration rttvar_{0};
  SimDuration latest_{0};
  SimDuration min_rtt_{0};
};

}  // namespace qperc::cc
