// Packet pacing, modeled on Linux's fq/sch_fq behaviour that the paper
// enables for TCP+ ("pacing with Linux's defaults of an initial quantum of
// ten and a refill quantum of two segments", §3) and that gQUIC applies
// internally.
#pragma once

#include <cstdint>

#include "util/time.hpp"
#include "util/units.hpp"

namespace qperc::cc {

struct PacerConfig {
  bool enabled = true;
  /// Burst allowed for a fresh (or idle-restarted) flow, in segments.
  std::uint32_t initial_quantum_segments = 10;
  /// Steady-state token-bucket depth, in segments.
  std::uint32_t refill_quantum_segments = 2;
  std::uint32_t segment_bytes = 1460;
};

/// Token bucket that accumulates credit at the controller-supplied pacing
/// rate. A disabled pacer always answers "send now" (stock TCP).
class Pacer {
 public:
  explicit Pacer(PacerConfig config);

  /// Installs a new pacing rate as of `now`. Credit accrued before the
  /// switch is settled at the *old* rate first: the historical plain-setter
  /// version applied the new rate retroactively across the whole gap since
  /// the last send, so a rate upswing after a long stall granted a burst the
  /// old rate never earned (and a downswing unfairly confiscated credit).
  void set_rate(SimTime now, DataRate rate);
  [[nodiscard]] DataRate rate() const noexcept { return rate_; }

  /// Earliest time `bytes` may leave. Never earlier than `now`.
  [[nodiscard]] SimTime next_send_time(SimTime now, std::uint32_t bytes) const;
  /// Consumes credit for a transmission happening at `now`.
  void on_packet_sent(SimTime now, std::uint32_t bytes);
  /// Re-grants the initial burst (flow restarted from idle).
  void on_restart_from_idle(SimTime now);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

 private:
  [[nodiscard]] double tokens_at(SimTime now) const;

  PacerConfig config_;
  DataRate rate_;
  double token_bytes_ = 0.0;  // set by the constructor
  SimTime last_update_{0};
};

}  // namespace qperc::cc
