#include "cc/pacer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace qperc::cc {

Pacer::Pacer(PacerConfig config)
    : config_(config),
      token_bytes_(static_cast<double>(config.initial_quantum_segments) *
                   config.segment_bytes) {}

void Pacer::set_rate(SimTime now, DataRate rate) {
  if (rate == rate_) return;
  if (config_.enabled && now > last_update_) {
    // Bank what the old rate earned up to this instant, then switch. The
    // cap inside tokens_at() already bounds the banked credit, so the new
    // rate starts from a settled balance instead of re-pricing the gap.
    token_bytes_ = tokens_at(now);
    last_update_ = now;
  }
  rate_ = rate;
}

double Pacer::tokens_at(SimTime now) const {
  const double cap =
      static_cast<double>(config_.refill_quantum_segments) * config_.segment_bytes;
  const double accrued =
      rate_.bytes_per_second_d() * to_seconds(std::max(now - last_update_, SimDuration::zero()));
  // The initial quantum may exceed the steady-state cap; never shrink below
  // what is already banked, only stop accruing beyond the cap.
  if (token_bytes_ >= cap) return token_bytes_;
  return std::min(cap, token_bytes_ + accrued);
}

SimTime Pacer::next_send_time(SimTime now, std::uint32_t bytes) const {
  if (!config_.enabled) return now;
  const double available = tokens_at(now);
  if (available >= bytes) return now;
  if (rate_.is_zero()) return now;  // no rate yet: do not block the handshake
  const double deficit = static_cast<double>(bytes) - available;
  return now + from_seconds(deficit / rate_.bytes_per_second_d());
}

void Pacer::on_packet_sent(SimTime now, std::uint32_t bytes) {
  if (!config_.enabled) return;
  QPERC_DCHECK_GE(now, last_update_) << "pacer clock moved backwards";
  token_bytes_ = tokens_at(now) - static_cast<double>(bytes);
  last_update_ = now;
}

void Pacer::on_restart_from_idle(SimTime now) {
  if (!config_.enabled) return;
  token_bytes_ = std::max(
      token_bytes_,
      static_cast<double>(config_.initial_quantum_segments) * config_.segment_bytes);
  last_update_ = now;
}

}  // namespace qperc::cc
