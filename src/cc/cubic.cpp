#include "cc/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace qperc::cc {
namespace {

/// HyStart only engages once the window is large enough to matter.
constexpr std::uint64_t kHystartMinWindowSegments = 16;
/// Minimum number of RTT samples per round before the delay check fires.
constexpr std::uint32_t kHystartMinSamples = 8;
constexpr SimDuration kHystartDelayMin = microseconds(4000);
constexpr SimDuration kHystartDelayMax = microseconds(16000);

}  // namespace

Cubic::Cubic(CubicConfig config)
    : config_(config),
      cwnd_bytes_(config.initial_window_segments * config.mss),
      ssthresh_bytes_(config.max_window_segments * config.mss) {}

void Cubic::on_packet_sent(SimTime /*now*/, std::uint64_t /*bytes_in_flight*/,
                           std::uint64_t /*packet_bytes*/) {}

void Cubic::on_ack(SimTime now, const AckSample& sample) {
  if (in_slow_start()) {
    // Classic slow start: one MSS per acked MSS (byte-counting).
    cwnd_bytes_ = std::min(cwnd_bytes_ + sample.bytes_acked,
                           config_.max_window_segments * config_.mss);
    if (config_.enable_hystart) hystart_on_ack(now, sample);
    return;
  }
  cubic_update(now, sample.bytes_acked);
}

void Cubic::hystart_on_ack(SimTime /*now*/, const AckSample& sample) {
  if (sample.rtt > SimDuration::zero()) {
    hystart_round_min_rtt_ = std::min(hystart_round_min_rtt_, sample.rtt);
    ++hystart_rtt_samples_;
  }
  if (!sample.round_trip_ended) return;

  // Round boundary: compare this round's min RTT against the previous one.
  if (hystart_prev_round_min_rtt_ != SimDuration::max() &&
      hystart_rtt_samples_ >= kHystartMinSamples &&
      cwnd_bytes_ >= kHystartMinWindowSegments * config_.mss) {
    const SimDuration threshold =
        std::clamp(hystart_prev_round_min_rtt_ / 8, kHystartDelayMin, kHystartDelayMax);
    if (hystart_round_min_rtt_ != SimDuration::max() &&
        hystart_round_min_rtt_ >= hystart_prev_round_min_rtt_ + threshold) {
      // Delay increase detected: leave slow start without a loss.
      ssthresh_bytes_ = cwnd_bytes_;
    }
  }
  if (hystart_round_min_rtt_ != SimDuration::max()) {
    hystart_prev_round_min_rtt_ = hystart_round_min_rtt_;
  }
  hystart_round_min_rtt_ = SimDuration::max();
  hystart_rtt_samples_ = 0;
}

void Cubic::cubic_update(SimTime now, std::uint64_t bytes_acked) {
  const auto mss = static_cast<double>(config_.mss);
  const double cwnd_segments = static_cast<double>(cwnd_bytes_) / mss;

  if (!epoch_active_) {
    epoch_active_ = true;
    epoch_start_ = now;
    if (w_max_segments_ < cwnd_segments) w_max_segments_ = cwnd_segments;
    k_seconds_ = std::cbrt(w_max_segments_ * (1.0 - config_.beta) / config_.c);
    est_segments_ = cwnd_segments;
  }

  const double t = to_seconds(now - epoch_start_);
  const double dt = t - k_seconds_;
  const double target = w_max_segments_ + config_.c * dt * dt * dt;

  // TCP-friendly region (RFC 8312 section 4.2): grow the Reno estimate by
  // 3(1-beta)/(1+beta) segments per RTT, approximated per acked segment.
  est_segments_ += 3.0 * (1.0 - config_.beta) / (1.0 + config_.beta) *
                   (static_cast<double>(bytes_acked) / std::max(cwnd_bytes_, config_.mss));

  const double desired = std::max(target, est_segments_);
  if (desired > cwnd_segments) {
    // Spread the growth over the window: per acked byte, grow proportionally.
    const double growth_per_ack =
        (desired - cwnd_segments) / cwnd_segments * static_cast<double>(bytes_acked);
    ack_credit_bytes_ += growth_per_ack;
    if (ack_credit_bytes_ >= 1.0) {
      const auto whole = static_cast<std::uint64_t>(ack_credit_bytes_);
      ack_credit_bytes_ -= static_cast<double>(whole);
      cwnd_bytes_ = std::min(cwnd_bytes_ + whole, config_.max_window_segments * config_.mss);
    }
  }
}

void Cubic::on_congestion_event(SimTime /*now*/, std::uint64_t /*bytes_in_flight*/) {
  const auto mss = static_cast<double>(config_.mss);
  const double cwnd_segments = static_cast<double>(cwnd_bytes_) / mss;
  // Fast convergence: release bandwidth faster when the window is shrinking
  // across successive loss events.
  if (cwnd_segments < w_max_segments_) {
    w_max_segments_ = cwnd_segments * (2.0 - config_.beta) / 2.0;
  } else {
    w_max_segments_ = cwnd_segments;
  }
  cwnd_bytes_ = std::max(static_cast<std::uint64_t>(cwnd_segments * config_.beta * mss),
                         config_.min_window_segments * config_.mss);
  ssthresh_bytes_ = cwnd_bytes_;
  epoch_active_ = false;
  ack_credit_bytes_ = 0.0;
}

void Cubic::on_retransmission_timeout() {
  rto_prior_cwnd_bytes_ = std::max(rto_prior_cwnd_bytes_, cwnd_bytes_);
  rto_prior_ssthresh_bytes_ = std::max(rto_prior_ssthresh_bytes_, ssthresh_bytes_);
  ssthresh_bytes_ = std::max(cwnd_bytes_ / 2, config_.min_window_segments * config_.mss);
  cwnd_bytes_ = config_.min_window_segments * config_.mss;
  epoch_active_ = false;
  ack_credit_bytes_ = 0.0;
}

void Cubic::on_spurious_retransmission_timeout() {
  // RFC 3522-style undo: the timeout was bogus (the original packet's ACK
  // arrived), so restore the window and ssthresh the RTO confiscated.
  if (rto_prior_cwnd_bytes_ > 0) {
    cwnd_bytes_ = std::max(cwnd_bytes_, rto_prior_cwnd_bytes_);
    ssthresh_bytes_ = std::max(ssthresh_bytes_, rto_prior_ssthresh_bytes_);
    rto_prior_cwnd_bytes_ = 0;
    rto_prior_ssthresh_bytes_ = 0;
    epoch_active_ = false;  // re-anchor the cubic epoch at the restored window
  }
}

void Cubic::on_restart_after_idle() {
  // net.ipv4.tcp_slow_start_after_idle: collapse cwnd back to the initial
  // window but keep ssthresh (the path memory).
  cwnd_bytes_ = std::min(cwnd_bytes_, config_.initial_window_segments * config_.mss);
  epoch_active_ = false;
}

DataRate Cubic::pacing_rate(SimDuration smoothed_rtt) const {
  if (smoothed_rtt <= SimDuration::zero()) smoothed_rtt = milliseconds(100);
  const double gain =
      in_slow_start() ? config_.pacing_gain_slow_start : config_.pacing_gain_cong_avoid;
  const double bytes_per_second =
      static_cast<double>(cwnd_bytes_) / to_seconds(smoothed_rtt) * gain;
  return DataRate::bytes_per_second(bytes_per_second);
}

}  // namespace qperc::cc
