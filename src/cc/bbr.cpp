#include "cc/bbr.hpp"

#include <algorithm>
#include <array>

#include "util/check.hpp"

namespace qperc::cc {
namespace {

/// PROBE_BW pacing-gain cycle: one probing phase, one draining phase, six
/// cruise phases.
constexpr std::array<double, 8> kGainCycle = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

// Long-term bandwidth estimation constants, matching Linux tcp_bbr.c /
// tcp-bbrplus. A sampling interval must span at least kLtIntvlMinRtts round
// trips and at most four times that; an interval "ends" on a loss event once
// the loss fraction reaches kLtLossThresh. Two consecutive intervals whose
// rates agree within 1/8 (or kLtBwDiffBps absolute) mark the link as policed.
constexpr std::uint64_t kLtIntvlMinRtts = 4;
constexpr double kLtLossThresh = 50.0 / 256.0;  // ~20% lost
constexpr std::uint64_t kLtBwDiffBps = 4000;    // 4 Kbit/s
/// Rounds to trust a long-term estimate before re-probing for fresh capacity.
constexpr std::uint64_t kLtBwMaxRtts = 48;

}  // namespace

Bbr::Bbr(BbrConfig config)
    : config_(config),
      max_bw_(config.bw_window_rounds),
      pacing_gain_(config.startup_gain),
      cwnd_gain_(config.startup_gain),
      cwnd_bytes_(config.initial_window_segments * config.mss) {}

std::uint64_t Bbr::bdp(double gain) const {
  if (max_bw_.empty() || min_rtt_ == SimDuration::max()) {
    return config_.initial_window_segments * config_.mss;
  }
  const double bdp_bytes = bandwidth_estimate().bytes_per_second_d() * to_seconds(min_rtt_);
  return static_cast<std::uint64_t>(bdp_bytes * gain);
}

void Bbr::on_packet_sent(SimTime /*now*/, std::uint64_t /*bytes_in_flight*/,
                         std::uint64_t /*packet_bytes*/) {}

void Bbr::on_ack(SimTime now, const AckSample& sample) {
  total_delivered_ += sample.bytes_acked;
  total_lost_ += sample.bytes_lost;
  if (sample.round_trip_ended) {
    ++round_count_;
    in_recovery_ = false;  // conservation window held for one round after loss
  }

  if (config_.lt_bw_enabled) lt_bw_sampling(now, sample);

  if (sample.rtt > SimDuration::zero() &&
      (sample.rtt <= min_rtt_ || now - min_rtt_timestamp_ > config_.min_rtt_window)) {
    min_rtt_ = sample.rtt;
    min_rtt_timestamp_ = now;
  }

  if (!sample.delivery_rate.is_zero() &&
      (!sample.is_app_limited || sample.delivery_rate > max_bw_.best())) {
    max_bw_.update(sample.delivery_rate, round_count_);
  } else {
    max_bw_.advance(round_count_);
  }

  if (sample.round_trip_ended && !pipe_filled_) check_full_pipe(sample);

  switch (mode_) {
    case Mode::kStartup:
      if (pipe_filled_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = config_.drain_gain;
        cwnd_gain_ = config_.cwnd_gain;
      }
      break;
    case Mode::kDrain:
      if (sample.bytes_in_flight <= bdp(1.0)) enter_probe_bw(now);
      break;
    case Mode::kProbeBw:
      update_gain_cycle(now, sample.bytes_in_flight);
      break;
    case Mode::kProbeRtt:
      break;
  }

  maybe_enter_or_exit_probe_rtt(now, sample.bytes_in_flight);

  // Target cwnd tracks the BDP model; grow towards it by acked bytes so the
  // window cannot jump past delivery evidence while filling.
  const std::uint64_t target =
      mode_ == Mode::kProbeRtt ? config_.min_window_segments * config_.mss
                               : bdp(cwnd_gain_);
  if (mode_ == Mode::kProbeRtt) {
    cwnd_bytes_ = target;
  } else if (cwnd_bytes_ < target) {
    cwnd_bytes_ = std::min(target, cwnd_bytes_ + sample.bytes_acked);
  } else {
    cwnd_bytes_ = target;
  }
  cwnd_bytes_ = std::clamp(cwnd_bytes_, config_.min_window_segments * config_.mss,
                           config_.max_window_segments * config_.mss);
}

void Bbr::check_full_pipe(const AckSample& /*sample*/) {
  if (max_bw_.empty()) return;
  const DataRate bw = max_bw_.best();
  if (bw.bps() >= full_bw_.bps() * 5 / 4) {
    full_bw_ = bw;
    full_bw_rounds_ = 0;
    return;
  }
  if (++full_bw_rounds_ >= 3) pipe_filled_ = true;
}

void Bbr::enter_probe_bw(SimTime now) {
  mode_ = Mode::kProbeBw;
  cwnd_gain_ = config_.cwnd_gain;
  // Start in a random-ish cruise phase in real BBR; deterministic phase 2
  // keeps simulation runs reproducible without changing steady-state shape.
  cycle_index_ = 2;
  pacing_gain_ = kGainCycle[cycle_index_];
  cycle_start_ = now;
}

void Bbr::update_gain_cycle(SimTime now, std::uint64_t bytes_in_flight) {
  // While the long-term (policed) estimate is in force the gain stays at
  // 1.0: probing above a policer only manufactures loss (Linux:
  // bbr_update_cycle_phase bails when lt_use_bw).
  if (lt_use_bw_) return;
  const SimDuration phase_length = min_rtt_ == SimDuration::max() ? milliseconds(100) : min_rtt_;
  bool advance = now - cycle_start_ > phase_length;
  // Stay in the 1.25 probing phase until it actually inflated the pipe, and
  // stay in the 0.75 drain phase until the queue is drained.
  if (pacing_gain_ > 1.0 && bytes_in_flight < bdp(pacing_gain_)) advance = false;
  if (pacing_gain_ < 1.0 && bytes_in_flight <= bdp(1.0)) advance = true;
  if (advance) {
    cycle_index_ = (cycle_index_ + 1) % kGainCycle.size();
    pacing_gain_ = kGainCycle[cycle_index_];
    cycle_start_ = now;
  }
}

void Bbr::maybe_enter_or_exit_probe_rtt(SimTime now, std::uint64_t bytes_in_flight) {
  const bool min_rtt_stale =
      min_rtt_ != SimDuration::max() && now - min_rtt_timestamp_ > config_.min_rtt_window;
  if (mode_ != Mode::kProbeRtt && min_rtt_stale && pipe_filled_) {
    mode_ = Mode::kProbeRtt;
    prior_cwnd_bytes_ = cwnd_bytes_;
    pacing_gain_ = 1.0;
    probe_rtt_done_at_ = kNoTime;
    probe_rtt_round_seen_ = false;
    return;
  }
  if (mode_ == Mode::kProbeRtt) {
    if (probe_rtt_done_at_ == kNoTime &&
        bytes_in_flight <= config_.min_window_segments * config_.mss) {
      probe_rtt_done_at_ = now + config_.probe_rtt_duration;
      probe_rtt_round_seen_ = true;
      min_rtt_timestamp_ = now;  // we are re-measuring now
    }
    if (probe_rtt_round_seen_ && now >= probe_rtt_done_at_) {
      min_rtt_timestamp_ = now;
      cwnd_bytes_ = std::max(prior_cwnd_bytes_, config_.min_window_segments * config_.mss);
      enter_probe_bw(now);
    }
  }
}

void Bbr::on_congestion_event(SimTime /*now*/, std::uint64_t bytes_in_flight) {
  // BBRv1 does not reduce its model on loss; it only bounds cwnd to the
  // delivered + in-flight evidence during recovery (packet conservation).
  if (!in_recovery_) {
    in_recovery_ = true;
    cwnd_bytes_ =
        std::max(bytes_in_flight, config_.min_window_segments * config_.mss);
  }
}

void Bbr::on_retransmission_timeout() {
  in_recovery_ = true;
  rto_prior_cwnd_bytes_ = std::max(rto_prior_cwnd_bytes_, cwnd_bytes_);
  cwnd_bytes_ = config_.min_window_segments * config_.mss;
}

void Bbr::on_spurious_retransmission_timeout() {
  // The RTO that collapsed cwnd was bogus (the original packet's ACK
  // arrived): restore the pre-collapse window. The bandwidth/min-RTT model
  // was never touched, so this is all the undo BBR needs.
  if (rto_prior_cwnd_bytes_ > 0) {
    cwnd_bytes_ = std::max(cwnd_bytes_, rto_prior_cwnd_bytes_);
    rto_prior_cwnd_bytes_ = 0;
  }
  in_recovery_ = false;
}

void Bbr::on_restart_after_idle() {
  // BBR is rate-based; restarting from idle keeps the model (Linux BBR
  // likewise ignores tcp_slow_start_after_idle).
  in_recovery_ = false;
}

std::uint64_t Bbr::congestion_window() const {
  // Recovery ends implicitly as soon as on_ack raises the window again; the
  // flag is cleared lazily there.
  QPERC_DCHECK_GE(cwnd_bytes_, config_.mss) << "cwnd collapsed below one MSS";
  return cwnd_bytes_;
}

DataRate Bbr::pacing_rate(SimDuration smoothed_rtt) const {
  if (max_bw_.empty() || min_rtt_ == SimDuration::max()) {
    // No model yet: pace the initial window over the handshake RTT estimate.
    const SimDuration rtt = smoothed_rtt > SimDuration::zero() ? smoothed_rtt : milliseconds(100);
    const double initial_bytes =
        static_cast<double>(config_.initial_window_segments * config_.mss);
    return DataRate::bytes_per_second(initial_bytes / to_seconds(rtt) * pacing_gain_);
  }
  return bandwidth_estimate().scaled(pacing_gain_);
}

void Bbr::lt_bw_sampling(SimTime now, const AckSample& sample) {
  if (lt_use_bw_) {
    // Trust the long-term estimate for kLtBwMaxRtts rounds of PROBE_BW, then
    // forget it and probe for fresh capacity (the policer may be gone).
    if (mode_ == Mode::kProbeBw && sample.round_trip_ended &&
        ++lt_rtt_cnt_ >= kLtBwMaxRtts) {
      reset_lt_bw_sampling(now);
      enter_probe_bw(now);
    }
    return;
  }

  // A policer's bucket refills while the sender is app-limited, so an
  // interval spanning app-limited time would under-read the policed rate.
  if (sample.is_app_limited) {
    reset_lt_bw_sampling_interval(now);
    return;
  }

  if (!lt_is_sampling_) {
    if (sample.bytes_lost == 0) return;  // intervals start at a loss
    reset_lt_bw_sampling_interval(now);
    lt_is_sampling_ = true;
  }

  if (sample.round_trip_ended) ++lt_rtt_cnt_;
  if (lt_rtt_cnt_ < kLtIntvlMinRtts) return;
  if (lt_rtt_cnt_ > 4 * kLtIntvlMinRtts) {
    // Interval too long: rate samples this stale tell us nothing about a
    // policer's bucket. Restart from scratch.
    reset_lt_bw_sampling(now);
    return;
  }

  if (sample.bytes_lost == 0) return;  // intervals also end at a loss

  const std::uint64_t lost = total_lost_ - lt_last_lost_;
  const std::uint64_t delivered = total_delivered_ - lt_last_delivered_;
  if (delivered == 0 ||
      static_cast<double>(lost) < kLtLossThresh * static_cast<double>(delivered)) {
    return;  // not lossy enough to look policed
  }

  const SimDuration span = now - lt_last_stamp_;
  if (span < milliseconds(1)) return;  // too short for a meaningful rate
  lt_bw_interval_done(now, DataRate::from_bytes_and_duration(delivered, span));
}

void Bbr::lt_bw_interval_done(SimTime now, DataRate bw) {
  if (!lt_bw_.is_zero()) {
    const std::uint64_t diff =
        bw > lt_bw_ ? bw.bps() - lt_bw_.bps() : lt_bw_.bps() - bw.bps();
    if (diff * 8 <= lt_bw_.bps() || diff <= kLtBwDiffBps) {
      // Two consecutive intervals delivered at the same heavily-lossy rate:
      // that is a token-bucket policer's signature. Pace at the average and
      // stop probing above it.
      lt_bw_ = DataRate::bits_per_second((lt_bw_.bps() + bw.bps()) / 2);
      lt_use_bw_ = true;
      pacing_gain_ = 1.0;
      lt_rtt_cnt_ = 0;
      return;
    }
  }
  lt_bw_ = bw;
  reset_lt_bw_sampling_interval(now);
}

void Bbr::reset_lt_bw_sampling_interval(SimTime now) {
  lt_last_stamp_ = now;
  lt_last_delivered_ = total_delivered_;
  lt_last_lost_ = total_lost_;
  lt_rtt_cnt_ = 0;
}

void Bbr::reset_lt_bw_sampling(SimTime now) {
  lt_bw_ = DataRate{};
  lt_use_bw_ = false;
  lt_is_sampling_ = false;
  reset_lt_bw_sampling_interval(now);
}

}  // namespace qperc::cc
