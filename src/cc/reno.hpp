// NewReno congestion control (RFC 5681/6582): the classic AIMD baseline —
// useful for ablations against Cubic and the BBR family.
#pragma once

#include <cstdint>

#include "cc/congestion_controller.hpp"

#include "util/check.hpp"

namespace qperc::cc {

struct RenoConfig {
  std::uint64_t initial_window_segments = 10;
  std::uint64_t mss = kDefaultMss;
  std::uint64_t min_window_segments = 2;
  std::uint64_t max_window_segments = 10'000;
  double pacing_gain_slow_start = 2.0;
  double pacing_gain_cong_avoid = 1.2;
};

class Reno final : public CongestionController {
 public:
  explicit Reno(RenoConfig config);

  void on_packet_sent(SimTime now, std::uint64_t bytes_in_flight,
                      std::uint64_t packet_bytes) override;
  void on_ack(SimTime now, const AckSample& sample) override;
  void on_congestion_event(SimTime now, std::uint64_t bytes_in_flight) override;
  void on_retransmission_timeout() override;
  void on_restart_after_idle() override;

  [[nodiscard]] std::uint64_t congestion_window() const override {
    QPERC_DCHECK_GE(cwnd_bytes_, config_.mss) << "cwnd collapsed below one MSS";
    return cwnd_bytes_;
  }
  [[nodiscard]] DataRate pacing_rate(SimDuration smoothed_rtt) const override;
  [[nodiscard]] bool in_slow_start() const override { return cwnd_bytes_ < ssthresh_bytes_; }
  [[nodiscard]] bool uses_delivery_rate() const noexcept override { return false; }
  [[nodiscard]] std::string_view name() const override { return "reno"; }
  [[nodiscard]] std::uint64_t ssthresh() const noexcept { return ssthresh_bytes_; }

 private:
  RenoConfig config_;
  std::uint64_t cwnd_bytes_ = 0;      // set by the constructor
  std::uint64_t ssthresh_bytes_ = 0;  // set by the constructor
  std::uint64_t ack_accumulator_ = 0;  // bytes acked towards the next +1 MSS
};

}  // namespace qperc::cc
