#include "cc/reno.hpp"

#include <algorithm>

namespace qperc::cc {

Reno::Reno(RenoConfig config)
    : config_(config),
      cwnd_bytes_(config.initial_window_segments * config.mss),
      ssthresh_bytes_(config.max_window_segments * config.mss) {}

void Reno::on_packet_sent(SimTime /*now*/, std::uint64_t /*bytes_in_flight*/,
                          std::uint64_t /*packet_bytes*/) {}

void Reno::on_ack(SimTime /*now*/, const AckSample& sample) {
  const std::uint64_t cap = config_.max_window_segments * config_.mss;
  if (in_slow_start()) {
    cwnd_bytes_ = std::min(cwnd_bytes_ + sample.bytes_acked, cap);
    return;
  }
  // Congestion avoidance: one MSS per window's worth of acknowledged bytes.
  ack_accumulator_ += sample.bytes_acked;
  while (ack_accumulator_ >= cwnd_bytes_ && cwnd_bytes_ < cap) {
    ack_accumulator_ -= cwnd_bytes_;
    cwnd_bytes_ = std::min(cwnd_bytes_ + config_.mss, cap);
  }
}

void Reno::on_congestion_event(SimTime /*now*/, std::uint64_t /*bytes_in_flight*/) {
  ssthresh_bytes_ = std::max(cwnd_bytes_ / 2, config_.min_window_segments * config_.mss);
  cwnd_bytes_ = ssthresh_bytes_;
  ack_accumulator_ = 0;
}

void Reno::on_retransmission_timeout() {
  ssthresh_bytes_ = std::max(cwnd_bytes_ / 2, config_.min_window_segments * config_.mss);
  cwnd_bytes_ = config_.min_window_segments * config_.mss;
  ack_accumulator_ = 0;
}

void Reno::on_restart_after_idle() {
  cwnd_bytes_ = std::min(cwnd_bytes_, config_.initial_window_segments * config_.mss);
}

DataRate Reno::pacing_rate(SimDuration smoothed_rtt) const {
  if (smoothed_rtt <= SimDuration::zero()) smoothed_rtt = milliseconds(100);
  const double gain =
      in_slow_start() ? config_.pacing_gain_slow_start : config_.pacing_gain_cong_avoid;
  return DataRate::bytes_per_second(static_cast<double>(cwnd_bytes_) /
                                    to_seconds(smoothed_rtt) * gain);
}

}  // namespace qperc::cc
