// CUBIC congestion control (RFC 8312) with HyStart slow-start exit, matching
// what both Linux TCP and gQUIC ship as their default controller.
#pragma once

#include <cstdint>

#include "cc/congestion_controller.hpp"

#include "util/check.hpp"

namespace qperc::cc {

struct CubicConfig {
  /// Initial congestion window in segments: 10 for stock Linux TCP, 32 for
  /// gQUIC and the paper's TCP+ (Table 1).
  std::uint64_t initial_window_segments = 10;
  std::uint64_t mss = kDefaultMss;
  std::uint64_t min_window_segments = 2;
  std::uint64_t max_window_segments = 10'000;
  /// Multiplicative decrease factor (RFC 8312 uses 0.7).
  double beta = 0.7;
  /// Cubic scaling constant C.
  double c = 0.4;
  bool enable_hystart = true;
  /// Pacing-rate multipliers applied to cwnd/srtt (Linux: 200% / 120%).
  double pacing_gain_slow_start = 2.0;
  double pacing_gain_cong_avoid = 1.2;
};

class Cubic final : public CongestionController {
 public:
  explicit Cubic(CubicConfig config);

  void on_packet_sent(SimTime now, std::uint64_t bytes_in_flight,
                      std::uint64_t packet_bytes) override;
  void on_ack(SimTime now, const AckSample& sample) override;
  void on_congestion_event(SimTime now, std::uint64_t bytes_in_flight) override;
  void on_retransmission_timeout() override;
  void on_spurious_retransmission_timeout() override;
  void on_restart_after_idle() override;

  [[nodiscard]] std::uint64_t congestion_window() const override {
    QPERC_DCHECK_GE(cwnd_bytes_, config_.mss) << "cwnd collapsed below one MSS";
    return cwnd_bytes_;
  }
  [[nodiscard]] DataRate pacing_rate(SimDuration smoothed_rtt) const override;
  [[nodiscard]] bool in_slow_start() const override { return cwnd_bytes_ < ssthresh_bytes_; }
  [[nodiscard]] bool uses_delivery_rate() const noexcept override { return false; }
  [[nodiscard]] std::string_view name() const override { return "cubic"; }

  [[nodiscard]] std::uint64_t ssthresh() const noexcept { return ssthresh_bytes_; }

 private:
  void cubic_update(SimTime now, std::uint64_t bytes_acked);
  void hystart_on_ack(SimTime now, const AckSample& sample);

  CubicConfig config_;
  std::uint64_t cwnd_bytes_ = 0;      // set by the constructor
  std::uint64_t ssthresh_bytes_ = 0;  // set by the constructor

  // CUBIC epoch state.
  SimTime epoch_start_{0};
  bool epoch_active_ = false;
  double w_max_segments_ = 0.0;   // window before the last reduction
  double k_seconds_ = 0.0;        // time to regrow to w_max
  double est_segments_ = 0.0;     // TCP-friendly (Reno) estimate
  double ack_credit_bytes_ = 0.0; // fractional cwnd growth accumulator

  // HyStart (delay-increase heuristic) state.
  SimDuration hystart_round_min_rtt_{SimDuration::max()};
  SimDuration hystart_prev_round_min_rtt_{SimDuration::max()};
  std::uint32_t hystart_rtt_samples_ = 0;

  // Window/ssthresh at the moment the last RTO collapsed them, for the
  // spurious-RTO undo (zero = no collapse outstanding).
  std::uint64_t rto_prior_cwnd_bytes_ = 0;
  std::uint64_t rto_prior_ssthresh_bytes_ = 0;
};

}  // namespace qperc::cc
