// Controller selection shared by both transports.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "cc/congestion_controller.hpp"

namespace qperc::cc {

enum class CcKind {
  kCubic,  // default for Linux TCP and gQUIC
  kBbr,    // BBRv1 (the Table-1 "+BBR" rows)
  kBbr2,   // BBRv2 — extension study (not available at paper time, §3 fn. 2)
  kReno,   // NewReno — classic AIMD baseline for ablations
};

[[nodiscard]] std::string_view to_string(CcKind kind);

/// Builds a controller with the given initial window (in segments of `mss`).
/// `bbr_lt_bw` toggles BBRv1's long-term (policer) bandwidth estimation —
/// on by default as in Linux; ignored by the other controllers. Tests use
/// the off position as the "stock" baseline on policed links.
[[nodiscard]] std::unique_ptr<CongestionController> make_congestion_controller(
    CcKind kind, std::uint64_t initial_window_segments, std::uint64_t mss,
    bool bbr_lt_bw = true);

}  // namespace qperc::cc
