// Windowed extremum filter, the building block of BBR's model
// (max-bandwidth over 10 round trips, min-RTT over 10 seconds).
#pragma once

#include <cstdint>
#include <deque>

namespace qperc::cc {

/// Tracks the best (per `Better`) sample over a sliding window keyed by a
/// monotonically nondecreasing clock (round count or virtual time ticks).
/// Straightforward monotonic-deque implementation: amortized O(1) update.
template <typename Value, typename Ticks, typename Better>
class WindowedFilter {
 public:
  explicit WindowedFilter(Ticks window_length) : window_length_(window_length) {}

  void update(Value sample, Ticks now) {
    // Evict entries dominated by the new sample, then expired entries.
    while (!samples_.empty() && !Better{}(samples_.back().value, sample)) {
      samples_.pop_back();
    }
    samples_.push_back(Entry{sample, now});
    expire(now);
  }

  /// Re-evaluates expiry without adding a sample.
  void advance(Ticks now) { expire(now); }

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] Value best() const { return samples_.empty() ? Value{} : samples_.front().value; }
  void reset() { samples_.clear(); }

 private:
  struct Entry {
    Value value;
    Ticks time;
  };

  void expire(Ticks now) {
    while (!samples_.empty() && samples_.front().time + window_length_ < now) {
      // Never drop the last remaining sample: a stale estimate beats none.
      if (samples_.size() == 1) break;
      samples_.pop_front();
    }
  }

  Ticks window_length_;
  std::deque<Entry> samples_;
};

template <typename T>
struct Greater {
  bool operator()(const T& a, const T& b) const { return a > b; }
};
template <typename T>
struct Less {
  bool operator()(const T& a, const T& b) const { return a < b; }
};

}  // namespace qperc::cc
