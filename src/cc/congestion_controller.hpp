// Pluggable congestion control shared by the TCP and QUIC stacks.
//
// The paper's Table 1 crosses two transports with two controllers (Cubic and
// BBRv1); implementing the controllers once and plugging them into both
// stacks is exactly how gQUIC is built and guarantees the "similarly
// parameterized" comparison the paper is about.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time.hpp"
#include "util/units.hpp"

namespace qperc::cc {

/// Sender MSS assumed by window arithmetic. TCP uses 1460-byte segments;
/// gQUIC uses smaller packets but identical window accounting in MSS units.
inline constexpr std::uint64_t kDefaultMss = 1460;

/// Everything a controller learns from one ACK event.
struct AckSample {
  std::uint64_t bytes_acked = 0;
  /// Bytes newly declared lost since the previous ACK event (fast-loss
  /// detection and timeouts alike). Food for BBR's long-term bandwidth
  /// (policing) estimator; loss-based controllers ignore it.
  std::uint64_t bytes_lost = 0;
  /// Most recent RTT measurement; zero when the ACK carried no new sample.
  SimDuration rtt{0};
  /// Smoothed RTT maintained by the transport.
  SimDuration smoothed_rtt{0};
  /// Delivery-rate estimate for the newest acked packet (BBR's food).
  DataRate delivery_rate;
  /// True when the rate sample was taken while the sender was app-limited.
  bool is_app_limited = false;
  /// Bytes still outstanding after this ACK was processed.
  std::uint64_t bytes_in_flight = 0;
  /// True when this ACK ends a round trip (all data outstanding at the
  /// beginning of the round has been acked).
  bool round_trip_ended = false;
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual void on_packet_sent(SimTime now, std::uint64_t bytes_in_flight,
                              std::uint64_t packet_bytes) = 0;
  virtual void on_ack(SimTime now, const AckSample& sample) = 0;
  /// A loss-based congestion event (fast retransmit); at most one window
  /// reduction per round trip is the caller's responsibility for TCP-style
  /// semantics, but both implementations also self-protect.
  virtual void on_congestion_event(SimTime now, std::uint64_t bytes_in_flight) = 0;
  virtual void on_retransmission_timeout() = 0;
  /// The transport detected that the last retransmission timeout was
  /// spurious (the original packet's ACK arrived, no retransmission was
  /// needed): undo the timeout's window collapse, RFC 3522/F-RTO style.
  /// Default: no-op, the conservative choice for controllers without undo
  /// state.
  virtual void on_spurious_retransmission_timeout() {}
  /// Stock Linux TCP collapses to IW after an idle period
  /// (net.ipv4.tcp_slow_start_after_idle=1); TCP+ disables this.
  virtual void on_restart_after_idle() = 0;

  [[nodiscard]] virtual std::uint64_t congestion_window() const = 0;
  /// True when the controller consumes AckSample::delivery_rate (the BBR
  /// family). Transports use this to skip the per-ACK delivery-rate
  /// arithmetic entirely for loss-based controllers, which never read it —
  /// the sampler still does its byte accounting either way.
  [[nodiscard]] virtual bool uses_delivery_rate() const noexcept = 0;
  /// Desired pacing rate given the transport's smoothed RTT; ignored when the
  /// configuration disables pacing (stock TCP).
  [[nodiscard]] virtual DataRate pacing_rate(SimDuration smoothed_rtt) const = 0;
  [[nodiscard]] virtual bool in_slow_start() const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace qperc::cc
