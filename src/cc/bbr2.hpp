// BBRv2 congestion control (Cardwell et al., IETF drafts circa 2019/2020).
//
// The paper notes "BBRv2 was not yet available at the time of testing"
// (§3, footnote 2); this implementation enables the natural follow-up
// experiment. The key differences from v1 that matter on the paper's lossy
// in-flight networks:
//   * loss is a model signal again: sustained loss above a threshold caps
//     the in-flight ceiling (inflight_hi) instead of being ignored,
//   * gentler PROBE_BW cycling (DOWN/CRUISE/REFILL/UP) with a headroom
//     margin below inflight_hi,
//   * cwnd bounded by the loss-informed ceiling, so 6%-loss links no longer
//     see v1's persistent overshoot.
#pragma once

#include <cstdint>

#include "cc/congestion_controller.hpp"
#include "cc/windowed_filter.hpp"

namespace qperc::cc {

struct Bbr2Config {
  std::uint64_t initial_window_segments = 32;
  std::uint64_t mss = kDefaultMss;
  std::uint64_t min_window_segments = 4;
  std::uint64_t max_window_segments = 10'000;
  double startup_gain = 2.885;
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  /// Loss rate treated as "too much" within a probe round (draft: 2%).
  double loss_threshold = 0.02;
  /// Multiplicative back-off of inflight_hi on excessive loss (draft beta).
  double beta = 0.7;
  /// Headroom kept below inflight_hi while cruising (draft: 15%).
  double headroom = 0.15;
  std::uint64_t bw_window_rounds = 10;
  SimDuration min_rtt_window = seconds(10);
  SimDuration probe_rtt_duration = milliseconds(200);
  /// Wall-clock cadence of bandwidth probes in PROBE_BW.
  SimDuration probe_bw_interval = seconds(2);
};

class Bbr2 final : public CongestionController {
 public:
  explicit Bbr2(Bbr2Config config);

  void on_packet_sent(SimTime now, std::uint64_t bytes_in_flight,
                      std::uint64_t packet_bytes) override;
  void on_ack(SimTime now, const AckSample& sample) override;
  void on_congestion_event(SimTime now, std::uint64_t bytes_in_flight) override;
  void on_retransmission_timeout() override;
  void on_restart_after_idle() override;

  [[nodiscard]] std::uint64_t congestion_window() const override;
  [[nodiscard]] DataRate pacing_rate(SimDuration smoothed_rtt) const override;
  [[nodiscard]] bool in_slow_start() const override { return mode_ == Mode::kStartup; }
  [[nodiscard]] bool uses_delivery_rate() const noexcept override { return true; }
  [[nodiscard]] std::string_view name() const override { return "bbr2"; }

  enum class Mode { kStartup, kDrain, kProbeBwDown, kProbeBwCruise, kProbeBwRefill,
                    kProbeBwUp, kProbeRtt };
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] DataRate bandwidth_estimate() const { return max_bw_.best(); }
  [[nodiscard]] std::uint64_t inflight_hi() const noexcept { return inflight_hi_; }
  [[nodiscard]] SimDuration min_rtt_estimate() const noexcept { return min_rtt_; }

 private:
  [[nodiscard]] std::uint64_t bdp(double gain) const;
  void enter_probe_down(SimTime now);
  void check_full_pipe();
  void update_probe_cycle(SimTime now, std::uint64_t bytes_in_flight);
  void maybe_probe_rtt(SimTime now, std::uint64_t bytes_in_flight);
  void track_loss_round(SimTime now, const AckSample& sample);

  Bbr2Config config_;
  Mode mode_ = Mode::kStartup;

  WindowedFilter<DataRate, std::uint64_t, Greater<DataRate>> max_bw_;
  std::uint64_t round_count_ = 0;

  SimDuration min_rtt_{SimDuration::max()};
  SimTime min_rtt_timestamp_{0};

  double pacing_gain_ = 1.0;  // set by the constructor
  double cwnd_gain_ = 1.0;    // set by the constructor

  DataRate full_bw_;
  std::uint32_t full_bw_rounds_ = 0;
  bool pipe_filled_ = false;

  /// Loss-informed in-flight ceiling; max() until loss teaches us better.
  std::uint64_t inflight_hi_ = UINT64_MAX;

  // Per-round delivery/loss accounting for the loss-threshold test.
  std::uint64_t round_delivered_bytes_ = 0;
  std::uint64_t round_lost_bytes_ = 0;

  SimTime probe_phase_start_{0};
  SimTime next_probe_at_{0};

  SimTime probe_rtt_done_at_{kNoTime};
  bool probe_rtt_inflight_reached_ = false;
  std::uint64_t prior_cwnd_bytes_ = 0;

  std::uint64_t cwnd_bytes_ = 0;  // set by the constructor
};

}  // namespace qperc::cc
