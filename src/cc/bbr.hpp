// BBRv1 congestion control (Cardwell et al.), as shipped in Linux 4.9+ and
// gQUIC at the time of the paper ("BBRv2 was not yet available", §3 fn. 2).
#pragma once

#include <cstdint>

#include "cc/congestion_controller.hpp"
#include "cc/windowed_filter.hpp"

namespace qperc::cc {

struct BbrConfig {
  std::uint64_t initial_window_segments = 32;
  std::uint64_t mss = kDefaultMss;
  std::uint64_t min_window_segments = 4;
  std::uint64_t max_window_segments = 10'000;
  /// 2/ln(2): fills the pipe in the same number of RTTs as slow start.
  double startup_gain = 2.885;
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  /// Bandwidth filter window, in round trips.
  std::uint64_t bw_window_rounds = 10;
  /// Min-RTT filter window; staleness triggers PROBE_RTT.
  SimDuration min_rtt_window = seconds(10);
  SimDuration probe_rtt_duration = milliseconds(200);
};

class Bbr final : public CongestionController {
 public:
  explicit Bbr(BbrConfig config);

  void on_packet_sent(SimTime now, std::uint64_t bytes_in_flight,
                      std::uint64_t packet_bytes) override;
  void on_ack(SimTime now, const AckSample& sample) override;
  void on_congestion_event(SimTime now, std::uint64_t bytes_in_flight) override;
  void on_retransmission_timeout() override;
  void on_restart_after_idle() override;

  [[nodiscard]] std::uint64_t congestion_window() const override;
  [[nodiscard]] DataRate pacing_rate(SimDuration smoothed_rtt) const override;
  [[nodiscard]] bool in_slow_start() const override { return mode_ == Mode::kStartup; }
  [[nodiscard]] bool uses_delivery_rate() const noexcept override { return true; }
  [[nodiscard]] std::string_view name() const override { return "bbr"; }

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] DataRate bandwidth_estimate() const { return max_bw_.best(); }
  [[nodiscard]] SimDuration min_rtt_estimate() const noexcept { return min_rtt_; }

 private:
  [[nodiscard]] std::uint64_t bdp(double gain) const;
  void enter_probe_bw(SimTime now);
  void check_full_pipe(const AckSample& sample);
  void update_gain_cycle(SimTime now, std::uint64_t bytes_in_flight);
  void maybe_enter_or_exit_probe_rtt(SimTime now, std::uint64_t bytes_in_flight);

  BbrConfig config_;
  Mode mode_ = Mode::kStartup;

  WindowedFilter<DataRate, std::uint64_t, Greater<DataRate>> max_bw_;
  std::uint64_t round_count_ = 0;

  SimDuration min_rtt_{SimDuration::max()};
  SimTime min_rtt_timestamp_{0};

  double pacing_gain_ = 1.0;  // set by the constructor
  double cwnd_gain_ = 1.0;    // set by the constructor

  // Full-pipe detection (exit STARTUP after 3 rounds without 25% growth).
  DataRate full_bw_;
  std::uint32_t full_bw_rounds_ = 0;
  bool pipe_filled_ = false;

  // PROBE_BW gain cycling.
  std::size_t cycle_index_ = 0;
  SimTime cycle_start_{0};

  // PROBE_RTT bookkeeping.
  SimTime probe_rtt_done_at_{kNoTime};
  bool probe_rtt_round_seen_ = false;

  std::uint64_t cwnd_bytes_ = 0;  // set by the constructor
  std::uint64_t prior_cwnd_bytes_ = 0;
  bool in_recovery_ = false;
};

}  // namespace qperc::cc
