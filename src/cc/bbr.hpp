// BBRv1 congestion control (Cardwell et al.), as shipped in Linux 4.9+ and
// gQUIC at the time of the paper ("BBRv2 was not yet available", §3 fn. 2).
//
// Includes Linux BBR's long-term bandwidth ("lt_bw") estimation, the
// token-bucket-policer detector (cf. tcp-bbrplus): when consecutive sampling
// intervals show heavy loss at a consistent delivery rate, the link is
// treated as policed and BBR paces at that long-term rate instead of
// repeatedly probing into the policer and oscillating through loss.
#pragma once

#include <cstdint>

#include "cc/congestion_controller.hpp"
#include "cc/windowed_filter.hpp"

namespace qperc::cc {

struct BbrConfig {
  std::uint64_t initial_window_segments = 32;
  std::uint64_t mss = kDefaultMss;
  std::uint64_t min_window_segments = 4;
  std::uint64_t max_window_segments = 10'000;
  /// 2/ln(2): fills the pipe in the same number of RTTs as slow start.
  double startup_gain = 2.885;
  double drain_gain = 1.0 / 2.885;
  double cwnd_gain = 2.0;
  /// Bandwidth filter window, in round trips.
  std::uint64_t bw_window_rounds = 10;
  /// Min-RTT filter window; staleness triggers PROBE_RTT.
  SimDuration min_rtt_window = seconds(10);
  SimDuration probe_rtt_duration = milliseconds(200);
  /// Long-term (policer) bandwidth estimation, on by default as in Linux.
  bool lt_bw_enabled = true;
};

class Bbr final : public CongestionController {
 public:
  explicit Bbr(BbrConfig config);

  void on_packet_sent(SimTime now, std::uint64_t bytes_in_flight,
                      std::uint64_t packet_bytes) override;
  void on_ack(SimTime now, const AckSample& sample) override;
  void on_congestion_event(SimTime now, std::uint64_t bytes_in_flight) override;
  void on_retransmission_timeout() override;
  void on_spurious_retransmission_timeout() override;
  void on_restart_after_idle() override;

  [[nodiscard]] std::uint64_t congestion_window() const override;
  [[nodiscard]] DataRate pacing_rate(SimDuration smoothed_rtt) const override;
  [[nodiscard]] bool in_slow_start() const override { return mode_ == Mode::kStartup; }
  [[nodiscard]] bool uses_delivery_rate() const noexcept override { return true; }
  [[nodiscard]] std::string_view name() const override { return "bbr"; }

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  /// The bandwidth the model actually paces from: the long-term (policed)
  /// estimate while it is in force, the windowed max filter otherwise.
  [[nodiscard]] DataRate bandwidth_estimate() const {
    return lt_use_bw_ ? lt_bw_ : max_bw_.best();
  }
  [[nodiscard]] SimDuration min_rtt_estimate() const noexcept { return min_rtt_; }
  [[nodiscard]] bool lt_bw_in_use() const noexcept { return lt_use_bw_; }
  [[nodiscard]] DataRate lt_bw() const noexcept { return lt_bw_; }

 private:
  [[nodiscard]] std::uint64_t bdp(double gain) const;
  void enter_probe_bw(SimTime now);
  void check_full_pipe(const AckSample& sample);
  void update_gain_cycle(SimTime now, std::uint64_t bytes_in_flight);
  void maybe_enter_or_exit_probe_rtt(SimTime now, std::uint64_t bytes_in_flight);
  void lt_bw_sampling(SimTime now, const AckSample& sample);
  void lt_bw_interval_done(SimTime now, DataRate bw);
  void reset_lt_bw_sampling_interval(SimTime now);
  void reset_lt_bw_sampling(SimTime now);

  BbrConfig config_;
  Mode mode_ = Mode::kStartup;

  WindowedFilter<DataRate, std::uint64_t, Greater<DataRate>> max_bw_;
  std::uint64_t round_count_ = 0;

  SimDuration min_rtt_{SimDuration::max()};
  SimTime min_rtt_timestamp_{0};

  double pacing_gain_ = 1.0;  // set by the constructor
  double cwnd_gain_ = 1.0;    // set by the constructor

  // Full-pipe detection (exit STARTUP after 3 rounds without 25% growth).
  DataRate full_bw_;
  std::uint32_t full_bw_rounds_ = 0;
  bool pipe_filled_ = false;

  // PROBE_BW gain cycling.
  std::size_t cycle_index_ = 0;
  SimTime cycle_start_{0};

  // PROBE_RTT bookkeeping.
  SimTime probe_rtt_done_at_{kNoTime};
  bool probe_rtt_round_seen_ = false;

  std::uint64_t cwnd_bytes_ = 0;  // set by the constructor
  std::uint64_t prior_cwnd_bytes_ = 0;
  bool in_recovery_ = false;

  // Long-term bandwidth (policer) estimation, ported from Linux tcp-bbrplus.
  // Cumulative delivered/lost totals feed loss-fraction accounting over
  // sampling intervals bounded in round trips.
  bool lt_is_sampling_ = false;
  bool lt_use_bw_ = false;
  std::uint64_t lt_rtt_cnt_ = 0;
  DataRate lt_bw_{};
  SimTime lt_last_stamp_{0};
  std::uint64_t lt_last_delivered_ = 0;
  std::uint64_t lt_last_lost_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_lost_ = 0;

  /// cwnd at the moment the last RTO collapsed it, for the spurious-RTO
  /// undo (zero = no collapse outstanding).
  std::uint64_t rto_prior_cwnd_bytes_ = 0;
};

}  // namespace qperc::cc
