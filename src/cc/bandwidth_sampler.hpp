// Per-packet delivery-rate estimation (the "bandwidth sampler" from the BBR
// design / draft-cheng-iccrg-delivery-rate-estimation), shared by the TCP and
// QUIC senders.
#pragma once

#include <cstdint>
#include <optional>

#include "util/arena.hpp"
#include "util/flat_map.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace qperc::cc {

/// A delivery-rate sample produced when a packet is acknowledged.
struct RateSample {
  DataRate delivery_rate;
  bool is_app_limited = false;
};

class BandwidthSampler {
 public:
  /// Per-packet send state lives in `arena` (the trial arena in production,
  /// a test-local arena in unit tests): one packet sent = zero heap
  /// allocations. The arena must outlive the sampler.
  explicit BandwidthSampler(Arena& arena) : in_flight_(arena) {}

  /// Records state at send time. `packet_id` is any unique per-packet key
  /// (TCP uses the segment's end sequence, QUIC its packet number).
  void on_packet_sent(std::uint64_t packet_id, std::uint64_t bytes, SimTime now,
                      std::uint64_t bytes_in_flight);

  /// Produces a rate sample for an acked packet; nullopt if unknown (e.g.
  /// already sampled or spuriously retransmitted).
  std::optional<RateSample> on_packet_acked(std::uint64_t packet_id, SimTime now);

  /// The byte/clock accounting of on_packet_acked without the rate
  /// arithmetic, for transports whose controller never reads delivery rates
  /// (see CongestionController::uses_delivery_rate). Returns exactly
  /// on_packet_acked's has_value() so callers can keep identical control
  /// flow.
  bool on_packet_acked_no_sample(std::uint64_t packet_id, SimTime now);

  /// Forgets a lost packet's state.
  void on_packet_lost(std::uint64_t packet_id);

  /// Marks the connection app-limited: rate samples from packets sent from
  /// now until delivery catches up must not raise the bandwidth estimate.
  void on_app_limited();

  [[nodiscard]] std::uint64_t total_bytes_delivered() const noexcept { return delivered_bytes_; }

 private:
  struct SendState {
    SimTime sent_time{0};
    std::uint64_t delivered_at_send = 0;
    SimTime delivered_time_at_send{0};
    std::uint64_t bytes = 0;
    bool app_limited = false;
  };

  /// Shared ACK bookkeeping: retires the packet and advances the delivery
  /// clock. False when the packet is unknown.
  bool ack_bookkeeping(std::uint64_t packet_id, SimTime now, SendState& state);

  std::uint64_t delivered_bytes_ = 0;
  SimTime delivered_time_{0};
  SimTime first_sent_time_{0};
  std::uint64_t app_limited_until_delivered_ = 0;
  /// Running sum of in_flight_ payload bytes, so on_app_limited never
  /// iterates (and the container never needs hash order).
  std::uint64_t in_flight_bytes_ = 0;
  /// Keyed by packet id; flat storage on the trial arena (ordering and
  /// iteration are those of a plain std::map, so results are unchanged).
  FlatMap<std::uint64_t, SendState> in_flight_;
};

}  // namespace qperc::cc
