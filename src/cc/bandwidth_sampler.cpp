#include "cc/bandwidth_sampler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace qperc::cc {

void BandwidthSampler::on_packet_sent(std::uint64_t packet_id, std::uint64_t bytes,
                                      SimTime now, std::uint64_t bytes_in_flight) {
  if (bytes_in_flight == 0) {
    // Restarting from idle: the delivery clock must not count the idle gap.
    delivered_time_ = now;
    first_sent_time_ = now;
  }
  QPERC_DCHECK(!in_flight_.contains(packet_id))
      << "packet ids must be unique per transmission";
  in_flight_[packet_id] = SendState{
      .sent_time = now,
      .delivered_at_send = delivered_bytes_,
      .delivered_time_at_send = delivered_time_,
      .bytes = bytes,
      .app_limited = app_limited_until_delivered_ > delivered_bytes_,
  };
  in_flight_bytes_ += bytes;
}

bool BandwidthSampler::ack_bookkeeping(std::uint64_t packet_id, SimTime now,
                                       SendState& state) {
  const auto it = in_flight_.find(packet_id);
  if (it == in_flight_.end()) return false;
  state = it->second;
  in_flight_.erase(it);
  QPERC_DCHECK_GE(in_flight_bytes_, state.bytes);
  in_flight_bytes_ -= state.bytes;

  delivered_bytes_ += state.bytes;
  QPERC_DCHECK_GE(now, delivered_time_) << "delivery clock must be monotone";
  delivered_time_ = now;
  return true;
}

std::optional<RateSample> BandwidthSampler::on_packet_acked(std::uint64_t packet_id,
                                                            SimTime now) {
  SendState state;
  if (!ack_bookkeeping(packet_id, now, state)) return std::nullopt;

  // Rate over the ACK interval, guarded against division by ~zero: use the
  // longer of the ack elapsed and the send elapsed intervals (standard
  // delivery-rate estimation uses the max of both to be conservative).
  const SimDuration ack_elapsed = now - state.delivered_time_at_send;
  const SimDuration send_elapsed = state.sent_time - state.delivered_time_at_send;
  const SimDuration interval = std::max(ack_elapsed, send_elapsed);
  if (interval <= SimDuration::zero()) return std::nullopt;
  const std::uint64_t delivered_in_interval = delivered_bytes_ - state.delivered_at_send;
  return RateSample{
      .delivery_rate = DataRate::from_bytes_and_duration(delivered_in_interval, interval),
      .is_app_limited = state.app_limited,
  };
}

bool BandwidthSampler::on_packet_acked_no_sample(std::uint64_t packet_id, SimTime now) {
  SendState state;
  if (!ack_bookkeeping(packet_id, now, state)) return false;
  // Mirror on_packet_acked's sample condition without the division: callers
  // branch on "a sample existed" (it gates the controller's on_ack), so the
  // two entry points must agree exactly.
  const SimDuration ack_elapsed = now - state.delivered_time_at_send;
  const SimDuration send_elapsed = state.sent_time - state.delivered_time_at_send;
  return std::max(ack_elapsed, send_elapsed) > SimDuration::zero();
}

void BandwidthSampler::on_packet_lost(std::uint64_t packet_id) {
  const auto it = in_flight_.find(packet_id);
  if (it == in_flight_.end()) return;
  QPERC_DCHECK_GE(in_flight_bytes_, it->second.bytes);
  in_flight_bytes_ -= it->second.bytes;
  in_flight_.erase(it);
}

void BandwidthSampler::on_app_limited() {
  app_limited_until_delivered_ = delivered_bytes_ + in_flight_bytes_;
}

}  // namespace qperc::cc
