#include "cc/factory.hpp"

#include "cc/bbr.hpp"
#include "cc/bbr2.hpp"
#include "cc/cubic.hpp"
#include "cc/reno.hpp"

namespace qperc::cc {

std::string_view to_string(CcKind kind) {
  switch (kind) {
    case CcKind::kCubic: return "Cubic";
    case CcKind::kBbr: return "BBRv1";
    case CcKind::kBbr2: return "BBRv2";
    case CcKind::kReno: return "NewReno";
  }
  return "?";
}

std::unique_ptr<CongestionController> make_congestion_controller(
    CcKind kind, std::uint64_t initial_window_segments, std::uint64_t mss,
    bool bbr_lt_bw) {
  switch (kind) {
    case CcKind::kCubic: {
      CubicConfig config;
      config.initial_window_segments = initial_window_segments;
      config.mss = mss;
      return std::make_unique<Cubic>(config);
    }
    case CcKind::kBbr: {
      BbrConfig config;
      config.initial_window_segments = initial_window_segments;
      config.mss = mss;
      config.lt_bw_enabled = bbr_lt_bw;
      return std::make_unique<Bbr>(config);
    }
    case CcKind::kBbr2: {
      Bbr2Config config;
      config.initial_window_segments = initial_window_segments;
      config.mss = mss;
      return std::make_unique<Bbr2>(config);
    }
    case CcKind::kReno: {
      RenoConfig config;
      config.initial_window_segments = initial_window_segments;
      config.mss = mss;
      return std::make_unique<Reno>(config);
    }
  }
  return nullptr;
}

}  // namespace qperc::cc
