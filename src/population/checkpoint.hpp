// Durable, resumable checkpoint for one population-study shard.
//
// On-disk format (version 1, plain text):
//
//   qperc-popstudy-v1 <fingerprint> <shard_index> <shard_count> <block_size> <blocks_done>
//   counts <participants> <survivors> <votes>
//   removed <r1> ... <r7>
//   seconds <n> <sum_q> <sumsq_hi> <sumsq_lo>
//   cells <rating_count> <ab_count>
//   rcell <i> <n> <sum_q> <sumsq_hi> <sumsq_lo>                 x rating_count
//   acell <i> <first> <nodiff> <second> <replays> <confidence_q> x ab_count
//   checksum <16-digit hex FNV-1a over everything after the header line>
//
// Only integer accumulator state is stored — never derived doubles — so a
// resumed run is bit-identical to an uninterrupted one. The same guarantees
// as runner::ResultStore apply: atomic tmp+rename writes, and load()
// rejects (leaving the caller's state untouched) any file with a different
// version, study fingerprint, shard geometry, cell layout, truncation, or
// checksum mismatch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "population/population_study.hpp"

namespace qperc::population {

/// One shard's checkpoint as read back from disk (see read_shard).
struct ShardState {
  Accumulator accumulator;
  std::uint64_t fingerprint = 0;
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  std::uint64_t block_size = 0;
  std::uint64_t blocks_done = 0;
};

/// Reads any shard checkpoint whose cell layout matches `layout`
/// (make_accumulator of the expected kind). Returns nullopt on missing,
/// malformed, truncated, or checksum-failing files. Used by `study report`
/// to merge shard files without knowing their geometry up front.
[[nodiscard]] std::optional<ShardState> read_shard(const std::string& path,
                                                   const Accumulator& layout);

/// Writer/loader bound to one run's identity. save() is atomic
/// (tmp + rename); load() additionally verifies fingerprint and shard
/// geometry against this run's, so a checkpoint from a different study or
/// a different shard split can never be resumed silently.
class StudyStore {
 public:
  static constexpr const char* kMagic = "qperc-popstudy-v1";

  StudyStore(std::string path, std::uint64_t fingerprint, unsigned shard_index,
             unsigned shard_count, std::uint64_t block_size);

  /// Loads into `acc` (must carry the expected layout) and `blocks_done`.
  /// Returns false — leaving both untouched — when the file is missing or
  /// does not match this run's identity.
  [[nodiscard]] bool load(Accumulator& acc, std::uint64_t& blocks_done) const;

  /// Atomically persists the accumulator. Throws std::runtime_error when
  /// the file cannot be written.
  void save(const Accumulator& acc, std::uint64_t blocks_done) const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t fingerprint_ = 0;
  unsigned shard_index_ = 0;
  unsigned shard_count_ = 0;
  std::uint64_t block_size_ = 0;
};

}  // namespace qperc::population
