#include "population/population_study.hpp"

// qperc-lint: allow-file(wall-clock) operator-facing progress/ETA display and
// the Report's elapsed_seconds only; wall time never reaches participant
// sampling, vote generation, or the accumulated numbers.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/protocol.hpp"
#include "population/checkpoint.hpp"
#include "runner/executor.hpp"
#include "study/ab_study.hpp"
#include "study/rater.hpp"
#include "study/rating_study.hpp"
#include "util/check.hpp"
#include "web/website.hpp"

namespace qperc::population {
namespace {

/// Cells per context block: |paper_protocols| x |networks_for_context|.
constexpr std::size_t kRatingCellsPerContext = 5 * 2;

constexpr std::array<study::Context, 3> kContexts = {
    study::Context::kWork, study::Context::kFreeTime, study::Context::kPlane};

std::size_t rating_cell_base(study::Context context) {
  return static_cast<std::size_t>(context) * kRatingCellsPerContext;
}

/// One rating stimulus: a cached video plus its position in the cell grid.
/// The same entry serves the work and free-time contexts (they share the
/// DSL/LTE networks); the cell index is context-rebased at vote time.
struct RatingEntry {
  const core::Video* video = nullptr;
  std::uint16_t protocol = 0;  // index into core::paper_protocols()
  std::uint16_t net_slot = 0;  // index into networks_for_context(context)
};

/// One A/B stimulus pair with its precomputed cell index.
struct AbEntry {
  const core::Video* first = nullptr;
  const core::Video* second = nullptr;
  std::uint32_t cell = 0;
};

struct Pools {
  std::vector<RatingEntry> fast;   // work/free-time contexts (DSL, LTE)
  std::vector<RatingEntry> plane;  // plane context (DA2GC, MSS)
  std::vector<AbEntry> ab;
};

/// Per-worker-slot reusable state: the partial Fisher–Yates order buffer.
/// Allocated once per slot; resize() never shrinks capacity, so the trial
/// loop is allocation-free after the first round.
struct Scratch {
  std::vector<std::uint32_t> order;
};

/// Everything a worker needs, all read-only during the run.
struct EngineContext {
  const StudySpec* spec = nullptr;
  const Pools* pools = nullptr;
  const study::GroupParams* params = nullptr;
  /// Per-study sub-seed: decorrelates studies that share a master seed but
  /// differ in kind or group, exactly like the batch studies' study-level
  /// fork("ab-study"/"rating-study").fork(group).
  std::uint64_t stream_seed = 0;
};

std::vector<std::string> stimulus_sites(const core::VideoLibrary& library,
                                        const StudySpec& spec) {
  if (spec.sites <= web::lab_study_domains().size()) return web::lab_study_domains();
  std::vector<std::string> names;
  names.reserve(spec.sites);
  for (const auto& site : library.catalog()) {
    if (names.size() >= spec.sites) break;
    names.push_back(site.name);
  }
  return names;
}

Pools build_pools(core::VideoLibrary& library, const StudySpec& spec) {
  const std::vector<std::string> sites = stimulus_sites(library, spec);

  // Warm the full condition grid in parallel once; afterwards the cache is
  // read-only and safe to share across workers (std::map never rehashes, so
  // the Video pointers below stay stable).
  std::vector<std::string> protocol_names;
  for (const auto& protocol : core::paper_protocols()) protocol_names.push_back(protocol.name);
  std::vector<net::NetworkKind> networks;
  for (const auto& profile : net::all_profiles()) networks.push_back(profile.kind);
  library.precompute(sites, protocol_names, networks);

  Pools pools;
  if (spec.kind == study::StudyKind::kRating) {
    const auto fill = [&](std::vector<RatingEntry>& pool, study::Context context) {
      const auto& context_networks = study::networks_for_context(context);
      for (const auto& site : sites) {
        for (std::size_t p = 0; p < core::paper_protocols().size(); ++p) {
          for (std::size_t slot = 0; slot < context_networks.size(); ++slot) {
            const core::Video& video =
                library.get(site, core::paper_protocols()[p].name, context_networks[slot]);
            pool.push_back(RatingEntry{&video, static_cast<std::uint16_t>(p),
                                       static_cast<std::uint16_t>(slot)});
          }
        }
      }
    };
    fill(pools.fast, study::Context::kWork);
    fill(pools.plane, study::Context::kPlane);
  } else {
    for (std::size_t p = 0; p < study::ab_pairs().size(); ++p) {
      const auto& [proto_a, proto_b] = study::ab_pairs()[p];
      for (std::size_t slot = 0; slot < net::all_profiles().size(); ++slot) {
        const net::NetworkKind network = net::all_profiles()[slot].kind;
        for (const auto& site : sites) {
          const core::Video& first = library.get(site, proto_a, network);
          const core::Video& second = library.get(site, proto_b, network);
          pools.ab.push_back(AbEntry{
              &first, &second,
              static_cast<std::uint32_t>(p * net::all_profiles().size() + slot)});
        }
      }
    }
  }
  return pools;
}

/// Draws `shown` distinct pool indices via a partial Fisher–Yates shuffle —
/// the same sampling scheme (and rng call sequence) as the batch studies.
template <typename Entry, typename Visit>
void sample_without_replacement(const std::vector<Entry>& pool, std::size_t shown,
                                Scratch& scratch, Rng& rng, const Visit& visit) {
  auto& order = scratch.order;
  order.resize(pool.size());
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  shown = std::min(shown, pool.size());
  for (std::size_t k = 0; k < shown; ++k) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(k), static_cast<std::int64_t>(order.size() - 1)));
    std::swap(order[k], order[j]);
    visit(pool[order[k]]);
  }
}

/// Simulates one participant end to end: traits, conformance funnel, and —
/// for survivors — every vote, folded straight into `acc`. A pure function
/// of (stream_seed, id): no shared mutable state, no allocation after the
/// scratch buffer's first use.
void simulate_one(const EngineContext& ctx, std::uint64_t id, Scratch& scratch,
                  Accumulator& acc) {
  Rng rng = study::participant_stream(ctx.stream_seed, id);
  const study::Participant participant = study::sample_participant(ctx.spec->group, rng);
  ++acc.participants;
  if (const auto rule = study::sample_violation(ctx.spec->kind, participant, rng)) {
    ++acc.removed_at[*rule];
    return;
  }
  ++acc.survivors;

  if (ctx.spec->kind == study::StudyKind::kRating) {
    const std::array<std::pair<study::Context, std::size_t>, 3> blocks = {
        std::pair{study::Context::kWork, ctx.spec->videos_work},
        std::pair{study::Context::kFreeTime, ctx.spec->videos_free_time},
        std::pair{study::Context::kPlane, ctx.spec->videos_plane},
    };
    for (const auto& [context, count] : blocks) {
      const auto& pool =
          context == study::Context::kPlane ? ctx.pools->plane : ctx.pools->fast;
      const std::size_t base = rating_cell_base(context);
      sample_without_replacement(pool, count, scratch, rng, [&](const RatingEntry& entry) {
        const double vote = study::rate_video(*entry.video, context, participant, rng);
        acc.rating_cells[base + entry.protocol * 2 + entry.net_slot].votes.push(vote);
        acc.seconds.push(rng.normal(ctx.params->seconds_per_video_rating, 3.0));
        ++acc.votes;
      });
    }
    return;
  }

  sample_without_replacement(
      ctx.pools->ab, ctx.spec->videos_ab, scratch, rng, [&](const AbEntry& entry) {
        // Left/right randomisation; map the answer back to the pair order.
        const bool swapped = rng.bernoulli(0.5);
        const study::AbVote vote =
            swapped ? study::ab_vote(*entry.second, *entry.first, participant, rng)
                    : study::ab_vote(*entry.first, *entry.second, participant, rng);
        study::AbChoice choice = vote.choice;
        if (swapped) {
          if (choice == study::AbChoice::kFirst) {
            choice = study::AbChoice::kSecond;
          } else if (choice == study::AbChoice::kSecond) {
            choice = study::AbChoice::kFirst;
          }
        }
        AbCell& cell = acc.ab_cells[entry.cell];
        if (choice == study::AbChoice::kFirst) {
          ++cell.prefer_first;
        } else if (choice == study::AbChoice::kSecond) {
          ++cell.prefer_second;
        } else {
          ++cell.no_difference;
        }
        cell.replays += vote.replays;
        cell.confidence_q +=
            std::llround(vote.confidence * stats::ExactMoments::kScale);
        acc.seconds.push(rng.normal(ctx.params->seconds_per_video_ab, 3.0));
        ++acc.votes;
      });
}

}  // namespace

void StudySpec::validate() const {
  if (participants == 0) throw std::invalid_argument("study: participants must be >= 1");
  if (sites == 0) throw std::invalid_argument("study: sites must be >= 1");
  if (video_runs == 0) throw std::invalid_argument("study: video runs must be >= 1");
  if (kind == study::StudyKind::kRating) {
    if (videos_work + videos_free_time + videos_plane == 0) {
      throw std::invalid_argument("study: a rating study must show at least one video");
    }
  } else if (videos_ab == 0) {
    throw std::invalid_argument("study: an A/B study must show at least one pair");
  }
}

std::uint64_t StudySpec::fingerprint() const {
  std::ostringstream os;
  os << "qperc-popstudy " << kind_token(kind) << ' ' << study::to_string(group) << ' '
     << participants << ' ' << seed << ' ' << sites << ' ' << video_runs << ' '
     << videos_work << ' ' << videos_free_time << ' ' << videos_plane << ' ' << videos_ab
     << ' ' << conditions.token();
  return fnv1a(os.str());
}

void RunOptions::validate() const {
  if (shard_count == 0) throw std::invalid_argument("study: shard count must be >= 1");
  if (shard_index >= shard_count) {
    throw std::invalid_argument("study: shard index must be < shard count");
  }
  if (block_size == 0) throw std::invalid_argument("study: block size must be >= 1");
  if (checkpoint_every_blocks == 0) {
    throw std::invalid_argument("study: checkpoint interval must be >= 1");
  }
}

void Accumulator::merge(const Accumulator& other) {
  QPERC_CHECK_EQ(rating_cells.size(), other.rating_cells.size());
  QPERC_CHECK_EQ(ab_cells.size(), other.ab_cells.size());
  participants += other.participants;
  survivors += other.survivors;
  votes += other.votes;
  for (std::size_t rule = 0; rule < study::kRuleCount; ++rule) {
    removed_at[rule] += other.removed_at[rule];
  }
  seconds.merge(other.seconds);
  for (std::size_t i = 0; i < rating_cells.size(); ++i) {
    rating_cells[i].votes.merge(other.rating_cells[i].votes);
  }
  for (std::size_t i = 0; i < ab_cells.size(); ++i) {
    AbCell& cell = ab_cells[i];
    const AbCell& from = other.ab_cells[i];
    cell.prefer_first += from.prefer_first;
    cell.no_difference += from.no_difference;
    cell.prefer_second += from.prefer_second;
    cell.replays += from.replays;
    cell.confidence_q += from.confidence_q;
  }
}

void Accumulator::reset_counts() {
  participants = 0;
  survivors = 0;
  votes = 0;
  removed_at.fill(0);
  seconds = stats::ExactMoments{};
  for (auto& cell : rating_cells) cell.votes = stats::ExactMoments{};
  for (auto& cell : ab_cells) {
    cell.prefer_first = 0;
    cell.no_difference = 0;
    cell.prefer_second = 0;
    cell.replays = 0;
    cell.confidence_q = 0;
  }
}

Accumulator make_accumulator(study::StudyKind kind) {
  Accumulator acc;
  if (kind == study::StudyKind::kRating) {
    for (const study::Context context : kContexts) {
      for (const auto& protocol : core::paper_protocols()) {
        for (const net::NetworkKind network : study::networks_for_context(context)) {
          acc.rating_cells.push_back(RatingCell{protocol.name, network, context, {}});
        }
      }
    }
    QPERC_CHECK_EQ(acc.rating_cells.size(), kContexts.size() * kRatingCellsPerContext);
  } else {
    for (std::size_t p = 0; p < study::ab_pairs().size(); ++p) {
      for (const auto& profile : net::all_profiles()) {
        AbCell cell;
        cell.pair_index = p;
        cell.network = profile.kind;
        acc.ab_cells.push_back(cell);
      }
    }
  }
  return acc;
}

std::string_view kind_token(study::StudyKind kind) {
  return kind == study::StudyKind::kAb ? "ab" : "rating";
}

std::string_view context_token(study::Context context) {
  switch (context) {
    case study::Context::kWork: return "work";
    case study::Context::kFreeTime: return "free";
    case study::Context::kPlane: return "plane";
  }
  return "?";
}

Report run_streaming_study(core::VideoLibrary& library, const StudySpec& spec,
                           const RunOptions& options) {
  spec.validate();
  options.validate();
  if (library.conditions().token() != spec.conditions.token()) {
    throw std::invalid_argument(
        "study: the VideoLibrary was built under different link conditions than the "
        "spec requests (library '" + library.conditions().token() + "' vs spec '" +
        spec.conditions.token() + "')");
  }

  const Pools pools = build_pools(library, spec);
  EngineContext ctx;
  ctx.spec = &spec;
  ctx.pools = &pools;
  ctx.params = &study::params_for(spec.group);
  // Per-study sub-seed, a pure function of the spec (see EngineContext).
  ctx.stream_seed = Rng(spec.seed)
                        .fork(kind_token(spec.kind))
                        .fork(static_cast<std::uint64_t>(spec.group))
                        .next_u64();

  const std::uint64_t total_blocks =
      (spec.participants + options.block_size - 1) / options.block_size;
  const std::uint64_t owned_blocks =
      total_blocks > options.shard_index
          ? (total_blocks - options.shard_index + options.shard_count - 1) /
                options.shard_count
          : 0;

  Report report;
  report.owned_blocks = owned_blocks;
  Accumulator master = make_accumulator(spec.kind);
  std::uint64_t blocks_done = 0;

  std::optional<StudyStore> store;
  if (!options.checkpoint_path.empty()) {
    store.emplace(options.checkpoint_path, spec.fingerprint(), options.shard_index,
                  options.shard_count, options.block_size);
    if (options.resume && store->load(master, blocks_done)) {
      blocks_done = std::min(blocks_done, owned_blocks);
      report.resumed_blocks = blocks_done;
    }
  }
  const std::uint64_t resumed_participants = master.participants;

  std::uint64_t limit = owned_blocks;
  if (options.max_blocks != 0 && owned_blocks - blocks_done > options.max_blocks) {
    limit = blocks_done + options.max_blocks;
  }

  runner::ExecutorOptions executor_options;
  executor_options.jobs = options.jobs;
  const runner::Executor executor(executor_options);
  const unsigned jobs = executor.resolved_jobs(
      static_cast<std::size_t>(std::max<std::uint64_t>(1, limit - blocks_done)));
  // A round dispatches a few blocks per worker, then folds them into the
  // master in block order on the caller's thread. Per-slot accumulators and
  // scratch buffers are reused across rounds, so the steady state allocates
  // nothing per participant (asserted by the budget test).
  const std::size_t round_size = static_cast<std::size_t>(jobs) * 4;
  std::vector<Accumulator> round_accs;
  round_accs.reserve(round_size);
  for (std::size_t slot = 0; slot < round_size; ++slot) {
    round_accs.push_back(make_accumulator(spec.kind));
  }
  std::vector<Scratch> scratches(round_size);

  const auto started = std::chrono::steady_clock::now();
  const auto snapshot = [&] {
    Progress progress;
    progress.participants_total = owned_blocks * options.block_size;
    progress.participants_done = master.participants;
    progress.resumed_participants = resumed_participants;
    progress.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
    const double fresh =
        static_cast<double>(master.participants - resumed_participants);
    if (progress.elapsed_seconds > 0.0 && fresh > 0.0) {
      progress.participants_per_second = fresh / progress.elapsed_seconds;
      const double remaining = static_cast<double>(
          progress.participants_total > progress.participants_done
              ? progress.participants_total - progress.participants_done
              : 0);
      progress.eta_seconds = remaining / progress.participants_per_second;
    }
    return progress;
  };

  std::uint64_t since_checkpoint = 0;
  auto last_progress = started;
  while (blocks_done < limit) {
    const std::size_t n_round =
        static_cast<std::size_t>(std::min<std::uint64_t>(round_size, limit - blocks_done));
    for (std::size_t slot = 0; slot < n_round; ++slot) round_accs[slot].reset_counts();
    const auto failures = executor.run(n_round, [&](std::size_t slot) {
      const std::uint64_t ordinal = blocks_done + slot;
      const std::uint64_t block = options.shard_index + ordinal * options.shard_count;
      const std::uint64_t begin = block * options.block_size;
      const std::uint64_t end =
          std::min<std::uint64_t>(spec.participants, begin + options.block_size);
      Scratch& scratch = scratches[slot];
      Accumulator& acc = round_accs[slot];
      for (std::uint64_t id = begin; id < end; ++id) simulate_one(ctx, id, scratch, acc);
    });
    if (!failures.empty()) std::rethrow_exception(failures.front().error);
    // Fold in block order. ExactMoments merges are bit-exact under any
    // order anyway; the fixed order keeps the loop easy to reason about.
    for (std::size_t slot = 0; slot < n_round; ++slot) master.merge(round_accs[slot]);
    blocks_done += n_round;
    since_checkpoint += n_round;

    if (store && since_checkpoint >= options.checkpoint_every_blocks) {
      store->save(master, blocks_done);
      since_checkpoint = 0;
    }
    if (options.on_progress) {
      const auto now = std::chrono::steady_clock::now();
      if (blocks_done >= limit ||
          std::chrono::duration<double>(now - last_progress).count() >= 0.5) {
        options.on_progress(snapshot());
        last_progress = now;
      }
    }
  }
  if (store) store->save(master, blocks_done);

  report.accumulator = std::move(master);
  report.blocks_done = blocks_done;
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  return report;
}

void write_report(std::ostream& os, const StudySpec& spec, const Accumulator& acc) {
  os.precision(17);
  os << "qperc-popreport-v1\n";
  os << "spec kind=" << kind_token(spec.kind) << " group=" << study::to_string(spec.group)
     << " participants=" << spec.participants << " seed=" << spec.seed
     << " sites=" << spec.sites << " runs=" << spec.video_runs << " videos="
     << spec.videos_work << ',' << spec.videos_free_time << ',' << spec.videos_plane << ','
     << spec.videos_ab << '\n';
  os << "funnel initial=" << acc.participants << " survivors=" << acc.survivors;
  for (std::size_t rule = 0; rule < study::kRuleCount; ++rule) {
    os << ' ' << study::rule_name(rule) << '=' << acc.removed_at[rule];
  }
  os << '\n';
  os << "seconds n=" << acc.seconds.count() << " mean=" << acc.seconds.mean()
     << " stddev=" << acc.seconds.sample_stddev() << '\n';
  os << "votes total=" << acc.votes << '\n';

  for (std::size_t i = 0; i < acc.rating_cells.size(); ++i) {
    const RatingCell& cell = acc.rating_cells[i];
    const auto ci = stats::mean_confidence_interval(cell.votes, 0.99);
    os << "rcell " << i << " protocol=" << cell.protocol
       << " network=" << net::to_string(cell.network)
       << " context=" << context_token(cell.context) << " n=" << cell.votes.count()
       << " sum_q=" << cell.votes.sum_q() << " sumsq_hi=" << cell.votes.sumsq_hi()
       << " sumsq_lo=" << cell.votes.sumsq_lo() << " mean=" << cell.votes.mean()
       << " stddev=" << cell.votes.sample_stddev() << " ci99_half=" << ci.half_width
       << '\n';
  }

  // The headline scaling question: is QUIC rated differently from TCP, and
  // what rating gap could a cohort of a given size resolve? One Welch test
  // per (context, network) cell pair, plus the minimum detectable effect
  // (alpha = 0.05, power = 0.8) at the paper's lab size and beyond.
  if (!acc.rating_cells.empty()) {
    const auto find_cell = [&](std::string_view protocol, net::NetworkKind network,
                               study::Context context) -> const RatingCell* {
      for (const RatingCell& cell : acc.rating_cells) {
        if (cell.protocol == protocol && cell.network == network &&
            cell.context == context) {
          return &cell;
        }
      }
      return nullptr;
    };
    constexpr std::array<std::uint64_t, 3> kMdeSizes = {35, 10000, 10000000};
    for (const study::Context context : kContexts) {
      for (const net::NetworkKind network : study::networks_for_context(context)) {
        const RatingCell* quic = find_cell("QUIC", network, context);
        const RatingCell* tcp = find_cell("TCP", network, context);
        if (quic == nullptr || tcp == nullptr) continue;
        const auto test = stats::welch_t_test(quic->votes, tcp->votes);
        os << "effect context=" << context_token(context)
           << " network=" << net::to_string(network) << " first=QUIC second=TCP"
           << " diff=" << test.difference << " se=" << test.standard_error
           << " t=" << test.t_statistic << " df=" << test.df << " p=" << test.p_value;
        for (const std::uint64_t n : kMdeSizes) {
          os << " mde_n" << n << '='
             << stats::min_detectable_effect(quic->votes.sample_variance(), n,
                                             tcp->votes.sample_variance(), n, 0.05, 0.8);
        }
        os << '\n';
      }
    }
  }

  for (std::size_t i = 0; i < acc.ab_cells.size(); ++i) {
    const AbCell& cell = acc.ab_cells[i];
    const auto& [proto_a, proto_b] = study::ab_pairs()[cell.pair_index];
    const std::uint64_t total = cell.total();
    const double share_first =
        total ? static_cast<double>(cell.prefer_first) / static_cast<double>(total) : 0.0;
    const auto wilson = stats::wilson_interval(cell.no_difference, total, 0.99);
    os << "acell " << i << " pair=" << proto_a << '>' << proto_b
       << " network=" << net::to_string(cell.network) << " first=" << cell.prefer_first
       << " nodiff=" << cell.no_difference << " second=" << cell.prefer_second
       << " replays=" << cell.replays << " confidence_q=" << cell.confidence_q
       << " share_first=" << share_first << " nodiff_wilson99=" << wilson.center << '~'
       << wilson.half_width << '\n';
    // Sign-test flavoured detection check: among decided votes, is the
    // "supposedly faster" side picked more often than chance?
    const auto detect = stats::two_proportion_z_test(cell.prefer_first, total,
                                                     cell.prefer_second, total);
    os << "abtest " << i << " pair=" << proto_a << '>' << proto_b
       << " network=" << net::to_string(cell.network) << " diff=" << detect.difference
       << " se=" << detect.standard_error << " z=" << detect.t_statistic
       << " p=" << detect.p_value << '\n';
  }
}

}  // namespace qperc::population
