// Population-scale streaming studies.
//
// The batch studies in src/study materialise every vote (std::map of
// std::vector<double>), which caps them at cohort sizes the paper actually
// recruited. This subsystem answers the scaling question the paper leaves
// open — what effects WOULD a much larger cohort resolve? — by rebuilding
// the same pipeline (participant traits -> R1..R7 conformance funnel ->
// rater model -> per-cell aggregation) as a stream:
//
//   * Participants are never stored. Each one is generated on the fly from
//     an identity-derived RNG stream (study::participant_stream): a pure
//     function of (seed, participant_id), so the draws do not depend on
//     thread, shard, block size, or enumeration order.
//   * Votes fold into fixed-size accumulators (stats::ExactMoments — integer
//     fixed-point count/sum/sum-of-squares). Memory is O(cells), not O(N).
//   * Stimuli are the cached per-condition Videos of core::VideoLibrary;
//     the trial simulation cost is paid once per condition and amortised
//     over every participant.
//
// Determinism contract: the accumulated numbers — and therefore the bytes
// of write_report — are a pure function of the StudySpec. Job count, block
// size, shard layout, checkpoint/resume cycles, and merge order never change
// them, because every per-cell statistic is integer arithmetic (commutative
// and associative exactly, not merely to rounding). Tests assert byte
// identity across --jobs 1 vs 8 and across shard splits merged in any order.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/video.hpp"
#include "net/profile.hpp"
#include "stats/streaming.hpp"
#include "study/conformance.hpp"
#include "study/participant.hpp"

namespace qperc::population {

/// Everything that determines the study's results. Execution knobs (jobs,
/// sharding, checkpointing) live in RunOptions and never affect the numbers.
struct StudySpec {
  study::StudyKind kind = study::StudyKind::kRating;
  study::Group group = study::Group::kMicroworker;
  std::uint64_t participants = 0;
  std::uint64_t seed = 7;
  /// Stimulus site budget: <= 5 restricts to the lab's five domains,
  /// otherwise the first `sites` catalog entries (the paper grid is 36).
  std::size_t sites = 36;
  /// Trials per cached condition video (the paper records >= 31). Part of
  /// the identity: the CLI builds the VideoLibrary from (seed, video_runs),
  /// so checkpoints taken against different stimuli refuse to mix.
  std::uint32_t video_runs = 31;
  /// Rating study: videos per context block (paper: 11+11+5).
  std::size_t videos_work = 11;
  std::size_t videos_free_time = 11;
  std::size_t videos_plane = 5;
  /// A/B study: video pairs per participant (paper: 26 for the crowd).
  std::size_t videos_ab = 26;
  /// Optional link-condition overlay applied to every condition's profile
  /// (variable-rate downlink trace, token-bucket policer). Part of the
  /// identity: the VideoLibrary must be built with the same overlay, and
  /// checkpoints taken under different conditions refuse to mix.
  net::LinkConditions conditions{};

  /// Throws std::invalid_argument with an actionable message.
  void validate() const;
  /// Stable identity hash; checkpoints refuse to resume a different study.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// One rating cell (protocol, network, context) — one bar of Figure 5,
/// streamed. The label fields are fixed by the layout; only `votes` counts.
struct RatingCell {
  std::string protocol;
  net::NetworkKind network = net::NetworkKind::kDsl;
  study::Context context = study::Context::kWork;
  stats::ExactMoments votes;
};

/// One A/B cell (pair, network) — one bar group of Figure 4, streamed.
/// Integer-only state so merges are exact.
struct AbCell {
  std::size_t pair_index = 0;
  net::NetworkKind network = net::NetworkKind::kDsl;
  std::uint64_t prefer_first = 0;
  std::uint64_t no_difference = 0;
  std::uint64_t prefer_second = 0;
  std::uint64_t replays = 0;
  /// Sum of per-vote confidence, quantised at stats::ExactMoments::kScale.
  std::int64_t confidence_q = 0;

  [[nodiscard]] std::uint64_t total() const {
    return prefer_first + no_difference + prefer_second;
  }
};

/// The whole study state: O(1) in the participant count. Merging is plain
/// integer addition per field, so it is commutative and associative exactly
/// — any grouping of blocks into shards, merged in any order, produces the
/// same bits (mirroring core::TrialCounters::merge).
struct Accumulator {
  std::uint64_t participants = 0;
  std::uint64_t survivors = 0;
  std::uint64_t votes = 0;
  std::array<std::uint64_t, study::kRuleCount> removed_at{};
  /// Seconds spent per video across all shown videos.
  stats::ExactMoments seconds;
  /// Rating layout: context-major, then protocol, then network; empty for
  /// A/B studies. Use make_accumulator for the canonical layout.
  std::vector<RatingCell> rating_cells;
  /// A/B layout: pair-major, then network; empty for rating studies.
  std::vector<AbCell> ab_cells;

  /// Requires an identical cell layout (same spec kind).
  void merge(const Accumulator& other);
  /// Zeroes all counts, keeping the cell layout (for buffer reuse).
  void reset_counts();
};

/// Builds the empty accumulator with the canonical cell layout for a study
/// kind. All accumulators that ever merge must come from this function.
[[nodiscard]] Accumulator make_accumulator(study::StudyKind kind);

/// Throttled progress snapshot for operator display.
struct Progress {
  /// Participants owned by this shard.
  std::uint64_t participants_total = 0;
  /// Processed so far, including blocks restored from a checkpoint.
  std::uint64_t participants_done = 0;
  std::uint64_t resumed_participants = 0;
  double elapsed_seconds = 0.0;
  /// Fresh-work rate this run (resumed blocks excluded).
  double participants_per_second = 0.0;
  double eta_seconds = 0.0;
};

/// Execution knobs. None of these change the accumulated numbers.
struct RunOptions {
  /// Worker threads; 0 = one per hardware thread.
  unsigned jobs = 0;
  /// This process handles blocks with index % shard_count == shard_index.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  /// Participants per work block (the unit of scheduling and checkpointing).
  std::uint64_t block_size = 8192;
  /// Stop after this many fresh blocks (0 = run to completion). Gives tests
  /// a deterministic "interrupted" state, like campaign --max-tasks.
  std::uint64_t max_blocks = 0;
  /// Durable checkpoint file; empty = no durability.
  std::string checkpoint_path;
  /// Blocks between automatic checkpoints.
  std::uint64_t checkpoint_every_blocks = 64;
  /// Load an existing checkpoint (same spec fingerprint + shard geometry)
  /// and continue; without this an existing file is overwritten.
  bool resume = false;
  std::function<void(const Progress&)> on_progress;

  void validate() const;
};

struct Report {
  Accumulator accumulator;
  /// Blocks this shard owns / has completed (cumulative, incl. resumed).
  std::uint64_t owned_blocks = 0;
  std::uint64_t blocks_done = 0;
  std::uint64_t resumed_blocks = 0;
  double elapsed_seconds = 0.0;
  [[nodiscard]] bool complete() const { return blocks_done == owned_blocks; }
};

/// Runs (this shard of) the streaming study against a shared video library.
/// The library is warmed (precompute) on entry; workers then only read the
/// cached stimuli. Throws on invalid spec/options or unwritable checkpoint.
Report run_streaming_study(core::VideoLibrary& library, const StudySpec& spec,
                           const RunOptions& options = {});

/// Canonical machine-readable export — the bytes the determinism tests
/// compare. Integer accumulator state is printed verbatim; derived
/// statistics (means, CIs, Welch tests, minimum detectable effects) at full
/// precision, so equal state implies equal bytes.
void write_report(std::ostream& os, const StudySpec& spec, const Accumulator& acc);

/// Short identifier tokens used in reports and checkpoint filenames.
[[nodiscard]] std::string_view kind_token(study::StudyKind kind);
[[nodiscard]] std::string_view context_token(study::Context context);

}  // namespace qperc::population
