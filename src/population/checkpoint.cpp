#include "population/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace qperc::population {
namespace {

std::string checksum_hex(std::string_view payload) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << fnv1a(payload);
  return os.str();
}

/// Serialises the integer accumulator state (everything after the header
/// line, before the checksum footer). Deterministic bytes: fixed field
/// order, integers only.
std::string payload_for(const Accumulator& acc) {
  std::ostringstream os;
  os << "counts " << acc.participants << ' ' << acc.survivors << ' ' << acc.votes << '\n';
  os << "removed";
  for (const std::uint64_t count : acc.removed_at) os << ' ' << count;
  os << '\n';
  os << "seconds " << acc.seconds.count() << ' ' << acc.seconds.sum_q() << ' '
     << acc.seconds.sumsq_hi() << ' ' << acc.seconds.sumsq_lo() << '\n';
  os << "cells " << acc.rating_cells.size() << ' ' << acc.ab_cells.size() << '\n';
  for (std::size_t i = 0; i < acc.rating_cells.size(); ++i) {
    const stats::ExactMoments& votes = acc.rating_cells[i].votes;
    os << "rcell " << i << ' ' << votes.count() << ' ' << votes.sum_q() << ' '
       << votes.sumsq_hi() << ' ' << votes.sumsq_lo() << '\n';
  }
  for (std::size_t i = 0; i < acc.ab_cells.size(); ++i) {
    const AbCell& cell = acc.ab_cells[i];
    os << "acell " << i << ' ' << cell.prefer_first << ' ' << cell.no_difference << ' '
       << cell.prefer_second << ' ' << cell.replays << ' ' << cell.confidence_q << '\n';
  }
  return os.str();
}

/// Parses one payload line with the expected tag; returns the value stream.
bool expect_tag(std::istream& in, std::string_view tag, std::istringstream& fields,
                std::string& line) {
  if (!std::getline(in, line)) return false;
  fields.clear();
  fields.str(line);
  std::string parsed;
  fields >> parsed;
  return static_cast<bool>(fields) && parsed == tag;
}

}  // namespace

std::optional<ShardState> read_shard(const std::string& path, const Accumulator& layout) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  std::istringstream header(line);
  std::string magic;
  ShardState state;
  header >> magic >> state.fingerprint >> state.shard_index >> state.shard_count >>
      state.block_size >> state.blocks_done;
  if (!header || magic != StudyStore::kMagic) return std::nullopt;

  // Re-read the payload verbatim for the checksum while parsing it.
  std::string payload;
  std::istringstream fields;
  state.accumulator = layout;
  state.accumulator.reset_counts();
  Accumulator& acc = state.accumulator;

  if (!expect_tag(in, "counts", fields, line)) return std::nullopt;
  fields >> acc.participants >> acc.survivors >> acc.votes;
  if (!fields) return std::nullopt;
  payload += line;
  payload += '\n';

  if (!expect_tag(in, "removed", fields, line)) return std::nullopt;
  for (std::uint64_t& count : acc.removed_at) fields >> count;
  if (!fields) return std::nullopt;
  payload += line;
  payload += '\n';

  if (!expect_tag(in, "seconds", fields, line)) return std::nullopt;
  {
    std::uint64_t n = 0;
    std::int64_t sum_q = 0;
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    fields >> n >> sum_q >> hi >> lo;
    if (!fields) return std::nullopt;
    acc.seconds = stats::ExactMoments::restore(n, sum_q, hi, lo);
  }
  payload += line;
  payload += '\n';

  if (!expect_tag(in, "cells", fields, line)) return std::nullopt;
  std::size_t rating_count = 0;
  std::size_t ab_count = 0;
  fields >> rating_count >> ab_count;
  if (!fields || rating_count != layout.rating_cells.size() ||
      ab_count != layout.ab_cells.size()) {
    return std::nullopt;
  }
  payload += line;
  payload += '\n';

  for (std::size_t i = 0; i < rating_count; ++i) {
    if (!expect_tag(in, "rcell", fields, line)) return std::nullopt;
    std::size_t index = 0;
    std::uint64_t n = 0;
    std::int64_t sum_q = 0;
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    fields >> index >> n >> sum_q >> hi >> lo;
    if (!fields || index != i) return std::nullopt;
    acc.rating_cells[i].votes = stats::ExactMoments::restore(n, sum_q, hi, lo);
    payload += line;
    payload += '\n';
  }
  for (std::size_t i = 0; i < ab_count; ++i) {
    if (!expect_tag(in, "acell", fields, line)) return std::nullopt;
    std::size_t index = 0;
    AbCell& cell = acc.ab_cells[i];
    fields >> index >> cell.prefer_first >> cell.no_difference >> cell.prefer_second >>
        cell.replays >> cell.confidence_q;
    if (!fields || index != i) return std::nullopt;
    payload += line;
    payload += '\n';
  }

  if (!std::getline(in, line)) return std::nullopt;
  std::istringstream footer(line);
  std::string tag;
  std::string expected;
  footer >> tag >> expected;
  if (!footer || tag != "checksum" || expected != checksum_hex(payload)) {
    return std::nullopt;
  }
  return state;
}

StudyStore::StudyStore(std::string path, std::uint64_t fingerprint, unsigned shard_index,
                       unsigned shard_count, std::uint64_t block_size)
    : path_(std::move(path)),
      fingerprint_(fingerprint),
      shard_index_(shard_index),
      shard_count_(shard_count),
      block_size_(block_size) {}

bool StudyStore::load(Accumulator& acc, std::uint64_t& blocks_done) const {
  const auto loaded = read_shard(path_, acc);
  if (!loaded || loaded->fingerprint != fingerprint_ ||
      loaded->shard_index != shard_index_ || loaded->shard_count != shard_count_ ||
      loaded->block_size != block_size_) {
    return false;
  }
  acc = loaded->accumulator;
  blocks_done = loaded->blocks_done;
  return true;
}

void StudyStore::save(const Accumulator& acc, std::uint64_t blocks_done) const {
  const std::string payload = payload_for(acc);
  const std::string temp_path = path_ + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write checkpoint temp file " + temp_path);
    out << kMagic << ' ' << fingerprint_ << ' ' << shard_index_ << ' ' << shard_count_
        << ' ' << block_size_ << ' ' << blocks_done << '\n'
        << payload << "checksum " << checksum_hex(payload) << '\n';
    out.flush();
    if (!out) {
      std::remove(temp_path.c_str());
      throw std::runtime_error("failed writing checkpoint temp file " + temp_path);
    }
  }
  if (std::rename(temp_path.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path.c_str());
    throw std::runtime_error("cannot rename checkpoint into place: " + path_);
  }
}

}  // namespace qperc::population
