// Website catalog serialization: lets users export the generated study
// catalog, edit it (or derive one from their own HAR-style recordings), and
// replay the studies against it.
//
// Format: a line-oriented text file.
//   site <name> <origin_count>
//   obj <id> <type> <origin> <bytes> <parent> <discovery_fraction>
//       <parse_delay_us> <render_blocking> <deferred> <render_weight> <priority>
// Lines starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "web/website.hpp"

namespace qperc::web {

void write_catalog(std::ostream& os, const std::vector<Website>& catalog);
/// Parses a catalog; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] std::vector<Website> read_catalog(std::istream& is);

void save_catalog(const std::string& path, const std::vector<Website>& catalog);
[[nodiscard]] std::vector<Website> load_catalog(const std::string& path);

[[nodiscard]] std::string_view object_type_token(ObjectType type);
[[nodiscard]] ObjectType object_type_from_token(std::string_view token);

}  // namespace qperc::web
