// Website model: a dependency DAG of objects spread across origins.
//
// The paper replays 36 real sites chosen (via [23]) for high variation in
// object count, byte size, and multi-server nature. We cannot ship those
// recordings, so a deterministic generator produces 36 synthetic sites
// spanning the same diversity axes; sites named in the paper get shapes
// matching its prose (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace qperc::web {

enum class ObjectType : std::uint8_t { kHtml, kCss, kScript, kImage, kFont, kOther };

[[nodiscard]] std::string_view to_string(ObjectType type);

struct WebObject {
  std::uint32_t id = 0;
  ObjectType type = ObjectType::kOther;
  /// Origin server index within the site (0 = main origin).
  std::uint32_t origin = 0;
  std::uint64_t bytes = 0;

  /// Discovery: the object becomes known once `discovery_fraction` of the
  /// parent's body bytes have arrived (progressive HTML parsing), plus
  /// `parse_delay` of parser/script time. parent == -1 => known at t0.
  std::int32_t parent = -1;
  double discovery_fraction = 0.0;
  SimDuration parse_delay{0};

  /// Render-blocking objects gate the first paint (head CSS, sync JS).
  bool render_blocking = false;
  /// Deferred tail content (analytics beacons, below-the-fold media): loads
  /// after the visible page, stretching PLT with little or no visual effect —
  /// the reason PLT correlates poorly with perception (Figure 6).
  bool deferred = false;
  /// Contribution to visual completeness, realized at completion time.
  double render_weight = 0.0;
  /// Browser scheduling priority (0 most urgent).
  std::uint8_t priority = 2;
};

struct Website {
  std::string name;
  std::uint32_t origin_count = 1;
  std::vector<WebObject> objects;

  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] std::size_t object_count() const { return objects.size(); }
  /// Number of distinct origins actually referenced by objects.
  [[nodiscard]] std::uint32_t contacted_origins() const;
};

/// Shape parameters for the site generator.
struct SiteSpec {
  std::string name;
  std::uint32_t object_count = 50;
  std::uint64_t total_kilobytes = 1000;
  std::uint32_t origins = 5;
  /// Fraction of objects discovered late (depth-2: scripts, lazy content).
  double late_discovery_share = 0.15;
};

/// Generates one site; deterministic in (spec, seed).
[[nodiscard]] Website generate_site(const SiteSpec& spec, Rng rng);

/// The 36 study sites (paper: 40 minus 4 unreplayable/private, §3).
[[nodiscard]] const std::vector<SiteSpec>& study_site_specs();
[[nodiscard]] std::vector<Website> study_catalog(std::uint64_t seed);

/// The five-domain subset used in the controlled lab study (§4.1).
[[nodiscard]] const std::vector<std::string>& lab_study_domains();

}  // namespace qperc::web
