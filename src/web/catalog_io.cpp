#include "web/catalog_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qperc::web {

std::string_view object_type_token(ObjectType type) { return to_string(type); }

ObjectType object_type_from_token(std::string_view token) {
  if (token == "html") return ObjectType::kHtml;
  if (token == "css") return ObjectType::kCss;
  if (token == "script") return ObjectType::kScript;
  if (token == "image") return ObjectType::kImage;
  if (token == "font") return ObjectType::kFont;
  if (token == "other") return ObjectType::kOther;
  throw std::runtime_error("unknown object type: " + std::string(token));
}

void write_catalog(std::ostream& os, const std::vector<Website>& catalog) {
  os << "# qperc website catalog v1\n";
  os.precision(17);
  for (const auto& site : catalog) {
    os << "site " << site.name << ' ' << site.origin_count << '\n';
    for (const auto& object : site.objects) {
      os << "obj " << object.id << ' ' << object_type_token(object.type) << ' '
         << object.origin << ' ' << object.bytes << ' ' << object.parent << ' '
         << object.discovery_fraction << ' '
         << std::chrono::duration_cast<microseconds>(object.parse_delay).count() << ' '
         << (object.render_blocking ? 1 : 0) << ' ' << (object.deferred ? 1 : 0) << ' '
         << object.render_weight << ' ' << static_cast<int>(object.priority) << '\n';
    }
  }
}

std::vector<Website> read_catalog(std::istream& is) {
  std::vector<Website> catalog;
  std::string line;
  std::size_t line_number = 0;
  const auto fail = [&](const std::string& message) {
    throw std::runtime_error("catalog line " + std::to_string(line_number) + ": " +
                             message);
  };

  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "site") {
      Website site;
      fields >> site.name >> site.origin_count;
      if (fields.fail() || site.name.empty()) fail("malformed site line");
      if (site.origin_count == 0) fail("origin_count must be positive");
      catalog.push_back(std::move(site));
    } else if (keyword == "obj") {
      if (catalog.empty()) fail("obj before any site");
      WebObject object;
      std::string type_token;
      std::int64_t parse_delay_us = 0;
      int blocking = 0;
      int deferred = 0;
      int priority = 2;
      fields >> object.id >> type_token >> object.origin >> object.bytes >>
          object.parent >> object.discovery_fraction >> parse_delay_us >> blocking >>
          deferred >> object.render_weight >> priority;
      if (fields.fail()) fail("malformed obj line");
      object.type = object_type_from_token(type_token);
      object.parse_delay = microseconds(parse_delay_us);
      object.render_blocking = blocking != 0;
      object.deferred = deferred != 0;
      object.priority = static_cast<std::uint8_t>(priority);
      Website& site = catalog.back();
      if (object.id != site.objects.size()) fail("object ids must be dense and in order");
      if (object.parent < -1 || object.parent >= static_cast<std::int32_t>(object.id)) {
        fail("parent must be -1 or precede the object (acyclic)");
      }
      if (object.origin >= site.origin_count) fail("origin out of range");
      if (object.bytes == 0) fail("object bytes must be positive");
      site.objects.push_back(object);
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  for (const auto& site : catalog) {
    if (site.objects.empty()) {
      throw std::runtime_error("site " + site.name + " has no objects");
    }
  }
  return catalog;
}

void save_catalog(const std::string& path, const std::vector<Website>& catalog) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_catalog(out, catalog);
}

std::vector<Website> load_catalog(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_catalog(in);
}

}  // namespace qperc::web
