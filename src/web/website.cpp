#include "web/website.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace qperc::web {

std::string_view to_string(ObjectType type) {
  switch (type) {
    case ObjectType::kHtml: return "html";
    case ObjectType::kCss: return "css";
    case ObjectType::kScript: return "script";
    case ObjectType::kImage: return "image";
    case ObjectType::kFont: return "font";
    case ObjectType::kOther: return "other";
  }
  return "?";
}

std::uint64_t Website::total_bytes() const {
  return std::accumulate(objects.begin(), objects.end(), std::uint64_t{0},
                         [](std::uint64_t sum, const WebObject& o) { return sum + o.bytes; });
}

std::uint32_t Website::contacted_origins() const {
  std::set<std::uint32_t> origins;
  for (const auto& object : objects) origins.insert(object.origin);
  return static_cast<std::uint32_t>(origins.size());
}

namespace {

/// Draws an origin index: the main origin hosts most first-party content,
/// the rest spreads over third parties with a mild power-law tilt.
std::uint32_t draw_origin(Rng& rng, std::uint32_t origins, bool first_party_biased) {
  if (origins <= 1) return 0;
  if (first_party_biased && rng.bernoulli(0.6)) return 0;
  const double u = rng.uniform();
  const double tilted = std::pow(u, 1.6);  // favour low indices
  return static_cast<std::uint32_t>(tilted * origins) % origins;
}

}  // namespace

Website generate_site(const SiteSpec& spec, Rng rng) {
  Website site;
  site.name = spec.name;
  site.origin_count = std::max<std::uint32_t>(spec.origins, 1);

  const std::uint32_t n = std::max<std::uint32_t>(spec.object_count, 3);
  const std::uint64_t total_bytes = spec.total_kilobytes * 1024;

  // Object-type mix for the non-HTML objects, roughly matching HTTP-Archive
  // page composition: a few stylesheets and scripts, mostly images.
  const auto css_count = std::max<std::uint32_t>(1, n / 12);
  const auto script_count = std::max<std::uint32_t>(1, n / 6);
  const auto font_count = n >= 20 ? std::max<std::uint32_t>(1, n / 25) : 0;

  site.objects.reserve(n);

  // Root HTML document: ~4-10% of total bytes, clamped to sane page sizes.
  WebObject html;
  html.id = 0;
  html.type = ObjectType::kHtml;
  html.origin = 0;
  html.bytes = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(total_bytes * rng.uniform(0.04, 0.10)), 8 * 1024,
      256 * 1024);
  html.parent = -1;
  html.render_blocking = true;
  html.priority = 0;
  site.objects.push_back(html);

  // Byte budget for subresources, split by a weight draw per object.
  const std::uint64_t sub_budget = total_bytes > html.bytes ? total_bytes - html.bytes : 0;
  std::vector<double> weights;
  std::vector<ObjectType> types;
  for (std::uint32_t i = 1; i < n; ++i) {
    ObjectType type;
    if (i <= css_count) {
      type = ObjectType::kCss;
    } else if (i <= css_count + script_count) {
      type = ObjectType::kScript;
    } else if (i <= css_count + script_count + font_count) {
      type = ObjectType::kFont;
    } else {
      type = rng.bernoulli(0.92) ? ObjectType::kImage : ObjectType::kOther;
    }
    types.push_back(type);
    // Heavy-tailed byte shares: images dominate, scripts moderate.
    const double scale = type == ObjectType::kImage    ? 1.0
                         : type == ObjectType::kScript ? 0.7
                         : type == ObjectType::kCss    ? 0.3
                         : type == ObjectType::kFont   ? 0.5
                                                       : 0.4;
    weights.push_back(rng.lognormal(0.0, 1.0) * scale);
  }
  const double weight_sum =
      std::max(std::accumulate(weights.begin(), weights.end(), 0.0), 1e-9);

  for (std::uint32_t i = 1; i < n; ++i) {
    const ObjectType type = types[i - 1];
    WebObject object;
    object.id = i;
    object.type = type;
    object.bytes = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(sub_budget) * weights[i - 1] /
                                   weight_sum),
        600);

    switch (type) {
      case ObjectType::kCss:
        object.origin = draw_origin(rng, site.origin_count, true);
        object.parent = 0;
        object.discovery_fraction = rng.uniform(0.10, 0.30);  // <head>
        object.render_blocking = true;
        object.priority = 0;
        break;
      case ObjectType::kScript:
        object.origin = draw_origin(rng, site.origin_count, false);
        object.parent = 0;
        object.discovery_fraction = rng.uniform(0.15, 0.60);
        object.render_blocking = rng.bernoulli(0.4);  // sync head scripts
        object.priority = 1;
        break;
      case ObjectType::kFont:
        object.origin = draw_origin(rng, site.origin_count, false);
        object.parent = 1;  // referenced from the first stylesheet
        object.discovery_fraction = rng.uniform(0.8, 1.0);
        object.priority = 1;
        break;
      case ObjectType::kImage:
      case ObjectType::kOther:
      case ObjectType::kHtml:
        // Heavy media comes from the first-party origin or a small CDN set;
        // the long tail of third-party hosts serves small objects (beacons,
        // widgets) — matching how real pages distribute bytes over origins.
        if (object.bytes > 30 * 1024 && site.origin_count > 3) {
          object.origin = rng.bernoulli(0.5)
                              ? 0
                              : static_cast<std::uint32_t>(rng.uniform_int(1, 3));
        } else {
          object.origin = draw_origin(rng, site.origin_count, false);
        }
        object.parent = 0;
        object.discovery_fraction = rng.uniform(0.30, 0.95);  // body parse order
        object.priority = 3;
        break;
    }

    // A share of objects is discovered late, behind a script (depth 2).
    // Only scripts that precede this object can be its parent (no cycles).
    const std::uint32_t eligible_scripts =
        std::min<std::uint32_t>(script_count, i > css_count + 1 ? i - css_count - 1 : 0);
    if (type != ObjectType::kCss && eligible_scripts > 0 &&
        rng.bernoulli(spec.late_discovery_share)) {
      object.parent = static_cast<std::int32_t>(
          1 + css_count + rng.uniform_int(0, eligible_scripts - 1));
      object.discovery_fraction = 1.0;
      object.parse_delay = from_seconds(rng.uniform(0.003, 0.030));
      object.render_blocking = false;
    }

    object.parse_delay += from_seconds(rng.uniform(0.0005, 0.004));
    site.objects.push_back(object);
  }

  // Deferred tail: a per-site share of non-critical objects loads after the
  // document (analytics, lazy below-the-fold media). They stretch PLT with
  // little visual impact, decoupling PLT from perceived speed (Figure 6).
  // The tail share and its firing delays vary widely and independently of
  // the visible page: ad auctions, analytics retries, and lazy loaders fire
  // seconds after the content is up.
  const double tail_share = rng.uniform(0.05, 0.50);
  for (auto& object : site.objects) {
    if (object.id == 0 || object.render_blocking) continue;
    if (object.type == ObjectType::kCss || object.type == ObjectType::kFont) continue;
    if (!rng.bernoulli(tail_share)) continue;
    object.deferred = true;
    object.parent = 0;
    object.discovery_fraction = 1.0;  // fires once the document is done
    object.parse_delay = from_seconds(0.05 + std::min(rng.exponential(0.9), 6.0));
    object.priority = 3;
  }

  // Render weights: first paint (HTML + render-blocking set) carries ~35%,
  // in-viewport images ~55% proportional to sqrt(bytes) (pixel-area proxy),
  // other visible content ~8%; the deferred tail carries ~2% (below-the-fold
  // media) or nothing at all (beacons). Weights are normalized to sum to 1.
  double image_basis = 0.0;
  double other_basis = 0.0;
  double tail_basis = 0.0;
  double blocking_count = 0.0;
  for (auto& object : site.objects) {
    if (object.render_blocking || object.type == ObjectType::kHtml) {
      blocking_count += 1.0;
    } else if (object.deferred) {
      // 60% of the tail is invisible machinery; the rest barely shows.
      if (rng.bernoulli(0.6)) continue;
      object.render_weight = 1.0;  // marker; scaled below
      tail_basis += 1.0;
    } else if (object.type == ObjectType::kImage) {
      image_basis += std::sqrt(static_cast<double>(object.bytes));
    } else {
      other_basis += std::sqrt(static_cast<double>(object.bytes));
    }
  }
  double total = 0.0;
  for (auto& object : site.objects) {
    if (object.render_blocking || object.type == ObjectType::kHtml) {
      object.render_weight = 0.35 / std::max(blocking_count, 1.0);
    } else if (object.deferred) {
      object.render_weight =
          object.render_weight > 0.0 && tail_basis > 0.0 ? 0.02 / tail_basis : 0.0;
    } else if (object.type == ObjectType::kImage && image_basis > 0.0) {
      object.render_weight =
          0.55 * std::sqrt(static_cast<double>(object.bytes)) / image_basis;
    } else if (other_basis > 0.0) {
      object.render_weight =
          0.08 * std::sqrt(static_cast<double>(object.bytes)) / other_basis;
    }
    total += object.render_weight;
  }
  if (total > 0.0) {
    for (auto& object : site.objects) object.render_weight /= total;
  }
  return site;
}

const std::vector<SiteSpec>& study_site_specs() {
  // 36 sites. Shapes for paper-named sites follow §4.4's prose; the rest
  // fill out the diversity grid of [23]: sizes 100 KB..6 MB, 10..200
  // objects, 1..40 contacted origins.
  static const std::vector<SiteSpec> specs = {
      // The five lab-study domains (§4.1), "diverse in website size".
      {.name = "wikipedia.org", .object_count = 24, .total_kilobytes = 550, .origins = 2},
      {.name = "gov.uk", .object_count = 30, .total_kilobytes = 360, .origins = 2},
      {.name = "etsy.com", .object_count = 120, .total_kilobytes = 3100, .origins = 24},
      {.name = "demorgen.be", .object_count = 150, .total_kilobytes = 4200, .origins = 34},
      {.name = "nytimes.com", .object_count = 160, .total_kilobytes = 4600, .origins = 30},
      // Sites §4.4 names with shape hints.
      {.name = "spotify.com", .object_count = 42, .total_kilobytes = 420, .origins = 26},
      {.name = "apache.org", .object_count = 16, .total_kilobytes = 210, .origins = 3},
      {.name = "google.com", .object_count = 18, .total_kilobytes = 380, .origins = 4},
      {.name = "nature.com", .object_count = 85, .total_kilobytes = 1600, .origins = 20},
      {.name = "w3.org", .object_count = 24, .total_kilobytes = 310, .origins = 2},
      {.name = "wordpress.com", .object_count = 22, .total_kilobytes = 290, .origins = 8},
      {.name = "gravatar.com", .object_count = 12, .total_kilobytes = 160, .origins = 3},
      // Remaining catalog: Alexa/Moz-style fillers across the diversity grid.
      {.name = "youtube.com", .object_count = 95, .total_kilobytes = 2400, .origins = 12},
      {.name = "facebook.com", .object_count = 60, .total_kilobytes = 1800, .origins = 9},
      {.name = "amazon.com", .object_count = 170, .total_kilobytes = 4100, .origins = 28},
      {.name = "twitter.com", .object_count = 55, .total_kilobytes = 1300, .origins = 10},
      {.name = "reddit.com", .object_count = 110, .total_kilobytes = 2900, .origins = 22},
      {.name = "ebay.com", .object_count = 140, .total_kilobytes = 3400, .origins = 26},
      {.name = "cnn.com", .object_count = 190, .total_kilobytes = 5600, .origins = 38},
      {.name = "bbc.com", .object_count = 105, .total_kilobytes = 2700, .origins = 18},
      {.name = "imdb.com", .object_count = 130, .total_kilobytes = 3200, .origins = 16},
      {.name = "stackoverflow.com", .object_count = 35, .total_kilobytes = 700, .origins = 6},
      {.name = "github.com", .object_count = 28, .total_kilobytes = 620, .origins = 3},
      {.name = "linkedin.com", .object_count = 70, .total_kilobytes = 1900, .origins = 14},
      {.name = "instagram.com", .object_count = 48, .total_kilobytes = 1500, .origins = 7},
      {.name = "pinterest.com", .object_count = 90, .total_kilobytes = 2600, .origins = 15},
      {.name = "apple.com", .object_count = 52, .total_kilobytes = 2100, .origins = 5},
      {.name = "microsoft.com", .object_count = 64, .total_kilobytes = 1700, .origins = 11},
      {.name = "yahoo.com", .object_count = 125, .total_kilobytes = 3800, .origins = 32},
      {.name = "weather.com", .object_count = 145, .total_kilobytes = 4000, .origins = 36},
      {.name = "booking.com", .object_count = 115, .total_kilobytes = 3000, .origins = 19},
      {.name = "imgur.com", .object_count = 75, .total_kilobytes = 5900, .origins = 8},
      {.name = "medium.com", .object_count = 40, .total_kilobytes = 900, .origins = 9},
      {.name = "paypal.com", .object_count = 26, .total_kilobytes = 480, .origins = 4},
      {.name = "dropbox.com", .object_count = 32, .total_kilobytes = 760, .origins = 5},
      {.name = "archive.org", .object_count = 14, .total_kilobytes = 130, .origins = 1},
  };
  return specs;
}

std::vector<Website> study_catalog(std::uint64_t seed) {
  std::vector<Website> catalog;
  const Rng master(seed);
  for (const auto& spec : study_site_specs()) {
    catalog.push_back(generate_site(spec, master.fork(spec.name)));
  }
  return catalog;
}

const std::vector<std::string>& lab_study_domains() {
  static const std::vector<std::string> domains = {"wikipedia.org", "gov.uk", "etsy.com",
                                                   "demorgen.be", "nytimes.com"};
  return domains;
}

}  // namespace qperc::web
