// Per-trial aggregate counters derived from a trace-event stream.
//
// Where a counter shadows a net::TransportStats field, the two are defined to
// agree exactly (tests assert it): the events are emitted at the same program
// points that bump the stats.
#pragma once

#include <cstdint>
#include <span>

#include "trace/trace.hpp"

namespace qperc::trace {

struct TrialCounters {
  // transport
  std::uint64_t handshakes_started = 0;
  std::uint64_t handshakes_completed = 0;
  std::uint64_t handshake_packets = 0;
  std::uint64_t handshake_retransmissions = 0;
  /// Duration of the earliest-completed handshake (the root connection).
  SimDuration first_handshake_duration{0};
  std::uint64_t packets_sent = 0;  // first transmissions + retransmissions
  std::uint64_t packets_received = 0;
  std::uint64_t acks_sent = 0;

  // recovery
  std::uint64_t retransmissions = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t timeouts = 0;     // full RTOs (TCP) / repeated PTOs (QUIC)
  std::uint64_t tail_probes = 0;  // TLPs (TCP) / PTO probes (QUIC)
  std::uint64_t congestion_events = 0;
  std::uint64_t spurious_losses = 0;
  std::uint64_t spurious_rtos = 0;  // spurious losses declared by an RTO

  // cwnd trajectory & bytes-in-flight samples (one per processed ACK)
  std::uint64_t cwnd_samples = 0;
  std::uint64_t max_cwnd_bytes = 0;
  std::uint64_t last_cwnd_bytes = 0;
  std::uint64_t max_bytes_in_flight = 0;
  std::uint64_t sum_bytes_in_flight = 0;

  /// Total time streams spent stalled on flow control (QUIC).
  SimDuration stream_blocked_time{0};

  // net
  std::uint64_t queue_drops = 0;
  std::uint64_t random_loss_drops = 0;
  std::uint64_t link_deliveries = 0;
  std::uint64_t burst_loss_drops = 0;  // Gilbert–Elliott correlated loss
  std::uint64_t outage_drops = 0;      // packets dropped during a link outage
  std::uint64_t link_duplicates = 0;   // extra copies delivered by duplication
  std::uint64_t link_reorders = 0;     // packets given extra reordering delay
  std::uint64_t policer_drops = 0;     // token-bucket policer exhausted

  // http / browser
  std::uint64_t requests_submitted = 0;
  std::uint64_t responses_completed = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t objects_completed = 0;

  /// Folds one event into the aggregates.
  void observe(const Event& event);

  /// Folds another counter set into this one (campaign-wide aggregation
  /// across trials). Counts and sums add, max_* fields take the maximum,
  /// and first_handshake_duration keeps the minimum non-zero value — all
  /// order-independent, so a merged total does not depend on task
  /// completion order. last_cwnd_bytes has no cross-trial meaning and
  /// keeps the larger value.
  void merge(const TrialCounters& other);

  [[nodiscard]] double mean_bytes_in_flight() const {
    return cwnd_samples == 0
               ? 0.0
               : static_cast<double>(sum_bytes_in_flight) / static_cast<double>(cwnd_samples);
  }
};

/// Aggregates a full event stream (e.g. MemorySink::events()).
[[nodiscard]] TrialCounters compute_counters(std::span<const Event> events);

}  // namespace qperc::trace
