#include "trace/memory_sink.hpp"

#include <algorithm>

namespace qperc::trace {

std::size_t MemorySink::count(EventType type) const {
  return static_cast<std::size_t>(std::count_if(
      events_.begin(), events_.end(), [type](const Event& e) { return e.type == type; }));
}

std::vector<Event> MemorySink::of_type(EventType type) const {
  std::vector<Event> out;
  for (const Event& event : events_) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

const Event* MemorySink::first(EventType type) const {
  for (const Event& event : events_) {
    if (event.type == type) return &event;
  }
  return nullptr;
}

}  // namespace qperc::trace
