// In-memory sink: stores every event for post-run queries. This is what
// tests use to assert mechanism-level facts about a trial.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace qperc::trace {

class MemorySink final : public TraceSink {
 public:
  void on_event(const Event& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t count(EventType type) const;
  /// Events of one type, in emission order.
  [[nodiscard]] std::vector<Event> of_type(EventType type) const;
  /// Earliest event of `type`, or nullptr when none was recorded.
  [[nodiscard]] const Event* first(EventType type) const;
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace qperc::trace
