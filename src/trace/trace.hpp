// Structured per-trial tracing, modeled on IETF qlog (draft-ietf-quic-qlog):
// every protocol layer reports its mechanism-level events (handshake steps,
// transmissions, loss detection, congestion reactions, HTTP exchanges,
// browser milestones, link-queue activity) to one TraceSink.
//
// The sink is attached to the sim::Simulator, so instrumentation hooks cost a
// single pointer test when tracing is off (the default); no trial code path
// allocates, formats, or branches further for an untraced run.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time.hpp"

namespace qperc::trace {

/// qlog-style event categories. Every EventType belongs to exactly one.
enum class Category : std::uint8_t { kTransport, kRecovery, kHttp, kBrowser, kNet };

/// Which endpoint of a connection produced the event (kNone for layers that
/// have no endpoint notion, e.g. links and the browser).
enum class Endpoint : std::uint8_t { kNone = 0, kClient, kServer };

/// Every event the testbed can emit. The `id` / `bytes` / `value` fields of
/// Event are event-specific; the full schema is documented in
/// EXPERIMENTS.md ("Tracing & debugging a trial").
enum class EventType : std::uint8_t {
  // transport
  kHandshakeStarted,        // id = configured handshake RTTs (0 = 0-RTT)
  kHandshakePacketSent,     // id = handshake step, bytes = wire bytes
  kHandshakeRetransmitted,  // value = backoff exponent
  kHandshakeCompleted,      // id = configured RTTs, value = duration (ns)
  kPacketSent,              // id = seq / packet number, bytes = payload
  kPacketReceived,          // id = seq / packet number, bytes = payload
  kAckSent,                 // id = cumulative ack / packet number
  kStreamBlocked,           // id = blocked stream id (flow-control stall begins)
  kStreamUnblocked,         // value = stalled duration (ns)
  // recovery
  kPacketLost,              // id = seq / packet number, value = 1 if via RTO
  kPacketRetransmitted,     // id = seq / packet number, bytes = payload
  kRtoFired,                // value = backoff exponent
  kTlpFired,                // tail-loss / PTO probe
  kCongestionEvent,         // bytes = bytes in flight at the reduction
  kSpuriousLoss,            // id = seq / pn, value = 1 if declared lost by RTO
  kMetricsUpdated,          // id = srtt (ns), bytes = in flight, value = cwnd
  // http
  kRequestSubmitted,        // id = object id, bytes = body, value = stream id
  kResponseStarted,         // id = object id, value = stream id
  kResponseComplete,        // id = object id, bytes = body bytes delivered
  // browser
  kConnectionOpened,        // id = origin
  kObjectRequested,         // id = object id, bytes = object size
  kObjectComplete,          // id = object id, value = objects completed so far
  kPageFinished,            // value = 1 if complete, 0 if the time cap hit
  // net (value = 0 uplink, 1 downlink)
  kLinkEnqueued,            // bytes = wire bytes
  kLinkDroppedQueueFull,
  kLinkDroppedRandomLoss,
  kLinkDelivered,
  kLinkDroppedBurstLoss,    // Gilbert–Elliott correlated loss
  kLinkDroppedOutage,       // link was down (outage/flap window)
  kLinkDuplicated,          // a second copy was scheduled for delivery
  kLinkReordered,           // id = extra delay applied (ns)
  kLinkDroppedPolicer,      // token-bucket policer exhausted
};

[[nodiscard]] Category category_of(EventType type) noexcept;
[[nodiscard]] std::string_view to_string(Category category) noexcept;
[[nodiscard]] std::string_view to_string(Endpoint endpoint) noexcept;
[[nodiscard]] std::string_view to_string(EventType type) noexcept;

/// One trace record. Interpretation of `id`/`bytes`/`value` depends on the
/// EventType (see the enum comments); unused fields are zero.
struct Event {
  SimTime time{0};
  EventType type{};
  Endpoint endpoint = Endpoint::kNone;
  std::uint64_t flow = 0;  // transport flow id (0 when not connection-bound)
  std::uint64_t id = 0;
  std::uint64_t bytes = 0;
  std::uint64_t value = 0;

  [[nodiscard]] Category category() const noexcept { return category_of(type); }
};

/// Receives every event of a traced run, in emission (= causal) order.
/// Implementations must not re-enter the simulator.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& event) = 0;
};

}  // namespace qperc::trace
