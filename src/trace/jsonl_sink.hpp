// JSON Lines sink: one self-contained JSON object per event, in emission
// order — the `qperc trial --trace out.jsonl` export format. Schema
// reference: EXPERIMENTS.md, "Tracing & debugging a trial".
#pragma once

#include <cstdint>
#include <ostream>

#include "trace/trace.hpp"

namespace qperc::trace {

class JsonlSink final : public TraceSink {
 public:
  /// The stream must outlive the sink; nothing is buffered beyond the
  /// stream's own buffering.
  explicit JsonlSink(std::ostream& os) : os_(os) {}

  void on_event(const Event& event) override;

  [[nodiscard]] std::uint64_t events_written() const noexcept { return events_written_; }

 private:
  std::ostream& os_;
  std::uint64_t events_written_ = 0;
};

}  // namespace qperc::trace
