#include "trace/trace.hpp"

namespace qperc::trace {

Category category_of(EventType type) noexcept {
  switch (type) {
    case EventType::kHandshakeStarted:
    case EventType::kHandshakePacketSent:
    case EventType::kHandshakeRetransmitted:
    case EventType::kHandshakeCompleted:
    case EventType::kPacketSent:
    case EventType::kPacketReceived:
    case EventType::kAckSent:
    case EventType::kStreamBlocked:
    case EventType::kStreamUnblocked:
      return Category::kTransport;
    case EventType::kPacketLost:
    case EventType::kPacketRetransmitted:
    case EventType::kRtoFired:
    case EventType::kTlpFired:
    case EventType::kCongestionEvent:
    case EventType::kSpuriousLoss:
    case EventType::kMetricsUpdated:
      return Category::kRecovery;
    case EventType::kRequestSubmitted:
    case EventType::kResponseStarted:
    case EventType::kResponseComplete:
      return Category::kHttp;
    case EventType::kConnectionOpened:
    case EventType::kObjectRequested:
    case EventType::kObjectComplete:
    case EventType::kPageFinished:
      return Category::kBrowser;
    case EventType::kLinkEnqueued:
    case EventType::kLinkDroppedQueueFull:
    case EventType::kLinkDroppedRandomLoss:
    case EventType::kLinkDelivered:
    case EventType::kLinkDroppedBurstLoss:
    case EventType::kLinkDroppedOutage:
    case EventType::kLinkDuplicated:
    case EventType::kLinkReordered:
    case EventType::kLinkDroppedPolicer:
      return Category::kNet;
  }
  return Category::kTransport;  // unreachable with valid input
}

std::string_view to_string(Category category) noexcept {
  switch (category) {
    case Category::kTransport: return "transport";
    case Category::kRecovery: return "recovery";
    case Category::kHttp: return "http";
    case Category::kBrowser: return "browser";
    case Category::kNet: return "net";
  }
  return "?";
}

std::string_view to_string(Endpoint endpoint) noexcept {
  switch (endpoint) {
    case Endpoint::kNone: return "none";
    case Endpoint::kClient: return "client";
    case Endpoint::kServer: return "server";
  }
  return "?";
}

std::string_view to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kHandshakeStarted: return "handshake_started";
    case EventType::kHandshakePacketSent: return "handshake_packet_sent";
    case EventType::kHandshakeRetransmitted: return "handshake_retransmitted";
    case EventType::kHandshakeCompleted: return "handshake_completed";
    case EventType::kPacketSent: return "packet_sent";
    case EventType::kPacketReceived: return "packet_received";
    case EventType::kAckSent: return "ack_sent";
    case EventType::kStreamBlocked: return "stream_blocked";
    case EventType::kStreamUnblocked: return "stream_unblocked";
    case EventType::kPacketLost: return "packet_lost";
    case EventType::kPacketRetransmitted: return "packet_retransmitted";
    case EventType::kRtoFired: return "rto_fired";
    case EventType::kTlpFired: return "tlp_fired";
    case EventType::kCongestionEvent: return "congestion_event";
    case EventType::kSpuriousLoss: return "spurious_loss";
    case EventType::kMetricsUpdated: return "metrics_updated";
    case EventType::kRequestSubmitted: return "request_submitted";
    case EventType::kResponseStarted: return "response_started";
    case EventType::kResponseComplete: return "response_complete";
    case EventType::kConnectionOpened: return "connection_opened";
    case EventType::kObjectRequested: return "object_requested";
    case EventType::kObjectComplete: return "object_complete";
    case EventType::kPageFinished: return "page_finished";
    case EventType::kLinkEnqueued: return "link_enqueued";
    case EventType::kLinkDroppedQueueFull: return "link_dropped_queue_full";
    case EventType::kLinkDroppedRandomLoss: return "link_dropped_random_loss";
    case EventType::kLinkDelivered: return "link_delivered";
    case EventType::kLinkDroppedBurstLoss: return "link_dropped_burst_loss";
    case EventType::kLinkDroppedOutage: return "link_dropped_outage";
    case EventType::kLinkDuplicated: return "link_duplicated";
    case EventType::kLinkReordered: return "link_reordered";
    case EventType::kLinkDroppedPolicer: return "link_dropped_policer";
  }
  return "?";
}

}  // namespace qperc::trace
