#include "trace/counters.hpp"

#include <algorithm>

namespace qperc::trace {

void TrialCounters::observe(const Event& event) {
  switch (event.type) {
    case EventType::kHandshakeStarted:
      ++handshakes_started;
      break;
    case EventType::kHandshakePacketSent:
      ++handshake_packets;
      break;
    case EventType::kHandshakeRetransmitted:
      ++handshake_retransmissions;
      break;
    case EventType::kHandshakeCompleted:
      if (handshakes_completed == 0) {
        first_handshake_duration = SimDuration{static_cast<std::int64_t>(event.value)};
      }
      ++handshakes_completed;
      break;
    case EventType::kPacketSent:
      ++packets_sent;
      break;
    case EventType::kPacketReceived:
      ++packets_received;
      break;
    case EventType::kAckSent:
      ++acks_sent;
      break;
    case EventType::kStreamBlocked:
      break;
    case EventType::kStreamUnblocked:
      stream_blocked_time += SimDuration{static_cast<std::int64_t>(event.value)};
      break;
    case EventType::kPacketLost:
      ++packets_lost;
      break;
    case EventType::kPacketRetransmitted:
      ++packets_sent;  // a retransmission is also a transmission
      ++retransmissions;
      break;
    case EventType::kRtoFired:
      ++timeouts;
      break;
    case EventType::kTlpFired:
      ++tail_probes;
      break;
    case EventType::kCongestionEvent:
      ++congestion_events;
      break;
    case EventType::kSpuriousLoss:
      ++spurious_losses;
      if (event.value != 0) ++spurious_rtos;
      break;
    case EventType::kMetricsUpdated:
      ++cwnd_samples;
      last_cwnd_bytes = event.value;
      max_cwnd_bytes = std::max(max_cwnd_bytes, event.value);
      max_bytes_in_flight = std::max(max_bytes_in_flight, event.bytes);
      sum_bytes_in_flight += event.bytes;
      break;
    case EventType::kRequestSubmitted:
      ++requests_submitted;
      break;
    case EventType::kResponseStarted:
      break;
    case EventType::kResponseComplete:
      ++responses_completed;
      break;
    case EventType::kConnectionOpened:
      ++connections_opened;
      break;
    case EventType::kObjectRequested:
      break;
    case EventType::kObjectComplete:
      ++objects_completed;
      break;
    case EventType::kPageFinished:
      break;
    case EventType::kLinkEnqueued:
      break;
    case EventType::kLinkDroppedQueueFull:
      ++queue_drops;
      break;
    case EventType::kLinkDroppedRandomLoss:
      ++random_loss_drops;
      break;
    case EventType::kLinkDelivered:
      ++link_deliveries;
      break;
  }
}

TrialCounters compute_counters(std::span<const Event> events) {
  TrialCounters counters;
  for (const Event& event : events) counters.observe(event);
  return counters;
}

}  // namespace qperc::trace
