#include "trace/counters.hpp"

#include <algorithm>

namespace qperc::trace {

void TrialCounters::observe(const Event& event) {
  switch (event.type) {
    case EventType::kHandshakeStarted:
      ++handshakes_started;
      break;
    case EventType::kHandshakePacketSent:
      ++handshake_packets;
      break;
    case EventType::kHandshakeRetransmitted:
      ++handshake_retransmissions;
      break;
    case EventType::kHandshakeCompleted:
      if (handshakes_completed == 0) {
        first_handshake_duration = SimDuration{static_cast<std::int64_t>(event.value)};
      }
      ++handshakes_completed;
      break;
    case EventType::kPacketSent:
      ++packets_sent;
      break;
    case EventType::kPacketReceived:
      ++packets_received;
      break;
    case EventType::kAckSent:
      ++acks_sent;
      break;
    case EventType::kStreamBlocked:
      break;
    case EventType::kStreamUnblocked:
      stream_blocked_time += SimDuration{static_cast<std::int64_t>(event.value)};
      break;
    case EventType::kPacketLost:
      ++packets_lost;
      break;
    case EventType::kPacketRetransmitted:
      ++packets_sent;  // a retransmission is also a transmission
      ++retransmissions;
      break;
    case EventType::kRtoFired:
      ++timeouts;
      break;
    case EventType::kTlpFired:
      ++tail_probes;
      break;
    case EventType::kCongestionEvent:
      ++congestion_events;
      break;
    case EventType::kSpuriousLoss:
      ++spurious_losses;
      if (event.value != 0) ++spurious_rtos;
      break;
    case EventType::kMetricsUpdated:
      ++cwnd_samples;
      last_cwnd_bytes = event.value;
      max_cwnd_bytes = std::max(max_cwnd_bytes, event.value);
      max_bytes_in_flight = std::max(max_bytes_in_flight, event.bytes);
      sum_bytes_in_flight += event.bytes;
      break;
    case EventType::kRequestSubmitted:
      ++requests_submitted;
      break;
    case EventType::kResponseStarted:
      break;
    case EventType::kResponseComplete:
      ++responses_completed;
      break;
    case EventType::kConnectionOpened:
      ++connections_opened;
      break;
    case EventType::kObjectRequested:
      break;
    case EventType::kObjectComplete:
      ++objects_completed;
      break;
    case EventType::kPageFinished:
      break;
    case EventType::kLinkEnqueued:
      break;
    case EventType::kLinkDroppedQueueFull:
      ++queue_drops;
      break;
    case EventType::kLinkDroppedRandomLoss:
      ++random_loss_drops;
      break;
    case EventType::kLinkDelivered:
      ++link_deliveries;
      break;
    case EventType::kLinkDroppedBurstLoss:
      ++burst_loss_drops;
      break;
    case EventType::kLinkDroppedOutage:
      ++outage_drops;
      break;
    case EventType::kLinkDuplicated:
      ++link_duplicates;
      break;
    case EventType::kLinkReordered:
      ++link_reorders;
      break;
    case EventType::kLinkDroppedPolicer:
      ++policer_drops;
      break;
  }
}

void TrialCounters::merge(const TrialCounters& other) {
  handshakes_started += other.handshakes_started;
  handshakes_completed += other.handshakes_completed;
  handshake_packets += other.handshake_packets;
  handshake_retransmissions += other.handshake_retransmissions;
  if (other.first_handshake_duration.count() != 0 &&
      (first_handshake_duration.count() == 0 ||
       other.first_handshake_duration < first_handshake_duration)) {
    first_handshake_duration = other.first_handshake_duration;
  }
  packets_sent += other.packets_sent;
  packets_received += other.packets_received;
  acks_sent += other.acks_sent;
  retransmissions += other.retransmissions;
  packets_lost += other.packets_lost;
  timeouts += other.timeouts;
  tail_probes += other.tail_probes;
  congestion_events += other.congestion_events;
  spurious_losses += other.spurious_losses;
  spurious_rtos += other.spurious_rtos;
  cwnd_samples += other.cwnd_samples;
  max_cwnd_bytes = std::max(max_cwnd_bytes, other.max_cwnd_bytes);
  last_cwnd_bytes = std::max(last_cwnd_bytes, other.last_cwnd_bytes);
  max_bytes_in_flight = std::max(max_bytes_in_flight, other.max_bytes_in_flight);
  sum_bytes_in_flight += other.sum_bytes_in_flight;
  stream_blocked_time += other.stream_blocked_time;
  queue_drops += other.queue_drops;
  random_loss_drops += other.random_loss_drops;
  link_deliveries += other.link_deliveries;
  burst_loss_drops += other.burst_loss_drops;
  outage_drops += other.outage_drops;
  link_duplicates += other.link_duplicates;
  link_reorders += other.link_reorders;
  policer_drops += other.policer_drops;
  requests_submitted += other.requests_submitted;
  responses_completed += other.responses_completed;
  connections_opened += other.connections_opened;
  objects_completed += other.objects_completed;
}

TrialCounters compute_counters(std::span<const Event> events) {
  TrialCounters counters;
  for (const Event& event : events) counters.observe(event);
  return counters;
}

}  // namespace qperc::trace
