#include "trace/jsonl_sink.hpp"

namespace qperc::trace {

void JsonlSink::on_event(const Event& event) {
  // All values are enum names or unsigned integers, so no JSON escaping is
  // ever required; keys are emitted in a fixed order.
  os_ << "{\"time_ns\":" << event.time.count()                    //
      << ",\"category\":\"" << to_string(event.category()) << '"'  //
      << ",\"event\":\"" << to_string(event.type) << '"'           //
      << ",\"endpoint\":\"" << to_string(event.endpoint) << '"'    //
      << ",\"flow\":" << event.flow                                //
      << ",\"id\":" << event.id                                    //
      << ",\"bytes\":" << event.bytes                              //
      << ",\"value\":" << event.value << "}\n";
  ++events_written_;
}

}  // namespace qperc::trace
