// Statistical toolkit used by the study evaluation.
//
// Implements exactly what the paper's analysis needs: descriptive statistics,
// Student-t confidence intervals (99% in Figures 3 and 5), one-way ANOVA with
// exact F-distribution p-values (significance testing in Section 4.4),
// Pearson's correlation (Figure 6), Spearman's rank correlation (mentioned as
// the alternative the authors rejected), and a Jarque–Bera normality check
// (the paper reports the Internet group's votes are not normally distributed).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qperc::stats {

// ---- Descriptive ----------------------------------------------------------

[[nodiscard]] double mean(std::span<const double> xs);
/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
[[nodiscard]] double sample_variance(std::span<const double> xs);
[[nodiscard]] double sample_stddev(std::span<const double> xs);
/// Median (average of middle two for even n). Copies and sorts internally.
[[nodiscard]] double median(std::span<const double> xs);
/// Linear-interpolation quantile, q in [0,1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);
/// Sample skewness (g1) and excess kurtosis (g2); both 0 for n < 3.
[[nodiscard]] double skewness(std::span<const double> xs);
[[nodiscard]] double excess_kurtosis(std::span<const double> xs);

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over per-flow allocations:
/// 1 when all flows get equal shares, 1/n when one flow takes everything.
/// Degenerate inputs (empty, or every x == 0) return 1.0 — "nothing to share"
/// is read as fair. Negative allocations are invalid and clamped to 0.
[[nodiscard]] double jain_fairness_index(std::span<const double> xs);

// ---- Special functions ----------------------------------------------------

/// Regularized incomplete beta function I_x(a, b).
[[nodiscard]] double regularized_incomplete_beta(double a, double b, double x);

// ---- Distributions --------------------------------------------------------

/// CDF of Student's t with `df` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double df);
/// Two-sided critical value: P(|T| <= value) == level. level in (0,1).
[[nodiscard]] double student_t_two_sided_critical(double level, double df);
/// CDF of the F distribution with (df1, df2) degrees of freedom.
[[nodiscard]] double f_cdf(double f, double df1, double df2);
/// Chi-squared survival function with 2 degrees of freedom (closed form).
[[nodiscard]] double chi2_sf_df2(double x);

// ---- Inference ------------------------------------------------------------

/// A two-sided confidence interval around a sample mean.
struct ConfidenceInterval {
  double center = 0.0;
  double half_width = 0.0;
  [[nodiscard]] double lower() const { return center - half_width; }
  [[nodiscard]] double upper() const { return center + half_width; }
  /// True when the two intervals share any value (the paper's informal
  /// "confidence intervals mostly overlap" reading of Figure 5).
  [[nodiscard]] bool overlaps(const ConfidenceInterval& other) const;
};

/// Student-t CI for the mean at the given confidence level (e.g. 0.99).
[[nodiscard]] ConfidenceInterval mean_confidence_interval(std::span<const double> xs,
                                                          double level);

struct AnovaResult {
  double f_statistic = 0.0;
  double df_between = 0.0;
  double df_within = 0.0;
  double p_value = 1.0;
  [[nodiscard]] bool significant_at(double alpha) const { return p_value < alpha; }
};

/// One-way ANOVA over k groups. Groups with fewer than 1 observation are
/// ignored; fewer than 2 usable groups yields p = 1.
[[nodiscard]] AnovaResult one_way_anova(std::span<const std::vector<double>> groups);

/// Pearson's product-moment correlation coefficient; 0 if degenerate.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);
/// Spearman's rank correlation (average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

struct NormalityResult {
  double jb_statistic = 0.0;
  double p_value = 1.0;
  /// Conventional reading at alpha = 0.05.
  [[nodiscard]] bool looks_normal() const { return p_value >= 0.05; }
};

/// Jarque–Bera test of normality.
[[nodiscard]] NormalityResult jarque_bera(std::span<const double> xs);

}  // namespace qperc::stats
