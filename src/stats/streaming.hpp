// Online (streaming) statistics for population-scale studies.
//
// The batch toolkit in stats.hpp materializes every observation; these
// accumulators fold an unbounded stream into O(1) state so 10M-rater studies
// never hold a per-participant vector. Two accumulator flavours, with an
// explicit contract each:
//
//   * Welford — the classic single-pass mean/variance recurrence with Chan's
//     parallel merge. Numerically stable and exactly matches the batch
//     formulas in exact arithmetic, but in floating point the merge is only
//     associative up to rounding: merging A+(B+C) and (A+B)+C can differ in
//     the last bits. Use it wherever tolerance-level agreement suffices.
//   * ExactMoments — quantizes each observation to a 2^-20 fixed-point grid
//     once at push() time and then accumulates pure integer sums (count,
//     sum, sum of squares in 128 bits). Integer addition is associative and
//     commutative, so merges are bit-identical under ANY grouping or order —
//     the property the population study engine needs for byte-identical
//     exports across job counts and shard layouts (the same reason
//     trace::TrialCounters::merge is integer sums). The price is a bounded,
//     deterministic quantization of ~5e-7 per observation.
//
// Inference helpers (confidence intervals, Welch's two-sample t, Wilson
// proportion intervals, minimum detectable effect) take plain moments, so
// both accumulators (and the batch functions) feed the same code paths.
#pragma once

#include <cstdint>

#include "stats/stats.hpp"

namespace qperc::stats {

// ---- Welford / Chan ---------------------------------------------------------

/// Single-pass mean/variance accumulator (Welford's recurrence) with Chan's
/// parallel merge. O(1) state; see the header comment for the merge contract.
class Welford {
 public:
  void push(double x);
  /// Folds another accumulator in (Chan's parallel update). Associative and
  /// commutative up to floating-point rounding.
  void merge(const Welford& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2, matching
  /// stats::sample_variance.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double sample_stddev() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// ---- Exact fixed-point moments ---------------------------------------------

/// Streaming count/mean/variance over observations quantized to a 2^-20
/// fixed-point grid. All state is integer, so merge() is bit-exact under any
/// grouping or order. Supported domain: |x| <= ~4e3 per observation (votes,
/// confidences, seconds all fit with huge margin) and up to ~2^36
/// observations before the 64-bit linear sum could overflow.
class ExactMoments {
 public:
  /// Fixed-point scale: observations are rounded to multiples of 1/kScale.
  static constexpr double kScale = 1048576.0;  // 2^20

  void push(double x);
  void merge(const ExactMoments& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance of the quantized stream; 0 for n < 2.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double sample_stddev() const;

  /// Raw integer state, for serialization (checkpoint files) and tests.
  [[nodiscard]] std::int64_t sum_q() const { return sum_q_; }
  [[nodiscard]] std::uint64_t sumsq_hi() const { return sumsq_hi_; }
  [[nodiscard]] std::uint64_t sumsq_lo() const { return sumsq_lo_; }
  /// Rebuilds an accumulator from serialized state.
  static ExactMoments restore(std::uint64_t n, std::int64_t sum_q, std::uint64_t sumsq_hi,
                              std::uint64_t sumsq_lo);

 private:
  std::uint64_t n_ = 0;
  std::int64_t sum_q_ = 0;
  // 128-bit sum of squared quantized observations, as two 64-bit words
  // (portable — no __int128, which -Wpedantic rejects).
  std::uint64_t sumsq_hi_ = 0;
  std::uint64_t sumsq_lo_ = 0;
};

// ---- Streaming Jain's fairness index ---------------------------------------

/// Folds per-flow allocations into the three sums Jain's index needs
/// (n, sum x, sum x^2). merge() is plain addition, so shard-local
/// accumulators combine in any grouping or order and index() matches the
/// batch stats::jain_fairness_index on the same data up to floating-point
/// associativity of the sums (bit-exact when merged in stream order).
class JainAccumulator {
 public:
  void push(double x);
  void merge(const JainAccumulator& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  /// Same degenerate-input convention as stats::jain_fairness_index:
  /// empty or all-zero streams are "nothing to share" and index 1.
  [[nodiscard]] double index() const;

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
};

// ---- Inference from streamed moments ---------------------------------------

/// Student-t confidence interval for a mean given streamed moments; matches
/// stats::mean_confidence_interval on the same data (half-width 0 for n < 2).
[[nodiscard]] ConfidenceInterval moments_confidence_interval(double mean,
                                                             double sample_variance,
                                                             std::uint64_t n, double level);
[[nodiscard]] ConfidenceInterval mean_confidence_interval(const Welford& w, double level);
[[nodiscard]] ConfidenceInterval mean_confidence_interval(const ExactMoments& m,
                                                          double level);

/// Welch's two-sample t test computed from streamed moments only.
struct TwoSampleResult {
  double difference = 0.0;      ///< mean_a - mean_b
  double standard_error = 0.0;  ///< sqrt(var_a/n_a + var_b/n_b)
  double t_statistic = 0.0;
  double df = 0.0;  ///< Welch–Satterthwaite degrees of freedom
  double p_value = 1.0;
  [[nodiscard]] bool significant_at(double alpha) const { return p_value < alpha; }
};

[[nodiscard]] TwoSampleResult welch_t_test(double mean_a, double var_a, std::uint64_t n_a,
                                           double mean_b, double var_b, std::uint64_t n_b);
[[nodiscard]] TwoSampleResult welch_t_test(const Welford& a, const Welford& b);
[[nodiscard]] TwoSampleResult welch_t_test(const ExactMoments& a, const ExactMoments& b);

/// Two-proportion z test (pooled standard error) from streaming counts —
/// the A/B study's "does the prefer-QUIC share differ" question.
[[nodiscard]] TwoSampleResult two_proportion_z_test(std::uint64_t successes_a,
                                                    std::uint64_t n_a,
                                                    std::uint64_t successes_b,
                                                    std::uint64_t n_b);

/// Wilson score interval for a binomial proportion — usable directly from
/// streaming counts, and better behaved than the Wald interval at the
/// extreme shares crowdsourced A/B cells produce.
[[nodiscard]] ConfidenceInterval wilson_interval(std::uint64_t successes, std::uint64_t n,
                                                 double level);

/// Smallest true mean difference a two-sided level-`alpha` test reaches the
/// given `power` against, for per-group sizes (n_a, n_b) with the given
/// variances: (z_{1-alpha/2} + z_{power}) * sqrt(var_a/n_a + var_b/n_b).
/// This is the study-design question the paper's n≈35 could not answer:
/// how small an effect could millions of raters still resolve?
[[nodiscard]] double min_detectable_effect(double var_a, std::uint64_t n_a, double var_b,
                                           std::uint64_t n_b, double alpha, double power);

/// Inverse CDF of the standard normal (Acklam's rational approximation,
/// |relative error| < 1.2e-9). p in (0,1); clamps at the boundaries.
[[nodiscard]] double normal_quantile(double p);

}  // namespace qperc::stats
