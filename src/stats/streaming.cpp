#include "stats/streaming.hpp"

#include <algorithm>
#include <cmath>

namespace qperc::stats {
namespace {

/// 64x64 -> 128-bit unsigned multiply via 32-bit limbs (portable; avoids the
/// non-ISO __int128 extension).
void mul_u64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi, std::uint64_t& lo) {
  const std::uint64_t a_lo = a & 0xffffffffULL;
  const std::uint64_t a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffULL;
  const std::uint64_t b_hi = b >> 32;
  const std::uint64_t p0 = a_lo * b_lo;
  const std::uint64_t p1 = a_lo * b_hi;
  const std::uint64_t p2 = a_hi * b_lo;
  const std::uint64_t p3 = a_hi * b_hi;
  const std::uint64_t mid = (p0 >> 32) + (p1 & 0xffffffffULL) + (p2 & 0xffffffffULL);
  lo = (p0 & 0xffffffffULL) | (mid << 32);
  hi = p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
}

/// 128-bit add: (hi, lo) += (add_hi, add_lo).
void add_u128(std::uint64_t& hi, std::uint64_t& lo, std::uint64_t add_hi,
              std::uint64_t add_lo) {
  lo += add_lo;
  hi += add_hi + (lo < add_lo ? 1 : 0);
}

/// Exact double value of a 128-bit unsigned integer (deterministic: a single
/// rounding of the true value, identical on every conforming platform).
double u128_to_double(std::uint64_t hi, std::uint64_t lo) {
  return std::ldexp(static_cast<double>(hi), 64) + static_cast<double>(lo);
}

}  // namespace

// ---- Welford ----------------------------------------------------------------

void Welford::push(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double n_total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n_total;
  mean_ += delta * static_cast<double>(other.n_) / n_total;
  n_ += other.n_;
}

double Welford::sample_variance() const {
  if (n_ < 2) return 0.0;
  return std::max(0.0, m2_ / static_cast<double>(n_ - 1));
}

double Welford::sample_stddev() const { return std::sqrt(sample_variance()); }

// ---- ExactMoments -----------------------------------------------------------

void ExactMoments::push(double x) {
  const std::int64_t q = std::llround(x * kScale);
  ++n_;
  sum_q_ += q;
  const std::uint64_t mag = static_cast<std::uint64_t>(q < 0 ? -q : q);
  std::uint64_t sq_hi = 0;
  std::uint64_t sq_lo = 0;
  mul_u64(mag, mag, sq_hi, sq_lo);
  add_u128(sumsq_hi_, sumsq_lo_, sq_hi, sq_lo);
}

void ExactMoments::merge(const ExactMoments& other) {
  n_ += other.n_;
  sum_q_ += other.sum_q_;
  add_u128(sumsq_hi_, sumsq_lo_, other.sumsq_hi_, other.sumsq_lo_);
}

double ExactMoments::mean() const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(sum_q_) / kScale / static_cast<double>(n_);
}

double ExactMoments::sample_variance() const {
  if (n_ < 2) return 0.0;
  // Exact integer numerator: n * sum(q^2) - sum(q)^2 >= 0 (Cauchy–Schwarz),
  // evaluated in doubles only at the end. The subtraction of two large
  // doubles is the usual E[x^2] - E[x]^2 cancellation; with votes on a
  // 10..70 scale the relative error stays far below reporting precision,
  // and — crucially — the computation is a pure function of the integer
  // state, so it is bit-identical however that state was merged together.
  const double n = static_cast<double>(n_);
  const double sum = static_cast<double>(sum_q_);
  const double sumsq = u128_to_double(sumsq_hi_, sumsq_lo_);
  const double numerator = n * sumsq - sum * sum;
  const double variance = numerator / (n * (n - 1.0)) / (kScale * kScale);
  return std::max(0.0, variance);
}

double ExactMoments::sample_stddev() const { return std::sqrt(sample_variance()); }

ExactMoments ExactMoments::restore(std::uint64_t n, std::int64_t sum_q,
                                   std::uint64_t sumsq_hi, std::uint64_t sumsq_lo) {
  ExactMoments m;
  m.n_ = n;
  m.sum_q_ = sum_q;
  m.sumsq_hi_ = sumsq_hi;
  m.sumsq_lo_ = sumsq_lo;
  return m;
}

// ---- Inference --------------------------------------------------------------

ConfidenceInterval moments_confidence_interval(double mean, double sample_variance,
                                               std::uint64_t n, double level) {
  if (n < 2) return ConfidenceInterval{mean, 0.0};
  const double crit = student_t_two_sided_critical(level, static_cast<double>(n - 1));
  const double sem = std::sqrt(sample_variance / static_cast<double>(n));
  return ConfidenceInterval{mean, crit * sem};
}

ConfidenceInterval mean_confidence_interval(const Welford& w, double level) {
  return moments_confidence_interval(w.mean(), w.sample_variance(), w.count(), level);
}

ConfidenceInterval mean_confidence_interval(const ExactMoments& m, double level) {
  return moments_confidence_interval(m.mean(), m.sample_variance(), m.count(), level);
}

void JainAccumulator::push(double x) {
  if (x < 0.0) x = 0.0;  // same clamp as the batch helper
  ++n_;
  sum_ += x;
  sumsq_ += x * x;
}

void JainAccumulator::merge(const JainAccumulator& other) {
  n_ += other.n_;
  sum_ += other.sum_;
  sumsq_ += other.sumsq_;
}

double JainAccumulator::index() const {
  if (n_ == 0 || sumsq_ == 0.0) return 1.0;
  return sum_ * sum_ / (static_cast<double>(n_) * sumsq_);
}

TwoSampleResult welch_t_test(double mean_a, double var_a, std::uint64_t n_a, double mean_b,
                             double var_b, std::uint64_t n_b) {
  TwoSampleResult result;
  result.difference = mean_a - mean_b;
  if (n_a < 2 || n_b < 2) return result;
  const double na = static_cast<double>(n_a);
  const double nb = static_cast<double>(n_b);
  const double se_a = var_a / na;
  const double se_b = var_b / nb;
  const double se2 = se_a + se_b;
  if (se2 <= 0.0) {
    // Zero variance in both groups: any nonzero difference is infinitely
    // significant; report p = 0 / 1 without dividing by zero.
    result.p_value = result.difference == 0.0 ? 1.0 : 0.0;
    result.df = na + nb - 2.0;
    return result;
  }
  result.standard_error = std::sqrt(se2);
  result.t_statistic = result.difference / result.standard_error;
  // Welch–Satterthwaite. Guard the denominator for single-observation terms
  // (n >= 2 is enforced above, so na - 1, nb - 1 >= 1).
  result.df = se2 * se2 / (se_a * se_a / (na - 1.0) + se_b * se_b / (nb - 1.0));
  result.p_value = 2.0 * (1.0 - student_t_cdf(std::fabs(result.t_statistic), result.df));
  result.p_value = std::clamp(result.p_value, 0.0, 1.0);
  return result;
}

TwoSampleResult welch_t_test(const Welford& a, const Welford& b) {
  return welch_t_test(a.mean(), a.sample_variance(), a.count(), b.mean(),
                      b.sample_variance(), b.count());
}

TwoSampleResult welch_t_test(const ExactMoments& a, const ExactMoments& b) {
  return welch_t_test(a.mean(), a.sample_variance(), a.count(), b.mean(),
                      b.sample_variance(), b.count());
}

TwoSampleResult two_proportion_z_test(std::uint64_t successes_a, std::uint64_t n_a,
                                      std::uint64_t successes_b, std::uint64_t n_b) {
  TwoSampleResult result;
  if (n_a == 0 || n_b == 0) return result;
  const double na = static_cast<double>(n_a);
  const double nb = static_cast<double>(n_b);
  const double pa = static_cast<double>(successes_a) / na;
  const double pb = static_cast<double>(successes_b) / nb;
  result.difference = pa - pb;
  const double pooled =
      static_cast<double>(successes_a + successes_b) / (na + nb);
  const double se2 = pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb);
  result.df = na + nb;  // the normal limit; reported for symmetry
  if (se2 <= 0.0) {
    result.p_value = result.difference == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.standard_error = std::sqrt(se2);
  result.t_statistic = result.difference / result.standard_error;
  // Normal tail via the complementary error function.
  result.p_value = std::erfc(std::fabs(result.t_statistic) / std::sqrt(2.0));
  result.p_value = std::clamp(result.p_value, 0.0, 1.0);
  return result;
}

ConfidenceInterval wilson_interval(std::uint64_t successes, std::uint64_t n, double level) {
  if (n == 0) return ConfidenceInterval{0.0, 0.0};
  const double z = normal_quantile(0.5 + level / 2.0);
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  return ConfidenceInterval{center, half};
}

double min_detectable_effect(double var_a, std::uint64_t n_a, double var_b,
                             std::uint64_t n_b, double alpha, double power) {
  if (n_a == 0 || n_b == 0) return 0.0;
  const double z_alpha = normal_quantile(1.0 - alpha / 2.0);
  const double z_power = normal_quantile(power);
  const double se = std::sqrt(var_a / static_cast<double>(n_a) +
                              var_b / static_cast<double>(n_b));
  return (z_alpha + z_power) * se;
}

double normal_quantile(double p) {
  // Peter Acklam's rational approximation with the standard region split.
  constexpr double kLowBreak = 0.02425;
  p = std::clamp(p, 1e-300, 1.0 - 1e-16);
  constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                          -2.759285104469687e+02, 1.383577518672690e+02,
                          -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                          -1.556989798598866e+02, 6.680131188771972e+01,
                          -1.328068155288572e+01};
  constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                          -2.400758277161838e+00, -2.549732539343734e+00,
                          4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                          2.445134137142996e+00, 3.754408661907416e+00};
  if (p < kLowBreak) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - kLowBreak) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace qperc::stats
