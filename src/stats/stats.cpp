#include "stats/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace qperc::stats {
namespace {

/// Continued-fraction evaluation for the incomplete beta function
/// (Numerical-Recipes-style modified Lentz algorithm).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const auto md = static_cast<double>(m);
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (const double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(n - 1);
}

double sample_stddev(std::span<const double> xs) { return std::sqrt(sample_variance(xs)); }

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double skewness(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 3) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0;
  double m3 = 0.0;
  for (const double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double excess_kurtosis(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 3) return 0.0;
  const double m = mean(xs);
  double m2 = 0.0;
  double m4 = 0.0;
  for (const double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m4 / (m2 * m2) - 3.0;
}

double regularized_incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly when it converges fastest.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_two_sided_critical(double level, double df) {
  // Solve P(|T| <= c) == level by bisection; CDF is monotone in c.
  const double target = 0.5 + level / 2.0;
  double lo = 0.0;
  double hi = 1.0;
  while (student_t_cdf(hi, df) < target && hi < 1e8) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (student_t_cdf(mid, df) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double f_cdf(double f, double df1, double df2) {
  if (f <= 0.0) return 0.0;
  const double x = df1 * f / (df1 * f + df2);
  return regularized_incomplete_beta(df1 / 2.0, df2 / 2.0, x);
}

double chi2_sf_df2(double x) { return x <= 0.0 ? 1.0 : std::exp(-x / 2.0); }

bool ConfidenceInterval::overlaps(const ConfidenceInterval& other) const {
  return lower() <= other.upper() && other.lower() <= upper();
}

ConfidenceInterval mean_confidence_interval(std::span<const double> xs, double level) {
  const std::size_t n = xs.size();
  if (n < 2) return ConfidenceInterval{mean(xs), 0.0};
  const double crit = student_t_two_sided_critical(level, static_cast<double>(n - 1));
  const double sem = sample_stddev(xs) / std::sqrt(static_cast<double>(n));
  return ConfidenceInterval{mean(xs), crit * sem};
}

AnovaResult one_way_anova(std::span<const std::vector<double>> groups) {
  std::vector<const std::vector<double>*> usable;
  for (const auto& g : groups) {
    if (!g.empty()) usable.push_back(&g);
  }
  AnovaResult result;
  if (usable.size() < 2) return result;

  std::size_t total_n = 0;
  double grand_sum = 0.0;
  for (const auto* g : usable) {
    total_n += g->size();
    grand_sum = std::accumulate(g->begin(), g->end(), grand_sum);
  }
  const double grand_mean = grand_sum / static_cast<double>(total_n);

  double ss_between = 0.0;
  double ss_within = 0.0;
  for (const auto* g : usable) {
    const double gm = mean(*g);
    ss_between += static_cast<double>(g->size()) * (gm - grand_mean) * (gm - grand_mean);
    for (const double x : *g) ss_within += (x - gm) * (x - gm);
  }

  result.df_between = static_cast<double>(usable.size() - 1);
  result.df_within = static_cast<double>(total_n) - static_cast<double>(usable.size());
  if (result.df_within <= 0.0) return result;
  const double ms_between = ss_between / result.df_between;
  const double ms_within = ss_within / result.df_within;
  if (ms_within <= 0.0) {
    result.f_statistic = ss_between > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
    result.p_value = ss_between > 0.0 ? 0.0 : 1.0;
    return result;
  }
  result.f_statistic = ms_between / ms_within;
  result.p_value = 1.0 - f_cdf(result.f_statistic, result.df_between, result.df_within);
  return result;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const double mx = mean(x.first(n));
  const double my = mean(y.first(n));
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  const auto rx = average_ranks(x.first(n));
  const auto ry = average_ranks(y.first(n));
  return pearson(rx, ry);
}

double jain_fairness_index(std::span<const double> xs) {
  double sum = 0.0;
  double sumsq = 0.0;
  for (double x : xs) {
    if (x < 0.0) x = 0.0;
    sum += x;
    sumsq += x * x;
  }
  if (xs.empty() || sumsq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sumsq);
}

NormalityResult jarque_bera(std::span<const double> xs) {
  NormalityResult result;
  const std::size_t n = xs.size();
  if (n < 8) return result;
  const double s = skewness(xs);
  const double k = excess_kurtosis(xs);
  result.jb_statistic = static_cast<double>(n) / 6.0 * (s * s + k * k / 4.0);
  result.p_value = chi2_sf_df2(result.jb_statistic);
  return result;
}

}  // namespace qperc::stats
