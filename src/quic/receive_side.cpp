#include "quic/receive_side.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace qperc::quic {
namespace {

constexpr SimDuration kAckDelay = milliseconds(25);

}  // namespace

QuicReceiveSide::QuicReceiveSide(
    sim::Simulator& simulator, const QuicConfig& config, SmallFunction<void()> request_ack,
    SmallFunction<void(std::uint64_t, std::uint64_t, bool)> on_stream_progress)
    : simulator_(simulator),
      config_(config),
      request_ack_(std::move(request_ack)),
      on_stream_progress_(std::move(on_stream_progress)),
      received_(ArenaAllocator<std::pair<const std::uint64_t, std::uint64_t>>(
          simulator.arena())),
      delayed_ack_timer_(simulator, [this] { request_ack_(); }),
      streams_(simulator.arena()),
      connection_advertised_(config.connection_flow_window_bytes) {}

std::uint64_t QuicReceiveSide::stream_delivered(std::uint64_t stream_id) const {
  const auto it = streams_.find(stream_id);
  return it == streams_.end() ? 0 : it->second.contiguous;
}

void QuicReceiveSide::on_packet(const QuicPacket& packet) {
  const std::uint64_t pn = packet.packet_number;

  // Record the packet number in the received-range set.
  bool duplicate = false;
  auto it = received_.upper_bound(pn);
  if (it != received_.begin()) {
    auto prev = std::prev(it);
    if (pn <= prev->second) duplicate = true;
  }
  const bool out_of_order = pn < largest_received_;
  if (simulator_.trace() != nullptr) {
    std::uint64_t payload = 0;
    for (const auto& frame : packet.frames) payload += frame.length;
    simulator_.trace_event(trace::EventType::kPacketReceived, trace_endpoint_, trace_flow_,
                           pn, payload, duplicate ? 1 : 0);
  }
  if (!duplicate) {
    // Merge pn into ranges: extend neighbours where adjacent.
    auto next = received_.lower_bound(pn);
    const bool joins_next = next != received_.end() && next->first == pn + 1;
    auto prev = next == received_.begin() ? received_.end() : std::prev(next);
    const bool joins_prev = prev != received_.end() && prev->second + 1 == pn;
    if (joins_prev && joins_next) {
      prev->second = next->second;
      received_.erase(next);
    } else if (joins_prev) {
      prev->second = pn;
    } else if (joins_next) {
      const std::uint64_t end = next->second;
      received_.erase(next);
      received_[pn] = end;
    } else {
      received_[pn] = pn;
    }
    largest_received_ = std::max(largest_received_, pn);
    // The merge must leave ranges sorted, disjoint, and non-adjacent around
    // the insertion point (adjacent ranges should have coalesced).
    const auto cur = --received_.upper_bound(pn);
    QPERC_DCHECK_LE(cur->first, cur->second);
    if (cur != received_.begin()) {
      QPERC_DCHECK_GT(cur->first, std::prev(cur)->second + 1)
          << "received packet ranges failed to coalesce";
    }
    if (const auto after = std::next(cur); after != received_.end()) {
      QPERC_DCHECK_GT(after->first, cur->second + 1)
          << "received packet ranges failed to coalesce";
    }
  }

  if (!duplicate) {
    for (const auto& frame : packet.frames) on_stream_frame(frame);
  }

  if (packet.ack_eliciting) {
    ++ack_eliciting_since_ack_;
    const bool immediate = out_of_order || !pending_window_updates_.empty() ||
                           ack_eliciting_since_ack_ >= 2 || duplicate;
    if (immediate) {
      request_ack_();
    } else if (!delayed_ack_timer_.is_armed()) {
      delayed_ack_timer_.set_in(kAckDelay);
    }
  }
}

void QuicReceiveSide::on_stream_frame(const StreamFrame& frame) {
  auto& stream = streams_.try_emplace(frame.stream_id, simulator_.arena()).first->second;
  if (stream.advertised_limit == 0) {
    stream.advertised_limit = config_.stream_flow_window_bytes;
  }
  if (frame.fin) {
    stream.fin_offset = frame.offset + frame.length;
  }

  const std::uint64_t start = frame.offset;
  const std::uint64_t end = frame.offset + frame.length;
  const std::uint64_t before = stream.contiguous;

  if (end > stream.contiguous || (frame.fin && frame.length == 0)) {
    if (start <= stream.contiguous) {
      stream.contiguous = std::max(stream.contiguous, end);
      auto it = stream.out_of_order.begin();
      while (it != stream.out_of_order.end() && it->first <= stream.contiguous) {
        stream.contiguous = std::max(stream.contiguous, it->second);
        it = stream.out_of_order.erase(it);
      }
    } else if (end > start) {
      // Merge into the out-of-order set.
      std::uint64_t new_start = start;
      std::uint64_t new_end = end;
      auto it = stream.out_of_order.lower_bound(start);
      if (it != stream.out_of_order.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= start) {
          new_start = prev->first;
          new_end = std::max(new_end, prev->second);
          stream.out_of_order.erase(prev);
        }
      }
      it = stream.out_of_order.lower_bound(new_start);
      while (it != stream.out_of_order.end() && it->first <= new_end) {
        new_end = std::max(new_end, it->second);
        it = stream.out_of_order.erase(it);
      }
      stream.out_of_order[new_start] = new_end;
    }
  }

  QPERC_DCHECK_GE(stream.contiguous, before) << "stream reassembly moved backwards";
  QPERC_DCHECK(stream.out_of_order.empty() ||
               stream.out_of_order.begin()->first > stream.contiguous)
      << "out-of-order stream data at or below the contiguous mark";
  const std::uint64_t progress = stream.contiguous - before;
  connection_consumed_ += progress;
  maybe_update_windows(frame.stream_id, stream);

  const bool fin_complete = stream.contiguous == stream.fin_offset;
  if ((progress > 0 || (fin_complete && !stream.fin_signaled)) && on_stream_progress_) {
    if (fin_complete) stream.fin_signaled = true;
    on_stream_progress_(frame.stream_id, stream.contiguous, fin_complete);
  }
}

void QuicReceiveSide::maybe_update_windows(std::uint64_t stream_id, RecvStream& stream) {
  // The application consumes delivered bytes instantly; grant more credit
  // once half the window is used (gQUIC's session/stream flow controllers).
  QPERC_DCHECK_LE(stream.contiguous, stream.advertised_limit)
      << "peer wrote past the advertised stream flow-control limit";
  QPERC_DCHECK_LE(connection_consumed_, connection_advertised_)
      << "peer wrote past the advertised connection flow-control limit";
  if (stream.advertised_limit - stream.contiguous <
      config_.stream_flow_window_bytes / 2) {
    // Credit grants only ever move the limit forward.
    const std::uint64_t prior = stream.advertised_limit;
    stream.advertised_limit = stream.contiguous + config_.stream_flow_window_bytes;
    QPERC_DCHECK_GE(stream.advertised_limit, prior)
        << "stream flow-control limit moved backwards";
    pending_window_updates_.push_back(simulator_.arena(),
                                      WindowUpdate{stream_id, stream.advertised_limit});
  }
  if (connection_advertised_ - connection_consumed_ <
      config_.connection_flow_window_bytes / 2) {
    const std::uint64_t prior = connection_advertised_;
    connection_advertised_ =
        connection_consumed_ + config_.connection_flow_window_bytes;
    QPERC_DCHECK_GE(connection_advertised_, prior)
        << "connection flow-control limit moved backwards";
    pending_window_updates_.push_back(simulator_.arena(),
                                      WindowUpdate{0, connection_advertised_});
  }
}

void QuicReceiveSide::fill_ack(QuicPacket& packet) {
  if (received_.empty() && pending_window_updates_.empty()) return;
  packet.has_ack = !received_.empty();
  packet.ack_ranges.clear();
  // Newest ranges first, capped at the configured range budget. The emitted
  // frame must be sorted (descending) and non-overlapping — the sender-side
  // loss detector indexes unacked packets by these ranges.
  for (auto it = received_.rbegin();
       it != received_.rend() && packet.ack_ranges.size() < config_.max_ack_ranges; ++it) {
    QPERC_DCHECK_LE(it->first, it->second);
    QPERC_DCHECK(packet.ack_ranges.empty() ||
                 it->second < packet.ack_ranges.back().first)
        << "emitted ACK ranges overlap";
    packet.ack_ranges.emplace_back(simulator_.arena(), it->first, it->second);
  }
  for (const WindowUpdate& update : pending_window_updates_) {
    packet.window_updates.push_back(simulator_.arena(), update);
  }
  pending_window_updates_.clear();
  ack_eliciting_since_ack_ = 0;
  delayed_ack_timer_.cancel();
}

}  // namespace qperc::quic
