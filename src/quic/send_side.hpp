// The sending half of one direction of a gQUIC connection.
//
// Key behavioural differences from the TCP sender that the paper leans on:
//  * packet-number space with no retransmission ambiguity,
//  * frames from independent streams share packets (no transport-level
//    head-of-line blocking between objects),
//  * loss detection from ACK ranges covering up to 256 ranges,
//  * probe timeouts instead of dup-ack machinery.
// Congestion control and pacing reuse the same cc:: modules as TCP,
// which is precisely the "similarly parameterized" setup of Table 1.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <utility>

#include "cc/bandwidth_sampler.hpp"
#include "cc/congestion_controller.hpp"
#include "cc/pacer.hpp"
#include "cc/rtt_estimator.hpp"
#include "net/transport_stats.hpp"
#include "quic/config.hpp"
#include "quic/packet.hpp"
#include "sim/simulator.hpp"
#include "util/flat_map.hpp"

namespace qperc::quic {

class QuicSendSide {
 public:
  /// Emits a data packet; the connection piggybacks ACK state and routes it.
  /// SmallFunction, not std::function: the capture is a connection pointer,
  /// and the packet-emit path runs hundreds of times per trial.
  using EmitFn = SmallFunction<void(QuicPacket)>;

  QuicSendSide(sim::Simulator& simulator, const QuicConfig& config, EmitFn emit);
  QuicSendSide(const QuicSendSide&) = delete;
  QuicSendSide& operator=(const QuicSendSide&) = delete;

  void on_established(SimDuration handshake_rtt);

  /// Appends bytes to a stream (creating it as needed). Lower `priority`
  /// values are served first; streams of equal priority share round-robin.
  void write_stream(std::uint64_t stream_id, std::uint64_t bytes, bool fin,
                    std::uint8_t priority);

  /// Processes an ACK frame (ranges of received packet numbers).
  void on_ack_frame(const QuicPacket& packet);
  /// Processes MAX_DATA / MAX_STREAM_DATA credit from the peer.
  void on_window_updates(const QuicPacket& packet);

  /// Allocates a packet number for a pure control/ACK packet (not congestion
  /// controlled, not retransmittable).
  [[nodiscard]] QuicPacket make_control_packet();

  [[nodiscard]] const net::TransportStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const cc::RttEstimator& rtt() const noexcept { return rtt_; }
  [[nodiscard]] const cc::CongestionController& controller() const { return *cc_; }
  [[nodiscard]] std::uint64_t bytes_in_flight() const noexcept { return bytes_in_flight_; }

  /// Identifies this side in trace events (set by the owning connection).
  void set_trace_context(std::uint64_t flow, trace::Endpoint endpoint) noexcept {
    trace_flow_ = flow;
    trace_endpoint_ = endpoint;
  }

 private:
  struct SendStream {
    std::uint8_t priority = 1;
    std::uint64_t write_bytes = 0;   // total bytes the application wrote
    std::uint64_t next_offset = 0;   // first-transmission progress
    bool fin = false;
    bool fin_packetized = false;
    std::uint64_t peer_limit = 0;    // MAX_STREAM_DATA (set by the constructor)
    explicit SendStream(std::uint64_t limit) : peer_limit(limit) {}
  };

  struct UnackedPacket {
    SimTime sent_time{0};
    std::uint32_t payload_bytes = 0;  // counted against the window
    std::uint64_t stream_bytes = 0;
    /// View of the transmitted packet's frame list. The storage is arena-
    /// owned (immutable, trial lifetime), so the view stays valid across
    /// map erases and outlives the wire packet itself.
    const StreamFrame* frames = nullptr;
    std::uint32_t frame_count = 0;
  };

  /// A stream the scheduling scan could pick: unsent data, or an unsent FIN.
  /// Must match build_frames' has_data/has_fin tests exactly — the
  /// pending_streams_ counter gates the whole scan.
  [[nodiscard]] static bool stream_pending(const SendStream& stream) noexcept {
    return stream.next_offset < stream.write_bytes ||
           (stream.fin && !stream.fin_packetized);
  }

  void maybe_send();
  /// Assembles the next data packet; empty frames vector == nothing to send.
  [[nodiscard]] ArenaVec<StreamFrame> build_frames(std::uint32_t budget,
                                                   bool& is_retransmission);
  void transmit(ArenaVec<StreamFrame> frames, bool is_retransmission);
  void detect_losses(SimTime now);
  void requeue_lost(UnackedPacket& packet);
  void enter_recovery_if_needed(std::uint64_t lost_pn);
  void rearm_timer();
  void on_timer();
  [[nodiscard]] SimDuration probe_timeout() const;

  sim::Simulator& simulator_;
  QuicConfig config_;
  EmitFn emit_;

  std::unique_ptr<cc::CongestionController> cc_;
  /// Cached cc_->uses_delivery_rate(): selects the sampler ack entry point
  /// without a virtual call per acked packet.
  bool cc_wants_rate_ = false;
  cc::Pacer pacer_;
  cc::RttEstimator rtt_;
  cc::BandwidthSampler sampler_;
  net::TransportStats stats_;

  bool established_ = false;
  // Hot-path containers draw their storage from the trial arena and lay the
  // entries out flat in key order: identical iteration order to std::map,
  // zero heap traffic, and no rb-tree pointer chasing per entry (see
  // docs/PERFORMANCE.md and util/flat_map.hpp).
  FlatMap<std::uint64_t, SendStream> streams_;
  /// Streams with unsent data or an un-packetized FIN. Maintained at the two
  /// mutation sites (write_stream, build_frames' serve step) so build_frames
  /// can skip its scheduling scan when there is provably nothing to send —
  /// the common steady state between ACKs.
  std::size_t pending_streams_ = 0;
  std::uint64_t last_served_stream_ = 0;
  std::deque<StreamFrame, ArenaAllocator<StreamFrame>> retransmit_queue_;

  std::uint64_t next_packet_number_ = 1;
  std::uint64_t largest_acked_ = 0;
  FlatMap<std::uint64_t, UnackedPacket> unacked_;
  std::uint64_t bytes_in_flight_ = 0;

  std::uint64_t peer_connection_limit_ = 0;  // set by the constructor
  std::uint64_t connection_bytes_sent_ = 0;

  std::uint64_t recovery_end_pn_ = 0;
  std::uint64_t round_end_pn_ = 0;

  sim::Timer loss_or_pto_timer_;
  bool timer_is_loss_ = false;
  SimTime loss_deadline_{0};
  std::uint32_t pto_backoff_ = 0;

  /// Bytes declared lost since the congestion controller last consumed an
  /// AckSample (feeds BBR's long-term bandwidth estimator).
  std::uint64_t bytes_lost_since_ack_ = 0;
  /// Packet numbers the PTO path declared lost. An ACK range later covering
  /// one proves the probe timeout spurious (the original packet arrived, the
  /// link was merely slow): reset the backoff and undo the controller's
  /// timeout reaction instead of escalating into a retransmission storm.
  /// Always-on (unlike traced_lost_pns_) because it changes behaviour.
  std::set<std::uint64_t, std::less<std::uint64_t>, ArenaAllocator<std::uint64_t>>
      pto_lost_pns_;

  sim::Timer send_timer_;

  // Trace-only state (touched exclusively when a sink is attached, so
  // untraced runs are bit-identical).
  std::uint64_t trace_flow_ = 0;
  trace::Endpoint trace_endpoint_ = trace::Endpoint::kNone;
  std::set<std::uint64_t, std::less<std::uint64_t>, ArenaAllocator<std::uint64_t>>
      traced_lost_pns_;  // declared lost; ack later = spurious
  bool fc_blocked_ = false;                  // inside a flow-control stall
  SimTime fc_blocked_since_{0};
};

}  // namespace qperc::quic
