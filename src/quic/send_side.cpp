#include "quic/send_side.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace qperc::quic {
namespace {

/// QUIC loss detection (packet threshold / time threshold, RFC 9002 values
/// that gQUIC also used).
constexpr std::uint64_t kPacketReorderThreshold = 3;
constexpr SimDuration kMaxAckDelay = milliseconds(25);

}  // namespace

QuicSendSide::QuicSendSide(sim::Simulator& simulator, const QuicConfig& config, EmitFn emit)
    : simulator_(simulator),
      config_(config),
      emit_(std::move(emit)),
      cc_(cc::make_congestion_controller(config.congestion_control,
                                         config.initial_window_segments,
                                         config.max_payload_bytes, config.bbr_lt_bw)),
      pacer_(cc::PacerConfig{.enabled = config.pacing,
                             .initial_quantum_segments = 10,
                             .refill_quantum_segments = 2,
                             .segment_bytes = config.max_payload_bytes}),
      sampler_(simulator.arena()),
      streams_(simulator.arena()),
      retransmit_queue_(ArenaAllocator<StreamFrame>(simulator.arena())),
      unacked_(simulator.arena()),
      peer_connection_limit_(config.connection_flow_window_bytes),
      loss_or_pto_timer_(simulator, [this] { on_timer(); }),
      pto_lost_pns_(ArenaAllocator<std::uint64_t>(simulator.arena())),
      send_timer_(simulator, [this] { maybe_send(); }),
      traced_lost_pns_(ArenaAllocator<std::uint64_t>(simulator.arena())) {
  cc_wants_rate_ = cc_->uses_delivery_rate();
}

void QuicSendSide::on_established(SimDuration handshake_rtt) {
  QPERC_DCHECK(!established_) << "QUIC send side established twice";
  established_ = true;
  if (handshake_rtt > SimDuration::zero()) rtt_.on_rtt_sample(handshake_rtt);
  pacer_.set_rate(simulator_.now(), cc_->pacing_rate(rtt_.smoothed_rtt()));
  maybe_send();
}

void QuicSendSide::write_stream(std::uint64_t stream_id, std::uint64_t bytes, bool fin,
                                std::uint8_t priority) {
  auto [it, inserted] =
      streams_.try_emplace(stream_id, SendStream{config_.stream_flow_window_bytes});
  SendStream& stream = it->second;
  const bool was_pending = stream_pending(stream);  // fresh streams start idle
  stream.priority = priority;
  stream.write_bytes += bytes;
  if (fin) stream.fin = true;
  if (!was_pending && stream_pending(stream)) ++pending_streams_;
  if (bytes_in_flight_ == 0) pacer_.on_restart_from_idle(simulator_.now());
  maybe_send();
}

QuicPacket QuicSendSide::make_control_packet() {
  QuicPacket packet;
  packet.packet_number = next_packet_number_++;
  packet.ack_eliciting = false;
  ++stats_.acks_sent;
  simulator_.trace_event(trace::EventType::kAckSent, trace_endpoint_, trace_flow_,
                         packet.packet_number);
  return packet;
}

ArenaVec<StreamFrame> QuicSendSide::build_frames(std::uint32_t budget,
                                                 bool& is_retransmission) {
  ArenaVec<StreamFrame> frames;
  is_retransmission = false;
  // Nothing queued and no stream with unsent data or FIN: skip the scan.
  // With a trace sink attached the scan still runs so the flow-control
  // stall bookkeeping below sees every transition.
  if (retransmit_queue_.empty() && pending_streams_ == 0 &&
      simulator_.trace() == nullptr) {
#if QPERC_INVARIANTS_ENABLED
    for (const auto& [id, stream] : streams_) {
      QPERC_DCHECK(!stream_pending(stream)) << "pending_streams_ undercounts";
    }
#endif
    return frames;
  }
  bool fc_blocked_seen = false;
  std::uint64_t fc_blocked_stream = 0;

  // Retransmissions take precedence: they unblock the peer's reassembly.
  while (!retransmit_queue_.empty() && budget > kStreamFrameOverhead) {
    StreamFrame& pending = retransmit_queue_.front();
    const std::uint32_t take =
        std::min(pending.length, budget - kStreamFrameOverhead);
    if (take == 0 && !(pending.length == 0 && pending.fin)) break;
    StreamFrame frame = pending;
    frame.length = take;
    if (take < pending.length) {
      frame.fin = false;
      pending.offset += take;
      pending.length -= take;
    } else {
      retransmit_queue_.pop_front();
    }
    budget -= std::min(budget, take + kStreamFrameOverhead);
    frames.push_back(simulator_.arena(), frame);
    is_retransmission = true;
  }

  // New data: strict priority, round-robin within a priority level.
  while (budget > kStreamFrameOverhead) {
    SendStream* best = nullptr;
    std::uint64_t best_id = 0;
    // Two passes give round-robin: prefer ids after the last served one.
    for (int pass = 0; pass < 2 && best == nullptr; ++pass) {
      for (auto& [id, stream] : streams_) {
        if (pass == 0 && id <= last_served_stream_) continue;
        const bool has_data = stream.next_offset < stream.write_bytes;
        const bool has_fin = stream.fin && !stream.fin_packetized &&
                             stream.next_offset == stream.write_bytes;
        if (!has_data && !has_fin) continue;
        if (has_data && (stream.next_offset >= stream.peer_limit ||
                         connection_bytes_sent_ >= peer_connection_limit_)) {
          if (!fc_blocked_seen) {
            fc_blocked_seen = true;
            fc_blocked_stream = id;
          }
          continue;
        }
        if (best == nullptr || stream.priority < best->priority) {
          best = &stream;
          best_id = id;
        }
      }
    }
    if (best == nullptr) break;
    last_served_stream_ = best_id;

    QPERC_DCHECK_LE(best->next_offset, best->write_bytes);
    QPERC_DCHECK_LT(best->next_offset, best->peer_limit)
        << "serving a stream past its flow-control limit";
    QPERC_DCHECK_LT(connection_bytes_sent_, peer_connection_limit_)
        << "serving past the connection flow-control limit";
    const std::uint64_t cap = std::min(
        {static_cast<std::uint64_t>(budget - kStreamFrameOverhead),
         best->write_bytes - best->next_offset, best->peer_limit - best->next_offset,
         peer_connection_limit_ - connection_bytes_sent_});
    StreamFrame frame;
    frame.stream_id = best_id;
    frame.offset = best->next_offset;
    frame.length = static_cast<std::uint32_t>(cap);
    best->next_offset += cap;
    connection_bytes_sent_ += cap;
    if (best->fin && best->next_offset == best->write_bytes) {
      frame.fin = true;
      best->fin_packetized = true;
    }
    if (!stream_pending(*best)) {
      // The scan only picks pending streams, so serving one dry is the only
      // way the count drops.
      QPERC_DCHECK_GT(pending_streams_, 0u);
      --pending_streams_;
    }
    budget -= frame.length + kStreamFrameOverhead;
    frames.push_back(simulator_.arena(), frame);
  }

  // Flow-control stall accounting (trace-only: skipped entirely without a
  // sink so untraced runs never touch the members).
  if (simulator_.trace() != nullptr) {
    if (fc_blocked_seen && !fc_blocked_) {
      fc_blocked_ = true;
      fc_blocked_since_ = simulator_.now();
      simulator_.trace_event(trace::EventType::kStreamBlocked, trace_endpoint_, trace_flow_,
                             fc_blocked_stream);
    } else if (!fc_blocked_seen && fc_blocked_) {
      fc_blocked_ = false;
      simulator_.trace_event(
          trace::EventType::kStreamUnblocked, trace_endpoint_, trace_flow_, /*id=*/0,
          /*bytes=*/0,
          static_cast<std::uint64_t>((simulator_.now() - fc_blocked_since_).count()));
    }
  }
  return frames;
}

void QuicSendSide::maybe_send() {
  if (!established_) return;
  while (true) {
    QPERC_DCHECK_GE(cc_->congestion_window(), config_.max_payload_bytes)
        << "congestion window collapsed below one packet";
    if (bytes_in_flight_ >= cc_->congestion_window()) return;

    // Pacing gate, using a full-sized packet as the release unit.
    const std::uint32_t wire_estimate =
        config_.max_payload_bytes + kQuicOverheadBytes + kUdpIpOverheadBytes;
    const SimTime release = pacer_.next_send_time(simulator_.now(), wire_estimate);
    if (release > simulator_.now()) {
      send_timer_.set_at(release);
      return;
    }

    bool is_retransmission = false;
    auto frames = build_frames(config_.max_payload_bytes, is_retransmission);
    if (frames.empty()) {
      sampler_.on_app_limited();
      return;
    }
    transmit(std::move(frames), is_retransmission);
  }
}

void QuicSendSide::transmit(ArenaVec<StreamFrame> frames, bool is_retransmission) {
  const SimTime now = simulator_.now();
  std::uint32_t payload = 0;
  std::uint64_t stream_bytes = 0;
  for (const auto& frame : frames) {
    payload += frame.length + kStreamFrameOverhead;
    stream_bytes += frame.length;
  }

  const std::uint64_t pn = next_packet_number_++;
  // Packet numbers are never reused and strictly grow within the space —
  // the property that removes TCP's retransmission ambiguity.
  QPERC_DCHECK(unacked_.empty() || pn > unacked_.back_key())
      << "packet number space not monotone";
  QPERC_DCHECK_GT(pn, largest_acked_);
  sampler_.on_packet_sent(pn, stream_bytes, now, bytes_in_flight_);
  cc_->on_packet_sent(now, bytes_in_flight_, payload);
  pacer_.on_packet_sent(now, payload + kQuicOverheadBytes + kUdpIpOverheadBytes);
  bytes_in_flight_ += payload;

  ++stats_.data_packets_sent;
  stats_.bytes_sent += stream_bytes;
  if (is_retransmission) ++stats_.retransmissions;
  if (simulator_.trace() != nullptr) {
    simulator_.trace_event(is_retransmission ? trace::EventType::kPacketRetransmitted
                                             : trace::EventType::kPacketSent,
                           trace_endpoint_, trace_flow_, pn, payload,
                           frames.size());
  }

  QuicPacket packet;
  packet.packet_number = pn;
  packet.ack_eliciting = true;
  // The retransmission record views the same arena-owned frame buffer the
  // wire packet carries; no copy, and the view survives the packet.
  unacked_[pn] = UnackedPacket{now, payload, stream_bytes, frames.data(), frames.size()};
  packet.frames = std::move(frames);

  emit_(std::move(packet));
  rearm_timer();
}

void QuicSendSide::on_ack_frame(const QuicPacket& packet) {
  if (!packet.has_ack || !established_) return;
  // Always-on: acknowledging a packet number we never allocated means the
  // packet-number space is corrupt and all delivery accounting is garbage.
  QPERC_CHECK(packet.ack_ranges.empty() ||
              packet.ack_ranges.front().second < next_packet_number_)
      << "peer acknowledged a packet number that was never sent";
  const SimTime now = simulator_.now();

  std::uint64_t newly_acked = 0;
  SimDuration rtt_sample{0};
  cc::RateSample best_rate{};
  bool have_rate = false;

  std::uint64_t prev_range_first = 0;
  bool first_range = true;
  bool spurious_pto = false;
  for (const auto& [first, last] : packet.ack_ranges) {
    // Ranges arrive newest-first: each [first, last] must be well-formed and
    // sit strictly below the previous range (sorted, non-overlapping).
    QPERC_DCHECK_LE(first, last) << "inverted ACK range";
    QPERC_DCHECK(first_range || last < prev_range_first)
        << "ACK ranges out of order or overlapping";
    prev_range_first = first;
    first_range = false;
    if (!pto_lost_pns_.empty()) {
      // An acked packet the PTO path declared lost: the probe timeout was
      // spurious (monotone packet numbers make this unambiguous — the range
      // can only name the original transmission).
      auto pto_it = pto_lost_pns_.lower_bound(first);
      while (pto_it != pto_lost_pns_.end() && *pto_it <= last) {
        spurious_pto = true;
        pto_it = pto_lost_pns_.erase(pto_it);
      }
    }
    if (simulator_.trace() != nullptr && !traced_lost_pns_.empty()) {
      // A packet we declared lost turns out to have been received.
      auto lost_it = traced_lost_pns_.lower_bound(first);
      while (lost_it != traced_lost_pns_.end() && *lost_it <= last) {
        simulator_.trace_event(trace::EventType::kSpuriousLoss, trace_endpoint_, trace_flow_,
                               *lost_it);
        lost_it = traced_lost_pns_.erase(lost_it);
      }
    }
    auto it = unacked_.lower_bound(first);
    while (it != unacked_.end() && it->first <= last) {
      const std::uint64_t pn = it->first;
      UnackedPacket& up = it->second;
      newly_acked += up.stream_bytes;
      stats_.bytes_delivered += up.stream_bytes;
      QPERC_DCHECK_GE(bytes_in_flight_, up.payload_bytes);
      bytes_in_flight_ -= up.payload_bytes;
      if (pn > largest_acked_) {
        largest_acked_ = pn;
        // Clamp to one tick: a zero-delay profile can acknowledge in the
        // sending instant, and RttEstimator requires positive samples.
        rtt_sample = std::max(now - up.sent_time, SimDuration{1});
      }
      if (!cc_wants_rate_) {
        // Loss-based controller: same bookkeeping and same have_rate gate,
        // minus the rate arithmetic nobody reads.
        have_rate |= sampler_.on_packet_acked_no_sample(pn, now);
      } else if (const auto sample = sampler_.on_packet_acked(pn, now)) {
        if (!have_rate || sample->delivery_rate > best_rate.delivery_rate) {
          best_rate = *sample;
        }
        have_rate = true;
      }
      it = unacked_.erase(it);
    }
  }

  if (rtt_sample > SimDuration::zero()) rtt_.on_rtt_sample(rtt_sample);

  if (spurious_pto) {
    pto_backoff_ = 0;
    ++stats_.spurious_timeouts;
    cc_->on_spurious_retransmission_timeout();
  }

  detect_losses(now);

  bool round_ended = false;
  if (largest_acked_ >= round_end_pn_) {
    round_ended = true;
    round_end_pn_ = next_packet_number_;
  }
  if (newly_acked > 0 || have_rate) {
    cc::AckSample sample;
    sample.bytes_acked = newly_acked;
    sample.bytes_lost = bytes_lost_since_ack_;
    sample.rtt = rtt_sample;
    sample.smoothed_rtt = rtt_.smoothed_rtt();
    if (have_rate) {
      sample.delivery_rate = best_rate.delivery_rate;
      sample.is_app_limited = best_rate.is_app_limited;
    }
    sample.bytes_in_flight = bytes_in_flight_;
    sample.round_trip_ended = round_ended;
    cc_->on_ack(now, sample);
    bytes_lost_since_ack_ = 0;  // consumed; keep accumulating otherwise
    pto_backoff_ = 0;
  }
  pacer_.set_rate(simulator_.now(), cc_->pacing_rate(rtt_.smoothed_rtt()));

  if (simulator_.trace() != nullptr) {
    simulator_.trace_event(
        trace::EventType::kMetricsUpdated, trace_endpoint_, trace_flow_,
        static_cast<std::uint64_t>(rtt_.smoothed_rtt().count()), bytes_in_flight_,
        cc_->congestion_window());
  }

  rearm_timer();
  maybe_send();
}

void QuicSendSide::on_window_updates(const QuicPacket& packet) {
  for (const auto& update : packet.window_updates) {
    if (update.stream_id == 0) {
      peer_connection_limit_ = std::max(peer_connection_limit_, update.limit);
    } else if (const auto it = streams_.find(update.stream_id); it != streams_.end()) {
      it->second.peer_limit = std::max(it->second.peer_limit, update.limit);
    }
  }
  maybe_send();
}

void QuicSendSide::requeue_lost(UnackedPacket& packet) {
  for (std::uint32_t i = 0; i < packet.frame_count; ++i) {
    const StreamFrame& frame = packet.frames[i];
    if (frame.length == 0 && !frame.fin) continue;
    retransmit_queue_.push_back(frame);
  }
}

void QuicSendSide::enter_recovery_if_needed(std::uint64_t lost_pn) {
  if (lost_pn <= recovery_end_pn_) return;
  recovery_end_pn_ = next_packet_number_;
  ++stats_.congestion_events;
  if (simulator_.trace() != nullptr) {
    simulator_.trace_event(trace::EventType::kCongestionEvent, trace_endpoint_, trace_flow_,
                           lost_pn, bytes_in_flight_);
  }
  cc_->on_congestion_event(simulator_.now(), bytes_in_flight_);
  pacer_.set_rate(simulator_.now(), cc_->pacing_rate(rtt_.smoothed_rtt()));
}

void QuicSendSide::detect_losses(SimTime now) {
  if (largest_acked_ == 0) return;
  const SimDuration rtt_basis = rtt_.has_sample()
                                    ? std::max(rtt_.smoothed_rtt(), rtt_.latest_rtt())
                                    : SimDuration{milliseconds(100)};
  const SimDuration loss_delay = rtt_basis * 9 / 8;
  loss_deadline_ = kNoTime;

  std::uint64_t largest_lost = 0;
  auto it = unacked_.begin();
  while (it != unacked_.end() && it->first < largest_acked_) {
    const std::uint64_t pn = it->first;
    UnackedPacket& up = it->second;
    const bool threshold_lost = largest_acked_ - pn >= kPacketReorderThreshold;
    const bool time_lost = up.sent_time + loss_delay <= now;
    if (threshold_lost || time_lost) {
      QPERC_DCHECK_GE(bytes_in_flight_, up.payload_bytes);
      bytes_in_flight_ -= up.payload_bytes;
      sampler_.on_packet_lost(pn);
      bytes_lost_since_ack_ += up.stream_bytes;
      requeue_lost(up);
      largest_lost = pn;
      if (simulator_.trace() != nullptr) {
        traced_lost_pns_.insert(pn);
        simulator_.trace_event(trace::EventType::kPacketLost, trace_endpoint_, trace_flow_,
                               pn, up.payload_bytes, /*value=*/0);
      }
      it = unacked_.erase(it);
    } else {
      loss_deadline_ = std::min(loss_deadline_, up.sent_time + loss_delay);
      ++it;
    }
  }
  if (largest_lost != 0) enter_recovery_if_needed(largest_lost);
}

SimDuration QuicSendSide::probe_timeout() const {
  const SimDuration base = rtt_.has_sample()
                               ? rtt_.smoothed_rtt() +
                                     std::max<SimDuration>(4 * rtt_.rtt_var(),
                                                           milliseconds(1)) +
                                     kMaxAckDelay
                               : SimDuration{seconds(1)};
  return base * (1u << std::min(pto_backoff_, 6u));
}

void QuicSendSide::rearm_timer() {
  const bool has_retransmittable = !unacked_.empty() || !retransmit_queue_.empty();
  if (!has_retransmittable) {
    loss_or_pto_timer_.cancel();
    return;
  }
  if (loss_deadline_ != kNoTime && loss_deadline_ != SimTime{0}) {
    timer_is_loss_ = true;
    loss_or_pto_timer_.set_at(loss_deadline_);
    return;
  }
  timer_is_loss_ = false;
  loss_or_pto_timer_.set_in(probe_timeout());
}

void QuicSendSide::on_timer() {
  if (timer_is_loss_) {
    loss_deadline_ = kNoTime;
    detect_losses(simulator_.now());
    rearm_timer();
    maybe_send();
    return;
  }
  // Probe timeout: retransmit the oldest unacked packet's frames (bypassing
  // the congestion window) to elicit an ACK.
  ++pto_backoff_;
  ++stats_.tail_probes;
  simulator_.trace_event(trace::EventType::kTlpFired, trace_endpoint_, trace_flow_,
                         /*id=*/0, /*bytes=*/0, pto_backoff_);
  if (pto_backoff_ >= 2) {
    ++stats_.timeouts;
    simulator_.trace_event(trace::EventType::kRtoFired, trace_endpoint_, trace_flow_,
                           /*id=*/0, /*bytes=*/0, pto_backoff_);
  }
  if (!unacked_.empty()) {
    auto it = unacked_.begin();
    UnackedPacket up = std::move(it->second);
    QPERC_DCHECK_GE(bytes_in_flight_, up.payload_bytes);
    bytes_in_flight_ -= up.payload_bytes;
    sampler_.on_packet_lost(it->first);
    bytes_lost_since_ack_ += up.stream_bytes;
    pto_lost_pns_.insert(it->first);
    if (simulator_.trace() != nullptr) {
      traced_lost_pns_.insert(it->first);
      simulator_.trace_event(trace::EventType::kPacketLost, trace_endpoint_, trace_flow_,
                             it->first, up.payload_bytes, /*value=*/1);
    }
    unacked_.erase(it);
    requeue_lost(up);
    bool is_retx = false;
    auto frames = build_frames(config_.max_payload_bytes, is_retx);
    if (!frames.empty()) transmit(std::move(frames), true);
  } else if (!retransmit_queue_.empty()) {
    bool is_retx = false;
    auto frames = build_frames(config_.max_payload_bytes, is_retx);
    if (!frames.empty()) transmit(std::move(frames), true);
  }
  rearm_timer();
}

}  // namespace qperc::quic
