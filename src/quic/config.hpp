// gQUIC stack parameterization (the QUIC rows of Table 1).
#pragma once

#include <cstdint>

#include "cc/factory.hpp"

namespace qperc::quic {

struct QuicConfig {
  /// gQUIC default: initial congestion window of 32 segments (§1).
  std::uint32_t initial_window_segments = 32;
  cc::CcKind congestion_control = cc::CcKind::kCubic;
  /// gQUIC always paces.
  bool pacing = true;
  /// Fresh browser cache => 1-RTT handshake (inchoate CHLO -> REJ -> full
  /// CHLO + request). True enables the 0-RTT ablation (cached server config).
  bool zero_rtt = false;
  /// BBRv1 long-term (policer) bandwidth sampling, as in Linux tcp_bbr.
  bool bbr_lt_bw = true;

  /// Maximum stream payload per packet (gQUIC's default packet size).
  std::uint32_t max_payload_bytes = 1350;
  /// ACK frames can describe up to 256 ranges — the "large SACK ranges"
  /// §4.3 credits for QUIC's loss resilience.
  std::uint32_t max_ack_ranges = 256;

  /// Flow-control windows; sized generously (the tuned-buffer equivalent).
  std::uint64_t stream_flow_window_bytes = 1 * 1024 * 1024;
  std::uint64_t connection_flow_window_bytes = 1536 * 1024;
};

}  // namespace qperc::quic
