// A full gQUIC connection through the emulated network.
//
// Handshake model (fresh cache, §3): inchoate CHLO -> REJ (server config)
// -> full CHLO + encrypted request: one round trip before the request
// leaves, versus TCP+TLS's two. With `zero_rtt` (ablation), the request
// accompanies the CHLO.
#pragma once

#include <cstdint>

#include "net/emulated_network.hpp"
#include "net/transport_stats.hpp"
#include "quic/config.hpp"
#include "quic/receive_side.hpp"
#include "quic/send_side.hpp"
#include "sim/simulator.hpp"

namespace qperc::quic {

class QuicConnection {
 public:
  struct Callbacks {
    SmallFunction<void()> on_established;
    /// Server side: request-stream progress (stream, contiguous bytes, fin).
    SmallFunction<void(std::uint64_t, std::uint64_t, bool)> on_request_stream;
    /// Client side: response-stream progress.
    SmallFunction<void(std::uint64_t, std::uint64_t, bool)> on_response_stream;
  };

  QuicConnection(sim::Simulator& simulator, net::EmulatedNetwork& network,
                 net::ServerId server, const QuicConfig& config, Callbacks callbacks);
  ~QuicConnection();
  QuicConnection(const QuicConnection&) = delete;
  QuicConnection& operator=(const QuicConnection&) = delete;

  void connect();
  [[nodiscard]] bool established() const noexcept { return client_established_; }

  /// Client -> server stream write (requests). Streams may be written before
  /// establishment; data flows once the handshake completes.
  void client_write_stream(std::uint64_t stream_id, std::uint64_t bytes, bool fin,
                           std::uint8_t priority) {
    client_send_.write_stream(stream_id, bytes, fin, priority);
  }
  /// Server -> client stream write (responses).
  void server_write_stream(std::uint64_t stream_id, std::uint64_t bytes, bool fin,
                           std::uint8_t priority) {
    server_send_.write_stream(stream_id, bytes, fin, priority);
  }

  [[nodiscard]] const QuicSendSide& server_send_side() const { return server_send_; }
  [[nodiscard]] const QuicSendSide& client_send_side() const { return client_send_; }
  [[nodiscard]] net::TransportStats stats() const;
  [[nodiscard]] net::FlowId flow() const noexcept { return flow_; }

 private:
  void client_on_packet(const net::Packet& packet);
  void server_on_packet(const net::Packet& packet);
  void emit(bool from_client, QuicPacket packet);
  void send_handshake(bool from_client, QuicHandshakeStep step,
                      std::uint8_t have_mask = 0);
  void on_handshake_timeout();
  void establish_client();
  void establish_server();

  sim::Simulator& simulator_;
  net::EmulatedNetwork& network_;
  net::ServerId server_;
  QuicConfig config_;
  Callbacks callbacks_;
  net::FlowId flow_;

  // All four sides live inline: one allocation per connection keeps the
  // per-trial budget in docs/PERFORMANCE.md honest. Their callbacks capture
  // `this` only and fire well after construction completes.
  QuicSendSide client_send_;
  QuicSendSide server_send_;
  QuicReceiveSide client_receive_;
  QuicReceiveSide server_receive_;

  bool chlo_sent_ = false;
  bool client_established_ = false;
  bool server_established_ = false;
  SimTime chlo_sent_at_{0};
  SimTime rej_sent_at_{0};
  std::uint8_t rej_received_mask_ = 0;
  sim::Timer handshake_timer_;
  std::uint32_t hs_backoff_ = 0;
  net::TransportStats handshake_stats_;
};

}  // namespace qperc::quic
