#include "quic/connection.hpp"

#include <algorithm>
#include <utility>

namespace qperc::quic {
namespace {

/// gQUIC's crypto handshake retransmits more eagerly than TCP's 1 s SYN
/// timer (no RTT estimate exists yet for a fresh server).
constexpr SimDuration kInitialHandshakeTimeout = milliseconds(500);
constexpr std::uint8_t kRejFlightSize = 2;

}  // namespace

QuicConnection::QuicConnection(sim::Simulator& simulator, net::EmulatedNetwork& network,
                               net::ServerId server, const QuicConfig& config,
                               Callbacks callbacks)
    : simulator_(simulator),
      network_(network),
      server_(server),
      config_(config),
      callbacks_(std::move(callbacks)),
      flow_(network.allocate_flow_id()),
      client_send_(simulator_, config_, [this](QuicPacket p) { emit(true, std::move(p)); }),
      server_send_(simulator_, config_, [this](QuicPacket p) { emit(false, std::move(p)); }),
      client_receive_(
          simulator_, config_, [this] { emit(true, client_send_.make_control_packet()); },
          [this](std::uint64_t stream, std::uint64_t bytes, bool fin) {
            if (callbacks_.on_response_stream) {
              callbacks_.on_response_stream(stream, bytes, fin);
            }
          }),
      server_receive_(
          simulator_, config_, [this] { emit(false, server_send_.make_control_packet()); },
          [this](std::uint64_t stream, std::uint64_t bytes, bool fin) {
            if (callbacks_.on_request_stream) {
              callbacks_.on_request_stream(stream, bytes, fin);
            }
          }),
      handshake_timer_(simulator, [this] { on_handshake_timeout(); }) {
  const auto trace_flow = static_cast<std::uint64_t>(flow_);
  client_send_.set_trace_context(trace_flow, trace::Endpoint::kClient);
  server_send_.set_trace_context(trace_flow, trace::Endpoint::kServer);
  client_receive_.set_trace_context(trace_flow, trace::Endpoint::kClient);
  server_receive_.set_trace_context(trace_flow, trace::Endpoint::kServer);

  network_.register_client_flow(flow_, [this](net::Packet p) { client_on_packet(p); });
  network_.register_server_flow(flow_, [this](net::Packet p) { server_on_packet(p); });
}

QuicConnection::~QuicConnection() {
  network_.unregister_client_flow(flow_);
  network_.unregister_server_flow(flow_);
}

void QuicConnection::connect() {
  if (chlo_sent_) return;
  chlo_sent_ = true;
  chlo_sent_at_ = simulator_.now();
  simulator_.trace_event(trace::EventType::kHandshakeStarted, trace::Endpoint::kClient,
                         static_cast<std::uint64_t>(flow_), config_.zero_rtt ? 0 : 1);
  send_handshake(true, QuicHandshakeStep::kInchoateChlo);
  if (config_.zero_rtt) {
    // Cached server config: crypto completes immediately; the request rides
    // along with the CHLO.
    client_established_ = true;
    client_send_.on_established(SimDuration::zero());
    simulator_.trace_event(trace::EventType::kHandshakeCompleted, trace::Endpoint::kClient,
                           static_cast<std::uint64_t>(flow_), /*id=*/0);
    if (callbacks_.on_established) callbacks_.on_established();
    return;
  }
  handshake_timer_.set_in(kInitialHandshakeTimeout);
}

void QuicConnection::send_handshake(bool from_client, QuicHandshakeStep step,
                                    std::uint8_t have_mask) {
  const std::uint8_t flight_size =
      step == QuicHandshakeStep::kRej ? kRejFlightSize : std::uint8_t{1};
  for (std::uint8_t i = 0; i < flight_size; ++i) {
    // Selective flight retransmission: skip REJ pieces the client reported
    // it already holds. (A CHLO *carries* the mask instead.)
    if (step == QuicHandshakeStep::kRej && (have_mask & (1u << i))) continue;
    auto* packet = simulator_.arena().create<QuicPacket>();
    packet->handshake = step;
    packet->flight_index = i;
    packet->flight_size = flight_size;
    packet->flight_have_mask = have_mask;
    net::Packet wire;
    wire.flow = flow_;
    wire.dest_server = server_;
    wire.wire_bytes = kHandshakePacketWireBytes;
    wire.payload = packet;
    ++handshake_stats_.handshake_packets;
    simulator_.trace_event(trace::EventType::kHandshakePacketSent,
                           from_client ? trace::Endpoint::kClient : trace::Endpoint::kServer,
                           static_cast<std::uint64_t>(flow_),
                           static_cast<std::uint64_t>(step), kHandshakePacketWireBytes);
    if (from_client) {
      network_.client_send(std::move(wire));
    } else {
      network_.server_send(std::move(wire));
    }
  }
}

void QuicConnection::on_handshake_timeout() {
  if (client_established_) return;
  ++handshake_stats_.handshake_retransmissions;
  hs_backoff_ = std::min(hs_backoff_ + 1, 6u);
  simulator_.trace_event(trace::EventType::kHandshakeRetransmitted, trace::Endpoint::kClient,
                         static_cast<std::uint64_t>(flow_), /*id=*/0, /*bytes=*/0,
                         hs_backoff_);
  // Keep the REJ pieces that already arrived and advertise them, so the
  // server's answer only carries what is missing.
  send_handshake(true, QuicHandshakeStep::kInchoateChlo, rej_received_mask_);
  handshake_timer_.set_in(kInitialHandshakeTimeout * (1u << hs_backoff_));
}

void QuicConnection::establish_client() {
  if (client_established_) return;
  client_established_ = true;
  handshake_timer_.cancel();
  // Full CHLO completes the handshake and lets encrypted data flow.
  send_handshake(true, QuicHandshakeStep::kFullChlo);
  // A genuine round-trip measurement (the 0-RTT path passes the zero sentinel
  // in connect() and never reaches here); clamp to one tick so a zero-delay
  // profile still seeds the RTT estimator with a strictly positive sample.
  client_send_.on_established(std::max(simulator_.now() - chlo_sent_at_, SimDuration{1}));
  simulator_.trace_event(
      trace::EventType::kHandshakeCompleted, trace::Endpoint::kClient,
      static_cast<std::uint64_t>(flow_), /*id=*/1, /*bytes=*/0,
      static_cast<std::uint64_t>((simulator_.now() - chlo_sent_at_).count()));
  if (callbacks_.on_established) callbacks_.on_established();
}

void QuicConnection::establish_server() {
  if (server_established_) return;
  server_established_ = true;
  const SimDuration rtt =
      rej_sent_at_ > SimTime{0}
          ? std::max(simulator_.now() - rej_sent_at_, SimDuration{1})
          : SimDuration::zero();
  server_send_.on_established(rtt);
}

void QuicConnection::client_on_packet(const net::Packet& wire) {
  const auto& packet = static_cast<const QuicPacket&>(*wire.payload);
  if (packet.handshake == QuicHandshakeStep::kRej) {
    rej_received_mask_ |= static_cast<std::uint8_t>(1u << packet.flight_index);
    const auto all = static_cast<std::uint8_t>((1u << packet.flight_size) - 1);
    if (rej_received_mask_ == all) establish_client();
    return;
  }
  if (packet.handshake != QuicHandshakeStep::kNone) return;
  if (packet.has_ack || !packet.window_updates.empty()) {
    client_send_.on_ack_frame(packet);
    client_send_.on_window_updates(packet);
  }
  client_receive_.on_packet(packet);
}

void QuicConnection::server_on_packet(const net::Packet& wire) {
  const auto& packet = static_cast<const QuicPacket&>(*wire.payload);
  if (packet.handshake == QuicHandshakeStep::kInchoateChlo) {
    rej_sent_at_ = simulator_.now();
    send_handshake(false, QuicHandshakeStep::kRej, packet.flight_have_mask);
    return;
  }
  if (packet.handshake == QuicHandshakeStep::kFullChlo) {
    establish_server();
    return;
  }
  // Data implies the client completed the handshake (0-RTT or reordering).
  establish_server();
  if (packet.has_ack || !packet.window_updates.empty()) {
    server_send_.on_ack_frame(packet);
    server_send_.on_window_updates(packet);
  }
  server_receive_.on_packet(packet);
}

void QuicConnection::emit(bool from_client, QuicPacket packet) {
  // Piggyback current ACK state of the emitting endpoint.
  if (from_client) {
    client_receive_.fill_ack(packet);
  } else {
    server_receive_.fill_ack(packet);
  }
  std::uint32_t payload = 0;
  for (const auto& frame : packet.frames) payload += frame.length + kStreamFrameOverhead;
  // ACK-range encoding cost: ~5 bytes per range actually carried.
  payload += static_cast<std::uint32_t>(packet.ack_ranges.size()) * 5 +
             static_cast<std::uint32_t>(packet.window_updates.size()) * 8;

  net::Packet wire;
  wire.flow = flow_;
  wire.dest_server = server_;
  wire.wire_bytes = payload + kQuicOverheadBytes + kUdpIpOverheadBytes;
  wire.payload = simulator_.arena().create<QuicPacket>(std::move(packet));
  if (from_client) {
    network_.client_send(std::move(wire));
  } else {
    network_.server_send(std::move(wire));
  }
}

net::TransportStats QuicConnection::stats() const {
  net::TransportStats total = handshake_stats_;
  total += client_send_.stats();
  total += server_send_.stats();
  return total;
}

}  // namespace qperc::quic
