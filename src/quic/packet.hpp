// On-the-wire QUIC packet representation for the emulated network.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace qperc::quic {

enum class QuicHandshakeStep : std::uint8_t {
  kNone = 0,
  kInchoateChlo,  // client -> server, padded to a full packet
  kRej,           // server -> client: server config (two packets)
  kFullChlo,      // client -> server, completes the crypto handshake
};

struct StreamFrame {
  std::uint64_t stream_id = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  bool fin = false;
};

/// Flow-control credit grant (MAX_STREAM_DATA / MAX_DATA).
struct WindowUpdate {
  std::uint64_t stream_id = 0;  // 0 == connection-level
  std::uint64_t limit = 0;
};

/// Per-packet overheads: short header + AEAD tag (~30 B) plus UDP/IP (28 B).
inline constexpr std::uint32_t kQuicOverheadBytes = 30;
inline constexpr std::uint32_t kUdpIpOverheadBytes = 28;
/// Framing overhead per stream frame inside a packet.
inline constexpr std::uint32_t kStreamFrameOverhead = 8;
/// Wire size of a padded handshake packet.
inline constexpr std::uint32_t kHandshakePacketWireBytes = 1392;

struct QuicPacket final : net::Payload {
  QuicHandshakeStep handshake = QuicHandshakeStep::kNone;
  std::uint8_t flight_index = 0;
  std::uint8_t flight_size = 1;

  std::uint64_t packet_number = 0;
  bool ack_eliciting = false;
  std::vector<StreamFrame> frames;

  bool has_ack = false;
  /// Received packet-number ranges [first, last], newest first, <= 256.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ack_ranges;

  std::vector<WindowUpdate> window_updates;
};

}  // namespace qperc::quic
