// On-the-wire QUIC packet representation for the emulated network.
#pragma once

#include <cstdint>
#include <type_traits>

#include "net/packet.hpp"
#include "util/arena.hpp"

namespace qperc::quic {

enum class QuicHandshakeStep : std::uint8_t {
  kNone = 0,
  kInchoateChlo,  // client -> server, padded to a full packet
  kRej,           // server -> client: server config (two packets)
  kFullChlo,      // client -> server, completes the crypto handshake
};

struct StreamFrame {
  std::uint64_t stream_id = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  bool fin = false;
};

/// Flow-control credit grant (MAX_STREAM_DATA / MAX_DATA).
struct WindowUpdate {
  std::uint64_t stream_id = 0;  // 0 == connection-level
  std::uint64_t limit = 0;
};

/// One acknowledged packet-number range [first, second] (inclusive). Member
/// names match the std::pair this used to be; a plain aggregate is trivially
/// copyable (std::pair is not), which ArenaVec storage requires.
struct AckRange {
  std::uint64_t first = 0;
  std::uint64_t second = 0;
};

/// Per-packet overheads: short header + AEAD tag (~30 B) plus UDP/IP (28 B).
inline constexpr std::uint32_t kQuicOverheadBytes = 30;
inline constexpr std::uint32_t kUdpIpOverheadBytes = 28;
/// Framing overhead per stream frame inside a packet.
inline constexpr std::uint32_t kStreamFrameOverhead = 8;
/// Wire size of a padded handshake packet.
inline constexpr std::uint32_t kHandshakePacketWireBytes = 1392;

/// Frame lists are ArenaVecs over the trial arena, which makes the packet
/// trivially destructible (an arena requirement) and move-only; building a
/// packet allocates nothing beyond arena bumps.
struct QuicPacket final : net::Payload {
  QuicHandshakeStep handshake = QuicHandshakeStep::kNone;
  std::uint8_t flight_index = 0;
  std::uint8_t flight_size = 1;
  /// In a retried CHLO: bitmask of REJ-flight pieces already received, so
  /// the server resends only the missing ones (otherwise a policer bucket
  /// smaller than the flight livelocks the handshake).
  std::uint8_t flight_have_mask = 0;

  std::uint64_t packet_number = 0;
  bool ack_eliciting = false;
  ArenaVec<StreamFrame> frames;

  bool has_ack = false;
  /// Received packet-number ranges [first, last], newest first, <= 256.
  ArenaVec<AckRange> ack_ranges;

  ArenaVec<WindowUpdate> window_updates;
};
static_assert(std::is_trivially_destructible_v<QuicPacket>,
              "QuicPacket lives in the trial arena");

}  // namespace qperc::quic
