// The receiving half of one direction of a gQUIC connection: packet-number
// tracking for ACK-range generation, per-stream reassembly with independent
// delivery (the anti-head-of-line-blocking property §4.3 highlights), and
// flow-control credit management.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "quic/config.hpp"
#include "quic/packet.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"
#include "util/flat_map.hpp"

namespace qperc::quic {

class QuicReceiveSide {
 public:
  /// `request_ack` asks the connection to emit a pure ACK packet;
  /// `on_stream_progress(stream, contiguous_bytes, fin_complete)` reports
  /// per-stream in-order delivery to the application.
  QuicReceiveSide(sim::Simulator& simulator, const QuicConfig& config,
                  SmallFunction<void()> request_ack,
                  SmallFunction<void(std::uint64_t, std::uint64_t, bool)> on_stream_progress);
  QuicReceiveSide(const QuicReceiveSide&) = delete;
  QuicReceiveSide& operator=(const QuicReceiveSide&) = delete;

  /// Processes an incoming data packet's stream frames and packet number.
  void on_packet(const QuicPacket& packet);

  /// Fills ACK ranges (newest-first, capped at max_ack_ranges) and pending
  /// window updates into an outgoing packet.
  void fill_ack(QuicPacket& packet);

  [[nodiscard]] std::uint64_t stream_delivered(std::uint64_t stream_id) const;
  [[nodiscard]] std::size_t ack_range_count() const noexcept { return received_.size(); }

  /// Identifies this side in trace events (set by the owning connection).
  void set_trace_context(std::uint64_t flow, trace::Endpoint endpoint) noexcept {
    trace_flow_ = flow;
    trace_endpoint_ = endpoint;
  }

 private:
  struct RecvStream {
    explicit RecvStream(Arena& arena)
        : out_of_order(
              ArenaAllocator<std::pair<const std::uint64_t, std::uint64_t>>(arena)) {}
    /// Reassembly ranges [start, end); nodes come from the trial arena.
    std::map<std::uint64_t, std::uint64_t, std::less<std::uint64_t>,
             ArenaAllocator<std::pair<const std::uint64_t, std::uint64_t>>>
        out_of_order;
    std::uint64_t contiguous = 0;
    std::uint64_t fin_offset = std::uint64_t(-1);
    bool fin_signaled = false;
    std::uint64_t advertised_limit = 0;
  };

  void on_stream_frame(const StreamFrame& frame);
  void maybe_update_windows(std::uint64_t stream_id, RecvStream& stream);

  sim::Simulator& simulator_;
  QuicConfig config_;
  SmallFunction<void()> request_ack_;
  SmallFunction<void(std::uint64_t, std::uint64_t, bool)> on_stream_progress_;

  std::uint64_t trace_flow_ = 0;
  trace::Endpoint trace_endpoint_ = trace::Endpoint::kNone;

  /// Received packet numbers as [first, last] ranges, keyed by first.
  std::map<std::uint64_t, std::uint64_t, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, std::uint64_t>>>
      received_;
  std::uint64_t largest_received_ = 0;
  std::uint32_t ack_eliciting_since_ack_ = 0;
  sim::Timer delayed_ack_timer_;

  /// Flat per-stream table: iteration order matches std::map, storage is
  /// arena-backed, and the per-frame try_emplace is a binary search over a
  /// contiguous slab instead of an rb-tree descent.
  FlatMap<std::uint64_t, RecvStream> streams_;
  ArenaVec<WindowUpdate> pending_window_updates_;
  std::uint64_t connection_consumed_ = 0;
  std::uint64_t connection_advertised_ = 0;  // set by the constructor
};

}  // namespace qperc::quic
