// HTTP/1.1 over TCP+TLS: the unoptimized baseline most prior QUIC studies
// compare against (§2). No multiplexing — the browser opens up to six
// parallel connections per origin and each carries one request at a time.
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "http/session.hpp"
#include "tcp/connection.hpp"
#include "util/arena.hpp"

namespace qperc::http {
namespace {

constexpr std::size_t kMaxConnectionsPerOrigin = 6;

class H1Session final : public Session {
 public:
  H1Session(sim::Simulator& simulator, net::EmulatedNetwork& network, net::ServerId server,
            const tcp::TcpConfig& config)
      : simulator_(simulator),
        network_(network),
        server_(server),
        config_(config),
        lanes_(ArenaAllocator<std::unique_ptr<Lane>>(simulator.arena())),
        pending_(ArenaAllocator<PendingRequest>(simulator.arena())) {}

  void start() override {
    if (lanes_.empty()) open_lane();
  }

  void submit(const Request& request, ProgressFn on_progress) override {
    pending_.push_back(PendingRequest{request, std::move(on_progress)});
    pump();
  }

  [[nodiscard]] net::TransportStats stats() const override {
    net::TransportStats total;
    for (const auto& lane : lanes_) total += lane->connection.stats();
    return total;
  }

  [[nodiscard]] bool established() const override { return any_established_; }

  void set_on_established(SmallFunction<void()> cb) override {
    on_established_ = std::move(cb);
    if (any_established_ && on_established_) on_established_();
  }

 private:
  struct PendingRequest {
    Request request;
    ProgressFn on_progress;
  };

  /// One keep-alive connection carrying sequential request/response
  /// exchanges (no pipelining). The connection lives inline; its callbacks
  /// capture the lane's (heap-stable) address and fire post-construction.
  struct Lane {
    explicit Lane(H1Session& session)
        : connection(session.simulator_, session.network_, session.server_, session.config_,
                     tcp::TcpConnection::Callbacks{
                         .on_established = [&session] { session.note_established(); },
                         .on_request_bytes =
                             [this, &session](std::uint64_t total) {
                               session.server_side(*this, total);
                             },
                         .on_response_bytes =
                             [this, &session](std::uint64_t total) {
                               session.client_side(*this, total);
                             },
                     }) {
      connection.set_server_on_writable([this] {
        while (server_written < server_target) {
          const std::uint64_t accepted =
              connection.server_write(server_target - server_written);
          if (accepted == 0) break;
          server_written += accepted;
        }
      });
    }

    tcp::TcpConnection connection;
    bool busy = false;
    bool responding = false;

    // Cumulative stream offsets delimiting the current exchange.
    std::uint64_t request_boundary = 0;  // client->server bytes ending the request
    std::uint64_t response_start = 0;    // server->client offset where it begins

    Request current;
    ProgressFn on_progress;
    bool complete = true;

    // Server-side write progress of the current response (backpressured).
    std::uint64_t server_target = 0;
    std::uint64_t server_written = 0;
  };

  void note_established() {
    if (!any_established_) {
      any_established_ = true;
      if (on_established_) on_established_();
    }
  }

  void open_lane() {
    lanes_.push_back(std::make_unique<Lane>(*this));
    lanes_.back()->connection.connect();
  }

  void pump() {
    for (auto& lane : lanes_) {
      if (pending_.empty()) return;
      if (lane->busy) continue;
      assign(*lane, pending_.front());
      pending_.pop_front();
    }
    while (!pending_.empty() && lanes_.size() < kMaxConnectionsPerOrigin) {
      open_lane();
      assign(*lanes_.back(), pending_.front());
      pending_.pop_front();
    }
  }

  void assign(Lane& lane, PendingRequest& pending) {
    lane.busy = true;
    lane.responding = false;
    lane.complete = false;
    lane.current = pending.request;
    lane.on_progress = std::move(pending.on_progress);
    lane.request_boundary += pending.request.request_bytes;
    simulator_.trace_event(trace::EventType::kRequestSubmitted, trace::Endpoint::kClient,
                           static_cast<std::uint64_t>(lane.connection.flow()),
                           pending.request.object_id, pending.request.response_body_bytes,
                           /*value=*/0);
    lane.connection.client_write(pending.request.request_bytes);
  }

  void server_side(Lane& lane, std::uint64_t total) {
    if (lane.responding || lane.complete || total < lane.request_boundary) return;
    lane.responding = true;
    const std::uint64_t bytes =
        lane.current.response_header_bytes + lane.current.response_body_bytes;
    simulator_.trace_event(trace::EventType::kResponseStarted, trace::Endpoint::kServer,
                           static_cast<std::uint64_t>(lane.connection.flow()),
                           lane.current.object_id, bytes, /*value=*/0);
    simulator_.schedule_in(lane.current.server_think_time, [&lane, bytes] {
      lane.server_target += bytes;
      while (lane.server_written < lane.server_target) {
        const std::uint64_t accepted =
            lane.connection.server_write(lane.server_target - lane.server_written);
        if (accepted == 0) break;
        lane.server_written += accepted;
      }
    });
  }

  void client_side(Lane& lane, std::uint64_t total) {
    if (lane.complete) return;
    const std::uint64_t response_bytes =
        lane.current.response_header_bytes + lane.current.response_body_bytes;
    const std::uint64_t got = total - lane.response_start;
    const std::uint64_t headers = lane.current.response_header_bytes;
    const std::uint64_t body =
        got > headers ? std::min(got - headers, lane.current.response_body_bytes) : 0;
    const bool complete = got >= response_bytes;
    if (lane.on_progress) lane.on_progress(lane.current.object_id, body, complete);
    if (complete) {
      simulator_.trace_event(trace::EventType::kResponseComplete, trace::Endpoint::kClient,
                             static_cast<std::uint64_t>(lane.connection.flow()),
                             lane.current.object_id, body, /*value=*/0);
      lane.complete = true;
      lane.busy = false;
      lane.responding = false;
      lane.response_start += response_bytes;
      pump();
    }
  }

  sim::Simulator& simulator_;
  net::EmulatedNetwork& network_;
  net::ServerId server_;
  tcp::TcpConfig config_;
  std::vector<std::unique_ptr<Lane>, ArenaAllocator<std::unique_ptr<Lane>>> lanes_;
  std::deque<PendingRequest, ArenaAllocator<PendingRequest>> pending_;
  bool any_established_ = false;
  SmallFunction<void()> on_established_;
};

}  // namespace

std::unique_ptr<Session> make_h1_session(sim::Simulator& simulator,
                                         net::EmulatedNetwork& network, net::ServerId server,
                                         const tcp::TcpConfig& config) {
  return std::make_unique<H1Session>(simulator, network, server, config);
}

}  // namespace qperc::http
