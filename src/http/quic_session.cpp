// HTTP over gQUIC: each request/response pair maps onto its own transport
// stream, so a lost packet only stalls the objects whose frames it carried.
#include <map>
#include <utility>

#include "http/session.hpp"
#include "quic/connection.hpp"
#include "util/arena.hpp"

namespace qperc::http {
namespace {

class QuicHttpSession final : public Session {
 public:
  QuicHttpSession(sim::Simulator& simulator, net::EmulatedNetwork& network,
                  net::ServerId server, const quic::QuicConfig& config)
      : simulator_(simulator),
        connection_(simulator, network, server, config,
                    quic::QuicConnection::Callbacks{
                        .on_established =
                            [this] {
                              established_ = true;
                              if (on_established_) on_established_();
                            },
                        .on_request_stream =
                            [this](std::uint64_t stream, std::uint64_t bytes, bool fin) {
                              server_on_request(stream, bytes, fin);
                            },
                        .on_response_stream =
                            [this](std::uint64_t stream, std::uint64_t bytes, bool fin) {
                              client_on_response(stream, bytes, fin);
                            },
                    }),
        streams_(ArenaAllocator<std::pair<const std::uint64_t, StreamState>>(
            simulator.arena())) {}

  void start() override { connection_.connect(); }

  void submit(const Request& request, ProgressFn on_progress) override {
    const std::uint64_t stream_id = next_stream_id_;
    next_stream_id_ += 2;
    streams_.emplace(stream_id, StreamState{request, std::move(on_progress)});
    simulator_.trace_event(trace::EventType::kRequestSubmitted, trace::Endpoint::kClient,
                           static_cast<std::uint64_t>(connection_.flow()),
                           request.object_id, request.response_body_bytes, stream_id);
    connection_.client_write_stream(stream_id, request.request_bytes, /*fin=*/true,
                                     request.priority);
  }

  [[nodiscard]] net::TransportStats stats() const override { return connection_.stats(); }
  [[nodiscard]] bool established() const override { return established_; }
  void set_on_established(SmallFunction<void()> cb) override {
    on_established_ = std::move(cb);
    if (established_ && on_established_) on_established_();
  }

 private:
  struct StreamState {
    Request request;
    ProgressFn on_progress;
    bool response_started = false;
    bool complete = false;
  };

  void server_on_request(std::uint64_t stream_id, std::uint64_t /*bytes*/, bool fin) {
    if (!fin) return;  // request headers not complete yet
    const auto it = streams_.find(stream_id);
    if (it == streams_.end() || it->second.response_started) return;
    it->second.response_started = true;
    const Request& request = it->second.request;
    const std::uint64_t response_bytes =
        request.response_header_bytes + request.response_body_bytes;
    const std::uint8_t priority = request.priority;
    simulator_.trace_event(trace::EventType::kResponseStarted, trace::Endpoint::kServer,
                           static_cast<std::uint64_t>(connection_.flow()),
                           request.object_id, response_bytes, stream_id);
    simulator_.schedule_in(request.server_think_time,
                           [this, stream_id, response_bytes, priority] {
                             connection_.server_write_stream(stream_id, response_bytes,
                                                              /*fin=*/true, priority);
                           });
  }

  void client_on_response(std::uint64_t stream_id, std::uint64_t bytes, bool fin) {
    const auto it = streams_.find(stream_id);
    if (it == streams_.end()) return;
    StreamState& stream = it->second;
    if (stream.complete) return;
    const std::uint64_t headers = stream.request.response_header_bytes;
    const std::uint64_t body = bytes > headers ? bytes - headers : 0;
    const bool complete = fin && body >= stream.request.response_body_bytes;
    if (complete) {
      stream.complete = true;
      simulator_.trace_event(trace::EventType::kResponseComplete, trace::Endpoint::kClient,
                             static_cast<std::uint64_t>(connection_.flow()),
                             stream.request.object_id, body, stream_id);
    }
    if (stream.on_progress) stream.on_progress(stream.request.object_id, body, complete);
  }

  sim::Simulator& simulator_;
  // Inline connection plus arena-backed stream table (see docs/PERFORMANCE.md).
  quic::QuicConnection connection_;
  bool established_ = false;
  SmallFunction<void()> on_established_;
  std::uint64_t next_stream_id_ = 5;
  std::map<std::uint64_t, StreamState, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, StreamState>>>
      streams_;
};

}  // namespace

std::unique_ptr<Session> make_quic_session(sim::Simulator& simulator,
                                           net::EmulatedNetwork& network,
                                           net::ServerId server,
                                           const quic::QuicConfig& config) {
  return std::make_unique<QuicHttpSession>(simulator, network, server, config);
}

}  // namespace qperc::http
