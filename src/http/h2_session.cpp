// HTTP/2 over TCP+TLS.
//
// The server-side scheduler interleaves DATA frames of at most 16 KiB across
// active responses (strict priority, round-robin within a class), feeding the
// TCP send buffer only when it has room — so interleaving decisions happen at
// transmission time, like a real H2 server over a drained socket. All
// responses share one TCP byte stream: a lost segment stalls delivery of
// every object behind it (transport head-of-line blocking).
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "http/session.hpp"
#include "tcp/connection.hpp"
#include "util/arena.hpp"

namespace qperc::http {
namespace {

constexpr std::uint64_t kMaxFrameBytes = 16 * 1024;

class H2Session final : public Session {
 public:
  H2Session(sim::Simulator& simulator, net::EmulatedNetwork& network, net::ServerId server,
            const tcp::TcpConfig& config)
      : simulator_(simulator),
        connection_(simulator, network, server, config,
                    tcp::TcpConnection::Callbacks{
                        .on_established =
                            [this] {
                              established_ = true;
                              if (on_established_) on_established_();
                            },
                        .on_request_bytes =
                            [this](std::uint64_t total) { server_on_request_bytes(total); },
                        .on_response_bytes =
                            [this](std::uint64_t total) { client_on_response_bytes(total); },
                    }),
        streams_(ArenaAllocator<std::pair<const std::uint64_t, StreamState>>(
            simulator.arena())),
        pending_requests_(ArenaAllocator<PendingRequest>(simulator.arena())),
        active_responses_(ArenaAllocator<ActiveResponse>(simulator.arena())),
        wire_frames_(ArenaAllocator<WireFrame>(simulator.arena())) {
    connection_.set_server_on_writable([this] { pump_responses(); });
  }

  void start() override { connection_.connect(); }

  void submit(const Request& request, ProgressFn on_progress) override {
    const std::uint64_t stream_id = next_stream_id_;
    next_stream_id_ += 2;
    streams_.emplace(stream_id, StreamState{request, std::move(on_progress)});
    simulator_.trace_event(trace::EventType::kRequestSubmitted, trace::Endpoint::kClient,
                           static_cast<std::uint64_t>(connection_.flow()),
                           request.object_id, request.response_body_bytes, stream_id);

    // The request headers go onto the shared client->server stream; the
    // server recognizes the request once its last byte arrives.
    request_bytes_written_ += request.request_bytes;
    pending_requests_.push_back(PendingRequest{request_bytes_written_, stream_id});
    connection_.client_write(request.request_bytes);
  }

  [[nodiscard]] net::TransportStats stats() const override { return connection_.stats(); }
  [[nodiscard]] bool established() const override { return established_; }
  void set_on_established(SmallFunction<void()> cb) override {
    on_established_ = std::move(cb);
    if (established_ && on_established_) on_established_();
  }

 private:
  struct StreamState {
    Request request;
    ProgressFn on_progress;
    std::uint64_t body_delivered = 0;
    bool complete = false;
  };
  struct PendingRequest {
    std::uint64_t request_end_offset;  // in the client->server byte stream
    std::uint64_t stream_id;
  };
  /// A response currently being framed onto the wire by the server.
  struct ActiveResponse {
    std::uint64_t stream_id = 0;
    std::uint64_t remaining_bytes = 0;  // headers + body left to frame
    std::uint8_t priority = 2;
    std::uint64_t arrival_order = 0;
  };
  /// A chunk of bytes on the server->client stream, in wire order.
  struct WireFrame {
    std::uint64_t stream_id = 0;
    std::uint64_t bytes = 0;
  };

  void server_on_request_bytes(std::uint64_t total) {
    while (!pending_requests_.empty() &&
           total >= pending_requests_.front().request_end_offset) {
      const PendingRequest pending = pending_requests_.front();
      pending_requests_.pop_front();
      const auto it = streams_.find(pending.stream_id);
      if (it == streams_.end()) continue;
      const Request& request = it->second.request;
      const std::uint64_t response_bytes =
          request.response_header_bytes + request.response_body_bytes;
      const std::uint8_t priority = request.priority;
      simulator_.trace_event(trace::EventType::kResponseStarted, trace::Endpoint::kServer,
                             static_cast<std::uint64_t>(connection_.flow()),
                             request.object_id, response_bytes, pending.stream_id);
      simulator_.schedule_in(request.server_think_time,
                             [this, pending, response_bytes, priority] {
                               activate_response(pending.stream_id, response_bytes,
                                                 priority);
                             });
    }
  }

  /// Moves a request whose think time elapsed into the active-response set.
  /// Outlined (not left in the scheduling lambda) so the warm-capacity
  /// vector growth here carries a stable symbol the hot-path analyzer's
  /// allowlist can name; SmallFunction lambda invokers get codegen-numbered
  /// names that shift between builds.
  __attribute__((noinline)) void activate_response(std::uint64_t stream_id,
                                                   std::uint64_t response_bytes,
                                                   std::uint8_t priority) {
    active_responses_.push_back(
        ActiveResponse{stream_id, response_bytes, priority, next_arrival_order_++});
    pump_responses();
  }

  /// Picks the next response to frame: strict priority, round-robin within
  /// the same priority (rotate the chosen entry to the back of its class).
  std::optional<std::size_t> pick_response() const {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < active_responses_.size(); ++i) {
      if (!best || active_responses_[i].priority < active_responses_[*best].priority) {
        best = i;
      }
    }
    return best;
  }

  void pump_responses() {
    while (!active_responses_.empty()) {
      const std::uint64_t room = connection_.server_writable();
      if (room == 0) return;  // resumed by on_writable
      const auto index = pick_response();
      if (!index) return;
      ActiveResponse& response = active_responses_[*index];
      const std::uint64_t frame = std::min({kMaxFrameBytes, response.remaining_bytes, room});
      if (frame == 0) return;
      connection_.server_write(frame);
      wire_frames_.push_back(WireFrame{response.stream_id, frame});
      response.remaining_bytes -= frame;
      if (response.remaining_bytes == 0) {
        active_responses_.erase(active_responses_.begin() +
                                static_cast<std::ptrdiff_t>(*index));
      } else {
        // Round-robin within the class: move to the back.
        ActiveResponse moved = response;
        active_responses_.erase(active_responses_.begin() +
                                static_cast<std::ptrdiff_t>(*index));
        active_responses_.push_back(moved);
      }
    }
  }

  void client_on_response_bytes(std::uint64_t total) {
    // Attribute newly delivered in-order bytes to wire frames front-to-back.
    while (total > wire_consumed_ && !wire_frames_.empty()) {
      WireFrame& front = wire_frames_.front();
      const std::uint64_t take = std::min(total - wire_consumed_, front.bytes);
      wire_consumed_ += take;
      front.bytes -= take;
      deliver_to_stream(front.stream_id, take);
      if (front.bytes == 0) wire_frames_.pop_front();
    }
  }

  void deliver_to_stream(std::uint64_t stream_id, std::uint64_t bytes) {
    const auto it = streams_.find(stream_id);
    if (it == streams_.end()) return;
    StreamState& stream = it->second;
    stream.body_delivered += bytes;  // includes header bytes first
    const std::uint64_t headers = stream.request.response_header_bytes;
    const std::uint64_t body =
        stream.body_delivered > headers ? stream.body_delivered - headers : 0;
    const bool complete = body >= stream.request.response_body_bytes;
    if (stream.complete) return;
    if (complete) {
      stream.complete = true;
      simulator_.trace_event(trace::EventType::kResponseComplete, trace::Endpoint::kClient,
                             static_cast<std::uint64_t>(connection_.flow()),
                             stream.request.object_id, body, stream_id);
    }
    if (stream.on_progress) stream.on_progress(stream.request.object_id, body, complete);
  }

  sim::Simulator& simulator_;
  // Inline connection plus arena-backed bookkeeping: steady-state request
  // submission and response framing never touch the global heap.
  tcp::TcpConnection connection_;
  bool established_ = false;
  SmallFunction<void()> on_established_;

  std::uint64_t next_stream_id_ = 1;
  std::map<std::uint64_t, StreamState, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, StreamState>>>
      streams_;

  std::uint64_t request_bytes_written_ = 0;
  std::deque<PendingRequest, ArenaAllocator<PendingRequest>> pending_requests_;

  std::vector<ActiveResponse, ArenaAllocator<ActiveResponse>> active_responses_;
  std::uint64_t next_arrival_order_ = 0;

  std::deque<WireFrame, ArenaAllocator<WireFrame>> wire_frames_;
  std::uint64_t wire_consumed_ = 0;
};

}  // namespace

std::unique_ptr<Session> make_h2_session(sim::Simulator& simulator,
                                         net::EmulatedNetwork& network, net::ServerId server,
                                         const tcp::TcpConfig& config) {
  return std::make_unique<H2Session>(simulator, network, server, config);
}

}  // namespace qperc::http
