// HTTP abstraction the browser talks to: one session per origin, request
// multiplexing, per-object delivery progress.
//
// Two implementations exist: HTTP/2 over TCP+TLS (responses share one byte
// stream — transport loss blocks every in-flight object) and gQUIC HTTP
// (responses ride independent transport streams).
#pragma once

#include <cstdint>
#include <memory>

#include "net/emulated_network.hpp"
#include "net/transport_stats.hpp"
#include "quic/config.hpp"
#include "sim/simulator.hpp"
#include "tcp/config.hpp"
#include "util/time.hpp"

namespace qperc::http {

/// One HTTP request/response exchange for a page object.
struct Request {
  std::uint32_t object_id = 0;
  /// Compressed request-header bytes on the wire.
  std::uint64_t request_bytes = 400;
  /// Compressed response-header bytes preceding the body.
  std::uint64_t response_header_bytes = 140;
  std::uint64_t response_body_bytes = 0;
  /// Lower value = more urgent (browser priority classes).
  std::uint8_t priority = 2;
  /// Server processing latency before the response starts.
  SimDuration server_think_time{microseconds(500)};
};

class Session {
 public:
  /// Progress report: body bytes of `object_id` delivered in order so far;
  /// `complete` fires exactly once, when the full body has arrived.
  /// SmallFunction (move-only, inline storage): progress callbacks fire per
  /// delivered frame and capture only a loader pointer plus an object id.
  using ProgressFn =
      SmallFunction<void(std::uint32_t object_id, std::uint64_t body_bytes, bool complete)>;

  virtual ~Session() = default;

  /// Starts the transport handshake. Idempotent.
  virtual void start() = 0;
  /// Submits a request; may be called before the handshake completes.
  virtual void submit(const Request& request, ProgressFn on_progress) = 0;
  [[nodiscard]] virtual net::TransportStats stats() const = 0;
  [[nodiscard]] virtual bool established() const = 0;
  /// Invoked once when the transport handshake completes (the browser uses
  /// this to pace its connection pool).
  virtual void set_on_established(SmallFunction<void()> cb) = 0;
};

/// HTTP/2 over TCP+TLS per Table 1's TCP rows.
[[nodiscard]] std::unique_ptr<Session> make_h2_session(sim::Simulator& simulator,
                                                       net::EmulatedNetwork& network,
                                                       net::ServerId server,
                                                       const tcp::TcpConfig& config);

/// gQUIC HTTP per Table 1's QUIC rows.
[[nodiscard]] std::unique_ptr<Session> make_quic_session(sim::Simulator& simulator,
                                                         net::EmulatedNetwork& network,
                                                         net::ServerId server,
                                                         const quic::QuicConfig& config);

/// HTTP/1.1 over TCP+TLS (six parallel connections per origin, one exchange
/// at a time): the related-work baseline (§2), not part of Table 1.
[[nodiscard]] std::unique_ptr<Session> make_h1_session(sim::Simulator& simulator,
                                                       net::EmulatedNetwork& network,
                                                       net::ServerId server,
                                                       const tcp::TcpConfig& config);

}  // namespace qperc::http
