#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace qperc::sim {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t index = free_head_;
    QPERC_DCHECK(!slots_[index].live) << "free list handed out a live slot";
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNilSlot;
    return index;
  }
  QPERC_CHECK_LT(slots_.size(), kNilSlot) << "event slab exhausted the 32-bit slot space";
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t index) noexcept {
  Slot& slot = slots_[index];
  QPERC_DCHECK(slot.live) << "double release of event slot";
  QPERC_DCHECK_GT(live_slots_, 0u);
  // Generation wrap would resurrect stale EventIds/queue records for this
  // slot; at one bump per release this needs 4 billion cancels on a single
  // slot, but the corruption would be silent, so it is guarded.
  QPERC_DCHECK_NE(slot.generation, 0xffffffffu);
  slot.fn = nullptr;
  slot.live = false;
  ++slot.generation;  // invalidates outstanding ids and queue records
  slot.next_free = free_head_;
  free_head_ = index;
  --live_slots_;
}

EventId Simulator::schedule_at(SimTime t, Callback fn) {
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  const SimTime when = std::max(t, now_);
  slot.fn = std::move(fn);
  slot.deadline = when;
  slot.seq = next_seq_++;
  slot.queued_time = when;
  slot.queued_seq = slot.seq;
  slot.live = true;
  ++live_slots_;
  queue_.push(QueueEntry{when, slot.seq, index, slot.generation});
  return make_id(index, slot.generation);
}

EventId Simulator::schedule_in(SimDuration d, Callback fn) {
  return schedule_at(now_ + std::max(d, SimDuration::zero()), std::move(fn));
}

void Simulator::cancel(EventId id) {
  const auto raw = static_cast<std::uint64_t>(id);
  const auto index = static_cast<std::uint32_t>(raw >> 32);
  const auto generation = static_cast<std::uint32_t>(raw);
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  if (!slot.live || slot.generation != generation) return;
  release_slot(index);
}

bool Simulator::reschedule(EventId id, SimTime t) {
  const auto raw = static_cast<std::uint64_t>(id);
  const auto index = static_cast<std::uint32_t>(raw >> 32);
  const auto generation = static_cast<std::uint32_t>(raw);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (!slot.live || slot.generation != generation) return false;
  const SimTime when = std::max(t, now_);
  slot.deadline = when;
  // A fresh seq keeps the FIFO tie-break identical to cancel+schedule, which
  // is what preserves bit-exact event order across the two implementations.
  slot.seq = next_seq_++;
  if (when < slot.queued_time) {
    // Deadline moved earlier: the tracked queue record would surface too
    // late, so push a current one now; the old record becomes garbage.
    slot.queued_time = when;
    slot.queued_seq = slot.seq;
    queue_.push(QueueEntry{when, slot.seq, index, slot.generation});
  }
  // Deadline moved later (or to the same time with a new FIFO rank): defer.
  // The tracked record still surfaces first; normalize_top() re-enqueues it
  // at the new position before any later event can run, so ordering is
  // unchanged while the queue holds at most one extra record per timer.
  return true;
}

bool Simulator::normalize_top() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    Slot& slot = slots_[entry.slot];
    if (!slot.live || slot.generation != entry.generation ||
        entry.time != slot.queued_time || entry.seq != slot.queued_seq) {
      queue_.pop();  // cancelled, fired, or superseded by an earlier re-arm
      continue;
    }
    if (slot.deadline != entry.time || slot.seq != entry.seq) {
      // Deferred re-arm: move the tracked record to the current deadline
      // (replace_top = pop+push fused into one sift-down).
      slot.queued_time = slot.deadline;
      slot.queued_seq = slot.seq;
      queue_.replace_top(QueueEntry{slot.deadline, slot.seq, entry.slot, slot.generation});
      continue;
    }
    return true;
  }
  return false;
}

bool Simulator::step() {
  if (!normalize_top()) return false;
  const QueueEntry entry = queue_.top();
  queue_.pop();
  Slot& slot = slots_[entry.slot];
  // The heap property is what keeps virtual time monotone; a violation here
  // means event ordering (and therefore every result) is corrupt.
  QPERC_CHECK_GE(entry.time, now_) << "event queue surfaced an event in the past";
  QPERC_DCHECK(slot.live);
  QPERC_DCHECK_EQ(slot.generation, entry.generation);
  QPERC_DCHECK_EQ(slot.deadline.count(), entry.time.count());
  now_ = entry.time;
  Callback fn = std::move(slot.fn);
  release_slot(entry.slot);  // before fn(): the callback may reuse the slot
  ++events_processed_;
  fn();
  return true;
}

void Simulator::reset() noexcept {
  // clear() keeps vector capacity on both containers, and the emptied slab
  // regrows through the same push_back sequence as a cold start — slot 0 is
  // handed out first either way — so a reset simulator is indistinguishable
  // from a fresh one to every client, including the FIFO tie-break order.
  queue_.clear();
  slots_.clear();  // destroys callbacks (releasing any heap-fallback captures)
  arena_.reset();
  now_ = SimTime{0};
  next_seq_ = 0;
  events_processed_ = 0;
  live_slots_ = 0;
  free_head_ = kNilSlot;
  stop_requested_ = false;
}

bool Simulator::run(std::uint64_t max_events) {
  stop_requested_ = false;
  for (std::uint64_t fired = 0; fired < max_events; ++fired) {
    if (stop_requested_ || !step()) return true;
  }
  return !normalize_top();
}

bool Simulator::run_until(SimTime t, std::uint64_t max_events) {
  stop_requested_ = false;
  for (std::uint64_t fired = 0; fired < max_events; ++fired) {
    if (stop_requested_) return true;
    if (!normalize_top() || queue_.top().time > t) {
      now_ = std::max(now_, t);
      return true;
    }
    if (!step()) {
      now_ = std::max(now_, t);
      return true;
    }
  }
  return false;
}

Timer::Timer(Simulator& simulator, Simulator::Callback on_fire)
    : simulator_(simulator), on_fire_(std::move(on_fire)) {}

Timer::~Timer() { cancel(); }

void Timer::set_at(SimTime deadline) {
  deadline_ = deadline;
  if (armed_ && simulator_.reschedule(pending_, deadline)) return;
  armed_ = true;
  pending_ = simulator_.schedule_at(deadline, [this] {
    armed_ = false;
    on_fire_();
  });
}

void Timer::set_in(SimDuration d) { set_at(simulator_.now() + std::max(d, SimDuration::zero())); }

void Timer::cancel() {
  if (armed_) {
    simulator_.cancel(pending_);
    armed_ = false;
  }
}

}  // namespace qperc::sim
