#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace qperc::sim {

EventId Simulator::schedule_at(SimTime t, Callback fn) {
  const std::uint64_t id = next_id_++;
  queue_.push(Event{std::max(t, now_), next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return EventId{id};
}

EventId Simulator::schedule_in(SimDuration d, Callback fn) {
  return schedule_at(now_ + std::max(d, SimDuration::zero()), std::move(fn));
}

void Simulator::cancel(EventId id) {
  const auto raw = static_cast<std::uint64_t>(id);
  if (callbacks_.erase(raw) > 0) cancelled_.insert(raw);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (const auto erased = cancelled_.erase(ev.id); erased > 0) continue;
    const auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // defensive; should not happen
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.time;
    ++events_processed_;
    fn();
    return true;
  }
  return false;
}

bool Simulator::run(std::uint64_t max_events) {
  stop_requested_ = false;
  for (std::uint64_t fired = 0; fired < max_events; ++fired) {
    if (stop_requested_ || !step()) return true;
  }
  return queue_.empty();
}

bool Simulator::run_until(SimTime t, std::uint64_t max_events) {
  stop_requested_ = false;
  for (std::uint64_t fired = 0; fired < max_events; ++fired) {
    if (stop_requested_) return true;
    // Peek through cancelled entries to find the next live event time.
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (cancelled_.erase(top.id) > 0) {
        queue_.pop();
        continue;
      }
      break;
    }
    if (queue_.empty() || queue_.top().time > t) {
      now_ = std::max(now_, t);
      return true;
    }
    if (!step()) {
      now_ = std::max(now_, t);
      return true;
    }
  }
  return false;
}

std::size_t Simulator::pending_events() const { return callbacks_.size(); }

Timer::Timer(Simulator& simulator, Simulator::Callback on_fire)
    : simulator_(simulator), on_fire_(std::move(on_fire)) {}

Timer::~Timer() { cancel(); }

void Timer::set_at(SimTime deadline) {
  cancel();
  armed_ = true;
  deadline_ = deadline;
  pending_ = simulator_.schedule_at(deadline, [this] {
    armed_ = false;
    on_fire_();
  });
}

void Timer::set_in(SimDuration d) { set_at(simulator_.now() + std::max(d, SimDuration::zero())); }

void Timer::cancel() {
  if (armed_) {
    simulator_.cancel(pending_);
    armed_ = false;
  }
}

}  // namespace qperc::sim
