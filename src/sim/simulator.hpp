// Discrete-event simulation core.
//
// A Simulator owns a virtual clock and an event queue. Protocol stacks, link
// emulators, and the page loader all schedule callbacks against it. Events at
// equal timestamps run in FIFO scheduling order, which keeps runs bit-exact
// reproducible.
//
// Storage design (see ARCHITECTURE.md "Simulator internals" for diagrams):
// events live in a generation-counted slab — a vector of slots threaded with
// a free list. The callback is stored inline in the slot via SmallFunction,
// so the steady state performs no heap allocation: scheduling pops a free
// slot, cancelling bumps the slot's generation (O(1), no side containers),
// and the priority queue holds only plain {time, seq, slot, generation}
// records whose staleness is detected lazily when they surface. Timer re-arms
// update the owning slot in place instead of cancel+schedule, so the heap is
// not touched at all when a deadline only moves later (the common RTO /
// delayed-ACK pattern).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/arena.hpp"
#include "util/function.hpp"
#include "util/time.hpp"

namespace qperc::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Encodes {slot index, slot generation}; value 0 is never a live event.
enum class EventId : std::uint64_t {};

class Simulator {
 public:
  /// The callable vocabulary of the whole sim layer (links and network flow
  /// handlers use the same template): small captures stay inline, so
  /// scheduling them never allocates.
  using Callback = SmallFunction<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  EventId schedule_at(SimTime t, Callback fn);
  /// Schedules `fn` to run `d` after now().
  EventId schedule_in(SimDuration d, Callback fn);
  /// Cancels a pending event; cancelling an already-fired or unknown id is a
  /// no-op. O(1): the slot's generation is bumped and any queue records that
  /// still reference the old generation are skipped when they surface.
  void cancel(EventId id);
  /// Moves a pending event to a new deadline, keeping its callback and id.
  /// Equivalent to cancel+schedule for ordering purposes (the event takes a
  /// fresh position in the FIFO tie-break order), but reuses the slot and, if
  /// the deadline does not move earlier, defers the queue update until the
  /// old record surfaces. Returns false if `id` no longer names a pending
  /// event (already fired or cancelled); the caller must then schedule anew.
  bool reschedule(EventId id, SimTime t);

  /// Returns this run's monotonic arena. Protocol stacks place wire payloads
  /// and other trial-scoped state here; everything is reclaimed wholesale by
  /// reset(). Arena storage must therefore never outlive the simulator run
  /// that allocated it.
  [[nodiscard]] Arena& arena() noexcept { return arena_; }
  [[nodiscard]] const Arena& arena() const noexcept { return arena_; }

  /// Rewinds the simulator to a just-constructed state while keeping every
  /// capacity warm: the slab vector, the queue vector, and the arena blocks
  /// are retained, so the next run schedules without heap allocation.
  /// Behaviorally identical to a fresh Simulator — the emptied slab regrows
  /// through the same push_back path, so slot assignment (and with it event
  /// ordering) is bit-exact against a cold start. The trace sink attachment
  /// survives reset; callers re-point it per run as they see fit.
  void reset() noexcept;

  /// Runs until the queue is empty or `max_events` have fired.
  /// Returns false if the event cap stopped the run (a runaway guard).
  bool run(std::uint64_t max_events = kDefaultEventCap);
  /// Runs all events with timestamp <= t, then advances the clock to t.
  /// Returns false if the event cap stopped the run.
  bool run_until(SimTime t, std::uint64_t max_events = kDefaultEventCap);

  /// Stops the current run() after the in-flight callback returns.
  void request_stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }
  /// Number of live (scheduled, not yet fired or cancelled) events.
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_slots_; }
  /// Queue records including stale ones awaiting lazy removal; tests assert
  /// this stays bounded under timer churn.
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
  /// Slab capacity (high-water mark of concurrently pending events).
  [[nodiscard]] std::size_t slab_slots() const noexcept { return slots_.size(); }

  /// Attaches (or detaches, with nullptr) the trace sink all layers report
  /// to. The sink must outlive every traced component; the default (no sink)
  /// reduces every instrumentation hook to one pointer test.
  void set_trace(trace::TraceSink* sink) noexcept { trace_ = sink; }
  [[nodiscard]] trace::TraceSink* trace() const noexcept { return trace_; }

  /// Emits one trace event stamped with now(). No-op without a sink — but
  /// callers on hot paths should still guard with `if (trace())` so argument
  /// computation is skipped too.
  void trace_event(trace::EventType type, trace::Endpoint endpoint = trace::Endpoint::kNone,
                   std::uint64_t flow = 0, std::uint64_t id = 0, std::uint64_t bytes = 0,
                   std::uint64_t value = 0) {
    if (trace_ != nullptr) {
      trace_->on_event(trace::Event{now_, type, endpoint, flow, id, bytes, value});
    }
  }

  static constexpr std::uint64_t kDefaultEventCap = 500'000'000;

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// One slab entry. A slot is live between schedule and fire/cancel; freed
  /// slots are chained through `next_free` and their generation is bumped so
  /// stale ids and queue records can never resurrect them.
  struct Slot {
    Callback fn;
    SimTime deadline{0};      // when the event actually fires
    std::uint64_t seq = 0;    // FIFO tie-break rank of the latest (re)arm
    SimTime queued_time{0};   // the queue record currently tracking this slot
    std::uint64_t queued_seq = 0;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilSlot;
    bool live = false;
  };

  struct QueueEntry {
    SimTime time{0};
    std::uint64_t seq = 0;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };
  /// Min-heap over (time, seq). The ordering is a strict total order (every
  /// record carries a unique seq), so ANY correct heap pops the records in
  /// the same sequence — the implementation is interchangeable without
  /// affecting event order or results. A hand-rolled 4-ary heap replaces
  /// std::priority_queue because the pop/push sift is the single hottest
  /// operation in a page-load trial: a 4-wide node halves the tree depth
  /// (fewer 24-byte record moves) and keeps each sibling scan in one cache
  /// line's worth of comparisons. clear() keeps the vector's capacity so
  /// reset() leaves the queue warm.
  struct Queue {
    [[nodiscard]] static bool before(const QueueEntry& a, const QueueEntry& b) noexcept {
      if (a.time != b.time) return a.time < b.time;
      return a.seq < b.seq;
    }

    [[nodiscard]] bool empty() const noexcept { return v.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return v.size(); }
    [[nodiscard]] const QueueEntry& top() const noexcept { return v[0]; }
    void clear() noexcept { v.clear(); }

    void push(QueueEntry entry) {
      std::size_t i = v.size();
      v.push_back(entry);
      while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!before(entry, v[parent])) break;
        v[i] = v[parent];
        i = parent;
      }
      v[i] = entry;
    }

    void pop() noexcept {
      const QueueEntry item = v.back();
      v.pop_back();
      if (!v.empty()) sift_down(item);
    }

    /// Equivalent to pop()-then-push(entry) — the sequence normalize_top()
    /// runs for every deferred timer re-arm — in a single sift-down.
    void replace_top(QueueEntry entry) noexcept { sift_down(entry); }

    void sift_down(QueueEntry item) noexcept {
      const std::size_t n = v.size();
      std::size_t i = 0;
      while (true) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        const std::size_t last = std::min(first + 4, n);
        std::size_t best = first;
        for (std::size_t child = first + 1; child < last; ++child) {
          if (before(v[child], v[best])) best = child;
        }
        if (!before(v[best], item)) break;
        v[i] = v[best];
        i = best;
      }
      v[i] = item;
    }

    std::vector<QueueEntry> v;
  };

  [[nodiscard]] static EventId make_id(std::uint32_t slot, std::uint32_t generation) noexcept {
    return EventId{(static_cast<std::uint64_t>(slot) << 32) | generation};
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index) noexcept;
  /// Drops stale queue records and re-enqueues deferred re-arms until the top
  /// of the queue is a live, current event. Returns false when none remains.
  bool normalize_top();
  /// Pops and runs the next live event; returns false when the queue is empty.
  bool step();

  SimTime now_{0};
  trace::TraceSink* trace_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t live_slots_ = 0;
  std::uint32_t free_head_ = kNilSlot;
  bool stop_requested_ = false;
  std::vector<Slot> slots_;
  Queue queue_;
  Arena arena_;
};

/// A re-armable one-shot timer bound to a Simulator.
///
/// Protocol stacks use this for RTO / TLP / delayed-ACK timers: set() replaces
/// any pending deadline, cancel() disarms. The callback is fixed at
/// construction; Timer must outlive any armed deadline (stacks own their
/// timers, and the simulator never outlives the stacks in our harness).
///
/// Re-arming an armed timer reschedules its existing event slot in place —
/// no allocation, no slot churn, and no queue growth when the deadline moves
/// later (the dominant pattern: every ACK pushes the RTO further out).
class Timer {
 public:
  Timer(Simulator& simulator, Simulator::Callback on_fire);
  ~Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) the timer for absolute time `deadline`.
  void set_at(SimTime deadline);
  /// Arms (or re-arms) the timer to fire `d` from now.
  void set_in(SimDuration d);
  void cancel();
  [[nodiscard]] bool is_armed() const noexcept { return armed_; }
  [[nodiscard]] SimTime deadline() const noexcept { return deadline_; }

 private:
  Simulator& simulator_;
  Simulator::Callback on_fire_;
  EventId pending_{0};
  bool armed_ = false;
  SimTime deadline_{0};
};

}  // namespace qperc::sim
