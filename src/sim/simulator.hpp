// Discrete-event simulation core.
//
// A Simulator owns a virtual clock and an event queue. Protocol stacks, link
// emulators, and the page loader all schedule callbacks against it. Events at
// equal timestamps run in FIFO scheduling order, which keeps runs bit-exact
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/trace.hpp"
#include "util/time.hpp"

namespace qperc::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
enum class EventId : std::uint64_t {};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run at absolute time `t` (clamped to now()).
  EventId schedule_at(SimTime t, Callback fn);
  /// Schedules `fn` to run `d` after now().
  EventId schedule_in(SimDuration d, Callback fn);
  /// Cancels a pending event; cancelling an already-fired or unknown id is a no-op.
  void cancel(EventId id);

  /// Runs until the queue is empty or `max_events` have fired.
  /// Returns false if the event cap stopped the run (a runaway guard).
  bool run(std::uint64_t max_events = kDefaultEventCap);
  /// Runs all events with timestamp <= t, then advances the clock to t.
  /// Returns false if the event cap stopped the run.
  bool run_until(SimTime t, std::uint64_t max_events = kDefaultEventCap);

  /// Stops the current run() after the in-flight callback returns.
  void request_stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }
  [[nodiscard]] std::size_t pending_events() const;

  /// Attaches (or detaches, with nullptr) the trace sink all layers report
  /// to. The sink must outlive every traced component; the default (no sink)
  /// reduces every instrumentation hook to one pointer test.
  void set_trace(trace::TraceSink* sink) noexcept { trace_ = sink; }
  [[nodiscard]] trace::TraceSink* trace() const noexcept { return trace_; }

  /// Emits one trace event stamped with now(). No-op without a sink — but
  /// callers on hot paths should still guard with `if (trace())` so argument
  /// computation is skipped too.
  void trace_event(trace::EventType type, trace::Endpoint endpoint = trace::Endpoint::kNone,
                   std::uint64_t flow = 0, std::uint64_t id = 0, std::uint64_t bytes = 0,
                   std::uint64_t value = 0) {
    if (trace_ != nullptr) {
      trace_->on_event(trace::Event{now_, type, endpoint, flow, id, bytes, value});
    }
  }

  static constexpr std::uint64_t kDefaultEventCap = 500'000'000;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    // Callbacks live in a side map so the heap stays cheap to move.
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops and runs the next non-cancelled event; returns false when empty.
  bool step();

  SimTime now_{0};
  trace::TraceSink* trace_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// A re-armable one-shot timer bound to a Simulator.
///
/// Protocol stacks use this for RTO / TLP / delayed-ACK timers: set() replaces
/// any pending deadline, cancel() disarms. The callback is fixed at
/// construction; Timer must outlive any armed deadline (stacks own their
/// timers, and the simulator never outlives the stacks in our harness).
class Timer {
 public:
  Timer(Simulator& simulator, Simulator::Callback on_fire);
  ~Timer();
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) the timer for absolute time `deadline`.
  void set_at(SimTime deadline);
  /// Arms (or re-arms) the timer to fire `d` from now.
  void set_in(SimDuration d);
  void cancel();
  [[nodiscard]] bool is_armed() const noexcept { return armed_; }
  [[nodiscard]] SimTime deadline() const noexcept { return deadline_; }

 private:
  Simulator& simulator_;
  Simulator::Callback on_fire_;
  EventId pending_{0};
  bool armed_ = false;
  SimTime deadline_{0};
};

}  // namespace qperc::sim
