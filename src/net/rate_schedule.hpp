// Time-varying link capacity: a piecewise-constant rate schedule plus seeded
// synthetic LTE / Wi-Fi trace generators.
//
// The paper's Table-2 profiles are static, but its discussion (and the
// LTE measurement set in /root/related/) notes that real access links —
// especially cellular — are not. A RateSchedule lets a Link's serializer
// change rate at scheduled instants, Mahimahi-style:
//
//   * kSteps      — explicit (time, rate) breakpoints, e.g. a 10x rate drop
//     at t=3s, configured from the CLI (`--rate-schedule 0:25,3000:2.5`),
//   * kLteTrace   — synthetic cellular capacity: slow (~1 s) shadowing times
//     fast (~50 ms) fading around the profile's base rate,
//   * kWifiTrace  — synthetic 802.11 rate adaptation: the link dwells on one
//     of a discrete MCS-like rate ladder and occasionally deep-fades.
//
// Both trace generators are *stateless*: the rate over any epoch is a pure
// hash of (seed, epoch index), so `rate_at(t)` is O(1), needs no trace file,
// no stored samples, and no RNG stream — a disabled schedule performs zero
// draws and zero work, keeping every existing golden bit-exact. The hash is
// private to the schedule (SplitMix64 over the epoch counter), deliberately
// independent of the link's loss RNG so enabling a schedule never perturbs
// loss/impairment draw order.
//
// Rates are floored at kMinRate so the serializer's piecewise integration
// (Link::serialize_end) always terminates in a bounded number of epochs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/time.hpp"
#include "util/units.hpp"

namespace qperc::net {

/// One breakpoint of an explicit step schedule: from `at` onward the link
/// serializes at `rate` (until the next step).
struct RateStep {
  SimDuration at{0};
  DataRate rate{};

  friend constexpr bool operator==(const RateStep&, const RateStep&) = default;
};

class RateSchedule {
 public:
  enum class Kind : std::uint8_t { kNone, kSteps, kLteTrace, kWifiTrace };

  /// Explicit step schedules are bounded so a NetworkProfile stays a small,
  /// allocation-free value type (profiles are copied per trial on the hot
  /// path). Sixteen breakpoints cover every grid cell and CLI use case; the
  /// synthetic traces handle "many changes".
  static constexpr std::size_t kMaxSteps = 16;
  /// Floor under every generated rate: bounds the number of epochs any one
  /// packet's serialization can span and keeps transmission_time finite.
  static constexpr std::uint64_t kMinRateBps = 64'000;

  constexpr RateSchedule() = default;

  /// Explicit breakpoints. The first step must start at t=0 (the schedule
  /// defines the rate at every instant); steps must be strictly increasing
  /// in time and carry non-zero rates. Violations are reported by validate().
  [[nodiscard]] static RateSchedule steps(const RateStep* begin, std::size_t count);

  /// Synthetic cellular capacity around `base` (typically the profile's
  /// downlink rate), deterministic from `seed`.
  [[nodiscard]] static RateSchedule lte_trace(DataRate base, std::uint64_t seed);

  /// Synthetic 802.11 rate adaptation around `base`, deterministic from
  /// `seed`.
  [[nodiscard]] static RateSchedule wifi_trace(DataRate base, std::uint64_t seed);

  [[nodiscard]] constexpr bool enabled() const noexcept { return kind_ != Kind::kNone; }
  [[nodiscard]] constexpr Kind kind() const noexcept { return kind_; }
  [[nodiscard]] constexpr DataRate base_rate() const noexcept { return base_; }
  [[nodiscard]] constexpr std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] constexpr std::size_t step_count() const noexcept { return step_count_; }
  [[nodiscard]] constexpr const RateStep& step(std::size_t i) const noexcept {
    return steps_[i];
  }

  /// The serialization rate in force at `t`. O(1) for traces, O(steps) for
  /// step schedules (kMaxSteps is tiny). Never zero for a valid schedule.
  [[nodiscard]] DataRate rate_at(SimTime t) const noexcept;

  /// The next instant strictly after `t` at which rate_at may change, or
  /// kNoTime when the rate is constant from `t` on. Link::serialize_end
  /// integrates capacity piecewise between these boundaries.
  [[nodiscard]] SimTime next_change_after(SimTime t) const noexcept;

  /// Exact capacity of the schedule over [0, until) in bytes (double to
  /// avoid overflow on long horizons). The byte-conservation property tests
  /// compare delivered bytes against this integral.
  [[nodiscard]] double bytes_through(SimTime until) const;

  /// Throws std::invalid_argument naming the offending field. Mirrors
  /// LinkImpairments::validate (not QPERC_COLD_PATH for the same reason:
  /// unconditional per-trial callers would inherit the coldness).
  void validate() const;

  friend bool operator==(const RateSchedule&, const RateSchedule&) = default;

 private:
  [[nodiscard]] DataRate trace_rate(std::uint64_t epoch) const noexcept;

  Kind kind_ = Kind::kNone;
  std::uint64_t seed_ = 0;
  DataRate base_{};
  std::size_t step_count_ = 0;
  std::array<RateStep, kMaxSteps> steps_{};
};

[[nodiscard]] constexpr const char* to_string(RateSchedule::Kind kind) noexcept {
  switch (kind) {
    case RateSchedule::Kind::kNone: return "none";
    case RateSchedule::Kind::kSteps: return "steps";
    case RateSchedule::Kind::kLteTrace: return "lte";
    case RateSchedule::Kind::kWifiTrace: return "wifi";
  }
  return "?";
}

}  // namespace qperc::net
