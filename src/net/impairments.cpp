#include "net/impairments.hpp"

#include <stdexcept>

namespace qperc::net {
namespace {

void require_probability(double p, const char* field) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string(field) + " must be in [0, 1], got " +
                                std::to_string(p));
  }
}

}  // namespace

void LinkImpairments::validate() const {
  require_probability(reorder_rate, "reorder_rate");
  require_probability(duplicate_rate, "duplicate_rate");
  require_probability(gilbert_elliott.enter_bad, "gilbert_elliott.enter_bad");
  require_probability(gilbert_elliott.exit_bad, "gilbert_elliott.exit_bad");
  require_probability(gilbert_elliott.loss_good, "gilbert_elliott.loss_good");
  require_probability(gilbert_elliott.loss_bad, "gilbert_elliott.loss_bad");
  if (reorder_delay_min < SimDuration::zero()) {
    throw std::invalid_argument("reorder_delay_min must be >= 0");
  }
  if (reorder_delay_max < reorder_delay_min) {
    throw std::invalid_argument("reorder_delay_max must be >= reorder_delay_min");
  }
  if (reordering_enabled() && reorder_delay_max <= SimDuration::zero()) {
    throw std::invalid_argument(
        "reorder_rate > 0 requires a positive reorder_delay_max jitter window");
  }
  if (gilbert_elliott.enabled() && gilbert_elliott.exit_bad <= 0.0) {
    throw std::invalid_argument(
        "gilbert_elliott.enter_bad > 0 requires exit_bad > 0 (the bad state must be "
        "escapable, or the link degrades permanently)");
  }
  if (outage_duration < SimDuration::zero()) {
    throw std::invalid_argument("outage_duration must be >= 0");
  }
  if (outage_start != kNoTime && outage_start < SimTime::zero()) {
    throw std::invalid_argument("outage_start must be >= 0");
  }
  if (outage_interval != SimDuration::zero() && outage_interval <= outage_duration) {
    throw std::invalid_argument(
        "outage_interval must exceed outage_duration (the link must come back up "
        "between flaps)");
  }
  if (policer_enabled() && policer_burst_bytes < 1500) {
    throw std::invalid_argument(
        "policer_burst_bytes must be at least one MTU (1500) when policer_rate is "
        "set, or no full-size packet can ever pass");
  }
}

}  // namespace qperc::net
