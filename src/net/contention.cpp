#include "net/contention.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace qperc::net {

std::string_view to_string(CrossMix mix) {
  switch (mix) {
    case CrossMix::kCubic: return "cubic";
    case CrossMix::kReno: return "reno";
    case CrossMix::kBbr: return "bbr";
    case CrossMix::kQuic: return "quic";
    case CrossMix::kMixed: return "mixed";
  }
  return "cubic";  // unreachable with valid input
}

CrossMix parse_cross_mix(std::string_view text) {
  if (text == "cubic") return CrossMix::kCubic;
  if (text == "reno") return CrossMix::kReno;
  if (text == "bbr") return CrossMix::kBbr;
  if (text == "quic") return CrossMix::kQuic;
  if (text == "mixed") return CrossMix::kMixed;
  throw std::invalid_argument("unknown cross-traffic mix: '" + std::string(text) +
                              "' (expected cubic|reno|bbr|quic|mixed)");
}

void ContentionConfig::validate() const {
  if (flows > 4096) {
    throw std::invalid_argument("ContentionConfig: flows " + std::to_string(flows) +
                                " out of range (max 4096)");
  }
  if (start_stagger < SimDuration::zero()) {
    throw std::invalid_argument("ContentionConfig: start_stagger must be >= 0");
  }
  if (off_time < SimDuration::zero()) {
    throw std::invalid_argument("ContentionConfig: off_time must be >= 0");
  }
  if (!std::isfinite(access_rate_scale) || access_rate_scale < 1.0) {
    throw std::invalid_argument(
        "ContentionConfig: access_rate_scale must be finite and >= 1 "
        "(access links must not be the bottleneck)");
  }
  if (access_delay < SimDuration::zero()) {
    throw std::invalid_argument("ContentionConfig: access_delay must be >= 0");
  }
}

}  // namespace qperc::net
