// Packet representation shared by every emulated protocol stack.
#pragma once

#include <cstdint>

namespace qperc::net {

/// Identifies one transport connection end-to-end (client-assigned).
enum class FlowId : std::uint64_t {};
/// Identifies one origin server behind the emulated access link.
enum class ServerId : std::uint32_t {};

/// Base class for protocol payloads. The network layer treats payloads as
/// opaque freight; TCP and QUIC derive their segment/packet types from this
/// and cast back on delivery (each flow knows its own protocol). Payloads are
/// trivially destructible by design — they live in the simulator's trial
/// arena (sim::Simulator::arena()) and are reclaimed wholesale at reset, so
/// the base is deliberately non-polymorphic: no vtable, no destructor hook.
struct Payload {};

/// A packet on the emulated wire. Copyable: queueing inside links copies the
/// descriptor while the payload is immutable state owned by the simulator
/// arena, valid until the end of the current trial (never across resets).
struct Packet {
  FlowId flow{0};
  ServerId dest_server{0};
  /// Total size on the wire, including all header overhead; this is what the
  /// link serializes and the queue counts.
  std::uint32_t wire_bytes = 0;
  const Payload* payload = nullptr;
};

/// Ethernet-ish MTU used to size queues and segments.
inline constexpr std::uint32_t kMtuBytes = 1500;

}  // namespace qperc::net
