// Counters shared by the TCP and QUIC stacks; feed the §4.3 retransmission
// analysis and the ablation benches.
#pragma once

#include <cstdint>

namespace qperc::net {

struct TransportStats {
  std::uint64_t data_packets_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  /// Timeouts later proven spurious (original-transmission ACK arrived) and
  /// undone, F-RTO style.
  std::uint64_t spurious_timeouts = 0;
  std::uint64_t tail_probes = 0;
  std::uint64_t congestion_events = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t handshake_packets = 0;
  std::uint64_t handshake_retransmissions = 0;

  TransportStats& operator+=(const TransportStats& other) {
    data_packets_sent += other.data_packets_sent;
    retransmissions += other.retransmissions;
    timeouts += other.timeouts;
    spurious_timeouts += other.spurious_timeouts;
    tail_probes += other.tail_probes;
    congestion_events += other.congestion_events;
    bytes_sent += other.bytes_sent;
    bytes_delivered += other.bytes_delivered;
    acks_sent += other.acks_sent;
    handshake_packets += other.handshake_packets;
    handshake_retransmissions += other.handshake_retransmissions;
    return *this;
  }
};

}  // namespace qperc::net
