// Composable link impairments beyond droptail + Bernoulli loss.
//
// Each impairment models a pathology the paper's Mahimahi testbed could not
// reproduce but real access networks exhibit (cf. Kakhki et al. and the
// H2-vs-H3 QoE benchmarks in PAPERS.md, where protocol orderings flip under
// reordering and bursty loss):
//
//   * reordering  — a fraction of packets picks up extra delay jitter after
//     serialization, overtaking later packets (delay-jitter model with a
//     configurable window),
//   * duplication — a fraction of packets is delivered twice,
//   * Gilbert–Elliott loss — a two-state Markov chain (good/bad) with
//     per-state loss probabilities, producing correlated loss bursts on top
//     of the profile's independent Bernoulli stage,
//   * outages    — timed windows during which the link delivers nothing
//     (one-shot, or periodic "flaps"),
//   * policing   — a token-bucket policer applied after serialization: a
//     carrier-style rate cap that drops (never queues) traffic exceeding
//     `policer_rate` beyond a `policer_burst_bytes` allowance. Policed loss
//     arrives without any queueing-delay signature, the exact pathology
//     BBR's long-term bandwidth estimator (`lt_bw`, see src/cc/bbr.cpp)
//     exists to detect.
//
// All randomness draws from the owning Link's seeded Rng, and a disabled
// impairment performs no draws at all, so impairment-free profiles stay
// bit-exact against their goldens and the determinism lint stays green.
// (The policer is deterministic — it never draws.)
#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"
#include "util/units.hpp"

namespace qperc::net {

/// Two-state Markov (Gilbert–Elliott) loss model. The chain advances one
/// step per packet reaching the loss stage; each state applies its own loss
/// probability. Disabled (no transitions, no draws) until `enter_bad > 0`.
struct GilbertElliott {
  /// P(good -> bad) per packet.
  double enter_bad = 0.0;
  /// P(bad -> good) per packet.
  double exit_bad = 0.0;
  /// Loss probability while in the good state (usually 0).
  double loss_good = 0.0;
  /// Loss probability while in the bad state (the burst).
  double loss_bad = 0.0;

  [[nodiscard]] bool enabled() const noexcept { return enter_bad > 0.0; }

  friend bool operator==(const GilbertElliott&, const GilbertElliott&) = default;
};

/// Per-direction impairment configuration, applied by Link after the
/// serialization stage. Default-constructed == everything off.
struct LinkImpairments {
  /// Probability that a packet picks up extra delay in
  /// [reorder_delay_min, reorder_delay_max] on top of the propagation delay.
  double reorder_rate = 0.0;
  SimDuration reorder_delay_min{0};
  SimDuration reorder_delay_max{0};

  /// Probability that a delivered packet arrives twice. The copy trails the
  /// original by an independent draw from the reorder jitter window when one
  /// is configured, otherwise it arrives back-to-back.
  double duplicate_rate = 0.0;

  GilbertElliott gilbert_elliott{};

  /// First outage window opens at this simulation time (kNoTime = never).
  SimTime outage_start = kNoTime;
  /// Length of each outage window.
  SimDuration outage_duration{0};
  /// Interval between outage starts; zero means a single (one-shot) outage,
  /// otherwise the link flaps with this period. Must exceed outage_duration.
  SimDuration outage_interval{0};

  /// Token-bucket policer: sustained rate cap (zero = disabled) and the
  /// burst allowance in bytes. The bucket starts full; tokens refill at
  /// `policer_rate` and are capped at `policer_burst_bytes`; a packet whose
  /// wire bytes exceed the available tokens is dropped outright.
  DataRate policer_rate{};
  std::uint64_t policer_burst_bytes = 0;

  [[nodiscard]] bool reordering_enabled() const noexcept { return reorder_rate > 0.0; }
  [[nodiscard]] bool duplication_enabled() const noexcept { return duplicate_rate > 0.0; }
  [[nodiscard]] bool outages_enabled() const noexcept {
    return outage_start != kNoTime && outage_duration > SimDuration::zero();
  }
  [[nodiscard]] bool policer_enabled() const noexcept { return !policer_rate.is_zero(); }
  [[nodiscard]] bool any() const noexcept {
    return reordering_enabled() || duplication_enabled() || gilbert_elliott.enabled() ||
           outages_enabled() || policer_enabled();
  }

  /// True when `now` falls inside an outage window.
  [[nodiscard]] bool in_outage(SimTime now) const noexcept {
    if (!outages_enabled() || now < outage_start) return false;
    if (outage_interval <= SimDuration::zero()) {
      return now < outage_start + outage_duration;
    }
    const auto since = (now - outage_start).count() % outage_interval.count();
    return SimDuration{since} < outage_duration;
  }

  /// Throws std::invalid_argument naming the offending field when any value
  /// is out of range (probabilities outside [0,1], inverted jitter window,
  /// an outage interval shorter than the outage itself, ...). Not
  /// QPERC_COLD_PATH: unconditional per-trial callers would inherit the
  /// coldness (see NetworkProfile::validate).
  void validate() const;

  friend bool operator==(const LinkImpairments&, const LinkImpairments&) = default;
};

}  // namespace qperc::net
