#include "net/link.hpp"

#include <algorithm>
#include <utility>

namespace qperc::net {

Link::Link(sim::Simulator& simulator, DataRate rate, SimDuration propagation_delay,
           double loss_rate, std::uint64_t queue_capacity_bytes, Rng loss_rng,
           DeliverFn deliver)
    : simulator_(simulator),
      rate_(rate),
      propagation_delay_(propagation_delay),
      loss_rate_(loss_rate),
      queue_capacity_bytes_(queue_capacity_bytes),
      loss_rng_(loss_rng),
      deliver_(std::move(deliver)) {}

void Link::send(Packet packet) {
  ++stats_.packets_offered;
  // The untraced path folds the per-packet serialization-complete event into
  // arithmetic on busy_until_ — the dominant cost of a page-load trial is
  // event dispatch, and this halves the event count. With an observer or a
  // trace sink attached the event-driven path runs instead, so per-packet
  // notifications keep their original timestamps. Both paths draw from the
  // loss RNG in serialization (FIFO = send) order and share the busy clock,
  // so they produce identical streams and identical delivery times.
  if (observer_ || simulator_.trace() != nullptr || serializing_) {
    send_traced(std::move(packet));
  } else {
    send_fast(std::move(packet));
  }
}

void Link::drain_completed() {
  // A completion landing at exactly this instant counts as done: its
  // completion event was scheduled a full transmission time ago, before the
  // event performing this send, so the event-driven ordering fires it first.
  // Must agree with the queued_bytes() accessor or a sender polling it could
  // spin on a capacity check that never passes.
  while (!completions_.empty() && completions_.front().done <= simulator_.now()) {
    queued_bytes_ -= completions_.front().wire_bytes;
    completions_.pop_front();
  }
}

void Link::send_fast(Packet&& packet) {
  drain_completed();
  if (queued_bytes_ + packet.wire_bytes > queue_capacity_bytes_) {
    ++stats_.drops_queue_full;
    notify(LinkEvent::kDroppedQueueFull, packet);
    return;
  }
  queued_bytes_ += packet.wire_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  notify(LinkEvent::kEnqueued, packet);
  const SimTime start = std::max(simulator_.now(), busy_until_);
  const SimTime done = serialize_end(start, packet.wire_bytes);
  busy_until_ = done;
  completions_.push_back(PendingDone{done, packet.wire_bytes});
  decide_fate(packet, done);
}

void Link::send_traced(Packet&& packet) {
  if (queued_bytes_ + packet.wire_bytes > queue_capacity_bytes_) {
    ++stats_.drops_queue_full;
    notify(LinkEvent::kDroppedQueueFull, packet);
    return;
  }
  queued_bytes_ += packet.wire_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  notify(LinkEvent::kEnqueued, packet);
  queue_.push_back(std::move(packet));
  if (!serializing_) start_serialization();
}

SimTime Link::serialize_end(SimTime start, std::uint64_t wire_bytes) const {
  if (!schedule_.enabled()) return start + rate_.transmission_time(wire_bytes);
  // Piecewise integration: serialize as much of the packet as the current
  // rate span allows, carry the remainder into the next span. The schedule's
  // rate floor (RateSchedule::kMinRateBps) bounds how many spans one packet
  // can straddle; the iteration guard below is pure paranoia.
  SimTime t = start;
  double remaining = static_cast<double>(wire_bytes);
  for (int guard = 0; guard < 4096; ++guard) {
    const DataRate rate = schedule_.rate_at(t);
    const SimTime boundary = schedule_.next_change_after(t);
    const SimDuration needed = from_seconds(remaining / rate.bytes_per_second_d());
    if (boundary == kNoTime || t + needed <= boundary) return t + needed;
    remaining -= rate.bytes_per_second_d() * to_seconds(boundary - t);
    if (remaining < 0.0) remaining = 0.0;
    t = boundary;
  }
  return t + from_seconds(remaining / schedule_.rate_at(t).bytes_per_second_d());
}

bool Link::policed(const Packet& packet, SimTime done) {
  if (!impairments_.policer_enabled()) return false;
  const double burst = static_cast<double>(impairments_.policer_burst_bytes);
  if (done > policer_refilled_) {
    const double refill = impairments_.policer_rate.bytes_per_second_d() *
                          to_seconds(done - policer_refilled_);
    policer_tokens_ = std::min(burst, policer_tokens_ + refill);
    policer_refilled_ = done;
  }
  const double bytes = static_cast<double>(packet.wire_bytes);
  if (policer_tokens_ < bytes) return true;
  policer_tokens_ -= bytes;
  return false;
}

bool Link::bursty_loss() {
  const GilbertElliott& ge = impairments_.gilbert_elliott;
  if (!ge.enabled()) return false;
  if (ge_bad_) {
    if (loss_rng_.bernoulli(ge.exit_bad)) ge_bad_ = false;
  } else {
    if (loss_rng_.bernoulli(ge.enter_bad)) ge_bad_ = true;
  }
  return loss_rng_.bernoulli(ge_bad_ ? ge.loss_bad : ge.loss_good);
}

SimDuration Link::jitter_draw() {
  return SimDuration{loss_rng_.uniform_int(impairments_.reorder_delay_min.count(),
                                           impairments_.reorder_delay_max.count())};
}

void Link::decide_fate(const Packet& packet, SimTime done) {
  // Random loss models the lossy wireless segment beyond the bottleneck; the
  // packet has already consumed its serialization slot. This stays the first
  // (and, with impairments off, only) draw so impairment-free profiles keep
  // their exact RNG stream and golden traces.
  if (loss_rng_.bernoulli(loss_rate_)) {
    ++stats_.drops_random_loss;
    notify(LinkEvent::kDroppedRandomLoss, packet);
  } else if (impairments_.in_outage(done)) {
    ++stats_.drops_outage;
    notify(LinkEvent::kDroppedOutage, packet);
  } else if (bursty_loss()) {
    ++stats_.drops_burst_loss;
    notify(LinkEvent::kDroppedBurstLoss, packet);
  } else if (policed(packet, done)) {
    // Policing comes after the stochastic stages so a policed profile keeps
    // the same loss-RNG stream; the drop itself is deterministic. Dropping
    // post-serialization (no queueing signature) is exactly the carrier
    // token-bucket pathology BBR's lt_bw estimator detects.
    ++stats_.drops_policer;
    notify(LinkEvent::kDroppedPolicer, packet);
  } else {
    SimDuration delay = propagation_delay_;
    if (impairments_.reordering_enabled() &&
        loss_rng_.bernoulli(impairments_.reorder_rate)) {
      const SimDuration extra = jitter_draw();
      delay += extra;
      ++stats_.reordered;
      notify(LinkEvent::kReordered, packet, static_cast<std::uint64_t>(extra.count()));
    }
    schedule_delivery_at(packet, done + delay);
    if (impairments_.duplication_enabled() &&
        loss_rng_.bernoulli(impairments_.duplicate_rate)) {
      ++stats_.duplicates;
      notify(LinkEvent::kDuplicated, packet);
      // The copy trails the original; with no jitter window configured it
      // lands at the same instant but after the original in FIFO order.
      const SimDuration lag = impairments_.reorder_delay_max > SimDuration::zero()
                                  ? jitter_draw()
                                  : SimDuration::zero();
      schedule_delivery_at(packet, done + delay + lag);
    }
  }
}

void Link::schedule_delivery_at(const Packet& packet, SimTime when) {
  simulator_.schedule_at(when, [this, packet]() mutable {
    ++stats_.packets_delivered;
    stats_.bytes_delivered += packet.wire_bytes;
    notify(LinkEvent::kDelivered, packet);
    deliver_(std::move(packet));
  });
}

void Link::start_serialization() {
  if (queue_.empty()) {
    serializing_ = false;
    return;
  }
  serializing_ = true;
  const Packet packet = queue_.pop_front();
  // Respect any backlog the fast path accounted for arithmetically, so an
  // observer attaching mid-flight never overlaps two serializations.
  const SimTime done =
      serialize_end(std::max(simulator_.now(), busy_until_), packet.wire_bytes);
  busy_until_ = done;
  simulator_.schedule_at(done, [this, packet]() mutable {
    queued_bytes_ -= packet.wire_bytes;
    decide_fate(packet, simulator_.now());
    start_serialization();
  });
}

}  // namespace qperc::net
