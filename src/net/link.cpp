#include "net/link.hpp"

#include <algorithm>
#include <utility>

namespace qperc::net {

Link::Link(sim::Simulator& simulator, DataRate rate, SimDuration propagation_delay,
           double loss_rate, std::uint64_t queue_capacity_bytes, Rng loss_rng,
           DeliverFn deliver)
    : simulator_(simulator),
      rate_(rate),
      propagation_delay_(propagation_delay),
      loss_rate_(loss_rate),
      queue_capacity_bytes_(queue_capacity_bytes),
      loss_rng_(loss_rng),
      deliver_(std::move(deliver)) {}

void Link::send(Packet packet) {
  ++stats_.packets_offered;
  if (queued_bytes_ + packet.wire_bytes > queue_capacity_bytes_) {
    ++stats_.drops_queue_full;
    notify(LinkEvent::kDroppedQueueFull, packet);
    return;
  }
  queued_bytes_ += packet.wire_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  notify(LinkEvent::kEnqueued, packet);
  queue_.push_back(std::move(packet));
  if (!serializing_) start_serialization();
}

void Link::start_serialization() {
  if (queue_.empty()) {
    serializing_ = false;
    return;
  }
  serializing_ = true;
  const Packet packet = queue_.pop_front();
  const SimDuration wire_time = rate_.transmission_time(packet.wire_bytes);
  simulator_.schedule_in(wire_time, [this, packet]() mutable {
    queued_bytes_ -= packet.wire_bytes;
    // Random loss models the lossy wireless segment beyond the bottleneck;
    // the packet has already consumed its serialization slot.
    if (loss_rng_.bernoulli(loss_rate_)) {
      ++stats_.drops_random_loss;
      notify(LinkEvent::kDroppedRandomLoss, packet);
    } else {
      simulator_.schedule_in(propagation_delay_, [this, packet = std::move(packet)]() mutable {
        ++stats_.packets_delivered;
        stats_.bytes_delivered += packet.wire_bytes;
        notify(LinkEvent::kDelivered, packet);
        deliver_(std::move(packet));
      });
    }
    start_serialization();
  });
}

}  // namespace qperc::net
