// One-directional emulated link: droptail queue -> serialization at a fixed
// or scheduled rate -> propagation delay -> Bernoulli random loss -> optional
// impairments (Gilbert–Elliott bursty loss, timed outages, token-bucket
// policing, reordering jitter, duplication).
//
// This mirrors the Mahimahi link shells the paper's testbed is built from:
// a byte-accurate bottleneck with a queue sized in milliseconds (Table 2:
// 200 ms everywhere except DSL's 12 ms) plus an independent random-loss
// stage for the in-flight networks. The impairment stage (see
// net/impairments.hpp) extends that vocabulary to the pathologies Mahimahi
// could not emulate; with impairments disabled the link performs exactly the
// same RNG draws as before, so goldens stay bit-exact.
//
// With a RateSchedule installed the serializer's rate varies over time:
// serialize_end() integrates capacity piecewise across rate boundaries, so a
// rate change mid-backlog re-derives the busy clock byte-accurately. Both the
// arithmetic fast path and the event-driven observed path compute completion
// times through the same serialize_end() off the shared busy_until_ clock,
// which is what keeps the two paths equivalent under schedules (the PR 3
// fast/observed contract). A disabled schedule takes the original
// single-multiply path and is bit-exact with the pre-schedule link.
#pragma once

#include <cstdint>

#include "net/impairments.hpp"
#include "net/packet.hpp"
#include "net/rate_schedule.hpp"
#include "sim/simulator.hpp"
#include "util/function.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace qperc::net {

/// Counters exposed for tests and the Table-2 validation bench.
struct LinkStats {
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t drops_random_loss = 0;
  std::uint64_t drops_queue_full = 0;
  std::uint64_t drops_burst_loss = 0;  // Gilbert–Elliott correlated loss
  std::uint64_t drops_outage = 0;      // packet hit a timed outage window
  std::uint64_t drops_policer = 0;     // token-bucket policer exhausted
  std::uint64_t duplicates = 0;        // extra copies scheduled for delivery
  std::uint64_t reordered = 0;         // packets given extra delay jitter
  std::uint64_t max_queue_bytes = 0;
};

/// Per-packet lifecycle events a Link can report to an observer.
enum class LinkEvent {
  kEnqueued,
  kDroppedQueueFull,
  kDroppedRandomLoss,
  kDelivered,
  kDroppedBurstLoss,
  kDroppedOutage,
  kDuplicated,
  kReordered,
  kDroppedPolicer,
};

[[nodiscard]] constexpr trace::EventType to_trace_event(LinkEvent event) noexcept {
  switch (event) {
    case LinkEvent::kEnqueued: return trace::EventType::kLinkEnqueued;
    case LinkEvent::kDroppedQueueFull: return trace::EventType::kLinkDroppedQueueFull;
    case LinkEvent::kDroppedRandomLoss: return trace::EventType::kLinkDroppedRandomLoss;
    case LinkEvent::kDelivered: return trace::EventType::kLinkDelivered;
    case LinkEvent::kDroppedBurstLoss: return trace::EventType::kLinkDroppedBurstLoss;
    case LinkEvent::kDroppedOutage: return trace::EventType::kLinkDroppedOutage;
    case LinkEvent::kDuplicated: return trace::EventType::kLinkDuplicated;
    case LinkEvent::kReordered: return trace::EventType::kLinkReordered;
    case LinkEvent::kDroppedPolicer: return trace::EventType::kLinkDroppedPolicer;
  }
  return trace::EventType::kLinkEnqueued;  // unreachable with valid input
}

class Link {
 public:
  // Same small-buffer callable vocabulary as Simulator::Callback: a delivery
  // hook captures at most a couple of pointers, so installing and invoking
  // one never allocates.
  using DeliverFn = SmallFunction<void(Packet)>;
  using Observer = SmallFunction<void(LinkEvent, const Packet&)>;

  /// `queue_capacity_bytes` bounds the droptail queue (excluding the packet
  /// currently being serialized). `loss_rate` is applied per packet after the
  /// queue, i.e. queued packets can still be lost "on the wire".
  Link(sim::Simulator& simulator, DataRate rate, SimDuration propagation_delay,
       double loss_rate, std::uint64_t queue_capacity_bytes, Rng loss_rng,
       DeliverFn deliver);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offers a packet to the link; it is queued, dropped (tail-drop), or lost.
  void send(Packet packet);

  /// Installs the impairment configuration (validated). Safe to call before
  /// any traffic; changing it mid-flight only affects future packets. The
  /// policer's token bucket starts full and refills from this instant.
  void set_impairments(const LinkImpairments& impairments) {
    impairments.validate();
    impairments_ = impairments;
    policer_tokens_ = static_cast<double>(impairments.policer_burst_bytes);
    policer_refilled_ = simulator_.now();
  }
  [[nodiscard]] const LinkImpairments& impairments() const noexcept { return impairments_; }

  /// Installs a time-varying serialization-rate schedule (validated). An
  /// enabled schedule overrides the constructor rate; pass a default
  /// RateSchedule to return to the fixed rate.
  void set_schedule(const RateSchedule& schedule) {
    schedule.validate();
    schedule_ = schedule;
  }
  [[nodiscard]] const RateSchedule& schedule() const noexcept { return schedule_; }

  /// Installs a per-packet observer (tracing); pass nullptr to remove.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Direction tag carried in the `value` field of this link's trace events
  /// (0 = uplink, 1 = downlink); set by the owning EmulatedNetwork.
  void set_trace_direction(std::uint64_t direction) noexcept { trace_direction_ = direction; }

  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }
  /// Bytes queued or serializing as of now(). On the arithmetic fast path the
  /// decrement for a finished serialization is applied lazily, so this sums
  /// the not-yet-drained completions on the fly.
  [[nodiscard]] std::uint64_t queued_bytes() const noexcept {
    std::uint64_t done = 0;
    for (std::size_t i = 0; i < completions_.size(); ++i) {
      const PendingDone& c = completions_.at(i);
      if (c.done <= simulator_.now()) done += c.wire_bytes;
    }
    return queued_bytes_ - done;
  }
  [[nodiscard]] DataRate rate() const noexcept { return rate_; }
  [[nodiscard]] SimDuration propagation_delay() const noexcept { return propagation_delay_; }
  /// Droptail capacity (the fairness report pairs this with
  /// `stats().max_queue_bytes` to report peak occupancy).
  [[nodiscard]] std::uint64_t queue_capacity_bytes() const noexcept {
    return queue_capacity_bytes_;
  }

 private:
  /// A serialization the fast path has accounted for arithmetically but whose
  /// queue-occupancy decrement has not been applied yet.
  struct PendingDone {
    SimTime done{0};
    std::uint64_t wire_bytes = 0;
  };

  void send_fast(Packet&& packet);
  void send_traced(Packet&& packet);
  /// Applies the queue-occupancy decrements for fast-path serializations that
  /// finished at or before now() (the accessor above uses the same rule).
  void drain_completed();
  /// When a serialization starting at `start` finishes. Without a schedule:
  /// one multiply at the fixed rate (bit-exact with the pre-schedule link).
  /// With one: piecewise integration across the schedule's rate boundaries,
  /// so a step mid-packet stretches (or shrinks) the tail of the packet at
  /// the new rate, byte-accurately. Both serialization paths call this off
  /// the shared busy clock, which keeps them equivalent under schedules.
  [[nodiscard]] SimTime serialize_end(SimTime start, std::uint64_t wire_bytes) const;
  /// Refills the policer bucket up to `done` and consumes or drops. False
  /// (never polices) when the policer is disabled; no RNG draws either way.
  bool policed(const Packet& packet, SimTime done);
  /// Runs the loss/impairment decision chain for a packet whose serialization
  /// ends at `done`, scheduling delivery events as appropriate. RNG draw
  /// order is the serialization (FIFO) order on both paths, so the two paths
  /// consume an identical stream.
  void decide_fate(const Packet& packet, SimTime done);
  void start_serialization();
  void schedule_delivery_at(const Packet& packet, SimTime when);
  /// Advances the Gilbert–Elliott chain one step and draws the state's loss
  /// probability. No draws at all while the model is disabled.
  bool bursty_loss();
  /// Uniform draw from the configured reorder jitter window.
  SimDuration jitter_draw();

  sim::Simulator& simulator_;
  DataRate rate_;
  SimDuration propagation_delay_{0};       // set by the constructor
  double loss_rate_ = 0.0;                 // set by the constructor
  std::uint64_t queue_capacity_bytes_ = 0; // set by the constructor
  Rng loss_rng_;
  DeliverFn deliver_;
  Observer observer_;
  std::uint64_t trace_direction_ = 0;
  LinkImpairments impairments_{};
  bool ge_bad_ = false;  // Gilbert–Elliott chain state
  RateSchedule schedule_{};
  /// Token-bucket policer state: fractional tokens (bytes) and the time the
  /// bucket was last refilled. decide_fate() sees packets in serialization
  /// order on both paths, so refills advance monotonically.
  double policer_tokens_ = 0.0;
  SimTime policer_refilled_{0};

  void notify(LinkEvent event, const Packet& packet, std::uint64_t id = 0) {
    if (observer_) observer_(event, packet);
    if (simulator_.trace() != nullptr) {
      simulator_.trace_event(to_trace_event(event), trace::Endpoint::kNone,
                             static_cast<std::uint64_t>(packet.flow), id,
                             packet.wire_bytes, trace_direction_);
    }
  }

  /// Droptail queue over a reused slab: once the ring has grown to the
  /// episode's high-water mark, enqueue/dequeue recycle the same packet
  /// descriptors instead of churning deque blocks. Only the traced (slow)
  /// path stores packets here; the fast path is purely arithmetic.
  RingBuffer<Packet> queue_;
  std::uint64_t queued_bytes_ = 0;
  bool serializing_ = false;
  /// When the serializer finishes its current backlog. Shared by both paths
  /// so a link stays byte-accurate across an observer attach/detach.
  SimTime busy_until_{0};
  /// Fast-path serializations whose queued_bytes_ decrement is still pending.
  RingBuffer<PendingDone> completions_;
  LinkStats stats_;
};

}  // namespace qperc::net
