#include "net/emulated_network.hpp"

#include <algorithm>
#include <utility>

namespace qperc::net {

namespace {

/// Access queues are sized like the bottleneck's (rate x queue delay) but
/// floored generously: the access link is provisioned above the bottleneck,
/// so its queue must never be the drop point.
[[nodiscard]] std::uint64_t access_queue_bytes(DataRate rate, SimDuration queue_delay) {
  return std::max<std::uint64_t>(rate.bytes_in(queue_delay), 64 * 1024);
}

}  // namespace

EmulatedNetwork::EmulatedNetwork(sim::Simulator& simulator, const NetworkProfile& profile,
                                 Rng rng, const ContentionConfig& contention)
    : simulator_(simulator),
      profile_(profile),
      contention_(contention),
      uplink_(simulator, profile.uplink, profile.min_rtt / 2, profile.loss_rate,
              profile.uplink_queue_bytes(), rng.fork("uplink-loss"),
              [this](Packet p) { deliver_uplink(std::move(p)); }),
      downlink_(simulator, profile.downlink, profile.min_rtt / 2, profile.loss_rate,
                profile.downlink_queue_bytes(), rng.fork("downlink-loss"),
                [this](Packet p) { deliver_downlink(std::move(p)); }),
      client_flows_(ArenaAllocator<std::pair<const std::uint64_t, Handler>>(
          simulator.arena())),
      server_flows_(ArenaAllocator<std::pair<const std::uint64_t, Handler>>(
          simulator.arena())),
      flow_endpoints_(ArenaAllocator<std::pair<const std::uint64_t, EndpointId>>(
          simulator.arena())),
      // The disabled path derives no extra randomness: fork("access") happens
      // only when contention is on (the placeholder Rng(0) is never drawn).
      access_rng_(contention.enabled() ? rng.fork("access") : Rng(0)) {
  uplink_.set_trace_direction(0);
  downlink_.set_trace_direction(1);
  if (profile.impairments.any()) {
    uplink_.set_impairments(profile.impairments);
    downlink_.set_impairments(profile.impairments);
  }
  // The schedule applies to the bottleneck downlink only: the uplink keeps
  // its fixed provisioned rate, matching the paper's downlink-bottleneck
  // testbed and the Mahimahi convention of tracing the downstream direction.
  if (profile.downlink_schedule.enabled()) {
    downlink_.set_schedule(profile.downlink_schedule);
  }
}

EmulatedNetwork::~EmulatedNetwork() {
  // Endpoints are arena-placed; the arena reclaims storage without running
  // destructors, so run them here (Link owns RingBuffer slabs on the heap).
  for (Endpoint* endpoint : endpoints_) endpoint->~Endpoint();
}

EmulatedNetwork::Endpoint::Endpoint(sim::Simulator& simulator,
                                    const ContentionConfig& contention,
                                    const NetworkProfile& profile, Rng up_rng, Rng down_rng,
                                    EmulatedNetwork* network)
    : up(simulator, profile.uplink.scaled(contention.access_rate_scale),
         contention.access_delay, /*loss_rate=*/0.0,
         access_queue_bytes(profile.uplink.scaled(contention.access_rate_scale),
                            profile.queue_delay),
         std::move(up_rng), [network](Packet p) { network->uplink_.send(std::move(p)); }),
      down(simulator, profile.downlink.scaled(contention.access_rate_scale),
           contention.access_delay, /*loss_rate=*/0.0,
           access_queue_bytes(profile.downlink.scaled(contention.access_rate_scale),
                              profile.queue_delay),
           std::move(down_rng),
           [network](Packet p) { network->deliver_to_client(std::move(p)); }) {
  up.set_trace_direction(0);
  down.set_trace_direction(1);
}

EmulatedNetwork::EndpointId EmulatedNetwork::add_endpoint() {
  // Access links are clean (no random loss, no impairments): the shared
  // bottleneck is where loss and queueing happen, exactly like the dumbbell
  // topologies in the fairness literature.
  Arena& arena = simulator_.arena();
  const std::uint64_t index = endpoints_.size();
  auto* storage =
      static_cast<Endpoint*>(arena.allocate(sizeof(Endpoint), alignof(Endpoint)));
  ::new (storage) Endpoint(simulator_, contention_, profile_,
                           access_rng_.fork(index * 2), access_rng_.fork(index * 2 + 1),
                           this);
  endpoints_.push_back(arena, storage);
  return static_cast<EndpointId>(endpoints_.size());
}

void EmulatedNetwork::set_flow_endpoint(EndpointId endpoint) {
  current_endpoint_ = endpoint;
}

void EmulatedNetwork::register_client_flow(FlowId flow, Handler handler) {
  client_flows_[static_cast<std::uint64_t>(flow)] = std::move(handler);
}

void EmulatedNetwork::unregister_client_flow(FlowId flow) {
  client_flows_.erase(static_cast<std::uint64_t>(flow));
}

void EmulatedNetwork::register_server_flow(FlowId flow, Handler handler) {
  server_flows_[static_cast<std::uint64_t>(flow)] = std::move(handler);
}

void EmulatedNetwork::unregister_server_flow(FlowId flow) {
  server_flows_.erase(static_cast<std::uint64_t>(flow));
}

void EmulatedNetwork::client_send(Packet packet) {
  if (!endpoints_.empty()) {
    if (const auto it = flow_endpoints_.find(static_cast<std::uint64_t>(packet.flow));
        it != flow_endpoints_.end()) {
      endpoints_[it->second - 1]->up.send(std::move(packet));
      return;
    }
  }
  uplink_.send(std::move(packet));
}

void EmulatedNetwork::server_send(Packet packet) { downlink_.send(std::move(packet)); }

void EmulatedNetwork::deliver_uplink(Packet packet) {
  if (const auto it = server_flows_.find(static_cast<std::uint64_t>(packet.flow));
      it != server_flows_.end()) {
    it->second(std::move(packet));
  }
}

void EmulatedNetwork::deliver_downlink(Packet packet) {
  if (!endpoints_.empty()) {
    if (const auto it = flow_endpoints_.find(static_cast<std::uint64_t>(packet.flow));
        it != flow_endpoints_.end()) {
      endpoints_[it->second - 1]->down.send(std::move(packet));
      return;
    }
  }
  deliver_to_client(std::move(packet));
}

void EmulatedNetwork::deliver_to_client(Packet packet) {
  if (const auto it = client_flows_.find(static_cast<std::uint64_t>(packet.flow));
      it != client_flows_.end()) {
    it->second(std::move(packet));
  }
}

}  // namespace qperc::net
