#include "net/emulated_network.hpp"

#include <utility>

namespace qperc::net {

EmulatedNetwork::EmulatedNetwork(sim::Simulator& simulator, const NetworkProfile& profile,
                                 Rng rng)
    : simulator_(simulator),
      profile_(profile),
      uplink_(simulator, profile.uplink, profile.min_rtt / 2, profile.loss_rate,
              profile.uplink_queue_bytes(), rng.fork("uplink-loss"),
              [this](Packet p) { deliver_uplink(std::move(p)); }),
      downlink_(simulator, profile.downlink, profile.min_rtt / 2, profile.loss_rate,
                profile.downlink_queue_bytes(), rng.fork("downlink-loss"),
                [this](Packet p) { deliver_downlink(std::move(p)); }),
      client_flows_(ArenaAllocator<std::pair<const std::uint64_t, Handler>>(
          simulator.arena())),
      server_flows_(ArenaAllocator<std::pair<const std::uint64_t, Handler>>(
          simulator.arena())) {
  uplink_.set_trace_direction(0);
  downlink_.set_trace_direction(1);
  if (profile.impairments.any()) {
    uplink_.set_impairments(profile.impairments);
    downlink_.set_impairments(profile.impairments);
  }
}

void EmulatedNetwork::register_client_flow(FlowId flow, Handler handler) {
  client_flows_[static_cast<std::uint64_t>(flow)] = std::move(handler);
}

void EmulatedNetwork::unregister_client_flow(FlowId flow) {
  client_flows_.erase(static_cast<std::uint64_t>(flow));
}

void EmulatedNetwork::register_server_flow(FlowId flow, Handler handler) {
  server_flows_[static_cast<std::uint64_t>(flow)] = std::move(handler);
}

void EmulatedNetwork::unregister_server_flow(FlowId flow) {
  server_flows_.erase(static_cast<std::uint64_t>(flow));
}

void EmulatedNetwork::client_send(Packet packet) { uplink_.send(std::move(packet)); }

void EmulatedNetwork::server_send(Packet packet) { downlink_.send(std::move(packet)); }

void EmulatedNetwork::deliver_uplink(Packet packet) {
  if (const auto it = server_flows_.find(static_cast<std::uint64_t>(packet.flow));
      it != server_flows_.end()) {
    it->second(std::move(packet));
  }
}

void EmulatedNetwork::deliver_downlink(Packet packet) {
  if (const auto it = client_flows_.find(static_cast<std::uint64_t>(packet.flow));
      it != client_flows_.end()) {
    it->second(std::move(packet));
  }
}

}  // namespace qperc::net
