#include "net/rate_schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace qperc::net {
namespace {

// Epoch granularities for the synthetic traces. LTE capacity moves on the
// fast-fading timescale (tens of ms); Wi-Fi rate adaptation reacts more
// slowly (per-aggregate, ~100 ms) but holds a chosen MCS for a while.
constexpr std::int64_t kLteEpochNs = 50'000'000;    // 50 ms
constexpr std::int64_t kWifiEpochNs = 100'000'000;  // 100 ms
constexpr std::uint64_t kLteSlowEpochs = 20;        // ~1 s shadowing scale
constexpr std::uint64_t kWifiDwellEpochs = 8;       // ~800 ms per MCS dwell

/// SplitMix64 finalizer over a composed counter: the whole "trace file" is
/// this one pure function of (seed, epoch, lane). No state, no RNG stream.
[[nodiscard]] std::uint64_t mix(std::uint64_t seed, std::uint64_t epoch,
                                std::uint64_t lane) noexcept {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (epoch * 3 + lane + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of the mix.
[[nodiscard]] double mix01(std::uint64_t seed, std::uint64_t epoch,
                           std::uint64_t lane) noexcept {
  return static_cast<double>(mix(seed, epoch, lane) >> 11) * 0x1.0p-53;
}

[[nodiscard]] DataRate floor_rate(double bps) noexcept {
  const double floored =
      std::max(bps, static_cast<double>(RateSchedule::kMinRateBps));
  return DataRate::bits_per_second(static_cast<std::uint64_t>(floored));
}

}  // namespace

RateSchedule RateSchedule::steps(const RateStep* begin, std::size_t count) {
  RateSchedule schedule;
  schedule.kind_ = Kind::kSteps;
  schedule.step_count_ = std::min(count, kMaxSteps);
  for (std::size_t i = 0; i < schedule.step_count_; ++i) schedule.steps_[i] = begin[i];
  return schedule;
}

RateSchedule RateSchedule::lte_trace(DataRate base, std::uint64_t seed) {
  RateSchedule schedule;
  schedule.kind_ = Kind::kLteTrace;
  schedule.base_ = base;
  schedule.seed_ = seed;
  return schedule;
}

RateSchedule RateSchedule::wifi_trace(DataRate base, std::uint64_t seed) {
  RateSchedule schedule;
  schedule.kind_ = Kind::kWifiTrace;
  schedule.base_ = base;
  schedule.seed_ = seed;
  return schedule;
}

DataRate RateSchedule::trace_rate(std::uint64_t epoch) const noexcept {
  const double base = static_cast<double>(base_.bps());
  if (kind_ == Kind::kLteTrace) {
    // Slow log-ish shadowing (~1 s) modulated by fast fading (~50 ms): the
    // product dips below a quarter of base and peaks near double, matching
    // the shape (not the microstructure) of Mahimahi's Verizon-LTE traces.
    const double slow = 0.45 + 0.9 * mix01(seed_, epoch / kLteSlowEpochs, 1);
    const double fast = 0.55 + 0.9 * mix01(seed_, epoch, 2);
    return floor_rate(base * slow * fast);
  }
  // Wi-Fi: dwell on one step of an MCS-like ladder (weighted toward the top
  // rates), with an occasional deep fade — contention or a far-field client
  // dragging the BSS down.
  const std::uint64_t h = mix(seed_, epoch / kWifiDwellEpochs, 3);
  if (h % 16 == 0) return floor_rate(base * 0.08);
  static constexpr double kLadder[8] = {1.0, 1.0, 1.0, 0.75, 0.75, 0.5, 0.5, 0.25};
  return floor_rate(base * kLadder[(h >> 8) % 8]);
}

DataRate RateSchedule::rate_at(SimTime t) const noexcept {
  switch (kind_) {
    case Kind::kNone: return DataRate{};
    case Kind::kSteps: {
      DataRate rate = steps_[0].rate;
      for (std::size_t i = 1; i < step_count_; ++i) {
        if (SimTime{steps_[i].at} > t) break;
        rate = steps_[i].rate;
      }
      return rate;
    }
    case Kind::kLteTrace:
      return trace_rate(static_cast<std::uint64_t>(t.count() / kLteEpochNs));
    case Kind::kWifiTrace:
      return trace_rate(static_cast<std::uint64_t>(t.count() / kWifiEpochNs));
  }
  return DataRate{};
}

SimTime RateSchedule::next_change_after(SimTime t) const noexcept {
  switch (kind_) {
    case Kind::kNone: return kNoTime;
    case Kind::kSteps:
      for (std::size_t i = 1; i < step_count_; ++i) {
        if (SimTime{steps_[i].at} > t) return SimTime{steps_[i].at};
      }
      return kNoTime;
    case Kind::kLteTrace:
      return SimTime{(t.count() / kLteEpochNs + 1) * kLteEpochNs};
    case Kind::kWifiTrace:
      return SimTime{(t.count() / kWifiEpochNs + 1) * kWifiEpochNs};
  }
  return kNoTime;
}

double RateSchedule::bytes_through(SimTime until) const {
  if (!enabled() || until <= SimTime::zero()) return 0.0;
  double bytes = 0.0;
  SimTime t{0};
  while (t < until) {
    const SimTime boundary = std::min(next_change_after(t), until);
    bytes += rate_at(t).bytes_per_second_d() * to_seconds(boundary - t);
    t = boundary;
  }
  return bytes;
}

void RateSchedule::validate() const {
  switch (kind_) {
    case Kind::kNone: return;
    case Kind::kSteps: {
      if (step_count_ == 0) {
        throw std::invalid_argument("rate schedule has no steps");
      }
      if (steps_[0].at != SimDuration::zero()) {
        throw std::invalid_argument(
            "rate schedule must define the rate from t=0 (first step at 0)");
      }
      for (std::size_t i = 0; i < step_count_; ++i) {
        if (steps_[i].rate.is_zero()) {
          throw std::invalid_argument("rate schedule step " + std::to_string(i) +
                                      " has zero rate");
        }
        if (i > 0 && steps_[i].at <= steps_[i - 1].at) {
          throw std::invalid_argument(
              "rate schedule steps must be strictly increasing in time (step " +
              std::to_string(i) + ")");
        }
      }
      return;
    }
    case Kind::kLteTrace:
    case Kind::kWifiTrace:
      if (base_.is_zero()) {
        throw std::invalid_argument("synthetic link trace needs a non-zero base rate");
      }
      return;
  }
}

}  // namespace qperc::net
