// The four emulated access networks of Table 2.
#pragma once

#include <string>
#include <vector>

#include "net/impairments.hpp"
#include "net/rate_schedule.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace qperc::net {

/// Which of the paper's four network settings a profile represents; used to
/// key study conditions and report tables.
enum class NetworkKind { kDsl, kLte, kDa2gc, kMss };

[[nodiscard]] std::string_view to_string(NetworkKind kind);

/// Parameters of one emulated access network (Table 2). Queue sizes are
/// expressed as a delay budget per direction, exactly like Mahimahi's
/// ms-sized droptail queues.
struct NetworkProfile {
  NetworkKind kind = NetworkKind::kDsl;
  std::string name;
  DataRate uplink;
  DataRate downlink;
  SimDuration min_rtt{0};
  /// Random loss probability, applied independently per direction.
  double loss_rate = 0.0;
  SimDuration queue_delay{0};
  /// Optional impairment layer, applied identically to both directions
  /// (reordering, duplication, bursty loss, outages, policing). Default: all
  /// off, which reproduces the paper's Mahimahi conditions exactly.
  LinkImpairments impairments{};
  /// Optional time-varying capacity for the *downlink* serializer (the
  /// direction the paper's bottleneck models; the uplink keeps its fixed
  /// rate). Default: disabled, i.e. the static Table-2 downlink rate.
  RateSchedule downlink_schedule{};

  /// Throws std::invalid_argument with an actionable message when any field
  /// is out of range (non-positive bandwidth, loss outside [0,1], negative
  /// delays, invalid impairments). Called by run_trial and the CLI before a
  /// profile reaches the simulator. Deliberately NOT QPERC_COLD_PATH: it is
  /// called unconditionally per trial, and GCC propagates coldness into any
  /// caller that cannot avoid a cold call — the error branches inside are
  /// compiler-split into .text.unlikely on their own.
  void validate() const;

  /// Droptail capacity of the given direction's queue in bytes
  /// (rate x queue delay, floored at two MTUs so tiny links stay usable).
  [[nodiscard]] std::uint64_t uplink_queue_bytes() const;
  [[nodiscard]] std::uint64_t downlink_queue_bytes() const;

  /// Bandwidth-delay product of the downstream path (used to size "tuned"
  /// socket buffers, Section 3).
  [[nodiscard]] std::uint64_t downlink_bdp_bytes() const;
};

/// Optional study-wide link-condition overlay on top of a Table-2 profile:
/// a synthetic variable-rate downlink trace and/or a token-bucket policer.
/// A value type (not a callback) so study specs can fold it into their
/// fingerprints and checkpoint/cache files can refuse to mix conditions.
struct LinkConditions {
  RateSchedule::Kind link_trace = RateSchedule::Kind::kNone;
  std::uint64_t link_trace_seed = 1;
  /// Zero rate disables the policer.
  DataRate policer_rate{};
  std::uint64_t policer_burst_bytes = 0;

  [[nodiscard]] bool any() const noexcept {
    return link_trace != RateSchedule::Kind::kNone || !policer_rate.is_zero();
  }
  /// Decorates `profile` in place (trace schedules derive from the profile's
  /// own downlink rate) and re-validates it.
  void apply(NetworkProfile& profile) const;
  /// Stable identity token for fingerprints and cache headers; empty-string
  /// equivalent ("none 1 0 0") when nothing is enabled.
  [[nodiscard]] std::string token() const;
};

/// DSL: median German household broadband, no artificial loss, 12 ms queue.
[[nodiscard]] NetworkProfile dsl_profile();
/// LTE: median German mobile link, higher RTT, 200 ms queue.
[[nodiscard]] NetworkProfile lte_profile();
/// DA2GC: in-flight WiFi, direct-air-to-ground cellular (lossy, slow).
[[nodiscard]] NetworkProfile da2gc_profile();
/// MSS: in-flight WiFi over a satellite link (very high RTT, 6% loss).
[[nodiscard]] NetworkProfile mss_profile();

/// All four study networks in the paper's order.
[[nodiscard]] const std::vector<NetworkProfile>& all_profiles();

[[nodiscard]] const NetworkProfile& profile_for(NetworkKind kind);

}  // namespace qperc::net
