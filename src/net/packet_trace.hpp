// Packet tracing: records per-packet link events for debugging, tests
// (e.g. asserting pacing gaps on the wire), and the trace_flow example.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "net/emulated_network.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace qperc::net {

enum class Direction { kUplink, kDownlink };

struct TraceRecord {
  SimTime time{0};
  Direction direction = Direction::kUplink;
  LinkEvent event = LinkEvent::kEnqueued;
  FlowId flow{0};
  std::uint32_t wire_bytes = 0;
};

/// Attaches to both links of an EmulatedNetwork and collects every packet
/// event. Detach (destroy) before the network; records remain valid.
class PacketTrace {
 public:
  PacketTrace(sim::Simulator& simulator, EmulatedNetwork& network);
  ~PacketTrace();
  PacketTrace(const PacketTrace&) = delete;
  PacketTrace& operator=(const PacketTrace&) = delete;

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept { return records_; }
  void clear() { records_.clear(); }

  /// Delivery timestamps on one direction, optionally for one flow
  /// (FlowId{0} = all flows) — handy for asserting wire spacing.
  [[nodiscard]] std::vector<SimTime> delivery_times(Direction direction,
                                                    FlowId flow = FlowId{0}) const;
  [[nodiscard]] std::size_t count(Direction direction, LinkEvent event) const;

  void print_csv(std::ostream& os) const;

 private:
  sim::Simulator& simulator_;
  EmulatedNetwork& network_;
  std::vector<TraceRecord> records_;
};

[[nodiscard]] std::string_view to_string(LinkEvent event);
[[nodiscard]] std::string_view to_string(Direction direction);

}  // namespace qperc::net
