#include "net/profile.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "net/packet.hpp"
#include "util/check.hpp"

namespace qperc::net {
namespace {

std::uint64_t queue_bytes(DataRate rate, SimDuration delay) {
  return std::max<std::uint64_t>(rate.bytes_in(delay), 2 * kMtuBytes);
}

// validate() runs per trial on the hot path; the happy path must stay
// allocation-free (scripts/analyze_hotpath.py proves it statically). All
// failure formatting — label lookup, concatenation, std::to_string — lives
// behind these cold noreturn barriers so only a compare-and-branch remains
// in hot text.
[[noreturn]] QPERC_COLD_PATH void invalid_profile(const NetworkProfile& profile,
                                                  const char* what) {
  const std::string label =
      profile.name.empty() ? std::string(to_string(profile.kind)) : profile.name;
  throw std::invalid_argument("invalid network profile '" + label + "': " + what);
}

[[noreturn]] QPERC_COLD_PATH void invalid_loss_rate(const NetworkProfile& profile) {
  invalid_profile(profile, ("loss_rate must be in [0, 1], got " +
                            std::to_string(profile.loss_rate))
                               .c_str());
}

}  // namespace

std::string_view to_string(NetworkKind kind) {
  switch (kind) {
    case NetworkKind::kDsl: return "DSL";
    case NetworkKind::kLte: return "LTE";
    case NetworkKind::kDa2gc: return "DA2GC";
    case NetworkKind::kMss: return "MSS";
  }
  return "?";
}

void NetworkProfile::validate() const {
  if (uplink.is_zero()) invalid_profile(*this, "uplink bandwidth must be > 0");
  if (downlink.is_zero()) invalid_profile(*this, "downlink bandwidth must be > 0");
  if (!(loss_rate >= 0.0 && loss_rate <= 1.0)) invalid_loss_rate(*this);
  if (min_rtt < SimDuration::zero()) invalid_profile(*this, "min_rtt must be >= 0");
  if (queue_delay <= SimDuration::zero()) invalid_profile(*this, "queue_delay must be > 0");
  try {
    impairments.validate();
    downlink_schedule.validate();
  } catch (const std::invalid_argument& e) {
    invalid_profile(*this, e.what());
  }
}

std::uint64_t NetworkProfile::uplink_queue_bytes() const {
  // Access uplinks are notoriously over-buffered (modem bufferbloat); the
  // ms-sized droptail models the *downlink* bottleneck the paper tunes.
  // Floor the uplink buffer at 32 kB so request/handshake fan-out is not
  // dropped by an unrealistically tiny 5-packet queue.
  return std::max<std::uint64_t>(queue_bytes(uplink, queue_delay), 32 * 1024);
}

std::uint64_t NetworkProfile::downlink_queue_bytes() const {
  return queue_bytes(downlink, queue_delay);
}

std::uint64_t NetworkProfile::downlink_bdp_bytes() const {
  return std::max<std::uint64_t>(bdp_bytes(downlink, min_rtt), 4 * kMtuBytes);
}

NetworkProfile dsl_profile() {
  return NetworkProfile{
      .kind = NetworkKind::kDsl,
      .name = "DSL",
      .uplink = DataRate::megabits_per_second(5.0),
      .downlink = DataRate::megabits_per_second(25.0),
      .min_rtt = milliseconds(24),
      .loss_rate = 0.0,
      .queue_delay = milliseconds(12),
  };
}

NetworkProfile lte_profile() {
  return NetworkProfile{
      .kind = NetworkKind::kLte,
      .name = "LTE",
      .uplink = DataRate::megabits_per_second(2.8),
      .downlink = DataRate::megabits_per_second(10.5),
      .min_rtt = milliseconds(74),
      .loss_rate = 0.0,
      .queue_delay = milliseconds(200),
  };
}

NetworkProfile da2gc_profile() {
  return NetworkProfile{
      .kind = NetworkKind::kDa2gc,
      .name = "DA2GC",
      .uplink = DataRate::megabits_per_second(0.468),
      .downlink = DataRate::megabits_per_second(0.468),
      .min_rtt = milliseconds(262),
      .loss_rate = 0.033,
      .queue_delay = milliseconds(200),
  };
}

NetworkProfile mss_profile() {
  return NetworkProfile{
      .kind = NetworkKind::kMss,
      .name = "MSS",
      .uplink = DataRate::megabits_per_second(1.89),
      .downlink = DataRate::megabits_per_second(1.89),
      .min_rtt = milliseconds(760),
      .loss_rate = 0.06,
      .queue_delay = milliseconds(200),
  };
}

void LinkConditions::apply(NetworkProfile& profile) const {
  if (link_trace == RateSchedule::Kind::kLteTrace) {
    profile.downlink_schedule = RateSchedule::lte_trace(profile.downlink, link_trace_seed);
  } else if (link_trace == RateSchedule::Kind::kWifiTrace) {
    profile.downlink_schedule = RateSchedule::wifi_trace(profile.downlink, link_trace_seed);
  } else if (link_trace == RateSchedule::Kind::kSteps) {
    throw std::invalid_argument(
        "link conditions: explicit step schedules cannot be derived per profile; "
        "use lte or wifi traces");
  }
  if (!policer_rate.is_zero()) {
    profile.impairments.policer_rate = policer_rate;
    profile.impairments.policer_burst_bytes = policer_burst_bytes;
  }
  profile.validate();
}

std::string LinkConditions::token() const {
  return std::string(to_string(link_trace)) + ' ' + std::to_string(link_trace_seed) +
         ' ' + std::to_string(policer_rate.bps()) + ' ' +
         std::to_string(policer_burst_bytes);
}

const std::vector<NetworkProfile>& all_profiles() {
  static const std::vector<NetworkProfile> profiles = {dsl_profile(), lte_profile(),
                                                       da2gc_profile(), mss_profile()};
  return profiles;
}

const NetworkProfile& profile_for(NetworkKind kind) {
  for (const auto& profile : all_profiles()) {
    if (profile.kind == kind) return profile;
  }
  throw std::invalid_argument("unknown network kind");
}

}  // namespace qperc::net
