// The testbed topology: client endpoints behind an emulated access network
// talking to many origin servers, all sharing the same bottleneck pair of
// links — exactly Mahimahi's shape (every replayed origin lives behind the
// one emulated interface).
//
// By default there is a single directly-attached endpoint (the browser) and
// the topology is identical to the paper's. With a ContentionConfig the
// network grows into a dumbbell: each cross-traffic endpoint gets its own
// access-link pair (faster than the bottleneck, so it shapes RTT without
// becoming the constraint) feeding the shared droptail bottleneck where the
// fairness fight happens. The contention-disabled path performs zero extra
// RNG draws and zero extra branches with observable effect, so single-flow
// goldens stay bit-exact.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "net/contention.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/profile.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"
#include "util/function.hpp"
#include "util/rng.hpp"

namespace qperc::net {

class EmulatedNetwork {
 public:
  /// Flow handlers share Link::DeliverFn's small-buffer callable type, so
  /// the sim layer has a single callable vocabulary (see util/function.hpp).
  using Handler = Link::DeliverFn;

  /// Identifies one client-side attachment point. 0 is the directly-attached
  /// default endpoint (the browser); ids from add_endpoint() sit behind a
  /// dedicated access-link pair.
  using EndpointId = std::uint32_t;
  static constexpr EndpointId kDirectEndpoint = 0;

  EmulatedNetwork(sim::Simulator& simulator, const NetworkProfile& profile, Rng rng,
                  const ContentionConfig& contention = {});
  ~EmulatedNetwork();
  EmulatedNetwork(const EmulatedNetwork&) = delete;
  EmulatedNetwork& operator=(const EmulatedNetwork&) = delete;

  /// Adds a client endpoint behind a fresh access-link pair (rate =
  /// contention.access_rate_scale x the bottleneck direction's rate; one-way
  /// delay contention.access_delay). Storage comes from the trial arena.
  [[nodiscard]] EndpointId add_endpoint();
  /// Flows allocated after this call attach to `endpoint` (until changed).
  /// The trial layer brackets each cross-traffic session's construction with
  /// this, because connections allocate their flow id in their constructor.
  void set_flow_endpoint(EndpointId endpoint);

  /// Registers the client-side handler for one flow; downlink packets of that
  /// flow are demultiplexed to it.
  void register_client_flow(FlowId flow, Handler handler);
  void unregister_client_flow(FlowId flow);
  /// Registers the server-side handler for one flow; uplink packets of that
  /// flow are demultiplexed to it. (Origin servers are a higher-level concept;
  /// `Packet::dest_server` is retained for accounting and per-origin delays.)
  void register_server_flow(FlowId flow, Handler handler);
  void unregister_server_flow(FlowId flow);

  /// Sends a packet from the client towards `packet.dest_server`; packets of
  /// flows behind an access endpoint traverse their access uplink first.
  void client_send(Packet packet);
  /// Sends a packet from a server back to the client of `packet.flow`; the
  /// shared bottleneck downlink comes first, then the flow's access downlink.
  void server_send(Packet packet);

  [[nodiscard]] const LinkStats& uplink_stats() const { return uplink_.stats(); }
  [[nodiscard]] const LinkStats& downlink_stats() const { return downlink_.stats(); }
  /// Direct link access (observers/tracing). These are the shared bottleneck
  /// links; access links are internal to their endpoints.
  [[nodiscard]] Link& uplink() { return uplink_; }
  [[nodiscard]] Link& downlink() { return downlink_; }
  [[nodiscard]] const NetworkProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] FlowId allocate_flow_id() {
    const FlowId flow{next_flow_id_++};
    if (current_endpoint_ != kDirectEndpoint) {
      flow_endpoints_[static_cast<std::uint64_t>(flow)] = current_endpoint_;
    }
    return flow;
  }
  [[nodiscard]] std::uint32_t endpoint_count() const noexcept {
    return static_cast<std::uint32_t>(endpoints_.size());
  }

 private:
  /// One cross-traffic attachment: an access-link pair between the endpoint
  /// and the shared bottleneck. Arena-placed (the pair dies with the trial);
  /// ~EmulatedNetwork runs the destructors explicitly because Arena::reset()
  /// never does.
  struct Endpoint {
    Endpoint(sim::Simulator& simulator, const ContentionConfig& contention,
             const NetworkProfile& profile, Rng up_rng, Rng down_rng,
             EmulatedNetwork* network);
    Link up;    // endpoint -> bottleneck uplink
    Link down;  // bottleneck downlink -> endpoint
  };

  void deliver_uplink(Packet packet);
  void deliver_downlink(Packet packet);
  void deliver_to_client(Packet packet);

  sim::Simulator& simulator_;
  NetworkProfile profile_;
  ContentionConfig contention_;
  // Both bottleneck links live inline (no per-trial heap traffic); their
  // delivery hooks capture `this` only and fire well after construction.
  Link uplink_;
  Link downlink_;
  /// Keyed lookups only today, but ordered anyway: a future iteration (e.g.
  /// broadcasting link state to all flows) must not inherit hash order.
  /// Node storage comes from the trial arena: registration/unregistration
  /// churn is a pointer bump, reclaimed wholesale at Simulator::reset().
  std::map<std::uint64_t, Handler, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, Handler>>>
      client_flows_;
  std::map<std::uint64_t, Handler, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, Handler>>>
      server_flows_;
  /// flow id -> 1-based index into endpoints_; flows of the direct endpoint
  /// are absent. Empty whenever contention is disabled, so the single-flow
  /// path never pays a lookup that could change behavior.
  std::map<std::uint64_t, EndpointId, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, EndpointId>>>
      flow_endpoints_;
  /// Arena-placed access-link pairs, 1-based via EndpointId (slot i-1).
  ArenaVec<Endpoint*> endpoints_;
  /// Forked from the trial network stream only when contention is enabled —
  /// the disabled path must not consume or derive any extra randomness.
  Rng access_rng_;
  EndpointId current_endpoint_ = kDirectEndpoint;
  std::uint64_t next_flow_id_ = 1;
};

}  // namespace qperc::net
