// The testbed topology: one client behind an emulated access network talking
// to many origin servers, all sharing the same bottleneck pair of links —
// exactly Mahimahi's shape (every replayed origin lives behind the one
// emulated interface).
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/profile.hpp"
#include "sim/simulator.hpp"
#include "util/arena.hpp"
#include "util/function.hpp"
#include "util/rng.hpp"

namespace qperc::net {

class EmulatedNetwork {
 public:
  /// Flow handlers share Link::DeliverFn's small-buffer callable type, so
  /// the sim layer has a single callable vocabulary (see util/function.hpp).
  using Handler = Link::DeliverFn;

  EmulatedNetwork(sim::Simulator& simulator, const NetworkProfile& profile, Rng rng);

  /// Registers the client-side handler for one flow; downlink packets of that
  /// flow are demultiplexed to it.
  void register_client_flow(FlowId flow, Handler handler);
  void unregister_client_flow(FlowId flow);
  /// Registers the server-side handler for one flow; uplink packets of that
  /// flow are demultiplexed to it. (Origin servers are a higher-level concept;
  /// `Packet::dest_server` is retained for accounting and per-origin delays.)
  void register_server_flow(FlowId flow, Handler handler);
  void unregister_server_flow(FlowId flow);

  /// Sends a packet from the client towards `packet.dest_server`.
  void client_send(Packet packet);
  /// Sends a packet from a server back to the client of `packet.flow`.
  void server_send(Packet packet);

  [[nodiscard]] const LinkStats& uplink_stats() const { return uplink_.stats(); }
  [[nodiscard]] const LinkStats& downlink_stats() const { return downlink_.stats(); }
  /// Direct link access (observers/tracing).
  [[nodiscard]] Link& uplink() { return uplink_; }
  [[nodiscard]] Link& downlink() { return downlink_; }
  [[nodiscard]] const NetworkProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] FlowId allocate_flow_id() noexcept { return FlowId{next_flow_id_++}; }

 private:
  void deliver_uplink(Packet packet);
  void deliver_downlink(Packet packet);

  sim::Simulator& simulator_;
  NetworkProfile profile_;
  // Both links live inline (no per-trial heap traffic); their delivery hooks
  // capture `this` only and fire well after construction completes.
  Link uplink_;
  Link downlink_;
  /// Keyed lookups only today, but ordered anyway: a future iteration (e.g.
  /// broadcasting link state to all flows) must not inherit hash order.
  /// Node storage comes from the trial arena: registration/unregistration
  /// churn is a pointer bump, reclaimed wholesale at Simulator::reset().
  std::map<std::uint64_t, Handler, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, Handler>>>
      client_flows_;
  std::map<std::uint64_t, Handler, std::less<std::uint64_t>,
           ArenaAllocator<std::pair<const std::uint64_t, Handler>>>
      server_flows_;
  std::uint64_t next_flow_id_ = 1;
};

}  // namespace qperc::net
