#include "net/packet_trace.hpp"

namespace qperc::net {

PacketTrace::PacketTrace(sim::Simulator& simulator, EmulatedNetwork& network)
    : simulator_(simulator), network_(network) {
  network_.uplink().set_observer([this](LinkEvent event, const Packet& packet) {
    records_.push_back(TraceRecord{simulator_.now(), Direction::kUplink, event,
                                   packet.flow, packet.wire_bytes});
  });
  network_.downlink().set_observer([this](LinkEvent event, const Packet& packet) {
    records_.push_back(TraceRecord{simulator_.now(), Direction::kDownlink, event,
                                   packet.flow, packet.wire_bytes});
  });
}

PacketTrace::~PacketTrace() {
  network_.uplink().set_observer(nullptr);
  network_.downlink().set_observer(nullptr);
}

std::vector<SimTime> PacketTrace::delivery_times(Direction direction, FlowId flow) const {
  std::vector<SimTime> times;
  for (const auto& record : records_) {
    if (record.direction != direction || record.event != LinkEvent::kDelivered) continue;
    if (flow != FlowId{0} && record.flow != flow) continue;
    times.push_back(record.time);
  }
  return times;
}

std::size_t PacketTrace::count(Direction direction, LinkEvent event) const {
  std::size_t n = 0;
  for (const auto& record : records_) {
    n += record.direction == direction && record.event == event;
  }
  return n;
}

void PacketTrace::print_csv(std::ostream& os) const {
  os << "time_ms,direction,event,flow,wire_bytes\n";
  for (const auto& record : records_) {
    os << to_millis(record.time) << ',' << to_string(record.direction) << ','
       << to_string(record.event) << ',' << static_cast<std::uint64_t>(record.flow) << ','
       << record.wire_bytes << '\n';
  }
}

std::string_view to_string(LinkEvent event) {
  switch (event) {
    case LinkEvent::kEnqueued: return "enqueued";
    case LinkEvent::kDroppedQueueFull: return "drop_queue";
    case LinkEvent::kDroppedRandomLoss: return "drop_loss";
    case LinkEvent::kDelivered: return "delivered";
    case LinkEvent::kDroppedBurstLoss: return "drop_burst";
    case LinkEvent::kDroppedOutage: return "drop_outage";
    case LinkEvent::kDroppedPolicer: return "drop_policer";
    case LinkEvent::kDuplicated: return "duplicated";
    case LinkEvent::kReordered: return "reordered";
  }
  return "?";
}

std::string_view to_string(Direction direction) {
  return direction == Direction::kUplink ? "up" : "down";
}

}  // namespace qperc::net
