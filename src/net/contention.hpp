// Shared-bottleneck contention: the knobs that turn a private-link trial
// into a dumbbell experiment (ROADMAP: "does QUIC's perceptual advantage
// survive 16 TCP Cubic flows on the same queue?").
//
// A ContentionConfig describes N seeded on-off bulk-transfer cross-traffic
// flows, each behind its own access-link pair, all feeding the one droptail
// bottleneck the browser shares. The default (flows == 0) is the paper's
// single-user topology and is guaranteed to perform zero extra RNG draws —
// single-flow goldens stay bit-exact.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time.hpp"

namespace qperc::net {

/// Protocol mix of the cross-traffic sources.
enum class CrossMix {
  kCubic,  // TCP Cubic bulk transfers (the classic fairness adversary)
  kReno,   // TCP Reno bulk transfers
  kBbr,    // TCP BBR bulk transfers
  kQuic,   // gQUIC bulk transfers
  kMixed,  // alternating TCP Cubic / gQUIC by flow index
};

[[nodiscard]] std::string_view to_string(CrossMix mix);
/// Parses "cubic" | "reno" | "bbr" | "quic" | "mixed"; throws
/// std::invalid_argument with the offending token otherwise.
[[nodiscard]] CrossMix parse_cross_mix(std::string_view text);

struct ContentionConfig {
  /// Number of competing bulk-transfer flows. 0 disables contention entirely
  /// (no endpoints, no extra RNG forks — the single-flow topology).
  std::uint32_t flows = 0;
  CrossMix mix = CrossMix::kCubic;
  /// Flow i starts its transfer at i * start_stagger.
  SimDuration start_stagger{0};
  /// Bytes per on-burst. 0 means one continuous backlogged transfer for the
  /// whole trial (the classic long-lived elephant).
  std::uint64_t burst_bytes = 0;
  /// Mean idle gap between bursts; each gap is drawn from a seeded
  /// exponential with this mean (0 = back-to-back bursts). Ignored while
  /// burst_bytes == 0.
  SimDuration off_time{0};
  /// Access-link rate = scale x the bottleneck rate of the same direction,
  /// so access links shape RTT but never become the constraint.
  double access_rate_scale = 4.0;
  /// One-way propagation delay of each access link.
  SimDuration access_delay{milliseconds(1)};

  [[nodiscard]] bool enabled() const noexcept { return flows > 0; }

  /// Throws std::invalid_argument with an actionable message when any field
  /// is out of range. Called by TrialContext and the CLI. Not QPERC_COLD_PATH:
  /// unconditional per-trial callers would inherit the coldness (see
  /// NetworkProfile::validate).
  void validate() const;
};

}  // namespace qperc::net
