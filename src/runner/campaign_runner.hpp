// Executes a CampaignSpec against a durable ResultStore.
//
// Resume semantics: tasks whose condition is already in the store are
// skipped (never recomputed), so re-running after an interruption
// continues from the last checkpoint. Because every task's seed derives
// from its identity (see campaign.hpp) and the store writes key-sorted
// records, the final store bytes are identical whether the campaign ran in
// one shot or across any number of interruptions, shards, or job counts.
//
// Progress: an optional callback receives throttled snapshots (at most one
// per progress_interval, plus a final one) carrying completion counts,
// rate, ETA, and the campaign-wide trace::TrialCounters aggregated from
// every trial's qlog-style event stream (PR-1 trace layer). Attaching the
// counter sinks never changes results — tracing is observation-only.
#pragma once

#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/result_store.hpp"
#include "trace/counters.hpp"

namespace qperc::core {
class VideoLibrary;
}

namespace qperc::runner {

struct CampaignProgress {
  std::size_t total = 0;     // tasks in this shard's grid slice
  std::size_t skipped = 0;   // already in the store (resume)
  std::size_t pending = 0;   // scheduled for execution this run
  std::size_t completed = 0; // finished successfully this run
  double elapsed_seconds = 0.0;
  double tasks_per_second = 0.0;
  /// Estimated seconds until the pending tasks finish (0 when unknown).
  double eta_seconds = 0.0;
  /// Aggregate of every completed trial's trace counters (zero when
  /// collect_counters is off). Sum/max fields only; see TrialCounters::merge.
  trace::TrialCounters counters;
};

/// One grid cell whose every attempt threw; the campaign completed the
/// rest and recorded this.
struct CampaignFailure {
  CampaignTask task;
  unsigned attempts = 0;
  std::string message;
  std::exception_ptr error;
};

struct CampaignOptions {
  /// Worker threads; 0 = one per hardware thread.
  unsigned jobs = 0;
  /// Attempts per task before recording a failure.
  unsigned max_attempts = 2;
  /// Stop after executing this many pending tasks (0 = unlimited). Used by
  /// tests and the e2e harness to emulate an interrupted campaign at a
  /// deterministic point; the next --resume run picks up the rest.
  std::size_t max_tasks = 0;
  /// Attach a per-task trace sink and aggregate TrialCounters campaign-wide.
  bool collect_counters = true;
  /// Throttled progress callback (invoked from worker threads, serialized).
  std::function<void(const CampaignProgress&)> on_progress;
  std::chrono::milliseconds progress_interval{500};
};

struct CampaignReport {
  std::size_t total = 0;
  std::size_t skipped = 0;
  std::size_t executed = 0;  // attempted this run = completed + failures
  std::vector<CampaignFailure> failures;
  trace::TrialCounters counters;
  double elapsed_seconds = 0.0;
};

/// Runs (the spec's shard of) the grid, skipping conditions already in the
/// store, and checkpoints the store incrementally plus once at the end.
/// Throws std::invalid_argument when the store's (seed, runs) pair does
/// not match the spec. Task failures do not throw — they are captured in
/// the report while the remaining tasks complete.
CampaignReport run_campaign(const CampaignSpec& spec, ResultStore& store,
                            const CampaignOptions& options = {});

/// Copies every stored result into the library's in-memory cache (existing
/// entries win). Returns the number of newly adopted conditions. Throws
/// std::invalid_argument when store and library disagree on (seed, runs).
std::size_t adopt_results(const ResultStore& store, core::VideoLibrary& library);

}  // namespace qperc::runner
