// Seeded torture harness: sweeps extreme impairment grids (reordering,
// duplication, Gilbert–Elliott bursts, outages, zero-delay) across protocol
// stacks and study sites, asserting three properties per trial:
//
//   * liveness     — the trial terminates: no event-budget exhaustion and no
//     deadlock (page unfinished with an empty event queue means some layer
//     dropped its own recovery timer and nothing will ever happen again),
//   * invariants   — zero QPERC_CHECK/QPERC_DCHECK trips (counted via
//     check::set_violation_handler, so one run surveys every trial instead
//     of aborting on the first),
//   * conservation — every object's HTTP-reported body bytes never exceed
//     its size, and complete objects received exactly their size: transport
//     duplicates must not double-count, losses must not under-deliver.
//
// Deterministic in TortureOptions::seed (sites, trial seeds, and every
// impairment draw derive from it). Exposed as `qperc torture` and the
// torture_smoke ctest.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "net/contention.hpp"
#include "net/profile.hpp"

namespace qperc::runner {

enum class TortureGrid { kSmall, kFull };

/// Parses "small" / "full"; throws std::invalid_argument otherwise.
[[nodiscard]] TortureGrid parse_torture_grid(std::string_view name);

/// One cell of the impairment axis: a full profile (base network + the
/// impairment layer under test), optionally with cross-traffic contention
/// sharing the bottleneck (exercises the multi-endpoint network under the
/// same liveness/invariant/conservation assertions).
struct TortureScenario {
  std::string name;
  net::NetworkProfile profile;
  net::ContentionConfig contention{};
};

/// The impairment scenarios layered over one base network profile.
[[nodiscard]] std::vector<TortureScenario> torture_scenarios(const net::NetworkProfile& base);

/// Shared-bottleneck contention cells layered over one base profile: a
/// saturating cubic crowd and a reordering+mixed-on-off combination.
[[nodiscard]] std::vector<TortureScenario> contention_scenarios(
    const net::NetworkProfile& base);

/// Variable-rate and policing cells layered over one base profile: synthetic
/// LTE and Wi-Fi downlink traces, a token-bucket policer, and a 10x
/// rate-cliff step schedule (the spurious-RTO regression surface).
[[nodiscard]] std::vector<TortureScenario> schedule_scenarios(
    const net::NetworkProfile& base);

/// Degenerate profile with zero propagation delay and (near-)instant
/// serialization: every RTT sample collapses toward 0 ticks (the
/// RttEstimator positivity regression).
[[nodiscard]] net::NetworkProfile zero_delay_profile();

struct TortureOptions {
  std::uint64_t seed = 1;
  TortureGrid grid = TortureGrid::kSmall;
  /// Per-trial simulator event budget; exhausting it marks the trial hung.
  std::uint64_t max_events_per_trial = 20'000'000;
  /// Cap on failure detail lines kept in the report.
  std::size_t max_failures_reported = 25;
};

struct TortureReport {
  std::uint64_t trials = 0;
  std::uint64_t check_violations = 0;
  std::uint64_t hung_trials = 0;    // event budget exhausted or deadlocked
  std::uint64_t deadlocks = 0;      // subset of hung: empty queue, page unfinished
  std::uint64_t conservation_failures = 0;
  std::uint64_t exceptions = 0;
  /// Pages that ran out the virtual-time cap: legal under heavy impairment
  /// (an outage can stall a load past any deadline), reported for context.
  std::uint64_t incomplete_pages = 0;
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const noexcept {
    return check_violations == 0 && hung_trials == 0 && conservation_failures == 0 &&
           exceptions == 0;
  }
};

/// Runs the grid sequentially (the violation handler is process-global).
/// `progress`, when non-null, receives one line per grid row.
TortureReport run_torture(const TortureOptions& options, std::ostream* progress = nullptr);

}  // namespace qperc::runner
