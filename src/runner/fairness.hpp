// The fairness grid: contention experiments (flow count x mix x stagger, on
// top of the campaign's site x protocol x network axes) run over the same
// executor / durable-store / sharding machinery as every other grid.
//
// Determinism contract (same as campaign.hpp): enumeration order is fixed,
// every cell's base seed derives from the cell's identity alone, and the
// store writes key-sorted records — so exports are byte-identical across
// --jobs, shard splits merged in any order, and kill/resume cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/contention.hpp"
#include "net/profile.hpp"
#include "util/time.hpp"

namespace qperc::runner {

/// One cell of the fairness grid: a (site, protocol, network, flows, mix,
/// stagger) condition to be simulated `runs` times from `base_seed`.
struct FairnessTask {
  /// Position in the full (unsharded) grid; stable across shards.
  std::size_t grid_index = 0;
  std::string site;
  std::string protocol;
  net::NetworkKind network = net::NetworkKind::kDsl;
  std::uint32_t flows = 0;
  net::CrossMix mix = net::CrossMix::kCubic;
  SimDuration stagger{0};
  /// Derived from (seed, site, protocol, network, flows, mix, stagger) only.
  std::uint64_t base_seed = 0;
};

struct FairnessSpec {
  std::vector<std::string> sites;
  std::vector<std::string> protocols;
  std::vector<net::NetworkKind> networks;
  /// Contention axes. 0 in flow_counts is legal and means "no cross
  /// traffic" — the single-flow baseline cell for side-by-side tables.
  std::vector<std::uint32_t> flow_counts;
  std::vector<net::CrossMix> mixes;
  std::vector<SimDuration> staggers;
  /// Trials per cell.
  std::uint32_t runs = 5;
  /// Master seed: keys the site catalog and every cell's base seed.
  std::uint64_t seed = 7;
  /// On-off pattern shared by every cell (not axes; see ContentionConfig).
  std::uint64_t burst_bytes = 0;
  SimDuration off_time{0};
  /// Downlink rate-variation knob shared by every cell (not an axis):
  /// kNone leaves profiles untouched; kLteTrace/kWifiTrace modulate each
  /// cell's downlink with the synthetic trace seeded by link_trace_seed.
  net::RateSchedule::Kind link_trace = net::RateSchedule::Kind::kNone;
  std::uint64_t link_trace_seed = 1;
  /// Token-bucket policer shared by every cell; zero rate disables it.
  DataRate policer_rate{};
  std::uint64_t policer_burst_bytes = 0;
  /// `--shard i/n`: this process executes cells with
  /// grid_index % shard_count == shard_index.
  unsigned shard_index = 0;
  unsigned shard_count = 1;

  /// Cells in the full grid across all shards.
  [[nodiscard]] std::size_t grid_size() const {
    return sites.size() * protocols.size() * networks.size() * flow_counts.size() *
           mixes.size() * staggers.size();
  }

  /// Throws std::invalid_argument on an empty grid dimension, runs == 0,
  /// an out-of-range shard, or an invalid contention pattern.
  void validate() const;

  /// Enumerates this shard's cells in deterministic grid order (site-major,
  /// then protocol, network, flows, mix, stagger).
  [[nodiscard]] std::vector<FairnessTask> tasks() const;

  /// Hash of every result-affecting field except the master seed (which the
  /// store header carries separately); a store only loads records written
  /// under the same fingerprint, so changing an axis can never alias a
  /// stale cell by grid index.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Identity-derived per-cell seed (the condition_base_seed trick extended
/// with the contention axes).
[[nodiscard]] std::uint64_t fairness_cell_seed(std::uint64_t seed, std::string_view site,
                                               std::string_view protocol,
                                               net::NetworkKind network,
                                               std::uint32_t flows, net::CrossMix mix,
                                               SimDuration stagger);

/// Aggregated result of one cell: means over `runs` trials of the page's QoE
/// metrics plus the cross-traffic side (per-flow goodputs, Jain's index,
/// bottleneck queue occupancy).
struct FairnessCell {
  std::size_t grid_index = 0;
  std::string site;
  std::string protocol;
  net::NetworkKind network = net::NetworkKind::kDsl;
  std::uint32_t flows = 0;
  net::CrossMix mix = net::CrossMix::kCubic;
  SimDuration stagger{0};

  std::uint32_t runs = 0;
  std::uint32_t pages_finished = 0;
  double mean_fvc_ms = 0.0;
  double mean_lvc_ms = 0.0;
  double mean_plt_ms = 0.0;
  double mean_vc85_ms = 0.0;
  double mean_si_ms = 0.0;
  double mean_page_retransmissions = 0.0;
  /// Mean over runs of the per-run Jain index across cross-flow goodputs;
  /// 1.0 for flows == 0 cells (nothing to share).
  double jain_index = 1.0;
  /// Peak bottleneck-downlink queue occupancy as a fraction of capacity.
  double mean_queue_peak_frac = 0.0;
  double mean_queue_drops = 0.0;
  /// Per cross-flow goodput in bits/second, mean over runs; size == flows.
  std::vector<double> flow_goodput_bps;
};

/// Serializes one cell as a single text line (deterministic: fixed field
/// order, max_digits10 doubles). The reader rejects malformed lines.
void write_fairness_record(std::ostream& os, const FairnessCell& cell);
[[nodiscard]] bool read_fairness_record(std::istream& is, FairnessCell& cell);

/// Durable, resumable store for fairness cells; same guarantees as the
/// campaign ResultStore (atomic temp+rename checkpoints, whole-file
/// checksum, key-sorted deterministic bytes), keyed by grid index and
/// fingerprinted against the spec's axes.
class FairnessStore {
 public:
  static constexpr const char* kMagic = "qperc-fairness-v1";

  FairnessStore(std::string path, std::uint64_t seed, std::uint32_t runs,
                std::uint64_t fingerprint, std::size_t checkpoint_every = 8);

  /// Loads this store's own checkpoint file. Returns false (leaving the
  /// store empty) on a missing file, version/seed/runs/fingerprint
  /// mismatch, truncation, or checksum failure.
  [[nodiscard]] bool load();
  /// Merges a compatible shard file into memory (existing cells win; no
  /// checkpoint). Returns false and absorbs nothing on any mismatch.
  [[nodiscard]] bool absorb(const std::string& path);

  void put(FairnessCell cell);
  /// Atomically persists the current contents (temp file + rename).
  void checkpoint();

  [[nodiscard]] bool contains(std::size_t grid_index) const;
  [[nodiscard]] std::size_t size() const;
  void for_each(const std::function<void(const FairnessCell&)>& fn) const;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint32_t runs() const { return runs_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  void checkpoint_locked();
  [[nodiscard]] bool read_file(const std::string& path,
                               std::map<std::size_t, FairnessCell>& out) const;

  std::string path_;
  std::uint64_t seed_;
  std::uint32_t runs_;
  std::uint64_t fingerprint_;
  std::size_t checkpoint_every_;
  std::size_t puts_since_checkpoint_ = 0;
  std::map<std::size_t, FairnessCell> cells_;
  mutable std::mutex mutex_;
};

struct FairnessProgress {
  std::size_t total = 0;
  std::size_t skipped = 0;
  std::size_t pending = 0;
  std::size_t completed = 0;
  double elapsed_seconds = 0.0;
  double eta_seconds = 0.0;
};

struct FairnessFailure {
  FairnessTask task;
  unsigned attempts = 0;
  std::string message;
  std::exception_ptr error;
};

struct FairnessOptions {
  /// Worker threads; 0 = one per hardware thread.
  unsigned jobs = 0;
  unsigned max_attempts = 2;
  /// Stop after executing this many pending cells (0 = unlimited); the e2e
  /// harness uses this to emulate a deterministic interruption.
  std::size_t max_tasks = 0;
  std::function<void(const FairnessProgress&)> on_progress;
  std::chrono::milliseconds progress_interval{500};
};

struct FairnessReport {
  std::size_t total = 0;
  std::size_t skipped = 0;
  std::size_t executed = 0;
  std::vector<FairnessFailure> failures;
  double elapsed_seconds = 0.0;
};

/// Runs one cell: `runs` contended trials, aggregated. Exposed for tests;
/// the result depends only on (task, runs, burst pattern, seed catalog).
[[nodiscard]] FairnessCell run_fairness_cell(const FairnessTask& task,
                                             const FairnessSpec& spec);

/// Runs (the spec's shard of) the fairness grid, skipping cells already in
/// the store, checkpointing incrementally plus once at the end. Throws
/// std::invalid_argument when the store's (seed, runs, fingerprint) does
/// not match the spec. Cell failures are captured in the report.
FairnessReport run_fairness(const FairnessSpec& spec, FairnessStore& store,
                            const FairnessOptions& options = {});

}  // namespace qperc::runner
