#include "runner/fairness.hpp"

// qperc-lint: allow-file(wall-clock) operator-facing progress/ETA display only; wall time never reaches trial results or the event schedule
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/protocol.hpp"
#include "core/trial.hpp"
#include "core/trial_context.hpp"
#include "runner/executor.hpp"
#include "stats/stats.hpp"
#include "util/rng.hpp"
#include "web/website.hpp"

namespace qperc::runner {

namespace {

std::string checksum_hex(std::string_view payload) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << fnv1a(payload);
  return os.str();
}

void set_record_precision(std::ostream& os) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
}

}  // namespace

void FairnessSpec::validate() const {
  if (sites.empty()) throw std::invalid_argument("FairnessSpec: no sites");
  if (protocols.empty()) throw std::invalid_argument("FairnessSpec: no protocols");
  if (networks.empty()) throw std::invalid_argument("FairnessSpec: no networks");
  if (flow_counts.empty()) throw std::invalid_argument("FairnessSpec: no flow counts");
  if (mixes.empty()) throw std::invalid_argument("FairnessSpec: no mixes");
  if (staggers.empty()) throw std::invalid_argument("FairnessSpec: no staggers");
  if (runs == 0) throw std::invalid_argument("FairnessSpec: runs must be >= 1");
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::invalid_argument("FairnessSpec: shard index out of range");
  }
  // Every cell's contention config must be constructible: validate the
  // largest flow count with the shared pattern once, up front.
  net::ContentionConfig probe;
  probe.burst_bytes = burst_bytes;
  probe.off_time = off_time;
  for (const std::uint32_t flows : flow_counts) {
    probe.flows = flows;
    probe.validate();
  }
}

std::uint64_t fairness_cell_seed(std::uint64_t seed, std::string_view site,
                                 std::string_view protocol, net::NetworkKind network,
                                 std::uint32_t flows, net::CrossMix mix,
                                 SimDuration stagger) {
  const Rng seeder(seed);
  return seeder.fork(site)
      .fork(protocol)
      .fork(static_cast<std::uint64_t>(network))
      .fork("fairness")
      .fork(flows)
      .fork(static_cast<std::uint64_t>(mix))
      .fork(static_cast<std::uint64_t>(stagger.count()))
      .next_u64();
}

std::vector<FairnessTask> FairnessSpec::tasks() const {
  validate();
  std::vector<FairnessTask> shard_tasks;
  std::size_t grid_index = 0;
  for (const auto& site : sites) {
    for (const auto& protocol : protocols) {
      for (const auto network : networks) {
        for (const auto flows : flow_counts) {
          for (const auto mix : mixes) {
            for (const auto stagger : staggers) {
              if (grid_index % shard_count == shard_index) {
                FairnessTask task;
                task.grid_index = grid_index;
                task.site = site;
                task.protocol = protocol;
                task.network = network;
                task.flows = flows;
                task.mix = mix;
                task.stagger = stagger;
                task.base_seed =
                    fairness_cell_seed(seed, site, protocol, network, flows, mix, stagger);
                shard_tasks.push_back(std::move(task));
              }
              ++grid_index;
            }
          }
        }
      }
    }
  }
  return shard_tasks;
}

std::uint64_t FairnessSpec::fingerprint() const {
  // Serialize every result-affecting axis (the master seed and runs live in
  // the store header) and hash; '\n' separators keep fields unambiguous.
  std::ostringstream os;
  os << "sites";
  for (const auto& site : sites) os << '\n' << site;
  os << "\nprotocols";
  for (const auto& protocol : protocols) os << '\n' << protocol;
  os << "\nnetworks";
  for (const auto network : networks) os << '\n' << static_cast<int>(network);
  os << "\nflows";
  for (const auto flows : flow_counts) os << '\n' << flows;
  os << "\nmixes";
  for (const auto mix : mixes) os << '\n' << net::to_string(mix);
  os << "\nstaggers";
  for (const auto stagger : staggers) os << '\n' << stagger.count();
  os << "\npattern\n" << burst_bytes << '\n' << off_time.count();
  os << "\nschedule\n" << net::to_string(link_trace) << '\n' << link_trace_seed << '\n'
     << policer_rate.bps() << '\n' << policer_burst_bytes;
  return fnv1a(os.str());
}

void write_fairness_record(std::ostream& os, const FairnessCell& cell) {
  set_record_precision(os);
  os << "cell " << cell.grid_index << ' ' << cell.site << ' ' << cell.protocol << ' '
     << static_cast<int>(cell.network) << ' ' << cell.flows << ' '
     << net::to_string(cell.mix) << ' ' << cell.stagger.count() << ' ' << cell.runs << ' '
     << cell.pages_finished << ' ' << cell.mean_fvc_ms << ' ' << cell.mean_lvc_ms << ' '
     << cell.mean_plt_ms << ' ' << cell.mean_vc85_ms << ' ' << cell.mean_si_ms << ' '
     << cell.mean_page_retransmissions << ' ' << cell.jain_index << ' '
     << cell.mean_queue_peak_frac << ' ' << cell.mean_queue_drops << ' '
     << cell.flow_goodput_bps.size();
  for (const double goodput : cell.flow_goodput_bps) os << ' ' << goodput;
  os << '\n';
}

bool read_fairness_record(std::istream& is, FairnessCell& cell) {
  std::string tag;
  std::string mix;
  int network = 0;
  std::int64_t stagger_ns = 0;
  std::size_t goodputs = 0;
  is >> tag >> cell.grid_index >> cell.site >> cell.protocol >> network >> cell.flows >>
      mix >> stagger_ns >> cell.runs >> cell.pages_finished >> cell.mean_fvc_ms >>
      cell.mean_lvc_ms >> cell.mean_plt_ms >> cell.mean_vc85_ms >> cell.mean_si_ms >>
      cell.mean_page_retransmissions >> cell.jain_index >> cell.mean_queue_peak_frac >>
      cell.mean_queue_drops >> goodputs;
  if (!is || tag != "cell" || network < 0 || network > 3 || goodputs > 4096) return false;
  cell.network = static_cast<net::NetworkKind>(network);
  cell.stagger = SimDuration{stagger_ns};
  try {
    cell.mix = net::parse_cross_mix(mix);
  } catch (const std::invalid_argument&) {
    return false;
  }
  cell.flow_goodput_bps.resize(goodputs);
  for (std::size_t i = 0; i < goodputs; ++i) is >> cell.flow_goodput_bps[i];
  return static_cast<bool>(is);
}

FairnessStore::FairnessStore(std::string path, std::uint64_t seed, std::uint32_t runs,
                             std::uint64_t fingerprint, std::size_t checkpoint_every)
    : path_(std::move(path)),
      seed_(seed),
      runs_(runs),
      fingerprint_(fingerprint),
      checkpoint_every_(checkpoint_every == 0 ? 1 : checkpoint_every) {}

bool FairnessStore::read_file(const std::string& path,
                              std::map<std::size_t, FairnessCell>& out) const {
  std::ifstream in(path);
  if (!in) return false;

  std::string header;
  if (!std::getline(in, header)) return false;
  std::istringstream header_stream(header);
  std::string magic;
  std::uint64_t seed = 0;
  std::uint32_t runs = 0;
  std::uint64_t fingerprint = 0;
  std::size_t count = 0;
  header_stream >> magic >> seed >> runs >> fingerprint >> count;
  if (!header_stream || magic != kMagic || seed != seed_ || runs != runs_ ||
      fingerprint != fingerprint_) {
    return false;
  }

  std::string payload;
  std::string line;
  std::map<std::size_t, FairnessCell> loaded;
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return false;
    std::istringstream record(line);
    FairnessCell cell;
    if (!read_fairness_record(record, cell)) return false;
    payload += line;
    payload += '\n';
    loaded[cell.grid_index] = std::move(cell);
  }
  if (!std::getline(in, line)) return false;
  std::istringstream footer(line);
  std::string label;
  std::string checksum;
  footer >> label >> checksum;
  if (label != "checksum" || checksum != checksum_hex(payload)) return false;
  out = std::move(loaded);
  return true;
}

bool FairnessStore::load() {
  const std::lock_guard<std::mutex> lock(mutex_);
  puts_since_checkpoint_ = 0;
  cells_.clear();
  std::map<std::size_t, FairnessCell> loaded;
  if (!read_file(path_, loaded)) return false;
  cells_ = std::move(loaded);
  return true;
}

bool FairnessStore::absorb(const std::string& path) {
  std::map<std::size_t, FairnessCell> loaded;
  if (!read_file(path, loaded)) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [index, cell] : loaded) cells_.emplace(index, std::move(cell));
  return true;
}

void FairnessStore::put(FairnessCell cell) {
  const std::lock_guard<std::mutex> lock(mutex_);
  cells_[cell.grid_index] = std::move(cell);
  if (++puts_since_checkpoint_ >= checkpoint_every_) checkpoint_locked();
}

void FairnessStore::checkpoint() {
  const std::lock_guard<std::mutex> lock(mutex_);
  checkpoint_locked();
}

void FairnessStore::checkpoint_locked() {
  std::ostringstream payload;
  for (const auto& [index, cell] : cells_) write_fairness_record(payload, cell);
  const std::string records = payload.str();

  std::ostringstream file;
  file << kMagic << ' ' << seed_ << ' ' << runs_ << ' ' << fingerprint_ << ' '
       << cells_.size() << '\n'
       << records << "checksum " << checksum_hex(records) << '\n';

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("fairness store: cannot write " + tmp);
    out << file.str();
    if (!out.flush()) throw std::runtime_error("fairness store: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("fairness store: rename failed: " + path_);
  }
  puts_since_checkpoint_ = 0;
}

bool FairnessStore::contains(std::size_t grid_index) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cells_.count(grid_index) != 0;
}

std::size_t FairnessStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cells_.size();
}

void FairnessStore::for_each(const std::function<void(const FairnessCell&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [index, cell] : cells_) fn(cell);
}

namespace {

FairnessCell run_cell(const FairnessTask& task, const FairnessSpec& spec,
                      const web::Website& site, core::TrialContext& context) {
  const core::ProtocolConfig& protocol = core::protocol_by_name(task.protocol);
  net::NetworkProfile profile = net::profile_for(task.network);
  // Spec-level variable-rate/policing knobs (shared by every cell, hashed
  // into the fingerprint so stores never alias across configurations).
  net::LinkConditions{.link_trace = spec.link_trace,
                      .link_trace_seed = spec.link_trace_seed,
                      .policer_rate = spec.policer_rate,
                      .policer_burst_bytes = spec.policer_burst_bytes}
      .apply(profile);

  net::ContentionConfig config;
  config.flows = task.flows;
  config.mix = task.mix;
  config.start_stagger = task.stagger;
  config.burst_bytes = spec.burst_bytes;
  config.off_time = spec.off_time;

  FairnessCell cell;
  cell.grid_index = task.grid_index;
  cell.site = task.site;
  cell.protocol = task.protocol;
  cell.network = task.network;
  cell.flows = task.flows;
  cell.mix = task.mix;
  cell.stagger = task.stagger;
  cell.runs = spec.runs;
  cell.flow_goodput_bps.assign(task.flows, 0.0);

  std::vector<double> goodputs(task.flows, 0.0);
  double jain_sum = 0.0;
  Rng run_rng(task.base_seed);
  for (std::uint32_t r = 0; r < spec.runs; ++r) {
    const std::uint64_t trial_seed = run_rng.next_u64();
    core::ContentionOutcome outcome;
    const auto result = context.run(
        core::TrialSpec(site, protocol, profile, trial_seed).with_contention(config),
        &outcome);
    if (result.metrics.finished) ++cell.pages_finished;
    cell.mean_fvc_ms += result.metrics.fvc_ms();
    cell.mean_lvc_ms += result.metrics.lvc_ms();
    cell.mean_plt_ms += result.metrics.plt_ms();
    cell.mean_vc85_ms += result.metrics.vc85_ms();
    cell.mean_si_ms += result.metrics.si_ms();
    cell.mean_page_retransmissions +=
        static_cast<double>(result.transport.retransmissions);
    if (config.enabled()) {
      for (std::uint32_t i = 0; i < task.flows; ++i) {
        goodputs[i] = outcome.flows[i].goodput_bps;
        cell.flow_goodput_bps[i] += outcome.flows[i].goodput_bps;
      }
      jain_sum += stats::jain_fairness_index(goodputs);
      if (outcome.queue_capacity_bytes != 0) {
        cell.mean_queue_peak_frac += static_cast<double>(outcome.peak_queue_bytes) /
                                     static_cast<double>(outcome.queue_capacity_bytes);
      }
      cell.mean_queue_drops += static_cast<double>(outcome.queue_drops);
    }
  }
  const double n = static_cast<double>(spec.runs);
  cell.mean_fvc_ms /= n;
  cell.mean_lvc_ms /= n;
  cell.mean_plt_ms /= n;
  cell.mean_vc85_ms /= n;
  cell.mean_si_ms /= n;
  cell.mean_page_retransmissions /= n;
  cell.jain_index = config.enabled() ? jain_sum / n : 1.0;
  cell.mean_queue_peak_frac /= n;
  cell.mean_queue_drops /= n;
  for (double& goodput : cell.flow_goodput_bps) goodput /= n;
  return cell;
}

}  // namespace

FairnessCell run_fairness_cell(const FairnessTask& task, const FairnessSpec& spec) {
  const auto catalog = web::study_catalog(spec.seed);
  for (const auto& site : catalog) {
    if (site.name == task.site) {
      core::TrialContext context;
      return run_cell(task, spec, site, context);
    }
  }
  throw std::invalid_argument("unknown site: " + task.site);
}

FairnessReport run_fairness(const FairnessSpec& spec, FairnessStore& store,
                            const FairnessOptions& options) {
  spec.validate();
  if (store.seed() != spec.seed || store.runs() != spec.runs ||
      store.fingerprint() != spec.fingerprint()) {
    throw std::invalid_argument("fairness store does not match the spec");
  }

  const auto shard_tasks = spec.tasks();
  std::vector<FairnessTask> pending;
  pending.reserve(shard_tasks.size());
  for (const auto& task : shard_tasks) {
    if (!store.contains(task.grid_index)) pending.push_back(task);
  }
  FairnessReport report;
  report.total = shard_tasks.size();
  report.skipped = report.total - pending.size();
  if (options.max_tasks != 0 && pending.size() > options.max_tasks) {
    pending.resize(options.max_tasks);
  }

  // One catalog for the whole grid; lookups are read-only across workers.
  const auto catalog = web::study_catalog(spec.seed);
  const auto site_by_name = [&catalog](const std::string& name) -> const web::Website& {
    for (const auto& site : catalog) {
      if (site.name == name) return site;
    }
    throw std::invalid_argument("unknown site: " + name);
  };

  const auto start = std::chrono::steady_clock::now();
  std::mutex progress_mutex;
  std::size_t completed = 0;
  auto last_emit = start;

  const auto snapshot = [&]() {  // callers hold progress_mutex
    FairnessProgress progress;
    progress.total = report.total;
    progress.skipped = report.skipped;
    progress.pending = pending.size();
    progress.completed = completed;
    progress.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (progress.elapsed_seconds > 0.0 && completed > 0) {
      const double rate = static_cast<double>(completed) / progress.elapsed_seconds;
      progress.eta_seconds = static_cast<double>(pending.size() - completed) / rate;
    }
    return progress;
  };

  Executor executor({.jobs = options.jobs, .max_attempts = options.max_attempts});
  auto failures = executor.run(pending.size(), [&](std::size_t index) {
    const FairnessTask& task = pending[index];
    const web::Website& site = site_by_name(task.site);
    core::TrialContext context;
    store.put(run_cell(task, spec, site, context));

    std::function<void(const FairnessProgress&)> emit;
    FairnessProgress progress;
    {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      ++completed;
      const auto now = std::chrono::steady_clock::now();
      if (options.on_progress && now - last_emit >= options.progress_interval) {
        last_emit = now;
        progress = snapshot();
        emit = options.on_progress;
      }
    }
    if (emit) emit(progress);
  });
  store.checkpoint();

  report.executed = pending.size();
  report.failures.reserve(failures.size());
  for (auto& failure : failures) {
    FairnessFailure entry;
    entry.task = pending[failure.index];
    entry.attempts = failure.attempts;
    entry.message = std::move(failure.message);
    entry.error = failure.error;
    report.failures.push_back(std::move(entry));
  }
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  {
    const std::lock_guard<std::mutex> lock(progress_mutex);
    if (options.on_progress) options.on_progress(snapshot());
  }
  return report;
}

}  // namespace qperc::runner
