// CampaignSpec: a declarative description of the paper's experiment grid
// (§3's sites × protocols × networks × ≥31 runs) plus the execution knobs
// that do NOT affect results — sharding for multi-process fan-out.
//
// Determinism contract: the grid enumeration order is fixed (site-major,
// then protocol, then network) and every task carries a base seed derived
// from the task's identity alone (core::condition_base_seed — the same
// derivation VideoLibrary::get uses), never from thread or shard identity.
// Two campaigns over the same spec therefore produce bit-identical results
// for every task, regardless of --jobs, --shard, interruption, or resume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/profile.hpp"

namespace qperc::runner {

/// One cell of the grid: a (site, protocol, network) condition to be
/// simulated `runs` times from `base_seed`.
struct CampaignTask {
  /// Position in the full (unsharded) grid; stable across shards.
  std::size_t grid_index = 0;
  std::string site;
  std::string protocol;
  net::NetworkKind network = net::NetworkKind::kDsl;
  /// Derived from (seed, site, protocol, network) only.
  std::uint64_t base_seed = 0;
};

struct CampaignSpec {
  std::vector<std::string> sites;
  std::vector<std::string> protocols;
  std::vector<net::NetworkKind> networks;
  /// Trials per condition (the paper records at least 31).
  std::uint32_t runs = 31;
  /// Master seed: keys the site catalog and every task's base seed.
  std::uint64_t seed = 7;
  /// `--shard i/n`: this process executes grid cells with
  /// grid_index % shard_count == shard_index. Results stay bit-identical
  /// per cell; shard stores can be merged afterwards.
  unsigned shard_index = 0;
  unsigned shard_count = 1;

  /// Cells in the full grid across all shards.
  [[nodiscard]] std::size_t grid_size() const {
    return sites.size() * protocols.size() * networks.size();
  }

  /// Throws std::invalid_argument on an empty grid dimension, runs == 0,
  /// or an out-of-range shard.
  void validate() const;

  /// Enumerates this shard's tasks in deterministic grid order.
  [[nodiscard]] std::vector<CampaignTask> tasks() const;
};

}  // namespace qperc::runner
