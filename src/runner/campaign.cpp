#include "runner/campaign.hpp"

#include <stdexcept>

#include "core/video.hpp"

namespace qperc::runner {

void CampaignSpec::validate() const {
  if (sites.empty()) throw std::invalid_argument("campaign spec has no sites");
  if (protocols.empty()) throw std::invalid_argument("campaign spec has no protocols");
  if (networks.empty()) throw std::invalid_argument("campaign spec has no networks");
  if (runs == 0) throw std::invalid_argument("campaign spec has runs == 0");
  if (shard_count == 0) throw std::invalid_argument("campaign shard count must be >= 1");
  if (shard_index >= shard_count) {
    throw std::invalid_argument("campaign shard index out of range (want 0.." +
                                std::to_string(shard_count - 1) + ", got " +
                                std::to_string(shard_index) + ")");
  }
}

std::vector<CampaignTask> CampaignSpec::tasks() const {
  validate();
  std::vector<CampaignTask> result;
  std::size_t grid_index = 0;
  for (const auto& site : sites) {
    for (const auto& protocol : protocols) {
      for (const auto network : networks) {
        if (grid_index % shard_count == shard_index) {
          CampaignTask task;
          task.grid_index = grid_index;
          task.site = site;
          task.protocol = protocol;
          task.network = network;
          task.base_seed = core::condition_base_seed(seed, site, protocol, network);
          result.push_back(std::move(task));
        }
        ++grid_index;
      }
    }
  }
  return result;
}

}  // namespace qperc::runner
