// Durable, resumable store for campaign results.
//
// On-disk format (version 2, plain text, one record per line):
//
//   qperc-campaign-v2 <seed> <runs> <count>
//   <video record>                                  x count, key-sorted
//   checksum <16-digit hex FNV-1a over the record block>
//
// Guarantees:
//   * Atomic checkpoints — every write goes to "<path>.tmp" and is renamed
//     over <path>, so a reader (or a resumed campaign) only ever sees a
//     complete, self-consistent file; a kill mid-write loses at most the
//     results since the previous checkpoint, never the file.
//   * Incremental checkpointing — put() persists automatically every
//     `checkpoint_every` insertions; run boundaries call checkpoint()
//     explicitly for the final flush.
//   * Tamper/truncation detection — load() verifies the version, the
//     (seed, runs) pair, the record count, and the whole-block checksum;
//     any mismatch discards the file and leaves the store empty, so a
//     corrupt checkpoint can never poison later runs with partial data.
//   * Deterministic bytes — records are written in key order from a
//     std::map, so the file contents depend only on the set of results,
//     not on job count or completion order (asserted by tests).
//
// Thread-safe: all public methods lock an internal mutex, so executor
// workers can put() concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "core/video.hpp"
#include "net/profile.hpp"

namespace qperc::runner {

class ResultStore {
 public:
  using Key = std::tuple<std::string, std::string, int>;

  static constexpr const char* kMagic = "qperc-campaign-v2";

  ResultStore(std::string path, std::uint64_t seed, std::uint32_t runs,
              std::size_t checkpoint_every = 25);

  /// Loads an existing checkpoint file. Returns false (leaving the store
  /// empty) when the file is missing, has a different version or
  /// (seed, runs) pair, is truncated, or fails the checksum.
  [[nodiscard]] bool load();

  /// Inserts (or replaces) one result and checkpoints automatically every
  /// `checkpoint_every` insertions.
  void put(core::Video video);

  /// Atomically persists the current contents (temp file + rename).
  /// Throws std::runtime_error when the file cannot be written.
  void checkpoint();

  [[nodiscard]] bool contains(const std::string& site, const std::string& protocol,
                              net::NetworkKind network) const;
  [[nodiscard]] std::size_t size() const;

  /// Visits every result in key-sorted order.
  void for_each(const std::function<void(const core::Video&)>& fn) const;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint32_t runs() const { return runs_; }

 private:
  void checkpoint_locked();

  std::string path_;
  std::uint64_t seed_;
  std::uint32_t runs_;
  std::size_t checkpoint_every_;
  std::size_t puts_since_checkpoint_ = 0;
  std::map<Key, core::Video> results_;
  mutable std::mutex mutex_;
};

}  // namespace qperc::runner
