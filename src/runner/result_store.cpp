#include "runner/result_store.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace qperc::runner {

namespace {

std::string checksum_hex(std::string_view payload) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << fnv1a(payload);
  return os.str();
}

}  // namespace

ResultStore::ResultStore(std::string path, std::uint64_t seed, std::uint32_t runs,
                         std::size_t checkpoint_every)
    : path_(std::move(path)),
      seed_(seed),
      runs_(runs),
      checkpoint_every_(checkpoint_every == 0 ? 1 : checkpoint_every) {}

bool ResultStore::load() {
  const std::lock_guard<std::mutex> lock(mutex_);
  results_.clear();
  puts_since_checkpoint_ = 0;

  std::ifstream in(path_);
  if (!in) return false;

  std::string header;
  if (!std::getline(in, header)) return false;
  std::istringstream header_stream(header);
  std::string magic;
  std::uint64_t seed = 0;
  std::uint32_t runs = 0;
  std::size_t count = 0;
  header_stream >> magic >> seed >> runs >> count;
  if (!header_stream || magic != kMagic || seed != seed_ || runs != runs_) return false;

  // Records, then the checksum footer; anything short, extra, or corrupt
  // invalidates the whole file (checkpoints are atomic, so a valid file is
  // always complete).
  std::string payload;
  std::string line;
  std::map<Key, core::Video> loaded;
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return false;
    std::istringstream record(line);
    core::Video video;
    if (!core::read_video_record(record, video)) return false;
    payload += line;
    payload += '\n';
    const Key key{video.site, video.protocol, static_cast<int>(video.network)};
    loaded.insert_or_assign(key, std::move(video));
  }
  if (!std::getline(in, line)) return false;
  std::istringstream footer(line);
  std::string tag;
  std::string expected;
  footer >> tag >> expected;
  if (!footer || tag != "checksum" || expected != checksum_hex(payload)) return false;
  if (loaded.size() != count) return false;  // duplicate keys would shrink the map

  results_ = std::move(loaded);
  return true;
}

void ResultStore::put(core::Video video) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const Key key{video.site, video.protocol, static_cast<int>(video.network)};
  results_.insert_or_assign(key, std::move(video));
  if (++puts_since_checkpoint_ >= checkpoint_every_) checkpoint_locked();
}

void ResultStore::checkpoint() {
  const std::lock_guard<std::mutex> lock(mutex_);
  checkpoint_locked();
}

void ResultStore::checkpoint_locked() {
  std::ostringstream payload;
  payload.precision(17);
  for (const auto& [key, video] : results_) {
    core::write_video_record(payload, video);
    payload << '\n';
  }
  const std::string payload_str = payload.str();

  const std::string temp_path = path_ + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write checkpoint temp file " + temp_path);
    out << kMagic << ' ' << seed_ << ' ' << runs_ << ' ' << results_.size() << '\n'
        << payload_str << "checksum " << checksum_hex(payload_str) << '\n';
    out.flush();
    if (!out) {
      std::remove(temp_path.c_str());
      throw std::runtime_error("failed writing checkpoint temp file " + temp_path);
    }
  }
  if (std::rename(temp_path.c_str(), path_.c_str()) != 0) {
    std::remove(temp_path.c_str());
    throw std::runtime_error("cannot rename checkpoint into place: " + path_);
  }
  puts_since_checkpoint_ = 0;
}

bool ResultStore::contains(const std::string& site, const std::string& protocol,
                           net::NetworkKind network) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return results_.contains(Key{site, protocol, static_cast<int>(network)});
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

void ResultStore::for_each(const std::function<void(const core::Video&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, video] : results_) fn(video);
}

}  // namespace qperc::runner
